// Package incdes reproduces "An Approach to Incremental Design of
// Distributed Embedded Systems" (Pop, Eles, Pop, Peng — DAC 2001): mapping
// and static cyclic scheduling of hard real-time process graphs onto
// TTP-based distributed architectures, inside an incremental design
// process where existing applications are frozen and future applications
// are anticipated through the paper's two design criteria.
//
// The implementation lives under internal/: see internal/core for the
// mapping strategies (AH, MH, SA), internal/sched for the static cyclic
// scheduler, internal/ttp for the TDMA bus model, internal/metrics for the
// design criteria, and internal/eval for the experiment harness. The
// executables cmd/incmap and cmd/incbench and the programs under examples/
// are the entry points; bench_test.go regenerates the paper's figures as
// Go benchmarks.
package incdes
