package incdes_test

import (
	"context"
	"os"
	"strings"
	"testing"

	"incdes/internal/core"
	"incdes/internal/exec"
	"incdes/internal/export"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/sim"
	"incdes/internal/textplot"
	"incdes/internal/tgff"
)

// TestEndToEndPipeline drives the whole stack the way cmd/incmap does:
// generate a system, freeze the existing applications, map the current
// one with every strategy, verify each schedule with the independent
// oracle, score it, and render it.
func TestEndToEndPipeline(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 5
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 12
	tc, err := gen.MakeTestCase(cfg, 31, 60, 30)
	if err != nil {
		t.Fatalf("MakeTestCase: %v", err)
	}
	p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile,
		metrics.DefaultWeights(tc.Profile))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	solutions := map[string]*core.Solution{}
	if solutions["AH"], err = core.Solve(ctx, p, core.Options{Strategy: core.AH}); err != nil {
		t.Fatalf("AH: %v", err)
	}
	if solutions["MH"], err = core.Solve(ctx, p, core.Options{Strategy: core.MH}); err != nil {
		t.Fatalf("MH: %v", err)
	}
	saOpts := core.DefaultSAOptions()
	saOpts.Iterations = 500
	if solutions["SA"], err = core.Solve(ctx, p, core.Options{Strategy: core.SAWith(saOpts)}); err != nil {
		t.Fatalf("SA: %v", err)
	}

	for name, sol := range solutions {
		if vs := sim.Check(sol.State, tc.Sys.Apps...); len(vs) != 0 {
			t.Fatalf("%s schedule invalid: %v", name, vs[0])
		}
		gantt := textplot.Gantt(sol.State, 80)
		if !strings.Contains(gantt, "bus") {
			t.Errorf("%s Gantt missing bus row", name)
		}
		// Re-evaluating the metrics must reproduce the solution's report.
		again := metrics.Evaluate(sol.State, tc.Profile, p.Weights)
		if again.Objective != sol.Report.Objective {
			t.Errorf("%s: metric evaluation not reproducible: %v vs %v",
				name, again.Objective, sol.Report.Objective)
		}
	}

	if solutions["MH"].Objective() > solutions["AH"].Objective()+1e-9 {
		t.Error("MH ended worse than AH")
	}

	// A sampled future application must fit at least on the MH design or
	// the AH design whenever it fits on the other (monotonicity is not
	// guaranteed per-sample, so only smoke-check the mechanism).
	futGen := gen.New(cfg, 99)
	futGen.StartIDsAt(1 << 20)
	fut := futGen.FutureApp("future", tc.Profile, 15)
	if err := fut.Validate(tc.Sys.Arch); err != nil {
		t.Fatalf("future app invalid: %v", err)
	}
	for name, sol := range solutions {
		st := sol.State.Clone()
		if _, err := st.MapApp(fut, sched.Hints{}); err == nil {
			// Validate the extended schedule too.
			apps := append([]*model.Application{}, tc.Sys.Apps...)
			apps = append(apps, fut)
			if vs := sim.Check(st, apps...); len(vs) != 0 {
				t.Fatalf("%s+future schedule invalid: %v", name, vs[0])
			}
		}
	}
}

// TestJSONRoundTripThroughPipeline verifies a generated system survives
// serialization and still schedules identically.
func TestJSONRoundTripThroughPipeline(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 4
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 8
	tc, err := gen.MakeTestCase(cfg, 5, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := tc.Sys.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, err := model.ReadSystem(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys2)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range sys2.Apps {
		if _, err := st.MapApp(app, sched.Hints{}); err != nil {
			t.Fatalf("mapping %q after round trip: %v", app.Name, err)
		}
	}
	if vs := sim.Check(st, sys2.Apps...); len(vs) != 0 {
		t.Fatalf("round-tripped schedule invalid: %v", vs[0])
	}
}

// TestFixtureSystemLoads drives the committed fixture through the whole
// pipeline: load, freeze existing, map, validate, export, verify, execute.
func TestFixtureSystemLoads(t *testing.T) {
	f, err := os.Open("testdata/system.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sys, err := model.ReadSystem(f)
	if err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	base, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range sys.Apps[:len(sys.Apps)-1] {
		if _, err := base.MapApp(app, sched.Hints{}); err != nil {
			t.Fatalf("freezing %q: %v", app.Name, err)
		}
	}
	current := sys.Apps[len(sys.Apps)-1]
	prof := gen.ProfileForSystem(gen.Default(), sys)
	p, err := core.NewProblem(sys, base, current, prof, metrics.DefaultWeights(prof))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(context.Background(), p,
		core.Options{Strategy: core.MHWith(core.MHOptions{MaxIterations: 5})})
	if err != nil {
		t.Fatal(err)
	}
	if vs := sim.Check(sol.State, sys.Apps...); len(vs) != 0 {
		t.Fatalf("fixture schedule invalid: %v", vs[0])
	}
	design, err := export.Build(sol.State)
	if err != nil {
		t.Fatal(err)
	}
	if errs := export.Check(design, sys, sys.Apps...); len(errs) != 0 {
		t.Fatalf("fixture design fails verification: %v", errs[0])
	}
	res, err := exec.Run(design, sys, sys.Apps, exec.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("fixture execution violated: %v", res.Violations[0])
	}
}

// TestFixtureTGFFLoads round-trips the committed TGFF workload.
func TestFixtureTGFFLoads(t *testing.T) {
	f, err := os.Open("testdata/workload.tgff")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	parsed, err := tgff.Parse(f)
	if err != nil {
		t.Fatalf("fixture TGFF invalid: %v", err)
	}
	sys, err := parsed.Build("workload", tgff.BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.MapApp(sys.Apps[0], sched.Hints{}); err != nil {
		t.Fatalf("mapping TGFF workload: %v", err)
	}
}
