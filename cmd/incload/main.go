// Command incload load-tests the solve service in-process: it drives a
// mixed traffic profile (identical resubmits, distinct problems,
// detached jobs, session commits) at a configurable concurrency against
// a serve handler and writes per-class latency percentiles plus the
// solution-cache hit rate as a machine-readable artifact.
//
// Usage:
//
//	incload [-profile smoke|mixed|resubmit|cluster] [-requests N] [-concurrency N]
//	        [-seed S] [-strategy mh] [-solution-cache N] [-no-cache]
//	        [-target URL,URL,...]
//	        [-out LOAD_smoke.json] [-max-p99 MS] [-min-hit-rate R]
//	        [-metrics-lint] [-slow-request-log D]
//	incload -diff baseline.json candidate.json [-threshold T]
//
// The first form runs the profile and optionally gates on absolute
// thresholds: -max-p99 fails the run when any class's p99 exceeds the
// bound, -min-hit-rate when the cache hit rate falls below it (CI's
// load-smoke job uses both). The second form compares two artifacts
// benchdiff-style and fails on relative regressions.
//
// With -target the profile drives running incmapd daemons over real
// HTTP instead of an in-process server: solve traffic round-robins
// across the listed base URLs (session traffic stays on the first, so
// commits land where their session lives), and measured latencies
// include the network. Pointing a single -target at a cluster
// coordinator fills the report's per-worker rows from the responses'
// X-Incdes-Worker attribution — the cluster profile is shaped for
// exactly that (cache-miss-heavy, so most requests dispatch).
//
// Exit status: 0 on success, 1 on a failed gate or regression, 2 on
// usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync/atomic"

	"incdes/internal/load"
	"incdes/internal/obs/promtext"
	"incdes/internal/serve"
)

func main() {
	profileName := flag.String("profile", "smoke", "named profile: smoke, mixed, resubmit or cluster")
	requests := flag.Int("requests", 0, "total requests (0 = profile default)")
	concurrency := flag.Int("concurrency", 0, "concurrent clients (0 = profile default)")
	seed := flag.Int64("seed", 0, "workload seed (0 = profile default)")
	strategy := flag.String("strategy", "", "solve strategy query parameter (default mh)")
	cacheSize := flag.Int("solution-cache", 256, "server-side solution-cache entries (0 = off)")
	noCache := flag.Bool("no-cache", false, "send cache=off on every request (baseline mode)")
	out := flag.String("out", "", "write the report JSON to this file (atomic)")
	maxP99 := flag.Float64("max-p99", 0, "fail when any class p99 exceeds this many ms (0 = no gate)")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail when the cache hit rate is below this fraction (0 = no gate)")
	diff := flag.Bool("diff", false, "compare two report files instead of running")
	threshold := flag.Float64("threshold", 0.5, "diff mode: tolerated relative latency growth (0.5 = 50%)")
	metricsLint := flag.Bool("metrics-lint", false, "after the run, scrape /v1/metrics and fail on exposition-format problems")
	slowRequestLog := flag.Duration("slow-request-log", 0, "log a one-line span breakdown of requests at least this slow (0 = off)")
	target := flag.String("target", "", "comma-separated base URLs of running incmapd daemons (empty = in-process server)")
	flag.Parse()

	if *diff {
		os.Exit(runDiff(flag.Args(), *threshold))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "incload: unexpected arguments (use -diff to compare reports)")
		os.Exit(2)
	}

	p, ok := load.Named(*profileName)
	if !ok {
		fmt.Fprintf(os.Stderr, "incload: unknown profile %q (want smoke, mixed, resubmit or cluster)\n", *profileName)
		os.Exit(2)
	}
	if *requests > 0 {
		p.Requests = *requests
	}
	if *concurrency > 0 {
		p.Concurrency = *concurrency
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *strategy != "" {
		p.Strategy = *strategy
	}
	p.CacheOff = *noCache

	var handler http.Handler
	var lintTarget string
	if *target != "" {
		th, err := newTargetHandler(*target)
		if err != nil {
			fmt.Fprintln(os.Stderr, "incload:", err)
			os.Exit(2)
		}
		handler = th
		lintTarget = th.targets[0]
	} else {
		srv := serve.New(serve.Config{
			MaxConcurrent:     p.Concurrency,
			QueueDepth:        p.Requests + 8,
			Parallelism:       1,
			RetainJobs:        p.Requests + 8,
			SolutionCacheSize: *cacheSize,
			SlowRequestLog:    *slowRequestLog,
		})
		defer srv.Close()
		handler = srv.Handler()
	}
	rep, err := load.Run(handler, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incload:", err)
		os.Exit(2)
	}
	printReport(rep)
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "incload:", err)
			os.Exit(2)
		}
		fmt.Printf("report written to %s\n", *out)
	}

	failed := false
	if n := rep.Errors(); n > 0 {
		fmt.Printf("FAIL: %d requests errored\n", n)
		failed = true
	}
	if *metricsLint {
		// Scrape the handler that just served the load: the exposition
		// must be well-formed with real per-strategy and histogram series
		// populated, which is exactly when format bugs surface. Against
		// -target that exercises the coordinator's merged multi-worker
		// exposition over real HTTP.
		problems, err := lintMetrics(handler, lintTarget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "incload:", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Printf("FAIL: metrics-lint: %s\n", p)
		}
		if len(problems) > 0 {
			failed = true
		} else {
			fmt.Println("metrics-lint: clean")
		}
	}
	if *maxP99 > 0 {
		for _, name := range classNames(rep) {
			if c := rep.Classes[name]; c.P99MS > *maxP99 {
				fmt.Printf("FAIL: class %s p99 %.2fms exceeds gate %.2fms\n", name, c.P99MS, *maxP99)
				failed = true
			}
		}
	}
	if *minHitRate > 0 && rep.Cache.HitRate < *minHitRate {
		fmt.Printf("FAIL: cache hit rate %.3f below gate %.3f\n", rep.Cache.HitRate, *minHitRate)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// lintMetrics scrapes /v1/metrics — over real HTTP from the first
// target when one is set, through the in-process handler otherwise —
// and validates the exposition format.
func lintMetrics(h http.Handler, target string) ([]string, error) {
	if target != "" {
		resp, err := http.Get(target + "/v1/metrics")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s/v1/metrics = %d", target, resp.StatusCode)
		}
		return promtext.Lint(resp.Body), nil
	}
	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/metrics = %d", rec.Code)
	}
	return promtext.Lint(rec.Body), nil
}

// targetHandler adapts running daemons to the http.Handler the load
// harness drives: requests round-robin across the target base URLs,
// except session traffic, which is pinned to the first target so a
// commit always reaches the daemon holding its session.
type targetHandler struct {
	targets []string
	client  *http.Client
	next    atomic.Int64
}

func newTargetHandler(list string) (*targetHandler, error) {
	th := &targetHandler{client: &http.Client{}}
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSpace(strings.TrimRight(u, "/")); u != "" {
			th.targets = append(th.targets, u)
		}
	}
	if len(th.targets) == 0 {
		return nil, fmt.Errorf("-target: no base URLs in %q", list)
	}
	return th, nil
}

func (th *targetHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	base := th.targets[0]
	if !strings.HasPrefix(r.URL.Path, "/v1/sessions") {
		base = th.targets[int(th.next.Add(1)-1)%len(th.targets)]
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := th.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func classNames(rep *load.Report) []string {
	names := make([]string, 0, len(rep.Classes))
	for name := range rep.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func printReport(rep *load.Report) {
	fmt.Printf("profile %s: %d requests, concurrency %d, wall %.0fms, cache enabled %v\n",
		rep.Profile.Name, rep.Profile.Requests, rep.Profile.Concurrency, rep.WallMS, rep.CacheEnabled)
	for _, name := range classNames(rep) {
		c := rep.Classes[name]
		fmt.Printf("  %-9s n=%-4d err=%-3d p50=%8.2fms p95=%8.2fms p99=%8.2fms mean=%8.2fms\n",
			name, c.Requests, c.Errors, c.P50MS, c.P95MS, c.P99MS, c.MeanMS)
	}
	if len(rep.Workers) > 0 {
		names := make([]string, 0, len(rep.Workers))
		for name := range rep.Workers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := rep.Workers[name]
			fmt.Printf("  worker %-6s n=%-4d p50=%8.2fms p99=%8.2fms\n",
				name, c.Requests, c.P50MS, c.P99MS)
		}
	}
	if rep.CacheEnabled {
		fmt.Printf("  cache: hit %d, miss %d, inflight %d (hit rate %.1f%%)\n",
			rep.Cache.Hit, rep.Cache.Miss, rep.Cache.Inflight, rep.Cache.HitRate*100)
	}
}

func runDiff(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: incload -diff [-threshold T] baseline.json candidate.json")
		return 2
	}
	base, err := load.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "incload:", err)
		return 2
	}
	cand, err := load.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "incload:", err)
		return 2
	}
	regs, notes := load.Compare(base, cand, load.CompareOptions{Threshold: threshold})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	fmt.Printf("compared %s against %s (threshold %.0f%%)\n", args[1], args[0], threshold*100)
	if len(regs) == 0 {
		fmt.Println("no regressions")
		return 0
	}
	for _, r := range regs {
		fmt.Println("REGRESSION:", r)
	}
	return 1
}
