package main

// incmap session: scripted replay of versioned design sessions against a
// local on-disk store — the same session model cmd/incmapd serves over
// HTTP, usable offline and in CI. A session is opened once over a base
// system, then grown one committed application at a time; branches and
// rollbacks explore what-if alternatives; replay re-derives every branch
// head from the stored log and verifies the recorded fingerprints.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"incdes/internal/core"
	"incdes/internal/model"
	"incdes/internal/session"
)

func cmdSession(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf(`session: missing subcommand (init, commit, branch, rollback, log, diff, replay)`)
	}
	switch args[0] {
	case "init":
		return cmdSessionInit(args[1:])
	case "commit":
		return cmdSessionCommit(args[1:])
	case "branch":
		return cmdSessionBranch(args[1:])
	case "rollback":
		return cmdSessionRollback(args[1:])
	case "log":
		return cmdSessionLog(args[1:])
	case "diff":
		return cmdSessionDiff(args[1:])
	case "replay":
		return cmdSessionReplay(args[1:])
	default:
		return fmt.Errorf("session: unknown subcommand %q", args[0])
	}
}

// openManager opens the on-disk store behind every session subcommand.
func openManager(dir string) (*session.Manager, error) {
	store, err := session.NewDiskStore(dir)
	if err != nil {
		return nil, err
	}
	return session.NewManager(store, nil)
}

func cmdSessionInit(args []string) error {
	fs := flag.NewFlagSet("session init", flag.ExitOnError)
	dir := fs.String("store", ".incmap-sessions", "session store directory")
	id := fs.String("id", "", "session id (default: next free sN)")
	sysPath := fs.String("sys", "system.json", "base system JSON file")
	excludeLast := fs.Bool("exclude-last", false, "open over the system minus its last application (commit it separately)")
	fs.Parse(args)

	sys, err := loadSystem(*sysPath)
	if err != nil {
		return err
	}
	if *excludeLast {
		if len(sys.Apps) < 2 {
			return fmt.Errorf("session init: -exclude-last needs at least two applications")
		}
		sys = &model.System{Arch: sys.Arch, Apps: sys.Apps[:len(sys.Apps)-1]}
	}
	m, err := openManager(*dir)
	if err != nil {
		return err
	}
	sess, err := m.Open(sys, nil, *id)
	if err != nil {
		return err
	}
	doc, err := sess.Doc()
	if err != nil {
		return err
	}
	fmt.Printf("session %s opened over %d applications (objective %.4f)\n",
		sess.ID(), len(sys.Apps), doc.Versions[session.RootVersion].Report.Objective)
	return nil
}

// sessionApp resolves the application to commit: either a standalone
// application JSON (-app-file), or one application picked by name out of
// a system file (-sys -app) — the convenient path when driving a session
// from `incmap generate` output.
func sessionApp(appFile, sysPath, appName string) (*model.Application, error) {
	if appFile != "" {
		f, err := os.Open(appFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return model.ReadApplication(f)
	}
	if sysPath == "" || appName == "" {
		return nil, fmt.Errorf("session commit: need -app-file, or -sys with -app")
	}
	sys, err := loadSystem(sysPath)
	if err != nil {
		return nil, err
	}
	for _, a := range sys.Apps {
		if a.Name == appName {
			return a, nil
		}
	}
	return nil, fmt.Errorf("session commit: system %s has no application %q", sysPath, appName)
}

func cmdSessionCommit(args []string) error {
	fs := flag.NewFlagSet("session commit", flag.ExitOnError)
	dir := fs.String("store", ".incmap-sessions", "session store directory")
	id := fs.String("id", "", "session id")
	appFile := fs.String("app-file", "", "application JSON file to commit")
	sysPath := fs.String("sys", "", "system JSON file to pick the application from")
	appName := fs.String("app", "", "application name inside -sys")
	branch := fs.String("branch", "", "branch to advance (default main)")
	strategy := fs.String("strategy", "mh", "mapping strategy: ah, mh or sa")
	saIters := fs.Int("sa-iters", 0, "SA iterations (0 = default)")
	saRestarts := fs.Int("sa-restarts", 0, "independent SA restart chains (0 = 1)")
	parallel := fs.Int("parallel", 0, "evaluation workers (0 = one per CPU)")
	timeout := fs.Duration("timeout", 0, "abort the solve after this long (0 = none)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("session commit: -id is required")
	}

	var strat core.Strategy
	switch *strategy {
	case "ah":
		strat = core.AH
	case "mh":
		strat = core.MH
	case "sa":
		opts := core.DefaultSAOptions()
		opts.Iterations = *saIters
		opts.Restarts = *saRestarts
		strat = core.SAWith(opts)
	default:
		return fmt.Errorf("session commit: unknown strategy %q", *strategy)
	}
	app, err := sessionApp(*appFile, *sysPath, *appName)
	if err != nil {
		return err
	}
	m, err := openManager(*dir)
	if err != nil {
		return err
	}
	sess, err := m.Get(*id)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := sess.Commit(ctx, app, session.CommitParams{
		Branch:      *branch,
		Strategy:    strat,
		Parallelism: *parallel,
	})
	if err != nil {
		return err
	}
	if res.Version < 0 {
		fmt.Printf("interrupted: best design so far scored %.4f; no version created\n",
			res.Solution.Report.Objective)
		return nil
	}
	fmt.Printf("committed %q as version %d (parent %d, branch %s) in %v\n",
		app.Name, res.Version, res.Parent, res.Branch, time.Since(start).Round(time.Millisecond))
	fmt.Printf("strategy %s examined %d design alternatives; objective %.4f\n",
		res.Solution.Strategy, res.Solution.Evaluations, res.Solution.Report.Objective)
	return nil
}

func cmdSessionBranch(args []string) error {
	fs := flag.NewFlagSet("session branch", flag.ExitOnError)
	dir := fs.String("store", ".incmap-sessions", "session store directory")
	id := fs.String("id", "", "session id")
	name := fs.String("name", "", "new branch name")
	from := fs.Int("from", -1, "version to branch from (default: head of main)")
	fs.Parse(args)
	if *id == "" || *name == "" {
		return fmt.Errorf("session branch: -id and -name are required")
	}
	m, err := openManager(*dir)
	if err != nil {
		return err
	}
	sess, err := m.Get(*id)
	if err != nil {
		return err
	}
	v := *from
	if v < 0 {
		if v, err = sess.Head(session.MainBranch); err != nil {
			return err
		}
	}
	if err := sess.Branch(*name, v); err != nil {
		return err
	}
	fmt.Printf("branch %s created at version %d\n", *name, v)
	return nil
}

func cmdSessionRollback(args []string) error {
	fs := flag.NewFlagSet("session rollback", flag.ExitOnError)
	dir := fs.String("store", ".incmap-sessions", "session store directory")
	id := fs.String("id", "", "session id")
	branch := fs.String("branch", "", "branch to roll back (default main)")
	to := fs.Int("to", -1, "ancestor version to move the head to")
	fs.Parse(args)
	if *id == "" || *to < 0 {
		return fmt.Errorf("session rollback: -id and -to are required")
	}
	m, err := openManager(*dir)
	if err != nil {
		return err
	}
	sess, err := m.Get(*id)
	if err != nil {
		return err
	}
	if err := sess.Rollback(*branch, *to); err != nil {
		return err
	}
	b := *branch
	if b == "" {
		b = session.MainBranch
	}
	fmt.Printf("branch %s rolled back to version %d\n", b, *to)
	return nil
}

func cmdSessionLog(args []string) error {
	fs := flag.NewFlagSet("session log", flag.ExitOnError)
	dir := fs.String("store", ".incmap-sessions", "session store directory")
	id := fs.String("id", "", "session id (empty: list all sessions)")
	fs.Parse(args)

	m, err := openManager(*dir)
	if err != nil {
		return err
	}
	if *id == "" {
		ids, err := m.List()
		if err != nil {
			return err
		}
		for _, sid := range ids {
			fmt.Println(sid)
		}
		return nil
	}
	sess, err := m.Get(*id)
	if err != nil {
		return err
	}
	doc, err := sess.Doc()
	if err != nil {
		return err
	}
	heads := map[int][]string{}
	for name, v := range doc.Branches {
		heads[v] = append(heads[v], name)
	}
	fmt.Printf("session %s: %d versions, %d branches\n", doc.ID, len(doc.Versions), len(doc.Branches))
	for _, v := range doc.Versions {
		marks := heads[v.ID]
		sort.Strings(marks)
		label := "(root)"
		if v.App != nil {
			label = fmt.Sprintf("%q via %s (%d evals)", v.App.Name, v.Strategy, v.Evaluations)
		}
		fmt.Printf("  v%-3d parent %-3d objective %8.4f  %s", v.ID, v.Parent, v.Report.Objective, label)
		for _, b := range marks {
			fmt.Printf("  <-%s", b)
		}
		fmt.Println()
	}
	return nil
}

func cmdSessionDiff(args []string) error {
	fs := flag.NewFlagSet("session diff", flag.ExitOnError)
	dir := fs.String("store", ".incmap-sessions", "session store directory")
	id := fs.String("id", "", "session id")
	from := fs.Int("from", 0, "older version")
	to := fs.Int("to", -1, "newer version (default: head of main)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("session diff: -id is required")
	}
	m, err := openManager(*dir)
	if err != nil {
		return err
	}
	sess, err := m.Get(*id)
	if err != nil {
		return err
	}
	v := *to
	if v < 0 {
		if v, err = sess.Head(session.MainBranch); err != nil {
			return err
		}
	}
	d, err := sess.Diff(*from, v)
	if err != nil {
		return err
	}
	fmt.Println(d.String())
	for _, p := range d.Procs {
		switch p.Kind {
		case session.DeltaAdded:
			fmt.Printf("  + proc %d (%s) on node %d at %v\n", p.Proc, p.App, p.ToNode, p.ToStart)
		case session.DeltaRemoved:
			fmt.Printf("  - proc %d (%s) from node %d at %v\n", p.Proc, p.App, p.FromNode, p.FromStart)
		case session.DeltaMoved:
			fmt.Printf("  ~ proc %d (%s) node %d -> %d\n", p.Proc, p.App, p.FromNode, p.ToNode)
		case session.DeltaShifted:
			fmt.Printf("  ~ proc %d (%s) start %v -> %v on node %d\n", p.Proc, p.App, p.FromStart, p.ToStart, p.ToNode)
		}
	}
	return nil
}

func cmdSessionReplay(args []string) error {
	fs := flag.NewFlagSet("session replay", flag.ExitOnError)
	dir := fs.String("store", ".incmap-sessions", "session store directory")
	id := fs.String("id", "", "session id")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("session replay: -id is required")
	}
	m, err := openManager(*dir)
	if err != nil {
		return err
	}
	sess, err := m.Get(*id)
	if err != nil {
		return err
	}
	if err := sess.Verify(); err != nil {
		return err
	}
	doc, err := sess.Doc()
	if err != nil {
		return err
	}
	fmt.Printf("session %s verified: %d branch heads replay to their stored fingerprints\n",
		doc.ID, len(doc.Branches))
	return nil
}
