// Command incmap generates, inspects, and maps incremental-design systems.
//
// Usage:
//
//	incmap generate [-nodes N] [-clusters K] [-inter-frac F]
//	                [-existing P] [-current P] [-seed S] [-o file]
//	incmap inspect  [-sys file]
//	incmap map      [-sys file] [-strategy ah|mh|sa|portfolio] [-gantt] [-medl]
//	                [-analyze] [-export file.json] [-export-bin file.img]
//	                [-parallel N] [-timeout D] [-sa-restarts K]
//	                [-trace file.jsonl] [-stats-out file.json] [-convergence]
//	incmap verify   [-sys file] [-design file.json]
//	incmap simulate [-sys file] [-design file.json] [-seed S]
//	                [-overrun-prob P] [-overrun-factor F]
//	incmap convert  [-tgff file.tgff] [-slot-bytes B] [-o file.json]
//	incmap session  init|commit|branch|rollback|log|diff|replay [-store DIR] ...
//
// generate emits a complete random test-case system as JSON (the last
// application in the file is the current one). inspect summarizes a
// system file. map freezes every application except the last (scheduling
// them in arrival order with the initial-mapping algorithm), maps the
// last one with the chosen strategy, and reports the design metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incdes/internal/analysis"
	"incdes/internal/core"
	"incdes/internal/exec"
	"incdes/internal/export"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
	"incdes/internal/sim"
	"incdes/internal/textplot"
	"incdes/internal/tgff"
	"incdes/internal/tm"
	"incdes/internal/ttp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "map":
		err = cmdMap(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "session":
		err = cmdSession(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "incmap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  incmap generate [-nodes N] [-clusters K] [-inter-frac F]
                  [-existing P] [-current P] [-seed S] [-o file]
  incmap inspect  [-sys file]
  incmap map      [-sys file] [-strategy ah|mh|sa|portfolio] [-gantt] [-medl]
                  [-parallel N] [-timeout D] [-sa-restarts K]
                  [-trace file.jsonl] [-stats-out file.json] [-convergence]
  incmap verify   [-sys file] [-design file.json]
  incmap simulate [-sys file] [-design file.json] [-seed S] [-overrun-prob P]
  incmap convert  [-tgff file.tgff] [-slot-bytes B] [-o file.json]
  incmap session  init|commit|branch|rollback|log|diff|replay [-store DIR] ...`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	nodes := fs.Int("nodes", 10, "number of processing nodes (per cluster with -clusters)")
	clusters := fs.Int("clusters", 1, "TDMA clusters; >1 chains buses with gateway nodes")
	interFrac := fs.Float64("inter-frac", 0.2, "with -clusters: fraction of processes homed on a neighboring cluster")
	existing := fs.Int("existing", 100, "processes in existing applications")
	current := fs.Int("current", 40, "processes in the current application")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	cfg := gen.Default()
	cfg.Nodes = *nodes
	if *clusters > 1 {
		cfg = gen.Multicluster(*clusters, *nodes, *interFrac)
	}
	tc, err := gen.MakeTestCase(cfg, *seed, *existing, *current)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tc.Sys.WriteJSON(w)
}

func loadSystem(path string) (*model.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return model.ReadSystem(f)
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	sysPath := fs.String("sys", "system.json", "system JSON file")
	fs.Parse(args)

	sys, err := loadSystem(*sysPath)
	if err != nil {
		return err
	}
	if len(sys.Arch.Buses) == 1 {
		bus := sys.Arch.Buses[0]
		fmt.Printf("architecture: %d nodes, TDMA round %v (%d slots)\n",
			len(sys.Arch.Nodes), bus.RoundLen(), bus.NumSlots())
	} else {
		fmt.Printf("architecture: %d nodes, %d TDMA buses, %d gateways\n",
			len(sys.Arch.Nodes), len(sys.Arch.Buses), len(sys.Arch.Gateways()))
		for _, bus := range sys.Arch.Buses {
			fmt.Printf("  bus %d: round %v (%d slots)\n", bus.ID, bus.RoundLen(), bus.NumSlots())
		}
	}
	fmt.Printf("hyperperiod:  %v\n", sys.Hyperperiod())
	for _, a := range sys.Apps {
		fmt.Printf("application %q: %d graphs, %d processes, %d messages\n",
			a.Name, len(a.Graphs), a.NumProcs(), a.NumMsgs())
		for _, g := range a.Graphs {
			fmt.Printf("  graph %q: %d procs, %d msgs, period %v, deadline %v\n",
				g.Name, len(g.Procs), len(g.Msgs), g.Period, g.Deadline)
		}
	}
	return nil
}

// cmdVerify re-validates an exported design against its system model:
// the independent check a deployment pipeline runs before flashing.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	sysPath := fs.String("sys", "system.json", "system JSON file")
	designPath := fs.String("design", "design.json", "design JSON file")
	fs.Parse(args)

	sys, err := loadSystem(*sysPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*designPath)
	if err != nil {
		return err
	}
	defer f.Close()
	design, err := export.ReadDesign(f)
	if err != nil {
		return err
	}
	errs := export.Check(design, sys, sys.Apps...)
	if len(errs) == 0 {
		fmt.Printf("design %s implements %s: all constraints hold\n", *designPath, *sysPath)
		return nil
	}
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "violation:", e)
	}
	return fmt.Errorf("%d constraint violations", len(errs))
}

// cmdConvert imports a TGFF task-graph file (the co-design community's
// benchmark format) as a single-application system around a TDMA bus.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	tgffPath := fs.String("tgff", "", "TGFF input file")
	name := fs.String("name", "tgff", "application name")
	slotBytes := fs.Int("slot-bytes", 16, "TDMA slot capacity in bytes")
	byteTime := fs.Int64("byte-time", 1, "bus time per byte")
	overhead := fs.Int64("slot-overhead", 4, "per-slot overhead time")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *tgffPath == "" {
		return fmt.Errorf("convert: -tgff is required")
	}
	f, err := os.Open(*tgffPath)
	if err != nil {
		return err
	}
	defer f.Close()
	parsed, err := tgff.Parse(f)
	if err != nil {
		return err
	}
	sys, err := parsed.Build(*name, tgff.BusConfig{
		SlotBytes:    *slotBytes,
		ByteTime:     tm.Time(*byteTime),
		SlotOverhead: tm.Time(*overhead),
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	return sys.WriteJSON(w)
}

// cmdSimulate replays one hyperperiod of an exported design with sampled
// execution times (optionally injecting WCET overruns) and reports every
// broken time-triggered assumption.
func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	sysPath := fs.String("sys", "system.json", "system JSON file")
	designPath := fs.String("design", "design.json", "design JSON file")
	seed := fs.Int64("seed", 1, "execution-time sampling seed")
	overrunProb := fs.Float64("overrun-prob", 0, "probability an activation exceeds its WCET")
	overrunFactor := fs.Float64("overrun-factor", 1.5, "WCET multiple of an injected overrun")
	fs.Parse(args)

	sys, err := loadSystem(*sysPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*designPath)
	if err != nil {
		return err
	}
	defer f.Close()
	design, err := export.ReadDesign(f)
	if err != nil {
		return err
	}
	res, err := exec.Run(design, sys, sys.Apps, exec.Options{
		Seed:          *seed,
		OverrunProb:   *overrunProb,
		OverrunFactor: *overrunFactor,
	})
	if err != nil {
		return err
	}
	fmt.Printf("executed %d activations and %d frames over %v; dynamic slack %v\n",
		res.Activations, res.Frames, design.Horizon, res.TotalIdle)
	if len(res.Violations) == 0 {
		fmt.Println("no time-triggered assumptions violated")
		return nil
	}
	for _, v := range res.Violations {
		fmt.Println("violation:", v)
	}
	return fmt.Errorf("%d violations", len(res.Violations))
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	sysPath := fs.String("sys", "system.json", "system JSON file")
	strategy := fs.String("strategy", "mh", "mapping strategy: ah, mh, sa or portfolio")
	gantt := fs.Bool("gantt", false, "print a Gantt chart of the result")
	medl := fs.Bool("medl", false, "print the resulting MEDL")
	analyze := fs.Bool("analyze", false, "print response times and utilization")
	svgPath := fs.String("svg", "", "write an SVG Gantt chart to this file")
	exportJSON := fs.String("export", "", "write the deployable design as JSON to this file")
	exportBin := fs.String("export-bin", "", "write the binary design image to this file")
	saIters := fs.Int("sa-iters", 0, "SA iterations (0 = default)")
	saRestarts := fs.Int("sa-restarts", 0, "independent SA restart chains (0 = 1)")
	parallel := fs.Int("parallel", 0, "evaluation workers (0 = one per CPU)")
	timeout := fs.Duration("timeout", 0, "abort the strategy after this long, keeping the best design so far (0 = none)")
	tracePath := fs.String("trace", "", "write the strategy's decision-event trace as JSONL to this file")
	statsPath := fs.String("stats-out", "", "write engine/scheduler/bus statistics as JSON to this file")
	convergence := fs.Bool("convergence", false, "print the cost-vs-iteration convergence curve")
	incremental := fs.Bool("incremental", true, "transactional incremental candidate evaluation (false = full rebuild per candidate)")
	fs.Parse(args)

	// Ctrl-C (or the timeout) cancels the strategy; the best design found
	// so far is still reported, validated, and exported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sys, err := loadSystem(*sysPath)
	if err != nil {
		return err
	}
	if len(sys.Apps) == 0 {
		return fmt.Errorf("system has no applications")
	}
	current := sys.Apps[len(sys.Apps)-1]

	// Freeze everything except the last application.
	base, err := sched.NewState(sys)
	if err != nil {
		return err
	}
	for _, app := range sys.Apps[:len(sys.Apps)-1] {
		if _, err := base.MapApp(app, sched.Hints{}); err != nil {
			return fmt.Errorf("scheduling existing application %q: %w", app.Name, err)
		}
	}

	prof := gen.ProfileForSystem(gen.Default(), sys)
	p, err := core.NewProblem(sys, base, current, prof, metrics.DefaultWeights(prof))
	if err != nil {
		return err
	}

	runStart := time.Now()
	var strat core.Strategy
	var saSeed int64 // recorded in the stats meta; 0 = not seed-driven
	switch *strategy {
	case "ah":
		strat = core.AH
	case "mh":
		strat = core.MH
	case "sa":
		saOpts := core.DefaultSAOptions()
		saOpts.Iterations = *saIters
		saOpts.Restarts = *saRestarts
		strat = core.SAWith(saOpts)
		saSeed = saOpts.Seed
	case "portfolio":
		// Race AH, MH and SA under the same deadline; the SA lane takes the
		// command-line SA tuning.
		saOpts := core.DefaultSAOptions()
		saOpts.Iterations = *saIters
		saOpts.Restarts = *saRestarts
		strat = core.PortfolioWith(core.PortfolioOptions{
			Lanes: []core.Strategy{core.AH, core.MH, core.SAWith(saOpts)},
		})
		saSeed = saOpts.Seed
	default:
		return fmt.Errorf("unknown strategy %q (want ah, mh, sa or portfolio)", *strategy)
	}
	// Observability: -stats-out attaches a registry, -trace/-convergence a
	// trace sink. With none of them set observer stays nil and the solve
	// path runs exactly as uninstrumented.
	var observer *obs.Observer
	var reg *obs.Registry
	var traceFile *os.File
	var traceWriter *obs.JSONLWriter
	var collector *obs.Collector
	if *statsPath != "" {
		reg = obs.NewRegistry()
	}
	var sinks []obs.Tracer
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		traceWriter = obs.NewJSONLWriter(traceFile)
		sinks = append(sinks, traceWriter)
	}
	if *convergence {
		collector = &obs.Collector{}
		sinks = append(sinks, collector)
	}
	if reg != nil || len(sinks) > 0 {
		observer = &obs.Observer{Stats: reg}
		switch len(sinks) {
		case 0:
		case 1:
			observer.Tracer = sinks[0]
		default:
			observer.Tracer = obs.MultiTracer(sinks...)
		}
	}

	mode := core.IncrementalOn
	if !*incremental {
		mode = core.IncrementalOff
	}
	sol, err := core.Solve(ctx, p, core.Options{Strategy: strat, Parallelism: *parallel, Incremental: mode, Observer: observer})
	if err != nil {
		return err
	}

	if vs := sim.Check(sol.State, sys.Apps...); len(vs) != 0 {
		return fmt.Errorf("internal error: schedule fails validation: %v", vs[0])
	}

	if sol.Interrupted {
		fmt.Println("interrupted: reporting the best design found so far")
	}
	fmt.Printf("strategy %s mapped %q in %v (%d design alternatives examined)\n",
		sol.Strategy, current.Name, sol.Elapsed.Round(time.Millisecond), sol.Evaluations)
	fmt.Printf("metrics: %v\n", sol.Report)
	fmt.Printf("future profile: Tmin=%v tneed=%v bneed=%dB\n", prof.Tmin, prof.TNeed, prof.BNeedBytes)
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		// Replay check: the trace must stand on its own, so its recorded
		// final cost has to match the objective Solve just reported.
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		events, err := obs.ReadTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("re-reading trace: %w", err)
		}
		final, ok := obs.FinalCost(events)
		if !ok || final != sol.Report.Objective {
			return fmt.Errorf("trace %s replays to cost %.6f, solver reported %.6f", *tracePath, final, sol.Report.Objective)
		}
		fmt.Printf("trace written to %s (%d events; replayed final cost matches %.2f)\n",
			*tracePath, len(events), final)
	}
	if collector != nil {
		fmt.Println()
		fmt.Print(textplot.Convergence(
			fmt.Sprintf("objective C vs committed design (%s)", sol.Strategy),
			obs.CostCurve(collector.Events()), 0, 0))
	}
	if reg != nil {
		snap := reg.Snapshot()
		snap.Meta = obs.NewRunMeta(runStart, saSeed)
		if err := snap.WriteJSONFile(*statsPath); err != nil {
			return err
		}
		fmt.Printf("statistics written to %s\n", *statsPath)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(textplot.Gantt(sol.State, 100))
	}
	if *svgPath != "" {
		if err := os.WriteFile(*svgPath, []byte(textplot.GanttSVG(sol.State, 1000)), 0o644); err != nil {
			return err
		}
		fmt.Printf("SVG Gantt written to %s\n", *svgPath)
	}
	if *analyze {
		rep, err := analysis.Analyze(sol.State, sys.Apps...)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(rep.String())
	}
	if *exportJSON != "" || *exportBin != "" {
		design, err := export.Build(sol.State)
		if err != nil {
			return err
		}
		if *exportJSON != "" {
			f, err := os.Create(*exportJSON)
			if err != nil {
				return err
			}
			if err := design.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("design written to %s\n", *exportJSON)
		}
		if *exportBin != "" {
			f, err := os.Create(*exportBin)
			if err != nil {
				return err
			}
			if err := design.EncodeBinary(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("binary image written to %s\n", *exportBin)
		}
	}
	if *medl {
		placements := make([]ttp.Placement, 0, len(sol.State.MsgEntries()))
		for _, e := range sol.State.MsgEntries() {
			placements = append(placements, ttp.Placement{
				Msg: e.Msg, Occ: e.Occ, Round: e.Round, Slot: e.Slot, Bytes: e.Bytes,
				Bus: e.Bus, Hop: e.Hop,
			})
		}
		entries, err := ttp.BuildMEDLAll(sys.Arch.Buses, placements)
		if err != nil {
			return err
		}
		fmt.Printf("\nMEDL (%d entries):\n", len(entries))
		multi := len(sys.Arch.Buses) > 1
		for i, e := range entries {
			if i == 40 {
				fmt.Printf("  … %d more\n", len(entries)-40)
				break
			}
			if multi {
				fmt.Printf("  bus %d round %3d slot %2d off %2dB: msg %4d occ %d hop %d (%dB) node %d [%v,%v)\n",
					e.Bus, e.Round, e.Slot, e.Offset, e.Msg, e.Occ, e.Hop, e.Bytes, e.Owner, e.Start, e.End)
				continue
			}
			fmt.Printf("  round %3d slot %2d off %2dB: msg %4d occ %d (%dB) node %d [%v,%v)\n",
				e.Round, e.Slot, e.Offset, e.Msg, e.Occ, e.Bytes, e.Owner, e.Start, e.End)
		}
	}
	return nil
}
