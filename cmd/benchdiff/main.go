// Command benchdiff compares two bench reports produced by
// `incbench -bench-out` and fails when the candidate regresses beyond a
// threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.25] [-min-wall-ms 20] baseline.json candidate.json
//
// Per matched (fig, size, strategy) point, wall time may grow and
// evaluation throughput may shrink by at most the threshold; points
// whose baseline wall time is under the floor are skipped (they are too
// fast to time meaningfully). Evaluation-count drift, missing points
// and metadata mismatches are reported as notes but do not fail the
// comparison — a changed algorithm is a review question, not a perf
// regression.
//
// Exit status: 0 when no point regresses, 1 on regressions, 2 on usage
// or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"incdes/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "tolerated relative slowdown per point (0.25 = 25%)")
	minWall := flag.Float64("min-wall-ms", 20, "skip timing comparison for points faster than this baseline wall time")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold T] [-min-wall-ms MS] baseline.json candidate.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := bench.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := bench.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regs, notes := bench.Compare(base, cand, bench.CompareOptions{
		Threshold: *threshold,
		MinWallMS: *minWall,
	})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	fmt.Printf("compared %d candidate points against %s (threshold %.0f%%, floor %.0fms)\n",
		len(cand.Points), flag.Arg(0), *threshold*100, *minWall)
	if len(regs) == 0 {
		fmt.Println("no perf regressions")
		return
	}
	for _, d := range regs {
		fmt.Println("REGRESSION:", d)
	}
	fmt.Printf("%d perf regressions beyond %.0f%%\n", len(regs), *threshold*100)
	os.Exit(1)
}
