// Command benchdiff compares two bench reports produced by
// `incbench -bench-out` and fails when the candidate regresses beyond a
// threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.25] [-min-wall-ms 20] [-min-median-speedup R]
//	          baseline.json candidate.json
//
// Per matched (fig, size, strategy) point, wall time may grow and
// evaluation throughput may shrink by at most the threshold; points
// whose baseline wall time is under the floor are skipped (they are too
// fast to time meaningfully). Evaluation-count drift, missing points
// and metadata mismatches are reported as notes but do not fail the
// comparison — a changed algorithm is a review question, not a perf
// regression.
//
// -min-median-speedup additionally requires the median candidate/
// baseline evals_per_sec ratio to reach R (1.0 = "no slower in the
// median"); 0 disables the check. CI uses it to assert that the
// incremental evaluation path actually pays for itself against a
// full-rebuild sweep of the same workload.
//
// Exit status: 0 when no point regresses, 1 on regressions (or a
// missed median-speedup floor), 2 on usage or I/O errors — including a
// report whose schema_version is newer than this binary understands.
package main

import (
	"flag"
	"fmt"
	"os"

	"incdes/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.25, "tolerated relative slowdown per point (0.25 = 25%)")
	minWall := flag.Float64("min-wall-ms", 20, "skip timing comparison for points faster than this baseline wall time")
	minSpeedup := flag.Float64("min-median-speedup", 0, "require the median candidate/baseline evals_per_sec ratio to reach this value (0 disables)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold T] [-min-wall-ms MS] [-min-median-speedup R] baseline.json candidate.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	base, err := bench.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := bench.ReadFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regs, notes := bench.Compare(base, cand, bench.CompareOptions{
		Threshold: *threshold,
		MinWallMS: *minWall,
	})
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	fmt.Printf("compared %d candidate points against %s (threshold %.0f%%, floor %.0fms)\n",
		len(cand.Points), flag.Arg(0), *threshold*100, *minWall)
	failed := false
	if *minSpeedup > 0 {
		ratio, ok := bench.MedianSpeedup(base, cand, *minWall)
		switch {
		case !ok:
			fmt.Println("REGRESSION: no points comparable for the median-speedup check")
			failed = true
		case ratio < *minSpeedup:
			fmt.Printf("REGRESSION: median evals/sec speedup %.3fx below required %.3fx\n", ratio, *minSpeedup)
			failed = true
		default:
			fmt.Printf("median evals/sec speedup %.3fx (required %.3fx)\n", ratio, *minSpeedup)
		}
	}
	if len(regs) == 0 && !failed {
		fmt.Println("no perf regressions")
		return
	}
	for _, d := range regs {
		fmt.Println("REGRESSION:", d)
	}
	if len(regs) > 0 {
		fmt.Printf("%d perf regressions beyond %.0f%%\n", len(regs), *threshold*100)
	}
	os.Exit(1)
}
