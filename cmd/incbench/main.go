// Command incbench regenerates the paper's experimental figures.
//
// Usage:
//
//	incbench -fig deviation  # avg deviation from near-optimal (paper Fig 1)
//	incbench -fig runtime    # avg execution time (paper Fig 2)
//	incbench -fig futurefit  # % of future applications mapped (paper Fig 3)
//	incbench -fig ablation   # extra: MH design-choice ablation
//	incbench -fig relaxed    # extra: modification cost of the next increment
//	incbench -fig portfolio  # extra: strategy-portfolio racer vs best single
//	incbench -fig multicluster # extra: deviation sweep over 1..3 TDMA clusters
//	incbench -fig all
//
// The -quick flag shrinks the sweep for a fast smoke run; -cases and
// -sizes control the full sweep (the paper used 50 cases per point —
// expect that to take hours, exactly like the original SA reference did).
//
// -stats-out FILE writes the run's observability snapshot as JSON;
// -bench-out FILE writes a perf-regression report (wall time, evals/sec
// and cache hit rate per sweep point, plus peak RSS) that cmd/benchdiff
// compares against a baseline. Both files are written atomically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"incdes/internal/bench"
	"incdes/internal/core"
	"incdes/internal/eval"
	"incdes/internal/gen"
	"incdes/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: deviation, runtime, futurefit, ablation, relaxed, criteria, portfolio, multicluster, all")
	cases := flag.Int("cases", 3, "test cases per sweep point")
	existing := flag.Int("existing", 400, "processes in existing applications")
	sizes := flag.String("sizes", "", "comma-separated current-application sizes (default paper sweep)")
	seed := flag.Int64("seed", 1, "base seed")
	quick := flag.Bool("quick", false, "small fast sweep (overrides -sizes/-cases/-existing)")
	parallel := flag.Int("parallel", 1, "concurrent test cases (use 1 for trustworthy runtime measurements; <=0 means one per CPU)")
	stratParallel := flag.Int("strategy-parallel", 1, "evaluation workers inside each strategy run (use 1 for trustworthy runtime measurements; <=0 means one per CPU)")
	verbose := flag.Bool("v", false, "log per-case progress to stderr")
	statsPath := flag.String("stats-out", "", "write sweep-wide engine/scheduler/bus statistics as JSON to this file")
	benchPath := flag.String("bench-out", "", "write a machine-readable perf baseline (BENCH_*.json) from the deviation sweep to this file")
	incremental := flag.Bool("incremental", true, "transactional incremental candidate evaluation (false = full rebuild per candidate)")
	flag.Parse()
	start := time.Now()

	// Ctrl-C aborts the sweep: partial sweeps would misrepresent the
	// figures, so the runners stop with the context's error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := eval.Options{
		Config:           gen.Default(),
		Existing:         *existing,
		Cases:            *cases,
		BaseSeed:         *seed,
		Parallel:         *parallel,
		StrategyParallel: *stratParallel,
	}
	if !*incremental {
		o.Incremental = core.IncrementalOff
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "incbench: bad -sizes:", err)
				os.Exit(2)
			}
			o.Sizes = append(o.Sizes, n)
		}
	}
	if *quick {
		o.Config.Nodes = 5
		o.Config.GraphMinProcs = 5
		o.Config.GraphMaxProcs = 12
		o.Sizes = []int{20, 40, 80}
		o.Existing = 100
		o.Cases = 2
		o.SAOptions = core.SAOptions{Iterations: 1500}
		o.FutureProcs = 25
	}
	if *verbose {
		o.Progress = os.Stderr
	}
	var reg *obs.Registry
	if *statsPath != "" {
		reg = obs.NewRegistry()
		o.Observer = &obs.Observer{Stats: reg}
	}

	// deviation and runtime come from the same sweep; cache it so that
	// -fig all measures it only once.
	var devRes *eval.DeviationResult
	deviation := func() (*eval.DeviationResult, error) {
		if devRes != nil {
			return devRes, nil
		}
		var err error
		devRes, err = eval.RunDeviation(ctx, o)
		return devRes, err
	}
	var mcRes *eval.MulticlusterResult
	multicluster := func() (*eval.MulticlusterResult, error) {
		if mcRes != nil {
			return mcRes, nil
		}
		var err error
		mcRes, err = eval.RunMulticluster(ctx, o)
		return mcRes, err
	}

	run := func(name string) error {
		switch name {
		case "deviation", "runtime":
			res, err := deviation()
			if err != nil {
				return err
			}
			if name == "deviation" {
				fmt.Print(res.DeviationChart())
			} else {
				fmt.Print(res.RuntimeChart())
			}
			fmt.Println()
			fmt.Print(res.Table())
		case "futurefit":
			res, err := eval.RunFutureFit(ctx, o)
			if err != nil {
				return err
			}
			fmt.Print(res.FitChart())
		case "ablation":
			res, err := eval.RunAblation(ctx, o)
			if err != nil {
				return err
			}
			fmt.Print(res.Table())
		case "criteria":
			res, err := eval.RunCriterionAblation(ctx, o)
			if err != nil {
				return err
			}
			fmt.Print(res.Table())
		case "relaxed":
			res, err := eval.RunRelaxed(ctx, o)
			if err != nil {
				return err
			}
			fmt.Println("modification cost of admitting the future application")
			fmt.Print(res.Table())
		case "portfolio":
			res, err := eval.RunPortfolio(ctx, o)
			if err != nil {
				return err
			}
			fmt.Println("portfolio racer vs the best single strategy")
			fmt.Print(res.Table())
		case "multicluster":
			res, err := multicluster()
			if err != nil {
				return err
			}
			fmt.Println("deviation sweep over multi-cluster platforms (buses chained by gateways)")
			fmt.Print(res.Table())
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		fmt.Println()
		return nil
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"deviation", "runtime", "futurefit", "ablation", "relaxed", "criteria"}
	}
	if *benchPath != "" {
		switch *fig {
		case "deviation", "runtime", "all", "multicluster":
		default:
			fmt.Fprintf(os.Stderr, "incbench: -bench-out needs a timed sweep; use -fig deviation, runtime, multicluster or all (got %q)\n", *fig)
			os.Exit(2)
		}
	}
	for _, f := range figs {
		if err := run(f); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
	}
	if *benchPath != "" {
		var rep *bench.Report
		if *fig == "multicluster" {
			res, err := multicluster() // cached: the sweep above already ran it
			if err != nil {
				fmt.Fprintln(os.Stderr, "incbench:", err)
				os.Exit(1)
			}
			rep = bench.FromSweep(res.DevRows(), "multicluster", time.Since(start), *seed, *quick)
		} else {
			res, err := deviation() // cached: the sweep above already ran it
			if err != nil {
				fmt.Fprintln(os.Stderr, "incbench:", err)
				os.Exit(1)
			}
			rep = bench.FromDeviation(res, time.Since(start), *seed, *quick)
		}
		if err := rep.WriteFile(*benchPath); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench report written to %s (%d points)\n", *benchPath, len(rep.Points))
	}
	if reg != nil {
		snap := reg.Snapshot()
		snap.Meta = obs.NewRunMeta(start, *seed)
		if err := snap.WriteJSONFile(*statsPath); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "statistics written to %s\n", *statsPath)
	}
}
