// Command incmapd is the long-running solve service: the engine behind
// incmap, exposed over HTTP with live telemetry.
//
// Usage:
//
//	incmapd [-addr :8080] [-max-concurrent N] [-queue N]
//	        [-job-timeout D] [-parallel N] [-retain N] [-pprof]
//	        [-session-dir DIR] [-solution-cache N]
//	        [-debug-requests N] [-slow-request-log D]
//	        [-coordinator -workers URL,URL,...]
//	        [-worker-of URL [-advertise URL]]
//
// Endpoints (API under /v1; the old unversioned solve paths remain as
// aliases for one release):
//
//	POST   /v1/solve              submit a system JSON; returns the solution document
//	POST   /v1/solve?detach=1     submit and return 202 + job id immediately
//	GET    /v1/solve/{id}         job status / result
//	DELETE /v1/solve/{id}         cancel (the engine keeps the best design so far)
//	GET    /v1/solve/{id}/events  SSE stream: trace events + cost-curve points
//	POST   /v1/sessions           open a versioned design session over a base system
//	GET    /v1/sessions           list sessions
//	GET    /v1/sessions/{id}      version tree + branch heads
//	DELETE /v1/sessions/{id}      delete a session
//	POST   /v1/sessions/{id}/commits   commit an application JSON to a branch
//	POST   /v1/sessions/{id}/branches  create a what-if branch from a version
//	POST   /v1/sessions/{id}/rollback  move a branch head back to an ancestor
//	GET    /v1/sessions/{id}/diff      placement + metric delta between versions
//	GET    /v1/debug/requests       recent request span trees (filters: status=, min-duration=, n=)
//	GET    /v1/debug/requests/{id}  one request's span tree by correlation ID
//	GET    /metrics               Prometheus text exposition format
//	GET    /healthz, /readyz      liveness / readiness probes
//	GET    /debug/pprof/          profiling (only with -pprof)
//
// Query parameters of /v1/solve: strategy=ah|mh|sa|portfolio, app=<name>,
// sa-iters, sa-restarts, seed, parallel, timeout (Go duration), cache=off.
// /v1/sessions/{id}/commits accepts the same solve knobs plus branch=.
//
// With -solution-cache N the server keeps the last N solve results keyed
// by a canonical problem fingerprint: an identical resubmission is served
// from the cache (X-Incdes-Cache: hit) and identical concurrent requests
// coalesce onto one solve (single-flight; followers get
// X-Incdes-Cache: inflight). cache=off opts a request out.
//
// With -session-dir sessions persist as JSON documents in that directory
// and survive restarts (schedules are rematerialized by deterministic
// replay); without it sessions are held in memory only.
//
// Cluster mode. With -coordinator the daemon shards solves across the
// worker daemons listed in -workers (and any that self-register at POST
// /v1/cluster/workers): SA restart chains, portfolio lanes and whole
// jobs run remotely and reduce deterministically, so the answer is
// byte-identical at any cluster size. /v1/metrics then merges each
// worker's instruments under per-worker labels. With -worker-of URL the
// daemon serves the cluster RPC endpoint and keeps itself registered
// with the coordinator at URL, advertising -advertise (default
// http://localhost<addr>).
//
// SIGINT/SIGTERM drain the server: readiness flips to 503, in-flight
// solves are cancelled (returning best-so-far designs) and the listener
// shuts down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"incdes/internal/cluster"
	"incdes/internal/core"
	"incdes/internal/serve"
	"incdes/internal/session"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "solves running at once (0 = one per CPU)")
	queue := flag.Int("queue", 16, "solves allowed to wait for a slot before 429")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-solve wall-clock cap (0 = none)")
	parallel := flag.Int("parallel", 0, "evaluation workers per solve (0 = one per CPU)")
	retain := flag.Int("retain", 64, "finished jobs kept queryable")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	incremental := flag.Bool("incremental", true, "transactional incremental candidate evaluation (false = full rebuild per candidate)")
	sessionDir := flag.String("session-dir", "", "directory for persistent design sessions (empty = in-memory only)")
	solutionCache := flag.Int("solution-cache", 0, "whole-solution LRU entries; identical requests coalesce and replay (0 = off)")
	debugRequests := flag.Int("debug-requests", 0, "completed request span trees retained for /v1/debug/requests (0 = default 256, negative = off)")
	slowRequestLog := flag.Duration("slow-request-log", 0, "log a one-line span breakdown of requests at least this slow (0 = off)")
	coordinator := flag.Bool("coordinator", false, "shard solves across the cluster workers in -workers")
	workers := flag.String("workers", "", "comma-separated worker base URLs for -coordinator")
	leaseTimeout := flag.Duration("lease-timeout", 0, "coordinator: heartbeat silence before a unit is duplicated elsewhere (0 = 3s)")
	workerOf := flag.String("worker-of", "", "coordinator base URL to serve as a cluster worker of")
	advertise := flag.String("advertise", "", "base URL this worker registers with its coordinator (default http://localhost<addr>)")
	flag.Parse()

	if *coordinator && *workerOf != "" {
		log.Fatal("incmapd: -coordinator and -worker-of are mutually exclusive")
	}

	mode := core.IncrementalOn
	if !*incremental {
		mode = core.IncrementalOff
	}
	var store session.Store
	if *sessionDir != "" {
		ds, err := session.NewDiskStore(*sessionDir)
		if err != nil {
			log.Fatalf("incmapd: %v", err)
		}
		store = ds
	}
	cfg := serve.Config{
		MaxConcurrent:     *maxConcurrent,
		QueueDepth:        *queue,
		JobTimeout:        *jobTimeout,
		Parallelism:       *parallel,
		RetainJobs:        *retain,
		EnablePprof:       *pprofOn,
		Incremental:       mode,
		SessionStore:      store,
		SolutionCacheSize: *solutionCache,
		DebugRequests:     *debugRequests,
		SlowRequestLog:    *slowRequestLog,
	}

	var coord *cluster.Coordinator
	if *coordinator {
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(strings.TrimRight(u, "/")); u != "" {
				urls = append(urls, u)
			}
		}
		coord = cluster.NewCoordinator(cluster.Options{Workers: urls, LeaseTimeout: *leaseTimeout})
		cfg.Dispatcher = coord
		cfg.MetricsExtra = coord.MetricsExtra
	}
	srv := serve.New(cfg)

	handler := srv.Handler()
	if coord != nil {
		handler = coord.Handler(handler)
	}
	var worker *cluster.Worker
	if *workerOf != "" {
		worker = cluster.NewWorker(srv, cluster.WorkerOptions{})
		handler = worker.Handler(handler)
	}

	hs := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if worker != nil {
		self := *advertise
		if self == "" {
			self = "http://localhost" + *addr
		}
		go worker.RegisterLoop(ctx, strings.TrimRight(*workerOf, "/"), strings.TrimRight(self, "/"))
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	switch {
	case coord != nil:
		log.Printf("incmapd listening on %s (coordinator, %d static workers, job timeout %v)", *addr, len(strings.FieldsFunc(*workers, func(r rune) bool { return r == ',' })), *jobTimeout)
	case worker != nil:
		log.Printf("incmapd listening on %s (worker of %s, job timeout %v)", *addr, *workerOf, *jobTimeout)
	default:
		log.Printf("incmapd listening on %s (pprof %v, job timeout %v)", *addr, *pprofOn, *jobTimeout)
	}

	select {
	case err := <-errc:
		log.Fatalf("incmapd: %v", err)
	case <-ctx.Done():
	}
	log.Print("incmapd: draining")
	if coord != nil {
		coord.Close()
	}
	srv.Close() // cancel running solves; readiness goes 503
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "incmapd: shutdown:", err)
		os.Exit(1)
	}
}
