package bench

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"incdes/internal/eval"
)

func sampleResult() *eval.DeviationResult {
	return &eval.DeviationResult{Rows: []eval.DevRow{
		{
			Size: 20, Cases: 2,
			AHTime: 100 * time.Microsecond, MHTime: 50 * time.Millisecond, SATime: 400 * time.Millisecond,
			AHEvals: 1, MHEvals: 500, SAEvals: 3000,
			AHHits: 0, MHHits: 100, SAHits: 900,
		},
		{
			Size: 40, Cases: 2,
			AHTime: 200 * time.Microsecond, MHTime: 120 * time.Millisecond, SATime: 900 * time.Millisecond,
			AHEvals: 1, MHEvals: 1200, SAEvals: 6000,
			AHHits: 0, MHHits: 240, SAHits: 1800,
		},
	}}
}

func TestFromDeviationAndRoundTrip(t *testing.T) {
	r := FromDeviation(sampleResult(), 2*time.Second, 7, true)
	if r.SchemaVersion != SchemaVersion || r.Fig != "deviation" || !r.Quick || r.Seed != 7 {
		t.Fatalf("header = %+v", r)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(r.Points))
	}
	if r.GoVersion == "" || r.GOMAXPROCS < 1 {
		t.Errorf("run metadata missing: %+v", r)
	}
	if r.PeakRSSBytes <= 0 {
		t.Errorf("PeakRSSBytes = %d, want > 0", r.PeakRSSBytes)
	}
	var mh Point
	for _, p := range r.Points {
		if p.Size == 20 && p.Strategy == "MH" {
			mh = p
		}
	}
	if mh.WallMS != 50 {
		t.Errorf("MH wall = %v", mh.WallMS)
	}
	if want := 500 / 0.05; mh.EvalsPerSec != want {
		t.Errorf("MH evals/sec = %v, want %v", mh.EvalsPerSec, want)
	}
	if want := 100.0 / 500; mh.CacheHitRate != want {
		t.Errorf("MH hit rate = %v, want %v", mh.CacheHitRate, want)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(r.Points) || back.WallMS != r.WallMS {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestWriteFileErrorNamesPath(t *testing.T) {
	r := FromDeviation(sampleResult(), time.Second, 1, false)
	bad := filepath.Join(t.TempDir(), "missing", "BENCH.json")
	err := r.WriteFile(bad)
	if err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("err = %v, want failure naming %s", err, bad)
	}
}

func TestCompare(t *testing.T) {
	base := FromDeviation(sampleResult(), 2*time.Second, 7, true)

	// Identical reports: no regressions.
	if regs, _ := Compare(base, base, CompareOptions{Threshold: 0.25}); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}

	// A 2x slowdown on a timed point regresses on both metrics.
	slow := FromDeviation(sampleResult(), 2*time.Second, 7, true)
	for i := range slow.Points {
		if slow.Points[i].Strategy == "SA" && slow.Points[i].Size == 20 {
			slow.Points[i].WallMS *= 2
			slow.Points[i].EvalsPerSec /= 2
		}
	}
	regs, _ := Compare(base, slow, CompareOptions{Threshold: 0.25})
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want wall_ms + evals_per_sec", regs)
	}
	if regs[0].Key != "deviation/20/SA" || regs[0].Metric != "evals_per_sec" {
		t.Errorf("regs[0] = %v", regs[0])
	}

	// Sub-floor points (AH in microseconds) never regress on timing.
	noisy := FromDeviation(sampleResult(), 2*time.Second, 7, true)
	for i := range noisy.Points {
		if noisy.Points[i].Strategy == "AH" {
			noisy.Points[i].WallMS *= 10
		}
	}
	if regs, _ := Compare(base, noisy, CompareOptions{Threshold: 0.25}); len(regs) != 0 {
		t.Fatalf("sub-floor AH timing flagged: %v", regs)
	}

	// Changed work and changed seed surface as notes, not regressions.
	drift := FromDeviation(sampleResult(), 2*time.Second, 8, true)
	for i := range drift.Points {
		drift.Points[i].Evaluations++
	}
	regs, notes := Compare(base, drift, CompareOptions{Threshold: 0.25})
	if len(regs) != 0 {
		t.Errorf("drift regressed: %v", regs)
	}
	var seedNote, evalNote bool
	for _, n := range notes {
		if strings.Contains(n, "seed differs") {
			seedNote = true
		}
		if strings.Contains(n, "evaluations changed") {
			evalNote = true
		}
	}
	if !seedNote || !evalNote {
		t.Errorf("notes = %v", notes)
	}

	// Missing points are reported.
	short := FromDeviation(sampleResult(), 2*time.Second, 7, true)
	short.Points = short.Points[:3]
	_, notes = Compare(base, short, CompareOptions{Threshold: 0.25})
	var missing int
	for _, n := range notes {
		if strings.Contains(n, "missing from candidate") {
			missing++
		}
	}
	if missing != 3 {
		t.Errorf("missing notes = %d, want 3 (%v)", missing, notes)
	}
}

func TestReadFileSchemaTooNew(t *testing.T) {
	r := FromDeviation(sampleResult(), time.Second, 1, false)
	r.SchemaVersion = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "BENCH_future.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil {
		t.Fatal("ReadFile accepted a report from a newer schema")
	}
	if !errors.Is(err, ErrSchemaTooNew) {
		t.Errorf("err = %v, want ErrSchemaTooNew", err)
	}
	if !strings.Contains(err.Error(), "newer") || !strings.Contains(err.Error(), path) {
		t.Errorf("message %q should say the report is newer and name the file", err)
	}

	// An older (or just different) schema still errors, but is not "too new".
	r.SchemaVersion = 0
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	_, err = ReadFile(path)
	if err == nil || errors.Is(err, ErrSchemaTooNew) {
		t.Errorf("schema 0: err = %v, want mismatch error that is not ErrSchemaTooNew", err)
	}
}

func TestMedianSpeedup(t *testing.T) {
	base := FromDeviation(sampleResult(), 2*time.Second, 7, true)
	cand := FromDeviation(sampleResult(), 2*time.Second, 7, true)

	// Identical reports: median ratio is exactly 1.
	ratio, ok := MedianSpeedup(base, cand, 0)
	if !ok || ratio != 1 {
		t.Fatalf("identical reports: ratio = %v ok = %v, want 1 true", ratio, ok)
	}

	// Double every throughput: median ratio 2, regardless of point order.
	for i := range cand.Points {
		cand.Points[i].EvalsPerSec *= 2
	}
	ratio, ok = MedianSpeedup(base, cand, 0)
	if !ok || ratio != 2 {
		t.Fatalf("doubled throughput: ratio = %v ok = %v, want 2 true", ratio, ok)
	}

	// Sub-floor points are noise, not signal: the AH rows run in
	// microseconds, so even an absurd throughput swing there must not
	// move the median.
	for i := range cand.Points {
		if cand.Points[i].Strategy == "AH" {
			cand.Points[i].EvalsPerSec *= 1000
		}
	}
	ratio, ok = MedianSpeedup(base, cand, 0)
	if !ok || ratio != 2 {
		t.Fatalf("sub-floor AH points should be excluded: ratio = %v ok = %v, want 2 true", ratio, ok)
	}

	// Zero-throughput points are skipped, not treated as infinite
	// speedups or divide-by-zero — even above the floor.
	for i := range base.Points {
		if base.Points[i].Strategy == "MH" {
			base.Points[i].EvalsPerSec = 0
		}
	}
	ratio, ok = MedianSpeedup(base, cand, 0)
	if !ok || ratio != 2 {
		t.Fatalf("zero-throughput MH points should leave SA comparable: ratio = %v ok = %v", ratio, ok)
	}

	// No comparable points at all.
	empty := &Report{SchemaVersion: SchemaVersion}
	if _, ok = MedianSpeedup(base, empty, 0); ok {
		t.Fatal("empty candidate should not be comparable")
	}
}
