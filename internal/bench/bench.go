// Package bench defines the machine-readable perf-baseline artifact the
// regression harness trades in: `incbench -bench-out` writes a Report,
// CI uploads it, and `benchdiff` compares two of them.
//
// A Report records, per sweep point and strategy, the averaged wall
// time, evaluation count, evaluation throughput and cache-hit rate,
// plus enough run metadata (go version, GOMAXPROCS, seed, peak RSS) to
// judge whether two reports are comparable at all. Writes are atomic
// (temp file + rename), so an interrupted sweep never leaves a
// truncated baseline behind.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"incdes/internal/eval"
)

// SchemaVersion identifies the JSON layout of Report.
const SchemaVersion = 1

// Point is one (sweep size, strategy) measurement, averaged over the
// sweep's test cases.
type Point struct {
	Fig          string  `json:"fig"`
	Size         int     `json:"size"`
	Strategy     string  `json:"strategy"`
	Cases        int     `json:"cases"`
	WallMS       float64 `json:"wall_ms"`
	Evaluations  float64 `json:"evaluations"`
	EvalsPerSec  float64 `json:"evals_per_sec"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// key identifies a point for cross-report matching.
func (p Point) key() string {
	return fmt.Sprintf("%s/%d/%s", p.Fig, p.Size, p.Strategy)
}

// Report is one bench artifact.
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	Fig           string  `json:"fig"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Seed          int64   `json:"seed"`
	Quick         bool    `json:"quick,omitempty"`
	WallMS        float64 `json:"wall_ms"` // whole-sweep wall time
	PeakRSSBytes  int64   `json:"peak_rss_bytes"`
	Points        []Point `json:"points"`
}

// FromDeviation converts a deviation-sweep result into a bench report:
// one point per (size, strategy). elapsed is the whole sweep's wall
// time; seed and quick describe how the sweep was configured.
func FromDeviation(res *eval.DeviationResult, elapsed time.Duration, seed int64, quick bool) *Report {
	return FromSweep(res.Rows, "deviation", elapsed, seed, quick)
}

// FromSweep converts any DevRow-shaped sweep into a bench report under
// the given figure name (the multicluster sweep reuses this with Size
// carrying the cluster count).
func FromSweep(rows []eval.DevRow, fig string, elapsed time.Duration, seed int64, quick bool) *Report {
	r := &Report{
		SchemaVersion: SchemaVersion,
		Fig:           fig,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          seed,
		Quick:         quick,
		WallMS:        float64(elapsed) / float64(time.Millisecond),
		PeakRSSBytes:  PeakRSS(),
	}
	for _, row := range rows {
		for _, s := range []struct {
			name  string
			t     time.Duration
			evals float64
			hits  float64
		}{
			{"AH", row.AHTime, row.AHEvals, row.AHHits},
			{"MH", row.MHTime, row.MHEvals, row.MHHits},
			{"SA", row.SATime, row.SAEvals, row.SAHits},
		} {
			p := Point{
				Fig:         r.Fig,
				Size:        row.Size,
				Strategy:    s.name,
				Cases:       row.Cases,
				WallMS:      s.t.Seconds() * 1000,
				Evaluations: s.evals,
			}
			if s.t > 0 {
				p.EvalsPerSec = s.evals / s.t.Seconds()
			}
			if s.evals > 0 {
				p.CacheHitRate = s.hits / s.evals
			}
			r.Points = append(r.Points, p)
		}
	}
	return r
}

// WriteFile writes the report atomically (temp file + rename); errors
// identify the destination path.
func (r *Report) WriteFile(path string) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		tmp.Close()
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	return nil
}

// ReadFile parses a bench report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: reading %s: %w", path, err)
	}
	if r.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, newer than %d (the newest this tool understands): %w — rebuild benchdiff from the branch that wrote the report",
			path, r.SchemaVersion, SchemaVersion, ErrSchemaTooNew)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, this tool understands %d",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// ErrSchemaTooNew marks a report written by a newer tool than this
// binary: comparing it silently would misread fields, so ReadFile
// refuses with this error wrapped.
var ErrSchemaTooNew = fmt.Errorf("bench: report schema newer than this tool")

// MedianSpeedup returns the median candidate/baseline evals_per_sec
// ratio over the points matched by (fig, size, strategy), skipping
// points without a positive throughput on both sides and points whose
// wall time on either side is below minWallMS (0 takes Compare's 20ms
// default) — sub-floor timings are pure noise and would let a
// microsecond-scale point swing the median. ok is false when no point
// is comparable.
func MedianSpeedup(base, cand *Report, minWallMS float64) (ratio float64, ok bool) {
	if minWallMS == 0 {
		minWallMS = 20
	}
	baseByKey := map[string]Point{}
	for _, p := range base.Points {
		baseByKey[p.key()] = p
	}
	var ratios []float64
	for _, np := range cand.Points {
		bp, found := baseByKey[np.key()]
		if !found || bp.EvalsPerSec <= 0 || np.EvalsPerSec <= 0 {
			continue
		}
		if bp.WallMS < minWallMS || np.WallMS < minWallMS {
			continue // too fast to time meaningfully
		}
		ratios = append(ratios, np.EvalsPerSec/bp.EvalsPerSec)
	}
	if len(ratios) == 0 {
		return 0, false
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 1 {
		return ratios[mid], true
	}
	return (ratios[mid-1] + ratios[mid]) / 2, true
}

// PeakRSS returns the process's peak resident set size in bytes, read
// from /proc/self/status (VmHWM) on Linux. On platforms without procfs
// it falls back to the Go heap's current Sys size — an underestimate,
// but monotone enough for regression tracking on one platform.
func PeakRSS() int64 {
	if v, ok := procPeakRSS(); ok {
		return v
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

func procPeakRSS() (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}

// Delta is one regression (or informational drift) found by Compare.
type Delta struct {
	Key    string  // fig/size/strategy
	Metric string  // "wall_ms", "evals_per_sec", ...
	Old    float64 // baseline value
	New    float64 // candidate value
	Rel    float64 // signed relative change, (new-old)/old
}

func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%+.1f%%)", d.Key, d.Metric, d.Old, d.New, d.Rel*100)
}

// CompareOptions tune Compare.
type CompareOptions struct {
	// Threshold is the relative slowdown tolerated before a point is a
	// regression (0.25 = 25%). Only changes for the worse regress: wall
	// time growing, throughput shrinking.
	Threshold float64
	// MinWallMS excludes points whose baseline wall time is below this
	// floor from the wall-time and throughput comparison: sub-floor
	// timings (the AH baseline runs in microseconds) are pure noise at
	// any threshold. Default 20ms.
	MinWallMS float64
}

// Compare matches the two reports' points by (fig, size, strategy) and
// returns the regressions beyond opts.Threshold plus informational
// notes: evaluation-count drift (the work itself changed, so timing
// comparisons are apples to oranges), points present on only one side,
// and metadata mismatches.
func Compare(base, cand *Report, opts CompareOptions) (regressions []Delta, notes []string) {
	if opts.Threshold <= 0 {
		opts.Threshold = 0.25
	}
	if opts.MinWallMS == 0 {
		opts.MinWallMS = 20
	}
	if base.GoVersion != cand.GoVersion {
		notes = append(notes, fmt.Sprintf("go version differs: %s vs %s", base.GoVersion, cand.GoVersion))
	}
	if base.GOMAXPROCS != cand.GOMAXPROCS {
		notes = append(notes, fmt.Sprintf("GOMAXPROCS differs: %d vs %d", base.GOMAXPROCS, cand.GOMAXPROCS))
	}
	if base.Seed != cand.Seed {
		notes = append(notes, fmt.Sprintf("seed differs: %d vs %d — sweeps measured different workloads", base.Seed, cand.Seed))
	}
	baseByKey := map[string]Point{}
	for _, p := range base.Points {
		baseByKey[p.key()] = p
	}
	seen := map[string]bool{}
	for _, np := range cand.Points {
		key := np.key()
		seen[key] = true
		bp, ok := baseByKey[key]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: new point, no baseline", key))
			continue
		}
		if bp.Evaluations != np.Evaluations {
			notes = append(notes, fmt.Sprintf("%s: evaluations changed %.0f -> %.0f (work differs; timing deltas are not like-for-like)",
				key, bp.Evaluations, np.Evaluations))
		}
		if bp.WallMS < opts.MinWallMS || np.WallMS < opts.MinWallMS {
			continue // too fast to time meaningfully
		}
		if bp.WallMS > 0 {
			rel := (np.WallMS - bp.WallMS) / bp.WallMS
			if rel > opts.Threshold {
				regressions = append(regressions, Delta{Key: key, Metric: "wall_ms", Old: bp.WallMS, New: np.WallMS, Rel: rel})
			}
		}
		if bp.EvalsPerSec > 0 {
			rel := (np.EvalsPerSec - bp.EvalsPerSec) / bp.EvalsPerSec
			if rel < -opts.Threshold {
				regressions = append(regressions, Delta{Key: key, Metric: "evals_per_sec", Old: bp.EvalsPerSec, New: np.EvalsPerSec, Rel: rel})
			}
		}
	}
	for key := range baseByKey {
		if !seen[key] {
			notes = append(notes, fmt.Sprintf("%s: baseline point missing from candidate", key))
		}
	}
	sort.Slice(regressions, func(i, j int) bool {
		if regressions[i].Key != regressions[j].Key {
			return regressions[i].Key < regressions[j].Key
		}
		return regressions[i].Metric < regressions[j].Metric
	})
	sort.Strings(notes)
	return regressions, notes
}
