package cache

import (
	"container/list"
	"sync"
)

// LRU is a size-bounded, thread-safe least-recently-used map from
// fingerprint to cached value. It is deliberately value-agnostic (the
// serve layer stores solution entries, sessions store commit results)
// and tracks its own hit/miss/eviction tallies so callers can mirror
// them into an obs.Registry without double bookkeeping.
type LRU struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent
	items map[string]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type lruEntry struct {
	key string
	val any
}

// NewLRU returns an LRU bounded to max entries. max must be positive;
// callers gate "cache disabled" before construction.
func NewLRU(max int) *LRU {
	if max <= 0 {
		max = 1
	}
	return &LRU{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the value cached under key, marking it most recently
// used.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores val under key, evicting the least recently used entry if
// the cache is full. It reports whether an eviction happened.
func (c *LRU) Put(key string, val any) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return false
	}
	evicted := false
	if c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
		evicted = true
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	return evicted
}

// Len returns the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit, miss and eviction counts.
func (c *LRU) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
