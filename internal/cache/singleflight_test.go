package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleFlightCoalesces(t *testing.T) {
	g := NewGroup()
	const n = 32
	// The leader joins first and completes only after every follower has
	// joined, so all n members genuinely overlap on one flight.
	lead, leader := g.Join(context.Background(), "k")
	if !leader {
		t.Fatal("first Join is not the leader")
	}
	var extraLeaders, solves atomic.Int64
	var joined, wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		joined.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, leader := g.Join(context.Background(), "k")
			if leader {
				extraLeaders.Add(1)
			}
			joined.Done()
			<-f.Done()
			f.Leave()
			v, err := f.Result()
			if err != nil || v != "result" {
				t.Errorf("Result = %v, %v", v, err)
			}
		}()
	}
	joined.Wait()
	solves.Add(1)
	lead.Complete("result", nil)
	lead.Leave()
	wg.Wait()
	if extraLeaders.Load() != 0 || solves.Load() != 1 {
		t.Errorf("extra leaders=%d solves=%d, want 0 and 1", extraLeaders.Load(), solves.Load())
	}
}

func TestSingleFlightKeyReleasedAfterComplete(t *testing.T) {
	g := NewGroup()
	f1, leader := g.Join(context.Background(), "k")
	if !leader {
		t.Fatal("first Join is not the leader")
	}
	f1.Complete(1, nil)
	f1.Leave()
	f2, leader := g.Join(context.Background(), "k")
	if !leader || f2 == f1 {
		t.Fatal("completed flight still coalesces new joins")
	}
	f2.Complete(2, nil)
	f2.Leave()
}

// TestSingleFlightLeaderLeaveKeepsFollowers pins the promotion
// semantics: the leader's departure must not cancel the flight while a
// follower still waits on it.
func TestSingleFlightLeaderLeaveKeepsFollowers(t *testing.T) {
	g := NewGroup()
	f, leader := g.Join(context.Background(), "k")
	if !leader {
		t.Fatal("not leader")
	}
	if _, leader2 := g.Join(context.Background(), "k"); leader2 {
		t.Fatal("second join elected leader")
	}
	if remaining := f.Leave(); remaining != 1 {
		t.Fatalf("Leave = %d members remaining, want 1", remaining)
	}
	select {
	case <-f.Context().Done():
		t.Fatal("flight cancelled while a follower remains")
	default:
	}
	// The (promoted) follower leaves too: now the solve must be cancelled.
	if remaining := f.Leave(); remaining != 0 {
		t.Fatalf("final Leave = %d, want 0", remaining)
	}
	select {
	case <-f.Context().Done():
	case <-time.After(time.Second):
		t.Fatal("flight context not cancelled after the last member left")
	}
}

func TestSingleFlightError(t *testing.T) {
	g := NewGroup()
	f, _ := g.Join(context.Background(), "k")
	boom := errors.New("boom")
	f.Complete(nil, boom)
	f.Leave()
	if _, err := f.Result(); !errors.Is(err, boom) {
		t.Errorf("Result err = %v, want boom", err)
	}
}

func TestSingleFlightDistinctKeysDoNotCoalesce(t *testing.T) {
	g := NewGroup()
	f1, l1 := g.Join(context.Background(), "a")
	f2, l2 := g.Join(context.Background(), "b")
	if !l1 || !l2 || f1 == f2 {
		t.Fatal("distinct keys coalesced")
	}
	f1.Complete(nil, nil)
	f2.Complete(nil, nil)
	f1.Leave()
	f2.Leave()
}
