package cache

import (
	"testing"

	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/tm"
)

// buildSystem constructs a small deterministic system; the knobs are the
// fields a mutation test wants to vary one at a time.
type sysParams struct {
	nodes     int
	procs     int
	wcet      tm.Time
	msgBytes  int
	period    tm.Time
	appName   string
	slotBytes int
}

func defaultSysParams() sysParams {
	return sysParams{nodes: 3, procs: 4, wcet: 3, msgBytes: 4, period: 60, appName: "app", slotBytes: 8}
}

func buildSystem(t testing.TB, p sysParams) *model.System {
	t.Helper()
	b := model.NewBuilder()
	for i := 0; i < p.nodes; i++ {
		b.Node("N" + string(rune('0'+i)))
	}
	b.UniformBus(p.slotBytes, 1, 2)
	g := b.App(p.appName).Graph(p.appName+"-g", p.period, p.period)
	var prev model.ProcID
	for i := 0; i < p.procs; i++ {
		pr := g.UniformProc(p.appName+"-p"+string(rune('0'+i)), p.wcet)
		if i > 0 {
			g.Msg(prev, pr, p.msgBytes)
		}
		prev = pr
	}
	sys, err := b.System()
	if err != nil {
		t.Fatalf("building system: %v", err)
	}
	return sys
}

// buildClusteredSystem is buildSystem with a fourth node and a second
// TDMA bus. Callers vary which nodes own slots on which bus, so the
// sensitivity test can probe that bus attachment, gateway placement and
// bus topology all reach the fingerprint.
func buildClusteredSystem(t testing.TB, bus0, bus1 []model.NodeID) *model.System {
	t.Helper()
	p := defaultSysParams()
	b := model.NewBuilder()
	for i := 0; i < p.nodes+1; i++ {
		b.Node("N" + string(rune('0'+i)))
	}
	caps := func(n int) []int {
		c := make([]int, n)
		for i := range c {
			c[i] = p.slotBytes
		}
		return c
	}
	b.Bus(bus0, caps(len(bus0)), 1, 2)
	b.AddBus(bus1, caps(len(bus1)), 1, 2)
	g := b.App(p.appName).Graph(p.appName+"-g", p.period, p.period)
	var prev model.ProcID
	for i := 0; i < p.procs; i++ {
		pr := g.UniformProc(p.appName+"-p"+string(rune('0'+i)), p.wcet)
		if i > 0 {
			g.Msg(prev, pr, p.msgBytes)
		}
		prev = pr
	}
	sys, err := b.System()
	if err != nil {
		t.Fatalf("building clustered system: %v", err)
	}
	return sys
}

func baseProfile() *future.Profile {
	return &future.Profile{
		Tmin: 30, TNeed: 10, BNeedBytes: 16,
		WCET:     []future.Bin{{Size: 4, Prob: 0.5}, {Size: 2, Prob: 0.5}},
		MsgBytes: []future.Bin{{Size: 8, Prob: 1}},
	}
}

func baseRequest(t testing.TB) Request {
	return Request{
		System:   buildSystem(t, defaultSysParams()),
		Profile:  baseProfile(),
		Weights:  metrics.Weights{W1P: 1, W1m: 2, W2P: 3, W2m: 4},
		Strategy: Spec{Name: "sa", SAIters: 100, SARestarts: 2, SASeed: 7},
	}
}

// TestFingerprintDeterministic pins that a fingerprint is a pure
// function of the request: rebuilding the same inputs from scratch
// hashes identically.
func TestFingerprintDeterministic(t *testing.T) {
	a, b := Fingerprint(baseRequest(t)), Fingerprint(baseRequest(t))
	if a != b {
		t.Fatalf("identical requests hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint %q is not hex SHA-256", a)
	}
}

// TestFingerprintBinOrderInsensitive pins the one deliberate
// order-insensitivity: the profile's histogram bins are sorted before
// use by future.expand, so permuting them must not change the hash.
func TestFingerprintBinOrderInsensitive(t *testing.T) {
	a := baseRequest(t)
	b := baseRequest(t)
	b.Profile.WCET = []future.Bin{{Size: 2, Prob: 0.5}, {Size: 4, Prob: 0.5}}
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("permuting profile bins changed the fingerprint")
	}
}

// TestSpecNormalization pins that strategy tuning a strategy cannot
// observe is normalized away, and the default name resolves to mh.
func TestSpecNormalization(t *testing.T) {
	base := baseRequest(t)
	fp := func(s Spec) string {
		r := base
		r.Strategy = s
		return Fingerprint(r)
	}
	if fp(Spec{}) != fp(Spec{Name: "mh"}) {
		t.Error(`Spec{} and Spec{Name: "mh"} hash differently`)
	}
	if fp(Spec{Name: "mh", SAIters: 500}) != fp(Spec{Name: "mh"}) {
		t.Error("mh observes SA tuning")
	}
	if fp(Spec{Name: "ah", SASeed: 9}) != fp(Spec{Name: "ah"}) {
		t.Error("ah observes SA tuning")
	}
	if fp(Spec{Name: "sa", SAIters: 100}) == fp(Spec{Name: "sa", SAIters: 200}) {
		t.Error("sa ignores SAIters")
	}
	if fp(Spec{Name: "portfolio", SASeed: 1}) == fp(Spec{Name: "portfolio", SASeed: 2}) {
		t.Error("portfolio ignores SASeed")
	}
	if fp(Spec{Name: "mh", SAChainOffset: 3}) != fp(Spec{Name: "mh"}) {
		t.Error("mh observes SAChainOffset")
	}
	if fp(Spec{Name: "sa", SAChainOffset: 1}) == fp(Spec{Name: "sa", SAChainOffset: 2}) {
		t.Error("sa ignores SAChainOffset")
	}
}

// TestFingerprintSensitivity mutates every result-relevant field one at
// a time and requires every mutation to move the hash — and all hashes
// to be pairwise distinct.
func TestFingerprintSensitivity(t *testing.T) {
	mutations := map[string]func(t *testing.T) Request{
		"parent": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Parent = "abc123"
			return r
		},
		"app-name-param": func(t *testing.T) Request {
			r := baseRequest(t)
			r.App = "app"
			return r
		},
		"commit-app": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Commit = r.System.Apps[0]
			return r
		},
		"strategy-name": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Strategy.Name = "mh"
			return r
		},
		"sa-iters": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Strategy.SAIters = 101
			return r
		},
		"sa-restarts": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Strategy.SARestarts = 3
			return r
		},
		"sa-seed": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Strategy.SASeed = 8
			return r
		},
		"sa-chain-offset": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Strategy.SAChainOffset = 2
			return r
		},
		"weight-w1p": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Weights.W1P = 1.5
			return r
		},
		"weight-w2m": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Weights.W2m = 5
			return r
		},
		"profile-tmin": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Profile.Tmin = 31
			return r
		},
		"profile-bneed": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Profile.BNeedBytes = 17
			return r
		},
		"profile-bin-prob": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Profile.WCET[0].Prob = 0.6
			return r
		},
		"profile-no-bins": func(t *testing.T) Request {
			r := baseRequest(t)
			r.Profile.WCET = nil
			return r
		},
		"sys-extra-node": func(t *testing.T) Request {
			r := baseRequest(t)
			p := defaultSysParams()
			p.nodes = 4
			r.System = buildSystem(t, p)
			return r
		},
		"sys-extra-proc": func(t *testing.T) Request {
			r := baseRequest(t)
			p := defaultSysParams()
			p.procs = 5
			r.System = buildSystem(t, p)
			return r
		},
		"sys-wcet": func(t *testing.T) Request {
			r := baseRequest(t)
			p := defaultSysParams()
			p.wcet = 4
			r.System = buildSystem(t, p)
			return r
		},
		"sys-msg-bytes": func(t *testing.T) Request {
			r := baseRequest(t)
			p := defaultSysParams()
			p.msgBytes = 5
			r.System = buildSystem(t, p)
			return r
		},
		"sys-period": func(t *testing.T) Request {
			r := baseRequest(t)
			p := defaultSysParams()
			p.period = 120
			r.System = buildSystem(t, p)
			return r
		},
		"sys-app-name": func(t *testing.T) Request {
			r := baseRequest(t)
			p := defaultSysParams()
			p.appName = "other"
			r.System = buildSystem(t, p)
			return r
		},
		"sys-slot-bytes": func(t *testing.T) Request {
			r := baseRequest(t)
			p := defaultSysParams()
			p.slotBytes = 16
			r.System = buildSystem(t, p)
			return r
		},
		"sys-byte-time": func(t *testing.T) Request {
			r := baseRequest(t)
			r.System.Arch.Buses[0].ByteTime = 2
			return r
		},
		"sys-slot-order": func(t *testing.T) Request {
			r := baseRequest(t)
			so := r.System.Arch.Buses[0].SlotOrder
			so[0], so[1] = so[1], so[0]
			return r
		},
		// Multi-cluster topology: adding a second bus, moving the gateway,
		// re-attaching a node, and mirroring which bus carries which slot
		// table must all be distinct — slot ownership is what encodes bus
		// attachment and gateway placement, so each reshape moves the hash.
		"sys-second-bus": func(t *testing.T) Request {
			r := baseRequest(t)
			r.System = buildClusteredSystem(t,
				[]model.NodeID{0, 1, 2}, []model.NodeID{2, 3})
			return r
		},
		"sys-gateway-moved": func(t *testing.T) Request {
			r := baseRequest(t)
			r.System = buildClusteredSystem(t,
				[]model.NodeID{0, 1, 2}, []model.NodeID{1, 3})
			return r
		},
		"sys-bus-attachment": func(t *testing.T) Request {
			r := baseRequest(t)
			r.System = buildClusteredSystem(t,
				[]model.NodeID{0, 2}, []model.NodeID{1, 2, 3})
			return r
		},
		"sys-bus-swapped": func(t *testing.T) Request {
			r := baseRequest(t)
			r.System = buildClusteredSystem(t,
				[]model.NodeID{2, 3}, []model.NodeID{0, 1, 2})
			return r
		},
	}

	seen := map[string]string{Fingerprint(baseRequest(t)): "base"}
	for name, mutate := range mutations {
		fp := Fingerprint(mutate(t))
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
			continue
		}
		seen[fp] = name
	}
}

// FuzzFingerprint fuzzes the canonicalization: for any generated system
// the fingerprint must be stable across rebuilds, insensitive to bin
// permutation, and sensitive to a WCET bump.
func FuzzFingerprint(f *testing.F) {
	f.Add(2, 3, 3, 4, 60, "app")
	f.Add(1, 1, 1, 1, 30, "x")
	f.Add(4, 6, 7, 9, 120, "fuzz-app")
	f.Fuzz(func(t *testing.T, nodes, procs, wcet, msgBytes, period int, name string) {
		p := sysParams{
			nodes:     1 + abs(nodes)%4,
			procs:     1 + abs(procs)%6,
			wcet:      tm.Time(1 + abs(wcet)%50),
			msgBytes:  1 + abs(msgBytes)%32,
			period:    tm.Time(30 * (1 + abs(period)%4)),
			appName:   name,
			slotBytes: 8,
		}
		req := func(p sysParams, bins []future.Bin) Request {
			b := model.NewBuilder()
			for i := 0; i < p.nodes; i++ {
				b.Node("N" + string(rune('0'+i)))
			}
			b.UniformBus(p.slotBytes, 1, 2)
			g := b.App(p.appName).Graph("g", p.period, p.period)
			var prev model.ProcID
			for i := 0; i < p.procs; i++ {
				pr := g.UniformProc("p"+string(rune('0'+i)), p.wcet)
				if i > 0 {
					g.Msg(prev, pr, p.msgBytes)
				}
				prev = pr
			}
			sys, err := b.System()
			if err != nil {
				t.Skip("unbuildable parameter combination")
			}
			return Request{
				System:  sys,
				Profile: &future.Profile{Tmin: p.period / 2, TNeed: 5, WCET: bins},
				Weights: metrics.Weights{W1P: 1, W1m: 1, W2P: 1, W2m: 1},
			}
		}
		bins := []future.Bin{{Size: 4, Prob: 0.25}, {Size: 2, Prob: 0.75}}
		flipped := []future.Bin{{Size: 2, Prob: 0.75}, {Size: 4, Prob: 0.25}}
		a := Fingerprint(req(p, bins))
		if b := Fingerprint(req(p, bins)); a != b {
			t.Fatalf("rebuild changed fingerprint: %s vs %s", a, b)
		}
		if b := Fingerprint(req(p, flipped)); a != b {
			t.Fatalf("bin permutation changed fingerprint: %s vs %s", a, b)
		}
		bumped := p
		bumped.wcet++
		if b := Fingerprint(req(bumped, bins)); a == b {
			t.Fatal("WCET bump did not change fingerprint")
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// abs(MinInt) stays negative; clamp instead of overflowing.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}
