package cache

import (
	"context"
	"sync"
)

// Group coalesces concurrent work keyed by fingerprint: the first
// joiner of a key becomes the leader and runs the solve; later joiners
// become followers and share the leader's result. Unlike
// x/sync/singleflight, membership is reference counted and the flight
// owns a cancellable context: the flight's solve is cancelled only when
// the *last* member leaves, so a leader whose client disconnects does
// not kill the solve its followers are still waiting on.
type Group struct {
	// All Flight state is guarded by the owning group's mutex; flights
	// are few and short-lived, so one lock is simpler and plenty.
	mu      sync.Mutex
	flights map[string]*Flight
}

// NewGroup returns an empty single-flight group.
func NewGroup() *Group {
	return &Group{flights: make(map[string]*Flight)}
}

// Flight is one in-progress unit of coalesced work.
type Flight struct {
	g      *Group
	key    string
	ctx    context.Context
	cancel context.CancelFunc

	refs      int
	completed bool
	done      chan struct{}
	val       any
	err       error
	note      string
}

// SetNote attaches an opaque annotation to the flight. The serve layer
// stores the leader's flight-span ID here so followers can link their
// spans to the flight that produced their result.
func (f *Flight) SetNote(s string) {
	f.g.mu.Lock()
	f.note = s
	f.g.mu.Unlock()
}

// Note returns the flight's annotation ("" if never set).
func (f *Flight) Note() string {
	f.g.mu.Lock()
	defer f.g.mu.Unlock()
	return f.note
}

// Join returns the flight for key, creating one (derived from base)
// when none is in progress. The second return is true when the caller
// created the flight and must therefore run the work and call Complete.
func (g *Group) Join(base context.Context, key string) (*Flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		f.refs++
		return f, false
	}
	ctx, cancel := context.WithCancel(base)
	f := &Flight{
		g:      g,
		key:    key,
		ctx:    ctx,
		cancel: cancel,
		refs:   1,
		done:   make(chan struct{}),
	}
	g.flights[key] = f
	return f, true
}

// Context is the flight's work context. The leader's solve must run
// under it (not the leader's request context) so the work survives the
// leader leaving while followers remain.
func (f *Flight) Context() context.Context { return f.ctx }

// Done is closed when Complete is called.
func (f *Flight) Done() <-chan struct{} { return f.done }

// Result returns the completed flight's outcome. Only valid after Done
// is closed.
func (f *Flight) Result() (any, error) {
	f.g.mu.Lock()
	defer f.g.mu.Unlock()
	return f.val, f.err
}

// Leave drops the caller's membership and returns the remaining member
// count. When the last member leaves an uncompleted flight, the flight's
// context is cancelled — the solve winds down to best-so-far exactly as
// a lone request's disconnect would — and the key is released so a new
// request starts fresh rather than joining an abandoned solve.
func (f *Flight) Leave() int {
	f.g.mu.Lock()
	defer f.g.mu.Unlock()
	f.refs--
	remaining := f.refs
	if remaining <= 0 && !f.completed {
		f.cancel()
		if f.g.flights[f.key] == f {
			delete(f.g.flights, f.key)
		}
	}
	return remaining
}

// Complete records the flight's outcome, wakes all members, and
// releases the key so subsequent requests miss (and consult the LRU,
// which the leader populates before completing). Calling Complete more
// than once is a no-op after the first.
func (f *Flight) Complete(val any, err error) {
	f.g.mu.Lock()
	defer f.g.mu.Unlock()
	if f.completed {
		return
	}
	f.completed = true
	f.val, f.err = val, err
	if f.g.flights[f.key] == f {
		delete(f.g.flights, f.key)
	}
	close(f.done)
	f.cancel()
}
