// Package cache generalizes the engine's exact evaluation-memo key to
// whole solve requests: a canonical SHA-256 problem fingerprint, a
// size-bounded LRU of solved results, and a single-flight group that
// coalesces concurrent identical requests onto one solve.
//
// The fingerprint is the load-bearing piece. core.Solve is deterministic
// — for a fixed (problem, strategy tuning) every parallelism level,
// cache size and evaluation mode yields a byte-identical result — so two
// requests whose fingerprints collide on purpose (same canonical
// serialization) are guaranteed to produce the same SolutionDoc, and a
// cached result can be served in place of a solve without changing any
// response byte. Fields that cannot change the result (parallelism,
// memo size, incremental mode, observers) are deliberately excluded
// from the hash; everything that can is included.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"

	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
)

// FingerprintSchemaVersion is hashed into every fingerprint. Bump it
// whenever the canonical serialization below changes shape, so caches
// populated by older revisions can never serve a differently-encoded
// request. Version 3 extended the architecture encoding to multi-cluster
// platforms (bus count, per-bus identity and slot tables — which also
// cover bus attachment and gateway placement, since both are derived
// from slot ownership).
const FingerprintSchemaVersion = 3

// Spec is the canonical strategy identity of a request: the strategy
// name plus every tuning knob the HTTP and CLI surfaces expose that can
// change the solved result. Zero-valued SA fields mean the documented
// strategy defaults.
type Spec struct {
	// Name is "ah", "mh", "sa" or "portfolio" ("" means "mh").
	Name string
	// SA tuning, meaningful only for "sa" and "portfolio" (whose SA lane
	// inherits it); normalized away for the other strategies so
	// "mh&sa-iters=5" and "mh" hash identically.
	SAIters    int
	SARestarts int
	SASeed     int64
	// SAChainOffset shifts the global SA chain index (cluster chain-range
	// units). Two units with identical tuning but different offsets solve
	// different chains, so the offset must participate in the hash.
	SAChainOffset int
}

// normalized resolves the default name and drops tuning that the named
// strategy cannot observe.
func (s Spec) normalized() Spec {
	if s.Name == "" {
		s.Name = "mh"
	}
	if s.Name != "sa" && s.Name != "portfolio" {
		s.SAIters, s.SARestarts, s.SASeed, s.SAChainOffset = 0, 0, 0, 0
	}
	return s
}

// Request is one solve request in canonical form. Exactly one of the
// two shapes is used:
//
//   - one-shot solve: System + App name the problem the serve layer
//     builds with BuildProblem (every other application frozen);
//   - session commit: Parent carries the parent version's composite
//     schedule fingerprint, System the parent's composite system, and
//     Commit the application being committed.
//
// Profile and Weights pin the objective; Strategy the solver identity.
type Request struct {
	// Parent is the parent version's stored schedule fingerprint for
	// session commits ("" for one-shot solves). Including it makes a
	// commit's key specific to the exact frozen composite it extends.
	Parent string
	// System is the full problem input (architecture + applications in
	// arrival order).
	System *model.System
	// App names the current application of a one-shot solve ("" = the
	// system's last, exactly as BuildProblem resolves it).
	App string
	// Commit is the application a session commit adds (nil for one-shot
	// solves).
	Commit *model.Application
	// Profile is the future-application characterization.
	Profile *future.Profile
	// Weights are the objective weights.
	Weights metrics.Weights
	// Strategy identifies the solver and its result-relevant tuning.
	Strategy Spec
}

// Fingerprint returns the hex SHA-256 of the request's canonical
// serialization. The encoding is exact except where the model itself is
// order-insensitive: WCET tables and hint maps are emitted in sorted key
// order (Go maps carry no order), and the profile's histogram bins are
// emitted sorted by (size desc, prob desc) because expand() sorts them
// before use — permuting bins does not change any metric. Everything
// else, slice order included, is semantically significant and hashed in
// declaration order.
func Fingerprint(r Request) string {
	h := newHasher()
	h.tag('V')
	h.i64(FingerprintSchemaVersion)
	h.tag('P')
	h.str(r.Parent)
	if r.System != nil {
		h.tag('S')
		h.system(r.System)
	}
	h.tag('a')
	h.str(r.App)
	if r.Commit != nil {
		h.tag('C')
		h.app(r.Commit)
	}
	if r.Profile != nil {
		h.tag('F')
		h.profile(r.Profile)
	}
	h.tag('W')
	h.f64(r.Weights.W1P)
	h.f64(r.Weights.W1m)
	h.f64(r.Weights.W2P)
	h.f64(r.Weights.W2m)
	spec := r.Strategy.normalized()
	h.tag('T')
	h.str(spec.Name)
	h.i64(int64(spec.SAIters))
	h.i64(int64(spec.SARestarts))
	h.i64(spec.SASeed)
	h.i64(int64(spec.SAChainOffset))
	return hex.EncodeToString(h.h.Sum(nil))
}

// hasher is a tagged, length-prefixed writer into SHA-256. Tags and
// length prefixes make the encoding unambiguous: no two distinct
// requests can serialize to the same byte stream.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (h *hasher) tag(b byte) { h.h.Write([]byte{b}) }

func (h *hasher) i64(v int64) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.h.Write(h.buf[:])
}

func (h *hasher) f64(v float64) { h.i64(int64(math.Float64bits(v))) }

func (h *hasher) str(s string) {
	h.i64(int64(len(s)))
	h.h.Write([]byte(s))
}

func (h *hasher) system(sys *model.System) {
	arch := sys.Arch
	h.i64(int64(len(arch.Nodes)))
	for _, n := range arch.Nodes {
		h.i64(int64(n.ID))
		h.str(n.Name)
	}
	// Buses, in ID order. Slot ownership is hashed per bus, which covers
	// node-to-bus attachment and gateway placement: both are functions of
	// which nodes own slots on which buses.
	h.i64(int64(len(arch.Buses)))
	for _, bus := range arch.Buses {
		h.i64(int64(bus.ID))
		h.i64(int64(len(bus.SlotOrder)))
		for i, owner := range bus.SlotOrder {
			h.i64(int64(owner))
			h.i64(int64(bus.SlotBytes[i]))
		}
		h.i64(int64(bus.ByteTime))
		h.i64(int64(bus.SlotOverhead))
	}
	h.i64(int64(len(sys.Apps)))
	for _, a := range sys.Apps {
		h.app(a)
	}
}

func (h *hasher) app(a *model.Application) {
	h.i64(int64(a.ID))
	h.str(a.Name)
	h.i64(int64(len(a.Graphs)))
	for _, g := range a.Graphs {
		h.i64(int64(g.ID))
		h.str(g.Name)
		h.i64(int64(g.Period))
		h.i64(int64(g.Deadline))
		h.i64(int64(len(g.Procs)))
		for _, p := range g.Procs {
			h.i64(int64(p.ID))
			h.str(p.Name)
			// WCET is a map: emit in sorted node order so two tables built
			// in different insertion orders hash identically.
			nodes := make([]model.NodeID, 0, len(p.WCET))
			for n := range p.WCET {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			h.i64(int64(len(nodes)))
			for _, n := range nodes {
				h.i64(int64(n))
				h.i64(int64(p.WCET[n]))
			}
		}
		h.i64(int64(len(g.Msgs)))
		for _, m := range g.Msgs {
			h.i64(int64(m.ID))
			h.str(m.Name)
			h.i64(int64(m.Src))
			h.i64(int64(m.Dst))
			h.i64(int64(m.Bytes))
		}
	}
}

func (h *hasher) profile(p *future.Profile) {
	h.i64(int64(p.Tmin))
	h.i64(int64(p.TNeed))
	h.i64(p.BNeedBytes)
	h.bins(p.WCET)
	h.bins(p.MsgBytes)
}

// bins canonicalizes a histogram: future.expand sorts bins by size
// before use, so bin order is semantically irrelevant and is normalized
// away here (size desc, then prob desc for duplicate sizes).
func (h *hasher) bins(bins []future.Bin) {
	sorted := append([]future.Bin(nil), bins...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size > sorted[j].Size
		}
		return sorted[i].Prob > sorted[j].Prob
	})
	h.i64(int64(len(sorted)))
	for _, b := range sorted {
		h.i64(b.Size)
		h.f64(b.Prob)
	}
}
