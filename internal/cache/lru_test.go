package cache

import "testing"

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU(2)
	if l.Put("a", 1) || l.Put("b", 2) {
		t.Fatal("eviction reported while under capacity")
	}
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	if !l.Put("c", 3) {
		t.Fatal("Put(c) did not report an eviction")
	}
	if _, ok := l.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := l.Get("a"); !ok {
		t.Error("a was evicted despite being recently used")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	l := NewLRU(2)
	l.Put("a", 1)
	l.Put("b", 2)
	if l.Put("a", 10) {
		t.Fatal("updating an existing key reported an eviction")
	}
	if v, _ := l.Get("a"); v != 10 {
		t.Errorf("Get(a) = %v after update, want 10", v)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestLRUStats(t *testing.T) {
	l := NewLRU(1)
	l.Get("missing")
	l.Put("a", 1)
	l.Get("a")
	l.Put("b", 2) // evicts a
	hits, misses, evictions := l.Stats()
	if hits != 1 || misses != 1 || evictions != 1 {
		t.Errorf("Stats = %d/%d/%d, want 1/1/1", hits, misses, evictions)
	}
}

func TestLRUZeroCapacityClampsToOne(t *testing.T) {
	l := NewLRU(0)
	l.Put("a", 1)
	if _, ok := l.Get("a"); !ok {
		t.Fatal("entry lost in size-clamped cache")
	}
	l.Put("b", 2)
	if _, ok := l.Get("a"); ok {
		t.Error("capacity-1 cache retained two entries")
	}
}
