// Package sim validates a static cyclic schedule by replaying it against
// the system model, independently of the scheduler's own bookkeeping. It
// re-derives every constraint from the schedule tables alone:
//
//   - completeness: every occurrence of every process of the checked
//     applications appears exactly once;
//   - processor exclusivity: entries on one node never overlap;
//   - WCET consistency: each entry runs exactly its WCET on its node;
//   - release and deadline: occurrence k of a graph runs inside
//     [k*T, k*T + D];
//   - precedence: a consumer starts only after each producer finished
//     (same node) or after the message's final slot occurrence ended
//     (bus — on multi-cluster architectures, after the last hop of the
//     gateway-forwarding chain arrives);
//   - TDMA discipline: every hop travels in a slot owned by its
//     transmitting node on the bus the architecture's deterministic
//     route prescribes, gateway hops start only after the previous hop
//     arrived, slots stay within the horizon, and no slot occurrence of
//     any bus overflows its byte capacity.
//
// The scheduler and the mapping strategies are tested against this oracle
// on randomized inputs; any disagreement is a bug in one of them.
package sim

import (
	"fmt"
	"sort"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// Violation describes one broken constraint.
type Violation struct {
	Kind   string // e.g. "overlap", "deadline", "precedence"
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Check replays the schedule and returns all violations found for the
// given applications (pass every application that should be fully
// scheduled in st). An empty result means the schedule is valid.
func Check(st *sched.State, apps ...*model.Application) []Violation {
	var out []Violation
	report := func(kind, format string, args ...interface{}) {
		out = append(out, Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)})
	}

	sys := st.System()
	ix := model.NewIndex(apps...)
	horizon := st.Horizon()

	// Index the schedule tables.
	procAt := map[sched.Job]sched.ProcEntry{}
	for _, e := range st.ProcEntries() {
		j := sched.Job{Proc: e.Proc, Occ: e.Occ}
		if prev, dup := procAt[j]; dup {
			report("duplicate", "process %d occ %d scheduled twice: %v and %v", e.Proc, e.Occ, prev, e)
			continue
		}
		procAt[j] = e
	}
	// Group message entries into per-occurrence hop chains (a single-bus
	// occurrence is a one-hop chain). The same (msg, occ, hop) appearing
	// twice is a duplicate.
	msgAt := map[sched.MsgOcc][]sched.MsgEntry{}
	for _, e := range st.MsgEntries() {
		k := sched.MsgOcc{Msg: e.Msg, Occ: e.Occ}
		chain := msgAt[k]
		dup := false
		for _, prev := range chain {
			if prev.Hop == e.Hop {
				report("duplicate", "message %d occ %d scheduled twice: %v and %v", e.Msg, e.Occ, prev, e)
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		msgAt[k] = append(chain, e)
	}
	for _, chain := range msgAt {
		sort.Slice(chain, func(i, j int) bool { return chain[i].Hop < chain[j].Hop })
	}
	routes, rerr := model.BuildRoutes(sys.Arch)
	if rerr != nil {
		report("routing", "architecture has no route table: %v", rerr)
	}

	// Completeness, WCET, release/deadline, precedence.
	for _, app := range apps {
		for _, g := range app.Graphs {
			occs := int(horizon / g.Period)
			for occ := 0; occ < occs; occ++ {
				release := tm.Time(occ) * g.Period
				deadline := release + g.Deadline
				for _, p := range g.Procs {
					e, ok := procAt[sched.Job{Proc: p.ID, Occ: occ}]
					if !ok {
						report("missing", "process %d (%s) occ %d not scheduled", p.ID, p.Name, occ)
						continue
					}
					w, allowed := p.WCET[e.Node]
					if !allowed {
						report("mapping", "process %d occ %d runs on disallowed node %d", p.ID, occ, e.Node)
					} else if e.End-e.Start != w {
						report("wcet", "process %d occ %d runs %v on node %d, WCET is %v",
							p.ID, occ, e.End-e.Start, e.Node, w)
					}
					if e.Start < release {
						report("release", "process %d occ %d starts %v before release %v", p.ID, occ, e.Start, release)
					}
					if e.End > deadline {
						report("deadline", "process %d occ %d ends %v after deadline %v", p.ID, occ, e.End, deadline)
					}
				}
				for _, m := range g.Msgs {
					src, okS := procAt[sched.Job{Proc: m.Src, Occ: occ}]
					dst, okD := procAt[sched.Job{Proc: m.Dst, Occ: occ}]
					if !okS || !okD {
						continue // already reported as missing
					}
					if src.Node == dst.Node {
						if dst.Start < src.End {
							report("precedence", "message %d occ %d: consumer %d starts %v before producer %d ends %v",
								m.ID, occ, m.Dst, dst.Start, m.Src, src.End)
						}
						if chain := msgAt[sched.MsgOcc{Msg: m.ID, Occ: occ}]; len(chain) > 0 {
							report("bus", "message %d occ %d between co-located processes uses the bus", m.ID, occ)
						}
						continue
					}
					chain, ok := msgAt[sched.MsgOcc{Msg: m.ID, Occ: occ}]
					if !ok {
						report("missing", "inter-node message %d occ %d not on the bus", m.ID, occ)
						continue
					}
					checkMsg(report, sys, routes, horizon, m, chain, src, dst)
				}
			}
		}
	}

	checkNodeOverlaps(report, st)
	checkSlotCapacities(report, sys, st)

	// Messages must belong to known applications.
	for _, e := range st.MsgEntries() {
		if ix.Msg[e.Msg] == nil && len(apps) > 0 && appKnown(apps, e.App) {
			report("unknown", "message entry for unknown message %d", e.Msg)
		}
	}
	return out
}

func appKnown(apps []*model.Application, id model.AppID) bool {
	for _, a := range apps {
		if a.ID == id {
			return true
		}
	}
	return false
}

// checkMsg validates one inter-node message occurrence's hop chain
// against the architecture's deterministic route from the producer's
// node to the consumer's: hop count, per-hop bus and slot ownership,
// exact slot timing, and the store-and-forward ordering (hop 0 after the
// producer, each gateway hop after the previous arrival, the consumer
// after the final arrival).
func checkMsg(report func(string, string, ...interface{}), sys *model.System, routes *model.RouteTable,
	horizon tm.Time, m *model.Message, chain []sched.MsgEntry, src, dst sched.ProcEntry) {

	occ := chain[0].Occ
	if routes == nil {
		return // no oracle: the routing violation was already reported
	}
	route := routes.Route(src.Node, dst.Node)
	if len(chain) != len(route) {
		report("routing", "message %d occ %d has %d hops, route from node %d to node %d has %d",
			m.ID, occ, len(chain), src.Node, dst.Node, len(route))
		return
	}
	prevArrive := src.End
	for i, me := range chain {
		if me.Hop != i {
			report("routing", "message %d occ %d hop chain is not contiguous (hop %d at position %d)",
				m.ID, occ, me.Hop, i)
			return
		}
		hop := route[i]
		if me.Bus != hop.Bus {
			report("routing", "message %d occ %d hop %d on bus %d, route says bus %d", m.ID, occ, i, me.Bus, hop.Bus)
			continue
		}
		bus := sys.Arch.Buses[me.Bus]
		if me.Slot < 0 || me.Slot >= bus.NumSlots() {
			report("bus", "message %d occ %d in nonexistent slot %d", m.ID, occ, me.Slot)
			continue
		}
		if bus.SlotOrder[me.Slot] != hop.From {
			report("tdma", "message %d occ %d in slot %d owned by node %d, sender is node %d",
				m.ID, occ, me.Slot, bus.SlotOrder[me.Slot], hop.From)
		}
		if me.Sender != hop.From || me.Receiver != hop.To {
			report("routing", "message %d occ %d hop %d endpoints (%d -> %d), route says (%d -> %d)",
				m.ID, occ, i, me.Sender, me.Receiver, hop.From, hop.To)
		}
		slotStart := bus.SlotStart(me.Round, me.Slot)
		slotEnd := bus.SlotEnd(me.Round, me.Slot)
		if slotStart != me.Start || slotEnd != me.Arrive {
			report("tdma", "message %d occ %d timing mismatch: entry [%v,%v), slot occurrence [%v,%v)",
				m.ID, occ, me.Start, me.Arrive, slotStart, slotEnd)
		}
		if slotEnd > horizon {
			report("tdma", "message %d occ %d slot occurrence ends %v after horizon %v", m.ID, occ, slotEnd, horizon)
		}
		if slotStart < prevArrive {
			if i == 0 {
				report("precedence", "message %d occ %d slot starts %v before producer ends %v",
					m.ID, occ, slotStart, prevArrive)
			} else {
				report("precedence", "message %d occ %d hop %d starts %v before hop %d arrives %v",
					m.ID, occ, i, slotStart, i-1, prevArrive)
			}
		}
		if me.Bytes != m.Bytes {
			report("bus", "message %d occ %d entry has %d bytes, model says %d", m.ID, occ, me.Bytes, m.Bytes)
		}
		prevArrive = slotEnd
	}
	if dst.Start < prevArrive {
		report("precedence", "message %d occ %d consumer starts %v before arrival %v",
			m.ID, occ, dst.Start, prevArrive)
	}
}

func checkNodeOverlaps(report func(string, string, ...interface{}), st *sched.State) {
	byNode := map[model.NodeID][]sched.ProcEntry{}
	for _, e := range st.ProcEntries() {
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	for node, entries := range byNode {
		sort.Slice(entries, func(i, j int) bool { return entries[i].Start < entries[j].Start })
		for i := 1; i < len(entries); i++ {
			if entries[i].Start < entries[i-1].End {
				report("overlap", "node %d: process %d occ %d [%v,%v) overlaps process %d occ %d [%v,%v)",
					node,
					entries[i-1].Proc, entries[i-1].Occ, entries[i-1].Start, entries[i-1].End,
					entries[i].Proc, entries[i].Occ, entries[i].Start, entries[i].End)
			}
		}
	}
}

func checkSlotCapacities(report func(string, string, ...interface{}), sys *model.System, st *sched.State) {
	used := map[[3]int]int{}
	for _, e := range st.MsgEntries() {
		used[[3]int{int(e.Bus), e.Round, e.Slot}] += e.Bytes
	}
	for key, bytes := range used {
		if cap := sys.Arch.Buses[key[0]].SlotBytes[key[2]]; bytes > cap {
			report("capacity", "slot occurrence (round %d, slot %d) carries %d bytes, capacity %d",
				key[1], key[2], bytes, cap)
		}
	}
}
