package sim

import (
	"testing"

	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// validState builds a two-node system with a cross-bus chain and returns
// the scheduled state plus its application.
func validState(t *testing.T) (*sched.State, *model.Application) {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2) // round 20
	g := b.App("a").Graph("G", 100, 100)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n1: 15})
	p3 := g.Proc("P3", map[model.NodeID]tm.Time{n1: 5})
	g.Msg(p1, p2, 4)
	g.Msg(p2, p3, 2)
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: n0, p2: n1, p3: n1}, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	return st, sys.Apps[0]
}

func TestCheckAcceptsValidSchedule(t *testing.T) {
	st, app := validState(t)
	if vs := Check(st, app); len(vs) != 0 {
		t.Fatalf("valid schedule rejected: %v", vs)
	}
}

// The tamper tests mutate the schedule tables through the exposed slices,
// which is exactly the kind of corruption the oracle exists to catch.

func TestCheckDetectsDeadlineMiss(t *testing.T) {
	st, app := validState(t)
	entries := st.ProcEntries()
	entries[len(entries)-1].Start = 99
	entries[len(entries)-1].End = 104 // past deadline 100
	if !hasKind(Check(st, app), "deadline") {
		t.Error("deadline violation not detected")
	}
}

func TestCheckDetectsOverlap(t *testing.T) {
	st, app := validState(t)
	entries := st.ProcEntries()
	// Move P3 on top of P2 (both on node 1).
	for i := range entries {
		if entries[i].Proc == app.Graphs[0].Procs[2].ID {
			p2 := findEntry(entries, app.Graphs[0].Procs[1].ID)
			entries[i].Start = p2.Start
			entries[i].End = p2.Start + 5
		}
	}
	vs := Check(st, app)
	if !hasKind(vs, "overlap") {
		t.Errorf("overlap not detected: %v", vs)
	}
}

func TestCheckDetectsWrongWCET(t *testing.T) {
	st, app := validState(t)
	entries := st.ProcEntries()
	entries[0].End = entries[0].Start + 1
	if !hasKind(Check(st, app), "wcet") {
		t.Error("WCET mismatch not detected")
	}
}

func TestCheckDetectsDisallowedNode(t *testing.T) {
	st, app := validState(t)
	entries := st.ProcEntries()
	p3 := app.Graphs[0].Procs[2].ID
	for i := range entries {
		if entries[i].Proc == p3 {
			entries[i].Node = 0 // P3 may only run on node 1
		}
	}
	if !hasKind(Check(st, app), "mapping") {
		t.Error("disallowed node not detected")
	}
}

func TestCheckDetectsMissingProcess(t *testing.T) {
	st, app := validState(t)
	// Check against an application that also contains an unscheduled graph.
	extra := &model.Application{ID: app.ID, Name: app.Name,
		Graphs: append(append([]*model.Graph{}, app.Graphs...), &model.Graph{
			ID: 99, Name: "ghost", Period: 100, Deadline: 100,
			Procs: []*model.Process{{ID: 99, WCET: map[model.NodeID]tm.Time{0: 10}}},
		})}
	if !hasKind(Check(st, extra), "missing") {
		t.Error("missing process not detected")
	}
}

func TestCheckDetectsPrecedenceViolation(t *testing.T) {
	st, app := validState(t)
	entries := st.ProcEntries()
	// Pull the consumer P2 to start before the message arrives.
	p2 := app.Graphs[0].Procs[1].ID
	for i := range entries {
		if entries[i].Proc == p2 {
			entries[i].Start = 0
			entries[i].End = 15
		}
	}
	if !hasKind(Check(st, app), "precedence") {
		t.Error("precedence violation not detected")
	}
}

func TestCheckDetectsTDMAViolation(t *testing.T) {
	st, app := validState(t)
	msgs := st.MsgEntries()
	// Put the first message into the receiver's slot instead.
	msgs[0].Slot = 1
	vs := Check(st, app)
	if !hasKind(vs, "tdma") {
		t.Errorf("TDMA ownership violation not detected: %v", vs)
	}
}

func TestCheckDetectsCapacityOverflow(t *testing.T) {
	st, app := validState(t)
	msgs := st.MsgEntries()
	msgs[0].Bytes = 100 // far over the 8-byte slot
	vs := Check(st, app)
	if !hasKind(vs, "capacity") {
		t.Errorf("capacity overflow not detected: %v", vs)
	}
}

// TestCheckRandomTestCases is the end-to-end oracle: generated test cases,
// scheduled by the initial-mapping algorithm, must always replay cleanly.
func TestCheckRandomTestCases(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 5
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 12
	for seed := int64(0); seed < 8; seed++ {
		tc, err := gen.MakeTestCase(cfg, seed, 50, 25)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := tc.Base.Clone()
		if _, err := st.MapApp(tc.Current, sched.Hints{}); err != nil {
			t.Fatalf("seed %d: current app: %v", seed, err)
		}
		apps := append(append([]*model.Application{}, tc.Existing...), tc.Current)
		if vs := Check(st, apps...); len(vs) != 0 {
			t.Fatalf("seed %d: %d violations, first: %v", seed, len(vs), vs[0])
		}
	}
}

func hasKind(vs []Violation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func findEntry(entries []sched.ProcEntry, p model.ProcID) sched.ProcEntry {
	for _, e := range entries {
		if e.Proc == p {
			return e
		}
	}
	return sched.ProcEntry{}
}
