package load

import (
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"incdes/internal/serve"
)

func newHarnessServer(t *testing.T, cacheSize int) *serve.Server {
	t.Helper()
	s := serve.New(serve.Config{
		Parallelism:       1,
		MaxConcurrent:     4,
		QueueDepth:        128,
		RetainJobs:        128,
		SolutionCacheSize: cacheSize,
	})
	t.Cleanup(s.Close)
	return s
}

func TestNamedProfiles(t *testing.T) {
	for _, name := range []string{"smoke", "mixed", "resubmit", "cluster"} {
		p, ok := Named(name)
		if !ok {
			t.Errorf("Named(%q) unknown", name)
			continue
		}
		if p.Name != name || p.Requests <= 0 || p.Concurrency <= 0 || p.Mix.total() <= 0 {
			t.Errorf("Named(%q) = %+v", name, p)
		}
	}
	if _, ok := Named("bogus"); ok {
		t.Error("Named accepted an unknown profile")
	}
}

func TestMixClassCycle(t *testing.T) {
	m := Mix{Resubmit: 2, Distinct: 1, Detach: 1, Commit: 1}
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		counts[m.class(i)]++
	}
	want := map[string]int{ClassResubmit: 4, ClassDistinct: 2, ClassDetach: 2, ClassCommit: 2}
	for class, n := range want {
		if counts[class] != n {
			t.Errorf("class %s issued %d of 10, want %d (got %v)", class, counts[class], n, counts)
		}
	}
}

// TestRunProducesFullReport drives the real serving stack with the
// mixed workload and checks every part of the report is populated.
func TestRunProducesFullReport(t *testing.T) {
	s := newHarnessServer(t, 64)
	p := Profile{
		Name: "test", Requests: 24, Concurrency: 4, Seed: 3,
		Mix: Mix{Resubmit: 3, Distinct: 1, Detach: 1, Commit: 1}, DistinctPool: 2,
	}
	rep, err := Run(s.Handler(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.WallMS <= 0 {
		t.Errorf("report meta = v%d wall %.2fms", rep.SchemaVersion, rep.WallMS)
	}
	if rep.Errors() != 0 {
		t.Fatalf("%d request errors: %+v", rep.Errors(), rep.Classes)
	}
	if !rep.CacheEnabled {
		t.Error("cache headers never observed on a caching server")
	}
	total := 0
	for _, class := range []string{ClassResubmit, ClassDistinct, ClassDetach, ClassCommit} {
		cr, ok := rep.Classes[class]
		if !ok || cr.Requests == 0 {
			t.Errorf("class %s missing from report", class)
			continue
		}
		total += cr.Requests
		if cr.P50MS <= 0 || cr.P99MS < cr.P50MS || cr.MeanMS <= 0 {
			t.Errorf("class %s latency shape: %+v", class, cr)
		}
	}
	if total != p.Requests {
		t.Errorf("classes account for %d requests, want %d", total, p.Requests)
	}
	// 24 requests at mix 3:1:1:1 and a resubmit pool of one problem:
	// every resubmit after the first is a hit or coalesce.
	if rep.Cache.Hit+rep.Cache.Inflight == 0 || rep.Cache.HitRate <= 0 {
		t.Errorf("cache report shows no reuse: %+v", rep.Cache)
	}
}

// TestRunWorkerRows pins the per-worker report: when responses carry
// X-Incdes-Worker attribution (as a cluster coordinator's do), the
// report grows a latency row per worker; without the header the
// Workers map stays empty (checked implicitly by every other test's
// round-trips).
func TestRunWorkerRows(t *testing.T) {
	s := newHarnessServer(t, 0)
	inner := s.Handler()
	var n atomic.Int64
	tagged := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Incdes-Worker", fmt.Sprintf("w%d", n.Add(1)%2+1))
		inner.ServeHTTP(w, r)
	})
	p := Profile{Name: "tag", Requests: 6, Concurrency: 2, Seed: 3, Mix: Mix{Distinct: 1}, DistinctPool: 3}
	rep, err := Run(tagged, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() != 0 {
		t.Fatalf("%d request errors", rep.Errors())
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("worker rows = %v, want w1 and w2", rep.Workers)
	}
	total := 0
	for name, c := range rep.Workers {
		if c.Requests == 0 || c.P99MS < c.P50MS {
			t.Errorf("worker %s row shape: %+v", name, c)
		}
		total += c.Requests
	}
	if total != p.Requests {
		t.Errorf("worker rows account for %d requests, want %d", total, p.Requests)
	}
}

// TestRunCacheOff pins the control arm: with caching disabled no cache
// headers appear and the report says so.
func TestRunCacheOff(t *testing.T) {
	s := newHarnessServer(t, 0)
	p := Profile{Name: "off", Requests: 6, Concurrency: 2, Seed: 3, Mix: Mix{Resubmit: 1}, CacheOff: true}
	rep, err := Run(s.Handler(), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors() != 0 {
		t.Fatalf("%d request errors", rep.Errors())
	}
	if rep.CacheEnabled || rep.Cache.Hit != 0 || rep.Cache.Inflight != 0 {
		t.Errorf("cache-off run reports cache activity: %+v", rep.Cache)
	}
}

// TestResubmitSpeedup is the harness-level acceptance criterion:
// identical resubmits served from the cache are at least 10x faster at
// the median than solving each one.
func TestResubmitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("load measurement")
	}
	p := Profile{Name: "speed", Requests: 24, Concurrency: 4, Seed: 5, Mix: Mix{Resubmit: 1}}

	off := p
	off.CacheOff = true
	base, err := Run(newHarnessServer(t, 0).Handler(), off)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(newHarnessServer(t, 64).Handler(), p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Errors() != 0 || cached.Errors() != 0 {
		t.Fatalf("request errors: base %d, cached %d", base.Errors(), cached.Errors())
	}
	slow := base.Classes[ClassResubmit].P50MS
	fast := cached.Classes[ClassResubmit].P50MS
	if slow < 2 {
		// The fixture solve must dominate the HTTP overhead for the ratio
		// to mean anything; on a machine this fast the margin test is
		// meaningless.
		t.Skipf("uncached resubmit p50 %.2fms too small to compare", slow)
	}
	if fast <= 0 || slow/fast < 10 {
		t.Errorf("resubmit p50 speedup = %.1fx (%.2fms -> %.2fms), want >= 10x", slow/fast, slow, fast)
	}
}

func TestCompareDetectsRegressions(t *testing.T) {
	base := &Report{
		SchemaVersion: SchemaVersion,
		CacheEnabled:  true,
		Classes: map[string]ClassReport{
			ClassResubmit: {Requests: 10, P50MS: 2, P95MS: 4, P99MS: 5, MeanMS: 2.5},
			ClassDistinct: {Requests: 5, P50MS: 8, P95MS: 12, P99MS: 14, MeanMS: 9},
		},
		Cache: CacheReport{Hit: 8, Miss: 2, HitRate: 0.8},
	}
	cand := &Report{
		SchemaVersion: SchemaVersion,
		CacheEnabled:  true,
		Classes: map[string]ClassReport{
			ClassResubmit: {Requests: 10, P50MS: 2.1, P95MS: 4.2, P99MS: 20, MeanMS: 4}, // p99 4x
			ClassDistinct: {Requests: 5, Errors: 2, P50MS: 8, P95MS: 12, P99MS: 14, MeanMS: 9},
		},
		Cache: CacheReport{Hit: 5, Miss: 5, HitRate: 0.5}, // -0.3 absolute
	}
	regs, _ := Compare(base, cand, CompareOptions{})
	joined := strings.Join(regs, "\n")
	for _, want := range []string{"p99", "errors", "hit rate"} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions missing %q:\n%s", want, joined)
		}
	}
	if regs, _ := Compare(base, base, CompareOptions{}); len(regs) != 0 {
		t.Errorf("self-compare found regressions: %v", regs)
	}

	// Small absolute latencies below the floor never count as regressions.
	tiny := &Report{SchemaVersion: SchemaVersion, Classes: map[string]ClassReport{
		ClassResubmit: {Requests: 10, P50MS: 0.01, P95MS: 0.02, P99MS: 0.03},
	}}
	tinyWorse := &Report{SchemaVersion: SchemaVersion, Classes: map[string]ClassReport{
		ClassResubmit: {Requests: 10, P50MS: 0.04, P95MS: 0.08, P99MS: 0.12},
	}}
	if regs, _ := Compare(tiny, tinyWorse, CompareOptions{}); len(regs) != 0 {
		t.Errorf("sub-floor jitter flagged as regression: %v", regs)
	}

	// A class vanishing from the candidate is a note, not silence.
	missing := &Report{SchemaVersion: SchemaVersion, CacheEnabled: true,
		Classes: map[string]ClassReport{ClassResubmit: base.Classes[ClassResubmit]},
		Cache:   base.Cache}
	if _, notes := Compare(base, missing, CompareOptions{}); len(notes) == 0 {
		t.Error("dropped class produced no note")
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "LOAD_test.json")
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Profile:       Profile{Name: "rt", Requests: 1, Concurrency: 1, Mix: Mix{Resubmit: 1}},
		Classes:       map[string]ClassReport{ClassResubmit: {Requests: 1, P50MS: 1}},
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.Name != "rt" || got.Classes[ClassResubmit].Requests != 1 {
		t.Errorf("round-trip mangled the report: %+v", got)
	}

	future := *rep
	future.SchemaVersion = SchemaVersion + 1
	if err := future.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted a newer schema version")
	}
}
