package load

// Benchdiff-style comparison of two load reports, plus the atomic
// artifact I/O cmd/incload trades in.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CompareOptions tune Compare.
type CompareOptions struct {
	// Threshold is the tolerated relative latency growth per class and
	// percentile (0.5 = 50%). Zero means the default 0.5: in-process
	// latencies at millisecond scale are noisy, so the gate is loose.
	Threshold float64
	// MinMS skips the latency comparison for percentiles whose baseline
	// is under this floor (default 0.5ms) — too fast to time meaningfully.
	MinMS float64
	// HitRateDrop is the tolerated absolute hit-rate decrease
	// (default 0.1, i.e. ten percentage points).
	HitRateDrop float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.5
	}
	if o.MinMS == 0 {
		o.MinMS = 0.5
	}
	if o.HitRateDrop == 0 {
		o.HitRateDrop = 0.1
	}
	return o
}

// Compare diffs candidate against baseline: regressions fail the gate,
// notes are informational (missing classes, error-count changes).
func Compare(base, cand *Report, opts CompareOptions) (regressions, notes []string) {
	opts = opts.withDefaults()
	names := make([]string, 0, len(cand.Classes))
	for name := range cand.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cand.Classes[name]
		b, ok := base.Classes[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("class %s: not in baseline", name))
			continue
		}
		if c.Errors > b.Errors {
			regressions = append(regressions,
				fmt.Sprintf("class %s: errors %d -> %d", name, b.Errors, c.Errors))
		}
		for _, pct := range []struct {
			label      string
			base, cand float64
		}{
			{"p50", b.P50MS, c.P50MS},
			{"p95", b.P95MS, c.P95MS},
			{"p99", b.P99MS, c.P99MS},
		} {
			if pct.base < opts.MinMS {
				continue
			}
			if pct.cand > pct.base*(1+opts.Threshold) {
				regressions = append(regressions,
					fmt.Sprintf("class %s: %s %.2fms -> %.2fms (+%.0f%%, threshold %.0f%%)",
						name, pct.label, pct.base, pct.cand,
						(pct.cand/pct.base-1)*100, opts.Threshold*100))
			}
		}
	}
	for name := range base.Classes {
		if _, ok := cand.Classes[name]; !ok {
			notes = append(notes, fmt.Sprintf("class %s: missing from candidate", name))
		}
	}
	if base.CacheEnabled && cand.CacheEnabled &&
		cand.Cache.HitRate < base.Cache.HitRate-opts.HitRateDrop {
		regressions = append(regressions,
			fmt.Sprintf("cache hit rate %.1f%% -> %.1f%% (tolerated drop %.0f points)",
				base.Cache.HitRate*100, cand.Cache.HitRate*100, opts.HitRateDrop*100))
	} else if base.CacheEnabled != cand.CacheEnabled {
		notes = append(notes, fmt.Sprintf("cache enabled: baseline %v, candidate %v",
			base.CacheEnabled, cand.CacheEnabled))
	}
	return regressions, notes
}

// WriteFile writes the report atomically (temp file + rename).
func (r *Report) WriteFile(path string) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("load: writing %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		tmp.Close()
		return fmt.Errorf("load: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("load: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("load: writing %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a report, rejecting schema versions this code does not
// understand.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("load: reading %s: %w", path, err)
	}
	if r.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("load: %s has schema_version %d, this binary understands %d",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}
