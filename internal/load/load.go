// Package load is the concurrent load-test harness behind cmd/incload:
// it drives a mixed traffic profile — identical resubmits, distinct
// problems, detached jobs and session commits — against an in-process
// serve handler at a configurable concurrency and reports per-class
// latency percentiles plus the solution-cache hit rate as a
// machine-readable artifact (LOAD_<profile>.json). Compare diffs two
// such artifacts benchdiff-style, so CI can gate on p99 and hit-rate
// regressions.
//
// The workload is synthesized deterministically from the profile seed
// with model.Builder systems small enough that a single solve takes
// milliseconds: the harness measures the serving layer (queueing,
// caching, single-flight coalescing), not solver throughput.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/tm"
)

// SchemaVersion identifies the JSON layout of Report. Version 2 added
// the serialized per-class latency histogram (ClassReport.Histogram);
// version 3 added the per-worker latency rows (Report.Workers) populated
// when responses carry the cluster's X-Incdes-Worker attribution. The
// scalar percentile fields are unchanged, so Compare still diffs against
// version-1 and -2 baselines.
const SchemaVersion = 3

// latencyBounds are the per-class histogram buckets, in milliseconds:
// 10 per decade from 10µs to 10s. Denser than the serving catalog's
// buckets because the harness derives its gate percentiles from them.
func latencyBounds() []float64 { return obs.LogBounds(0.01, 10, 61) }

// Traffic class names, as they appear in Report.Classes.
const (
	ClassResubmit = "resubmit" // identical one-shot solve, repeated
	ClassDistinct = "distinct" // one-shot solves over a pool of distinct systems
	ClassDetach   = "detach"   // detached jobs (202 latency), then polled to completion
	ClassCommit   = "commit"   // session commits of one application on per-request branches
)

// Mix weights the traffic classes. Requests are assigned to classes
// deterministically by request index (round-robin over the cumulative
// weights), so the same profile always issues the same sequence.
type Mix struct {
	Resubmit int `json:"resubmit"`
	Distinct int `json:"distinct"`
	Detach   int `json:"detach"`
	Commit   int `json:"commit"`
}

func (m Mix) total() int { return m.Resubmit + m.Distinct + m.Detach + m.Commit }

// class maps a request index to its traffic class.
func (m Mix) class(i int) string {
	r := i % m.total()
	if r < m.Resubmit {
		return ClassResubmit
	}
	r -= m.Resubmit
	if r < m.Distinct {
		return ClassDistinct
	}
	r -= m.Distinct
	if r < m.Detach {
		return ClassDetach
	}
	return ClassCommit
}

// Profile configures one load run.
type Profile struct {
	Name        string `json:"name"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	Seed        int64  `json:"seed"`
	Mix         Mix    `json:"mix"`
	// DistinctPool is how many distinct systems the distinct and detach
	// classes cycle through (default 4): once the pool has been seen the
	// classes start hitting the cache too, like a real request mix.
	DistinctPool int `json:"distinct_pool"`
	// Strategy is the strategy query parameter (default "mh").
	Strategy string `json:"strategy,omitempty"`
	// CacheOff appends cache=off to every request: the baseline the
	// acceptance gate compares cached latencies against.
	CacheOff bool `json:"cache_off,omitempty"`
}

// Named returns a predefined profile. The zero fields of the result can
// still be overridden by the caller.
func Named(name string) (Profile, bool) {
	switch name {
	case "smoke":
		// Small enough for a CI gate: mostly resubmits, so the hit rate
		// is high and stable.
		return Profile{Name: "smoke", Requests: 40, Concurrency: 4, Seed: 1,
			Mix: Mix{Resubmit: 6, Distinct: 2, Detach: 1, Commit: 1}, DistinctPool: 2}, true
	case "mixed":
		return Profile{Name: "mixed", Requests: 120, Concurrency: 8, Seed: 1,
			Mix: Mix{Resubmit: 5, Distinct: 3, Detach: 2, Commit: 2}, DistinctPool: 4}, true
	case "resubmit":
		// Pure identical-resubmit traffic: the class the ≥10× cached-p50
		// acceptance criterion is measured on.
		return Profile{Name: "resubmit", Requests: 80, Concurrency: 8, Seed: 1,
			Mix: Mix{Resubmit: 1}, DistinctPool: 1}, true
	case "cluster":
		// Cluster-shaped traffic for a coordinator target: cache-miss-heavy
		// (distinct and detached solves dominate) so most requests actually
		// dispatch to workers and the per-worker latency rows fill in.
		// pool as large as the distinct-request count, so no distinct
		// solve repeats within a run.
		return Profile{Name: "cluster", Requests: 60, Concurrency: 6, Seed: 1,
			Mix: Mix{Resubmit: 2, Distinct: 4, Detach: 3, Commit: 1}, DistinctPool: 24}, true
	}
	return Profile{}, false
}

func (p Profile) withDefaults() Profile {
	if p.Requests <= 0 {
		p.Requests = 40
	}
	if p.Concurrency <= 0 {
		p.Concurrency = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Mix.total() <= 0 {
		p.Mix = Mix{Resubmit: 1}
	}
	if p.DistinctPool <= 0 {
		p.DistinctPool = 4
	}
	return p
}

// ClassReport aggregates one traffic class. The percentiles are read
// from Histogram (linear interpolation within the bucket), so they are
// approximations bounded by the bucket resolution; the mean is exact.
type ClassReport struct {
	Requests  int                    `json:"requests"`
	Errors    int                    `json:"errors"`
	MeanMS    float64                `json:"mean_ms"`
	P50MS     float64                `json:"p50_ms"`
	P95MS     float64                `json:"p95_ms"`
	P99MS     float64                `json:"p99_ms"`
	Histogram *obs.HistogramSnapshot `json:"histogram,omitempty"` // latency bins, milliseconds
}

// CacheReport tallies the X-Incdes-Cache headers observed across the
// run. Hits and inflight-coalesced responses both avoided a solve, so
// HitRate counts them together. Session commits only carry the header
// on a hit, so commit misses do not enter the denominator.
type CacheReport struct {
	Hit      int     `json:"hit"`
	Miss     int     `json:"miss"`
	Inflight int     `json:"inflight"`
	HitRate  float64 `json:"hit_rate"`
}

// Report is the artifact of one load run.
type Report struct {
	SchemaVersion int                    `json:"schema_version"`
	Profile       Profile                `json:"profile"`
	CacheEnabled  bool                   `json:"cache_enabled"`
	WallMS        float64                `json:"wall_ms"`
	Classes       map[string]ClassReport `json:"classes"`
	Cache         CacheReport            `json:"cache"`
	// Workers aggregates latencies by the X-Incdes-Worker response
	// attribution a cluster coordinator emits ("w1", "w2,w3" for multi-
	// worker fan-outs). Empty outside cluster runs; cache hits and local
	// solves carry no attribution and are not counted here.
	Workers map[string]ClassReport `json:"workers,omitempty"`
}

// Errors sums the error counts across classes.
func (r *Report) Errors() int {
	n := 0
	for _, c := range r.Classes {
		n += c.Errors
	}
	return n
}

// sample is one completed request.
type sample struct {
	class  string
	ms     float64
	cache  string // X-Incdes-Cache header value, "" when absent
	worker string // X-Incdes-Worker header value, "" when absent
	err    error
}

// Run drives the profile against h — normally serve.Server.Handler()
// wrapped by the caller — and aggregates the results. The handler is
// exercised in-process (httptest request/recorder pairs), so measured
// latencies exclude network and TLS but include queueing, solving,
// caching and JSON encoding.
func Run(h http.Handler, p Profile) (*Report, error) {
	p = p.withDefaults()
	w, err := buildWorkload(h, p)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	samples := make([]sample, p.Requests)
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < p.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				samples[i] = w.issue(h, p, i)
			}
		}()
	}
	for i := 0; i < p.Requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &Report{
		SchemaVersion: SchemaVersion,
		Profile:       p,
		WallMS:        float64(time.Since(start)) / float64(time.Millisecond),
		Classes:       map[string]ClassReport{},
	}
	byClass := map[string]*obs.Histogram{}
	byWorker := map[string]*obs.Histogram{}
	workerCounts := map[string]ClassReport{}
	for _, s := range samples {
		c := rep.Classes[s.class]
		c.Requests++
		if s.err != nil {
			c.Errors++
		} else {
			h := byClass[s.class]
			if h == nil {
				h = obs.NewHistogram(latencyBounds())
				byClass[s.class] = h
			}
			h.Observe(s.ms)
		}
		rep.Classes[s.class] = c
		if s.worker != "" {
			wc := workerCounts[s.worker]
			wc.Requests++
			if s.err != nil {
				wc.Errors++
			} else {
				h := byWorker[s.worker]
				if h == nil {
					h = obs.NewHistogram(latencyBounds())
					byWorker[s.worker] = h
				}
				h.Observe(s.ms)
			}
			workerCounts[s.worker] = wc
		}
		switch s.cache {
		case "hit":
			rep.Cache.Hit++
		case "miss":
			rep.Cache.Miss++
		case "inflight":
			rep.Cache.Inflight++
		}
	}
	fill := func(c ClassReport, h *obs.Histogram) ClassReport {
		hs := h.Snapshot()
		c.MeanMS = hs.Mean()
		c.P50MS = hs.Quantile(0.50)
		c.P95MS = hs.Quantile(0.95)
		c.P99MS = hs.Quantile(0.99)
		c.Histogram = &hs
		return c
	}
	for name, h := range byClass {
		rep.Classes[name] = fill(rep.Classes[name], h)
	}
	if len(workerCounts) > 0 {
		rep.Workers = map[string]ClassReport{}
		for name, wc := range workerCounts {
			if h := byWorker[name]; h != nil {
				wc = fill(wc, h)
			}
			rep.Workers[name] = wc
		}
	}
	if n := rep.Cache.Hit + rep.Cache.Miss + rep.Cache.Inflight; n > 0 {
		rep.CacheEnabled = true
		rep.Cache.HitRate = float64(rep.Cache.Hit+rep.Cache.Inflight) / float64(n)
	}
	return rep, nil
}

// workload holds the pre-built request bodies and session plumbing.
type workload struct {
	resubmit  []byte   // one system, posted verbatim by every resubmit request
	distinct  [][]byte // pool systems, cycled by the distinct and detach classes
	commitApp []byte   // one application, committed on per-request branches
	sessionID string
}

// loadSystem builds the deterministic fixture system: 3 nodes, a frozen
// base application and one current application whose size varies with
// variant (variant also perturbs the WCETs, so every variant is a
// genuinely different problem with the same hyperperiod).
func loadSystem(variant int) (*model.System, error) {
	b := model.NewBuilder()
	b.Node("N0")
	b.Node("N1")
	b.Node("N2")
	b.Node("N3")
	b.UniformBus(8, 1, 2)
	addApp(b, "base", 8, 3+variant%2)
	addApp(b, fmt.Sprintf("cur%d", variant), 16+variant%3, 2+variant%3)
	return b.System()
}

func addApp(b *model.Builder, name string, procs, wcet int) {
	g := b.App(name).Graph(name+"-g", tm.Time(120), tm.Time(120))
	var prev model.ProcID
	for i := 0; i < procs; i++ {
		p := g.UniformProc(fmt.Sprintf("%s-p%d", name, i), tm.Time(wcet))
		if i > 0 {
			g.Msg(prev, p, 4)
		}
		prev = p
	}
}

func sysJSON(sys *model.System) ([]byte, error) {
	var buf bytes.Buffer
	if err := sys.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildWorkload synthesizes the request bodies and, when the mix
// includes commits, opens one session and pre-creates the per-request
// branches so the measured commit latency is the commit POST alone.
func buildWorkload(h http.Handler, p Profile) (*workload, error) {
	w := &workload{}
	// Variant namespaces keep the classes' fingerprints disjoint: the
	// resubmit class must never collide with the distinct pool.
	seed := int(p.Seed % 1000)
	sys, err := loadSystem(1000 + seed)
	if err != nil {
		return nil, fmt.Errorf("load: building resubmit system: %w", err)
	}
	if w.resubmit, err = sysJSON(sys); err != nil {
		return nil, err
	}
	for v := 0; v < p.DistinctPool; v++ {
		sys, err := loadSystem(seed + v)
		if err != nil {
			return nil, fmt.Errorf("load: building pool system %d: %w", v, err)
		}
		body, err := sysJSON(sys)
		if err != nil {
			return nil, err
		}
		w.distinct = append(w.distinct, body)
	}
	if p.Mix.Commit <= 0 {
		return w, nil
	}

	// Session setup: base system without the current application; the
	// commit class re-adds it as its committed application.
	full, err := loadSystem(2000 + seed)
	if err != nil {
		return nil, err
	}
	base := &model.System{Arch: full.Arch, Apps: full.Apps[:1]}
	baseJSON, err := sysJSON(base)
	if err != nil {
		return nil, err
	}
	var appBuf bytes.Buffer
	if err := full.Apps[1].WriteJSON(&appBuf); err != nil {
		return nil, err
	}
	w.commitApp = appBuf.Bytes()

	var sessDoc struct {
		ID string `json:"id"`
	}
	if code, err := w.call(h, "POST", "/v1/sessions", baseJSON, &sessDoc); err != nil || code != http.StatusCreated {
		return nil, fmt.Errorf("load: opening session: status %d, err %v", code, err)
	}
	w.sessionID = sessDoc.ID
	for i := 0; i < p.Requests; i++ {
		if p.Mix.class(i) != ClassCommit {
			continue
		}
		url := fmt.Sprintf("/v1/sessions/%s/branches?name=load%d&from=0", w.sessionID, i)
		if code, err := w.call(h, "POST", url, nil, nil); err != nil || code != http.StatusCreated {
			return nil, fmt.Errorf("load: creating branch load%d: status %d, err %v", i, code, err)
		}
	}
	return w, nil
}

// call issues one untimed setup request against the handler.
func (w *workload) call(h http.Handler, method, url string, body []byte, out any) (int, error) {
	req := httptest.NewRequest(method, url, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			return rec.Code, fmt.Errorf("load: %s %s: %w", method, url, err)
		}
	}
	return rec.Code, nil
}

// issue performs request i and measures it.
func (w *workload) issue(h http.Handler, p Profile, i int) sample {
	class := p.Mix.class(i)
	strategy := p.Strategy
	if strategy == "" {
		strategy = "mh"
	}
	cacheQ := ""
	if p.CacheOff {
		cacheQ = "&cache=off"
	}
	var (
		method = "POST"
		url    string
		body   []byte
	)
	switch class {
	case ClassResubmit:
		url = "/v1/solve?strategy=" + strategy + cacheQ
		body = w.resubmit
	case ClassDistinct:
		url = "/v1/solve?strategy=" + strategy + cacheQ
		body = w.distinct[i%len(w.distinct)]
	case ClassDetach:
		url = "/v1/solve?detach=1&strategy=" + strategy + cacheQ
		body = w.distinct[i%len(w.distinct)]
	case ClassCommit:
		url = fmt.Sprintf("/v1/sessions/%s/commits?branch=load%d&strategy=%s%s",
			w.sessionID, i, strategy, cacheQ)
		body = w.commitApp
	}

	start := time.Now()
	req := httptest.NewRequest(method, url, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	s := sample{
		class:  class,
		ms:     float64(time.Since(start)) / float64(time.Millisecond),
		cache:  rec.Header().Get("X-Incdes-Cache"),
		worker: rec.Header().Get("X-Incdes-Worker"),
	}
	wantCode := http.StatusOK
	if class == ClassDetach {
		wantCode = http.StatusAccepted
	}
	if rec.Code != wantCode {
		s.err = fmt.Errorf("load: %s %s = %d: %.200s", method, url, rec.Code, rec.Body.String())
		return s
	}
	if class == ClassDetach {
		// The measured latency is the 202; completion is polled untimed so
		// detached work still finishes inside the run.
		var doc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			s.err = err
			return s
		}
		s.err = w.await(h, doc.ID)
	}
	return s
}

// await polls a detached job until it leaves the queue.
func (w *workload) await(h http.Handler, id string) error {
	for i := 0; i < 60_000; i++ {
		var doc struct {
			Status string `json:"status"`
		}
		code, err := w.call(h, "GET", "/v1/solve/"+id, nil, &doc)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("load: GET /v1/solve/%s = %d", id, code)
		}
		switch doc.Status {
		case "done", "interrupted":
			return nil
		case "failed":
			return fmt.Errorf("load: detached job %s failed", id)
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("load: detached job %s did not finish", id)
}
