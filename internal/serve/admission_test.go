package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// postError posts and decodes the unified error envelope, returning the
// response for header checks.
func postError(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, ErrorDoc) {
	t.Helper()
	var doc ErrorDoc
	resp := do(t, "POST", ts.URL+path, body, &doc)
	return resp, doc
}

// TestQueueFullEnvelopeAndRetryAfter pins the 429 contract across every
// job-submitting endpoint: the unified error envelope with code
// queue_full, and retry advice that agrees between the Retry-After
// header and the body's retry_after_s.
func TestQueueFullEnvelopeAndRetryAfter(t *testing.T) {
	s := New(Config{Parallelism: 1, MaxConcurrent: 1, QueueDepth: 1})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	body := fixtureJSON(t)
	sysJSON, apps, _ := sessionFixture(t)
	id := openSession(t, ts, sysJSON, "")

	// Occupy the single worker slot with an effectively endless solve,
	// then park one more job in the single queue position.
	var blocker JobStatusDoc
	if resp := do(t, "POST", ts.URL+"/v1/solve?strategy=sa&sa-iters=50000000&detach=1", body, &blocker); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker = %d", resp.StatusCode)
	}
	pollStatus(t, ts, blocker.ID, StatusRunning)
	var queued JobStatusDoc
	if resp := do(t, "POST", ts.URL+"/v1/solve?strategy=mh&detach=1", body, &queued); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job = %d", resp.StatusCode)
	}

	for _, tc := range []struct {
		name, path string
		body       []byte
	}{
		{"solve", "/v1/solve?strategy=mh", body},
		{"solve detached", "/v1/solve?strategy=mh&detach=1", body},
		{"legacy solve", "/solve?strategy=mh", body},
		{"session commit", "/v1/sessions/" + id + "/commits?strategy=mh", apps[0]},
	} {
		resp, doc := postError(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("%s: status = %d, want 429", tc.name, resp.StatusCode)
		}
		if doc.Error.Code != ErrCodeQueueFull {
			t.Errorf("%s: code = %q, want %q", tc.name, doc.Error.Code, ErrCodeQueueFull)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Errorf("%s: Retry-After = %q, want 1", tc.name, got)
		}
		if doc.Error.RetryAfterS != 1 {
			t.Errorf("%s: retry_after_s = %v, want 1", tc.name, doc.Error.RetryAfterS)
		}
		if doc.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	// Tear the blockers down so the server drains cleanly.
	do(t, "DELETE", ts.URL+"/v1/solve/"+blocker.ID, nil, nil)
	do(t, "DELETE", ts.URL+"/v1/solve/"+queued.ID, nil, nil)
	pollStatus(t, ts, blocker.ID, StatusInterrupted, StatusFailed)
	pollStatus(t, ts, queued.ID, StatusInterrupted, StatusFailed, StatusDone)
}

// TestDrainingEnvelope pins shutdown behavior: after Close every
// job-submitting endpoint answers 503 with code draining and the same
// Retry-After math, and readiness flips.
func TestDrainingEnvelope(t *testing.T) {
	s := New(Config{Parallelism: 1, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	body := fixtureJSON(t)
	sysJSON, apps, _ := sessionFixture(t)
	id := openSession(t, ts, sysJSON, "")

	s.Close()

	if resp := do(t, "GET", ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after Close = %d, want 503", resp.StatusCode)
	}
	for _, tc := range []struct {
		name, path string
		body       []byte
	}{
		{"solve", "/v1/solve?strategy=mh", body},
		{"session commit", "/v1/sessions/" + id + "/commits?strategy=mh", apps[0]},
	} {
		resp, doc := postError(t, ts, tc.path, tc.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s: status = %d, want 503", tc.name, resp.StatusCode)
		}
		if doc.Error.Code != ErrCodeDraining {
			t.Errorf("%s: code = %q, want %q", tc.name, doc.Error.Code, ErrCodeDraining)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Errorf("%s: Retry-After = %q, want 1", tc.name, got)
		}
		if doc.Error.RetryAfterS != 1 {
			t.Errorf("%s: retry_after_s = %v, want 1", tc.name, doc.Error.RetryAfterS)
		}
	}
}
