package serve

// Whole-solution caching and single-flight dedup for POST /v1/solve.
//
// With Config.SolutionCacheSize > 0 every solve request is fingerprinted
// (internal/cache: canonical SHA-256 over the posted system, problem
// parameters and strategy tuning — the engine's exact memo key
// generalized to whole problems). The response is annotated with
// X-Incdes-Cache:
//
//	hit       served from the LRU; no job queued, no engine work
//	miss      this request ran the solve (the single-flight leader)
//	inflight  coalesced onto an identical in-flight solve (follower)
//
// Requests opt out per-request with cache=off (no header is set).
// core.Solve is deterministic, so a cached or coalesced response is
// byte-identical to the solve the request would have run — including the
// SSE trace stream, which followers and hits replay from the leader's
// buffered events.
//
// Single-flight semantics: the leader's solve runs under the flight's
// context (derived from the server, not the leader's connection), so a
// leader disconnect while followers wait does not kill their solve; the
// solve is cancelled only when the last member leaves. Interrupted and
// failed solves are never stored.

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"incdes/internal/cache"
	"incdes/internal/core"
	"incdes/internal/model"
	"incdes/internal/obs"
)

// cacheHeader annotates cache-eligible solve responses.
const cacheHeader = "X-Incdes-Cache"

// solutionEntry is one cached one-shot solve: the response document plus
// the trace events that replay its SSE stream.
type solutionEntry struct {
	doc    *SolutionDoc
	events []obs.TraceEvent
}

// flightResult is what a completed flight hands every member.
type flightResult struct {
	doc    *SolutionDoc
	events []obs.TraceEvent
}

// cacheSpec is the canonical strategy identity of the request, hashed
// into the problem fingerprint.
func (p SolveParams) cacheSpec() cache.Spec {
	return cache.Spec{
		Name:          p.Strategy,
		SAIters:       p.SAIters,
		SARestarts:    p.SARestarts,
		SASeed:        p.SASeed,
		SAChainOffset: p.SAChainOffset,
	}
}

// serveHit answers a request from the solution cache: a job is
// registered (bypassing the queue — a hit does no solver work) so the
// status and SSE endpoints behave exactly as for a solved job, the
// leader's trace is replayed into it, and it completes immediately.
func (s *Server) serveHit(w http.ResponseWriter, r *http.Request, ent *solutionEntry, params SolveParams, tag string) {
	w.Header().Set(cacheHeader, "hit")
	s.global.Counter(obs.CtrSolveCacheHits).Inc()
	j := s.register(tag, obs.TraceFrom(r.Context()))
	for _, ev := range ent.events {
		j.buf.Trace(ev)
	}
	j.finish(ent.doc, nil)
	s.finalize(j)
	if params.Detach {
		w.Header().Set("Location", "/v1/solve/"+j.id)
		writeJSON(w, http.StatusAccepted, s.statusDoc(j))
		return
	}
	writeJSON(w, http.StatusOK, s.statusDoc(j))
}

// leaderWork is the single-flight leader's work closure: it launches the
// real solve under the flight's context, stores the result on success,
// and waits for completion under the leader's own (request-bound)
// context.
func (s *Server) leaderWork(f *cache.Flight, j *job, sys *model.System, p *core.Problem, frozen int, params SolveParams, key string) func(context.Context) (*SolutionDoc, error) {
	return func(ctx context.Context) (*SolutionDoc, error) {
		// The flight span brackets the coalesced solve in the leader's
		// trace; its ID is published on the flight so follower spans can
		// reference the leader's flight (single-flight linkage).
		fctx, fspan := obs.StartSpan(ctx, "cache.flight")
		f.SetNote(fspan.ID())
		solve := s.solveWork(j, sys, p, frozen, params)
		go func() {
			// The solve must run under the flight's context (so it survives
			// the leader leaving) but record into the leader's trace.
			doc, err := solve(obs.CopyTrace(f.Context(), fctx))
			if err == nil && doc != nil && !doc.Interrupted {
				s.storeSolution(key, doc, j.buf.snapshot())
			}
			f.Complete(&flightResult{doc: doc, events: j.buf.snapshot()}, err)
		}()
		val, err := s.awaitFlight(ctx, f)
		fspan.End()
		if err != nil {
			return nil, err
		}
		return val.doc, nil
	}
}

// runFollower drives a coalesced request: no worker slot, no queue
// accounting — the job only waits for the leader's flight and then
// mirrors its outcome, replaying the leader's trace into its own SSE
// buffer. Mirrors run()'s cancellation and timeout plumbing so DELETE,
// client disconnect, JobTimeout and shutdown behave identically.
func (s *Server) runFollower(ctx context.Context, j *job, requested time.Duration, f *cache.Flight) {
	ctx, cancel := context.WithCancel(ctx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	stopWatch := context.AfterFunc(s.baseCtx, cancel)
	defer stopWatch()
	timeout := requested
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}
	j.setStatus(StatusRunning)
	// The follower's whole wait is one span; on success it links to the
	// leader's flight span via the ID the leader published.
	_, fspan := obs.StartSpan(ctx, "cache.follow")
	val, err := s.awaitFlight(ctx, f)
	if err != nil {
		fspan.End()
		j.finish(nil, err)
		s.finalize(j)
		return
	}
	fspan.SetAttr("leader_span", f.Note())
	fspan.End()
	for _, ev := range val.events {
		j.buf.Trace(ev)
	}
	j.finish(val.doc, nil)
	s.finalize(j)
}

// awaitFlight waits for the flight under the member's own context.
// Leaving as the last member cancels the flight's solve, which then
// completes with its best-so-far design — the same semantics a lone
// request's disconnect has always had — so the member still receives the
// interrupted document. Leaving while others remain abandons the result
// to them.
func (s *Server) awaitFlight(ctx context.Context, f *cache.Flight) (*flightResult, error) {
	select {
	case <-f.Done():
		f.Leave()
	case <-ctx.Done():
		if f.Leave() > 0 {
			return nil, fmt.Errorf("abandoned coalesced solve: %w", ctx.Err())
		}
		// Last member out: Leave cancelled the flight's context; the
		// solve winds down to best-so-far and completes promptly.
		<-f.Done()
	}
	v, err := f.Result()
	if err != nil {
		return nil, err
	}
	return v.(*flightResult), nil
}

// storeSolution caches a completed solve and keeps the serve-level cache
// instruments current.
func (s *Server) storeSolution(key string, doc *SolutionDoc, events []obs.TraceEvent) {
	if s.solutions.Put(key, &solutionEntry{doc: doc, events: events}) {
		s.global.Counter(obs.CtrSolveCacheEvict).Inc()
	}
	s.global.Counter(obs.CtrSolveCacheStores).Inc()
}
