package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"incdes/internal/core"
	"incdes/internal/model"
)

// newCachingServer is newTestServer with the solution cache enabled.
func newCachingServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// metricValue scrapes /metrics and returns one sample's value.
func metricValue(t *testing.T, ts *httptest.Server, metric, strategy string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	prefix := fmt.Sprintf("%s{strategy=%q} ", metric, strategy)
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %q in /metrics", prefix)
	return 0
}

// rawJobDoc keeps the solution document's bytes exactly as transmitted,
// for byte-identity assertions.
type rawJobDoc struct {
	ID       string          `json:"id"`
	Status   string          `json:"status"`
	Solution json.RawMessage `json:"solution"`
}

// pollStatus waits for GET /v1/solve/{id} to report one of the wanted
// statuses.
func pollStatus(t *testing.T, ts *httptest.Server, id string, want ...string) JobStatusDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var doc JobStatusDoc
		if resp := do(t, "GET", ts.URL+"/v1/solve/"+id, nil, &doc); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/solve/%s = %d", id, resp.StatusCode)
		}
		for _, w := range want {
			if doc.Status == w {
				return doc
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %q, want one of %v", id, doc.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSolveCacheMissThenHit pins the acceptance contract of the
// solution cache: the second identical request is served from the LRU
// with the byte-identical document, zero new engine evaluations, and
// the X-Incdes-Cache header sequence miss → hit.
func TestSolveCacheMissThenHit(t *testing.T) {
	_, ts := newCachingServer(t, Config{Parallelism: 1, MaxConcurrent: 2, SolutionCacheSize: 8})
	body := fixtureJSON(t)

	var first rawJobDoc
	resp := do(t, "POST", ts.URL+"/v1/solve?strategy=mh", body, &first)
	if resp.StatusCode != http.StatusOK || first.Status != StatusDone {
		t.Fatalf("first solve = %d %q", resp.StatusCode, first.Status)
	}
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("first solve %s = %q, want miss", cacheHeader, got)
	}
	evalsAfterMiss := metricValue(t, ts, "incdes_core_evaluations_total", "all")
	if evalsAfterMiss <= 0 {
		t.Fatalf("no evaluations recorded after a real solve")
	}

	var second rawJobDoc
	resp = do(t, "POST", ts.URL+"/v1/solve?strategy=mh", body, &second)
	if resp.StatusCode != http.StatusOK || second.Status != StatusDone {
		t.Fatalf("second solve = %d %q", resp.StatusCode, second.Status)
	}
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Fatalf("second solve %s = %q, want hit", cacheHeader, got)
	}
	if !bytes.Equal(first.Solution, second.Solution) {
		t.Errorf("cached solution differs from the original:\nmiss: %.200s\nhit:  %.200s", first.Solution, second.Solution)
	}
	if second.ID == first.ID {
		t.Error("hit reused the original job id")
	}
	// The acceptance criterion: a hit does zero engine work.
	if got := metricValue(t, ts, "incdes_core_evaluations_total", "all"); got != evalsAfterMiss {
		t.Errorf("hit ran %v new evaluations, want 0", got-evalsAfterMiss)
	}
	if got := metricValue(t, ts, "incdes_cache_hits_total", "all"); got != 1 {
		t.Errorf("cache hits = %v, want 1", got)
	}
	if got := metricValue(t, ts, "incdes_cache_stores_total", "all"); got != 1 {
		t.Errorf("cache stores = %v, want 1", got)
	}
	if got := metricValue(t, ts, "incdes_cache_entries", "all"); got != 1 {
		t.Errorf("cache entries gauge = %v, want 1", got)
	}

	// And the cached document is byte-identical to a direct library
	// solve of the same problem.
	sys, err := model.ReadSystem(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProblem(sys, "")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(context.Background(), p, core.Options{Strategy: core.MH, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewSolutionDoc(sol)
	if err != nil {
		t.Fatal(err)
	}
	if wantJSON := marshal(t, want); !bytes.Equal(second.Solution, wantJSON) {
		t.Errorf("cached solution differs from direct core.Solve:\nhit:    %.200s\ndirect: %.200s", second.Solution, wantJSON)
	}
}

// TestSolveCacheOffBypasses pins the per-request opt-out: cache=off
// neither reads nor writes the cache and sets no header.
func TestSolveCacheOffBypasses(t *testing.T) {
	_, ts := newCachingServer(t, Config{Parallelism: 1, MaxConcurrent: 2, SolutionCacheSize: 8})
	body := fixtureJSON(t)

	resp := do(t, "POST", ts.URL+"/v1/solve?strategy=mh", body, nil)
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("warm-up solve header = %q, want miss", got)
	}
	evals := metricValue(t, ts, "incdes_core_evaluations_total", "all")

	// cache=off must re-solve even though an identical entry is cached.
	resp = do(t, "POST", ts.URL+"/v1/solve?strategy=mh&cache=off", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache=off solve = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(cacheHeader); got != "" {
		t.Errorf("cache=off set %s = %q, want no header", cacheHeader, got)
	}
	if got := metricValue(t, ts, "incdes_core_evaluations_total", "all"); got <= evals {
		t.Error("cache=off request did not run the engine")
	}
	if got := metricValue(t, ts, "incdes_cache_hits_total", "all"); got != 0 {
		t.Errorf("cache hits = %v, want 0", got)
	}
	if got := metricValue(t, ts, "incdes_cache_stores_total", "all"); got != 1 {
		t.Errorf("cache stores = %v, want 1 (cache=off must not store)", got)
	}
	if resp := do(t, "POST", ts.URL+"/v1/solve?strategy=mh&cache=banana", body, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cache= value = %d, want 400", resp.StatusCode)
	}
}

// TestSolveSingleFlightCoalesces pins the dedup contract end to end:
// concurrent identical requests run ONE solve; followers replay the
// leader's result byte-identically and are marked inflight.
func TestSolveSingleFlightCoalesces(t *testing.T) {
	_, ts := newCachingServer(t, Config{Parallelism: 1, MaxConcurrent: 1, QueueDepth: 8, SolutionCacheSize: 8})
	body := fixtureJSON(t)
	// ~0.6s of annealing: long enough that followers provably join the
	// flight (they are issued after the leader reports running), short
	// enough to keep the test quick.
	const query = "/v1/solve?strategy=sa&sa-iters=4000&seed=7"

	var leader JobStatusDoc
	resp := do(t, "POST", ts.URL+query+"&detach=1", body, &leader)
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get(cacheHeader) != "miss" {
		t.Fatalf("leader = %d, %s = %q", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader))
	}
	pollStatus(t, ts, leader.ID, StatusRunning, StatusDone)

	const followers = 3
	headers := make([]string, followers)
	docs := make([]rawJobDoc, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := do(t, "POST", ts.URL+query, body, &docs[i])
			headers[i] = resp.Header.Get(cacheHeader)
		}(i)
	}
	wg.Wait()
	final := pollStatus(t, ts, leader.ID, StatusDone)
	leaderJSON := marshal(t, final.Solution)

	for i := 0; i < followers; i++ {
		if headers[i] != "inflight" && headers[i] != "hit" {
			t.Errorf("follower %d header = %q, want inflight (or hit)", i, headers[i])
		}
		if docs[i].Status != StatusDone {
			t.Errorf("follower %d status = %q", i, docs[i].Status)
		}
		if !bytes.Equal(docs[i].Solution, leaderJSON) {
			t.Errorf("follower %d solution differs from the leader's", i)
		}
	}
	// The decisive assertion: one strategy run total, for 4 requests.
	if got := metricValue(t, ts, "incdes_core_solves_total", "all"); got != 1 {
		t.Errorf("core solves = %v, want 1 (followers must coalesce)", got)
	}
	if got := metricValue(t, ts, "incdes_cache_misses_total", "all"); got != 1 {
		t.Errorf("cache misses = %v, want 1", got)
	}
	inflight := metricValue(t, ts, "incdes_cache_inflight_dedup_total", "all")
	hits := metricValue(t, ts, "incdes_cache_hits_total", "all")
	if inflight+hits != followers {
		t.Errorf("inflight(%v) + hits(%v) != %d followers", inflight, hits, followers)
	}

	// A later identical request is a plain hit off the stored entry.
	if resp := do(t, "POST", ts.URL+query, body, nil); resp.Header.Get(cacheHeader) != "hit" {
		t.Errorf("post-flight request header = %q, want hit", resp.Header.Get(cacheHeader))
	}
}

// TestSolveLeaderCancelPromotesFollower pins the flight's ownership
// rule: cancelling the leader's request must not kill the solve while a
// follower waits on it, and an interrupted solve is never cached.
func TestSolveLeaderCancelPromotesFollower(t *testing.T) {
	_, ts := newCachingServer(t, Config{Parallelism: 1, MaxConcurrent: 1, QueueDepth: 8, SolutionCacheSize: 8})
	body := fixtureJSON(t)
	// Effectively endless: the test tears it down via DELETE.
	const query = "/v1/solve?strategy=sa&sa-iters=50000000&detach=1"

	var leader JobStatusDoc
	if resp := do(t, "POST", ts.URL+query, body, &leader); resp.Header.Get(cacheHeader) != "miss" {
		t.Fatalf("leader header = %q, want miss", resp.Header.Get(cacheHeader))
	}
	pollStatus(t, ts, leader.ID, StatusRunning)

	var follower JobStatusDoc
	if resp := do(t, "POST", ts.URL+query, body, &follower); resp.Header.Get(cacheHeader) != "inflight" {
		t.Fatalf("follower header = %q, want inflight", resp.Header.Get(cacheHeader))
	}

	// Cancel the leader: its job fails (it abandoned the coalesced
	// solve) but the flight lives on for the follower.
	do(t, "DELETE", ts.URL+"/v1/solve/"+leader.ID, nil, nil)
	lfin := pollStatus(t, ts, leader.ID, StatusFailed)
	if !strings.Contains(lfin.Error, "abandoned coalesced solve") {
		t.Errorf("cancelled leader error = %q", lfin.Error)
	}
	if doc := pollStatus(t, ts, follower.ID, StatusRunning); doc.Status != StatusRunning {
		t.Fatalf("follower status after leader cancel = %q", doc.Status)
	}

	// Cancel the follower too — the last member out winds the solve down
	// to its best-so-far, which the follower still receives.
	do(t, "DELETE", ts.URL+"/v1/solve/"+follower.ID, nil, nil)
	ffin := pollStatus(t, ts, follower.ID, StatusInterrupted)
	if ffin.Solution == nil || !ffin.Solution.Interrupted {
		t.Fatalf("interrupted follower has no best-so-far solution: %+v", ffin)
	}
	// Interrupted solves must never poison the cache.
	if got := metricValue(t, ts, "incdes_cache_stores_total", "all"); got != 0 {
		t.Errorf("cache stores = %v after interrupted flight, want 0", got)
	}
	if resp := do(t, "POST", ts.URL+"/v1/solve?strategy=mh", body, nil); resp.Header.Get(cacheHeader) != "miss" {
		t.Errorf("fresh request header = %q, want miss", resp.Header.Get(cacheHeader))
	}
}

// TestSessionCommitSolveCache pins the session integration: two commits
// of the same application onto the same parent baseline share one
// solve, keyed by the parent's composite fingerprint.
func TestSessionCommitSolveCache(t *testing.T) {
	_, ts := newCachingServer(t, Config{Parallelism: 1, MaxConcurrent: 2, SolutionCacheSize: 8})
	sysJSON, apps, _ := sessionFixture(t)
	id := openSession(t, ts, sysJSON, "")
	for _, name := range []string{"b", "c"} {
		if resp := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/branches?name="+name+"&from=0", nil, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("branch %s = %d", name, resp.StatusCode)
		}
	}

	first := commitApp(t, ts, id, apps[0], "?strategy=mh")
	if first.Commit.CacheHit {
		t.Fatal("first commit reported a cache hit")
	}

	// Identical app, identical parent (v0 via branch b): served from the
	// cache, byte-identical, flagged in both the header and the doc.
	var second JobStatusDoc
	resp := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/commits?strategy=mh&branch=b", apps[0], &second)
	if resp.StatusCode != http.StatusOK || second.Status != StatusDone {
		t.Fatalf("branch commit = %d %q", resp.StatusCode, second.Status)
	}
	if resp.Header.Get(cacheHeader) != "hit" || second.Commit == nil || !second.Commit.CacheHit {
		t.Errorf("second commit not served from cache: header=%q commit=%+v", resp.Header.Get(cacheHeader), second.Commit)
	}
	if !bytes.Equal(marshal(t, first.Solution), marshal(t, second.Solution)) {
		t.Error("cached commit solution differs from the solved one")
	}
	if got := metricValue(t, ts, "incdes_session_solve_cache_hits_total", "all"); got != 1 {
		t.Errorf("session solve-cache hits = %v, want 1", got)
	}

	// cache=off opts a commit out of both lookup and store.
	var third JobStatusDoc
	resp = do(t, "POST", ts.URL+"/v1/sessions/"+id+"/commits?strategy=mh&branch=c&cache=off", apps[0], &third)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache=off commit = %d", resp.StatusCode)
	}
	if resp.Header.Get(cacheHeader) != "" || (third.Commit != nil && third.Commit.CacheHit) {
		t.Errorf("cache=off commit used the cache: header=%q commit=%+v", resp.Header.Get(cacheHeader), third.Commit)
	}
	if !bytes.Equal(marshal(t, first.Solution), marshal(t, third.Solution)) {
		t.Error("uncached commit solution differs — determinism broken")
	}

	// A different application on a different parent shares nothing with
	// the cached entry: plain miss.
	next := commitApp(t, ts, id, apps[1], "?strategy=mh") // parent main:v1
	if next.Commit.CacheHit {
		t.Error("commit of a different app on a different parent hit the cache")
	}
	if got := metricValue(t, ts, "incdes_session_solve_cache_hits_total", "all"); got != 1 {
		t.Errorf("session solve-cache hits = %v, want still 1", got)
	}
}
