package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"incdes/internal/core"
	"incdes/internal/export"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
)

// Job statuses, in lifecycle order.
const (
	StatusQueued      = "queued"
	StatusRunning     = "running"
	StatusDone        = "done"
	StatusInterrupted = "interrupted"
	StatusFailed      = "failed"
)

// SolveParams are the per-request knobs of one solve, parsed from the
// POST /solve query string.
type SolveParams struct {
	Strategy   string // "ah", "mh", "sa" or "portfolio" (default "mh")
	App        string // current-application name; "" = the system's last
	SAIters    int    // SA iterations per chain (0 = auto-size)
	SARestarts int    // SA restart chains (0 = 1)
	SASeed     int64  // SA seed (0 = strategy default)
	// SAChainOffset shifts the global SA chain index: a cluster
	// coordinator sends sa-restarts=1&sa-chain-offset=k to run exactly
	// chain k of a larger restart fan on a worker (0 for plain requests).
	SAChainOffset int
	Parallel      int           // evaluation workers (0 = server default)
	Timeout       time.Duration // per-job cap (bounded by the server's JobTimeout)
	Detach        bool          // return 202 immediately instead of waiting
	NoCache       bool          // cache=off: bypass the solution cache for this request
}

// strategy resolves the params into a core.Strategy.
func (p SolveParams) strategy() (core.Strategy, error) {
	switch p.Strategy {
	case "", "mh":
		return core.MH, nil
	case "ah":
		return core.AH, nil
	case "sa":
		return core.SAWith(p.saOptions()), nil
	case "portfolio":
		// The portfolio's SA lane inherits the request's SA tuning.
		return core.PortfolioWith(core.PortfolioOptions{
			Lanes: []core.Strategy{core.AH, core.MH, core.SAWith(p.saOptions())},
		}), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q (want ah, mh, sa or portfolio)", p.Strategy)
	}
}

func (p SolveParams) saOptions() core.SAOptions {
	opts := core.DefaultSAOptions()
	opts.Iterations = p.SAIters
	opts.Restarts = p.SARestarts
	opts.ChainOffset = p.SAChainOffset
	if p.SASeed != 0 {
		opts.Seed = p.SASeed
	}
	return opts
}

// BuildProblem freezes every application of sys except the current one
// (appName, or the last application when "") in arrival order and
// assembles the incremental mapping problem — the same preparation
// cmd/incmap performs before Solve.
func BuildProblem(sys *model.System, appName string) (*core.Problem, error) {
	if len(sys.Apps) == 0 {
		return nil, fmt.Errorf("system has no applications")
	}
	current := sys.Apps[len(sys.Apps)-1]
	if appName != "" {
		current = nil
		for _, a := range sys.Apps {
			if a.Name == appName {
				current = a
				break
			}
		}
		if current == nil {
			return nil, fmt.Errorf("system has no application %q", appName)
		}
	}
	base, err := sched.NewState(sys)
	if err != nil {
		return nil, err
	}
	for _, app := range sys.Apps {
		if app == current {
			continue
		}
		if _, err := base.MapApp(app, sched.Hints{}); err != nil {
			return nil, fmt.Errorf("scheduling existing application %q: %w", app.Name, err)
		}
	}
	prof := gen.ProfileForSystem(gen.Default(), sys)
	return core.NewProblem(sys, base, current, prof, metrics.DefaultWeights(prof))
}

// SolutionDoc is the deterministic JSON rendering of a solve outcome:
// only fields that are pure functions of (problem, options) appear, so
// the served document is byte-identical to one built from a direct
// core.Solve call on the same input (the end-to-end test pins this).
// Wall-clock quantities live in the surrounding job document instead.
type SolutionDoc struct {
	SchemaVersion int            `json:"schema_version"`
	Strategy      string         `json:"strategy"`
	Interrupted   bool           `json:"interrupted,omitempty"`
	Evaluations   int            `json:"evaluations"`
	Objective     float64        `json:"objective"`
	Report        metrics.Report `json:"report"`
	Design        *export.Design `json:"design"`
}

// NewSolutionDoc extracts the deployable design and assembles the
// document for one solution.
func NewSolutionDoc(sol *core.Solution) (*SolutionDoc, error) {
	design, err := export.Build(sol.State)
	if err != nil {
		return nil, err
	}
	return &SolutionDoc{
		SchemaVersion: 1,
		Strategy:      sol.Strategy,
		Interrupted:   sol.Interrupted,
		Evaluations:   sol.Evaluations,
		Objective:     sol.Report.Objective,
		Report:        sol.Report,
		Design:        design,
	}, nil
}

// eventBuffer is the SSE bridge: an obs.Tracer that retains every event
// of one job so a subscriber attaching at any point replays the stream
// from the beginning in the deterministic emission order, then follows
// live until the job closes the buffer.
type eventBuffer struct {
	mu      sync.Mutex
	seq     int64
	events  []obs.TraceEvent
	done    bool
	waiters []chan struct{}
}

// Trace implements obs.Tracer: assign the sequence number, retain, wake
// followers. Called only from the engine's deterministic serialization
// points, so arrival order is the canonical trace order.
func (b *eventBuffer) Trace(ev obs.TraceEvent) {
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	b.events = append(b.events, ev)
	b.wakeLocked()
	b.mu.Unlock()
}

// close marks the stream complete and wakes every follower.
func (b *eventBuffer) close() {
	b.mu.Lock()
	b.done = true
	b.wakeLocked()
	b.mu.Unlock()
}

func (b *eventBuffer) wakeLocked() {
	for _, ch := range b.waiters {
		close(ch)
	}
	b.waiters = b.waiters[:0]
}

// snapshot returns a copy of everything buffered so far; the solution
// cache stores it so hits and followers can replay the leader's stream.
func (b *eventBuffer) snapshot() []obs.TraceEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]obs.TraceEvent(nil), b.events...)
}

// next returns the events after index from (a copy), whether the stream
// is complete, and — when there is nothing new and the stream is still
// open — a channel that closes on the next event or on completion.
func (b *eventBuffer) next(from int) (evs []obs.TraceEvent, done bool, wait <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < len(b.events) {
		return append([]obs.TraceEvent(nil), b.events[from:]...), b.done, nil
	}
	if b.done {
		return nil, true, nil
	}
	ch := make(chan struct{})
	b.waiters = append(b.waiters, ch)
	return nil, false, ch
}

// CommitInfo annotates a job that ran as a session commit: which
// session and branch it advanced, and the version it created (-1 when
// the solve was interrupted and no version was frozen).
type CommitInfo struct {
	Session        string `json:"session"`
	Branch         string `json:"branch"`
	Version        int    `json:"version"`
	Parent         int    `json:"parent"`
	BaselineReused bool   `json:"baseline_reused,omitempty"`
	CacheHit       bool   `json:"cache_hit,omitempty"`
}

// job is one solve request moving through the bounded manager.
type job struct {
	id       string
	strategy string // strategy tag for aggregation, known at submit time
	reg      *obs.Registry
	buf      *eventBuffer
	trace    *obs.RequestTrace // submitting request's span trace (may be nil)
	cancel   context.CancelFunc

	mu     sync.Mutex
	status string
	doc    *SolutionDoc
	commit *CommitInfo // set by session-commit work before finish
	worker string      // workers that produced a dispatched solve ("" = local)
	err    error
	done   chan struct{}
}

func (j *job) setWorker(w string) {
	j.mu.Lock()
	j.worker = w
	j.mu.Unlock()
}

func (j *job) workerTag() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.worker
}

func (j *job) setCommit(c *CommitInfo) {
	j.mu.Lock()
	j.commit = c
	j.mu.Unlock()
}

func (j *job) commitInfo() *CommitInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commit
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// snapshot returns the job's current (status, doc, err) consistently.
func (j *job) snapshot() (string, *SolutionDoc, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.doc, j.err
}

// finish records the terminal state, closes the SSE stream and releases
// waiters.
func (j *job) finish(doc *SolutionDoc, err error) {
	j.mu.Lock()
	switch {
	case err != nil:
		j.status = StatusFailed
		j.err = err
	case doc.Interrupted:
		j.status = StatusInterrupted
		j.doc = doc
	default:
		j.status = StatusDone
		j.doc = doc
	}
	j.mu.Unlock()
	j.buf.close()
	close(j.done)
}
