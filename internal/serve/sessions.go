package serve

// HTTP handlers of the versioned design-session API (/v1/sessions).
// A session commit is a job like any one-shot solve: it runs through the
// same bounded manager, so queue limits, timeouts, cancellation, SSE
// streaming (GET /v1/solve/{id}/events) and /metrics aggregation apply
// unchanged. What differs is the work closure: instead of rebuilding a
// frozen base from the posted system, a commit schedules one new
// application against the session's cached composite and baseline.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/session"
)

// SessionVersionDoc is one version in a rendered session document.
type SessionVersionDoc struct {
	ID          int     `json:"id"`
	Parent      int     `json:"parent"`
	App         string  `json:"app,omitempty"`
	Strategy    string  `json:"strategy,omitempty"`
	Evaluations int     `json:"evaluations,omitempty"`
	Objective   float64 `json:"objective"`
	Fingerprint string  `json:"fingerprint"`
}

// SessionDoc is the JSON document of GET /v1/sessions/{id}: the version
// tree and the branch heads, without the (large) embedded system.
type SessionDoc struct {
	ID       string              `json:"id"`
	Branches map[string]int      `json:"branches"`
	Versions []SessionVersionDoc `json:"versions"`
}

func newSessionDoc(d *session.Doc) *SessionDoc {
	out := &SessionDoc{ID: d.ID, Branches: d.Branches, Versions: make([]SessionVersionDoc, 0, len(d.Versions))}
	for _, v := range d.Versions {
		sv := SessionVersionDoc{
			ID:          v.ID,
			Parent:      v.Parent,
			Strategy:    v.Strategy,
			Evaluations: v.Evaluations,
			Objective:   v.Report.Objective,
			Fingerprint: v.Fingerprint,
		}
		if v.App != nil {
			sv.App = v.App.Name
		}
		out.Versions = append(out.Versions, sv)
	}
	return out
}

// session resolves the {id} path value to a live session, writing the
// error response itself when it cannot.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*session.Session, bool) {
	if s.sessErr != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "session store unavailable: %v", s.sessErr)
		return nil, false
	}
	sess, err := s.sessions.Get(r.PathValue("id"))
	if err != nil {
		writeSessionError(w, err)
		return nil, false
	}
	return sess, true
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeRetryError(w, http.StatusServiceUnavailable, ErrCodeDraining, time.Second, "server is draining")
		return
	}
	if s.sessErr != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "session store unavailable: %v", s.sessErr)
		return
	}
	sys, err := model.ReadSystem(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "reading system: %v", err)
		return
	}
	sess, err := s.sessions.Open(sys, nil, r.URL.Query().Get("id"))
	if err != nil {
		writeSessionError(w, err)
		return
	}
	doc, err := sess.Doc()
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+sess.ID())
	writeJSON(w, http.StatusCreated, newSessionDoc(doc))
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	if s.sessErr != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "session store unavailable: %v", s.sessErr)
		return
	}
	ids, err := s.sessions.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": ids})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	doc, err := sess.Doc()
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, newSessionDoc(doc))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if s.sessErr != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "session store unavailable: %v", s.sessErr)
		return
	}
	id := r.PathValue("id")
	if _, err := s.sessions.Get(id); err != nil {
		writeSessionError(w, err)
		return
	}
	if err := s.sessions.Delete(id); err != nil {
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deleted"})
}

func (s *Server) handleSessionCommit(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeRetryError(w, http.StatusServiceUnavailable, ErrCodeDraining, time.Second, "server is draining")
		return
	}
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	params, err := parseSolveParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	strat, err := params.strategy()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	branch := r.URL.Query().Get("branch")
	if branch != "" {
		// Fail unknown branches before queueing the job: the solve is the
		// expensive part and the branch cannot appear in the meantime.
		if _, err := sess.Head(branch); err != nil {
			writeSessionError(w, err)
			return
		}
	}
	app, err := model.ReadApplication(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "reading application: %v", err)
		return
	}
	j, err := s.submit(strat.Name(), obs.TraceFrom(r.Context()))
	if err != nil {
		writeRetryError(w, http.StatusTooManyRequests, ErrCodeQueueFull, time.Second, "%v", err)
		return
	}
	work := func(ctx context.Context) (*SolutionDoc, error) {
		cp := session.CommitParams{
			Branch:      branch,
			Strategy:    strat,
			Parallelism: s.parallelism(params),
			Incremental: s.cfg.Incremental,
			Observer:    &obs.Observer{Stats: j.reg, Tracer: j.buf},
		}
		if s.solutions != nil && !params.NoCache {
			cp.SolveCache = s.solutions
			cp.CacheSpec = params.cacheSpec()
		}
		cctx, cspan := obs.StartSpan(ctx, "session.commit")
		t0 := time.Now()
		res, err := sess.Commit(cctx, app, cp)
		cspan.End()
		j.reg.Histogram(obs.HstCommitSeconds).ObserveSince(t0)
		if err != nil {
			return nil, err
		}
		j.setCommit(&CommitInfo{
			Session:        sess.ID(),
			Branch:         res.Branch,
			Version:        res.Version,
			Parent:         res.Parent,
			BaselineReused: res.BaselineReused,
			CacheHit:       res.CacheHit,
		})
		return NewSolutionDoc(res.Solution)
	}
	if params.Detach {
		go s.run(obs.CopyTrace(s.baseCtx, r.Context()), j, params.Timeout, work)
		w.Header().Set("Location", "/v1/solve/"+j.id)
		writeJSON(w, http.StatusAccepted, &JobStatusDoc{ID: j.id, Status: StatusQueued, Strategy: j.strategy})
		return
	}
	s.run(r.Context(), j, params.Timeout, work)
	doc := s.statusDoc(j)
	if ci := j.commitInfo(); ci != nil && ci.CacheHit {
		w.Header().Set(cacheHeader, "hit")
	}
	if doc.Status == StatusFailed {
		writeJSON(w, http.StatusUnprocessableEntity, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleSessionBranch(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "missing name parameter")
		return
	}
	from, err := sess.Head(session.MainBranch)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	if v := q.Get("from"); v != "" {
		from, err = strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad from=%q", v)
			return
		}
	}
	if err := sess.Branch(name, from); err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"branch": name, "head": from})
}

func (s *Server) handleSessionRollback(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	branch := q.Get("branch")
	if branch == "" {
		branch = session.MainBranch
	}
	v := q.Get("to")
	if v == "" {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "missing to parameter")
		return
	}
	to, err := strconv.Atoi(v)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad to=%q", v)
		return
	}
	if err := sess.Rollback(branch, to); err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"branch": branch, "head": to})
}

func (s *Server) handleSessionDiff(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	parse := func(name string) (int, bool) {
		v := q.Get(name)
		if v == "" {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "missing %s parameter", name)
			return 0, false
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad %s=%q", name, v)
			return 0, false
		}
		return n, true
	}
	from, ok := parse("from")
	if !ok {
		return
	}
	to, ok := parse("to")
	if !ok {
		return
	}
	d, err := sess.Diff(from, to)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}
