package serve

// Request-scoped observability: the middleware that gives every HTTP
// request an X-Incdes-Request-Id and a span trace, the ring buffer of
// completed request span trees, the /v1/debug/requests surface over it,
// and the slow-request log.
//
// The correlation ID is honored inbound (so a proxy or client can
// propagate its own) or generated server-side, and is echoed on every
// response — success, error envelope or SSE stream alike — because the
// header is set before the handler runs. The span trace travels by
// context through the job manager into core.Solve and session.Commit;
// detached jobs keep appending spans after the 202 response, and the
// recorder snapshots at read time, so their trees fill in as the job
// progresses.

import (
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"incdes/internal/obs"
)

// requestIDHeader carries the request correlation ID in both
// directions.
const requestIDHeader = "X-Incdes-Request-Id"

// statusWriter captures the response status for the request record.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// flushWriter adds Flush only when the underlying writer supports it,
// so the SSE handler's Flusher type-assertion (and its 501 on
// non-streaming transports) keeps working through the middleware.
type flushWriter struct {
	*statusWriter
}

func (w flushWriter) Flush() {
	w.ResponseWriter.(http.Flusher).Flush()
}

// trackRequest reports whether a path's trace belongs in the debug
// ring: API traffic yes, infrastructure endpoints (metrics scrapes,
// probes, pprof and the debug surface itself) no.
func trackRequest(path string) bool {
	p := strings.TrimPrefix(path, "/v1")
	switch {
	case p == "/metrics", p == "/healthz", p == "/readyz":
		return false
	case strings.HasPrefix(p, "/debug/"):
		return false
	}
	return true
}

// instrument wraps the mux with the request-observability middleware.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set(requestIDHeader, id)
		tracked := trackRequest(r.URL.Path)
		if !tracked {
			next.ServeHTTP(w, r)
			return
		}
		rt := obs.NewRequestTrace(id)
		ctx := obs.ContextWithTrace(r.Context(), rt)
		ctx, root := obs.StartSpan(ctx, "request")
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)

		sw := &statusWriter{ResponseWriter: w}
		var out http.ResponseWriter = sw
		if _, ok := w.(http.Flusher); ok {
			out = flushWriter{sw}
		}
		start := time.Now()
		next.ServeHTTP(out, r.WithContext(ctx))
		root.End()
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.global.Histogram(obs.HstRequestSeconds).Observe(dur.Seconds())
		s.recorder.Record(obs.NewRecord(rt, r.Method, r.URL.Path, status, start, dur))
		if s.cfg.SlowRequestLog > 0 && dur >= s.cfg.SlowRequestLog {
			s.logSlow(rt, r.Method, r.URL.Path, status, dur)
		}
	})
}

// logSlow emits the one-line span breakdown of a slow request:
// key=value fields followed by the spans in start order.
func (s *Server) logSlow(rt *obs.RequestTrace, method, path string, status int, dur time.Duration) {
	lg := s.cfg.SlowLogger
	if lg == nil {
		lg = log.Default()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slow-request id=%s method=%s path=%s status=%d duration_ms=%.2f spans=",
		rt.ID(), method, path, status, float64(dur)/1e6)
	for i, ss := range rt.Snapshot() {
		if i > 0 {
			b.WriteByte(';')
		}
		if ss.DurationNS < 0 {
			fmt.Fprintf(&b, "%s:open", ss.Name)
			continue
		}
		fmt.Fprintf(&b, "%s:%.2fms", ss.Name, float64(ss.DurationNS)/1e6)
	}
	lg.Print(b.String())
}

// handleDebugRequests serves GET /v1/debug/requests: the retained
// request span trees newest first, filterable by exact status
// (status=), minimum duration (min-duration=, a Go duration) and count
// (n=).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	wantStatus := 0
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad status=%q", v)
			return
		}
		wantStatus = n
	}
	var minDur time.Duration
	if v := q.Get("min-duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad min-duration=%q", v)
			return
		}
		minDur = d
	}
	limit := 0
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad n=%q", v)
			return
		}
		limit = n
	}
	docs := []obs.RequestDoc{}
	for _, rec := range s.recorder.List() {
		if wantStatus != 0 && rec.Status != wantStatus {
			continue
		}
		if minDur > 0 && rec.DurationNS < int64(minDur) {
			continue
		}
		docs = append(docs, rec.Doc())
		if limit > 0 && len(docs) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"requests": docs})
}

// handleDebugRequest serves GET /v1/debug/requests/{id}: one request's
// span tree.
func (s *Server) handleDebugRequest(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.recorder.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "no recorded request %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, rec.Doc())
}

// spanSummary is the per-span digest attached to detached-job status
// documents: enough to see where the job's time goes without fetching
// the full debug tree.
type spanSummary struct {
	Name       string `json:"name"`
	ID         string `json:"id"`
	DurationNS int64  `json:"duration_ns"`
}

// spanSummaries flattens a job's trace in start order; nil when the job
// ran without a trace.
func spanSummaries(rt *obs.RequestTrace) []spanSummary {
	spans := rt.Snapshot()
	if len(spans) == 0 {
		return nil
	}
	out := make([]spanSummary, len(spans))
	for i, ss := range spans {
		out[i] = spanSummary{Name: ss.Name, ID: ss.ID, DurationNS: ss.DurationNS}
	}
	return out
}
