package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/session"
	"incdes/internal/tm"
)

// sessionFixture builds a base system plus follow-on applications, all
// with the same graph period so the derived future-load profile — and
// therefore the solve — is identical whether it is computed from the
// base system (session open) or the composed one (one-shot solve).
// Returns the base-system JSON, each application's JSON (the last one
// has a hyperperiod-doubling period, for illegal-commit tests), and the
// JSON of the system composed of the base plus the first k applications.
func sessionFixture(t testing.TB) (sysJSON []byte, appJSON [][]byte, composed func(k int) []byte) {
	t.Helper()
	b := model.NewBuilder()
	b.Node("N0")
	b.Node("N1")
	b.Node("N2")
	b.UniformBus(8, 1, 2)
	mk := func(name string, procs, period int) {
		g := b.App(name).Graph(name+"-g", tm.Time(period), tm.Time(period))
		var prev model.ProcID
		for i := 0; i < procs; i++ {
			p := g.UniformProc(fmt.Sprintf("%s-p%d", name, i), 3)
			if i > 0 {
				g.Msg(prev, p, 4)
			}
			prev = p
		}
	}
	mk("base", 3, 60)
	mk("app1", 2, 60)
	mk("app2", 3, 60)
	mk("app3", 2, 60)
	mk("slow", 2, 120)
	full := b.MustSystem()

	writeSys := func(sys *model.System) []byte {
		var buf bytes.Buffer
		if err := sys.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, app := range full.Apps[1:] {
		var buf bytes.Buffer
		if err := app.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		appJSON = append(appJSON, buf.Bytes())
	}
	sysJSON = writeSys(&model.System{Arch: full.Arch, Apps: full.Apps[:1]})
	composed = func(k int) []byte {
		return writeSys(&model.System{Arch: full.Arch, Apps: full.Apps[:1+k]})
	}
	return sysJSON, appJSON, composed
}

// do issues a request and decodes the JSON response into out (when
// non-nil), returning the response for status/header checks.
func do(t *testing.T, method, url string, body []byte, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: response is not JSON: %v\n%s", method, url, err, data)
		}
	}
	return resp
}

// openSession opens a session over the fixture base system and returns
// its ID.
func openSession(t *testing.T, ts *httptest.Server, sysJSON []byte, id string) string {
	t.Helper()
	url := ts.URL + "/v1/sessions"
	if id != "" {
		url += "?id=" + id
	}
	var doc SessionDoc
	resp := do(t, "POST", url, sysJSON, &doc)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/sessions = %d", resp.StatusCode)
	}
	if want := "/v1/sessions/" + doc.ID; resp.Header.Get("Location") != want {
		t.Fatalf("Location = %q, want %q", resp.Header.Get("Location"), want)
	}
	return doc.ID
}

// commitApp posts one application to a session and returns the finished
// job document.
func commitApp(t *testing.T, ts *httptest.Server, id string, appJSON []byte, query string) JobStatusDoc {
	t.Helper()
	var doc JobStatusDoc
	resp := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/commits"+query, appJSON, &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST commits = %d (job %+v)", resp.StatusCode, doc)
	}
	if doc.Status != StatusDone || doc.Commit == nil || doc.Solution == nil {
		t.Fatalf("commit job = %+v", doc)
	}
	return doc
}

// oneShot solves a composed system in one shot and returns the job doc.
func oneShot(t *testing.T, ts *httptest.Server, sysJSON []byte, query string) JobStatusDoc {
	t.Helper()
	var doc JobStatusDoc
	resp := do(t, "POST", ts.URL+"/v1/solve"+query, sysJSON, &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve = %d", resp.StatusCode)
	}
	if doc.Status != StatusDone || doc.Solution == nil {
		t.Fatalf("solve job = %+v", doc)
	}
	return doc
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSessionCommitMatchesOneShotEndpoint pins the API-level acceptance
// contract: a commit through /v1/sessions produces the byte-identical
// solution document that POST /v1/solve produces for the equivalent
// composed system — for a single MH commit and for a three-commit chain
// (chained with AH, whose placements coincide with the one-shot
// freezing rule, so the final solves see identical frozen bases).
func TestSessionCommitMatchesOneShotEndpoint(t *testing.T) {
	sysJSON, apps, composed := sessionFixture(t)
	_, ts := newTestServer(t)

	id := openSession(t, ts, sysJSON, "")
	mh := commitApp(t, ts, id, apps[0], "?strategy=mh")
	direct := oneShot(t, ts, composed(1), "?strategy=mh")
	if !bytes.Equal(marshal(t, mh.Solution), marshal(t, direct.Solution)) {
		t.Errorf("MH commit diverges from one-shot solve:\nsession: %.200s\none-shot: %.200s",
			marshal(t, mh.Solution), marshal(t, direct.Solution))
	}
	if mh.Commit.Version != 1 || mh.Commit.Parent != 0 || mh.Commit.Branch != session.MainBranch {
		t.Errorf("commit info = %+v", mh.Commit)
	}

	id2 := openSession(t, ts, sysJSON, "")
	var last JobStatusDoc
	for _, app := range apps[:3] {
		last = commitApp(t, ts, id2, app, "?strategy=ah")
	}
	chain := oneShot(t, ts, composed(3), "?strategy=ah")
	if !bytes.Equal(marshal(t, last.Solution), marshal(t, chain.Solution)) {
		t.Errorf("AH chain diverges from one-shot solve of the composed system")
	}

	// The session document records the whole chain.
	var doc SessionDoc
	if resp := do(t, "GET", ts.URL+"/v1/sessions/"+id2, nil, &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session = %d", resp.StatusCode)
	}
	if len(doc.Versions) != 4 || doc.Branches[session.MainBranch] != 3 {
		t.Errorf("session doc = %+v", doc)
	}
	for i, v := range doc.Versions {
		if v.ID != i || v.Fingerprint == "" {
			t.Errorf("version %d = %+v", i, v)
		}
	}
}

// TestSessionCommitsCheaperThanOneShot pins the incremental-design win
// the paper is about: committing K applications one at a time through a
// session costs strictly fewer design-space evaluations than K
// independent one-shot solves of the growing composed system, because
// the session never re-freezes (re-maps) the already-committed past.
func TestSessionCommitsCheaperThanOneShot(t *testing.T) {
	sysJSON, apps, composed := sessionFixture(t)
	_, ts := newTestServer(t)

	id := openSession(t, ts, sysJSON, "")
	var sessEvals, shotEvals int64
	for k, app := range apps[:3] {
		c := commitApp(t, ts, id, app, "?strategy=mh")
		if c.Stats == nil {
			t.Fatal("commit response missing stats")
		}
		sessEvals += c.Stats.Counters[obs.CtrEvaluations]
		s := oneShot(t, ts, composed(k+1), "?strategy=mh")
		if s.Stats == nil {
			t.Fatal("solve response missing stats")
		}
		shotEvals += s.Stats.Counters[obs.CtrEvaluations]
	}
	if sessEvals >= shotEvals {
		t.Errorf("session commits cost %d evaluations, one-shot solves %d; want strictly fewer",
			sessEvals, shotEvals)
	}
	t.Logf("evaluations: session=%d one-shot=%d", sessEvals, shotEvals)
}

// TestSessionDetachedCommitStreamsSSE runs a commit through the detached
// path: 202 + Location, live SSE on the shared /v1/solve/{id}/events
// stream, and commit metadata on the finished job document.
func TestSessionDetachedCommitStreamsSSE(t *testing.T) {
	sysJSON, apps, _ := sessionFixture(t)
	_, ts := newTestServer(t)
	id := openSession(t, ts, sysJSON, "")

	var queued JobStatusDoc
	resp := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/commits?strategy=mh&detach=1", apps[0], &queued)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("detached commit = %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc != "/v1/solve/"+queued.ID {
		t.Fatalf("Location = %q", loc)
	}

	// The SSE stream replays from the beginning and follows to done.
	sresp, err := http.Get(ts.URL + loc + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	events := readSSE(t, string(body))
	if len(events) == 0 || events[len(events)-1].kind != "done" {
		t.Fatalf("SSE stream = %d events, last %q", len(events), events[len(events)-1].kind)
	}

	deadline := time.Now().Add(5 * time.Second)
	var final JobStatusDoc
	for {
		if do(t, "GET", ts.URL+loc, nil, &final); final.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Commit == nil || final.Commit.Session != id || final.Commit.Version != 1 {
		t.Fatalf("finished job commit info = %+v", final.Commit)
	}
}

// TestSessionBranchRollbackDiffEndpoints drives the what-if workflow
// over HTTP: branch from the root, commit to the branch, roll main
// back, diff the two heads.
func TestSessionBranchRollbackDiffEndpoints(t *testing.T) {
	sysJSON, apps, _ := sessionFixture(t)
	_, ts := newTestServer(t)
	id := openSession(t, ts, sysJSON, "")
	commitApp(t, ts, id, apps[0], "?strategy=ah") // v1 on main

	var br map[string]any
	if resp := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/branches?name=alt&from=0", nil, &br); resp.StatusCode != http.StatusCreated {
		t.Fatalf("branch = %d", resp.StatusCode)
	}
	alt := commitApp(t, ts, id, apps[1], "?strategy=ah&branch=alt") // v2 from v0
	if alt.Commit.Branch != "alt" || alt.Commit.Parent != 0 {
		t.Fatalf("branch commit = %+v", alt.Commit)
	}

	var rb map[string]any
	if resp := do(t, "POST", ts.URL+"/v1/sessions/"+id+"/rollback?branch=main&to=0", nil, &rb); resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback = %d", resp.StatusCode)
	}

	var d session.Diff
	if resp := do(t, "GET", ts.URL+"/v1/sessions/"+id+"/diff?from=1&to=2", nil, &d); resp.StatusCode != http.StatusOK {
		t.Fatalf("diff = %d", resp.StatusCode)
	}
	if len(d.AppsAdded) != 1 || len(d.AppsRemoved) != 1 {
		t.Fatalf("diff = %+v", d)
	}

	// Delete, then the session is gone.
	if resp := do(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	var listing map[string][]string
	do(t, "GET", ts.URL+"/v1/sessions", nil, &listing)
	for _, got := range listing["sessions"] {
		if got == id {
			t.Fatal("deleted session still listed")
		}
	}
}

// TestSessionSurvivesRestart pins durability end to end: a server backed
// by a disk store is shut down and a new one over the same directory
// serves the same session, version tree included.
func TestSessionSurvivesRestart(t *testing.T) {
	sysJSON, apps, _ := sessionFixture(t)
	dir := t.TempDir()
	mkServer := func() (*Server, *httptest.Server) {
		store, err := session.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Parallelism: 1, MaxConcurrent: 2, SessionStore: store})
		return s, httptest.NewServer(s.Handler())
	}
	s1, ts1 := mkServer()
	id := openSession(t, ts1, sysJSON, "")
	want := commitApp(t, ts1, id, apps[0], "?strategy=mh")
	ts1.Close()
	s1.Close()

	s2, ts2 := mkServer()
	defer func() { ts2.Close(); s2.Close() }()
	var doc SessionDoc
	if resp := do(t, "GET", ts2.URL+"/v1/sessions/"+id, nil, &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session after restart = %d", resp.StatusCode)
	}
	if len(doc.Versions) != 2 || doc.Versions[1].Fingerprint == "" {
		t.Fatalf("restarted session doc = %+v", doc)
	}
	// Committing on the restarted server continues the chain by replay.
	next := commitApp(t, ts2, id, apps[1], "?strategy=mh")
	if next.Commit.Version != 2 || next.Commit.Parent != 1 {
		t.Fatalf("post-restart commit = %+v", next.Commit)
	}
	if want.Commit.Version != 1 {
		t.Fatalf("pre-restart commit = %+v", want.Commit)
	}
}

// TestErrorEnvelope sweeps every distinct error path of the /v1 API and
// requires the unified envelope: {"error":{"code","message"}} with the
// documented code and HTTP status. (Synchronous solve/commit failures
// intentionally return a failed job document instead — the envelope is
// for transport-level errors.)
func TestErrorEnvelope(t *testing.T) {
	sysJSON, apps, _ := sessionFixture(t)
	_, ts := newTestServer(t)
	id := openSession(t, ts, sysJSON, "e1")
	commitApp(t, ts, id, apps[0], "?strategy=ah") // v1 on main
	if resp := do(t, "POST", ts.URL+"/v1/sessions/e1/branches?name=alt&from=0", nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("setup branch = %d", resp.StatusCode)
	}
	commitApp(t, ts, id, apps[1], "?strategy=ah&branch=alt") // v2 from v0

	cases := []struct {
		name       string
		method     string
		path       string
		body       []byte
		wantStatus int
		wantCode   string
	}{
		{"solve bad strategy", "POST", "/v1/solve?strategy=bogus", sysJSON, 400, ErrCodeBadRequest},
		{"solve bad body", "POST", "/v1/solve", []byte("{"), 400, ErrCodeBadRequest},
		{"solve unknown job", "GET", "/v1/solve/zzz", nil, 404, ErrCodeNotFound},
		{"cancel unknown job", "DELETE", "/v1/solve/zzz", nil, 404, ErrCodeNotFound},
		{"events unknown job", "GET", "/v1/solve/zzz/events", nil, 404, ErrCodeNotFound},
		{"session open bad body", "POST", "/v1/sessions", []byte("{"), 400, ErrCodeBadRequest},
		{"session open duplicate id", "POST", "/v1/sessions?id=e1", sysJSON, 409, ErrCodeConflict},
		{"session unknown", "GET", "/v1/sessions/zzz", nil, 404, ErrCodeNotFound},
		{"session delete unknown", "DELETE", "/v1/sessions/zzz", nil, 404, ErrCodeNotFound},
		{"commit unknown session", "POST", "/v1/sessions/zzz/commits", apps[2], 404, ErrCodeNotFound},
		{"commit unknown branch", "POST", "/v1/sessions/e1/commits?branch=ghost", apps[2], 404, ErrCodeNotFound},
		{"commit bad strategy", "POST", "/v1/sessions/e1/commits?strategy=bogus", apps[2], 400, ErrCodeBadRequest},
		{"commit bad body", "POST", "/v1/sessions/e1/commits", []byte("{"), 400, ErrCodeBadRequest},
		{"branch missing name", "POST", "/v1/sessions/e1/branches", nil, 400, ErrCodeBadRequest},
		{"branch duplicate", "POST", "/v1/sessions/e1/branches?name=alt&from=0", nil, 409, ErrCodeConflict},
		{"branch bad from", "POST", "/v1/sessions/e1/branches?name=x&from=abc", nil, 400, ErrCodeBadRequest},
		{"branch unknown version", "POST", "/v1/sessions/e1/branches?name=y&from=99", nil, 404, ErrCodeNotFound},
		{"rollback missing to", "POST", "/v1/sessions/e1/rollback", nil, 400, ErrCodeBadRequest},
		{"rollback bad to", "POST", "/v1/sessions/e1/rollback?to=abc", nil, 400, ErrCodeBadRequest},
		{"rollback not ancestor", "POST", "/v1/sessions/e1/rollback?branch=main&to=2", nil, 422, ErrCodeIllegalCommit},
		{"rollback unknown branch", "POST", "/v1/sessions/e1/rollback?branch=ghost&to=0", nil, 404, ErrCodeNotFound},
		{"diff missing from", "GET", "/v1/sessions/e1/diff?to=1", nil, 400, ErrCodeBadRequest},
		{"diff bad to", "GET", "/v1/sessions/e1/diff?from=0&to=abc", nil, 400, ErrCodeBadRequest},
		{"diff unknown version", "GET", "/v1/sessions/e1/diff?from=0&to=99", nil, 404, ErrCodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env ErrorDoc
			resp := do(t, tc.method, ts.URL+tc.path, tc.body, &env)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("error code = %q, want %q", env.Error.Code, tc.wantCode)
			}
			if env.Error.Message == "" {
				t.Error("error message empty")
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q", ct)
			}
		})
	}

	// A synchronous commit that fails solver-side (hyperperiod change)
	// returns the failed job document, not the envelope.
	var jobDoc JobStatusDoc
	resp := do(t, "POST", ts.URL+"/v1/sessions/e1/commits?strategy=ah", apps[3], &jobDoc)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("illegal commit = %d", resp.StatusCode)
	}
	if jobDoc.Status != StatusFailed || !strings.Contains(jobDoc.Error, "hyperperiod") {
		t.Fatalf("illegal commit job = %+v", jobDoc)
	}
}

// TestV1Aliases pins the versioning policy: every pre-existing endpoint
// answers identically on its /v1 path and its legacy alias, while the
// session endpoints are /v1-only.
func TestV1Aliases(t *testing.T) {
	sysJSON, _, _ := sessionFixture(t)
	_, ts := newTestServer(t)

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		ls, lb := get(path)
		vs, vb := get("/v1" + path)
		if ls != vs || lb != vb {
			t.Errorf("%s: legacy (%d, %q) != v1 (%d, %q)", path, ls, lb, vs, vb)
		}
	}
	// Deterministic error bodies must match across the alias too.
	for _, path := range []string{"/solve?strategy=bogus", "/v1/solve?strategy=bogus"} {
		var env ErrorDoc
		resp := do(t, "POST", ts.URL+path, sysJSON, &env)
		if resp.StatusCode != 400 || env.Error.Code != ErrCodeBadRequest {
			t.Errorf("POST %s = %d code %q", path, resp.StatusCode, env.Error.Code)
		}
	}
	// Sessions are new API surface: /v1 only, no legacy alias.
	if resp := do(t, "GET", ts.URL+"/sessions", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("legacy /sessions = %d, want 404", resp.StatusCode)
	}
	if resp := do(t, "GET", ts.URL+"/v1/sessions", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/sessions = %d", resp.StatusCode)
	}
}
