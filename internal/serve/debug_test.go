package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"incdes/internal/obs"
	"incdes/internal/obs/promtext"
)

// hit issues one in-process request against the instrumented handler.
// In-process means the middleware has fully completed (recorder entry,
// slow log) by the time it returns — no polling needed.
func hit(t *testing.T, h http.Handler, method, url, reqID string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, url, bytes.NewReader(body))
	if reqID != "" {
		req.Header.Set(requestIDHeader, reqID)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRequestIDGeneratedAndHonored(t *testing.T) {
	s := New(Config{Parallelism: 1, MaxConcurrent: 2})
	t.Cleanup(s.Close)
	body := fixtureJSON(t)

	rec := hit(t, s.Handler(), "POST", "/v1/solve?strategy=mh", "", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d: %s", rec.Code, rec.Body.String())
	}
	gen := rec.Header().Get(requestIDHeader)
	if !regexp.MustCompile(`^req-\d{6}$`).MatchString(gen) {
		t.Errorf("generated request ID = %q, want req-NNNNNN", gen)
	}

	rec = hit(t, s.Handler(), "POST", "/v1/solve?strategy=mh", "proxy-abc123", body)
	if got := rec.Header().Get(requestIDHeader); got != "proxy-abc123" {
		t.Errorf("inbound request ID not honored: got %q", got)
	}
	// The job document carries the correlation ID too.
	var doc JobStatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.RequestID != "proxy-abc123" {
		t.Errorf("job doc request_id = %q, want proxy-abc123", doc.RequestID)
	}
}

func TestRequestIDOnErrorEnvelopesAndSSE(t *testing.T) {
	s := New(Config{Parallelism: 1, MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	body := fixtureJSON(t)

	// Occupy the worker slot and the queue, then overflow for the 429.
	var blocker, queued JobStatusDoc
	if resp := do(t, "POST", ts.URL+"/v1/solve?strategy=sa&sa-iters=50000000&detach=1", body, &blocker); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker = %d", resp.StatusCode)
	}
	pollStatus(t, ts, blocker.ID, StatusRunning)
	if resp := do(t, "POST", ts.URL+"/v1/solve?strategy=mh&detach=1", body, &queued); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/solve?strategy=mh", bytes.NewReader(body))
	req.Header.Set(requestIDHeader, "overflow-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(requestIDHeader); got != "overflow-1" {
		t.Errorf("429 envelope %s = %q, want overflow-1", requestIDHeader, got)
	}

	// SSE streams echo the ID: the header is set before dispatch.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	sseReq, _ := http.NewRequestWithContext(sctx, "GET", ts.URL+"/v1/solve/"+blocker.ID+"/events", nil)
	sseReq.Header.Set(requestIDHeader, "sse-1")
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	if got := sseResp.Header.Get(requestIDHeader); got != "sse-1" {
		t.Errorf("SSE %s = %q, want sse-1", requestIDHeader, got)
	}
	if ct := sseResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("SSE Content-Type = %q (Flusher lost through middleware?)", ct)
	}
	sseResp.Body.Close()

	do(t, "DELETE", ts.URL+"/v1/solve/"+blocker.ID, nil, nil)
	do(t, "DELETE", ts.URL+"/v1/solve/"+queued.ID, nil, nil)
	pollStatus(t, ts, blocker.ID, StatusInterrupted, StatusFailed)
	pollStatus(t, ts, queued.ID, StatusInterrupted, StatusFailed, StatusDone)

	// Draining: 503 envelopes still echo the ID.
	s.Close()
	req, _ = http.NewRequest("POST", ts.URL+"/v1/solve?strategy=mh", bytes.NewReader(body))
	req.Header.Set(requestIDHeader, "drain-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after Close = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(requestIDHeader); got != "drain-1" {
		t.Errorf("503 envelope %s = %q, want drain-1", requestIDHeader, got)
	}
}

func TestDebugRequestSurface(t *testing.T) {
	s := New(Config{Parallelism: 1, MaxConcurrent: 2})
	t.Cleanup(s.Close)
	h := s.Handler()
	body := fixtureJSON(t)

	if rec := hit(t, h, "POST", "/v1/solve?strategy=mh", "dbg-1", body); rec.Code != http.StatusOK {
		t.Fatalf("solve = %d", rec.Code)
	}
	if rec := hit(t, h, "GET", "/v1/solve/nope", "dbg-2", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("missing job = %d", rec.Code)
	}
	// Infrastructure endpoints are excluded from the ring.
	hit(t, h, "GET", "/v1/metrics", "dbg-metrics", nil)
	hit(t, h, "GET", "/healthz", "dbg-health", nil)

	var list struct {
		Requests []obs.RequestDoc `json:"requests"`
	}
	rec := hit(t, h, "GET", "/v1/debug/requests", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("debug list = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Requests) != 2 {
		t.Fatalf("retained %d requests, want 2 (metrics/healthz/debug must not be recorded)", len(list.Requests))
	}
	// Newest first.
	if list.Requests[0].ID != "dbg-2" || list.Requests[1].ID != "dbg-1" {
		t.Errorf("order = %s, %s; want dbg-2, dbg-1", list.Requests[0].ID, list.Requests[1].ID)
	}

	// status filter.
	rec = hit(t, h, "GET", "/v1/debug/requests?status=404", "", nil)
	list.Requests = nil
	json.Unmarshal(rec.Body.Bytes(), &list)
	if len(list.Requests) != 1 || list.Requests[0].ID != "dbg-2" {
		t.Errorf("status=404 filter = %+v", list.Requests)
	}
	// n filter.
	rec = hit(t, h, "GET", "/v1/debug/requests?n=1", "", nil)
	list.Requests = nil
	json.Unmarshal(rec.Body.Bytes(), &list)
	if len(list.Requests) != 1 {
		t.Errorf("n=1 returned %d", len(list.Requests))
	}
	// min-duration filter (nothing takes 10 hours).
	rec = hit(t, h, "GET", "/v1/debug/requests?min-duration=10h", "", nil)
	list.Requests = nil
	json.Unmarshal(rec.Body.Bytes(), &list)
	if len(list.Requests) != 0 {
		t.Errorf("min-duration=10h returned %d", len(list.Requests))
	}
	// Bad filter values are 400s.
	for _, q := range []string{"status=abc", "min-duration=xyz", "n=-1"} {
		if rec := hit(t, h, "GET", "/v1/debug/requests?"+q, "", nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", q, rec.Code)
		}
	}

	// Single-request fetch: the full span tree.
	var doc obs.RequestDoc
	rec = hit(t, h, "GET", "/v1/debug/requests/dbg-1", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("debug get = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != "dbg-1" || doc.Status != http.StatusOK || doc.Method != "POST" {
		t.Errorf("doc header = %+v", doc)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "request" {
		t.Fatalf("span roots = %+v", doc.Spans)
	}
	var names []string
	for _, c := range doc.Spans[0].Children {
		names = append(names, c.Name)
	}
	if want := []string{"queue.wait", "core.solve"}; fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("request children = %v, want %v", names, want)
	}
	if rec := hit(t, h, "GET", "/v1/debug/requests/unknown", "", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown request = %d, want 404", rec.Code)
	}
}

// debugTree fetches one recorded request's span forest.
func debugTree(t *testing.T, h http.Handler, id string) obs.RequestDoc {
	t.Helper()
	rec := hit(t, h, "GET", "/v1/debug/requests/"+id, "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/debug/requests/%s = %d: %s", id, rec.Code, rec.Body.String())
	}
	var doc obs.RequestDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSpanTreeGoldenAcrossParallelism pins the span-determinism rule:
// for a fixed request ID and problem, the span STRUCTURE (names,
// parentage, sibling order, IDs, attrs) is byte-identical at
// parallelism 1 and 4, and matches the checked-in golden file. Only
// durations may differ, and StructureString omits them.
func TestSpanTreeGoldenAcrossParallelism(t *testing.T) {
	body := fixtureJSON(t)
	structure := func(par int) string {
		s := New(Config{Parallelism: par, MaxConcurrent: 2})
		defer s.Close()
		url := fmt.Sprintf("/v1/solve?strategy=portfolio&parallel=%d", par)
		if rec := hit(t, s.Handler(), "POST", url, "req-golden", body); rec.Code != http.StatusOK {
			t.Fatalf("portfolio solve (parallel=%d) = %d: %s", par, rec.Code, rec.Body.String())
		}
		return obs.StructureString(debugTree(t, s.Handler(), "req-golden").Spans)
	}

	got1 := structure(1)
	got4 := structure(4)
	if got1 != got4 {
		t.Fatalf("span structure differs across parallelism:\n--- parallel=1\n%s--- parallel=4\n%s", got1, got4)
	}

	const golden = "testdata/span_tree.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got1), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got1 != string(want) {
		t.Errorf("span structure drifted from golden (UPDATE_GOLDEN=1 to accept):\n--- got\n%s--- want\n%s", got1, want)
	}
}

// TestFollowerLeaderSpanLinkage pins the single-flight trace linkage:
// the follower's cache.follow span carries a leader_span attribute
// naming the leader's cache.flight span.
func TestFollowerLeaderSpanLinkage(t *testing.T) {
	s, ts := newCachingServer(t, Config{Parallelism: 1, MaxConcurrent: 1, QueueDepth: 8, SolutionCacheSize: 8})
	body := fixtureJSON(t)
	const query = "/v1/solve?strategy=sa&sa-iters=4000&seed=7"

	req, _ := http.NewRequest("POST", ts.URL+query+"&detach=1", bytes.NewReader(body))
	req.Header.Set(requestIDHeader, "flight-leader")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var leader JobStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&leader); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get(cacheHeader) != "miss" {
		t.Fatalf("leader = %d %s=%q", resp.StatusCode, cacheHeader, resp.Header.Get(cacheHeader))
	}
	pollStatus(t, ts, leader.ID, StatusRunning, StatusDone)

	req, _ = http.NewRequest("POST", ts.URL+query, bytes.NewReader(body))
	req.Header.Set(requestIDHeader, "flight-follower")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	followerMode := resp.Header.Get(cacheHeader)
	pollStatus(t, ts, leader.ID, StatusDone)

	findSpan := func(doc obs.RequestDoc, name string) *obs.SpanNode {
		var found *obs.SpanNode
		var walk func(n *obs.SpanNode)
		walk = func(n *obs.SpanNode) {
			if n.Name == name {
				found = n
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, r := range doc.Spans {
			walk(r)
		}
		return found
	}

	flight := findSpan(debugTree(t, s.Handler(), "flight-leader"), "cache.flight")
	if flight == nil {
		t.Fatal("leader trace has no cache.flight span")
	}
	if followerMode != "inflight" {
		// The leader finished before the follower joined; it was a plain
		// hit and there is no follow span to link. The linkage contract is
		// vacuous — don't fail on scheduling luck, the flight span was
		// still verified above.
		t.Skipf("follower was %q, not inflight; linkage not exercised", followerMode)
	}
	follow := findSpan(debugTree(t, s.Handler(), "flight-follower"), "cache.follow")
	if follow == nil {
		t.Fatal("follower trace has no cache.follow span")
	}
	if got := follow.Attrs["leader_span"]; got != flight.ID {
		t.Errorf("follower leader_span = %q, want leader flight span %q", got, flight.ID)
	}
}

func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	s := New(Config{
		Parallelism:    1,
		MaxConcurrent:  2,
		SlowRequestLog: time.Nanosecond, // everything is slow
		SlowLogger:     log.New(writerFunc(func(p []byte) (int, error) { mu.Lock(); defer mu.Unlock(); return buf.Write(p) }), "", 0),
	})
	t.Cleanup(s.Close)

	if rec := hit(t, s.Handler(), "POST", "/v1/solve?strategy=mh", "slow-1", fixtureJSON(t)); rec.Code != http.StatusOK {
		t.Fatalf("solve = %d", rec.Code)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		"slow-request id=slow-1 method=POST path=/v1/solve status=200",
		"duration_ms=",
		"spans=request:",
		"core.solve:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q:\n%s", want, out)
		}
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestMetricsHistogramsLintClean is the acceptance gate: after real
// traffic, /v1/metrics exposes at least 4 native histograms with
// observations and the whole exposition passes the metrics linter.
func TestMetricsHistogramsLintClean(t *testing.T) {
	_, ts := newCachingServer(t, Config{Parallelism: 1, MaxConcurrent: 2, SolutionCacheSize: 8})
	body := fixtureJSON(t)
	sysJSON, apps, _ := sessionFixture(t)

	do(t, "POST", ts.URL+"/v1/solve?strategy=mh", body, nil) // miss: solve+queue+lookup
	do(t, "POST", ts.URL+"/v1/solve?strategy=mh", body, nil) // hit: lookup
	id := openSession(t, ts, sysJSON, "")
	commitApp(t, ts, id, apps[0], "?strategy=mh") // commit histogram

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)

	if problems := promtext.Lint(bytes.NewReader(out)); len(problems) != 0 {
		t.Errorf("metrics lint problems: %q", problems)
	}

	// Count distinct serve histograms with at least one observation.
	counts := map[string]float64{}
	re := regexp.MustCompile(`^(incdes_serve_\w+_seconds)_count(?:\{[^}]*\})? ([0-9.e+-]+)$`)
	for _, line := range strings.Split(string(out), "\n") {
		if m := re.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseFloat(m[2], 64)
			counts[m[1]] += v
		}
	}
	nonzero := 0
	for name, v := range counts {
		if v > 0 {
			nonzero++
		} else {
			t.Logf("histogram %s has no observations", name)
		}
	}
	if nonzero < 4 {
		t.Errorf("only %d serve histograms carry observations, want >= 4 (%v)", nonzero, counts)
	}
}

// TestDetachedJobDocCarriesSpans pins the detached-job surface: once
// terminal, GET /v1/solve/{id} includes the request ID and the span
// summaries of the solve that ran after the 202.
func TestDetachedJobDocCarriesSpans(t *testing.T) {
	_, ts := newTestServer(t)
	req, _ := http.NewRequest("POST", ts.URL+"/solve?strategy=mh&detach=1", bytes.NewReader(fixtureJSON(t)))
	req.Header.Set(requestIDHeader, "detach-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var accepted JobStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("detach = %d", resp.StatusCode)
	}
	doc := pollStatus(t, ts, accepted.ID, StatusDone)
	if doc.RequestID != "detach-1" {
		t.Errorf("terminal doc request_id = %q, want detach-1", doc.RequestID)
	}
	var names []string
	for _, sp := range doc.Spans {
		names = append(names, sp.Name)
		if sp.Name == "core.solve" && sp.DurationNS <= 0 {
			t.Errorf("core.solve duration = %d, want > 0", sp.DurationNS)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "core.solve") || !strings.Contains(joined, "queue.wait") {
		t.Errorf("span summaries = %v, want queue.wait and core.solve", names)
	}
}
