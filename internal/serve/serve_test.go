package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"incdes/internal/core"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/obs/promtext"
)

func fixtureJSON(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile("../../testdata/system.json")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Parallelism: 1, MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// TestSolveMatchesDirectSolve pins the acceptance contract: the served
// solution document is byte-identical to one built from a direct
// core.Solve call on the same fixture.
func TestSolveMatchesDirectSolve(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/solve?strategy=mh", "application/json", bytes.NewReader(fixtureJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve = %d: %s", resp.StatusCode, body)
	}
	var got struct {
		ID       string          `json:"id"`
		Status   string          `json:"status"`
		Strategy string          `json:"strategy"`
		Solution json.RawMessage `json:"solution"`
		Stats    *obs.Snapshot   `json:"stats"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	if got.Status != StatusDone || got.Strategy != "MH" || got.ID == "" {
		t.Fatalf("job doc = %+v", got)
	}
	if got.Stats == nil || got.Stats.Counters[obs.CtrEvaluations] == 0 {
		t.Error("per-request stats snapshot missing from response")
	}

	sys, err := model.ReadSystem(bytes.NewReader(fixtureJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProblem(sys, "")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(context.Background(), p, core.Options{Strategy: core.MH, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := NewSolutionDoc(sol)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got.Solution), want) {
		t.Errorf("served solution differs from direct core.Solve:\nserved: %.200s\ndirect: %.200s", got.Solution, want)
	}
}

func TestSolveRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/solve?strategy=nope", "application/json", bytes.NewReader(fixtureJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown strategy: status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/solve/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status = %d, want 404", resp.StatusCode)
	}
}

// parseMetrics is a minimal exposition-format checker: every non-comment
// line must be `name[{labels}] value`; it returns the seen metric names.
func parseMetrics(t *testing.T, out string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || value == "" || strings.ContainsAny(value, " \t") {
			t.Fatalf("malformed sample line %q", line)
		}
		if brace := strings.IndexByte(name, '{'); brace >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed labels in %q", line)
			}
			name = name[:brace]
		}
		names[name] = true
	}
	return names
}

func TestMetricsExposesCatalog(t *testing.T) {
	_, ts := newTestServer(t)
	// One completed solve so per-strategy aggregates exist.
	resp, err := http.Post(ts.URL+"/solve?strategy=mh", "application/json", bytes.NewReader(fixtureJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	out := string(body)
	names := parseMetrics(t, out)
	for _, ins := range obs.Catalog() {
		want := promtext.MetricName(promtext.DefaultNamespace, ins.Name, ins.Kind)
		if ins.Kind == obs.KindHistogram {
			// Histogram samples carry the _bucket/_sum/_count suffixes;
			// the base name appears only in HELP/TYPE.
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if !names[want+sfx] {
					t.Errorf("/metrics missing catalog histogram series %q (instrument %q)", want+sfx, ins.Name)
				}
			}
			continue
		}
		if !names[want] {
			t.Errorf("/metrics missing catalog metric %q (instrument %q)", want, ins.Name)
		}
	}
	for _, want := range []string{
		"incdes_process_uptime_seconds",
		"incdes_process_goroutines",
		"incdes_process_heap_alloc_bytes",
		"incdes_solves_in_flight",
		"incdes_solves_queued",
		"incdes_solves_total",
	} {
		if !names[want] {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, want := range []string{
		`incdes_core_evaluations_total{strategy="MH"}`,
		`incdes_core_evaluations_total{strategy="all"}`,
		`incdes_solves_total{status="done",strategy="MH"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing sample %q", want)
		}
	}
}

type sseEvent struct {
	kind string
	id   string
	data string
}

// readSSE parses a complete SSE response body into events.
func readSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "id: "):
				ev.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		if ev.kind == "" || ev.data == "" {
			t.Fatalf("incomplete SSE block %q", block)
		}
		events = append(events, ev)
	}
	return events
}

// streamJob submits a detached solve and returns the full SSE stream
// plus the finished job document.
func streamJob(t *testing.T, ts *httptest.Server) ([]sseEvent, JobStatusDoc) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve?strategy=mh&detach=1", "application/json", bytes.NewReader(fixtureJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("detached POST /solve = %d: %s", resp.StatusCode, body)
	}
	var accepted JobStatusDoc
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/solve/" + accepted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body) // handler returns after the done event
	resp.Body.Close()
	events := readSSE(t, string(stream))

	resp, err = http.Get(ts.URL + "/solve/" + accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var final JobStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return events, final
}

func TestSSEOrderingAndReplay(t *testing.T) {
	_, ts := newTestServer(t)
	events, final := streamJob(t, ts)
	if final.Status != StatusDone || final.Solution == nil {
		t.Fatalf("job did not finish cleanly: %+v", final)
	}

	var traces []obs.TraceEvent
	var costs, dones int
	var lastCost float64
	for _, ev := range events {
		switch ev.kind {
		case "trace":
			var te obs.TraceEvent
			if err := json.Unmarshal([]byte(ev.data), &te); err != nil {
				t.Fatalf("trace event is not JSON: %v (%q)", err, ev.data)
			}
			if want := int64(len(traces) + 1); te.Seq != want {
				t.Fatalf("trace %d has seq %d: stream is out of order", len(traces), te.Seq)
			}
			if ev.id != fmt.Sprint(te.Seq) {
				t.Errorf("SSE id %q != seq %d", ev.id, te.Seq)
			}
			traces = append(traces, te)
		case "cost":
			var c ssePayload
			if err := json.Unmarshal([]byte(ev.data), &c); err != nil {
				t.Fatalf("cost event is not JSON: %v", err)
			}
			costs++
			if c.N != costs {
				t.Fatalf("cost point %d arrived as n=%d", costs, c.N)
			}
			lastCost = c.Cost
		case "done":
			dones++
		default:
			t.Fatalf("unknown SSE event kind %q", ev.kind)
		}
	}
	if len(traces) == 0 || costs == 0 || dones != 1 {
		t.Fatalf("stream shape: %d traces, %d costs, %d dones", len(traces), costs, dones)
	}
	if traces[0].Kind != "solve.start" || traces[len(traces)-1].Kind != "solve.done" {
		t.Errorf("stream not bracketed: first %q last %q", traces[0].Kind, traces[len(traces)-1].Kind)
	}

	// The stream must replay to the same final cost as the returned
	// solution — both via the solve.done trace event and the cost curve.
	replayed, ok := obs.FinalCost(traces)
	if !ok || replayed != final.Solution.Objective {
		t.Errorf("trace replays to %v, solution reports %v", replayed, final.Solution.Objective)
	}
	if lastCost != final.Solution.Objective {
		t.Errorf("last cost-curve point %v != objective %v", lastCost, final.Solution.Objective)
	}

	// Determinism: a second identical job streams identical payloads.
	events2, _ := streamJob(t, ts)
	if len(events2) != len(events) {
		t.Fatalf("second run streamed %d events, first %d", len(events2), len(events))
	}
	for i := range events {
		if events[i].kind != events2[i].kind || events[i].data != events2[i].data {
			t.Fatalf("event %d differs across runs:\n%s %s\n%s %s",
				i, events[i].kind, events[i].data, events2[i].kind, events2[i].data)
		}
	}
}

func TestClientDisconnectReturnsInterrupted(t *testing.T) {
	s := New(Config{Parallelism: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/solve?strategy=sa&sa-iters=50000000", bytes.NewReader(fixtureJSON(t))).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(300 * time.Millisecond) // let the solve get under way
		cancel()
	}()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var doc JobStatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != StatusInterrupted || doc.Solution == nil || !doc.Solution.Interrupted {
		t.Fatalf("disconnected solve = %+v, want interrupted best-so-far", doc)
	}
	if doc.Solution.Design == nil {
		t.Error("interrupted solve carries no design")
	}
}

func TestQueueDepthBoundsAdmission(t *testing.T) {
	s := New(Config{QueueDepth: 2})
	defer s.Close()
	if _, err := s.submit("MH", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit("MH", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.submit("MH", nil); err == nil {
		t.Fatal("third submission admitted past QueueDepth=2")
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	s.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz after Close = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(fixtureJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST /solve while draining = %d, want 503", resp.StatusCode)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	off := httptest.NewServer(New(Config{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag = %d, want 404", resp.StatusCode)
	}
	on := httptest.NewServer(New(Config{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with flag = %d, want 200", resp.StatusCode)
	}
}

// TestEventBufferFollow exercises the SSE bridge's concurrency: a
// follower attached mid-stream sees every event exactly once, in order.
func TestEventBufferFollow(t *testing.T) {
	b := &eventBuffer{}
	const n = 500
	var got []obs.TraceEvent
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := 0
		for {
			evs, done, wait := b.next(at)
			got = append(got, evs...)
			at += len(evs)
			if done && len(evs) == 0 {
				return
			}
			if wait != nil {
				<-wait
			}
		}
	}()
	for i := 0; i < n; i++ {
		b.Trace(obs.TraceEvent{Kind: "candidate", Index: i})
	}
	b.close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("follower saw %d events, want %d", len(got), n)
	}
	for i, ev := range got {
		if ev.Seq != int64(i+1) || ev.Index != i {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestCancelEndpointInterruptsDetachedJob(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/solve?strategy=sa&sa-iters=50000000&detach=1", "application/json", bytes.NewReader(fixtureJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	var accepted JobStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	time.Sleep(300 * time.Millisecond)
	req, _ := http.NewRequest("DELETE", ts.URL+"/solve/"+accepted.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(ts.URL + "/solve/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		var doc JobStatusDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if doc.Status == StatusInterrupted {
			if doc.Solution == nil || !doc.Solution.Interrupted {
				t.Fatalf("cancelled job doc = %+v", doc)
			}
			return
		}
		if doc.Status == StatusDone || doc.Status == StatusFailed {
			t.Fatalf("cancelled job ended %q", doc.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never interrupted (status %q)", doc.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMetricsAggregateRecomputedPerScrape pins the {strategy="all"}
// contract: an instrument that first appears AFTER the initial catalog
// seeding — here injected straight into a per-strategy aggregate, as an
// ad-hoc counter from a newer component would be — still gets its
// {strategy="all"} row, because the aggregate is recomputed from the
// catalog and the per-strategy snapshots on every scrape.
func TestMetricsAggregateRecomputedPerScrape(t *testing.T) {
	s, ts := newTestServer(t)

	// First scrape fixes the old behavior's seeding point.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// A later component registers an instrument the catalog never knew.
	reg := obs.NewRegistry()
	reg.Counter("core.experimental").Add(5)
	s.mu.Lock()
	s.perStrat["XX"] = reg
	s.mu.Unlock()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	if !strings.Contains(out, `incdes_core_experimental_total{strategy="XX"} 5`) {
		t.Errorf("per-strategy row missing:\n%.2000s", out)
	}
	if !strings.Contains(out, `incdes_core_experimental_total{strategy="all"}`) {
		t.Errorf("late-registered instrument has no {strategy=\"all\"} row")
	}
}
