// Package serve is the HTTP layer of cmd/incmapd: a long-running solve
// service over the engine. It exposes
//
//	POST   /solve              submit a system; runs core.Solve, returns the solution
//	GET    /solve/{id}         job status / result document
//	DELETE /solve/{id}         cancel a job (the engine returns best-so-far)
//	GET    /solve/{id}/events  SSE stream of the job's trace + cost-curve points
//	GET    /metrics            Prometheus text exposition (catalog + process gauges)
//	GET    /healthz, /readyz   liveness / readiness
//	GET    /debug/pprof/...    net/http/pprof, when Config.EnablePprof
//
// Every job runs with its own obs.Registry and an SSE event buffer as
// its tracer, reusing the engine's deterministic emission points: the
// streamed event order is the canonical trace order, identical at any
// parallelism. Completed jobs fold their registry into per-strategy
// aggregates (plus an "all" aggregate) that /metrics renders.
//
// The manager is bounded: at most MaxConcurrent solves run at once,
// at most QueueDepth wait behind them (beyond that POST /solve returns
// 429), each job is capped by JobTimeout, and a client disconnect
// cancels its synchronous solve — the engine then returns the best
// design found so far, marked Interrupted.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"incdes/internal/core"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/obs/promtext"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent is the number of solves running at once (default
	// GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth is how many submitted solves may wait for a slot before
	// POST /solve is rejected with 429 (default 16).
	QueueDepth int
	// JobTimeout caps every job's run time; requests may ask for less
	// but never more. 0 means no cap.
	JobTimeout time.Duration
	// Parallelism is the per-solve evaluation worker count handed to
	// core.Solve when the request does not choose one (0 = one per CPU).
	Parallelism int
	// RetainJobs is how many finished jobs stay queryable via
	// GET /solve/{id} (default 64; running jobs are never evicted).
	RetainJobs int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Incremental is handed to every core.Solve call: the zero value
	// enables transactional incremental evaluation,
	// core.IncrementalOff restores full clone-and-rebuild per candidate.
	Incremental core.IncrementalMode
	// MaxBodyBytes bounds the POST /solve request body (default 64 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Server is the incmapd HTTP service. Create with New, serve its
// Handler, Close on shutdown.
type Server struct {
	cfg   Config
	start time.Time
	mux   *http.ServeMux

	baseCtx context.Context
	stop    context.CancelFunc
	ready   atomic.Bool

	sem     chan struct{} // MaxConcurrent slots
	running atomic.Int64
	queued  atomic.Int64

	mu       sync.Mutex
	nextID   int64
	jobs     map[string]*job
	finished []string                 // eviction order
	perStrat map[string]*obs.Registry // catalog aggregates by strategy tag
	global   *obs.Registry            // catalog aggregate across strategies
	solves   map[[2]string]int64      // completed solves by {strategy, status}
}

// New assembles a server. The global aggregate registry is pre-seeded
// with the full instrument catalog so /metrics exposes every catalog
// metric from the first scrape, before any solve has run.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		baseCtx:  ctx,
		stop:     stop,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		jobs:     map[string]*job{},
		perStrat: map[string]*obs.Registry{},
		global:   obs.NewRegistry(),
		solves:   map[[2]string]int64{},
	}
	for _, ins := range obs.Catalog() {
		switch ins.Kind {
		case obs.KindCounter:
			s.global.Counter(ins.Name)
		case obs.KindGauge:
			s.global.Gauge(ins.Name)
		case obs.KindTimer:
			s.global.Timer(ins.Name)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("GET /solve/{id}", s.handleJobStatus)
	s.mux.HandleFunc("DELETE /solve/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /solve/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.ready.Store(true)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: readiness flips to 503 and every running
// job's context is cancelled (the engine returns best-so-far designs).
func (s *Server) Close() {
	s.ready.Store(false)
	s.stop()
}

// JobStatusDoc is the JSON document of GET /solve/{id} and the body of
// a synchronous POST /solve response.
type JobStatusDoc struct {
	ID       string        `json:"id"`
	Status   string        `json:"status"`
	Strategy string        `json:"strategy"`
	Error    string        `json:"error,omitempty"`
	Solution *SolutionDoc  `json:"solution,omitempty"`
	Stats    *obs.Snapshot `json:"stats,omitempty"`
}

func (s *Server) statusDoc(j *job) *JobStatusDoc {
	status, doc, err := j.snapshot()
	out := &JobStatusDoc{ID: j.id, Status: status, Strategy: j.strategy, Solution: doc}
	if err != nil {
		out.Error = err.Error()
	}
	if status == StatusDone || status == StatusInterrupted {
		snap := j.reg.Snapshot()
		out.Stats = &snap
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseSolveParams decodes the POST /solve query string.
func parseSolveParams(r *http.Request) (SolveParams, error) {
	q := r.URL.Query()
	p := SolveParams{
		Strategy: q.Get("strategy"),
		App:      q.Get("app"),
		Detach:   q.Get("detach") == "1" || q.Get("detach") == "true",
	}
	intq := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s=%q", name, v)
			}
			*dst = n
		}
		return nil
	}
	for name, dst := range map[string]*int{
		"sa-iters": &p.SAIters, "sa-restarts": &p.SARestarts, "parallel": &p.Parallel,
	} {
		if err := intq(name, dst); err != nil {
			return p, err
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed=%q", v)
		}
		p.SASeed = n
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad timeout=%q", v)
		}
		p.Timeout = d
	}
	return p, nil
}

// submit registers a new job if the queue has room.
func (s *Server) submit(strategyTag string) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(s.queued.Load()) >= s.cfg.QueueDepth {
		return nil, fmt.Errorf("queue full: %d solves waiting", s.queued.Load())
	}
	s.queued.Add(1)
	s.nextID++
	j := &job{
		id:       "j" + strconv.FormatInt(s.nextID, 10),
		strategy: strategyTag,
		reg:      obs.NewRegistry(),
		buf:      &eventBuffer{},
		status:   StatusQueued,
		done:     make(chan struct{}),
	}
	s.jobs[j.id] = j
	return j, nil
}

// run executes one job to completion: waits for a worker slot, solves,
// records the outcome and folds the job's registry into the aggregates.
// ctx should already be bound to the client (sync) or the server
// (detached); run adds the timeout and server-shutdown cancellation.
func (s *Server) run(ctx context.Context, j *job, p *core.Problem, params SolveParams) {
	ctx, cancel := context.WithCancel(ctx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	stopWatch := context.AfterFunc(s.baseCtx, cancel) // shutdown cancels jobs
	defer stopWatch()
	timeout := params.Timeout
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	// Wait for a slot; cancellation while queued fails the job without
	// burning one.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.queued.Add(-1)
		j.finish(nil, fmt.Errorf("cancelled while queued: %w", ctx.Err()))
		s.finalize(j)
		return
	}
	s.queued.Add(-1)
	s.running.Add(1)
	defer func() {
		s.running.Add(-1)
		<-s.sem
	}()
	j.setStatus(StatusRunning)

	strat, err := params.strategy() // validated at submit; cannot fail here
	if err != nil {
		j.finish(nil, err)
		s.finalize(j)
		return
	}
	parallelism := params.Parallel
	if parallelism <= 0 {
		parallelism = s.cfg.Parallelism
	}
	sol, err := core.Solve(ctx, p, core.Options{
		Strategy:    strat,
		Parallelism: parallelism,
		Incremental: s.cfg.Incremental,
		Observer:    &obs.Observer{Stats: j.reg, Tracer: j.buf},
	})
	if err != nil {
		j.finish(nil, err)
		s.finalize(j)
		return
	}
	doc, err := NewSolutionDoc(sol)
	if err != nil {
		j.finish(nil, err)
		s.finalize(j)
		return
	}
	j.finish(doc, nil)
	s.finalize(j)
}

// finalize folds a finished job into the aggregates and evicts the
// oldest finished jobs beyond the retention bound.
func (s *Server) finalize(j *job) {
	status, _, _ := j.snapshot()
	snap := j.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	agg, ok := s.perStrat[j.strategy]
	if !ok {
		agg = obs.NewRegistry()
		s.perStrat[j.strategy] = agg
	}
	mergeSnapshot(agg, snap)
	mergeSnapshot(s.global, snap)
	s.solves[[2]string{j.strategy, status}]++
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// mergeSnapshot accumulates one job's instruments into an aggregate
// registry: counters and timers add, gauges keep the last job's value.
func mergeSnapshot(dst *obs.Registry, snap obs.Snapshot) {
	for name, v := range snap.Counters {
		dst.Counter(name).Add(v)
	}
	for name, v := range snap.Gauges {
		dst.Gauge(name).Set(v)
	}
	for name, ns := range snap.TimersNS {
		dst.Timer(name).Observe(time.Duration(ns))
	}
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	params, err := parseSolveParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	strat, err := params.strategy()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sys, err := model.ReadSystem(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading system: %v", err)
		return
	}
	p, err := BuildProblem(sys, params.App)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "building problem: %v", err)
		return
	}
	j, err := s.submit(strat.Name())
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if params.Detach {
		// Detached jobs belong to the server, not the request: the job
		// outlives the connection and is cancelled only by DELETE,
		// timeout, or shutdown.
		go s.run(s.baseCtx, j, p, params)
		w.Header().Set("Location", "/solve/"+j.id)
		writeJSON(w, http.StatusAccepted, &JobStatusDoc{ID: j.id, Status: StatusQueued, Strategy: j.strategy})
		return
	}
	// Synchronous: the job is bound to the connection. A client
	// disconnect cancels the solve and the engine reports the best
	// design found so far, marked interrupted.
	s.run(r.Context(), j, p, params)
	doc := s.statusDoc(j)
	if doc.Status == StatusFailed {
		writeJSON(w, http.StatusUnprocessableEntity, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.statusDoc(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "status": "cancelling"})
}

// ssePayload is the cost-curve point streamed alongside trace events.
type ssePayload struct {
	N    int     `json:"n"`
	Kind string  `json:"kind"`
	Cost float64 `json:"cost"`
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	enc := json.NewEncoder(w)
	next, curve := 0, 0
	for {
		evs, done, wait := j.buf.next(next)
		for _, ev := range evs {
			fmt.Fprintf(w, "event: trace\nid: %d\ndata: ", ev.Seq)
			enc.Encode(ev) // one line + '\n'
			fmt.Fprint(w, "\n")
			// Mirror obs.CostCurve: every committed/improved design is
			// also streamed as a cost-curve point.
			switch ev.Kind {
			case "init", "move", "sa.best", "decision":
				curve++
				fmt.Fprint(w, "event: cost\ndata: ")
				enc.Encode(ssePayload{N: curve, Kind: ev.Kind, Cost: ev.Cost})
				fmt.Fprint(w, "\n")
			}
		}
		next += len(evs)
		if len(evs) > 0 {
			flusher.Flush()
		}
		if done && len(evs) == 0 {
			status, doc, jerr := j.snapshot()
			final := map[string]any{"status": status}
			if doc != nil {
				final["objective"] = doc.Objective
				final["evaluations"] = doc.Evaluations
			}
			if jerr != nil {
				final["error"] = jerr.Error()
			}
			fmt.Fprint(w, "event: done\ndata: ")
			enc.Encode(final)
			fmt.Fprint(w, "\n")
			flusher.Flush()
			return
		}
		if wait != nil {
			select {
			case <-wait:
			case <-r.Context().Done():
				return
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := promtext.NewCollection(promtext.DefaultNamespace)

	// Engine/scheduler/bus catalog: the cross-strategy aggregate under
	// {strategy="all"}, plus one label set per strategy that has run.
	// "all" is the sum of the others; filter by label when aggregating.
	s.mu.Lock()
	c.Add(map[string]string{"strategy": "all"}, s.global.Snapshot())
	for tag, reg := range s.perStrat {
		c.Add(map[string]string{"strategy": tag}, reg.Snapshot())
	}
	for key, n := range s.solves {
		c.AddCounter("solves", "completed solve jobs by strategy and status",
			map[string]string{"strategy": key[0], "status": key[1]}, float64(n))
	}
	s.mu.Unlock()

	// Process- and service-level gauges.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.AddGauge("process.uptime_seconds", "seconds since the server started", nil, time.Since(s.start).Seconds())
	c.AddGauge("process.goroutines", "current goroutine count", nil, float64(runtime.NumGoroutine()))
	c.AddGauge("process.heap_alloc_bytes", "bytes of allocated heap objects", nil, float64(ms.HeapAlloc))
	c.AddGauge("process.heap_sys_bytes", "bytes of heap obtained from the OS", nil, float64(ms.HeapSys))
	c.AddGauge("solves.in_flight", "solves currently running", nil, float64(s.running.Load()))
	c.AddGauge("solves.queued", "solves waiting for a worker slot", nil, float64(s.queued.Load()))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.Write(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
