// Package serve is the HTTP layer of cmd/incmapd: a long-running solve
// service over the engine. The API lives under the /v1 prefix:
//
//	POST   /v1/solve              submit a system; runs core.Solve, returns the solution
//	GET    /v1/solve/{id}         job status / result document
//	DELETE /v1/solve/{id}         cancel a job (the engine returns best-so-far)
//	GET    /v1/solve/{id}/events  SSE stream of the job's trace + cost-curve points
//
//	POST   /v1/sessions                    open a versioned design session over a base system
//	GET    /v1/sessions                    list session IDs
//	GET    /v1/sessions/{id}               session document (version tree + branches)
//	DELETE /v1/sessions/{id}               delete a session
//	POST   /v1/sessions/{id}/commits       commit one application to a branch (sync or detach=1)
//	POST   /v1/sessions/{id}/branches      create a branch from a version
//	POST   /v1/sessions/{id}/rollback      move a branch head back to an ancestor
//	GET    /v1/sessions/{id}/diff          placement + metric delta between two versions
//
//	GET    /metrics               Prometheus text exposition (catalog + process gauges)
//	GET    /healthz, /readyz      liveness / readiness
//	GET    /debug/pprof/...       net/http/pprof, when Config.EnablePprof
//
// The pre-/v1 solve paths (POST /solve, ...) remain mounted as exact
// aliases of their /v1 twins for one release; new endpoints (sessions)
// are /v1-only. Infrastructure endpoints (/metrics, /healthz, /readyz,
// /debug/pprof) are unversioned by design. Every error response uses one
// envelope: {"error":{"code","message","retry_after_s"?}}.
//
// Every job runs with its own obs.Registry and an SSE event buffer as
// its tracer, reusing the engine's deterministic emission points: the
// streamed event order is the canonical trace order, identical at any
// parallelism. Completed jobs fold their registry into per-strategy
// aggregates (plus an "all" aggregate) that /metrics renders. Session
// commits run through the same bounded job manager as one-shot solves,
// so queue limits, timeouts, SSE streaming and cancellation behave
// identically for both.
//
// The manager is bounded: at most MaxConcurrent solves run at once,
// at most QueueDepth wait behind them (beyond that POST /v1/solve returns
// 429), each job is capped by JobTimeout, and a client disconnect
// cancels its synchronous solve — the engine then returns the best
// design found so far, marked Interrupted.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdes/internal/cache"
	"incdes/internal/core"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/obs/promtext"
	"incdes/internal/session"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent is the number of solves running at once (default
	// GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth is how many submitted solves may wait for a slot before
	// POST /solve is rejected with 429 (default 16).
	QueueDepth int
	// JobTimeout caps every job's run time; requests may ask for less
	// but never more. 0 means no cap.
	JobTimeout time.Duration
	// Parallelism is the per-solve evaluation worker count handed to
	// core.Solve when the request does not choose one (0 = one per CPU).
	Parallelism int
	// RetainJobs is how many finished jobs stay queryable via
	// GET /solve/{id} (default 64; running jobs are never evicted).
	RetainJobs int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Incremental is handed to every core.Solve call: the zero value
	// enables transactional incremental evaluation,
	// core.IncrementalOff restores full clone-and-rebuild per candidate.
	Incremental core.IncrementalMode
	// MaxBodyBytes bounds the POST /solve request body (default 64 MiB).
	MaxBodyBytes int64
	// SolutionCacheSize bounds the whole-solution cache (entries). 0
	// disables solution caching and single-flight dedup entirely (the
	// default); see cache.go for the semantics when enabled.
	SolutionCacheSize int
	// SessionStore persists versioned design sessions. nil selects an
	// in-memory store (sessions die with the process); cmd/incmapd wires
	// a session.DiskStore here for durable sessions.
	SessionStore session.Store
	// DebugRequests is how many completed request span trees the
	// /v1/debug/requests ring retains (default 256; negative disables
	// the ring — the endpoints then always report empty/404).
	DebugRequests int
	// SlowRequestLog, when positive, makes every request slower than
	// this emit a one-line span breakdown to SlowLogger.
	SlowRequestLog time.Duration
	// SlowLogger receives slow-request lines (nil = log.Default()).
	SlowLogger *log.Logger
	// Dispatcher, when set, is offered every one-shot solve; requests it
	// claims run on the cluster instead of calling core.Solve locally
	// (see dispatch.go). nil means all solves run locally.
	Dispatcher Dispatcher
	// MetricsExtra, when set, is called at the end of every /metrics
	// scrape with the assembled collection — the cluster coordinator
	// appends per-worker rows here.
	MetricsExtra func(*promtext.Collection)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.DebugRequests == 0 {
		c.DebugRequests = 256
	}
	return c
}

// Server is the incmapd HTTP service. Create with New, serve its
// Handler, Close on shutdown.
type Server struct {
	cfg     Config
	start   time.Time
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the request middleware

	baseCtx context.Context
	stop    context.CancelFunc
	ready   atomic.Bool

	sem     chan struct{} // MaxConcurrent slots
	running atomic.Int64
	queued  atomic.Int64

	// Request-scoped observability (debug.go).
	reqSeq   atomic.Int64 // generated correlation IDs
	recorder *obs.SpanRecorder

	// Whole-solution cache + single-flight dedup (nil when disabled).
	solutions *cache.LRU
	flights   *cache.Group

	sessions *session.Manager
	sessErr  error // deferred session-manager init failure

	mu       sync.Mutex
	nextID   int64
	jobs     map[string]*job
	finished []string                 // eviction order
	perStrat map[string]*obs.Registry // catalog aggregates by strategy tag
	global   *obs.Registry            // catalog aggregate across strategies
	solves   map[[2]string]int64      // completed solves by {strategy, status}
}

// New assembles a server. The global aggregate registry is pre-seeded
// with the full instrument catalog so /metrics exposes every catalog
// metric from the first scrape, before any solve has run.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		baseCtx:  ctx,
		stop:     stop,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		jobs:     map[string]*job{},
		perStrat: map[string]*obs.Registry{},
		global:   obs.NewRegistry(),
		solves:   map[[2]string]int64{},
	}
	if cfg.SolutionCacheSize > 0 {
		s.solutions = cache.NewLRU(cfg.SolutionCacheSize)
		s.flights = cache.NewGroup()
	}
	s.recorder = obs.NewSpanRecorder(cfg.DebugRequests)
	seedCatalog(s.global)
	// Session manager: session.* instruments land in the global aggregate
	// registry (the catalog pre-seed above already exposes them as zeros).
	store := cfg.SessionStore
	if store == nil {
		store = session.NewMemStore()
	}
	s.sessions, s.sessErr = session.NewManager(store, s.global)

	s.mux = http.NewServeMux()
	// Solve endpoints: canonical under /v1, pre-/v1 path kept as an exact
	// alias for one release (see the package comment).
	s.handleV1("POST /solve", s.handleSolve)
	s.handleV1("GET /solve/{id}", s.handleJobStatus)
	s.handleV1("DELETE /solve/{id}", s.handleJobCancel)
	s.handleV1("GET /solve/{id}/events", s.handleJobEvents)
	// Session endpoints are /v1-only: they never existed unversioned.
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	s.mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/commits", s.handleSessionCommit)
	s.mux.HandleFunc("POST /v1/sessions/{id}/branches", s.handleSessionBranch)
	s.mux.HandleFunc("POST /v1/sessions/{id}/rollback", s.handleSessionRollback)
	s.mux.HandleFunc("GET /v1/sessions/{id}/diff", s.handleSessionDiff)
	s.handleV1("GET /metrics", s.handleMetrics)
	s.handleV1("GET /healthz", s.handleHealthz)
	s.handleV1("GET /readyz", s.handleReadyz)
	// Debug surface: /v1-only, like every endpoint born after versioning.
	s.mux.HandleFunc("GET /v1/debug/requests", s.handleDebugRequests)
	s.mux.HandleFunc("GET /v1/debug/requests/{id}", s.handleDebugRequest)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.handler = s.instrument(s.mux)
	s.ready.Store(true)
	return s
}

// seedCatalog materializes every declared instrument in a registry so
// exposition shows the full catalog (as zeros) regardless of what has
// run.
func seedCatalog(r *obs.Registry) {
	for _, ins := range obs.Catalog() {
		switch ins.Kind {
		case obs.KindCounter:
			r.Counter(ins.Name)
		case obs.KindGauge:
			r.Gauge(ins.Name)
		case obs.KindTimer:
			r.Timer(ins.Name)
		case obs.KindHistogram:
			r.Histogram(ins.Name)
		}
	}
}

// handleV1 registers a handler under the /v1 prefix and mirrors it on
// the legacy unversioned path, so "POST /solve" serves both
// "POST /v1/solve" and "POST /solve" with one implementation.
func (s *Server) handleV1(pattern string, h http.HandlerFunc) {
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("serve: route pattern without method: " + pattern)
	}
	s.mux.HandleFunc(method+" /v1"+path, h)
	s.mux.HandleFunc(pattern, h)
}

// Handler returns the service's HTTP handler: the router wrapped in
// the request-observability middleware (correlation IDs, span traces,
// latency histogram, slow-request log).
func (s *Server) Handler() http.Handler { return s.handler }

// Close drains the server: readiness flips to 503 and every running
// job's context is cancelled (the engine returns best-so-far designs).
func (s *Server) Close() {
	s.ready.Store(false)
	s.stop()
}

// JobStatusDoc is the JSON document of GET /solve/{id} and the body of
// a synchronous POST /solve response.
type JobStatusDoc struct {
	ID       string        `json:"id"`
	Status   string        `json:"status"`
	Strategy string        `json:"strategy"`
	Error    string        `json:"error,omitempty"`
	Commit   *CommitInfo   `json:"commit,omitempty"`
	Solution *SolutionDoc  `json:"solution,omitempty"`
	Stats    *obs.Snapshot `json:"stats,omitempty"`
	// Worker names the cluster worker(s) that executed a dispatched
	// solve, comma-joined in unit order; empty for local solves.
	Worker string `json:"worker,omitempty"`
	// RequestID and Spans tie a (typically detached) job back to the
	// request trace that submitted it: the correlation ID plus a flat
	// per-span duration digest once the job is terminal.
	RequestID string        `json:"request_id,omitempty"`
	Spans     []spanSummary `json:"spans,omitempty"`
}

func (s *Server) statusDoc(j *job) *JobStatusDoc {
	status, doc, err := j.snapshot()
	out := &JobStatusDoc{ID: j.id, Status: status, Strategy: j.strategy, Commit: j.commitInfo(), Solution: doc, Worker: j.workerTag()}
	if err != nil {
		out.Error = err.Error()
	}
	out.RequestID = j.trace.ID()
	if status == StatusDone || status == StatusInterrupted {
		snap := j.reg.Snapshot()
		out.Stats = &snap
		out.Spans = spanSummaries(j.trace)
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// Stable machine-readable error codes of the unified error envelope.
// Clients switch on the code; the message is for humans only.
const (
	ErrCodeBadRequest    = "bad_request"    // malformed query, body or parameter
	ErrCodeNotFound      = "not_found"      // unknown job, session, branch or version
	ErrCodeInvalidInput  = "invalid_input"  // well-formed but unusable problem input
	ErrCodeQueueFull     = "queue_full"     // solve queue at capacity; retry later
	ErrCodeDraining      = "draining"       // server is shutting down
	ErrCodeIllegalCommit = "illegal_commit" // commit violates the session legality rule
	ErrCodeConflict      = "conflict"       // concurrent modification or duplicate
	ErrCodeCorrupt       = "corrupt"        // stored session fails fingerprint replay
	ErrCodeUnsupported   = "unsupported"    // transport capability missing (e.g. no streaming)
	ErrCodeInternal      = "internal"       // unexpected server-side failure
)

// ErrorBody is the payload of the unified error envelope.
type ErrorBody struct {
	Code        string  `json:"code"`
	Message     string  `json:"message"`
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// ErrorDoc is the unified JSON error envelope every serve handler
// returns on failure: {"error":{"code","message","retry_after_s"?}}.
type ErrorDoc struct {
	Error ErrorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorDoc{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// writeRetryError is writeError plus retry advice, in both the HTTP
// Retry-After header and the envelope's retry_after_s field.
func writeRetryError(w http.ResponseWriter, status int, code string, retryAfter time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
	writeJSON(w, status, ErrorDoc{Error: ErrorBody{
		Code:        code,
		Message:     fmt.Sprintf(format, args...),
		RetryAfterS: retryAfter.Seconds(),
	}})
}

// writeSessionError maps the session package's sentinel errors onto the
// envelope. Anything unrecognized is an internal error.
func writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, session.ErrNotFound),
		errors.Is(err, session.ErrUnknownBranch),
		errors.Is(err, session.ErrUnknownVersion):
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "%v", err)
	case errors.Is(err, session.ErrIllegalCommit),
		errors.Is(err, session.ErrNotAncestor),
		errors.Is(err, core.ErrUnschedulable):
		writeError(w, http.StatusUnprocessableEntity, ErrCodeIllegalCommit, "%v", err)
	case errors.Is(err, session.ErrBranchExists),
		errors.Is(err, session.ErrConflict),
		errors.Is(err, session.ErrExists):
		writeError(w, http.StatusConflict, ErrCodeConflict, "%v", err)
	case errors.Is(err, session.ErrCorrupt):
		writeError(w, http.StatusInternalServerError, ErrCodeCorrupt, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
	}
}

// parseSolveParams decodes the POST /solve query string.
func parseSolveParams(r *http.Request) (SolveParams, error) {
	q := r.URL.Query()
	p := SolveParams{
		Strategy: q.Get("strategy"),
		App:      q.Get("app"),
		Detach:   q.Get("detach") == "1" || q.Get("detach") == "true",
	}
	intq := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s=%q", name, v)
			}
			*dst = n
		}
		return nil
	}
	for name, dst := range map[string]*int{
		"sa-iters": &p.SAIters, "sa-restarts": &p.SARestarts,
		"sa-chain-offset": &p.SAChainOffset, "parallel": &p.Parallel,
	} {
		if err := intq(name, dst); err != nil {
			return p, err
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed=%q", v)
		}
		p.SASeed = n
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, fmt.Errorf("bad timeout=%q", v)
		}
		p.Timeout = d
	}
	switch v := q.Get("cache"); v {
	case "", "on":
	case "off", "0", "false":
		p.NoCache = true
	default:
		return p, fmt.Errorf("bad cache=%q (want off)", v)
	}
	return p, nil
}

// submit registers a new job if the queue has room, bound to the
// submitting request's span trace (nil is fine).
func (s *Server) submit(strategyTag string, rt *obs.RequestTrace) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(s.queued.Load()) >= s.cfg.QueueDepth {
		return nil, fmt.Errorf("queue full: %d solves waiting", s.queued.Load())
	}
	s.queued.Add(1)
	return s.registerLocked(strategyTag, rt), nil
}

// register creates a job outside the queue accounting: cache hits do no
// solver work, so they bypass admission control entirely.
func (s *Server) register(strategyTag string, rt *obs.RequestTrace) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(strategyTag, rt)
}

func (s *Server) registerLocked(strategyTag string, rt *obs.RequestTrace) *job {
	s.nextID++
	j := &job{
		id:       "j" + strconv.FormatInt(s.nextID, 10),
		strategy: strategyTag,
		reg:      obs.NewRegistry(),
		buf:      &eventBuffer{},
		trace:    rt,
		status:   StatusQueued,
		done:     make(chan struct{}),
	}
	s.jobs[j.id] = j
	return j
}

// run executes one job to completion: waits for a worker slot, invokes
// the job's work closure (a one-shot solve or a session commit), records
// the outcome and folds the job's registry into the aggregates. ctx
// should already be bound to the client (sync) or the server (detached);
// run adds the timeout and server-shutdown cancellation.
func (s *Server) run(ctx context.Context, j *job, requested time.Duration, work func(context.Context) (*SolutionDoc, error)) {
	ctx, cancel := context.WithCancel(ctx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()
	stopWatch := context.AfterFunc(s.baseCtx, cancel) // shutdown cancels jobs
	defer stopWatch()
	timeout := requested
	if s.cfg.JobTimeout > 0 && (timeout <= 0 || timeout > s.cfg.JobTimeout) {
		timeout = s.cfg.JobTimeout
	}
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	// Wait for a slot; cancellation while queued fails the job without
	// burning one. The wait is a span of its own plus the queue-wait
	// histogram — the admission latency a client actually feels.
	qstart := time.Now()
	_, qspan := obs.StartSpan(ctx, "queue.wait")
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		qspan.End()
		j.reg.Histogram(obs.HstQueueWaitSeconds).ObserveSince(qstart)
		s.queued.Add(-1)
		j.finish(nil, fmt.Errorf("cancelled while queued: %w", ctx.Err()))
		s.finalize(j)
		return
	}
	qspan.End()
	j.reg.Histogram(obs.HstQueueWaitSeconds).ObserveSince(qstart)
	s.queued.Add(-1)
	s.running.Add(1)
	defer func() {
		s.running.Add(-1)
		<-s.sem
	}()
	j.setStatus(StatusRunning)

	doc, err := work(ctx)
	if err != nil {
		j.finish(nil, err)
		s.finalize(j)
		return
	}
	j.finish(doc, nil)
	s.finalize(j)
}

// solveWork builds a one-shot solve's work closure. Building the problem
// already scheduled every frozen application once (BuildProblem walks
// them in arrival order), so each counts as one examined design
// alternative — the per-request base-reconstruction cost that versioned
// sessions amortize across commits.
//
// When a cluster dispatcher claims the request, the closure forwards the
// posted system instead of solving locally; core.Solve determinism plus
// the dispatcher's index-ordered reduce make the returned document
// byte-identical either way, so caching and single-flight wrap both
// paths without distinction.
func (s *Server) solveWork(j *job, sys *model.System, p *core.Problem, frozen int, params SolveParams) func(context.Context) (*SolutionDoc, error) {
	if d := s.cfg.Dispatcher; d != nil && d.CanDispatch(params) {
		return func(ctx context.Context) (*SolutionDoc, error) {
			if frozen > 0 {
				j.reg.Counter(obs.CtrEvaluations).Add(int64(frozen))
			}
			t0 := time.Now()
			res, err := d.Dispatch(ctx, &DispatchRequest{
				System:   sys,
				Params:   params,
				Registry: j.reg,
				Tracer:   j.buf,
			})
			j.reg.Histogram(obs.HstSolveSeconds).ObserveSince(t0)
			if err != nil {
				return nil, err
			}
			j.setWorker(res.Worker)
			return res.Doc, nil
		}
	}
	return func(ctx context.Context) (*SolutionDoc, error) {
		strat, err := params.strategy() // validated at submit; cannot fail here
		if err != nil {
			return nil, err
		}
		if frozen > 0 {
			j.reg.Counter(obs.CtrEvaluations).Add(int64(frozen))
		}
		t0 := time.Now()
		sol, err := core.Solve(ctx, p, core.Options{
			Strategy:    strat,
			Parallelism: s.parallelism(params),
			Incremental: s.cfg.Incremental,
			Observer:    &obs.Observer{Stats: j.reg, Tracer: j.buf},
		})
		j.reg.Histogram(obs.HstSolveSeconds).ObserveSince(t0)
		if err != nil {
			return nil, err
		}
		return NewSolutionDoc(sol)
	}
}

func (s *Server) parallelism(params SolveParams) int {
	if params.Parallel > 0 {
		return params.Parallel
	}
	return s.cfg.Parallelism
}

// finalize folds a finished job into the aggregates and evicts the
// oldest finished jobs beyond the retention bound.
func (s *Server) finalize(j *job) {
	status, _, _ := j.snapshot()
	snap := j.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	agg, ok := s.perStrat[j.strategy]
	if !ok {
		agg = obs.NewRegistry()
		s.perStrat[j.strategy] = agg
	}
	mergeSnapshot(agg, snap)
	mergeSnapshot(s.global, snap)
	s.solves[[2]string{j.strategy, status}]++
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// mergeSnapshot accumulates one job's instruments into an aggregate
// registry: counters and timers add, gauges keep the last job's value.
func mergeSnapshot(dst *obs.Registry, snap obs.Snapshot) {
	for name, v := range snap.Counters {
		dst.Counter(name).Add(v)
	}
	for name, v := range snap.Gauges {
		dst.Gauge(name).Set(v)
	}
	for name, ns := range snap.TimersNS {
		dst.Timer(name).Observe(time.Duration(ns))
	}
	for name, hs := range snap.Histograms {
		// Merge only rejects mismatched bucket layouts, which cannot
		// happen between registries that both use the catalog bounds.
		dst.Histogram(name).Merge(hs)
	}
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeRetryError(w, http.StatusServiceUnavailable, ErrCodeDraining, time.Second, "server is draining")
		return
	}
	params, err := parseSolveParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	strat, err := params.strategy()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
		return
	}
	sys, err := model.ReadSystem(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "reading system: %v", err)
		return
	}
	p, err := BuildProblem(sys, params.App)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, ErrCodeInvalidInput, "building problem: %v", err)
		return
	}
	useCache := s.solutions != nil && !params.NoCache
	var key string
	if useCache {
		// The lookup is a leaf span plus the cache-lookup histogram:
		// fingerprinting dominates it, and a hit is the whole request.
		lstart := time.Now()
		_, lspan := obs.StartSpan(r.Context(), "cache.lookup")
		key = cache.Fingerprint(cache.Request{
			System:   sys,
			App:      params.App,
			Profile:  p.Profile,
			Weights:  p.Weights,
			Strategy: params.cacheSpec(),
		})
		v, ok := s.solutions.Get(key)
		if ok {
			lspan.SetAttr("outcome", "hit")
		} else {
			lspan.SetAttr("outcome", "miss")
		}
		lspan.End()
		s.global.Histogram(obs.HstCacheLookupSeconds).ObserveSince(lstart)
		if ok {
			s.serveHit(w, r, v.(*solutionEntry), params, strat.Name())
			return
		}
	}
	j, err := s.submit(strat.Name(), obs.TraceFrom(r.Context()))
	if err != nil {
		writeRetryError(w, http.StatusTooManyRequests, ErrCodeQueueFull, time.Second, "%v", err)
		return
	}
	var work func(context.Context) (*SolutionDoc, error)
	if useCache {
		f, leader := s.flights.Join(s.baseCtx, key)
		if !leader {
			// Coalesce onto the in-flight identical solve: the follower
			// holds neither a queue position nor a worker slot, so give the
			// admission count back.
			s.queued.Add(-1)
			w.Header().Set(cacheHeader, "inflight")
			s.global.Counter(obs.CtrSolveCacheInflight).Inc()
			if params.Detach {
				// CopyTrace: the detached job runs under the server's
				// lifetime but keeps recording into the request's trace.
				go s.runFollower(obs.CopyTrace(s.baseCtx, r.Context()), j, params.Timeout, f)
				w.Header().Set("Location", "/v1/solve/"+j.id)
				writeJSON(w, http.StatusAccepted, &JobStatusDoc{ID: j.id, Status: StatusQueued, Strategy: j.strategy})
				return
			}
			s.runFollower(r.Context(), j, params.Timeout, f)
			doc := s.statusDoc(j)
			if doc.Status == StatusFailed {
				writeJSON(w, http.StatusUnprocessableEntity, doc)
				return
			}
			writeJSON(w, http.StatusOK, doc)
			return
		}
		w.Header().Set(cacheHeader, "miss")
		s.global.Counter(obs.CtrSolveCacheMisses).Inc()
		work = s.leaderWork(f, j, sys, p, len(sys.Apps)-1, params, key)
	} else {
		work = s.solveWork(j, sys, p, len(sys.Apps)-1, params)
	}
	if params.Detach {
		// Detached jobs belong to the server, not the request: the job
		// outlives the connection and is cancelled only by DELETE,
		// timeout, or shutdown. CopyTrace keeps the request's span trace
		// (but not its cancellation) attached to the job.
		go s.run(obs.CopyTrace(s.baseCtx, r.Context()), j, params.Timeout, work)
		w.Header().Set("Location", "/v1/solve/"+j.id)
		writeJSON(w, http.StatusAccepted, &JobStatusDoc{ID: j.id, Status: StatusQueued, Strategy: j.strategy})
		return
	}
	// Synchronous: the job is bound to the connection. A client
	// disconnect cancels the solve and the engine reports the best
	// design found so far, marked interrupted.
	s.run(r.Context(), j, params.Timeout, work)
	if wt := j.workerTag(); wt != "" {
		w.Header().Set(workerHeader, wt)
	}
	doc := s.statusDoc(j)
	if doc.Status == StatusFailed {
		writeJSON(w, http.StatusUnprocessableEntity, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.statusDoc(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "no such job")
		return
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": j.id, "status": "cancelling"})
}

// ssePayload is the cost-curve point streamed alongside trace events.
type ssePayload struct {
	N    int     `json:"n"`
	Kind string  `json:"kind"`
	Cost float64 `json:"cost"`
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, ErrCodeUnsupported, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	enc := json.NewEncoder(w)
	next, curve := 0, 0
	for {
		evs, done, wait := j.buf.next(next)
		for _, ev := range evs {
			fmt.Fprintf(w, "event: trace\nid: %d\ndata: ", ev.Seq)
			enc.Encode(ev) // one line + '\n'
			fmt.Fprint(w, "\n")
			// Mirror obs.CostCurve: every committed/improved design is
			// also streamed as a cost-curve point.
			switch ev.Kind {
			case "init", "move", "sa.best", "decision":
				curve++
				fmt.Fprint(w, "event: cost\ndata: ")
				enc.Encode(ssePayload{N: curve, Kind: ev.Kind, Cost: ev.Cost})
				fmt.Fprint(w, "\n")
			}
		}
		next += len(evs)
		if len(evs) > 0 {
			flusher.Flush()
		}
		if done && len(evs) == 0 {
			status, doc, jerr := j.snapshot()
			final := map[string]any{"status": status}
			if doc != nil {
				final["objective"] = doc.Objective
				final["evaluations"] = doc.Evaluations
			}
			if jerr != nil {
				final["error"] = jerr.Error()
			}
			fmt.Fprint(w, "event: done\ndata: ")
			enc.Encode(final)
			fmt.Fprint(w, "\n")
			flusher.Flush()
			return
		}
		if wait != nil {
			select {
			case <-wait:
			case <-r.Context().Done():
				return
			}
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := promtext.NewCollection(promtext.DefaultNamespace)

	// Refresh the cache-occupancy gauge: entries come and go through
	// both the solve and session-commit paths, so read the LRU directly.
	if s.solutions != nil {
		s.global.Gauge(obs.GagSolveCacheEntries).Set(int64(s.solutions.Len()))
	}

	// Engine/scheduler/bus catalog: the cross-strategy aggregate under
	// {strategy="all"}, plus one label set per strategy that has run.
	// "all" is the sum of the others; filter by label when aggregating.
	//
	// The aggregate is recomputed from the catalog on every scrape:
	// re-seeding the catalog and unioning in every instrument name seen
	// per strategy guarantees an instrument registered after the first
	// scrape (an ad-hoc counter a job created, a catalog entry added by
	// a newer component) still gets its {strategy="all"} row.
	s.mu.Lock()
	seedCatalog(s.global)
	perStratSnaps := make(map[string]obs.Snapshot, len(s.perStrat))
	for tag, reg := range s.perStrat {
		snap := reg.Snapshot()
		perStratSnaps[tag] = snap
		for name := range snap.Counters {
			s.global.Counter(name)
		}
		for name := range snap.Gauges {
			s.global.Gauge(name)
		}
		for name := range snap.TimersNS {
			s.global.Timer(name)
		}
		for name := range snap.Histograms {
			s.global.Histogram(name)
		}
	}
	c.Add(map[string]string{"strategy": "all"}, s.global.Snapshot())
	for tag, snap := range perStratSnaps {
		c.Add(map[string]string{"strategy": tag}, snap)
	}
	for key, n := range s.solves {
		c.AddCounter("solves", "completed solve jobs by strategy and status",
			map[string]string{"strategy": key[0], "status": key[1]}, float64(n))
	}
	s.mu.Unlock()

	// Process- and service-level gauges.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.AddGauge("process.uptime_seconds", "seconds since the server started", nil, time.Since(s.start).Seconds())
	c.AddGauge("process.goroutines", "current goroutine count", nil, float64(runtime.NumGoroutine()))
	c.AddGauge("process.heap_alloc_bytes", "bytes of allocated heap objects", nil, float64(ms.HeapAlloc))
	c.AddGauge("process.heap_sys_bytes", "bytes of heap obtained from the OS", nil, float64(ms.HeapSys))
	c.AddGauge("solves.in_flight", "solves currently running", nil, float64(s.running.Load()))
	c.AddGauge("solves.queued", "solves waiting for a worker slot", nil, float64(s.queued.Load()))

	// Cluster hook: the coordinator appends per-worker rows and the
	// cross-worker aggregate here.
	if s.cfg.MetricsExtra != nil {
		s.cfg.MetricsExtra(c)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.Write(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz serves the readiness probe. The status-code contract is
// the load balancer's signal (200 ready, 503 draining); the JSON body
// adds the load signal a cluster coordinator's prober consumes for
// load-aware work assignment.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	doc := ReadyDoc{
		Status:     "ready",
		QueueDepth: s.queued.Load(),
		InFlight:   s.running.Load(),
	}
	if !s.ready.Load() {
		doc.Status = "draining"
		doc.Draining = true
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
