package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"incdes/internal/core"
	"incdes/internal/model"
	"incdes/internal/tm"
)

// multiclusterFixture builds a two-cluster system: bus 0 carries nodes
// N0-N2, bus 1 carries N2-N3, N2 is the gateway. Each application has
// one process pinned to the left cluster and one pinned to N3, so every
// application forces at least one gateway-forwarded message. Returns
// the base-system JSON, the follow-on applications' JSON, and the JSON
// of the base composed with the first k applications.
func multiclusterFixture(t testing.TB) (sysJSON []byte, appJSON [][]byte, composed func(k int) []byte) {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	n2 := b.Node("N2")
	n3 := b.Node("N3")
	b.Bus([]model.NodeID{n0, n1, n2}, []int{8, 8, 8}, 1, 2)
	b.AddBus([]model.NodeID{n2, n3}, []int{8, 8}, 1, 2)
	left := map[model.NodeID]tm.Time{n0: 3, n1: 3}
	right := map[model.NodeID]tm.Time{n3: 3}
	anywhere := map[model.NodeID]tm.Time{n0: 3, n1: 3, n2: 3, n3: 3}
	mk := func(name string) {
		g := b.App(name).Graph(name+"-g", 120, 120)
		pl := g.Proc(name+"-pL", left)
		pr := g.Proc(name+"-pR", right)
		pa := g.Proc(name+"-pA", anywhere)
		g.Msg(pl, pr, 4) // crosses the gateway by construction
		g.Msg(pr, pa, 4)
	}
	mk("base")
	mk("app1")
	mk("app2")
	full := b.MustSystem()
	if len(full.Arch.Buses) != 2 || !full.Arch.IsGateway(n2) {
		t.Fatal("fixture is not the intended two-cluster topology")
	}

	writeSys := func(sys *model.System) []byte {
		var buf bytes.Buffer
		if err := sys.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, app := range full.Apps[1:] {
		var buf bytes.Buffer
		if err := app.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		appJSON = append(appJSON, buf.Bytes())
	}
	sysJSON = writeSys(&model.System{Arch: full.Arch, Apps: full.Apps[:1]})
	composed = func(k int) []byte {
		return writeSys(&model.System{Arch: full.Arch, Apps: full.Apps[:1+k]})
	}
	return sysJSON, appJSON, composed
}

// TestMulticlusterServedSolveMatchesDirect pins the multi-cluster
// acceptance contract at the HTTP layer: a two-cluster system solves
// end to end through POST /v1/solve, the served document is
// byte-identical to a direct core.Solve, and the design really carries
// gateway-forwarded traffic (it is not a degenerate single-bus solve).
func TestMulticlusterServedSolveMatchesDirect(t *testing.T) {
	_, _, composed := multiclusterFixture(t)
	_, ts := newTestServer(t)

	var got JobStatusDoc
	resp := do(t, "POST", ts.URL+"/v1/solve?strategy=mh", composed(2), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/solve = %d (job %+v)", resp.StatusCode, got)
	}
	if got.Status != StatusDone || got.Solution == nil {
		t.Fatalf("job doc = %+v", got)
	}

	sys, err := model.ReadSystem(bytes.NewReader(composed(2)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProblem(sys, "")
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(context.Background(), p, core.Options{Strategy: core.MH, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	for _, e := range sol.State.MsgEntries() {
		if e.Hop > 0 {
			hops++
		}
	}
	if hops == 0 {
		t.Error("multi-cluster solve scheduled no gateway-forwarded entries")
	}
	doc, err := NewSolutionDoc(sol)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON := marshal(t, got.Solution); !bytes.Equal(gotJSON, want) {
		t.Errorf("served multi-cluster solution differs from direct core.Solve:\nserved: %.200s\ndirect: %.200s", gotJSON, want)
	}
}

// TestMulticlusterSessionCommitMatchesOneShot runs the incremental
// workflow on the two-cluster platform: committing the applications one
// at a time through a /v1 session yields the byte-identical solution
// document that one-shot solving the composed system does (chained with
// AH so the frozen bases coincide), and the session records the chain.
func TestMulticlusterSessionCommitMatchesOneShot(t *testing.T) {
	sysJSON, apps, composed := multiclusterFixture(t)
	_, ts := newTestServer(t)

	id := openSession(t, ts, sysJSON, "")
	var last JobStatusDoc
	for _, app := range apps {
		last = commitApp(t, ts, id, app, "?strategy=ah")
	}
	direct := oneShot(t, ts, composed(len(apps)), "?strategy=ah")
	if !bytes.Equal(marshal(t, last.Solution), marshal(t, direct.Solution)) {
		t.Errorf("multi-cluster session chain diverges from one-shot solve:\nsession: %.200s\none-shot: %.200s",
			marshal(t, last.Solution), marshal(t, direct.Solution))
	}
	if last.Commit == nil || last.Commit.Version != len(apps) {
		t.Fatalf("final commit = %+v", last.Commit)
	}

	var doc SessionDoc
	if resp := do(t, "GET", ts.URL+"/v1/sessions/"+id, nil, &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session = %d", resp.StatusCode)
	}
	if len(doc.Versions) != len(apps)+1 {
		t.Fatalf("session doc = %+v", doc)
	}
	for i, v := range doc.Versions {
		if v.Fingerprint == "" {
			t.Errorf("version %d has no fingerprint", i)
		}
	}
}
