package serve

// Cluster dispatch hook. A coordinator incmapd shards solve work across
// worker daemons; the serve layer stays transport-agnostic by accepting
// any Dispatcher through Config.Dispatcher. When the dispatcher claims a
// request, solveWork hands it the posted system and parameters instead
// of calling core.Solve locally — so admission control, the solution
// cache, single-flight dedup and job lifecycle all wrap remote solves
// exactly as they wrap local ones. internal/cluster implements the
// interface; serve deliberately does not import it (no cycle, and the
// serve layer stays testable without a cluster).

import (
	"context"

	"incdes/internal/model"
	"incdes/internal/obs"
)

// workerHeader names the worker(s) that produced a dispatched solve on
// the synchronous response, so load harnesses can group latencies per
// worker. Absent on local solves and cache hits.
const workerHeader = "X-Incdes-Worker"

// DispatchRequest is one solve handed to the cluster dispatcher.
type DispatchRequest struct {
	// System is the posted problem input, re-serialized for forwarding.
	System *model.System
	// Params are the request's solve parameters (strategy, tuning,
	// timeout). The dispatcher shards from these.
	Params SolveParams
	// Registry is the job's registry: cluster.* unit counters recorded
	// here fold into the server's per-strategy and global aggregates.
	Registry *obs.Registry
	// Tracer is the job's SSE event buffer; the dispatcher may emit
	// deterministic cluster trace events into it.
	Tracer obs.Tracer
}

// DispatchResult is a completed dispatched solve.
type DispatchResult struct {
	// Doc is the reduced solution document — byte-identical to the one a
	// local core.Solve of the same request would produce.
	Doc *SolutionDoc
	// Worker names the worker(s) that executed the units, comma-joined
	// in unit order (informational; never part of the solution bytes).
	Worker string
}

// Dispatcher shards solves across a cluster. Implementations must be
// safe for concurrent use and must preserve the solve determinism
// contract: the returned document may not depend on worker count,
// scheduling or failures.
type Dispatcher interface {
	// CanDispatch reports whether the dispatcher wants this request.
	// Requests it declines run locally.
	CanDispatch(params SolveParams) bool
	// Dispatch runs the solve remotely. ctx carries the coordinator's
	// request trace (for cross-node span grafting) and the job's
	// cancellation.
	Dispatch(ctx context.Context, req *DispatchRequest) (*DispatchResult, error)
}

// ReadyDoc is the JSON body of GET /readyz: the load signal a cluster
// coordinator's health prober consumes for load-aware assignment. The
// status-code contract is unchanged (200 ready, 503 draining).
type ReadyDoc struct {
	Status     string `json:"status"` // "ready" or "draining"
	QueueDepth int64  `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`
	Draining   bool   `json:"draining,omitempty"`
}

// RequestSpans returns the recorded span snapshots of one request
// correlation ID (nil when unknown or untracked). The cluster worker
// RPC ships these to the coordinator, which grafts them into its own
// trace via obs.RequestTrace.AttachRemote.
func (s *Server) RequestSpans(id string) []obs.SpanSnapshot {
	rec, ok := s.recorder.Get(id)
	if !ok {
		return nil
	}
	return rec.Spans()
}

// StatsSnapshot exports the cross-strategy aggregate registry. The
// cluster worker RPC serves this so a coordinator can merge worker
// metrics into its own /v1/metrics exposition under per-worker labels.
func (s *Server) StatsSnapshot() obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	seedCatalog(s.global)
	return s.global.Snapshot()
}
