package future

import (
	"testing"

	"incdes/internal/tm"
)

func TestPaperProfileValidates(t *testing.T) {
	p := PaperProfile(200, 40, 16)
	if err := p.Validate(); err != nil {
		t.Fatalf("paper profile invalid: %v", err)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"zero tmin", func(p *Profile) { p.Tmin = 0 }},
		{"negative tneed", func(p *Profile) { p.TNeed = -1 }},
		{"empty wcet dist", func(p *Profile) { p.WCET = nil }},
		{"probs not 1", func(p *Profile) { p.WCET[0].Prob = 0.5 }},
		{"zero size bin", func(p *Profile) { p.MsgBytes[0].Size = 0 }},
		{"negative prob", func(p *Profile) {
			p.WCET[0].Prob = -0.1
			p.WCET[1].Prob += 0.2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := PaperProfile(200, 40, 16)
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestLargestAppWCETsCoversDemand(t *testing.T) {
	p := PaperProfile(100, 40, 16)
	items := p.LargestAppWCETs(400) // 4 windows -> demand 160
	var total int64
	for i, it := range items {
		total += it
		if i > 0 && items[i-1] < it {
			t.Error("items not in decreasing order")
		}
	}
	if total < 160 {
		t.Errorf("total = %d, want >= 160", total)
	}
	// Overshoot is bounded by the smallest WCET bin (20).
	if total >= 160+20 {
		t.Errorf("total = %d overshoots demand 160 by more than one small item", total)
	}
}

func TestLargestAppDeterministic(t *testing.T) {
	p := PaperProfile(100, 40, 16)
	a := p.LargestAppWCETs(800)
	b := p.LargestAppWCETs(800)
	if len(a) != len(b) {
		t.Fatal("expansion not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("expansion not deterministic")
		}
	}
}

func TestLargestAppMsgBytes(t *testing.T) {
	p := PaperProfile(100, 40, 16)
	items := p.LargestAppMsgBytes(200) // 2 windows -> 32 bytes demand
	var total int64
	for _, it := range items {
		total += it
	}
	if total < 32 || total >= 32+2 {
		t.Errorf("message demand total = %d, want [32,34)", total)
	}
}

func TestLargestAppShortHorizon(t *testing.T) {
	p := PaperProfile(1000, 40, 16)
	items := p.LargestAppWCETs(100) // horizon < Tmin: one window
	var total int64
	for _, it := range items {
		total += it
	}
	if total < 40 {
		t.Errorf("short-horizon demand = %d, want >= 40", total)
	}
}

func TestExpandZeroDemand(t *testing.T) {
	p := &Profile{Tmin: 10, TNeed: 0, BNeedBytes: 0,
		WCET: []Bin{{Size: 10, Prob: 1}}, MsgBytes: []Bin{{Size: 2, Prob: 1}}}
	if items := p.LargestAppWCETs(100); len(items) != 0 {
		t.Errorf("zero demand produced items %v", items)
	}
}

func TestExpandProportions(t *testing.T) {
	// Single-size distribution must produce demand/size items.
	p := &Profile{Tmin: tm.Time(100), TNeed: 50, BNeedBytes: 0,
		WCET: []Bin{{Size: 10, Prob: 1}}, MsgBytes: []Bin{{Size: 2, Prob: 1}}}
	items := p.LargestAppWCETs(100)
	if len(items) != 5 {
		t.Errorf("%d items, want 5", len(items))
	}
}
