// Package future implements the paper's characterization of the family of
// applications expected to be added to the system later. Nothing concrete
// is known about them at design time; the family is described by its most
// demanding member — smallest expected period Tmin, expected processor
// time TNeed needed inside every Tmin window, expected bus capacity
// BNeedBytes inside every Tmin window — together with discrete probability
// distributions of typical process WCETs and message sizes (the histograms
// on slide 10 of the paper's presentation).
package future

import (
	"fmt"
	"math"
	"sort"

	"incdes/internal/tm"
)

// Bin is one column of a discrete size distribution: values of this Size
// occur with probability Prob.
type Bin struct {
	Size int64   `json:"size"`
	Prob float64 `json:"prob"`
}

// Profile characterizes the most demanding expected future application.
type Profile struct {
	// Tmin is the smallest expected period of any future process graph.
	Tmin tm.Time `json:"tmin"`
	// TNeed is the processor time the future application is expected to
	// need inside every Tmin window.
	TNeed tm.Time `json:"tneed"`
	// BNeedBytes is the bus capacity (bytes) the future application is
	// expected to need inside every Tmin window.
	BNeedBytes int64 `json:"bneed_bytes"`
	// WCET is the distribution of typical future process WCETs (sizes in
	// time units).
	WCET []Bin `json:"wcet"`
	// MsgBytes is the distribution of typical future message sizes.
	MsgBytes []Bin `json:"msg_bytes"`
}

// Validate checks the profile's internal consistency.
func (p *Profile) Validate() error {
	if p.Tmin <= 0 {
		return fmt.Errorf("future: Tmin %v must be positive", p.Tmin)
	}
	if p.TNeed < 0 || p.BNeedBytes < 0 {
		return fmt.Errorf("future: needs must be non-negative (tneed %v, bneed %d)", p.TNeed, p.BNeedBytes)
	}
	for _, d := range []struct {
		name string
		bins []Bin
	}{{"WCET", p.WCET}, {"MsgBytes", p.MsgBytes}} {
		if len(d.bins) == 0 {
			return fmt.Errorf("future: %s distribution is empty", d.name)
		}
		var sum float64
		for _, b := range d.bins {
			if b.Size <= 0 {
				return fmt.Errorf("future: %s bin size %d must be positive", d.name, b.Size)
			}
			if b.Prob < 0 {
				return fmt.Errorf("future: %s bin probability %v must be non-negative", d.name, b.Prob)
			}
			sum += b.Prob
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("future: %s probabilities sum to %v, want 1", d.name, sum)
		}
	}
	return nil
}

// expand deterministically turns a size distribution into a multiset of
// item sizes whose total is at least demand (and exceeds it by at most the
// largest bin size), with per-size counts proportional to the
// distribution. Deterministic expansion keeps the C1 metric stable across
// evaluations of the same design alternative.
func expand(bins []Bin, demand int64) []int64 {
	if demand <= 0 {
		return nil
	}
	sorted := append([]Bin(nil), bins...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Size > sorted[j].Size })
	var items []int64
	var total int64
	// Proportional shares first.
	for _, b := range sorted {
		share := int64(float64(demand) * b.Prob)
		n := share / b.Size
		for i := int64(0); i < n; i++ {
			items = append(items, b.Size)
		}
		total += n * b.Size
	}
	// Top off with the smallest size until the demand is covered.
	smallest := sorted[len(sorted)-1].Size
	for total < demand {
		items = append(items, smallest)
		total += smallest
	}
	sort.Slice(items, func(i, j int) bool { return items[i] > items[j] })
	return items
}

// LargestAppWCETs returns the process WCETs of the largest expected future
// application over a schedule horizon: total processor demand
// TNeed * (horizon / Tmin), split into processes per the WCET
// distribution, in decreasing size order.
func (p *Profile) LargestAppWCETs(horizon tm.Time) []int64 {
	windows := int64(horizon / p.Tmin)
	if windows == 0 {
		windows = 1
	}
	return expand(p.WCET, int64(p.TNeed)*windows)
}

// LargestAppMsgBytes returns the message sizes of the largest expected
// future application over a schedule horizon: total bus demand
// BNeedBytes * (horizon / Tmin), split per the message size distribution,
// in decreasing size order.
func (p *Profile) LargestAppMsgBytes(horizon tm.Time) []int64 {
	windows := int64(horizon / p.Tmin)
	if windows == 0 {
		windows = 1
	}
	return expand(p.MsgBytes, p.BNeedBytes*windows)
}

// PaperProfile returns the future-application characterization shown in
// the paper's presentation (slide 10): WCETs of 20/50/100/150 time units
// with probabilities 10/25/45/20 %, message sizes of 2/4/6/8 bytes with
// probabilities 20/50/20/10 %.
func PaperProfile(tmin, tneed tm.Time, bneedBytes int64) *Profile {
	return &Profile{
		Tmin:       tmin,
		TNeed:      tneed,
		BNeedBytes: bneedBytes,
		WCET: []Bin{
			{Size: 20, Prob: 0.10},
			{Size: 50, Prob: 0.25},
			{Size: 100, Prob: 0.45},
			{Size: 150, Prob: 0.20},
		},
		MsgBytes: []Bin{
			{Size: 2, Prob: 0.20},
			{Size: 4, Prob: 0.50},
			{Size: 6, Prob: 0.20},
			{Size: 8, Prob: 0.10},
		},
	}
}
