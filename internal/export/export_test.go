package export

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

func exportState(t *testing.T) *sched.State {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2)
	g := b.App("a").Graph("G", 100, 100)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n1: 15})
	g.Msg(p1, p2, 4)
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: n0, p2: n1}, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuildDesign(t *testing.T) {
	d, err := Build(exportState(t))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if d.Horizon != 100 || d.RoundLen != 20 {
		t.Errorf("header = %v/%v", d.Horizon, d.RoundLen)
	}
	if len(d.Nodes) != 2 {
		t.Fatalf("%d node tables", len(d.Nodes))
	}
	if len(d.Nodes[0].Entries) != 1 || d.Nodes[0].Entries[0].Proc != 0 {
		t.Errorf("node 0 table = %+v", d.Nodes[0])
	}
	if len(d.MEDL) != 1 || d.MEDL[0].Msg != 0 {
		t.Errorf("MEDL = %+v", d.MEDL)
	}
	if d.Mapping[0] != 0 || d.Mapping[1] != 1 {
		t.Errorf("mapping = %v", d.Mapping)
	}
}

func TestDesignJSONRoundTrip(t *testing.T) {
	d, err := Build(exportState(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Error("JSON round trip changed the design")
	}
}

func TestDesignText(t *testing.T) {
	d, err := Build(exportState(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dispatch table", "MEDL", "node N0"} {
		if !strings.Contains(out, want) {
			t.Errorf("text export missing %q:\n%s", want, out)
		}
	}
}

func TestDesignBinaryRoundTrip(t *testing.T) {
	d, err := Build(exportState(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if got.Horizon != d.Horizon || got.RoundLen != d.RoundLen {
		t.Errorf("header changed: %v/%v", got.Horizon, got.RoundLen)
	}
	if len(got.Nodes) != len(d.Nodes) {
		t.Fatalf("node tables: %d vs %d", len(got.Nodes), len(d.Nodes))
	}
	for i := range d.Nodes {
		if !reflect.DeepEqual(got.Nodes[i], d.Nodes[i]) {
			t.Errorf("node table %d changed", i)
		}
	}
	if len(got.MEDL) != len(d.MEDL) {
		t.Fatalf("MEDL length changed")
	}
	for i := range d.MEDL {
		g, w := got.MEDL[i], d.MEDL[i]
		if g.Round != w.Round || g.Slot != w.Slot || g.Offset != w.Offset ||
			g.Msg != w.Msg || g.Occ != w.Occ || g.Bytes != w.Bytes {
			t.Errorf("MEDL entry %d changed: %+v vs %+v", i, g, w)
		}
	}
	if !reflect.DeepEqual(got.Mapping, d.Mapping) {
		t.Errorf("mapping not reconstructed: %v vs %v", got.Mapping, d.Mapping)
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	d, err := Build(exportState(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), img...)
	bad[20] ^= 0xFF
	if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted image decoded")
	}
	// Truncate: must fail cleanly.
	if _, err := DecodeBinary(bytes.NewReader(img[:len(img)-6])); err == nil {
		t.Error("truncated image decoded")
	}
	// Wrong magic.
	bad = append([]byte(nil), img...)
	bad[0] = 'X'
	if _, err := DecodeBinary(bytes.NewReader(bad)); err == nil {
		t.Error("wrong magic accepted")
	}
}

func TestBuildOnGeneratedCase(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 4
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 8
	tc, err := gen.MakeTestCase(cfg, 17, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(tc.Base)
	if err != nil {
		t.Fatalf("Build on generated schedule: %v", err)
	}
	var buf bytes.Buffer
	if err := d.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinary(&buf); err != nil {
		t.Fatalf("round trip on generated design: %v", err)
	}
	// Every scheduled activation appears in exactly one dispatch table.
	total := 0
	for _, nt := range d.Nodes {
		total += len(nt.Entries)
	}
	if total != len(tc.Base.ProcEntries()) {
		t.Errorf("%d dispatch entries for %d schedule entries", total, len(tc.Base.ProcEntries()))
	}
}
