package export

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"incdes/internal/model"
	"incdes/internal/tm"
	"incdes/internal/ttp"
)

// Binary design image, the form a flashing tool would consume:
//
//	[8]  magic "INCDSGN1"
//	[8]  horizon (int64 BE)     [8] round length (int64 BE)
//	[4]  node table count
//	per node table:
//	  [4] node id | [4] entry count
//	  per entry: [8] start | [8] end | [4] proc | [4] occ | [4] app
//	[4]  MEDL entry count
//	  per entry: [4] round | [4] slot | [4] offset | [4] msg | [4] occ | [4] bytes
//	[4]  IEEE CRC-32 of everything before it
//
// The mapping is not encoded separately — it is implied by the dispatch
// tables (every process appears on exactly one node).

var binaryMagic = [8]byte{'I', 'N', 'C', 'D', 'S', 'G', 'N', '1'}

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// EncodeBinary writes the compact checksummed design image.
func (d *Design) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	put := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Write(cw, binary.BigEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := cw.Write(binaryMagic[:]); err != nil {
		return err
	}
	if err := put(int64(d.Horizon), int64(d.RoundLen), uint32(len(d.Nodes))); err != nil {
		return err
	}
	for _, nt := range d.Nodes {
		if err := put(int32(nt.Node), uint32(len(nt.Entries))); err != nil {
			return err
		}
		for _, e := range nt.Entries {
			if err := put(int64(e.Start), int64(e.End), int32(e.Proc), int32(e.Occ), int32(e.App)); err != nil {
				return err
			}
		}
	}
	if err := put(uint32(len(d.MEDL))); err != nil {
		return err
	}
	for _, e := range d.MEDL {
		if err := put(int32(e.Round), int32(e.Slot), int32(e.Offset),
			int32(e.Msg), int32(e.Occ), int32(e.Bytes)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.BigEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeBinary parses an image produced by EncodeBinary, verifying magic
// and checksum. Bus-side timing fields of the MEDL (owner, start, end)
// are not part of the image; callers needing them should re-derive from
// the bus description.
func DecodeBinary(r io.Reader) (*Design, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	get := func(vs ...interface{}) error {
		for _, v := range vs {
			if err := binary.Read(cr, binary.BigEndian, v); err != nil {
				return err
			}
		}
		return nil
	}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("export: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("export: bad magic %q", magic)
	}
	var horizon, roundLen int64
	var nodeCount uint32
	if err := get(&horizon, &roundLen, &nodeCount); err != nil {
		return nil, fmt.Errorf("export: reading header: %w", err)
	}
	const maxCount = 1 << 24 // sanity bound against corrupted images
	if nodeCount > maxCount {
		return nil, fmt.Errorf("export: implausible node count %d", nodeCount)
	}
	d := &Design{
		Horizon:  tm.Time(horizon),
		RoundLen: tm.Time(roundLen),
		Mapping:  model.Mapping{},
	}
	for i := uint32(0); i < nodeCount; i++ {
		var node int32
		var entryCount uint32
		if err := get(&node, &entryCount); err != nil {
			return nil, fmt.Errorf("export: reading node table %d: %w", i, err)
		}
		if entryCount > maxCount {
			return nil, fmt.Errorf("export: implausible entry count %d", entryCount)
		}
		nt := NodeTable{Node: model.NodeID(node)}
		for j := uint32(0); j < entryCount; j++ {
			var start, end int64
			var proc, occ, app int32
			if err := get(&start, &end, &proc, &occ, &app); err != nil {
				return nil, fmt.Errorf("export: reading dispatch entry: %w", err)
			}
			nt.Entries = append(nt.Entries, DispatchEntry{
				Start: tm.Time(start), End: tm.Time(end),
				Proc: model.ProcID(proc), Occ: int(occ), App: model.AppID(app),
			})
			d.Mapping[model.ProcID(proc)] = model.NodeID(node)
		}
		d.Nodes = append(d.Nodes, nt)
	}
	var medlCount uint32
	if err := get(&medlCount); err != nil {
		return nil, fmt.Errorf("export: reading MEDL count: %w", err)
	}
	if medlCount > maxCount {
		return nil, fmt.Errorf("export: implausible MEDL count %d", medlCount)
	}
	for i := uint32(0); i < medlCount; i++ {
		var round, slot, offset, msg, occ, bytes int32
		if err := get(&round, &slot, &offset, &msg, &occ, &bytes); err != nil {
			return nil, fmt.Errorf("export: reading MEDL entry: %w", err)
		}
		d.MEDL = append(d.MEDL, ttp.MEDLEntry{
			Round: int(round), Slot: int(slot), Offset: int(offset),
			Msg: model.MsgID(msg), Occ: int(occ), Bytes: int(bytes),
		})
	}
	computed := cr.crc
	var stored uint32
	if err := binary.Read(cr.r, binary.BigEndian, &stored); err != nil {
		return nil, fmt.Errorf("export: reading checksum: %w", err)
	}
	if computed != stored {
		return nil, fmt.Errorf("export: checksum mismatch: computed %08x, stored %08x", computed, stored)
	}
	return d, nil
}
