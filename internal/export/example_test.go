package export_test

import (
	"fmt"
	"log"
	"os"

	"incdes/internal/export"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// ExampleBuild turns a finished schedule into dispatch tables and a MEDL
// and prints them in the text form a design review would read.
func ExampleBuild() {
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2)
	g := b.App("demo").Graph("G", 100, 100)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n1: 15})
	g.Msg(p1, p2, 4)
	sys := b.MustSystem()

	st, err := sched.NewState(sys)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: n0, p2: n1}, sched.Hints{}); err != nil {
		log.Fatal(err)
	}
	design, err := export.Build(st)
	if err != nil {
		log.Fatal(err)
	}
	if err := design.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: %d problems\n", len(export.Check(design, sys, sys.Apps...)))
	// Output:
	// design over 100tu (TDMA round 20tu)
	// node N0 dispatch table (1 activations):
	//        0tu  run process 0     occ 0   (app 0) until 10tu
	// node N1 dispatch table (1 activations):
	//       30tu  run process 1     occ 0   (app 0) until 45tu
	// MEDL (1 entries):
	//   round    1 slot  0 offset  0B: msg 0     occ 0   4B
	// verification: 0 problems
}
