// Package export turns a finished schedule into the artifacts a
// time-triggered deployment consumes: one static dispatch table per node
// (the process activation times a TTP node's kernel executes verbatim)
// and the bus MEDL. Designs serialize to JSON, human-readable text, and a
// compact checksummed binary image suitable for flashing tools.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
	"incdes/internal/ttp"
)

// DispatchEntry is one activation in a node's static dispatch table.
type DispatchEntry struct {
	Start tm.Time      `json:"start"`
	End   tm.Time      `json:"end"`
	Proc  model.ProcID `json:"proc"`
	Occ   int          `json:"occ"`
	App   model.AppID  `json:"app"`
}

// NodeTable is the complete dispatch table of one node over the horizon.
type NodeTable struct {
	Node    model.NodeID    `json:"node"`
	Entries []DispatchEntry `json:"entries"`
}

// Design is the deployable output of the design process. RoundLen is
// the first bus's TDMA round; RoundLens lists every bus's round length
// and is only present for multi-cluster designs, so single-bus designs
// serialize exactly as they always have.
type Design struct {
	Horizon   tm.Time                       `json:"horizon"`
	RoundLen  tm.Time                       `json:"round_len"`
	RoundLens []tm.Time                     `json:"round_lens,omitempty"`
	Mapping   map[model.ProcID]model.NodeID `json:"mapping"`
	Nodes     []NodeTable                   `json:"nodes"`
	MEDL      []ttp.MEDLEntry               `json:"medl"`
}

// Build extracts the deployable design from a schedule state.
func Build(st *sched.State) (*Design, error) {
	arch := st.System().Arch
	d := &Design{
		Horizon:  st.Horizon(),
		RoundLen: arch.Buses[0].RoundLen(),
		Mapping:  st.Mapping().Clone(),
	}
	if len(arch.Buses) > 1 {
		d.RoundLens = make([]tm.Time, len(arch.Buses))
		for i, b := range arch.Buses {
			d.RoundLens[i] = b.RoundLen()
		}
	}
	byNode := map[model.NodeID][]DispatchEntry{}
	for _, e := range st.ProcEntries() {
		byNode[e.Node] = append(byNode[e.Node], DispatchEntry{
			Start: e.Start, End: e.End, Proc: e.Proc, Occ: e.Occ, App: e.App,
		})
	}
	for _, n := range st.System().Arch.NodeIDs() {
		entries := byNode[n]
		sort.Slice(entries, func(i, j int) bool { return entries[i].Start < entries[j].Start })
		for i := 1; i < len(entries); i++ {
			if entries[i].Start < entries[i-1].End {
				return nil, fmt.Errorf("export: node %d dispatch table overlaps at %v", n, entries[i].Start)
			}
		}
		d.Nodes = append(d.Nodes, NodeTable{Node: n, Entries: entries})
	}
	placements := make([]ttp.Placement, 0, len(st.MsgEntries()))
	for _, e := range st.MsgEntries() {
		placements = append(placements, ttp.Placement{
			Msg: e.Msg, Occ: e.Occ, Round: e.Round, Slot: e.Slot, Bytes: e.Bytes,
			Bus: e.Bus, Hop: e.Hop,
		})
	}
	medl, err := ttp.BuildMEDLAll(arch.Buses, placements)
	if err != nil {
		return nil, err
	}
	d.MEDL = medl
	return d, nil
}

// WriteJSON serializes the design as indented JSON.
func (d *Design) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("export: encode design: %w", err)
	}
	return nil
}

// ReadDesign parses a design from JSON.
func ReadDesign(r io.Reader) (*Design, error) {
	var d Design
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("export: decode design: %w", err)
	}
	return &d, nil
}

// WriteText renders the design as aligned human-readable tables.
func (d *Design) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "design over %v (TDMA round %v)\n", d.Horizon, d.RoundLen); err != nil {
		return err
	}
	for _, nt := range d.Nodes {
		fmt.Fprintf(w, "node N%d dispatch table (%d activations):\n", nt.Node, len(nt.Entries))
		for _, e := range nt.Entries {
			fmt.Fprintf(w, "  %8v  run process %-5d occ %-3d (app %d) until %v\n",
				e.Start, e.Proc, e.Occ, e.App, e.End)
		}
	}
	fmt.Fprintf(w, "MEDL (%d entries):\n", len(d.MEDL))
	for _, e := range d.MEDL {
		fmt.Fprintf(w, "  round %4d slot %2d offset %2dB: msg %-5d occ %-3d %dB\n",
			e.Round, e.Slot, e.Offset, e.Msg, e.Occ, e.Bytes)
	}
	return nil
}
