package export

import (
	"testing"

	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/sched"
)

func TestCheckAcceptsBuiltDesign(t *testing.T) {
	st := exportState(t)
	d, err := Build(st)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(d, st.System(), st.System().Apps...); len(errs) != 0 {
		t.Fatalf("valid design rejected: %v", errs[0])
	}
}

func TestCheckDetectsTampering(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(d *Design)
	}{
		{"missing process", func(d *Design) {
			d.Nodes[0].Entries = nil
		}},
		{"wrong wcet", func(d *Design) {
			d.Nodes[0].Entries[0].End++
		}},
		{"deadline miss", func(d *Design) {
			e := &d.Nodes[0].Entries[0]
			e.Start += 95
			e.End += 95
		}},
		{"missing medl entry", func(d *Design) {
			d.MEDL = nil
		}},
		{"slot ownership", func(d *Design) {
			d.MEDL[0].Slot = 1
			// keep round/offset; slot 1 belongs to the receiver
		}},
		{"duplicate dispatch", func(d *Design) {
			d.Nodes[0].Entries = append(d.Nodes[0].Entries, d.Nodes[0].Entries[0])
		}},
		{"wrong message size", func(d *Design) {
			d.MEDL[0].Bytes = 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := exportState(t)
			d, err := Build(st)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(d)
			if errs := Check(d, st.System(), st.System().Apps...); len(errs) == 0 {
				t.Errorf("%s not detected", tc.name)
			}
		})
	}
}

func TestCheckGeneratedDesigns(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 5
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 10
	for seed := int64(0); seed < 4; seed++ {
		tc, err := gen.MakeTestCase(cfg, seed, 40, 20)
		if err != nil {
			t.Fatal(err)
		}
		st := tc.Base.Clone()
		if _, err := st.MapApp(tc.Current, sched.Hints{}); err != nil {
			t.Fatal(err)
		}
		d, err := Build(st)
		if err != nil {
			t.Fatal(err)
		}
		apps := append(append([]*model.Application{}, tc.Existing...), tc.Current)
		if errs := Check(d, tc.Sys, apps...); len(errs) != 0 {
			t.Fatalf("seed %d: generated design rejected: %v", seed, errs[0])
		}
	}
}
