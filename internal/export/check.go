package export

import (
	"fmt"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// Check validates a deployable design against the system model it claims
// to implement — the last line of defense before a design image reaches a
// flashing tool, and deliberately independent of the scheduler that
// produced it. It verifies:
//
//   - every process occurrence of every application appears exactly once,
//     on a node its WCET table allows, running for exactly its WCET,
//     inside its release/deadline window;
//   - dispatch tables are sorted and non-overlapping;
//   - every inter-node message occurrence appears in the MEDL as a full
//     hop chain along the architecture's deterministic route — every hop
//     in a slot owned by its transmitting node on the route's bus,
//     ordered strictly after the previous hop's arrival (hop 0 after the
//     producer finishes), arriving before the consumer starts, without
//     overflowing any slot capacity;
//   - co-located message occurrences do not appear in the MEDL, and the
//     consumer starts after the producer finishes.
//
// The route each chain is checked against comes from model.BuildRoutes,
// recomputed here rather than trusted from the design, so a scheduler
// that picked a non-canonical route is caught.
func Check(d *Design, sys *model.System, apps ...*model.Application) []string {
	var errs []string
	report := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	buses := sys.Arch.Buses
	routes, rerr := model.BuildRoutes(sys.Arch)
	if rerr != nil {
		report("architecture has no route table: %v", rerr)
	}

	type key struct {
		proc model.ProcID
		occ  int
	}
	entryAt := map[key]DispatchEntry{}
	nodeOf := map[key]model.NodeID{}
	for _, nt := range d.Nodes {
		if sys.Arch.Node(nt.Node) == nil {
			report("dispatch table for unknown node %d", nt.Node)
			continue
		}
		var prev DispatchEntry
		for i, e := range nt.Entries {
			if i > 0 && e.Start < prev.End {
				report("node %d: activation of process %d occ %d at %v overlaps previous ending %v",
					nt.Node, e.Proc, e.Occ, e.Start, prev.End)
			}
			prev = e
			k := key{e.Proc, e.Occ}
			if _, dup := entryAt[k]; dup {
				report("process %d occ %d dispatched more than once", e.Proc, e.Occ)
				continue
			}
			entryAt[k] = e
			nodeOf[k] = nt.Node
		}
	}

	type mkey struct {
		msg model.MsgID
		occ int
		hop int
	}
	medlAt := map[mkey]MEDLIndexEntry{}
	hopCount := map[[2]int]int{} // (msg, occ) -> number of MEDL hops
	slotLoad := map[[3]int]int{} // (bus, round, slot) -> bytes
	for _, e := range d.MEDL {
		if int(e.Bus) < 0 || int(e.Bus) >= len(buses) {
			report("message %d occ %d hop %d on nonexistent bus %d", e.Msg, e.Occ, e.Hop, e.Bus)
			continue
		}
		bus := buses[e.Bus]
		k := mkey{e.Msg, e.Occ, e.Hop}
		if _, dup := medlAt[k]; dup {
			report("message %d occ %d in the MEDL more than once", e.Msg, e.Occ)
			continue
		}
		if e.Slot < 0 || e.Slot >= bus.NumSlots() {
			report("message %d occ %d in nonexistent slot %d", e.Msg, e.Occ, e.Slot)
			continue
		}
		medlAt[k] = MEDLIndexEntry{
			Bus:    e.Bus,
			Owner:  bus.SlotOrder[e.Slot],
			Start:  bus.SlotStart(e.Round, e.Slot),
			Arrive: bus.SlotEnd(e.Round, e.Slot),
			Bytes:  e.Bytes,
		}
		hopCount[[2]int{int(e.Msg), e.Occ}]++
		slotLoad[[3]int{int(e.Bus), e.Round, e.Slot}] += e.Bytes
	}
	for k, load := range slotLoad {
		if load > buses[k[0]].SlotBytes[k[2]] {
			report("slot occurrence (round %d, slot %d) carries %d bytes, capacity %d",
				k[1], k[2], load, buses[k[0]].SlotBytes[k[2]])
		}
	}

	for _, app := range apps {
		for _, g := range app.Graphs {
			occs := int(d.Horizon / g.Period)
			for occ := 0; occ < occs; occ++ {
				release := tm.Time(occ) * g.Period
				deadline := release + g.Deadline
				for _, p := range g.Procs {
					k := key{p.ID, occ}
					e, ok := entryAt[k]
					if !ok {
						report("process %d (%s) occ %d missing from every dispatch table", p.ID, p.Name, occ)
						continue
					}
					node := nodeOf[k]
					w, allowed := p.WCET[node]
					switch {
					case !allowed:
						report("process %d occ %d dispatched on disallowed node %d", p.ID, occ, node)
					case e.End-e.Start != w:
						report("process %d occ %d runs %v, WCET on node %d is %v", p.ID, occ, e.End-e.Start, node, w)
					}
					if e.Start < release || e.End > deadline {
						report("process %d occ %d runs [%v,%v) outside [%v,%v]", p.ID, occ, e.Start, e.End, release, deadline)
					}
				}
				for _, m := range g.Msgs {
					src, okS := entryAt[key{m.Src, occ}]
					dst, okD := entryAt[key{m.Dst, occ}]
					if !okS || !okD {
						continue // already reported as missing
					}
					srcNode, dstNode := nodeOf[key{m.Src, occ}], nodeOf[key{m.Dst, occ}]
					hops := hopCount[[2]int{int(m.ID), occ}]
					if srcNode == dstNode {
						if hops > 0 {
							report("message %d occ %d between co-located processes is in the MEDL", m.ID, occ)
						}
						if dst.Start < src.End {
							report("message %d occ %d: consumer starts %v before producer ends %v",
								m.ID, occ, dst.Start, src.End)
						}
						continue
					}
					if hops == 0 {
						report("inter-node message %d occ %d missing from the MEDL", m.ID, occ)
						continue
					}
					if routes == nil {
						continue // no oracle to check the chain against
					}
					route := routes.Route(srcNode, dstNode)
					if hops != len(route) {
						report("message %d occ %d has %d MEDL hops, route from node %d to node %d has %d",
							m.ID, occ, hops, srcNode, dstNode, len(route))
						continue
					}
					prevArrive := src.End
					for i, hop := range route {
						me, ok := medlAt[mkey{m.ID, occ, i}]
						if !ok {
							report("message %d occ %d hop %d missing from the MEDL", m.ID, occ, i)
							break
						}
						if me.Bus != hop.Bus {
							report("message %d occ %d hop %d on bus %d, route says bus %d",
								m.ID, occ, i, me.Bus, hop.Bus)
						}
						if me.Owner != hop.From {
							report("message %d occ %d in a slot owned by node %d, producer on node %d",
								m.ID, occ, me.Owner, hop.From)
						}
						if me.Start < prevArrive {
							if i == 0 {
								report("message %d occ %d slot starts %v before producer ends %v", m.ID, occ, me.Start, prevArrive)
							} else {
								report("message %d occ %d hop %d slot starts %v before hop %d arrives %v",
									m.ID, occ, i, me.Start, i-1, prevArrive)
							}
						}
						if me.Bytes != m.Bytes {
							report("message %d occ %d carries %d bytes, model says %d", m.ID, occ, me.Bytes, m.Bytes)
						}
						prevArrive = me.Arrive
					}
					if dst.Start < prevArrive {
						report("message %d occ %d consumer starts %v before arrival %v", m.ID, occ, dst.Start, prevArrive)
					}
				}
			}
		}
	}
	return errs
}

// MEDLIndexEntry is the resolved timing of one MEDL line, derived from
// the bus description during Check.
type MEDLIndexEntry struct {
	Bus    model.BusID
	Owner  model.NodeID
	Start  tm.Time
	Arrive tm.Time
	Bytes  int
}
