package export

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeBinary hardens the design-image parser: arbitrary input must
// never panic or allocate absurdly, and every accepted image must
// re-encode byte-identically.
func FuzzDecodeBinary(f *testing.F) {
	var buf bytes.Buffer
	d := &Design{Horizon: 100, RoundLen: 20}
	d.Nodes = []NodeTable{{Node: 0, Entries: []DispatchEntry{{Start: 0, End: 10, Proc: 1}}}}
	if err := d.EncodeBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("INCDSGN1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var back bytes.Buffer
		if err := got.EncodeBinary(&back); err != nil {
			t.Fatalf("accepted image failed to re-encode: %v", err)
		}
		if !bytes.Equal(back.Bytes(), data) {
			t.Fatalf("decode/encode not inverse (%d vs %d bytes)", back.Len(), len(data))
		}
	})
}

// FuzzReadDesign hardens the JSON reader against malformed documents.
func FuzzReadDesign(f *testing.F) {
	f.Add(`{"horizon":100,"round_len":20,"mapping":{},"nodes":null,"medl":null}`)
	f.Add(`{`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, data string) {
		d, err := ReadDesign(strings.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parses must serialize again.
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted design failed to serialize: %v", err)
		}
	})
}
