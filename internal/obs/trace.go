package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceEvent is one structured observation of a strategy run. The
// engine emits events only from deterministic serialization points
// (after each MH iteration's parallel reduce, after SA's chains have
// been joined), so for a fixed problem and options the event stream is
// identical at every parallelism level — the golden-trace test pins
// this. Wall-clock quantities deliberately never appear in a trace.
//
// Event kinds and the fields they carry:
//
//	solve.start  Strategy
//	init         Strategy, Cost            — the initial (IM) design
//	candidate    Iter, Index, Cost, Feasible — one examined MH alternative
//	move         Iter, Index, Cost         — the applied MH transformation
//	stop         Iter, Note                — MH termination reason
//	sa.best      Chain, Iter, Cost         — a chain found a new best
//	sa.window    Chain, Iter, Accepts, Rejects — cooling-window statistics
//	sa.chain     Chain, Cost               — a chain's final best
//	portfolio.lane Strategy, Chain, Cost, Evaluations, Feasible — a race lane's outcome
//	decision     Strategy, Chain, Cost     — the winning design
//	solve.done   Strategy, Cost, Evaluations
//
// Seq is assigned by the sink in arrival order (1-based).
type TraceEvent struct {
	Seq         int64   `json:"seq"`
	Kind        string  `json:"kind"`
	Strategy    string  `json:"strategy,omitempty"`
	Chain       int     `json:"chain,omitempty"`
	Iter        int     `json:"iter,omitempty"`
	Index       int     `json:"index,omitempty"`
	Cost        float64 `json:"cost,omitempty"`
	Feasible    bool    `json:"feasible,omitempty"`
	Accepts     int64   `json:"accepts,omitempty"`
	Rejects     int64   `json:"rejects,omitempty"`
	Evaluations int64   `json:"evals,omitempty"`
	Note        string  `json:"note,omitempty"`
}

// Tracer is a sink for trace events. Implementations must be safe for
// concurrent use (several Solve calls may share one sink) and must
// assign Seq themselves.
type Tracer interface {
	Trace(ev TraceEvent)
}

// JSONLWriter encodes each event as one JSON line. Create with
// NewJSONLWriter; call Flush before closing the underlying writer.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	seq int64
	err error
}

// NewJSONLWriter returns a tracer writing JSONL to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Trace writes one event line. The first encoding error is retained
// (see Err); later events are still attempted so a full trace after a
// transient error stays mostly intact.
func (t *JSONLWriter) Trace(ev TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	if err := t.enc.Encode(ev); err != nil && t.err == nil {
		t.err = err
	}
}

// Flush drains the internal buffer and returns the first error seen.
func (t *JSONLWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the first error encountered while writing.
func (t *JSONLWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Collector retains events in memory; the test and plotting sink.
type Collector struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Trace appends one event.
func (c *Collector) Trace(ev TraceEvent) {
	c.mu.Lock()
	ev.Seq = int64(len(c.events)) + 1
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a copy of the collected events in arrival order.
func (c *Collector) Events() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceEvent(nil), c.events...)
}

// Reset drops all collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = c.events[:0]
	c.mu.Unlock()
}

// MultiTracer fans each event out to several sinks.
func MultiTracer(sinks ...Tracer) Tracer { return multiTracer(sinks) }

type multiTracer []Tracer

func (m multiTracer) Trace(ev TraceEvent) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// ReadTrace decodes a JSONL trace stream. It fails on the first
// malformed line, reporting its position.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var events []TraceEvent
	dec := json.NewDecoder(r)
	for {
		var ev TraceEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: trace event %d: %w", len(events)+1, err)
		}
		events = append(events, ev)
	}
}

// CostCurve extracts the cost trajectory of a trace: the Cost of every
// event that records a design the search committed to or improved on
// (init, move, sa.best, decision). Feed it to textplot.Convergence to
// render the cost-vs-iteration curve.
func CostCurve(events []TraceEvent) []float64 {
	var costs []float64
	for _, ev := range events {
		switch ev.Kind {
		case "init", "move", "sa.best", "decision":
			costs = append(costs, ev.Cost)
		}
	}
	return costs
}

// FinalCost returns the cost recorded by the last solve.done event, and
// whether one exists — the replay check: a trace's final cost must equal
// the Solve call's reported objective.
func FinalCost(events []TraceEvent) (float64, bool) {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == "solve.done" {
			return events[i].Cost, true
		}
	}
	return 0, false
}
