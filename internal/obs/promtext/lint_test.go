package promtext

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"incdes/internal/obs"
)

// lint is a convenience wrapper joining the problems for match checks.
func lint(doc string) []string {
	return Lint(strings.NewReader(doc))
}

func assertProblem(t *testing.T, problems []string, want string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, want) {
			return
		}
	}
	t.Errorf("lint problems %q missing one containing %q", problems, want)
}

func TestLintCleanDocument(t *testing.T) {
	doc := `# HELP reqs requests served
# TYPE reqs counter
reqs{code="200"} 10
reqs{code="500"} 1
# HELP lat latency
# TYPE lat histogram
lat_bucket{le="0.1"} 3
lat_bucket{le="1"} 7
lat_bucket{le="+Inf"} 9
lat_sum 4.2
lat_count 9
`
	if problems := lint(doc); len(problems) != 0 {
		t.Errorf("clean document flagged: %q", problems)
	}
}

func TestLintRealRender(t *testing.T) {
	// A real registry render must lint clean — this closes the loop
	// between the writer and the validator.
	r := obs.NewRegistry()
	for _, ins := range obs.Catalog() {
		switch ins.Kind {
		case obs.KindCounter:
			r.Counter(ins.Name).Inc()
		case obs.KindGauge:
			r.Gauge(ins.Name).Set(1)
		case obs.KindTimer:
			r.Timer(ins.Name).Observe(time.Millisecond)
		case obs.KindHistogram:
			h := r.Histogram(ins.Name)
			h.Observe(0.0004)
			h.Observe(0.02)
			h.Observe(3)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, DefaultNamespace, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if problems := Lint(bytes.NewReader(buf.Bytes())); len(problems) != 0 {
		t.Errorf("rendered catalog fails lint: %q\n%s", problems, buf.String())
	}
}

func TestLintMissingHelpAndType(t *testing.T) {
	problems := lint("orphan 1\n")
	assertProblem(t, problems, "metric orphan: missing HELP")
	assertProblem(t, problems, "metric orphan: missing TYPE")
}

func TestLintDuplicateSeries(t *testing.T) {
	doc := `# HELP m x
# TYPE m gauge
m{a="1",b="2"} 1
m{b="2",a="1"} 2
`
	// Same label set in a different order is still the same series.
	assertProblem(t, lint(doc), "duplicate series")
}

func TestLintDuplicateType(t *testing.T) {
	doc := `# TYPE m gauge
# TYPE m counter
# HELP m x
m 1
`
	assertProblem(t, lint(doc), "duplicate TYPE for m")
}

func TestLintHistogramProblems(t *testing.T) {
	head := "# HELP h x\n# TYPE h histogram\n"
	cases := []struct {
		name, body, want string
	}{
		{"le out of order", "h_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", `le "0.5" out of order`},
		{"non-monotone", "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "below previous"},
		{"missing inf", "h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing +Inf bucket"},
		{"count mismatch", "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", "_count 3 != +Inf bucket 2"},
		{"missing sum", "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "missing _sum"},
		{"missing count", "h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n", "missing _count"},
		{"no le label", "h_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "without le label"},
		{"bad le", "h_bucket{le=\"wat\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", `unparseable le "wat"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			assertProblem(t, lint(head+c.body), c.want)
		})
	}
}

func TestLintHistogramLabelSetsIndependent(t *testing.T) {
	// Two label sets of one histogram accumulate separately: a clean
	// pair must not be cross-contaminated.
	doc := `# HELP h x
# TYPE h histogram
h_bucket{s="a",le="1"} 1
h_bucket{s="a",le="+Inf"} 1
h_sum{s="a"} 0.5
h_count{s="a"} 1
h_bucket{s="b",le="1"} 2
h_bucket{s="b",le="+Inf"} 2
h_sum{s="b"} 1
h_count{s="b"} 2
`
	if problems := lint(doc); len(problems) != 0 {
		t.Errorf("independent label sets flagged: %q", problems)
	}
}

func TestLintCounterNamedCountIsNotHistogram(t *testing.T) {
	// A counter whose name happens to end in _count must not be pulled
	// into histogram validation.
	doc := `# HELP jobs_count finished jobs
# TYPE jobs_count counter
jobs_count 7
`
	if problems := lint(doc); len(problems) != 0 {
		t.Errorf("counter named *_count flagged: %q", problems)
	}
}

func TestLintMalformedLines(t *testing.T) {
	assertProblem(t, lint("m{a=\"1\" 1\n"), "unterminated label set")
	assertProblem(t, lint("# HELP m x\n# TYPE m gauge\nm notanumber\n"), "unparseable value")
}
