package promtext

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"incdes/internal/obs"
)

func TestMetricName(t *testing.T) {
	cases := []struct {
		instrument string
		kind       obs.InstrumentKind
		want       string
	}{
		{obs.CtrEvaluations, obs.KindCounter, "incdes_core_evaluations_total"},
		{obs.CtrCacheHits, obs.KindCounter, "incdes_core_cache_hits_total"},
		{obs.GagWorkers, obs.KindGauge, "incdes_core_workers"},
		{obs.TmrWorkerBusy, obs.KindTimer, "incdes_core_worker_busy_seconds_total"},
		{obs.CtrMHIterations, obs.KindCounter, "incdes_core_mh_iterations_total"},
	}
	for _, c := range cases {
		if got := MetricName(DefaultNamespace, c.instrument, c.kind); got != c.want {
			t.Errorf("MetricName(%q) = %q, want %q", c.instrument, got, c.want)
		}
	}
	if got := MetricName("", "a b.c-d", obs.KindGauge); got != "a_b_c_d" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestWriteSnapshot(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter(obs.CtrEvaluations).Add(42)
	r.Counter(obs.CtrCacheHits).Add(10)
	r.Gauge(obs.GagWorkers).Set(4)
	r.Timer(obs.TmrWorkerBusy).Observe(1500 * time.Millisecond)

	var buf bytes.Buffer
	if err := Write(&buf, DefaultNamespace, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP incdes_core_evaluations_total design alternatives examined\n",
		"# TYPE incdes_core_evaluations_total counter\n",
		"incdes_core_evaluations_total 42\n",
		"incdes_core_cache_hits_total 10\n",
		"# TYPE incdes_core_workers gauge\n",
		"incdes_core_workers 4\n",
		"# TYPE incdes_core_worker_busy_seconds_total counter\n",
		"incdes_core_worker_busy_seconds_total 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var again bytes.Buffer
	if err := Write(&again, DefaultNamespace, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("two renders of the same snapshot differ")
	}
}

func TestCollectionLabelsAndOrdering(t *testing.T) {
	mh := obs.NewRegistry()
	mh.Counter(obs.CtrEvaluations).Add(100)
	sa := obs.NewRegistry()
	sa.Counter(obs.CtrEvaluations).Add(200)

	c := NewCollection(DefaultNamespace)
	c.Add(map[string]string{"strategy": "SA"}, sa.Snapshot())
	c.Add(map[string]string{"strategy": "MH"}, mh.Snapshot())
	c.AddGauge("process.uptime_seconds", "seconds since start", nil, 12.25)
	c.AddCounter("solves", "solve requests", map[string]string{"status": "done"}, 3)

	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Label sets sort within the metric, and HELP/TYPE appear exactly once.
	iMH := strings.Index(out, `incdes_core_evaluations_total{strategy="MH"} 100`)
	iSA := strings.Index(out, `incdes_core_evaluations_total{strategy="SA"} 200`)
	if iMH < 0 || iSA < 0 || iMH > iSA {
		t.Errorf("labeled samples missing or misordered:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE incdes_core_evaluations_total counter"); n != 1 {
		t.Errorf("TYPE emitted %d times", n)
	}
	if !strings.Contains(out, "incdes_process_uptime_seconds 12.25\n") {
		t.Errorf("ad-hoc gauge missing:\n%s", out)
	}
	if !strings.Contains(out, `incdes_solves_total{status="done"} 3`+"\n") {
		t.Errorf("ad-hoc counter missing:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	c := NewCollection("")
	c.AddGauge("g", "h", map[string]string{"path": "a\"b\\c\nd"}, 1)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `g{path="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("escaping: got %q, want substring %q", buf.String(), want)
	}
}

// parseExposition is a minimal format checker: every line must be a
// comment or `name[{labels}] value` with a parseable float value.
func parseExposition(t *testing.T, out string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if brace := strings.IndexByte(name, '{'); brace >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("malformed labels in line %q", line)
			}
			name = name[:brace]
		}
		if !ok || name == "" {
			t.Fatalf("malformed sample line %q", line)
		}
		if strings.ContainsAny(rest, " \t") {
			t.Fatalf("trailing junk in line %q", line)
		}
		names[name] = true
	}
	return names
}

func TestFullCatalogRenders(t *testing.T) {
	r := obs.NewRegistry()
	for _, ins := range obs.Catalog() {
		switch ins.Kind {
		case obs.KindCounter:
			r.Counter(ins.Name).Inc()
		case obs.KindGauge:
			r.Gauge(ins.Name).Set(1)
		case obs.KindTimer:
			r.Timer(ins.Name).Observe(time.Millisecond)
		case obs.KindHistogram:
			r.Histogram(ins.Name).Observe(0.001)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, DefaultNamespace, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	names := parseExposition(t, buf.String())
	for _, ins := range obs.Catalog() {
		want := MetricName(DefaultNamespace, ins.Name, ins.Kind)
		if ins.Kind == obs.KindHistogram {
			// A histogram's base name appears only in HELP/TYPE; the
			// samples carry the _bucket/_sum/_count suffixes.
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if !names[want+sfx] {
					t.Errorf("catalog histogram %q not rendered as %q", ins.Name, want+sfx)
				}
			}
			continue
		}
		if !names[want] {
			t.Errorf("catalog instrument %q not rendered as %q", ins.Name, want)
		}
	}
}

// TestTxnCounterExposition pins the exact exposition lines of the
// transactional-engine counters: dashboards query these names, so a
// catalog rename must show up as a test failure, not a silent gap.
func TestTxnCounterExposition(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter(obs.CtrTxnApplies).Add(5)
	r.Counter(obs.CtrTxnRollbacks).Add(5)
	r.Counter(obs.CtrTxnDirty).Add(123)
	r.Counter(obs.CtrTxnIncremental).Add(3)
	r.Counter(obs.CtrTxnFull).Add(2)
	var buf bytes.Buffer
	if err := Write(&buf, DefaultNamespace, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"incdes_core_txn_applies_total 5",
		"incdes_core_txn_rollbacks_total 5",
		"incdes_core_txn_dirty_intervals_total 123",
		"incdes_core_txn_incremental_evals_total 3",
		"incdes_core_txn_full_evals_total 2",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}
