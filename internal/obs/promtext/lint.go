package promtext

// Lint is a small exposition-format validator: the CI metrics-lint step
// scrapes /v1/metrics under load and fails the build when the document
// is malformed. It checks exactly what a scraper depends on — every
// sample's metric has HELP and TYPE, no duplicate series, and histogram
// triples are internally consistent (cumulative buckets monotone, a
// `+Inf` bucket present and equal to `_count`).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// histSeries accumulates one histogram's samples per base label set.
type histSeries struct {
	buckets []bucket // in document order
	hasInf  bool
	infVal  float64
	sum     bool
	count   bool
	countV  float64
}

type bucket struct {
	le  string
	val float64
}

// Lint validates a Prometheus 0.0.4 text exposition and returns one
// message per problem found (nil when clean).
func Lint(r io.Reader) []string {
	var problems []string
	helpFor := map[string]bool{}
	typeFor := map[string]string{}
	seen := map[string]int{} // full series (name+labels) -> line
	// base metric -> base label set -> histogram accumulation
	hists := map[string]map[string]*histSeries{}
	sampleBase := map[string]bool{} // base metric names that had samples

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) >= 3 {
				switch fields[1] {
				case "HELP":
					helpFor[fields[2]] = true
				case "TYPE":
					if len(fields) >= 4 {
						if prev, dup := typeFor[fields[2]]; dup {
							problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s (already %s)", line, fields[2], prev))
						}
						typeFor[fields[2]] = strings.TrimSpace(fields[3])
					}
				}
			}
			continue
		}

		name, labels, value, err := parseSample(text)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v", line, err))
			continue
		}
		series := name + canonLabels(labels)
		if prev, dup := seen[series]; dup {
			problems = append(problems, fmt.Sprintf("line %d: duplicate series %s (first at line %d)", line, series, prev))
		}
		seen[series] = line

		base, part := histBase(name, typeFor)
		sampleBase[base] = true
		if part == "" {
			continue
		}
		byLabels, ok := hists[base]
		if !ok {
			byLabels = map[string]*histSeries{}
			hists[base] = byLabels
		}
		le, rest := splitLe(labels)
		key := canonLabels(rest)
		hs, ok := byLabels[key]
		if !ok {
			hs = &histSeries{}
			byLabels[key] = hs
		}
		switch part {
		case "_bucket":
			if le == "" {
				problems = append(problems, fmt.Sprintf("line %d: %s_bucket sample without le label", line, base))
			} else if le == "+Inf" {
				hs.hasInf = true
				hs.infVal = value
			} else {
				hs.buckets = append(hs.buckets, bucket{le: le, val: value})
			}
		case "_sum":
			hs.sum = true
		case "_count":
			hs.count = true
			hs.countV = value
		}
	}
	if err := sc.Err(); err != nil {
		return append(problems, fmt.Sprintf("reading exposition: %v", err))
	}

	// Every sampled metric needs its HELP and TYPE header.
	bases := make([]string, 0, len(sampleBase))
	for b := range sampleBase {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		if !helpFor[b] {
			problems = append(problems, fmt.Sprintf("metric %s: missing HELP", b))
		}
		if _, ok := typeFor[b]; !ok {
			problems = append(problems, fmt.Sprintf("metric %s: missing TYPE", b))
		}
	}

	// Histogram triples: monotone cumulative buckets, +Inf == _count,
	// _sum/_count present.
	hbases := make([]string, 0, len(hists))
	for b := range hists {
		hbases = append(hbases, b)
	}
	sort.Strings(hbases)
	for _, b := range hbases {
		keys := make([]string, 0, len(hists[b]))
		for k := range hists[b] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			hs := hists[b][k]
			id := b + k
			prevLe := -1.0
			prev := -1.0
			for _, bk := range hs.buckets {
				leV, err := strconv.ParseFloat(bk.le, 64)
				if err != nil {
					problems = append(problems, fmt.Sprintf("histogram %s: unparseable le %q", id, bk.le))
					continue
				}
				if leV <= prevLe {
					problems = append(problems, fmt.Sprintf("histogram %s: le %q out of order", id, bk.le))
				}
				if bk.val < prev {
					problems = append(problems, fmt.Sprintf("histogram %s: bucket le=%q count %g below previous %g", id, bk.le, bk.val, prev))
				}
				prevLe, prev = leV, bk.val
			}
			switch {
			case !hs.hasInf:
				problems = append(problems, fmt.Sprintf("histogram %s: missing +Inf bucket", id))
			case hs.infVal < prev:
				problems = append(problems, fmt.Sprintf("histogram %s: +Inf bucket %g below previous %g", id, hs.infVal, prev))
			}
			if !hs.sum {
				problems = append(problems, fmt.Sprintf("histogram %s: missing _sum", id))
			}
			if !hs.count {
				problems = append(problems, fmt.Sprintf("histogram %s: missing _count", id))
			} else if hs.hasInf && hs.countV != hs.infVal {
				problems = append(problems, fmt.Sprintf("histogram %s: _count %g != +Inf bucket %g", id, hs.countV, hs.infVal))
			}
		}
	}
	return problems
}

// histBase maps a sample name onto (base metric, histogram part). A
// `_bucket`/`_sum`/`_count` suffix counts as a histogram part only when
// the stripped base was declared `# TYPE base histogram` — a counter
// named *_count stays itself.
func histBase(name string, typeFor map[string]string) (base, part string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			b := strings.TrimSuffix(name, suffix)
			if typeFor[b] == "histogram" {
				return b, suffix
			}
		}
	}
	return name, ""
}

// parseSample splits one sample line into name, raw label pairs and
// value. Label splitting is quote-aware so escaped quotes and commas
// inside label values survive.
func parseSample(line string) (name string, labels [][2]string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		end := closingBrace(rest, i)
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[i+1 : end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", fields[0])
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("sample %q has no metric name", line)
	}
	return name, labels, value, nil
}

// closingBrace finds the index of the '}' matching the '{' at open,
// skipping over quoted label values; -1 if unterminated.
func closingBrace(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// parseLabels splits `k="v",k2="v2"` quote-aware.
func parseLabels(s string) ([][2]string, error) {
	var out [][2]string
	for len(s) > 0 {
		s = strings.TrimLeft(s, ", ")
		if s == "" {
			break
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", key)
		}
		i := 1
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return nil, fmt.Errorf("label %q value unterminated", key)
		}
		out = append(out, [2]string{key, s[1:i]})
		s = s[i+1:]
	}
	return out, nil
}

// canonLabels renders label pairs sorted by key so series identity is
// order-independent.
func canonLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([][2]string(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][0] < sorted[j][0] })
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, kv[0], kv[1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitLe extracts the `le` label from a pair list, returning its value
// and the remaining pairs.
func splitLe(labels [][2]string) (le string, rest [][2]string) {
	for _, kv := range labels {
		if kv[0] == "le" {
			le = kv[1]
			continue
		}
		rest = append(rest, kv)
	}
	return le, rest
}
