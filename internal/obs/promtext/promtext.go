// Package promtext renders obs snapshots in the Prometheus text
// exposition format (version 0.0.4) with zero dependencies.
//
// Metric names are derived mechanically from the canonical instrument
// catalog: the dotted instrument name is namespaced and sanitized
// (`core.cache_hits` -> `incdes_core_cache_hits_total`), counters gain
// the `_total` suffix, timers are exported as cumulative seconds
// (`core.worker_busy` -> `incdes_core_worker_busy_seconds_total`), and
// gauges keep their bare name. HELP strings come from obs.Catalog when
// the instrument is declared there.
//
// A Collection gathers one or more snapshots, each under its own label
// set (the serve layer adds {strategy="MH"} per-strategy aggregates),
// plus ad-hoc process-level gauges/counters, and writes them in a fully
// deterministic order: metrics sorted by name, samples sorted by label
// set, HELP/TYPE emitted once per metric.
package promtext

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"incdes/internal/obs"
)

// DefaultNamespace is the metric-name prefix used by the incdes tools.
const DefaultNamespace = "incdes"

// MetricName converts a dotted instrument name into the exported
// Prometheus metric name: namespace + sanitized instrument + the kind's
// conventional suffix (`_total` for counters, `_seconds_total` for
// timers, none for gauges and histograms — histogram series add their
// own `_bucket`/`_sum`/`_count` suffixes per sample).
func MetricName(namespace, instrument string, kind obs.InstrumentKind) string {
	name := sanitize(instrument)
	if namespace != "" {
		name = sanitize(namespace) + "_" + name
	}
	switch kind {
	case obs.KindCounter:
		name += "_total"
	case obs.KindTimer:
		name += "_seconds_total"
	}
	return name
}

// sanitize maps an arbitrary instrument name onto the Prometheus metric
// name alphabet [a-zA-Z0-9_:], replacing every other rune with '_'.
func sanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders a label map as {k="v",...} with keys sorted, or
// "" for an empty set.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, sanitize(k), escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: integral values without a decimal
// point, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type sample struct {
	suffix string // per-sample name suffix: "_bucket"/"_sum"/"_count" for histograms
	labels string
	value  float64
	// group/order pin the exposition order: histogram series must come
	// out as buckets in ascending le, then _sum, then _count, per label
	// set — lexical label sorting would interleave "10" before "2.5".
	// Scalar samples use group == labels and order 0, which degenerates
	// to the plain sorted-by-labels order.
	group string
	order int
}

type metric struct {
	typ     string // "counter", "gauge" or "histogram"
	help    string
	samples []sample
}

// Collection accumulates metrics for one exposition document.
type Collection struct {
	namespace string
	help      map[string]obs.Instrument // catalog lookup by instrument name
	metrics   map[string]*metric        // by exported metric name
}

// NewCollection returns an empty collection using the given metric-name
// namespace ("" for none).
func NewCollection(namespace string) *Collection {
	help := make(map[string]obs.Instrument)
	for _, ins := range obs.Catalog() {
		help[ins.Name] = ins
	}
	return &Collection{namespace: namespace, help: help, metrics: map[string]*metric{}}
}

func (c *Collection) metricFor(name, typ, help string) *metric {
	m, ok := c.metrics[name]
	if !ok {
		m = &metric{typ: typ, help: help}
		c.metrics[name] = m
	}
	return m
}

func (c *Collection) addSample(instrument string, kind obs.InstrumentKind, labels map[string]string, v float64) {
	name := MetricName(c.namespace, instrument, kind)
	help := "instrument " + instrument
	if ins, ok := c.help[instrument]; ok {
		help = ins.Help
	}
	typ := "gauge"
	if kind == obs.KindCounter || kind == obs.KindTimer {
		typ = "counter"
	}
	m := c.metricFor(name, typ, help)
	l := renderLabels(labels)
	m.samples = append(m.samples, sample{labels: l, value: v, group: l})
}

// formatLe renders a bucket boundary as an `le` label value in shortest
// round-trip form.
func formatLe(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// AddHistogram records one histogram snapshot under the given label set
// as the conventional series triple: cumulative `_bucket` samples per
// boundary plus `+Inf`, then `_sum` and `_count`. Empty snapshots (no
// bucket layout) are skipped.
func (c *Collection) AddHistogram(instrument string, labels map[string]string, hs obs.HistogramSnapshot) {
	if len(hs.Bounds) == 0 || len(hs.Counts) != len(hs.Bounds)+1 {
		return
	}
	name := MetricName(c.namespace, instrument, obs.KindHistogram)
	help := "instrument " + instrument
	if ins, ok := c.help[instrument]; ok {
		help = ins.Help
	}
	m := c.metricFor(name, "histogram", help)
	group := renderLabels(labels)
	withLe := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		withLe[k] = v
	}
	var cum int64
	for i, b := range hs.Bounds {
		cum += hs.Counts[i]
		withLe["le"] = formatLe(b)
		m.samples = append(m.samples, sample{
			suffix: "_bucket", labels: renderLabels(withLe), value: float64(cum), group: group, order: i,
		})
	}
	withLe["le"] = "+Inf"
	m.samples = append(m.samples,
		sample{suffix: "_bucket", labels: renderLabels(withLe), value: float64(hs.Count), group: group, order: len(hs.Bounds)},
		sample{suffix: "_sum", labels: group, value: hs.Sum, group: group, order: len(hs.Bounds) + 1},
		sample{suffix: "_count", labels: group, value: float64(hs.Count), group: group, order: len(hs.Bounds) + 2},
	)
}

// Add records every instrument of one snapshot under the given label
// set (nil for none). Timers are converted to seconds.
func (c *Collection) Add(labels map[string]string, s obs.Snapshot) {
	for name, v := range s.Counters {
		c.addSample(name, obs.KindCounter, labels, float64(v))
	}
	for name, v := range s.Gauges {
		c.addSample(name, obs.KindGauge, labels, float64(v))
	}
	for name, ns := range s.TimersNS {
		c.addSample(name, obs.KindTimer, labels, float64(ns)/1e9)
	}
	for name, hs := range s.Histograms {
		c.AddHistogram(name, labels, hs)
	}
}

// AddGauge records one ad-hoc gauge sample under the full metric name
// derived from instrument (no `_total` suffix).
func (c *Collection) AddGauge(instrument, help string, labels map[string]string, v float64) {
	name := MetricName(c.namespace, instrument, obs.KindGauge)
	m := c.metricFor(name, "gauge", help)
	l := renderLabels(labels)
	m.samples = append(m.samples, sample{labels: l, value: v, group: l})
}

// AddCounter records one ad-hoc counter sample; the exported name gains
// the `_total` suffix.
func (c *Collection) AddCounter(instrument, help string, labels map[string]string, v float64) {
	name := MetricName(c.namespace, instrument, obs.KindCounter)
	m := c.metricFor(name, "counter", help)
	l := renderLabels(labels)
	m.samples = append(m.samples, sample{labels: l, value: v, group: l})
}

// Write renders the collection: metrics sorted by exported name, one
// HELP and TYPE line each, samples sorted by label set.
func (c *Collection) Write(w io.Writer) error {
	names := make([]string, 0, len(c.metrics))
	for name := range c.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := c.metrics[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, m.help, name, m.typ); err != nil {
			return err
		}
		sort.Slice(m.samples, func(i, j int) bool {
			a, b := m.samples[i], m.samples[j]
			if a.group != b.group {
				return a.group < b.group
			}
			return a.order < b.order
		})
		for _, s := range m.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", name, s.suffix, s.labels, formatValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Write renders a single unlabeled snapshot under namespace: the
// convenience form for one-registry exports.
func Write(w io.Writer, namespace string, s obs.Snapshot) error {
	c := NewCollection(namespace)
	c.Add(nil, s)
	return c.Write(w)
}
