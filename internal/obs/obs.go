// Package obs is the engine's zero-dependency observability layer:
// typed atomic counters, gauges and timers behind a Registry, plus a
// structured trace sink (see trace.go) that records per-iteration
// strategy decisions as JSONL.
//
// The design rule is "free when off": every instrument is a pointer
// whose methods are nil-safe no-ops, so instrumented code resolves its
// instruments once (from a possibly-nil Registry) and then calls
// Add/Set/Observe unconditionally on the hot path. With no registry
// attached the whole layer costs one nil check per event and performs
// zero allocations — the property the engine's AllocsPerRun guard test
// pins down.
//
// Canonical instrument names are declared here so that every package —
// core, sched, ttp, the commands — agrees on the counter catalog that
// Snapshot exports.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical instrument names: the counter catalog (see DESIGN.md
// "Observability"). Counters unless noted otherwise.
const (
	// Engine (internal/core).
	CtrEvaluations = "core.evaluations"  // design alternatives examined
	CtrCacheHits   = "core.cache_hits"   // evaluations served from the memo
	CtrCacheMisses = "core.cache_misses" // evaluations that ran the scheduler
	CtrInfeasible  = "core.infeasible"   // evaluations ruled out by requirement (a)
	TmrWorkerBusy  = "core.worker_busy"  // timer: cumulative worker busy time
	GagWorkers     = "core.workers"      // gauge: resolved parallelism of the last Solve
	CtrSolves      = "core.solves"       // core.Solve invocations that ran a strategy

	// Strategy-portfolio racer (internal/core).
	CtrPortfolioRaces     = "core.portfolio.races"            // portfolio races started
	CtrPortfolioLaneDone  = "core.portfolio.lane_done"        // lanes that ran to natural completion
	CtrPortfolioCancelled = "core.portfolio.losers_cancelled" // lanes cancelled by the zero-objective shortcut
	GagPortfolioWinner    = "core.portfolio.winner_lane"      // gauge: lane index of the last race's winner

	// Whole-solution cache + single-flight dedup (internal/cache via serve).
	CtrSolveCacheHits     = "cache.hits"           // requests served from the solution cache
	CtrSolveCacheMisses   = "cache.misses"         // requests that led a fresh solve
	CtrSolveCacheInflight = "cache.inflight_dedup" // requests coalesced onto an in-flight solve
	CtrSolveCacheStores   = "cache.stores"         // solutions stored in the cache
	CtrSolveCacheEvict    = "cache.evictions"      // solutions evicted by the LRU bound
	GagSolveCacheEntries  = "cache.entries"        // gauge: solutions resident in the cache

	// Transactional evaluation (internal/core, incremental path).
	CtrTxnApplies     = "core.txn_applies"           // candidate placements applied in place
	CtrTxnRollbacks   = "core.txn_rollbacks"         // transactions rolled back after scoring
	CtrTxnDirty       = "core.txn_dirty_intervals"   // touched intervals (busy + bus) across transactions
	CtrTxnIncremental = "core.txn_incremental_evals" // scores computed from dirty regions only
	CtrTxnFull        = "core.txn_full_evals"        // scores that fell back to a full recompute

	// Mapping heuristic.
	CtrMHIterations = "core.mh.iterations" // improvement iterations run
	CtrMHCandidates = "core.mh.candidates" // design transformations examined
	CtrMHPruned     = "core.mh.pruned"     // candidates pruned as infeasible
	CtrMHMoves      = "core.mh.moves"      // transformations applied

	// Simulated annealing.
	CtrSAChains     = "core.sa.chains"     // restart chains run
	CtrSAAccepts    = "core.sa.accepts"    // neighbors accepted (downhill or Metropolis)
	CtrSARejects    = "core.sa.rejects"    // feasible neighbors rejected
	CtrSAInfeasible = "core.sa.infeasible" // infeasible neighbors drawn

	// Relaxed (CODES 2001) solver.
	CtrRelaxedSubsets = "core.relaxed.subsets" // modification subsets tried

	// Static cyclic scheduler (internal/sched).
	CtrSchedCalls    = "sched.schedule_calls" // ScheduleApp invocations
	CtrSchedJobs     = "sched.jobs_placed"    // process occurrences placed
	CtrSchedMsgs     = "sched.msgs_placed"    // message occurrences placed
	CtrSchedFailures = "sched.failures"       // ScheduleApp calls that failed

	// TTP bus (internal/ttp).
	CtrTTPFindSlot = "ttp.findslot_calls" // FindSlot invocations
	CtrTTPProbes   = "ttp.slot_probes"    // slot occurrences examined by FindSlot
	CtrTTPReserve  = "ttp.reservations"   // successful slot reservations

	// Final-design TTP slot occupancy (gauges, set once per Solve).
	GagTTPUsedBytes = "ttp.slot_used_bytes"     // reserved bytes over the horizon
	GagTTPCapBytes  = "ttp.slot_capacity_bytes" // total slot capacity over the horizon
	GagTTPUsedSlots = "ttp.slots_occupied"      // slot occurrences carrying >= 1 byte

	// Versioned design sessions (internal/session).
	CtrSessOpens          = "session.opens"           // sessions opened
	CtrSessCommits        = "session.commits"         // committed versions created
	CtrSessBranches       = "session.branches"        // branches created
	CtrSessRollbacks      = "session.rollbacks"       // branch heads rolled back
	CtrSessDiffs          = "session.diffs"           // version diffs computed
	CtrSessReplays        = "session.replays"         // versions rematerialized by replay
	CtrSessBaselineBuilds = "session.baseline_builds" // metric baselines computed for a version
	CtrSessBaselineReuses = "session.baseline_reuses" // commits served from a cached baseline
	GagSessLive           = "session.live"            // gauge: sessions resident in memory

	// Session-commit solution cache (internal/session).
	CtrSessSolveCacheHits   = "session.solve_cache_hits"   // commits served from the solution cache
	CtrSessSolveCacheStores = "session.solve_cache_stores" // commit solutions stored in the cache

	// Serving-stack latency histograms (internal/serve). All observe
	// seconds over the LatencyBounds bucket grid.
	HstRequestSeconds     = "serve.request_seconds"      // histogram: full HTTP request latency
	HstSolveSeconds       = "serve.solve_seconds"        // histogram: core.Solve latency inside a job
	HstQueueWaitSeconds   = "serve.queue_wait_seconds"   // histogram: admission-queue wait before a slot
	HstCommitSeconds      = "serve.commit_seconds"       // histogram: session commit latency inside a job
	HstCacheLookupSeconds = "serve.cache_lookup_seconds" // histogram: solution-cache lookup latency

	// Multi-node solve cluster (internal/cluster). Unit-lifecycle
	// counters accumulate in the dispatching job's registry (and so in
	// the serve aggregates); prober counters live in the coordinator's
	// own registry, exposed under {worker="coordinator"}.
	CtrClusterUnits      = "cluster.units"           // work units dispatched to workers
	CtrClusterReassigned = "cluster.reassigned"      // units reassigned after a worker failure
	CtrClusterSteals     = "cluster.steals"          // straggler units duplicated onto another worker
	CtrClusterRPCErrors  = "cluster.rpc_errors"      // worker RPC attempts that failed
	CtrClusterEjections  = "cluster.ejections"       // workers ejected by the health prober
	CtrClusterProbes     = "cluster.probes"          // worker health probes performed
	GagClusterWorkers    = "cluster.workers_healthy" // gauge: workers currently accepting units
	HstClusterUnitSecs   = "cluster.unit_seconds"    // histogram: work-unit round-trip latency
)

// InstrumentKind classifies a catalog instrument.
type InstrumentKind string

// The instrument kinds.
const (
	KindCounter   InstrumentKind = "counter"
	KindGauge     InstrumentKind = "gauge"
	KindTimer     InstrumentKind = "timer"
	KindHistogram InstrumentKind = "histogram"
)

// Instrument describes one catalog entry: its canonical name, kind, and
// a one-line help text. Exporters (the Prometheus encoder, the serve
// layer) render the catalog from here so names and help strings stay in
// one place.
type Instrument struct {
	Name string
	Kind InstrumentKind
	Help string
}

// catalog is the full declared instrument set, in documentation order.
var catalog = []Instrument{
	{CtrEvaluations, KindCounter, "design alternatives examined"},
	{CtrCacheHits, KindCounter, "evaluations served from the memo"},
	{CtrCacheMisses, KindCounter, "evaluations that ran the scheduler"},
	{CtrInfeasible, KindCounter, "evaluations ruled out by requirement (a)"},
	{TmrWorkerBusy, KindTimer, "cumulative worker busy time"},
	{GagWorkers, KindGauge, "resolved parallelism of the last Solve"},
	{CtrSolves, KindCounter, "core.Solve invocations that ran a strategy"},
	{CtrPortfolioRaces, KindCounter, "strategy-portfolio races started"},
	{CtrPortfolioLaneDone, KindCounter, "portfolio lanes run to natural completion"},
	{CtrPortfolioCancelled, KindCounter, "portfolio lanes cancelled by the zero-objective shortcut"},
	{GagPortfolioWinner, KindGauge, "lane index of the last portfolio winner"},
	{CtrSolveCacheHits, KindCounter, "requests served from the solution cache"},
	{CtrSolveCacheMisses, KindCounter, "requests that led a fresh solve"},
	{CtrSolveCacheInflight, KindCounter, "requests coalesced onto an in-flight solve"},
	{CtrSolveCacheStores, KindCounter, "solutions stored in the cache"},
	{CtrSolveCacheEvict, KindCounter, "solutions evicted by the LRU bound"},
	{GagSolveCacheEntries, KindGauge, "solutions resident in the cache"},
	{CtrTxnApplies, KindCounter, "candidate placements applied in place"},
	{CtrTxnRollbacks, KindCounter, "transactions rolled back after scoring"},
	{CtrTxnDirty, KindCounter, "touched intervals (busy + bus) across transactions"},
	{CtrTxnIncremental, KindCounter, "scores computed from dirty regions only"},
	{CtrTxnFull, KindCounter, "scores that fell back to a full recompute"},
	{CtrMHIterations, KindCounter, "MH improvement iterations run"},
	{CtrMHCandidates, KindCounter, "MH design transformations examined"},
	{CtrMHPruned, KindCounter, "MH candidates pruned as infeasible"},
	{CtrMHMoves, KindCounter, "MH transformations applied"},
	{CtrSAChains, KindCounter, "SA restart chains run"},
	{CtrSAAccepts, KindCounter, "SA neighbors accepted"},
	{CtrSARejects, KindCounter, "SA feasible neighbors rejected"},
	{CtrSAInfeasible, KindCounter, "SA infeasible neighbors drawn"},
	{CtrRelaxedSubsets, KindCounter, "relaxed-solver modification subsets tried"},
	{CtrSchedCalls, KindCounter, "ScheduleApp invocations"},
	{CtrSchedJobs, KindCounter, "process occurrences placed"},
	{CtrSchedMsgs, KindCounter, "message occurrences placed"},
	{CtrSchedFailures, KindCounter, "ScheduleApp calls that failed"},
	{CtrTTPFindSlot, KindCounter, "FindSlot invocations"},
	{CtrTTPProbes, KindCounter, "slot occurrences examined by FindSlot"},
	{CtrTTPReserve, KindCounter, "successful slot reservations"},
	{GagTTPUsedBytes, KindGauge, "reserved bus bytes over the horizon"},
	{GagTTPCapBytes, KindGauge, "total slot capacity over the horizon"},
	{GagTTPUsedSlots, KindGauge, "slot occurrences carrying at least one byte"},
	{CtrSessOpens, KindCounter, "design sessions opened"},
	{CtrSessCommits, KindCounter, "session versions committed"},
	{CtrSessBranches, KindCounter, "session branches created"},
	{CtrSessRollbacks, KindCounter, "session branch heads rolled back"},
	{CtrSessDiffs, KindCounter, "session version diffs computed"},
	{CtrSessReplays, KindCounter, "session versions rematerialized by replay"},
	{CtrSessBaselineBuilds, KindCounter, "session metric baselines computed"},
	{CtrSessBaselineReuses, KindCounter, "session commits served from a cached baseline"},
	{GagSessLive, KindGauge, "design sessions resident in memory"},
	{CtrSessSolveCacheHits, KindCounter, "session commits served from the solution cache"},
	{CtrSessSolveCacheStores, KindCounter, "session commit solutions stored in the cache"},
	{HstRequestSeconds, KindHistogram, "full HTTP request latency in seconds"},
	{HstSolveSeconds, KindHistogram, "core solve latency in seconds"},
	{HstQueueWaitSeconds, KindHistogram, "admission-queue wait in seconds"},
	{HstCommitSeconds, KindHistogram, "session commit latency in seconds"},
	{HstCacheLookupSeconds, KindHistogram, "solution-cache lookup latency in seconds"},
	{CtrClusterUnits, KindCounter, "cluster work units dispatched to workers"},
	{CtrClusterReassigned, KindCounter, "cluster units reassigned after a worker failure"},
	{CtrClusterSteals, KindCounter, "cluster straggler units duplicated onto another worker"},
	{CtrClusterRPCErrors, KindCounter, "cluster worker RPC attempts that failed"},
	{CtrClusterEjections, KindCounter, "cluster workers ejected by the health prober"},
	{CtrClusterProbes, KindCounter, "cluster worker health probes performed"},
	{GagClusterWorkers, KindGauge, "cluster workers currently accepting units"},
	{HstClusterUnitSecs, KindHistogram, "cluster work-unit round-trip latency in seconds"},
}

// Catalog returns the declared instrument set in documentation order.
// The slice is a copy; callers may reorder it freely.
func Catalog() []Instrument {
	return append([]Instrument(nil), catalog...)
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a valid sink whose methods do
// nothing, which is what makes disabled instrumentation free.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; 0 on a nil counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set records the value. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Max raises the gauge to v if v is larger. No-op on a nil gauge.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value; 0 on a nil gauge.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates elapsed wall-clock time. Nil-safe like Counter.
// Timers feed statistics only — never strategy decisions, which must
// stay pure functions of (problem, options).
type Timer struct{ ns atomic.Int64 }

// Observe adds one measured duration. No-op on a nil timer.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.ns.Add(int64(d))
	}
}

// Total returns the accumulated time; 0 on a nil timer.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Registry owns named instruments. Lookups create on demand, so the
// instrumented code does not need registration order; repeated lookups
// of one name return the same instrument. A nil *Registry is a valid
// "observability off" registry: every lookup returns a nil instrument.
// Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it if needed. A nil registry
// returns a nil (no-op) timer.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it over the default
// LatencyBounds if needed. A nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(nil)
		r.histograms[name] = h
	}
	return h
}

// SnapshotSchemaVersion identifies the JSON layout of Snapshot. Bump it
// when a field changes meaning or shape, so stats files written by
// different revisions of the tools can be told apart when diffing.
const SnapshotSchemaVersion = 1

// RunMeta is the run provenance a snapshot may carry: enough to make a
// `-stats-out` document self-describing when it is compared against one
// produced by a different revision, host, or sweep configuration.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	DurationNS int64  `json:"duration_ns"`
	Seed       int64  `json:"seed,omitempty"`
}

// NewRunMeta captures the current runtime and the wall-clock duration
// since start. Seed is recorded verbatim (0 means "not seed-driven").
func NewRunMeta(start time.Time, seed int64) *RunMeta {
	return &RunMeta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		DurationNS: int64(time.Since(start)),
		Seed:       seed,
	}
}

// Snapshot is a point-in-time export of every instrument in a registry.
// Timers are exported in nanoseconds so the document stays pure JSON
// numbers.
type Snapshot struct {
	SchemaVersion int                          `json:"schema_version"`
	Meta          *RunMeta                     `json:"meta,omitempty"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	TimersNS      map[string]int64             `json:"timers_ns,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports the current value of every instrument. A nil
// registry yields an empty snapshot. The export is not atomic across
// instruments — counters may advance between reads — which is fine for
// the statistics use it serves.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{SchemaVersion: SnapshotSchemaVersion, Counters: map[string]int64{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.timers) > 0 {
		s.TimersNS = make(map[string]int64, len(r.timers))
		for name, t := range r.timers {
			s.TimersNS[name] = int64(t.Total())
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Go's encoder emits
// map keys in sorted order, so the document is deterministic for a
// given set of values.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSONFile writes the snapshot to path atomically: the document is
// assembled in a temporary file in the same directory and renamed over
// path only after a successful write, so an interrupted run never leaves
// a truncated JSON behind. Errors identify the destination path.
func (s Snapshot) WriteJSONFile(path string) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("obs: writing stats to %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.WriteJSON(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("obs: writing stats to %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: writing stats to %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("obs: writing stats to %s: %w", path, err)
	}
	return nil
}

// Names returns the sorted counter names present in the snapshot;
// convenient for tests and report code.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Observer bundles the two observability sinks a Solve call can carry:
// a Registry for counters/gauges/timers and a Tracer for the structured
// per-iteration event stream. Either field may be nil; a nil *Observer
// disables the layer entirely.
type Observer struct {
	Stats  *Registry
	Tracer Tracer
}

// Registry returns the observer's registry, nil when o is nil: the
// lookup helper instrumented code uses so it never branches on o.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Stats
}
