package obs

// Fixed-boundary latency histograms: the native instrument behind the
// serving stack's p50/p95/p99. A Histogram is a set of log-spaced
// upper-bound buckets plus an exact sum and count, all updated with
// atomics, so Observe is lock-free and safe from any goroutine. Like
// every obs instrument the nil *Histogram is a valid no-op sink.
//
// Buckets use Prometheus `le` semantics: bucket i counts observations
// v <= Bounds[i]; one implicit overflow bucket (+Inf) catches the rest.
// Histograms with identical boundaries merge bucket-wise, which is how
// per-job registries fold into the serve layer's per-strategy and "all"
// aggregates.

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBounds returns the canonical log-spaced latency boundaries (in
// seconds) of the catalog's request/solve/queue/commit histograms:
// 1-2.5-5 per decade from 100µs to 100s. The slice is fresh per call;
// callers may keep it.
func LatencyBounds() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05,
		0.1, 0.25, 0.5,
		1, 2.5, 5,
		10, 25, 50,
		100,
	}
}

// LogBounds returns n log-spaced boundaries starting at min, each
// subsequent boundary perDecade-th of a decade above the previous one
// (perDecade boundaries per factor-of-ten). The load harness uses a
// denser grid than LatencyBounds so interpolated percentiles stay sharp
// at sub-millisecond scale.
func LogBounds(min float64, perDecade, n int) []float64 {
	bounds := make([]float64, n)
	step := math.Pow(10, 1/float64(perDecade))
	v := min
	for i := range bounds {
		bounds[i] = v
		v *= step
	}
	return bounds
}

// Histogram is a fixed-boundary, atomically updated histogram. Create
// with NewHistogram (or Registry.Histogram for catalog instruments); the
// nil histogram is a valid no-op sink.
type Histogram struct {
	bounds []float64      // ascending upper bounds (le), immutable
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. nil or empty bounds select LatencyBounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBounds()
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one value (seconds, for the latency instruments).
// No-op on a nil histogram. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the le bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveSince records the elapsed wall-clock seconds since t0. No-op on
// a nil histogram or a zero t0 (the "not measuring" sentinel).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of all observations; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot exports the current state. The export is not atomic across
// buckets — concurrent Observes may straddle it — which is fine for the
// statistics use it serves. A nil histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
		Count:  h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge folds a snapshot into the histogram bucket-wise. The snapshot
// must have been taken from a histogram with identical boundaries;
// mismatched layouts are rejected so an aggregate can never silently
// mix incompatible bucket grids.
func (h *Histogram) Merge(s HistogramSnapshot) error {
	if h == nil || s.Count == 0 && s.Sum == 0 {
		return nil
	}
	if len(s.Counts) != len(h.counts) {
		return fmt.Errorf("obs: merging histogram with %d buckets into %d", len(s.Counts), len(h.counts))
	}
	for i, n := range s.Counts {
		h.counts[i].Add(n)
	}
	h.count.Add(s.Count)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + s.Sum)
		if h.sum.CompareAndSwap(old, new) {
			return nil
		}
	}
}

// HistogramSnapshot is the serialized form of a histogram: the bucket
// boundaries, the per-bucket (non-cumulative) counts with the +Inf
// overflow bucket last, and the exact sum/count.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank. The lower
// edge of the first bucket is taken as 0; ranks landing in the +Inf
// bucket report the highest finite boundary. Returns 0 on an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			return lo + (s.Bounds[i]-lo)*(rank-cum)/float64(n)
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the exact mean of the observations (Sum/Count), 0 when
// empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
