package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil counter loaded non-zero")
	}
	var g *Gauge
	g.Set(7)
	g.Max(9)
	if g.Load() != 0 {
		t.Error("nil gauge loaded non-zero")
	}
	var tr *Timer
	tr.Observe(time.Second)
	if tr.Total() != 0 {
		t.Error("nil timer loaded non-zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Timer("x") != nil {
		t.Error("nil registry returned a live instrument")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var o *Observer
	if o.Registry() != nil {
		t.Error("nil observer returned a registry")
	}
}

// TestNilInstrumentZeroAlloc pins the "free when off" property at the
// instrument level: driving nil instruments performs no allocations.
func TestNilInstrumentZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1)
		g.Max(3)
	})
	if allocs != 0 {
		t.Errorf("nil instruments allocated %.1f times per op", allocs)
	}
}

func TestRegistryIdentityAndConcurrency(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("repeated lookup returned distinct counters")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Gauge("depth").Max(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
	if got := r.Gauge("depth").Load(); got != 999 {
		t.Errorf("depth = %d, want 999", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(CtrEvaluations).Add(42)
	r.Gauge(GagTTPUsedBytes).Set(128)
	r.Timer(TmrWorkerBusy).Observe(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if back.Counters[CtrEvaluations] != 42 {
		t.Errorf("counters = %v", back.Counters)
	}
	if back.Gauges[GagTTPUsedBytes] != 128 {
		t.Errorf("gauges = %v", back.Gauges)
	}
	if back.TimersNS[TmrWorkerBusy] != int64(3*time.Millisecond) {
		t.Errorf("timers = %v", back.TimersNS)
	}
	if names := back.Names(); len(names) != 1 || names[0] != CtrEvaluations {
		t.Errorf("names = %v", names)
	}
}

func TestJSONLWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Trace(TraceEvent{Kind: "solve.start", Strategy: "MH"})
	w.Trace(TraceEvent{Kind: "move", Iter: 1, Index: 3, Cost: 12.5})
	w.Trace(TraceEvent{Kind: "solve.done", Strategy: "MH", Cost: 12.5, Evaluations: 9})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("wrote %d lines, want 3", lines)
	}
	events, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("read %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
	}
	if cost, ok := FinalCost(events); !ok || cost != 12.5 {
		t.Errorf("FinalCost = %v, %v", cost, ok)
	}
	if curve := CostCurve(events); len(curve) != 1 || curve[0] != 12.5 {
		t.Errorf("CostCurve = %v", curve)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"kind\":\"x\"}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestMultiTracerFansOut(t *testing.T) {
	var a, b Collector
	m := MultiTracer(&a, &b)
	m.Trace(TraceEvent{Kind: "init", Cost: 1})
	m.Trace(TraceEvent{Kind: "decision", Cost: 2})
	if len(a.Events()) != 2 || len(b.Events()) != 2 {
		t.Fatalf("fan-out lost events: %d, %d", len(a.Events()), len(b.Events()))
	}
	a.Reset()
	if len(a.Events()) != 0 {
		t.Error("reset kept events")
	}
}

func TestSnapshotSchemaAndMeta(t *testing.T) {
	r := NewRegistry()
	r.Counter(CtrEvaluations).Add(7)
	s := r.Snapshot()
	if s.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("SchemaVersion = %d, want %d", s.SchemaVersion, SnapshotSchemaVersion)
	}
	s.Meta = NewRunMeta(time.Now().Add(-time.Second), 42)
	if s.Meta.GoVersion == "" || s.Meta.GOMAXPROCS < 1 {
		t.Errorf("meta not self-describing: %+v", s.Meta)
	}
	if s.Meta.DurationNS < int64(time.Second) {
		t.Errorf("DurationNS = %d, want >= 1s", s.Meta.DurationNS)
	}
	if s.Meta.Seed != 42 {
		t.Errorf("Seed = %d", s.Meta.Seed)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SnapshotSchemaVersion || back.Meta == nil || back.Meta.Seed != 42 {
		t.Errorf("round trip lost schema/meta: %+v", back)
	}
}

func TestWriteJSONFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stats.json")
	r := NewRegistry()
	r.Counter(CtrEvaluations).Add(3)
	if err := r.Snapshot().WriteJSONFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written file is not valid JSON: %v", err)
	}
	if back.Counters[CtrEvaluations] != 3 {
		t.Errorf("counters = %v", back.Counters)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just stats.json", len(entries))
	}

	// A failed write must name the path and leave the old file intact.
	bad := filepath.Join(dir, "no-such-dir", "stats.json")
	err = r.Snapshot().WriteJSONFile(bad)
	if err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the destination path", err)
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, data) {
		t.Error("successful output disturbed by a later failed write")
	}
}

func TestCatalogCoversDeclaredNames(t *testing.T) {
	cat := Catalog()
	byName := map[string]Instrument{}
	for _, ins := range cat {
		if _, dup := byName[ins.Name]; dup {
			t.Errorf("duplicate catalog entry %q", ins.Name)
		}
		if ins.Help == "" {
			t.Errorf("catalog entry %q has no help", ins.Name)
		}
		byName[ins.Name] = ins
	}
	for _, name := range []string{
		CtrEvaluations, CtrCacheHits, CtrCacheMisses, CtrInfeasible,
		CtrMHIterations, CtrMHCandidates, CtrMHPruned, CtrMHMoves,
		CtrSAChains, CtrSAAccepts, CtrSARejects, CtrSAInfeasible,
		CtrRelaxedSubsets, CtrSchedCalls, CtrSchedJobs, CtrSchedMsgs,
		CtrSchedFailures, CtrTTPFindSlot, CtrTTPProbes, CtrTTPReserve,
	} {
		if ins, ok := byName[name]; !ok || ins.Kind != KindCounter {
			t.Errorf("catalog missing counter %q (got %+v)", name, byName[name])
		}
	}
	if ins := byName[TmrWorkerBusy]; ins.Kind != KindTimer {
		t.Errorf("worker busy kind = %q", ins.Kind)
	}
	for _, name := range []string{GagWorkers, GagTTPUsedBytes, GagTTPCapBytes, GagTTPUsedSlots} {
		if ins := byName[name]; ins.Kind != KindGauge {
			t.Errorf("%q kind = %q, want gauge", name, ins.Kind)
		}
	}
}
