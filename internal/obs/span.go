package obs

// Request-scoped spans: the per-request complement to the aggregate
// instruments. Every HTTP request carries a RequestTrace in its
// context; instrumented stages open spans against it (queue wait, cache
// lookup, solve, commit phases, portfolio lanes) and the serve layer's
// ring-buffered SpanRecorder keeps the last N completed requests for
// the /v1/debug/requests surface.
//
// Determinism rule: span STRUCTURE — names, parentage, sibling order,
// attribute keys/values other than durations — must be a pure function
// of (request, problem, options), identical at any parallelism. Spans
// are therefore only started from deterministic serialization points
// (the sequential request goroutine, the portfolio's pre-launch lane
// loop), never from racing workers. Span IDs are derived by chaining
// FNV-1a over parent ID, span name and child index, rooted at the
// request correlation ID, so the whole tree of IDs is reproducible from
// the request ID alone. Only StartNS/DurationNS vary run to run.
//
// Like the rest of the package the layer is free when off: StartSpan on
// a context without a trace returns a nil *Span whose methods are
// no-ops and performs zero allocations.

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are strings so the
// snapshot form stays trivially JSON-stable.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a request. Create with RequestTrace.Start
// or the context helper StartSpan; a nil *Span is a valid no-op sink.
type Span struct {
	rt       *RequestTrace
	id       string
	parent   string // parent span ID, "" for roots
	name     string
	seq      int // start order within the trace
	children int // child count, for deterministic child IDs

	start   time.Time
	startNS int64 // offset from trace start

	mu         sync.Mutex
	attrs      []Attr
	durationNS int64
	ended      bool
}

// ID returns the span's deterministic ID; "" on nil.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// SetAttr annotates the span. Attributes participate in the golden
// span-structure guarantee: only record values that are deterministic
// for the request (never durations, goroutine IDs, or timestamps).
// No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End stamps the span's duration. Idempotent; no-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.durationNS = int64(time.Since(s.start))
	}
	s.mu.Unlock()
}

// spanID chains FNV-1a over the base ID, the span name and the child
// index: the deterministic ID scheme that makes a request's whole span
// tree reproducible from its correlation ID.
func spanID(base, name string, child int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s#%d", base, name, child)
	return fmt.Sprintf("%016x", h.Sum64())
}

// RequestTrace collects the spans of one request. Create with
// NewRequestTrace; a nil trace is a valid "tracing off" trace whose
// Start returns nil spans.
type RequestTrace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	roots int
	spans []*Span
}

// NewRequestTrace starts an empty trace for the given request
// correlation ID.
func NewRequestTrace(requestID string) *RequestTrace {
	return &RequestTrace{id: requestID, start: time.Now()}
}

// ID returns the request correlation ID; "" on nil.
func (rt *RequestTrace) ID() string {
	if rt == nil {
		return ""
	}
	return rt.id
}

// Start opens a new span under parent (nil for a root span). The span's
// ID is derived from the parent chain and its sibling index, and its
// seq records start order — both deterministic as long as Start is only
// called from deterministic serialization points. Returns nil on a nil
// trace.
func (rt *RequestTrace) Start(parent *Span, name string) *Span {
	if rt == nil {
		return nil
	}
	now := time.Now()
	rt.mu.Lock()
	base := rt.id
	parentID := ""
	var child int
	if parent != nil {
		base = parent.id
		parentID = parent.id
		child = parent.children
		parent.children++
	} else {
		child = rt.roots
		rt.roots++
	}
	sp := &Span{
		rt:      rt,
		id:      spanID(base, name, child),
		parent:  parentID,
		name:    name,
		seq:     len(rt.spans),
		start:   now,
		startNS: int64(now.Sub(rt.start)),
	}
	rt.spans = append(rt.spans, sp)
	rt.mu.Unlock()
	return sp
}

// AttachRemote grafts a snapshot of spans recorded on another node into
// this trace under parent: the cross-node complement of CopyTrace. The
// remote spans keep their own (deterministic) IDs and internal
// parentage; only roots — spans whose parent is absent from the slice —
// are re-parented onto parent's ID. Every grafted span receives
// extraAttrs (e.g. worker="w1"), overriding same-key attrs from the
// remote side. Seq numbering continues from this trace's counter, so
// the grafted subtree sorts after everything recorded before the graft.
// No-op on a nil trace.
func (rt *RequestTrace) AttachRemote(parent *Span, spans []SpanSnapshot, extraAttrs map[string]string) {
	if rt == nil || len(spans) == 0 {
		return
	}
	local := make(map[string]bool, len(spans))
	for _, ss := range spans {
		local[ss.ID] = true
	}
	keys := make([]string, 0, len(extraAttrs))
	for k := range extraAttrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, ss := range spans {
		parentID := ss.Parent
		if parentID == "" || !local[parentID] {
			parentID = parent.ID()
		}
		sp := &Span{
			rt:         rt,
			id:         ss.ID,
			parent:     parentID,
			name:       ss.Name,
			seq:        len(rt.spans),
			start:      rt.start,
			startNS:    ss.StartNS,
			durationNS: ss.DurationNS,
			ended:      ss.DurationNS >= 0,
		}
		akeys := make([]string, 0, len(ss.Attrs))
		for k := range ss.Attrs {
			if _, shadowed := extraAttrs[k]; !shadowed {
				akeys = append(akeys, k)
			}
		}
		sort.Strings(akeys)
		for _, k := range akeys {
			sp.attrs = append(sp.attrs, Attr{Key: k, Value: ss.Attrs[k]})
		}
		for _, k := range keys {
			sp.attrs = append(sp.attrs, Attr{Key: k, Value: extraAttrs[k]})
		}
		rt.spans = append(rt.spans, sp)
	}
}

// SpanSnapshot is the exported form of one span.
type SpanSnapshot struct {
	ID         string            `json:"id"`
	Parent     string            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	Seq        int               `json:"seq"`
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Snapshot exports every span in start (seq) order. Unfinished spans
// report DurationNS -1 so a half-done detached job is distinguishable
// from an instantaneous stage. Nil traces yield nil.
func (rt *RequestTrace) Snapshot() []SpanSnapshot {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	spans := append([]*Span(nil), rt.spans...)
	rt.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, sp := range spans {
		sp.mu.Lock()
		ss := SpanSnapshot{
			ID:         sp.id,
			Parent:     sp.parent,
			Name:       sp.name,
			Seq:        sp.seq,
			StartNS:    sp.startNS,
			DurationNS: -1,
		}
		if sp.ended {
			ss.DurationNS = sp.durationNS
		}
		if len(sp.attrs) > 0 {
			ss.Attrs = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				ss.Attrs[a.Key] = a.Value
			}
		}
		sp.mu.Unlock()
		out[i] = ss
	}
	return out
}

// SpanNode is one node of a rebuilt span tree, children in seq order.
type SpanNode struct {
	SpanSnapshot
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree rebuilds the forest from a flat snapshot. Roots and
// children come back in seq (start) order; spans whose parent is
// missing from the slice are promoted to roots rather than dropped.
func BuildSpanTree(spans []SpanSnapshot) []*SpanNode {
	sorted := append([]SpanSnapshot(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	nodes := make(map[string]*SpanNode, len(sorted))
	var roots []*SpanNode
	for _, ss := range sorted {
		nodes[ss.ID] = &SpanNode{SpanSnapshot: ss}
	}
	for _, ss := range sorted {
		n := nodes[ss.ID]
		if p, ok := nodes[ss.Parent]; ok && ss.Parent != "" && ss.Parent != ss.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// StructureString renders the forest's deterministic skeleton — names,
// nesting, sibling order, IDs and sorted attrs, never timings — one
// span per line. This is the byte-stable form the golden
// span-determinism test pins across parallelism levels.
func StructureString(roots []*SpanNode) string {
	var b strings.Builder
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Name)
		b.WriteString(" id=")
		b.WriteString(n.ID)
		if len(n.Attrs) > 0 {
			keys := make([]string, 0, len(n.Attrs))
			for k := range n.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, n.Attrs[k])
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// Context plumbing. Two context keys: the trace (request-wide) and the
// current span (the parent for StartSpan). Both absent means tracing is
// off and every helper is a zero-alloc no-op.

type traceCtxKey struct{}
type spanCtxKey struct{}

// ContextWithTrace attaches a request trace to ctx.
func ContextWithTrace(ctx context.Context, rt *RequestTrace) context.Context {
	if rt == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, rt)
}

// TraceFrom returns the request trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *RequestTrace {
	if ctx == nil {
		return nil
	}
	rt, _ := ctx.Value(traceCtxKey{}).(*RequestTrace)
	return rt
}

// SpanFrom returns the current span attached to ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// RequestIDFrom returns the correlation ID of the trace on ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	return TraceFrom(ctx).ID()
}

// StartSpan opens a span named name under the context's current span
// (or as a root) and returns a derived context carrying it as the new
// parent. With no trace on ctx it returns (ctx, nil) without
// allocating, so instrumented paths stay free when tracing is off.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	rt := TraceFrom(ctx)
	if rt == nil {
		return ctx, nil
	}
	sp := rt.Start(SpanFrom(ctx), name)
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// CopyTrace carries the trace and current span of src onto dst: the
// bridge for detached work that must outlive the request's cancellation
// (a detached job running under the server's base context) while still
// recording into the request's trace.
func CopyTrace(dst, src context.Context) context.Context {
	rt := TraceFrom(src)
	if rt == nil {
		return dst
	}
	dst = context.WithValue(dst, traceCtxKey{}, rt)
	if sp := SpanFrom(src); sp != nil {
		dst = context.WithValue(dst, spanCtxKey{}, sp)
	}
	return dst
}

// RequestRecord is one completed (or detached, still-running) request
// held by the SpanRecorder ring. The trace pointer is retained so spans
// ended after the HTTP response — a detached job's solve — appear when
// the record is later snapshotted.
type RequestRecord struct {
	rt         *RequestTrace
	Method     string
	Path       string
	Status     int
	Start      time.Time
	DurationNS int64
}

// RequestDoc is the JSON form served by /v1/debug/requests.
type RequestDoc struct {
	ID         string      `json:"id"`
	Method     string      `json:"method"`
	Path       string      `json:"path"`
	Status     int         `json:"status"`
	Start      time.Time   `json:"start"`
	DurationNS int64       `json:"duration_ns"`
	Spans      []*SpanNode `json:"spans"`
}

// Spans snapshots the record's trace flat, in seq order: the form a
// cluster worker ships over RPC for the coordinator to graft with
// AttachRemote.
func (r RequestRecord) Spans() []SpanSnapshot { return r.rt.Snapshot() }

// Doc snapshots the record's trace into its JSON form.
func (r RequestRecord) Doc() RequestDoc {
	return RequestDoc{
		ID:         r.rt.ID(),
		Method:     r.Method,
		Path:       r.Path,
		Status:     r.Status,
		Start:      r.Start,
		DurationNS: r.DurationNS,
		Spans:      BuildSpanTree(r.rt.Snapshot()),
	}
}

// SpanRecorder is a fixed-capacity ring of the most recent request
// records, newest evicting oldest. A nil recorder drops everything.
// Safe for concurrent use.
type SpanRecorder struct {
	mu   sync.Mutex
	cap  int
	recs []RequestRecord // oldest first
	byID map[string]int  // request ID -> index in recs
}

// NewSpanRecorder returns a recorder keeping the last capacity
// requests; capacity <= 0 yields a nil (drop-everything) recorder.
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		return nil
	}
	return &SpanRecorder{cap: capacity, byID: map[string]int{}}
}

// Record appends one finished request, evicting the oldest past
// capacity. Re-recording an ID replaces the earlier record in place.
// No-op on a nil recorder or a record without a trace.
func (sr *SpanRecorder) Record(rec RequestRecord) {
	if sr == nil || rec.rt == nil || rec.rt.ID() == "" {
		return
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if i, ok := sr.byID[rec.rt.ID()]; ok {
		sr.recs[i] = rec
		return
	}
	if len(sr.recs) >= sr.cap {
		delete(sr.byID, sr.recs[0].rt.ID())
		copy(sr.recs, sr.recs[1:])
		sr.recs = sr.recs[:len(sr.recs)-1]
		for id, i := range sr.byID {
			sr.byID[id] = i - 1
		}
	}
	sr.byID[rec.rt.ID()] = len(sr.recs)
	sr.recs = append(sr.recs, rec)
}

// NewRecord builds a RequestRecord for the given trace; exported so the
// serve layer does not reach into the struct's unexported trace field.
func NewRecord(rt *RequestTrace, method, path string, status int, start time.Time, duration time.Duration) RequestRecord {
	return RequestRecord{rt: rt, Method: method, Path: path, Status: status, Start: start, DurationNS: int64(duration)}
}

// Get returns the record for a request ID.
func (sr *SpanRecorder) Get(id string) (RequestRecord, bool) {
	if sr == nil {
		return RequestRecord{}, false
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	i, ok := sr.byID[id]
	if !ok {
		return RequestRecord{}, false
	}
	return sr.recs[i], true
}

// List returns the retained records newest first.
func (sr *SpanRecorder) List() []RequestRecord {
	if sr == nil {
		return nil
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]RequestRecord, len(sr.recs))
	for i, rec := range sr.recs {
		out[len(out)-1-i] = rec
	}
	return out
}
