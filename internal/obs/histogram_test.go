package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// le semantics: a value equal to a bound lands in that bound's bucket.
	for _, v := range []float64{0.5, 1} { // <= 1
		h.Observe(v)
	}
	h.Observe(1.5) // <= 2
	h.Observe(4)   // <= 4
	h.Observe(9)   // +Inf
	h.Observe(math.NaN())

	s := h.Snapshot()
	wantCounts := []int64{2, 1, 1, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("Counts len = %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("Counts[%d] = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5 (NaN must be dropped)", s.Count)
	}
	if want := 0.5 + 1 + 1.5 + 4 + 9; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
}

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram reports observations")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Bounds) != 0 {
		t.Errorf("nil Snapshot = %+v", s)
	}
	if err := h.Merge(HistogramSnapshot{Count: 3, Counts: []int64{3}}); err != nil {
		t.Errorf("nil Merge = %v", err)
	}
	// Zero t0 is the "not measuring" sentinel even on a live histogram.
	live := NewHistogram(nil)
	live.ObserveSince(time.Time{})
	if live.Count() != 0 {
		t.Error("ObserveSince(zero) recorded an observation")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b.Observe(5)
	b.Observe(50)
	if err := a.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s := a.Snapshot()
	for i, want := range []int64{1, 2, 1} {
		if s.Counts[i] != want {
			t.Errorf("merged Counts[%d] = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 4 || s.Sum != 60.5 {
		t.Errorf("merged Count/Sum = %d/%v, want 4/60.5", s.Count, s.Sum)
	}
	// Mismatched layouts are rejected, not silently mixed.
	odd := NewHistogram([]float64{1, 2, 3})
	if err := a.Merge(odd.Snapshot()); err != nil {
		t.Fatalf("merging an EMPTY mismatched snapshot should be a no-op, got %v", err)
	}
	odd.Observe(1)
	if err := a.Merge(odd.Snapshot()); err == nil {
		t.Error("merging a mismatched non-empty snapshot did not error")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in the first bucket
	}
	s := h.Snapshot()
	// Interpolation within [0,1]: p50 at rank 50/100.
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 0.5", got)
	}
	h.Observe(100) // one +Inf observation
	s = h.Snapshot()
	if got := s.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) with +Inf tail = %v, want highest finite bound 4", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := (HistogramSnapshot{}).Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001 * float64(w+1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
	var want float64
	for w := 0; w < workers; w++ {
		want += 0.001 * float64(w+1) * per
	}
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("Sum = %v, want %v", h.Sum(), want)
	}
	var bucketTotal int64
	for _, n := range h.Snapshot().Counts {
		bucketTotal += n
	}
	if bucketTotal != workers*per {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
}

func TestLogBounds(t *testing.T) {
	b := LogBounds(0.01, 10, 21)
	if len(b) != 21 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != 0.01 {
		t.Errorf("b[0] = %v", b[0])
	}
	// Exactly perDecade steps span one factor of ten.
	if math.Abs(b[10]/b[0]-10) > 1e-9 {
		t.Errorf("b[10]/b[0] = %v, want 10", b[10]/b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram(HstSolveSeconds).Observe(0.02)
	if r.Histogram(HstSolveSeconds).Count() != 1 {
		t.Error("registry did not return the same histogram twice")
	}
	snap := r.Snapshot()
	hs, ok := snap.Histograms[HstSolveSeconds]
	if !ok {
		t.Fatal("snapshot missing histogram")
	}
	if hs.Count != 1 || hs.Sum != 0.02 {
		t.Errorf("snapshot histogram = %+v", hs)
	}
	var nilReg *Registry
	if nilReg.Histogram(HstSolveSeconds) != nil {
		t.Error("nil registry returned a non-nil histogram")
	}
}
