package obs

import (
	"context"
	"testing"
	"time"
)

// buildTrace opens a small deterministic span tree against one trace:
// request -> (queue.wait, core.solve -> 2 lanes, cache.lookup).
func buildTrace(id string) *RequestTrace {
	rt := NewRequestTrace(id)
	root := rt.Start(nil, "request")
	rt.Start(root, "queue.wait").End()
	solve := rt.Start(root, "core.solve")
	solve.SetAttr("strategy", "portfolio")
	for i := 0; i < 2; i++ {
		lane := rt.Start(solve, "portfolio.lane")
		lane.SetAttr("lane", string(rune('0'+i)))
		lane.End()
	}
	solve.End()
	rt.Start(root, "cache.lookup").End()
	root.End()
	return rt
}

func TestSpanIDsDeterministic(t *testing.T) {
	a := buildTrace("req-000001")
	b := buildTrace("req-000001")
	other := buildTrace("req-000002")

	sa := StructureString(BuildSpanTree(a.Snapshot()))
	sb := StructureString(BuildSpanTree(b.Snapshot()))
	so := StructureString(BuildSpanTree(other.Snapshot()))
	if sa != sb {
		t.Errorf("same request ID produced different structures:\n%s\nvs\n%s", sa, sb)
	}
	if sa == so {
		t.Error("different request IDs produced identical span IDs")
	}
	// Sibling spans with the same name must still get distinct IDs
	// (child index participates in the derivation).
	snap := a.Snapshot()
	ids := map[string]bool{}
	for _, ss := range snap {
		if ids[ss.ID] {
			t.Fatalf("duplicate span ID %s", ss.ID)
		}
		ids[ss.ID] = true
	}
}

func TestSpanTreeShape(t *testing.T) {
	rt := buildTrace("req-000007")
	roots := BuildSpanTree(rt.Snapshot())
	if len(roots) != 1 || roots[0].Name != "request" {
		t.Fatalf("roots = %+v", roots)
	}
	kids := roots[0].Children
	if len(kids) != 3 {
		t.Fatalf("request children = %d, want 3", len(kids))
	}
	for i, want := range []string{"queue.wait", "core.solve", "cache.lookup"} {
		if kids[i].Name != want {
			t.Errorf("child %d = %q, want %q (seq order)", i, kids[i].Name, want)
		}
	}
	if n := len(kids[1].Children); n != 2 {
		t.Errorf("solve lanes = %d, want 2", n)
	}
	if got := kids[1].Attrs["strategy"]; got != "portfolio" {
		t.Errorf("strategy attr = %q", got)
	}
}

func TestSpanUnfinishedAndIdempotentEnd(t *testing.T) {
	rt := NewRequestTrace("req-000003")
	sp := rt.Start(nil, "open")
	snap := rt.Snapshot()
	if snap[0].DurationNS != -1 {
		t.Errorf("unfinished DurationNS = %d, want -1", snap[0].DurationNS)
	}
	sp.End()
	d := rt.Snapshot()[0].DurationNS
	if d < 0 {
		t.Fatalf("ended DurationNS = %d", d)
	}
	time.Sleep(time.Millisecond)
	sp.End() // second End must not restamp
	if again := rt.Snapshot()[0].DurationNS; again != d {
		t.Errorf("End not idempotent: %d then %d", d, again)
	}
	// SetAttr replaces in place rather than appending duplicates.
	sp.SetAttr("k", "a")
	sp.SetAttr("k", "b")
	if attrs := rt.Snapshot()[0].Attrs; len(attrs) != 1 || attrs["k"] != "b" {
		t.Errorf("attrs = %v", attrs)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var rt *RequestTrace
	if rt.ID() != "" || rt.Snapshot() != nil {
		t.Error("nil trace leaks state")
	}
	sp := rt.Start(nil, "x")
	if sp != nil {
		t.Fatal("nil trace returned a span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.ID() != "" {
		t.Error("nil span has an ID")
	}
}

func TestStartSpanContext(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("StartSpan without a trace returned a span")
	}
	if ctx != context.Background() {
		t.Error("StartSpan without a trace derived a new context")
	}

	rt := NewRequestTrace("req-000004")
	ctx = ContextWithTrace(context.Background(), rt)
	if TraceFrom(ctx) != rt || RequestIDFrom(ctx) != "req-000004" {
		t.Fatal("trace not attached")
	}
	ctx, root := StartSpan(ctx, "request")
	_, child := StartSpan(ctx, "stage")
	snap := rt.Snapshot()
	if len(snap) != 2 || snap[1].Parent != root.ID() {
		t.Errorf("child parentage wrong: %+v", snap)
	}
	if SpanFrom(ctx) != root {
		t.Error("derived ctx does not carry the new parent")
	}
	child.End()
	root.End()

	// CopyTrace carries trace+span onto an unrelated context.
	dst := CopyTrace(context.Background(), ctx)
	if TraceFrom(dst) != rt || SpanFrom(dst) != root {
		t.Error("CopyTrace dropped trace or span")
	}
	if got := CopyTrace(context.Background(), context.Background()); got != context.Background() {
		t.Error("CopyTrace without a trace derived a new context")
	}
}

// TestStartSpanOffPathZeroAllocs pins the free-when-off contract for the
// span layer: instrumented hot paths pay nothing when tracing is off.
func TestStartSpanOffPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(100, func() {
		_, sp := StartSpan(ctx, "hot")
		sp.SetAttr("k", "v")
		sp.End()
	}); allocs != 0 {
		t.Fatalf("StartSpan without a trace allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSpanRecorderRing(t *testing.T) {
	sr := NewSpanRecorder(2)
	rec := func(id string) RequestRecord {
		return NewRecord(NewRequestTrace(id), "GET", "/x", 200, time.Now(), time.Millisecond)
	}
	sr.Record(rec("a"))
	sr.Record(rec("b"))
	sr.Record(rec("c")) // evicts a
	if _, ok := sr.Get("a"); ok {
		t.Error("oldest record not evicted")
	}
	if _, ok := sr.Get("b"); !ok {
		t.Error("record b lost (eviction corrupted the index)")
	}
	list := sr.List()
	if len(list) != 2 || list[0].rt.ID() != "c" || list[1].rt.ID() != "b" {
		t.Errorf("List order wrong: %v", []string{list[0].rt.ID(), list[1].rt.ID()})
	}
	// Re-recording an ID replaces in place (detached jobs re-record on
	// completion) instead of duplicating.
	upd := rec("b")
	upd.Status = 500
	sr.Record(upd)
	if got, _ := sr.Get("b"); got.Status != 500 {
		t.Error("re-record did not replace")
	}
	if len(sr.List()) != 2 {
		t.Error("re-record duplicated the entry")
	}

	if nilRec := NewSpanRecorder(0); nilRec != nil {
		t.Error("capacity 0 should yield the nil recorder")
	}
	var nilSR *SpanRecorder
	nilSR.Record(rec("x"))
	if nilSR.List() != nil {
		t.Error("nil recorder retained a record")
	}
}

func TestRequestRecordDoc(t *testing.T) {
	rt := buildTrace("req-000009")
	doc := NewRecord(rt, "POST", "/v1/solve", 200, time.Now(), 5*time.Millisecond).Doc()
	if doc.ID != "req-000009" || doc.Method != "POST" || doc.Status != 200 {
		t.Errorf("doc header = %+v", doc)
	}
	if len(doc.Spans) != 1 || doc.Spans[0].Name != "request" {
		t.Errorf("doc spans = %+v", doc.Spans)
	}
}
