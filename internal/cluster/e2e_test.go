package cluster

// End-to-end cluster tests over real localhost HTTP: coordinator and
// workers are separate http servers, so every RPC crosses a TCP
// connection exactly as in a multi-process deployment. The tests pin
// the acceptance contract: a 1-worker and a 3-worker cluster — and a
// cluster that loses a worker mid-solve — return solution documents
// byte-identical to a local, dispatcher-less incmapd.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/obs/promtext"
	"incdes/internal/serve"
	"incdes/internal/tm"
)

func fixtureJSON(t testing.TB) []byte {
	t.Helper()
	data, err := os.ReadFile("../../testdata/system.json")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newWorker starts one worker daemon: a plain serve server with the
// cluster RPC endpoint mounted in front, listening on localhost TCP.
func newWorker(t testing.TB) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Config{Parallelism: 1, MaxConcurrent: 2, SolutionCacheSize: 32})
	w := NewWorker(s, WorkerOptions{Heartbeat: 50 * time.Millisecond})
	ts := httptest.NewServer(w.Handler(s.Handler()))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// newCluster starts a coordinator daemon over the given worker URLs.
func newCluster(t testing.TB, opts Options) *httptest.Server {
	t.Helper()
	c := NewCoordinator(opts)
	s := serve.New(serve.Config{
		Parallelism:   1,
		MaxConcurrent: 4,
		Dispatcher:    c,
		MetricsExtra:  c.MetricsExtra,
	})
	ts := httptest.NewServer(c.Handler(s.Handler()))
	t.Cleanup(func() { ts.Close(); s.Close(); c.Close() })
	return ts
}

// newLocal starts a dispatcher-less server — the byte-identity baseline.
func newLocal(t testing.TB) *httptest.Server {
	t.Helper()
	s := serve.New(serve.Config{Parallelism: 1, MaxConcurrent: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// jobResponse is the solve response with the solution kept raw for
// byte comparison.
type jobResponse struct {
	ID       string          `json:"id"`
	Status   string          `json:"status"`
	Error    string          `json:"error"`
	Worker   string          `json:"worker"`
	Solution json.RawMessage `json:"solution"`
	Stats    *obs.Snapshot   `json:"stats"`
}

func postSolve(t testing.TB, base, query string, system []byte, hdr map[string]string) (jobResponse, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/solve?"+query, bytes.NewReader(system))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc jobResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("POST /v1/solve?%s: not JSON: %v\n%s", query, err, body)
	}
	return doc, resp
}

func mustDone(t testing.TB, doc jobResponse, resp *http.Response, where string) {
	t.Helper()
	if resp.StatusCode != http.StatusOK || doc.Status != serve.StatusDone {
		t.Fatalf("%s: status %d / %q (error %q)", where, resp.StatusCode, doc.Status, doc.Error)
	}
}

// TestE2EByteIdenticalAcrossClusterSizes is the tentpole acceptance
// test: for every strategy shape the coordinator shards, 1-worker and
// 3-worker clusters return the byte-identical solution a local server
// produces.
func TestE2EByteIdenticalAcrossClusterSizes(t *testing.T) {
	system := fixtureJSON(t)
	local := newLocal(t)
	c1 := newCluster(t, Options{Workers: []string{newWorker(t).URL}})
	c3 := newCluster(t, Options{Workers: []string{newWorker(t).URL, newWorker(t).URL, newWorker(t).URL}})

	queries := []string{
		"strategy=mh",
		"strategy=ah",
		"strategy=sa&sa-restarts=3&sa-iters=200&seed=5",
		"strategy=portfolio&sa-restarts=2&sa-iters=150&seed=9",
	}
	for _, q := range queries {
		want, wresp := postSolve(t, local.URL, q, system, nil)
		mustDone(t, want, wresp, "local "+q)
		for name, ts := range map[string]*httptest.Server{"1-worker": c1, "3-worker": c3} {
			got, resp := postSolve(t, ts.URL, q, system, nil)
			mustDone(t, got, resp, name+" "+q)
			if !bytes.Equal(got.Solution, want.Solution) {
				t.Errorf("%s %s: solution differs from local\ncluster: %.200s\nlocal:   %.200s", name, q, got.Solution, want.Solution)
			}
			if resp.Header.Get("X-Incdes-Worker") == "" {
				t.Errorf("%s %s: X-Incdes-Worker header missing", name, q)
			}
			if got.Worker == "" {
				t.Errorf("%s %s: job document has no worker field", name, q)
			}
			if got.Stats == nil || got.Stats.Counters[obs.CtrClusterUnits] == 0 {
				t.Errorf("%s %s: cluster.units counter missing from request stats", name, q)
			}
		}
	}
}

// flakyWorker answers cluster.execute with one heartbeat and then kills
// the connection — a worker dying mid-chain, deterministically.
func flakyWorker(t testing.TB) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != RPCPath {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "event: progress\ndata: {\"unit\":0}\n\n")
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestE2EWorkerLossReassigns kills a worker mid-chain and checks the
// unit is reassigned, the reassignment is counted, and the final
// document still matches the local solve byte for byte.
func TestE2EWorkerLossReassigns(t *testing.T) {
	system := fixtureJSON(t)
	const q = "strategy=sa&sa-restarts=2&sa-iters=200&seed=11"

	local := newLocal(t)
	want, wresp := postSolve(t, local.URL, q, system, nil)
	mustDone(t, want, wresp, "local")

	// w1 dies mid-chain; w2 is real. A long probe interval keeps the
	// prober from ejecting w1 before the dispatcher ever tries it.
	flaky := flakyWorker(t)
	good := newWorker(t)
	cl := newCluster(t, Options{
		Workers:       []string{flaky.URL, good.URL},
		ProbeInterval: time.Hour,
	})

	got, resp := postSolve(t, cl.URL, q, system, nil)
	mustDone(t, got, resp, "cluster with dying worker")
	if !bytes.Equal(got.Solution, want.Solution) {
		t.Errorf("solution after worker loss differs from local\ncluster: %.200s\nlocal:   %.200s", got.Solution, want.Solution)
	}
	if got.Stats == nil {
		t.Fatal("no request stats")
	}
	if n := got.Stats.Counters[obs.CtrClusterReassigned]; n < 1 {
		t.Errorf("cluster.reassigned = %d, want >= 1", n)
	}
	if n := got.Stats.Counters[obs.CtrClusterRPCErrors]; n < 1 {
		t.Errorf("cluster.rpc_errors = %d, want >= 1", n)
	}
	if got.Worker != "w2" {
		t.Errorf("worker = %q, want w2 (the survivor)", got.Worker)
	}
}

// TestE2EDetachedJobDispatched covers the whole-job sharding shape:
// a detached solve runs on a worker and its status document names it.
func TestE2EDetachedJobDispatched(t *testing.T) {
	system := fixtureJSON(t)
	local := newLocal(t)
	want, wresp := postSolve(t, local.URL, "strategy=mh", system, nil)
	mustDone(t, want, wresp, "local")

	cl := newCluster(t, Options{Workers: []string{newWorker(t).URL}})
	queued, resp := postSolve(t, cl.URL, "strategy=mh&detach=1", system, nil)
	if resp.StatusCode != http.StatusAccepted || queued.ID == "" {
		t.Fatalf("detach: status %d, doc %+v", resp.StatusCode, queued)
	}
	deadline := time.Now().Add(30 * time.Second)
	var got jobResponse
	for {
		r, err := http.Get(cl.URL + "/v1/solve/" + queued.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("poll: %v\n%s", err, body)
		}
		if got.Status == serve.StatusDone || got.Status == serve.StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("detached job stuck in %q", got.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got.Status != serve.StatusDone {
		t.Fatalf("detached job = %q (error %q)", got.Status, got.Error)
	}
	if !bytes.Equal(got.Solution, want.Solution) {
		t.Errorf("detached cluster solution differs from local")
	}
	if got.Worker != "w1" {
		t.Errorf("worker = %q, want w1", got.Worker)
	}
}

// sessionFixture builds a small base system plus one follow-on
// application (same period, so future-load profiles agree).
func sessionFixture(t testing.TB) (sysJSON, appJSON []byte) {
	t.Helper()
	b := model.NewBuilder()
	b.Node("N0")
	b.Node("N1")
	b.Node("N2")
	b.UniformBus(8, 1, 2)
	mk := func(name string, procs int) {
		g := b.App(name).Graph(name+"-g", tm.Time(60), tm.Time(60))
		var prev model.ProcID
		for i := 0; i < procs; i++ {
			p := g.UniformProc(fmt.Sprintf("%s-p%d", name, i), 3)
			if i > 0 {
				g.Msg(prev, p, 4)
			}
			prev = p
		}
	}
	mk("base", 3)
	mk("app1", 2)
	full := b.MustSystem()
	var sys, app bytes.Buffer
	if err := (&model.System{Arch: full.Arch, Apps: full.Apps[:1]}).WriteJSON(&sys); err != nil {
		t.Fatal(err)
	}
	if err := full.Apps[1].WriteJSON(&app); err != nil {
		t.Fatal(err)
	}
	return sys.Bytes(), app.Bytes()
}

// TestE2ESessionCommitIdenticalAcrossClusterSizes pins that the session
// commit path yields identical documents regardless of cluster size
// (commits solve on the coordinator itself; the cluster must not
// perturb them).
func TestE2ESessionCommitIdenticalAcrossClusterSizes(t *testing.T) {
	sysJSON, appJSON := sessionFixture(t)
	servers := map[string]*httptest.Server{
		"local":    newLocal(t),
		"1-worker": newCluster(t, Options{Workers: []string{newWorker(t).URL}}),
		"3-worker": newCluster(t, Options{Workers: []string{newWorker(t).URL, newWorker(t).URL, newWorker(t).URL}}),
	}
	docs := map[string]json.RawMessage{}
	for name, ts := range servers {
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(sysJSON))
		if err != nil {
			t.Fatal(err)
		}
		var sess struct {
			ID string `json:"id"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &sess); err != nil || sess.ID == "" {
			t.Fatalf("%s: session open: %v\n%s", name, err, body)
		}
		resp, err = http.Post(ts.URL+"/v1/sessions/"+sess.ID+"/commits?strategy=mh", "application/json", bytes.NewReader(appJSON))
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		var doc jobResponse
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("%s: commit: %v\n%s", name, err, body)
		}
		if resp.StatusCode != http.StatusOK || doc.Status != serve.StatusDone {
			t.Fatalf("%s: commit = %d / %q (%q)", name, resp.StatusCode, doc.Status, doc.Error)
		}
		docs[name] = doc.Solution
	}
	for name, sol := range docs {
		if !bytes.Equal(sol, docs["local"]) {
			t.Errorf("%s commit solution differs from local", name)
		}
	}
}

// TestE2EMergedMetrics checks the coordinator's /v1/metrics merges the
// fleet: per-worker rows, a coordinator row, an all-workers aggregate —
// and the whole exposition stays lint-clean.
func TestE2EMergedMetrics(t *testing.T) {
	system := fixtureJSON(t)
	cl := newCluster(t, Options{Workers: []string{newWorker(t).URL, newWorker(t).URL}})
	doc, resp := postSolve(t, cl.URL, "strategy=sa&sa-restarts=2&sa-iters=100&seed=3", system, nil)
	mustDone(t, doc, resp, "solve")

	mresp, err := http.Get(cl.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", mresp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`worker="coordinator"`,
		`worker="w1"`,
		`worker="w2"`,
		`worker="all"`,
		"incdes_cluster_units_total",
		"incdes_cluster_probes_total",
		"incdes_cluster_unit_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if findings := promtext.Lint(bytes.NewReader(body)); len(findings) > 0 {
		t.Errorf("merged exposition fails lint:\n%s", strings.Join(findings, "\n"))
	}
}

// TestE2EReadyzBody checks the worker health endpoint serves the load
// signal the coordinator's prober consumes, with the status-code
// contract unchanged.
func TestE2EReadyzBody(t *testing.T) {
	w := newWorker(t)
	resp, err := http.Get(w.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz = %d, want 200", resp.StatusCode)
	}
	var doc serve.ReadyDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("readyz body is not JSON: %v", err)
	}
	if doc.Status != "ready" || doc.Draining {
		t.Errorf("readyz doc = %+v", doc)
	}
}

// TestE2ESpanGrafting checks the request-ID propagates across the RPC
// hop and the worker-side span tree is grafted into the coordinator's
// trace with a worker attribute.
func TestE2ESpanGrafting(t *testing.T) {
	system := fixtureJSON(t)
	cl := newCluster(t, Options{Workers: []string{newWorker(t).URL}})
	const reqID = "e2e-trace-1"
	doc, resp := postSolve(t, cl.URL, "strategy=sa&sa-restarts=2&sa-iters=100&seed=4", system,
		map[string]string{"X-Incdes-Request-Id": reqID})
	mustDone(t, doc, resp, "solve")

	dresp, err := http.Get(cl.URL + "/v1/debug/requests/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/requests/%s = %d: %s", reqID, dresp.StatusCode, body)
	}
	text := string(body)
	for _, want := range []string{
		"cluster.dispatch",
		"cluster.unit",
		"core.solve",    // the worker-side solve span, grafted
		`"worker":"w1"`, // the graft's worker attribute
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator trace missing %q\n%.600s", want, text)
		}
	}
}
