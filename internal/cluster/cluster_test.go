package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"incdes/internal/serve"
)

func TestPlanUnits(t *testing.T) {
	t.Run("mh-whole", func(t *testing.T) {
		units := planUnits(serve.SolveParams{Strategy: "mh", Timeout: 2 * time.Second})
		if len(units) != 1 || units[0].params.Strategy != "mh" || units[0].params.TimeoutMS != 2000 {
			t.Fatalf("units = %+v", units)
		}
	})
	t.Run("sa-one-unit-per-chain", func(t *testing.T) {
		units := planUnits(serve.SolveParams{Strategy: "sa", SARestarts: 3, SAIters: 100, SASeed: 7})
		if len(units) != 3 {
			t.Fatalf("len = %d, want 3", len(units))
		}
		for c, u := range units {
			p := u.params
			if p.Strategy != "sa" || p.SARestarts != 1 || p.SAChainOffset != c || p.SASeed != 7 || p.SAIters != 100 {
				t.Errorf("chain %d: params = %+v", c, p)
			}
			if u.idx != c || u.chain != c || u.tag != "SA" {
				t.Errorf("chain %d: unit = %+v", c, u)
			}
		}
	})
	t.Run("sa-default-restarts", func(t *testing.T) {
		if n := len(planUnits(serve.SolveParams{Strategy: "sa"})); n != 1 {
			t.Fatalf("len = %d, want 1", n)
		}
	})
	t.Run("portfolio-lanes-plus-chains", func(t *testing.T) {
		units := planUnits(serve.SolveParams{Strategy: "portfolio", SARestarts: 2})
		if len(units) != 4 {
			t.Fatalf("len = %d, want 4", len(units))
		}
		if units[0].params.Strategy != "ah" || units[0].lane != 0 ||
			units[1].params.Strategy != "mh" || units[1].lane != 1 {
			t.Fatalf("lanes = %+v", units[:2])
		}
		for c, u := range units[2:] {
			if u.lane != 2 || u.chain != c || u.params.SAChainOffset != c || u.idx != 2+c {
				t.Errorf("sa unit %d = %+v", c, u)
			}
		}
	})
}

func saOutcome(objective float64, evals int, interrupted bool) outcome {
	return outcome{res: &ExecuteResult{
		Status: serve.StatusDone,
		Doc:    &serve.SolutionDoc{Strategy: "SA", Objective: objective, Evaluations: evals, Interrupted: interrupted},
	}}
}

func TestReduceSA(t *testing.T) {
	t.Run("winner-and-evals", func(t *testing.T) {
		doc, best := reduceSA([]outcome{
			saOutcome(10, 101, false),
			saOutcome(4, 51, false),
			saOutcome(7, 31, false),
		})
		if best != 1 || doc.Objective != 4 {
			t.Fatalf("best = %d, doc = %+v", best, doc)
		}
		// Grouping-independent total: 1 + (100 + 50 + 30).
		if doc.Evaluations != 181 {
			t.Errorf("evaluations = %d, want 181", doc.Evaluations)
		}
		if doc.Interrupted {
			t.Error("interrupted = true on clean chains")
		}
	})
	t.Run("ties-break-to-lowest-chain", func(t *testing.T) {
		_, best := reduceSA([]outcome{saOutcome(5, 2, false), saOutcome(5, 2, false)})
		if best != 0 {
			t.Errorf("best = %d, want 0", best)
		}
	})
	t.Run("interrupted-ors", func(t *testing.T) {
		doc, _ := reduceSA([]outcome{saOutcome(5, 2, false), saOutcome(6, 2, true)})
		if !doc.Interrupted {
			t.Error("interrupted chain lost in reduce")
		}
	})
}

func TestRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&rpcFailure{code: serve.ErrCodeQueueFull}, true},
		{&rpcFailure{code: serve.ErrCodeDraining}, true},
		{&rpcFailure{code: "unavailable"}, true},
		{&rpcFailure{code: "bad_request"}, false},
		{&rpcFailure{code: "internal"}, false},
		{errors.New("connection refused"), true},
		{fmt.Errorf("wrapped: %w", &rpcFailure{code: "bad_request"}), false},
	}
	for _, tc := range cases {
		if got := retryable(tc.err); got != tc.want {
			t.Errorf("retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := newRegistry()
	if n1 := r.add("http://a"); n1 != "w1" {
		t.Fatalf("name = %q, want w1", n1)
	}
	if again := r.add("http://a"); again != "w1" {
		t.Fatalf("re-add = %q, want w1 (idempotent)", again)
	}
	r.add("http://b")
	r.add("http://c")

	// Least-loaded wins; ties break to the lowest registration index.
	w := r.pick(nil)
	if w.name != "w1" {
		t.Fatalf("first pick = %s, want w1", w.name)
	}
	if w2 := r.pick(nil); w2.name != "w2" {
		t.Fatalf("second pick = %s, want w2 (w1 holds a lease)", w2.name)
	}
	if w3 := r.pick(map[string]bool{"w3": true}); w3.name != "w1" && w3.name != "w2" {
		// All hold one lease; excluded w3 must not be chosen.
		t.Fatalf("excluded pick = %s", w3.name)
	}
	r.release(w)

	// Ejection after the fail limit, and immediate markDown.
	ws := r.list()
	if r.probeFail(ws[0], 3) || r.probeFail(ws[0], 3) {
		t.Fatal("ejected before reaching the fail limit")
	}
	if !r.probeFail(ws[0], 3) {
		t.Fatal("no ejection at the fail limit")
	}
	if r.healthyCount() != 2 {
		t.Fatalf("healthy = %d, want 2", r.healthyCount())
	}
	if !r.markDown(ws[1]) || r.markDown(ws[1]) {
		t.Fatal("markDown transition reported wrong")
	}
	// Probe success readmits.
	if !r.probeOK(ws[0], 5, 1) {
		t.Fatal("probeOK did not report readmission")
	}
	if r.healthyCount() != 2 {
		t.Fatalf("healthy after readmit = %d, want 2", r.healthyCount())
	}
	// The reported queue depth feeds placement.
	if got := r.list()[0].queueDepth; got != 5 {
		t.Fatalf("queueDepth = %d, want 5", got)
	}
}

func TestReadStream(t *testing.T) {
	beats := 0
	stream := "event: progress\ndata: {\"unit\":1}\n\n" +
		"event: progress\ndata: {\"unit\":1}\n\n" +
		"event: result\ndata: {\"id\":7,\"result\":{\"status\":\"done\"}}\n\n"
	raw, err := readStream(strings.NewReader(stream), func() { beats++ })
	if err != nil {
		t.Fatal(err)
	}
	if beats != 2 {
		t.Errorf("heartbeats = %d, want 2", beats)
	}
	var res ExecuteResult
	if err := decodeResponse(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "done" {
		t.Errorf("status = %q", res.Status)
	}

	if _, err := readStream(strings.NewReader("event: progress\ndata: {}\n\n"), nil); err == nil {
		t.Error("truncated stream did not error")
	}
}

func TestDecodeResponseError(t *testing.T) {
	err := decodeResponse([]byte(`{"id":1,"error":{"code":"queue_full","message":"busy"}}`), &ExecuteResult{})
	if err == nil || !retryable(err) {
		t.Fatalf("err = %v, want retryable rpc failure", err)
	}
	var rf *rpcFailure
	if !errors.As(err, &rf) || rf.code != serve.ErrCodeQueueFull {
		t.Fatalf("err = %v", err)
	}
}
