// Package cluster turns a set of incmapd daemons into one solve
// cluster: a coordinator shards work units — SA restart chains,
// portfolio lanes, whole ah/mh jobs — across worker daemons over a
// small JSON-RPC-over-HTTP protocol and reduces the results in unit
// index order, so cluster size and scheduling can change only the wall
// clock, never the answer.
//
// Protocol. Workers mount POST /v1/cluster/rpc; the request body is a
// JSON-RPC-shaped envelope {method, id, params}:
//
//	cluster.execute   run one work unit; the response is an SSE stream
//	                  of heartbeat "progress" events (the coordinator's
//	                  lease liveness signal) terminated by one "result"
//	                  event carrying the {id, result|error} envelope
//	cluster.snapshot  plain JSON response: the worker's aggregate obs
//	                  snapshot, merged into the coordinator's /v1/metrics
//
// Coordinators mount POST /v1/cluster/workers for worker
// self-registration (incmapd -worker-of re-posts it periodically, so a
// restarted coordinator re-learns its fleet).
//
// Determinism argument. Every unit is a plain solve request against the
// worker's own serve stack — admission, solution cache, single-flight
// and metrics all reused — and core.Solve is deterministic, so a unit's
// result depends only on (system, unit params), never on which worker
// ran it or how often it was retried or duplicated. The coordinator
// reduces in unit index order with the same tie-breaks the local
// strategies use (lowest objective, then lowest chain/lane index), and
// rewrites the SA winner's evaluation count to the grouping-independent
// total 1 + Σ(unit_evals − 1). A 1-worker and a 3-worker cluster — or a
// cluster that lost and reassigned a worker mid-solve — therefore
// return byte-identical solution documents.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"

	"incdes/internal/obs"
	"incdes/internal/serve"
)

// Protocol paths and method names.
const (
	RPCPath      = "/v1/cluster/rpc"     // worker: JSON-RPC endpoint
	RegisterPath = "/v1/cluster/workers" // coordinator: self-registration

	MethodExecute  = "cluster.execute"
	MethodSnapshot = "cluster.snapshot"
)

// rpcRequest is the JSON-RPC-shaped request envelope.
type rpcRequest struct {
	Method string          `json:"method"`
	ID     int64           `json:"id"`
	Params json.RawMessage `json:"params,omitempty"`
}

// rpcError is a protocol-level failure. Code classifies it for the
// coordinator's retry policy; see retryable.
type rpcError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// rpcResponse is the response envelope (the "result" SSE event's data
// for cluster.execute, the whole body otherwise).
type rpcResponse struct {
	ID     int64           `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *rpcError       `json:"error,omitempty"`
}

// rpcFailure is an rpcError surfaced as a Go error on the coordinator.
type rpcFailure struct {
	code string
	msg  string
}

func (e *rpcFailure) Error() string { return fmt.Sprintf("cluster: rpc %s: %s", e.code, e.msg) }

// retryable reports whether a unit attempt that failed with err may
// succeed on another worker: transport errors and capacity rejections
// yes, deterministic request failures no.
func retryable(err error) bool {
	var rf *rpcFailure
	if errors.As(err, &rf) {
		switch rf.code {
		case serve.ErrCodeQueueFull, serve.ErrCodeDraining, "unavailable":
			return true
		}
		return false
	}
	return true // transport-level: connection refused, reset, EOF, ...
}

// UnitParams are the solve parameters of one work unit, mapped 1:1 onto
// the worker's /v1/solve query string.
type UnitParams struct {
	Strategy      string `json:"strategy"`
	App           string `json:"app,omitempty"`
	SAIters       int    `json:"sa_iters,omitempty"`
	SARestarts    int    `json:"sa_restarts,omitempty"`
	SASeed        int64  `json:"sa_seed,omitempty"`
	SAChainOffset int    `json:"sa_chain_offset,omitempty"`
	TimeoutMS     int64  `json:"timeout_ms,omitempty"`
	NoCache       bool   `json:"no_cache,omitempty"`
}

// ExecuteParams is the cluster.execute payload: one work unit.
type ExecuteParams struct {
	// RequestID is the coordinator's correlation ID suffixed with the
	// unit index ("req-000007/u2"), propagated as X-Incdes-Request-Id so
	// worker-side spans are unique per unit and graftable into the
	// coordinator's trace.
	RequestID string `json:"request_id,omitempty"`
	// Unit is the global unit index, echoed in progress events.
	Unit int `json:"unit"`
	// Params select what the unit solves.
	Params UnitParams `json:"params"`
	// System is the problem input, verbatim canonical JSON.
	System json.RawMessage `json:"system"`
}

// ExecuteResult is a terminal unit outcome. Status and Error mirror the
// worker-side job document; Doc is nil exactly when the solve failed.
type ExecuteResult struct {
	Status string             `json:"status"`
	Error  string             `json:"error,omitempty"`
	Doc    *serve.SolutionDoc `json:"doc,omitempty"`
	// Cache is the worker-side X-Incdes-Cache annotation (hit/miss/
	// inflight) — informational; hits still return the identical bytes.
	Cache string `json:"cache,omitempty"`
	// Spans are the worker-side span snapshots of the unit's request,
	// grafted into the coordinator's trace with a worker attribute.
	Spans []obs.SpanSnapshot `json:"spans,omitempty"`
}

// SnapshotResult is the cluster.snapshot payload.
type SnapshotResult struct {
	Snapshot obs.Snapshot `json:"snapshot"`
}

// RegisterParams is the worker self-registration payload.
type RegisterParams struct {
	URL string `json:"url"`
}

// progressEvent is the data of one SSE heartbeat.
type progressEvent struct {
	Unit int `json:"unit"`
}
