package cluster

// Worker side: the RPC endpoint a worker incmapd mounts in front of its
// serve stack. Units execute as in-process HTTP round-trips against the
// wrapped serve handler, so admission control, the solution cache,
// single-flight dedup, metrics and the request-trace middleware are all
// reused verbatim — a worker is an ordinary incmapd plus one endpoint.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"incdes/internal/serve"
)

// WorkerOptions tune a Worker. Zero values select the defaults.
type WorkerOptions struct {
	// Heartbeat is the progress-event cadence of cluster.execute streams
	// (default 250ms) — the coordinator's lease liveness signal.
	Heartbeat time.Duration
	// RegisterInterval is how often RegisterLoop re-posts the
	// registration (default 2s).
	RegisterInterval time.Duration
	// HTTPClient performs self-registration posts (default
	// http.DefaultClient).
	HTTPClient *http.Client
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 250 * time.Millisecond
	}
	if o.RegisterInterval <= 0 {
		o.RegisterInterval = 2 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// Worker serves the cluster RPC protocol over a serve.Server.
type Worker struct {
	srv  *serve.Server
	opts WorkerOptions
}

// NewWorker wraps an assembled serve.Server.
func NewWorker(srv *serve.Server, opts WorkerOptions) *Worker {
	return &Worker{srv: srv, opts: opts.withDefaults()}
}

// Handler mounts the RPC endpoint in front of next (normally the
// wrapped server's own handler).
func (w *Worker) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+RPCPath, w.handleRPC)
	mux.Handle("/", next)
	return mux
}

func (w *Worker) handleRPC(rw http.ResponseWriter, r *http.Request) {
	var req rpcRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeRPC(rw, http.StatusBadRequest, rpcResponse{Error: &rpcError{Code: "bad_request", Message: err.Error()}})
		return
	}
	switch req.Method {
	case MethodSnapshot:
		raw, err := json.Marshal(SnapshotResult{Snapshot: w.srv.StatsSnapshot()})
		if err != nil {
			writeRPC(rw, http.StatusInternalServerError, rpcResponse{ID: req.ID, Error: &rpcError{Code: "internal", Message: err.Error()}})
			return
		}
		writeRPC(rw, http.StatusOK, rpcResponse{ID: req.ID, Result: raw})
	case MethodExecute:
		w.execute(rw, r, req)
	default:
		writeRPC(rw, http.StatusBadRequest, rpcResponse{ID: req.ID, Error: &rpcError{Code: "bad_request", Message: "unknown method " + req.Method}})
	}
}

func writeRPC(rw http.ResponseWriter, code int, resp rpcResponse) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(resp)
}

// solveQuery maps unit params onto the /v1/solve query string.
func solveQuery(p UnitParams) string {
	q := url.Values{}
	if p.Strategy != "" {
		q.Set("strategy", p.Strategy)
	}
	if p.App != "" {
		q.Set("app", p.App)
	}
	if p.SAIters != 0 {
		q.Set("sa-iters", strconv.Itoa(p.SAIters))
	}
	if p.SARestarts != 0 {
		q.Set("sa-restarts", strconv.Itoa(p.SARestarts))
	}
	if p.SASeed != 0 {
		q.Set("seed", strconv.FormatInt(p.SASeed, 10))
	}
	if p.SAChainOffset != 0 {
		q.Set("sa-chain-offset", strconv.Itoa(p.SAChainOffset))
	}
	if p.TimeoutMS > 0 {
		q.Set("timeout", (time.Duration(p.TimeoutMS) * time.Millisecond).String())
	}
	if p.NoCache {
		q.Set("cache", "off")
	}
	return q.Encode()
}

// recorder is the minimal ResponseWriter the in-process round-trip
// needs. It deliberately does not implement http.Flusher: the solve
// endpoint never streams, and the serve middleware only upgrades
// writers that do.
type recorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func newRecorder() *recorder { return &recorder{hdr: http.Header{}} }

func (r *recorder) Header() http.Header { return r.hdr }

func (r *recorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}

// execute runs one unit and streams progress heartbeats until the
// result. The solve runs under the RPC request's context, so a
// coordinator abandoning the stream cancels the unit.
func (w *Worker) execute(rw http.ResponseWriter, r *http.Request, req rpcRequest) {
	var p ExecuteParams
	if err := json.Unmarshal(req.Params, &p); err != nil {
		writeRPC(rw, http.StatusBadRequest, rpcResponse{ID: req.ID, Error: &rpcError{Code: "bad_request", Message: err.Error()}})
		return
	}
	flusher, canStream := rw.(http.Flusher)

	hreq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/v1/solve?"+solveQuery(p.Params), bytes.NewReader(p.System))
	if err != nil {
		writeRPC(rw, http.StatusBadRequest, rpcResponse{ID: req.ID, Error: &rpcError{Code: "bad_request", Message: err.Error()}})
		return
	}
	if p.RequestID != "" {
		hreq.Header.Set("X-Incdes-Request-Id", p.RequestID)
	}
	rec := newRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.srv.Handler().ServeHTTP(rec, hreq)
	}()

	if canStream {
		h := rw.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("X-Accel-Buffering", "no")
		rw.WriteHeader(http.StatusOK)
		flusher.Flush()
	}
	enc := json.NewEncoder(rw)
	tick := time.NewTicker(w.opts.Heartbeat)
	defer tick.Stop()
	for running := true; running; {
		select {
		case <-done:
			running = false
		case <-tick.C:
			if canStream {
				fmt.Fprint(rw, "event: progress\ndata: ")
				enc.Encode(progressEvent{Unit: p.Unit})
				fmt.Fprint(rw, "\n")
				flusher.Flush()
			}
		case <-r.Context().Done():
			return // coordinator gone; the solve context is cancelled with it
		}
	}

	resp := w.unitResponse(req.ID, p, rec)
	if !canStream {
		writeRPC(rw, http.StatusOK, resp)
		return
	}
	fmt.Fprint(rw, "event: result\ndata: ")
	enc.Encode(resp)
	fmt.Fprint(rw, "\n")
	flusher.Flush()
}

// unitResponse folds the in-process solve response into the RPC result.
// 200 and 422 are terminal unit outcomes (done/interrupted/failed);
// everything else is a protocol-level error the coordinator classifies
// for retry (queue_full and draining are retryable elsewhere).
func (w *Worker) unitResponse(id int64, p ExecuteParams, rec *recorder) rpcResponse {
	switch rec.code {
	case http.StatusOK, http.StatusUnprocessableEntity:
		var doc serve.JobStatusDoc
		if err := json.Unmarshal(rec.body.Bytes(), &doc); err != nil {
			return rpcResponse{ID: id, Error: &rpcError{Code: "internal", Message: "decoding job document: " + err.Error()}}
		}
		res := ExecuteResult{
			Status: doc.Status,
			Error:  doc.Error,
			Doc:    doc.Solution,
			Cache:  rec.hdr.Get("X-Incdes-Cache"),
		}
		if p.RequestID != "" {
			res.Spans = w.srv.RequestSpans(p.RequestID)
		}
		raw, err := json.Marshal(res)
		if err != nil {
			return rpcResponse{ID: id, Error: &rpcError{Code: "internal", Message: err.Error()}}
		}
		return rpcResponse{ID: id, Result: raw}
	default:
		var ed serve.ErrorDoc
		code, msg := "unavailable", fmt.Sprintf("worker solve returned %d", rec.code)
		if json.Unmarshal(rec.body.Bytes(), &ed) == nil && ed.Error.Code != "" {
			code, msg = ed.Error.Code, ed.Error.Message
		}
		return rpcResponse{ID: id, Error: &rpcError{Code: code, Message: msg}}
	}
}

// RegisterLoop posts the worker's advertise URL to the coordinator's
// registration endpoint until ctx ends, re-posting every interval so a
// restarted coordinator re-learns the worker. Registration is
// idempotent by URL.
func (w *Worker) RegisterLoop(ctx context.Context, coordinatorURL, selfURL string) {
	body, _ := json.Marshal(RegisterParams{URL: selfURL})
	post := func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coordinatorURL+RegisterPath, bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := w.opts.HTTPClient.Do(req)
		if err != nil {
			return
		}
		resp.Body.Close()
	}
	post()
	tick := time.NewTicker(w.opts.RegisterInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			post()
		}
	}
}
