package cluster

// Worker registry: membership, health state from /readyz probes, and
// the load signal (leases + reported queue depth) unit placement uses.

import (
	"sync"
)

// workerState is one registered worker.
type workerState struct {
	name string // stable short label: w1, w2, ... in registration order
	url  string

	healthy    bool
	fails      int   // consecutive probe failures
	queueDepth int64 // from the last /readyz body
	inFlight   int64
	leases     int // units currently leased to this worker
}

// registry tracks the worker fleet. All methods are safe for concurrent
// use.
type registry struct {
	mu      sync.Mutex
	workers []*workerState
	byURL   map[string]*workerState
}

func newRegistry() *registry {
	return &registry{byURL: map[string]*workerState{}}
}

// add registers a worker by URL, idempotently, and returns its stable
// name. New workers start healthy so they are schedulable before the
// first probe.
func (r *registry) add(url string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.byURL[url]; ok {
		return w.name
	}
	w := &workerState{
		name:    "w" + itoa(len(r.workers)+1),
		url:     url,
		healthy: true,
	}
	r.workers = append(r.workers, w)
	r.byURL[url] = w
	return w.name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// pick leases the least-loaded healthy worker not in exclude (a set of
// worker names), preferring lower registration index on ties so
// placement is deterministic given equal load. Returns nil when no
// eligible worker exists.
func (r *registry) pick(exclude map[string]bool) *workerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *workerState
	var bestLoad int64
	for _, w := range r.workers {
		if !w.healthy || exclude[w.name] {
			continue
		}
		load := int64(w.leases) + w.queueDepth
		if best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	if best != nil {
		best.leases++
	}
	return best
}

// release returns a lease taken by pick.
func (r *registry) release(w *workerState) {
	r.mu.Lock()
	if w.leases > 0 {
		w.leases--
	}
	r.mu.Unlock()
}

// probeOK records a successful health probe and its load report.
// Returns true when the worker transitioned unhealthy→healthy.
func (r *registry) probeOK(w *workerState, queueDepth, inFlight int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w.fails = 0
	w.queueDepth = queueDepth
	w.inFlight = inFlight
	readmitted := !w.healthy
	w.healthy = true
	return readmitted
}

// probeFail records a failed probe; after limit consecutive failures
// the worker is ejected (marked unhealthy). Returns true on the
// healthy→unhealthy transition.
func (r *registry) probeFail(w *workerState, limit int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w.fails++
	if w.healthy && w.fails >= limit {
		w.healthy = false
		return true
	}
	return false
}

// markDown ejects a worker immediately (e.g. on a transport-level RPC
// failure); the prober readmits it when /readyz answers again. Returns
// true on the healthy→unhealthy transition.
func (r *registry) markDown(w *workerState) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !w.healthy {
		return false
	}
	w.healthy = false
	w.fails++
	return true
}

// list returns a stable-order snapshot of the fleet.
func (r *registry) list() []*workerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*workerState, len(r.workers))
	copy(out, r.workers)
	return out
}

// healthyCount reports how many workers are currently schedulable.
func (r *registry) healthyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.healthy {
			n++
		}
	}
	return n
}

// WorkerInfo is the public registry row served at GET RegisterPath.
type WorkerInfo struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Healthy    bool   `json:"healthy"`
	QueueDepth int64  `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`
	Leases     int    `json:"leases"`
}

// info snapshots the fleet for the HTTP listing.
func (r *registry) info() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerInfo{
			Name:       w.name,
			URL:        w.url,
			Healthy:    w.healthy,
			QueueDepth: w.queueDepth,
			InFlight:   w.inFlight,
			Leases:     w.leases,
		})
	}
	return out
}
