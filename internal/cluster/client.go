package cluster

// Coordinator-side RPC client: one call per work unit, speaking either
// the SSE-framed cluster.execute stream or plain-JSON envelopes.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"

	"incdes/internal/obs"
)

// client posts RPC envelopes to worker base URLs. Safe for concurrent
// use.
type client struct {
	http *http.Client
	next atomic.Int64 // request-ID counter; correlation only, no protocol meaning
}

func (c *client) call(ctx context.Context, baseURL string, req rpcRequest) (*http.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+RPCPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.http.Do(hreq)
}

// decodeResponse unwraps an rpc envelope into out, mapping the error
// branch to *rpcFailure.
func decodeResponse(raw []byte, out any) error {
	var resp rpcResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return fmt.Errorf("cluster: decoding rpc response: %w", err)
	}
	if resp.Error != nil {
		return &rpcFailure{code: resp.Error.Code, msg: resp.Error.Message}
	}
	return json.Unmarshal(resp.Result, out)
}

// execute runs one unit on the worker at baseURL. progress (may be nil)
// is invoked on every heartbeat event — the lease liveness signal.
func (c *client) execute(ctx context.Context, baseURL string, params ExecuteParams, progress func()) (*ExecuteResult, error) {
	raw, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(ctx, baseURL, rpcRequest{Method: MethodExecute, ID: c.next.Add(1), Params: raw})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	mt, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	var envelope []byte
	if mt == "text/event-stream" {
		envelope, err = readStream(resp.Body, progress)
		if err != nil {
			return nil, err
		}
	} else {
		envelope, err = io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		if err != nil {
			return nil, err
		}
	}
	var res ExecuteResult
	if err := decodeResponse(envelope, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// readStream consumes an SSE stream until the terminal "result" event
// and returns its data payload. Any heartbeat fires progress.
func readStream(r io.Reader, progress func()) ([]byte, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	var event string
	var data bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event == "result" {
				return bytes.Clone(data.Bytes()), nil
			}
			if event == "progress" && progress != nil {
				progress()
			}
			event = ""
			data.Reset()
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: execute stream: %w", err)
	}
	return nil, fmt.Errorf("cluster: execute stream ended without result")
}

// snapshot fetches the worker's aggregate obs snapshot.
func (c *client) snapshot(ctx context.Context, baseURL string) (*obs.Snapshot, error) {
	resp, err := c.call(ctx, baseURL, rpcRequest{Method: MethodSnapshot, ID: c.next.Add(1)})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var res SnapshotResult
	if err := decodeResponse(raw, &res); err != nil {
		return nil, err
	}
	return &res.Snapshot, nil
}
