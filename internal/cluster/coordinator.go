package cluster

// Coordinator: the serve.Dispatcher that shards a solve into work units,
// leases them to workers, reassigns on failure, steals stragglers, and
// reduces the results deterministically (see the package doc for the
// full argument).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"incdes/internal/obs"
	"incdes/internal/obs/promtext"
	"incdes/internal/serve"
)

// Options tune a Coordinator. Zero values select the defaults.
type Options struct {
	// Workers are statically configured worker base URLs (registered
	// before the first dispatch). Workers may also self-register at
	// runtime via POST RegisterPath.
	Workers []string
	// LeaseTimeout is how long a unit may go without a heartbeat before
	// a duplicate attempt is launched on another worker (default 3s).
	LeaseTimeout time.Duration
	// ProbeInterval is the /readyz health-probe cadence (default 1s).
	ProbeInterval time.Duration
	// ProbeFailLimit ejects a worker after this many consecutive failed
	// probes (default 3). The prober readmits it on the next success.
	ProbeFailLimit int
	// HTTPClient carries all coordinator→worker traffic (default: a
	// client without a global timeout — execute streams are long-lived;
	// probes and snapshots bound themselves with context deadlines).
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 3 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeFailLimit <= 0 {
		o.ProbeFailLimit = 3
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

// Coordinator implements serve.Dispatcher over a worker fleet.
type Coordinator struct {
	opts Options
	reg  *registry
	rpc  *client
	// own holds the coordinator's fleet-management instruments (probes,
	// ejections, healthy-worker gauge) — exported on /v1/metrics under
	// {worker="coordinator"}. Unit-lifecycle counters go to the job
	// registry instead, so they fold into the serve aggregates.
	own *obs.Registry

	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// NewCoordinator builds the fleet registry and starts the health
// prober. Call Close to stop it.
func NewCoordinator(opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		opts:      opts,
		reg:       newRegistry(),
		rpc:       &client{http: opts.HTTPClient},
		own:       obs.NewRegistry(),
		probeDone: make(chan struct{}),
	}
	for _, u := range opts.Workers {
		c.reg.add(u)
	}
	c.own.Gauge(obs.GagClusterWorkers).Set(int64(c.reg.healthyCount()))
	ctx, cancel := context.WithCancel(context.Background())
	c.probeCancel = cancel
	go c.probeLoop(ctx)
	return c
}

// Close stops the health prober.
func (c *Coordinator) Close() {
	c.probeCancel()
	<-c.probeDone
}

// Handler mounts the worker-registration endpoints in front of next
// (normally the coordinator's serve handler).
func (c *Coordinator) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+RegisterPath, c.handleRegister)
	mux.HandleFunc("GET "+RegisterPath, c.handleWorkers)
	mux.Handle("/", next)
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var p RegisterParams
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil || p.URL == "" {
		http.Error(w, `{"error":{"code":"bad_request","message":"body must be {\"url\":...}"}}`, http.StatusBadRequest)
		return
	}
	name := c.reg.add(strings.TrimRight(p.URL, "/"))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"name": name})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"workers": c.reg.info()})
}

// probeLoop polls every worker's /readyz, feeding the load signal and
// health state the placement logic uses.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	tick := time.NewTicker(c.opts.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			for _, w := range c.reg.list() {
				c.probe(ctx, w)
			}
			c.own.Gauge(obs.GagClusterWorkers).Set(int64(c.reg.healthyCount()))
		}
	}
}

// probe checks one worker. Only a 200 with a parsable body counts as
// healthy: a draining worker (503) stops receiving new units.
func (c *Coordinator) probe(ctx context.Context, w *workerState) {
	c.own.Counter(obs.CtrClusterProbes).Inc()
	pctx, cancel := context.WithTimeout(ctx, c.opts.ProbeInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.url+"/readyz", nil)
	if err != nil {
		c.probeFailed(w)
		return
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		c.probeFailed(w)
		return
	}
	defer resp.Body.Close()
	var doc serve.ReadyDoc
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&doc) != nil {
		c.probeFailed(w)
		return
	}
	c.reg.probeOK(w, doc.QueueDepth, doc.InFlight)
}

func (c *Coordinator) probeFailed(w *workerState) {
	if c.reg.probeFail(w, c.opts.ProbeFailLimit) {
		c.own.Counter(obs.CtrClusterEjections).Inc()
	}
}

// CanDispatch claims every ordinary solve while at least one worker is
// schedulable. Chain-slice requests (sa-chain-offset set) are already
// cluster work units and always run locally — a coordinator that is
// also registered as someone's worker must not re-shard them.
func (c *Coordinator) CanDispatch(p serve.SolveParams) bool {
	return p.SAChainOffset == 0 && c.reg.healthyCount() > 0
}

// unit is one shard of a solve.
type unit struct {
	idx    int    // global unit index: reduce order and span/trace identity
	lane   int    // portfolio lane (0 for non-portfolio)
	chain  int    // SA chain index within the lane
	tag    string // strategy tag for error wrapping ("AH", "MH", "SA")
	params UnitParams
}

// planUnits shards the request: ah/mh run whole, sa fans one unit per
// restart chain, portfolio fans its ah and mh lanes plus the SA lane's
// chains.
func planUnits(p serve.SolveParams) []unit {
	base := UnitParams{
		App:       p.App,
		TimeoutMS: int64(p.Timeout / time.Millisecond),
		NoCache:   p.NoCache,
	}
	switch p.Strategy {
	case "sa":
		return saUnits(p, base, 0, 0)
	case "portfolio":
		ah, mh := base, base
		ah.Strategy, mh.Strategy = "ah", "mh"
		units := []unit{
			{idx: 0, lane: 0, tag: "AH", params: ah},
			{idx: 1, lane: 1, tag: "MH", params: mh},
		}
		return append(units, saUnits(p, base, 2, 2)...)
	default: // "", "ah", "mh": one unit, passed through
		u := base
		u.Strategy = p.Strategy
		tag := "MH"
		if p.Strategy == "ah" {
			tag = "AH"
		}
		return []unit{{idx: 0, tag: tag, params: u}}
	}
}

// saUnits emits one single-chain unit per restart: Restarts=1 with
// ChainOffset=c reproduces exactly chain c of the local restart fan.
func saUnits(p serve.SolveParams, base UnitParams, idx0, lane int) []unit {
	restarts := p.SARestarts
	if restarts < 1 {
		restarts = 1
	}
	units := make([]unit, 0, restarts)
	for ch := 0; ch < restarts; ch++ {
		up := base
		up.Strategy = "sa"
		up.SAIters = p.SAIters
		up.SASeed = p.SASeed
		up.SARestarts = 1
		up.SAChainOffset = ch
		units = append(units, unit{idx: idx0 + ch, lane: lane, chain: ch, tag: "SA", params: up})
	}
	return units
}

// outcome is one unit's terminal result.
type outcome struct {
	res    *ExecuteResult
	worker string
	err    error
}

// Dispatch shards, executes and reduces one solve.
func (c *Coordinator) Dispatch(ctx context.Context, req *serve.DispatchRequest) (*serve.DispatchResult, error) {
	units := planUnits(req.Params)
	var buf bytes.Buffer
	if err := req.System.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("cluster: serializing system: %w", err)
	}
	system := json.RawMessage(buf.Bytes())

	rt := obs.TraceFrom(ctx)
	requestID := ""
	if rt != nil {
		requestID = rt.ID()
	}
	dctx, dspan := obs.StartSpan(ctx, "cluster.dispatch")
	spans := make([]*obs.Span, len(units))
	for i, u := range units {
		_, spans[i] = obs.StartSpan(dctx, "cluster.unit")
		if spans[i] != nil {
			spans[i].SetAttr("unit", strconv.Itoa(u.idx))
			spans[i].SetAttr("strategy", u.tag)
			if u.tag == "SA" {
				spans[i].SetAttr("chain", strconv.Itoa(u.chain))
			}
		}
	}

	outs := make([]outcome, len(units))
	var wg sync.WaitGroup
	for i := range units {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, worker, err := c.runUnit(ctx, req.Registry, requestID, units[i], system)
			outs[i] = outcome{res: res, worker: worker, err: err}
		}(i)
	}
	wg.Wait()

	// Graft the worker-side span trees in unit order, so the combined
	// trace is deterministic up to timings and worker names.
	for i := range units {
		if spans[i] == nil {
			continue
		}
		if outs[i].worker != "" {
			spans[i].SetAttr("worker", outs[i].worker)
		}
		spans[i].End()
		if rt != nil && outs[i].res != nil && len(outs[i].res.Spans) > 0 {
			rt.AttachRemote(spans[i], outs[i].res.Spans, map[string]string{"worker": outs[i].worker})
		}
	}
	if dspan != nil {
		dspan.End()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	doc, winner, err := c.reduce(req, units, outs)
	if err != nil {
		return nil, err
	}
	c.emitTrace(req.Tracer, units, outs, doc, winner)

	var workers []string
	seen := map[string]bool{}
	for _, o := range outs {
		if o.worker != "" && !seen[o.worker] {
			seen[o.worker] = true
			workers = append(workers, o.worker)
		}
	}
	return &serve.DispatchResult{Doc: doc, Worker: strings.Join(workers, ",")}, nil
}

// attempt is one worker's answer for a unit.
type attempt struct {
	res *ExecuteResult
	err error
	ws  *workerState
}

// runUnit executes one unit with lease-based retry and work stealing.
// Duplicated or reassigned attempts are safe: every attempt of one unit
// computes the identical result, so the first answer wins.
func (c *Coordinator) runUnit(ctx context.Context, jreg *obs.Registry, requestID string, u unit, system json.RawMessage) (*ExecuteResult, string, error) {
	jreg.Counter(obs.CtrClusterUnits).Inc()
	t0 := time.Now()
	defer func() { jreg.Histogram(obs.HstClusterUnitSecs).ObserveSince(t0) }()

	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	results := make(chan attempt, 8)
	running := map[string]bool{}
	inflight := 0

	start := func(ws *workerState) {
		inflight++
		running[ws.name] = true
		go func() {
			params := ExecuteParams{
				RequestID: unitRequestID(requestID, u.idx),
				Unit:      u.idx,
				Params:    u.params,
				System:    system,
			}
			res, err := c.rpc.execute(ctx, ws.url, params, func() {
				lastBeat.Store(time.Now().UnixNano())
			})
			c.reg.release(ws)
			results <- attempt{res: res, err: err, ws: ws}
		}()
	}

	ws, err := c.lease(ctx, running)
	if err != nil {
		return nil, "", err
	}
	start(ws)

	leaseTick := time.NewTicker(c.opts.LeaseTimeout / 4)
	defer leaseTick.Stop()
	stolen := false
	for {
		select {
		case <-ctx.Done():
			return nil, "", ctx.Err()
		case a := <-results:
			inflight--
			delete(running, a.ws.name)
			if a.err == nil {
				return a.res, a.ws.name, nil
			}
			jreg.Counter(obs.CtrClusterRPCErrors).Inc()
			if !retryable(a.err) {
				return nil, "", a.err
			}
			// Transport-level loss: eject the worker now (the prober
			// readmits it when /readyz answers again) and reassign if
			// this was the unit's only live attempt.
			if c.reg.markDown(a.ws) {
				c.own.Counter(obs.CtrClusterEjections).Inc()
				c.own.Gauge(obs.GagClusterWorkers).Set(int64(c.reg.healthyCount()))
			}
			if inflight == 0 {
				jreg.Counter(obs.CtrClusterReassigned).Inc()
				ws, err := c.lease(ctx, running)
				if err != nil {
					return nil, "", err
				}
				lastBeat.Store(time.Now().UnixNano())
				start(ws)
			}
		case <-leaseTick.C:
			if stolen || inflight == 0 {
				continue
			}
			if time.Duration(time.Now().UnixNano()-lastBeat.Load()) < c.opts.LeaseTimeout {
				continue
			}
			// Straggler: duplicate the unit on another worker (at most
			// once per unit); first answer wins.
			if ws := c.reg.pick(running); ws != nil {
				stolen = true
				jreg.Counter(obs.CtrClusterSteals).Inc()
				start(ws)
			}
		}
	}
}

// lease blocks until a schedulable worker outside exclude is available.
func (c *Coordinator) lease(ctx context.Context, exclude map[string]bool) (*workerState, error) {
	for {
		if ws := c.reg.pick(exclude); ws != nil {
			return ws, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func unitRequestID(requestID string, idx int) string {
	if requestID == "" {
		return ""
	}
	return fmt.Sprintf("%s/u%d", requestID, idx)
}

// reduce folds unit outcomes into the solve's single solution document,
// reproducing the local strategies' winner selection and error
// precedence bit for bit. Returns the winning unit index.
func (c *Coordinator) reduce(req *serve.DispatchRequest, units []unit, outs []outcome) (*serve.SolutionDoc, int, error) {
	// RPC-level failures first, in unit order (these are coordinator
	// infrastructure errors, not solve outcomes).
	for i := range units {
		if outs[i].err != nil {
			return nil, 0, outs[i].err
		}
		if outs[i].res == nil || (outs[i].res.Status != serve.StatusFailed && outs[i].res.Doc == nil) {
			return nil, 0, fmt.Errorf("cluster: unit %d returned no document", i)
		}
	}
	switch req.Params.Strategy {
	case "portfolio":
		return c.reducePortfolio(req, units, outs)
	case "sa":
		// Deterministic solve failure: every unit fails identically, so
		// the first chain's message is the local run's message.
		for i := range units {
			if outs[i].res.Status == serve.StatusFailed {
				return nil, 0, errors.New(outs[i].res.Error)
			}
		}
		doc, winner := reduceSA(outs)
		return doc, winner, nil
	default:
		if outs[0].res.Status == serve.StatusFailed {
			return nil, 0, errors.New(outs[0].res.Error)
		}
		return outs[0].res.Doc, 0, nil
	}
}

// reduceSA picks the best chain — lowest objective, ties to the lowest
// chain index (the same strict-less scan core's SA uses) — and rewrites
// the evaluation count to the grouping-independent total: every chain
// doc counts the shared initial evaluation once, so the fan of n chains
// evaluated 1 + Σ(evals_i − 1) designs regardless of how the chains
// were grouped onto workers.
func reduceSA(outs []outcome) (*serve.SolutionDoc, int) {
	best := -1
	evals := 1
	interrupted := false
	for i, o := range outs {
		evals += o.res.Doc.Evaluations - 1
		interrupted = interrupted || o.res.Doc.Interrupted
		if best < 0 || o.res.Doc.Objective < outs[best].res.Doc.Objective {
			best = i
		}
	}
	doc := *outs[best].res.Doc
	doc.Evaluations = evals
	doc.Interrupted = interrupted
	return &doc, best
}

// reducePortfolio reproduces the local portfolio's error precedence
// (first failed lane in lane order, wrapped with lane index and tag)
// and winner selection (lowest objective, ties to the lowest lane).
func (c *Coordinator) reducePortfolio(req *serve.DispatchRequest, units []unit, outs []outcome) (*serve.SolutionDoc, int, error) {
	for i := range units {
		if outs[i].res.Status == serve.StatusFailed {
			return nil, 0, fmt.Errorf("core: portfolio lane %d (%s): %s", units[i].lane, units[i].tag, outs[i].res.Error)
		}
	}
	// Lane documents: ah and mh pass through; the SA lane reduces its
	// chain units exactly like a standalone sa solve.
	laneDocs := []*serve.SolutionDoc{outs[0].res.Doc, outs[1].res.Doc}
	saDoc, saBest := reduceSA(outs[2:])
	laneDocs = append(laneDocs, saDoc)
	winner := 0
	for i, d := range laneDocs {
		if d.Objective < laneDocs[winner].Objective {
			winner = i
		}
	}
	req.Registry.Gauge(obs.GagPortfolioWinner).Set(int64(winner))
	winnerUnit := winner
	if winner == 2 {
		winnerUnit = 2 + saBest
	}
	return laneDocs[winner], winnerUnit, nil
}

// emitTrace records the deterministic cluster events into the job's SSE
// buffer: one cluster.unit event per unit in index order, then the
// decision. Worker names never appear here — the stream must not depend
// on scheduling.
func (c *Coordinator) emitTrace(t obs.Tracer, units []unit, outs []outcome, doc *serve.SolutionDoc, winner int) {
	if t == nil {
		return
	}
	for i, u := range units {
		ev := obs.TraceEvent{
			Kind:     "cluster.unit",
			Strategy: u.tag,
			Chain:    u.idx,
			Feasible: outs[i].res != nil && outs[i].res.Doc != nil,
		}
		if outs[i].res != nil && outs[i].res.Doc != nil {
			ev.Cost = outs[i].res.Doc.Objective
			ev.Evaluations = int64(outs[i].res.Doc.Evaluations)
		}
		t.Trace(ev)
	}
	t.Trace(obs.TraceEvent{
		Kind:        "decision",
		Strategy:    doc.Strategy,
		Chain:       winner,
		Cost:        doc.Objective,
		Evaluations: int64(doc.Evaluations),
	})
}

// MetricsExtra merges the fleet's metrics into the coordinator's
// /v1/metrics exposition: the coordinator's own fleet instruments under
// {worker="coordinator"}, each worker's aggregate snapshot under
// {worker="wN"}, and the cross-fleet merge under {worker="all"}.
// Unreachable workers are skipped — the exposition must not block on a
// dead node.
func (c *Coordinator) MetricsExtra(col *promtext.Collection) {
	col.Add(map[string]string{"worker": "coordinator"}, c.own.Snapshot())
	agg := obs.NewRegistry()
	for _, w := range c.reg.list() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		snap, err := c.rpc.snapshot(ctx, w.url)
		cancel()
		if err != nil {
			continue
		}
		col.Add(map[string]string{"worker": w.name}, *snap)
		mergeSnapshot(agg, snap)
	}
	col.Add(map[string]string{"worker": "all"}, agg.Snapshot())
}

// mergeSnapshot folds one worker snapshot into the aggregate registry:
// counters and timers add, gauges last-win, histograms merge bucket-wise.
func mergeSnapshot(agg *obs.Registry, s *obs.Snapshot) {
	for name, v := range s.Counters {
		agg.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		agg.Gauge(name).Set(v)
	}
	for name, ns := range s.TimersNS {
		agg.Timer(name).Observe(time.Duration(ns))
	}
	for name, hs := range s.Histograms {
		// Mismatched bounds cannot merge; drop rather than corrupt.
		_ = agg.Histogram(name).Merge(hs)
	}
}
