package session_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"incdes/internal/session"
)

// sampleDoc builds a real session document (root version plus one
// commit) by driving the library, so the conformance suite exercises
// everything a production document contains.
func sampleDoc(t *testing.T) *session.Doc {
	t.Helper()
	_, commits, _ := fixture(t)
	_, sess := open(t, session.NewMemStore())
	commit(t, sess, commits[0], session.CommitParams{})
	doc, err := sess.Doc()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func encodeDoc(t *testing.T, d *session.Doc) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := session.EncodeDoc(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreConformance runs the identical contract suite over both
// built-in stores: round-trip fidelity, ErrNotFound, replace, tolerant
// delete, listing, and the no-aliasing rule (mutating a document before
// or after the store call never changes what the store returns).
func TestStoreConformance(t *testing.T) {
	stores := []struct {
		name string
		mk   func(t *testing.T) session.Store
	}{
		{"mem", func(t *testing.T) session.Store { return session.NewMemStore() }},
		{"disk", func(t *testing.T) session.Store {
			st, err := session.NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return st
		}},
	}
	for _, tc := range stores {
		t.Run(tc.name, func(t *testing.T) {
			st := tc.mk(t)
			doc := sampleDoc(t)
			want := encodeDoc(t, doc)

			if _, err := st.Get(doc.ID); !errors.Is(err, session.ErrNotFound) {
				t.Fatalf("Get before Put: err = %v, want ErrNotFound", err)
			}
			if err := st.Put(doc); err != nil {
				t.Fatalf("Put: %v", err)
			}
			// Mutating our copy after Put must not reach the store.
			doc.Branches["rogue"] = 0
			got, err := st.Get(doc.ID)
			delete(doc.Branches, "rogue")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(encodeDoc(t, got), want) {
				t.Fatal("stored document does not round-trip canonically")
			}
			// Mutating the returned copy must not reach the store either.
			got.Branches["rogue"] = 0
			again, err := st.Get(doc.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeDoc(t, again), want) {
				t.Fatal("store aliases the document it returns")
			}

			// Replace with a new revision.
			doc2 := got
			delete(doc2.Branches, "rogue")
			doc2.Branches["alt"] = 0
			if err := st.Put(doc2); err != nil {
				t.Fatalf("Put (replace): %v", err)
			}
			rev, err := st.Get(doc.ID)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := rev.Branches["alt"]; !ok {
				t.Fatal("replace did not persist the new revision")
			}

			ids, err := st.List()
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			sort.Strings(ids)
			if len(ids) != 1 || ids[0] != doc.ID {
				t.Fatalf("List = %v, want [%s]", ids, doc.ID)
			}

			if err := st.Delete(doc.ID); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := st.Get(doc.ID); !errors.Is(err, session.ErrNotFound) {
				t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
			}
			if err := st.Delete(doc.ID); err != nil {
				t.Fatalf("Delete (absent): %v", err)
			}
			if ids, err := st.List(); err != nil || len(ids) != 0 {
				t.Fatalf("List after Delete = %v, %v; want empty", ids, err)
			}
		})
	}
}

// TestDiskStoreRoundTrip pins durability across process restarts: a
// second DiskStore over the same directory returns the byte-identical
// canonical document. (CI's fuzz-smoke matrix runs this by name.)
func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc := sampleDoc(t)
	want := encodeDoc(t, doc)
	if err := st.Put(doc); err != nil {
		t.Fatal(err)
	}

	reopened, err := session.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", reopened.Dir(), dir)
	}
	got, err := reopened.Get(doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeDoc(t, got), want) {
		t.Fatal("disk round trip is not byte-identical")
	}

	// The on-disk form is exactly the canonical encoding.
	raw, err := os.ReadFile(filepath.Join(dir, doc.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("on-disk bytes differ from the canonical encoding")
	}
	// No temp files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

// TestDiskStoreRejectsUnsafeIDs pins the path-traversal guard.
func TestDiskStoreRejectsUnsafeIDs(t *testing.T) {
	st, err := session.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../evil", "a/b", ".hidden", strings.Repeat("x", 65)} {
		if _, err := st.Get(id); err == nil || errors.Is(err, session.ErrNotFound) {
			t.Errorf("Get(%q) err = %v, want invalid-id error", id, err)
		}
	}
}
