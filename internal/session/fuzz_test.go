package session_test

import (
	"bytes"
	"context"
	"testing"

	"incdes/internal/core"
	"incdes/internal/session"
)

// FuzzDecodeDoc hardens the session-document loader, the trust boundary
// every stored session crosses on reload: arbitrary bytes must never
// panic, and every accepted document must satisfy the structural
// invariants, re-encode canonically, and re-decode to the byte-identical
// canonical form (decode∘encode is a fixed point).
func FuzzDecodeDoc(f *testing.F) {
	// Seed with a real two-version document produced by the library.
	sys, commits, _ := fixture(f)
	m, err := session.NewManager(session.NewMemStore(), nil)
	if err != nil {
		f.Fatal(err)
	}
	sess, err := m.Open(sys, nil, "")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := sess.Commit(context.Background(), commits[0],
		session.CommitParams{Strategy: core.AH, Parallelism: 1}); err != nil {
		f.Fatal(err)
	}
	doc, err := sess.Doc()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := session.EncodeDoc(&buf, doc); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{`))
	f.Add([]byte(`{"schema_version":1}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := session.DecodeDoc(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted implies valid — DecodeDoc validates, so this is the
		// idempotence check.
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted document fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := session.EncodeDoc(&out, got); err != nil {
			t.Fatalf("accepted document fails to encode: %v", err)
		}
		again, err := session.DecodeDoc(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding fails to re-decode: %v", err)
		}
		var out2 bytes.Buffer
		if err := session.EncodeDoc(&out2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}
