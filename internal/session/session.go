// Package session makes the paper's incremental design process a
// first-class, versioned object: a design session opens over a base
// system (version 0 — every existing application scheduled and frozen),
// then grows one committed application at a time. Each commit maps and
// schedules the new application against the frozen composite of its
// parent version through core.Solve, reusing the version's cached
// metrics.Baseline, and freezes the result as a new version. Branches
// name what-if lines of development from any version, rollback moves a
// branch head back along its ancestry, and any two versions can be
// diffed (placement delta plus metric delta).
//
// The commit legality rule follows MIMOS's model of deterministic update
// of deployed time-triggered systems: a commit is legal only if it leaves
// the composite hyperperiod unchanged (the deployed cyclic schedule's
// time frame is part of the frozen contract) and touches nothing already
// placed — strategies only ever add to the frozen composite, so every
// prior version's schedule is preserved verbatim, entry for entry.
//
// Sessions persist behind the pluggable Store interface (memory and
// atomic on-disk JSON implementations) as pure replay logs: a version
// stores its application, mapping, start-offset hints and a fingerprint
// of the composite schedule, so a fresh process rematerializes any
// version deterministically and verifies it against the stored
// fingerprint.
package session

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"incdes/internal/cache"
	"incdes/internal/core"
	"incdes/internal/future"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
)

// Sentinel errors of the session lifecycle; HTTP and CLI layers map them
// to status codes.
var (
	// ErrIllegalCommit marks a commit the MIMOS-style legality rule
	// rejects: colliding IDs, an application that fails model validation,
	// or one whose periods would change the composite hyperperiod.
	ErrIllegalCommit = errors.New("session: illegal commit")
	// ErrUnknownBranch names a branch the session does not have.
	ErrUnknownBranch = errors.New("session: unknown branch")
	// ErrUnknownVersion names a version outside the session's tree.
	ErrUnknownVersion = errors.New("session: unknown version")
	// ErrBranchExists rejects creating a branch name twice.
	ErrBranchExists = errors.New("session: branch already exists")
	// ErrNotAncestor rejects a rollback target that is not on the branch
	// head's ancestor chain.
	ErrNotAncestor = errors.New("session: rollback target is not an ancestor of the branch head")
	// ErrConflict reports a concurrent modification detected at commit
	// time (the branch head moved while the solve ran).
	ErrConflict = errors.New("session: branch head moved during commit")
	// ErrCorrupt reports that replaying a stored version did not
	// reproduce its recorded fingerprint.
	ErrCorrupt = errors.New("session: replay does not reproduce the stored fingerprint")
	// ErrExists rejects opening a session under an ID already in use.
	ErrExists = errors.New("session: id already exists")
)

// Manager owns the live sessions of one process: it hands out Session
// handles, assigns IDs, and keeps the Store and the observability
// registry every session reports into.
type Manager struct {
	store Store
	reg   *obs.Registry // session.* counters; nil disables

	mu     sync.Mutex
	live   map[string]*Session
	nextID int64
}

// NewManager opens a manager over a store. Existing stored sessions are
// not loaded eagerly — Get rematerializes them on demand — but their IDs
// seed the ID generator so new sessions never collide. reg may be nil.
func NewManager(store Store, reg *obs.Registry) (*Manager, error) {
	ids, err := store.List()
	if err != nil {
		return nil, err
	}
	m := &Manager{store: store, reg: reg, live: map[string]*Session{}}
	for _, id := range ids {
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > m.nextID {
			m.nextID = n
		}
	}
	return m, nil
}

// count increments a session.* counter; free when no registry attached.
func (m *Manager) count(name string) {
	if m.reg != nil {
		m.reg.Counter(name).Inc()
	}
}

func (m *Manager) setLiveGauge() {
	if m.reg != nil {
		m.reg.Gauge(obs.GagSessLive).Set(int64(len(m.live)))
	}
}

// Open creates a session over sys: every application of sys is scheduled
// in arrival order with the initial-mapping algorithm and frozen as
// version 0. prof pins the future-application characterization for the
// whole session; nil derives it from sys exactly as the one-shot solve
// path does (gen.ProfileForSystem with the default configuration). id
// names the session; "" assigns the next free sN.
func (m *Manager) Open(sys *model.System, prof *future.Profile, id string) (*Session, error) {
	if sys == nil {
		return nil, fmt.Errorf("session: open: no system")
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if len(sys.Apps) == 0 {
		return nil, fmt.Errorf("session: open: base system has no applications (the future profile is derived from them)")
	}
	if prof == nil {
		prof = gen.ProfileForSystem(gen.Default(), sys)
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}

	st, err := sched.NewState(sys)
	if err != nil {
		return nil, err
	}
	for _, app := range sys.Apps {
		if _, err := st.MapApp(app, sched.Hints{}); err != nil {
			return nil, fmt.Errorf("session: open: scheduling application %q: %w", app.Name, err)
		}
	}
	w := metrics.DefaultWeights(prof)
	rep := metrics.Evaluate(st, prof, w)

	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		m.nextID++
		id = "s" + strconv.FormatInt(m.nextID, 10)
	} else if !idRe.MatchString(id) {
		return nil, fmt.Errorf("session: invalid session id %q", id)
	}
	if _, ok := m.live[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	}
	if _, err := m.store.Get(id); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrExists, id)
	} else if !errors.Is(err, ErrNotFound) {
		return nil, err
	}

	doc := &Doc{
		SchemaVersion: DocSchemaVersion,
		ID:            id,
		System:        sys,
		Profile:       prof,
		Versions: []*VersionDoc{{
			ID:          RootVersion,
			Parent:      noParent,
			Report:      rep,
			Fingerprint: fingerprint(st),
		}},
		Branches: map[string]int{MainBranch: RootVersion},
	}
	s := newSession(doc, m.store, m.reg)
	s.states[RootVersion] = st
	s.systems[RootVersion] = sys
	if err := m.store.Put(doc); err != nil {
		return nil, err
	}
	m.live[id] = s
	m.count(obs.CtrSessOpens)
	m.setLiveGauge()
	return s, nil
}

// Get returns the live session, loading and revalidating it from the
// store when this process has not touched it yet. Schedule states are
// rematerialized lazily by replay on first use.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	if s, ok := m.live[id]; ok {
		m.mu.Unlock()
		return s, nil
	}
	m.mu.Unlock()

	doc, err := m.store.Get(id) // outside the lock: disk + replay are slow
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.live[id]; ok { // lost the race; keep the first load
		return s, nil
	}
	s := newSession(doc, m.store, m.reg)
	m.live[id] = s
	m.setLiveGauge()
	return s, nil
}

// List returns every stored session ID, sorted.
func (m *Manager) List() ([]string, error) {
	ids, err := m.store.List()
	if err != nil {
		return nil, err
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes a session from the store and from memory.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	delete(m.live, id)
	m.setLiveGauge()
	m.mu.Unlock()
	return m.store.Delete(id)
}

// Session is one live versioned design session. All methods are safe for
// concurrent use; commits additionally serialize against each other, so
// two commits to the same branch never both succeed from the same parent
// (the second would observe the moved head and report ErrConflict only
// if it raced a rollback — commit-vs-commit simply queues).
type Session struct {
	store Store
	reg   *obs.Registry

	// commitMu serializes whole commits (including their solves);
	// mu guards the document and the materialization caches and is never
	// held across a solve.
	commitMu sync.Mutex
	mu       sync.Mutex
	doc      *Doc
	prof     *future.Profile
	weights  metrics.Weights

	// Per-version materialization caches, lazily filled by replay:
	// the composite system, its frozen schedule state, and the metric
	// baseline commits from this version reuse.
	systems   map[int]*model.System
	states    map[int]*sched.State
	baselines map[int]*metrics.Baseline
}

func newSession(doc *Doc, store Store, reg *obs.Registry) *Session {
	return &Session{
		store:     store,
		reg:       reg,
		doc:       doc,
		prof:      doc.Profile,
		weights:   metrics.DefaultWeights(doc.Profile),
		systems:   map[int]*model.System{},
		states:    map[int]*sched.State{},
		baselines: map[int]*metrics.Baseline{},
	}
}

// ID returns the session's identifier.
func (s *Session) ID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.ID
}

// Doc returns a deep copy of the persisted document.
func (s *Session) Doc() (*Doc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.doc.Clone()
}

// Profile returns the session's pinned future-application profile.
func (s *Session) Profile() *future.Profile { return s.prof }

// Weights returns the session's objective weights.
func (s *Session) Weights() metrics.Weights { return s.weights }

func (s *Session) count(name string) {
	if s.reg != nil {
		s.reg.Counter(name).Inc()
	}
}

// fingerprint hashes a schedule state's canonical serialization.
func fingerprint(st *sched.State) string {
	sum := sha256.Sum256(st.Fingerprint())
	return hex.EncodeToString(sum[:])
}

// chainLocked returns the version IDs from the root to v, inclusive.
func (s *Session) chainLocked(v int) ([]int, error) {
	if v < 0 || v >= len(s.doc.Versions) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVersion, v)
	}
	var rev []int
	for cur := v; cur != noParent; cur = s.doc.Versions[cur].Parent {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// systemAtLocked assembles (and caches) the composite system of a
// version: the base system's applications plus every application
// committed along the chain, in commit order.
func (s *Session) systemAtLocked(v int) (*model.System, error) {
	if sys := s.systems[v]; sys != nil {
		return sys, nil
	}
	chain, err := s.chainLocked(v)
	if err != nil {
		return nil, err
	}
	apps := append([]*model.Application(nil), s.doc.System.Apps...)
	for _, id := range chain {
		if vd := s.doc.Versions[id]; vd.App != nil {
			apps = append(apps, vd.App)
		}
	}
	sys := &model.System{Arch: s.doc.System.Arch, Apps: apps}
	s.systems[v] = sys
	return sys, nil
}

// stateAtLocked returns (materializing and caching if needed) the frozen
// composite schedule of a version. Replay reschedules the base
// applications with the initial-mapping algorithm and then re-applies
// every commit's stored mapping and hints; the result must reproduce the
// stored fingerprint or the session is reported corrupt.
func (s *Session) stateAtLocked(v int) (*sched.State, error) {
	if st := s.states[v]; st != nil {
		return st, nil
	}
	sys, err := s.systemAtLocked(v)
	if err != nil {
		return nil, err
	}
	st, err := sched.NewState(sys)
	if err != nil {
		return nil, err
	}
	for _, app := range s.doc.System.Apps {
		if _, err := st.MapApp(app, sched.Hints{}); err != nil {
			return nil, fmt.Errorf("session: replay of version %d: base application %q: %w", v, app.Name, err)
		}
	}
	chain, err := s.chainLocked(v)
	if err != nil {
		return nil, err
	}
	for _, id := range chain {
		vd := s.doc.Versions[id]
		if vd.App == nil {
			continue
		}
		if err := st.ScheduleApp(vd.App, vd.Mapping, vd.Hints.Hints()); err != nil {
			return nil, fmt.Errorf("session: replay of version %d: commit %d (%q): %w", v, id, vd.App.Name, err)
		}
	}
	if got, want := fingerprint(st), s.doc.Versions[v].Fingerprint; got != want {
		return nil, fmt.Errorf("%w: version %d replayed to %s, stored %s", ErrCorrupt, v, got[:12], want[:12])
	}
	s.states[v] = st
	s.count(obs.CtrSessReplays)
	return st, nil
}

// StateAt materializes a version's frozen composite schedule.
func (s *Session) StateAt(v int) (*sched.State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateAtLocked(v)
}

// baselineAtLocked returns the version's cached metric baseline,
// computing it on first use.
func (s *Session) baselineAtLocked(v int) (*metrics.Baseline, bool, error) {
	if b := s.baselines[v]; b != nil {
		s.count(obs.CtrSessBaselineReuses)
		return b, true, nil
	}
	st, err := s.stateAtLocked(v)
	if err != nil {
		return nil, false, err
	}
	b := metrics.NewBaseline(st, s.prof, s.weights)
	s.baselines[v] = b
	s.count(obs.CtrSessBaselineBuilds)
	return b, false, nil
}

// BaselineAt returns the cached metric baseline of a version, building
// it on first use, and whether it was served from the cache.
func (s *Session) BaselineAt(v int) (*metrics.Baseline, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baselineAtLocked(v)
}

// persistLocked writes the document to the store.
func (s *Session) persistLocked() error {
	return s.store.Put(s.doc)
}

// CommitParams configure one commit's solve.
type CommitParams struct {
	// Branch to advance; "" means main.
	Branch string
	// Strategy is the mapping strategy (required), as for core.Solve.
	Strategy core.Strategy
	// Parallelism, Incremental, CacheSize and Observer are handed to
	// core.Solve unchanged.
	Parallelism int
	Incremental core.IncrementalMode
	CacheSize   int
	Observer    *obs.Observer
	// SolveCache, when non-nil, is a whole-solution cache consulted
	// before the solve. The key is the commit's problem fingerprint and
	// includes the parent version's composite-schedule fingerprint, so a
	// hit is only possible when the exact frozen base, committed
	// application, objective and strategy all match — and then the cached
	// decisions rematerialize byte-identically (deterministic replay).
	// Only complete (uninterrupted) solves are stored.
	SolveCache *cache.LRU
	// CacheSpec is the canonical strategy identity hashed into the cache
	// key; ignored when SolveCache is nil.
	CacheSpec cache.Spec
}

// commitSolveEntry is one cached commit solve: the decisions plus the
// result fields needed to freeze an identical version without running
// the engine. Mapping and hints are stored as private clones.
type commitSolveEntry struct {
	strategy    string
	mapping     model.Mapping
	hints       sched.Hints
	report      metrics.Report
	evaluations int
}

// CommitResult reports one commit.
type CommitResult struct {
	// Version is the new version's ID, or -1 when the solve was
	// interrupted and no version was created (the solution still carries
	// the best design found, for inspection).
	Version int
	// Parent is the version the commit was built on.
	Parent int
	// Branch is the branch the commit advanced.
	Branch string
	// Solution is the full solve outcome over the composite problem.
	Solution *core.Solution
	// BaselineReused reports whether the parent version's metric
	// baseline was served from the session cache.
	BaselineReused bool
	// CacheHit reports whether the whole solve was served from
	// CommitParams.SolveCache (the engine never ran).
	CacheHit bool
}

// Commit maps and schedules app against the frozen composite of the
// branch head, following the same preparation as a one-shot solve of the
// composed system — except that the frozen base schedule and its metric
// baseline come from the session's caches instead of being rebuilt per
// request. On success the result is frozen as a new version and the
// branch head advances.
//
// A cancelled ctx yields the best-so-far solution with Version == -1 and
// no state change: only complete, deterministic solves become versions
// (MIMOS's commit rule — an update is either fully planned or not
// deployed at all).
func (s *Session) Commit(ctx context.Context, app *model.Application, p CommitParams) (*CommitResult, error) {
	if app == nil {
		return nil, fmt.Errorf("%w: no application", ErrIllegalCommit)
	}
	if p.Strategy == nil {
		return nil, fmt.Errorf("session: commit: no strategy")
	}
	branch := p.Branch
	if branch == "" {
		branch = MainBranch
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()

	// Legality + base preparation, under the session lock and the
	// request's "commit.legality" span: resolve the branch head, validate
	// the composed system (hyperperiod rule), restrict the frozen
	// composite and fetch the metric baseline.
	var (
		head      int
		parentSys *model.System
		newSys    *model.System
		base      *sched.State
		bl        *metrics.Baseline
		reused    bool
		parentFP  string
	)
	_, legalitySpan := obs.StartSpan(ctx, "commit.legality")
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		var ok bool
		head, ok = s.doc.Branches[branch]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownBranch, branch)
		}
		src, err := s.stateAtLocked(head)
		if err != nil {
			return err
		}
		parentSys, err = s.systemAtLocked(head)
		if err != nil {
			return err
		}
		newSys = &model.System{
			Arch: s.doc.System.Arch,
			Apps: append(append([]*model.Application(nil), parentSys.Apps...), app),
		}
		if err := newSys.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrIllegalCommit, err)
		}
		if hp := newSys.Hyperperiod(); hp != src.Horizon() {
			return fmt.Errorf("%w: application %q changes the hyperperiod from %v to %v",
				ErrIllegalCommit, app.Name, src.Horizon(), hp)
		}
		// Every bus's TDMA round must keep dividing the (unchanged)
		// horizon, or the frozen composite's wrapped slot reservations
		// would no longer line up with the cluster cycles.
		for bi, b := range newSys.Arch.Buses {
			if rl := b.RoundLen(); rl <= 0 || src.Horizon()%rl != 0 {
				return fmt.Errorf("%w: bus %d round %v does not divide the horizon %v",
					ErrIllegalCommit, bi, rl, src.Horizon())
			}
		}
		base, err = sched.Restrict(src, newSys, func(model.AppID) bool { return true })
		if err != nil {
			return fmt.Errorf("%w: %v", ErrIllegalCommit, err)
		}
		bl, reused, err = s.baselineAtLocked(head)
		if err != nil {
			return err
		}
		parentFP = s.doc.Versions[head].Fingerprint
		return nil
	}()
	legalitySpan.SetAttr("branch", branch)
	legalitySpan.End()
	if err != nil {
		return nil, err
	}

	var key string
	var sol *core.Solution
	cacheHit := false
	if p.SolveCache != nil {
		key = cache.Fingerprint(cache.Request{
			Parent:   parentFP,
			System:   parentSys,
			Commit:   app,
			Profile:  s.prof,
			Weights:  s.weights,
			Strategy: p.CacheSpec,
		})
		if v, ok := p.SolveCache.Get(key); ok {
			ent := v.(*commitSolveEntry)
			// Rematerialize the cached decisions on a clone of the freshly
			// restricted base; replay is deterministic, so the frozen
			// version is byte-identical to the one the original solve
			// produced. A replay failure falls through to a real solve (on
			// the untouched base) — the cache is advisory, never
			// authoritative.
			_, replaySpan := obs.StartSpan(ctx, "commit.replay")
			st := base.Clone()
			if err := st.ScheduleApp(app, ent.mapping, ent.hints); err == nil {
				sol = &core.Solution{
					Strategy:    ent.strategy,
					Mapping:     ent.mapping.Clone(),
					Hints:       ent.hints.Clone(),
					State:       st,
					Report:      ent.report,
					Evaluations: ent.evaluations,
				}
				cacheHit = true
				s.count(obs.CtrSessSolveCacheHits)
			}
			if cacheHit {
				replaySpan.SetAttr("outcome", "replayed")
			} else {
				replaySpan.SetAttr("outcome", "replay_failed")
			}
			replaySpan.End()
		}
	}
	if sol == nil {
		prob, err := core.NewProblem(newSys, base, app, s.prof, s.weights)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrIllegalCommit, err)
		}
		sol, err = core.Solve(ctx, prob, core.Options{
			Strategy:    p.Strategy,
			Parallelism: p.Parallelism,
			Incremental: p.Incremental,
			CacheSize:   p.CacheSize,
			Baseline:    bl,
			Observer:    p.Observer,
		})
		if err != nil {
			return nil, err
		}
		if p.SolveCache != nil && !sol.Interrupted {
			p.SolveCache.Put(key, &commitSolveEntry{
				strategy:    sol.Strategy,
				mapping:     sol.Mapping.Clone(),
				hints:       sol.Hints.Clone(),
				report:      sol.Report,
				evaluations: sol.Evaluations,
			})
			s.count(obs.CtrSessSolveCacheStores)
		}
	}
	res := &CommitResult{Version: -1, Parent: head, Branch: branch, Solution: sol, BaselineReused: reused, CacheHit: cacheHit}
	if sol.Interrupted {
		return res, nil
	}

	_, freezeSpan := obs.StartSpan(ctx, "commit.freeze")
	defer freezeSpan.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.doc.Branches[branch] != head { // a rollback raced the solve
		return nil, ErrConflict
	}
	id := len(s.doc.Versions)
	s.doc.Versions = append(s.doc.Versions, &VersionDoc{
		ID:          id,
		Parent:      head,
		App:         app,
		Mapping:     sol.Mapping,
		Hints:       NewHintsDoc(sol.Hints),
		Strategy:    sol.Strategy,
		Evaluations: sol.Evaluations,
		Report:      sol.Report,
		Fingerprint: fingerprint(sol.State),
	})
	s.doc.Branches[branch] = id
	if err := s.persistLocked(); err != nil {
		s.doc.Versions = s.doc.Versions[:id]
		s.doc.Branches[branch] = head
		return nil, err
	}
	s.systems[id] = newSys
	s.states[id] = sol.State
	s.count(obs.CtrSessCommits)
	res.Version = id
	return res, nil
}

// Branch creates a new branch pointing at an existing version.
func (s *Session) Branch(name string, from int) error {
	if !branchNameRe.MatchString(name) {
		return fmt.Errorf("session: invalid branch name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.doc.Branches[name]; exists {
		return fmt.Errorf("%w: %q", ErrBranchExists, name)
	}
	if from < 0 || from >= len(s.doc.Versions) {
		return fmt.Errorf("%w: %d", ErrUnknownVersion, from)
	}
	s.doc.Branches[name] = from
	if err := s.persistLocked(); err != nil {
		delete(s.doc.Branches, name)
		return err
	}
	s.count(obs.CtrSessBranches)
	return nil
}

// Rollback moves a branch head back to an ancestor version (or itself —
// a no-op rollback is legal). Versions that become unreachable stay in
// the tree for diffing but are no longer part of any surviving chain.
func (s *Session) Rollback(branch string, to int) error {
	if branch == "" {
		branch = MainBranch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	head, ok := s.doc.Branches[branch]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownBranch, branch)
	}
	if to < 0 || to >= len(s.doc.Versions) {
		return fmt.Errorf("%w: %d", ErrUnknownVersion, to)
	}
	cur := head
	for cur != to && cur != noParent {
		cur = s.doc.Versions[cur].Parent
	}
	if cur != to {
		return fmt.Errorf("%w: version %d from head %d of %q", ErrNotAncestor, to, head, branch)
	}
	s.doc.Branches[branch] = to
	if err := s.persistLocked(); err != nil {
		s.doc.Branches[branch] = head
		return err
	}
	s.count(obs.CtrSessRollbacks)
	return nil
}

// Head returns the head version of a branch.
func (s *Session) Head(branch string) (int, error) {
	if branch == "" {
		branch = MainBranch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	head, ok := s.doc.Branches[branch]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownBranch, branch)
	}
	return head, nil
}

// Verify replays every surviving commit chain (each branch head) from
// scratch on a pristine copy of the document and checks each
// materialized composite against its stored fingerprint. It proves the
// store content alone reproduces the session, independent of any state
// this process has cached.
func (s *Session) Verify() error {
	s.mu.Lock()
	doc, err := s.doc.Clone()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	fresh := newSession(doc, discardStore{}, nil)
	names := make([]string, 0, len(doc.Branches))
	for name := range doc.Branches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fresh.StateAt(doc.Branches[name]); err != nil {
			return fmt.Errorf("branch %q: %w", name, err)
		}
	}
	return nil
}

// discardStore backs Verify's scratch session: it never persists.
type discardStore struct{}

func (discardStore) Put(*Doc) error           { return nil }
func (discardStore) Get(string) (*Doc, error) { return nil, ErrNotFound }
func (discardStore) Delete(string) error      { return nil }
func (discardStore) List() ([]string, error)  { return nil, nil }
