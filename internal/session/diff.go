package session

import (
	"fmt"
	"sort"

	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// Kinds of per-process placement change reported by Diff.
const (
	DeltaAdded   = "added"   // process exists only in the "to" version
	DeltaRemoved = "removed" // process exists only in the "from" version
	DeltaMoved   = "moved"   // same process, different node
	DeltaShifted = "shifted" // same process and node, different start offset
)

// ProcDelta is one changed process placement between two versions,
// compared on the first occurrence of each process in the cyclic
// schedule.
type ProcDelta struct {
	Proc model.ProcID `json:"proc"`
	App  string       `json:"app"`
	Kind string       `json:"kind"`

	FromNode  model.NodeID `json:"from_node,omitempty"`
	ToNode    model.NodeID `json:"to_node,omitempty"`
	FromStart tm.Time      `json:"from_start,omitempty"`
	ToStart   tm.Time      `json:"to_start,omitempty"`
}

// Diff is the placement and metric delta between two versions of a
// session. Because commits only ever add to a frozen composite, a diff
// along one chain shows pure growth; diffing across branches (two
// what-if alternatives) additionally surfaces moves and shifts between
// the alternatives' placements of the same applications.
type Diff struct {
	From int `json:"from"`
	To   int `json:"to"`

	// Application membership delta, by name.
	AppsAdded   []string `json:"apps_added,omitempty"`
	AppsRemoved []string `json:"apps_removed,omitempty"`

	// Procs lists every process whose first-occurrence placement
	// differs, sorted by process ID.
	Procs []ProcDelta `json:"procs,omitempty"`

	// Message-schedule summary: bus slot occurrences present in only one
	// version, and messages present in both but in a different round/slot.
	MsgsAdded   int `json:"msgs_added"`
	MsgsRemoved int `json:"msgs_removed"`
	MsgsRetimed int `json:"msgs_retimed"`

	// Metric delta: the full report of both endpoints and the objective
	// difference (negative means "to" scores better).
	FromReport     metrics.Report `json:"from_report"`
	ToReport       metrics.Report `json:"to_report"`
	ObjectiveDelta float64        `json:"objective_delta"`
}

// procOcc0 indexes a state's first process occurrences by process ID.
func procOcc0(st *sched.State) map[model.ProcID]sched.ProcEntry {
	out := map[model.ProcID]sched.ProcEntry{}
	for _, e := range st.ProcEntries() {
		if e.Occ == 0 {
			out[e.Proc] = e
		}
	}
	return out
}

// msgOcc0 indexes a state's first message occurrences by message ID.
func msgOcc0(st *sched.State) map[model.MsgID]sched.MsgEntry {
	out := map[model.MsgID]sched.MsgEntry{}
	for _, e := range st.MsgEntries() {
		if e.Occ == 0 {
			out[e.Msg] = e
		}
	}
	return out
}

// appNames maps every process of a system to its application's name.
func appNames(sys *model.System) map[model.ProcID]string {
	out := map[model.ProcID]string{}
	for _, app := range sys.Apps {
		for _, g := range app.Graphs {
			for _, p := range g.Procs {
				out[p.ID] = app.Name
			}
		}
	}
	return out
}

// Diff compares two versions of the session. Both must exist; they need
// not share a branch or an ancestry relation.
func (s *Session) Diff(from, to int) (*Diff, error) {
	s.mu.Lock()
	fromSt, err := s.stateAtLocked(from)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	toSt, err := s.stateAtLocked(to)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	fromSys, err := s.systemAtLocked(from)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	toSys, err := s.systemAtLocked(to)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	fromRep := s.doc.Versions[from].Report
	toRep := s.doc.Versions[to].Report
	s.mu.Unlock()

	d := &Diff{
		From: from, To: to,
		FromReport:     fromRep,
		ToReport:       toRep,
		ObjectiveDelta: toRep.Objective - fromRep.Objective,
	}

	fromApps := map[string]bool{}
	for _, a := range fromSys.Apps {
		fromApps[a.Name] = true
	}
	toApps := map[string]bool{}
	for _, a := range toSys.Apps {
		toApps[a.Name] = true
	}
	for name := range toApps {
		if !fromApps[name] {
			d.AppsAdded = append(d.AppsAdded, name)
		}
	}
	for name := range fromApps {
		if !toApps[name] {
			d.AppsRemoved = append(d.AppsRemoved, name)
		}
	}
	sort.Strings(d.AppsAdded)
	sort.Strings(d.AppsRemoved)

	fp, tp := procOcc0(fromSt), procOcc0(toSt)
	names := appNames(fromSys)
	for id, name := range appNames(toSys) {
		names[id] = name
	}
	for id, fe := range fp {
		te, ok := tp[id]
		switch {
		case !ok:
			d.Procs = append(d.Procs, ProcDelta{
				Proc: id, App: names[id], Kind: DeltaRemoved,
				FromNode: fe.Node, FromStart: fe.Start,
			})
		case te.Node != fe.Node:
			d.Procs = append(d.Procs, ProcDelta{
				Proc: id, App: names[id], Kind: DeltaMoved,
				FromNode: fe.Node, ToNode: te.Node,
				FromStart: fe.Start, ToStart: te.Start,
			})
		case te.Start != fe.Start:
			d.Procs = append(d.Procs, ProcDelta{
				Proc: id, App: names[id], Kind: DeltaShifted,
				FromNode: fe.Node, ToNode: te.Node,
				FromStart: fe.Start, ToStart: te.Start,
			})
		}
	}
	for id, te := range tp {
		if _, ok := fp[id]; !ok {
			d.Procs = append(d.Procs, ProcDelta{
				Proc: id, App: names[id], Kind: DeltaAdded,
				ToNode: te.Node, ToStart: te.Start,
			})
		}
	}
	sort.Slice(d.Procs, func(i, j int) bool { return d.Procs[i].Proc < d.Procs[j].Proc })

	fm, tom := msgOcc0(fromSt), msgOcc0(toSt)
	for id, fe := range fm {
		te, ok := tom[id]
		switch {
		case !ok:
			d.MsgsRemoved++
		case te.Round != fe.Round || te.Slot != fe.Slot:
			d.MsgsRetimed++
		}
	}
	for id := range tom {
		if _, ok := fm[id]; !ok {
			d.MsgsAdded++
		}
	}

	s.count(obs.CtrSessDiffs)
	return d, nil
}

// String renders a compact human-readable summary.
func (d *Diff) String() string {
	return fmt.Sprintf("diff v%d..v%d: +%d/-%d apps, %d proc changes, msgs +%d/-%d/~%d, objective %+.4f",
		d.From, d.To, len(d.AppsAdded), len(d.AppsRemoved), len(d.Procs),
		d.MsgsAdded, d.MsgsRemoved, d.MsgsRetimed, d.ObjectiveDelta)
}
