package session_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"incdes/internal/core"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/session"
	"incdes/internal/tm"
)

// fixture builds a base system (one application) plus standalone
// applications to commit later. Everything shares one builder so IDs are
// globally unique, and every graph uses the same period so commits never
// change the composite hyperperiod — except the deliberately illegal
// last application, whose longer period doubles it.
func fixture(t testing.TB) (*model.System, []*model.Application, *model.Application) {
	t.Helper()
	b := model.NewBuilder()
	b.Node("N0")
	b.Node("N1")
	b.Node("N2")
	b.UniformBus(8, 1, 2) // slot 10, round 30; hyperperiod lcm(60,30)=60

	mk := func(name string, procs int, period tm.Time) *model.Application {
		ab := b.App(name)
		g := ab.Graph(name+"-g", period, period)
		var prev model.ProcID
		for i := 0; i < procs; i++ {
			p := g.UniformProc(fmt.Sprintf("%s-p%d", name, i), 3)
			if i > 0 {
				g.Msg(prev, p, 4)
			}
			prev = p
		}
		return ab.Application()
	}

	mk("base", 3, 60)
	var commits []*model.Application
	for i := 1; i <= 6; i++ {
		commits = append(commits, mk(fmt.Sprintf("app%d", i), 1+i%3, 60))
	}
	slow := mk("slow", 2, 120) // legal application, illegal commit

	full := b.MustSystem() // validates all applications at once
	sys := &model.System{Arch: full.Arch, Apps: full.Apps[:1]}
	return sys, commits, slow
}

func open(t *testing.T, store session.Store) (*session.Manager, *session.Session) {
	t.Helper()
	sys, _, _ := fixture(t)
	m, err := session.NewManager(store, nil)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	sess, err := m.Open(sys, nil, "")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m, sess
}

func commit(t *testing.T, sess *session.Session, app *model.Application, p session.CommitParams) *session.CommitResult {
	t.Helper()
	if p.Strategy == nil {
		p.Strategy = core.AH
	}
	if p.Parallelism == 0 {
		p.Parallelism = 1
	}
	res, err := sess.Commit(context.Background(), app, p)
	if err != nil {
		t.Fatalf("Commit(%q): %v", app.Name, err)
	}
	if res.Version < 0 {
		t.Fatalf("Commit(%q): interrupted", app.Name)
	}
	return res
}

// composedSolve runs the one-shot equivalent of a session commit: freeze
// the base applications with the initial-mapping algorithm, re-apply the
// prior commits' stored placements, then solve for the new application —
// on the session's pinned profile and weights but WITHOUT the session's
// cached baseline, so equivalence also proves the baseline shortcut
// changes nothing.
func composedSolve(t *testing.T, sess *session.Session, upTo int, app *model.Application, strat core.Strategy) *core.Solution {
	t.Helper()
	doc, err := sess.Doc()
	if err != nil {
		t.Fatal(err)
	}
	apps := append([]*model.Application(nil), doc.System.Apps...)
	var replay []*session.VersionDoc
	for v := upTo; v != session.RootVersion; {
		vd := doc.Versions[v]
		replay = append([]*session.VersionDoc{vd}, replay...)
		v = vd.Parent
	}
	for _, vd := range replay {
		apps = append(apps, vd.App)
	}
	sys := &model.System{Arch: doc.System.Arch, Apps: append(append([]*model.Application(nil), apps...), app)}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range doc.System.Apps {
		if _, err := st.MapApp(a, sched.Hints{}); err != nil {
			t.Fatalf("freezing %q: %v", a.Name, err)
		}
	}
	for _, vd := range replay {
		if err := st.ScheduleApp(vd.App, vd.Mapping, vd.Hints.Hints()); err != nil {
			t.Fatalf("replaying commit of %q: %v", vd.App.Name, err)
		}
	}
	p, err := core.NewProblem(sys, st, app, sess.Profile(), sess.Weights())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(context.Background(), p, core.Options{Strategy: strat, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// TestCommitMatchesOneShotSolve pins the tentpole's core guarantee: a
// commit through the session API produces the byte-identical schedule,
// mapping and report that a from-scratch solve of the equivalent
// composed problem produces — for every strategy, and across a chain of
// commits.
func TestCommitMatchesOneShotSolve(t *testing.T) {
	_, commits, _ := fixture(t)
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"ah", core.AH},
		{"mh", core.MH},
		{"sa", core.SAWith(core.SAOptions{Seed: 7, Iterations: 60, Restarts: 1})},
	}
	for _, tc := range strategies {
		t.Run(tc.name, func(t *testing.T) {
			_, sess := open(t, session.NewMemStore())
			for k := 0; k < 2; k++ { // a two-commit chain
				head, err := sess.Head(session.MainBranch)
				if err != nil {
					t.Fatal(err)
				}
				direct := composedSolve(t, sess, head, commits[k], tc.strat)
				res := commit(t, sess, commits[k], session.CommitParams{Strategy: tc.strat})

				if !reflect.DeepEqual(res.Solution.Mapping, direct.Mapping) {
					t.Fatalf("commit %d: mapping diverges from one-shot solve", k)
				}
				if res.Solution.Report != direct.Report {
					t.Fatalf("commit %d: report %+v != one-shot %+v", k, res.Solution.Report, direct.Report)
				}
				if res.Solution.Evaluations != direct.Evaluations {
					t.Fatalf("commit %d: evaluations %d != one-shot %d", k, res.Solution.Evaluations, direct.Evaluations)
				}
				if !bytes.Equal(res.Solution.State.Fingerprint(), direct.State.Fingerprint()) {
					t.Fatalf("commit %d: schedule state not byte-identical to one-shot solve", k)
				}
			}
		})
	}
}

// TestBaselineReuse pins the session cache: the first commit from a
// version builds its baseline, any further commit from the same version
// reuses it.
func TestBaselineReuse(t *testing.T) {
	_, commits, _ := fixture(t)
	_, sess := open(t, session.NewMemStore())

	r1 := commit(t, sess, commits[0], session.CommitParams{})
	if r1.BaselineReused {
		t.Error("first commit from the root claims a cached baseline")
	}
	if err := sess.Branch("alt", session.RootVersion); err != nil {
		t.Fatal(err)
	}
	r2 := commit(t, sess, commits[1], session.CommitParams{Branch: "alt"})
	if !r2.BaselineReused {
		t.Error("second commit from the root rebuilt the baseline")
	}
	if r1.Parent != session.RootVersion || r2.Parent != session.RootVersion {
		t.Errorf("parents = %d, %d, want both %d", r1.Parent, r2.Parent, session.RootVersion)
	}
}

// TestBranchRollbackSemantics exercises the version tree: branching from
// arbitrary versions, rolling back along ancestry only, and the error
// sentinels for every illegal operation.
func TestBranchRollbackSemantics(t *testing.T) {
	_, commits, _ := fixture(t)
	_, sess := open(t, session.NewMemStore())

	v1 := commit(t, sess, commits[0], session.CommitParams{}).Version
	v2 := commit(t, sess, commits[1], session.CommitParams{}).Version
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions = %d,%d, want 1,2", v1, v2)
	}
	if err := sess.Branch("alt", v1); err != nil {
		t.Fatal(err)
	}
	v3 := commit(t, sess, commits[2], session.CommitParams{Branch: "alt"})
	if v3.Parent != v1 {
		t.Fatalf("branch commit parent = %d, want %d", v3.Parent, v1)
	}

	if err := sess.Branch("alt", v1); !errors.Is(err, session.ErrBranchExists) {
		t.Errorf("duplicate branch: err = %v, want ErrBranchExists", err)
	}
	if err := sess.Branch("bad name!", v1); err == nil {
		t.Error("invalid branch name accepted")
	}
	if err := sess.Branch("orphan", 99); !errors.Is(err, session.ErrUnknownVersion) {
		t.Errorf("branch from missing version: err = %v, want ErrUnknownVersion", err)
	}
	if _, err := sess.Commit(context.Background(), commits[3], session.CommitParams{Branch: "nope", Strategy: core.AH}); !errors.Is(err, session.ErrUnknownBranch) {
		t.Errorf("commit to missing branch: err = %v, want ErrUnknownBranch", err)
	}

	// main: 0 -> 1 -> 2. Rolling back to v3 (on alt) must fail; to v1 ok.
	if err := sess.Rollback(session.MainBranch, v3.Version); !errors.Is(err, session.ErrNotAncestor) {
		t.Errorf("rollback across branches: err = %v, want ErrNotAncestor", err)
	}
	if err := sess.Rollback(session.MainBranch, v1); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if head, _ := sess.Head(session.MainBranch); head != v1 {
		t.Fatalf("head after rollback = %d, want %d", head, v1)
	}
	// v2 is now orphaned but must stay diffable.
	d, err := sess.Diff(v2, v3.Version)
	if err != nil {
		t.Fatalf("diff of orphaned version: %v", err)
	}
	if !reflect.DeepEqual(d.AppsAdded, []string{commits[2].Name}) ||
		!reflect.DeepEqual(d.AppsRemoved, []string{commits[1].Name}) {
		t.Errorf("diff apps = +%v -%v, want +[%s] -[%s]",
			d.AppsAdded, d.AppsRemoved, commits[2].Name, commits[1].Name)
	}
	// A commit after the rollback continues from the moved head.
	v4 := commit(t, sess, commits[3], session.CommitParams{})
	if v4.Parent != v1 {
		t.Fatalf("post-rollback commit parent = %d, want %d", v4.Parent, v1)
	}
}

// TestIllegalCommits pins the MIMOS legality rule and input validation.
func TestIllegalCommits(t *testing.T) {
	_, commits, slow := fixture(t)
	_, sess := open(t, session.NewMemStore())

	// Changing the composite hyperperiod invalidates the frozen schedule.
	if _, err := sess.Commit(context.Background(), slow, session.CommitParams{Strategy: core.AH}); !errors.Is(err, session.ErrIllegalCommit) {
		t.Errorf("hyperperiod-changing commit: err = %v, want ErrIllegalCommit", err)
	}
	// Committing an application whose IDs collide with a frozen one.
	commit(t, sess, commits[0], session.CommitParams{})
	if _, err := sess.Commit(context.Background(), commits[0], session.CommitParams{Strategy: core.AH}); !errors.Is(err, session.ErrIllegalCommit) {
		t.Errorf("duplicate commit: err = %v, want ErrIllegalCommit", err)
	}
	if _, err := sess.Commit(context.Background(), nil, session.CommitParams{Strategy: core.AH}); !errors.Is(err, session.ErrIllegalCommit) {
		t.Errorf("nil application: err = %v, want ErrIllegalCommit", err)
	}
}

// TestInterruptedCommitFreezesNothing: a cancelled solve reports the
// best design found but creates no version — sessions only ever record
// complete, deterministic solves.
func TestInterruptedCommitFreezesNothing(t *testing.T) {
	_, commits, _ := fixture(t)
	_, sess := open(t, session.NewMemStore())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sess.Commit(ctx, commits[0], session.CommitParams{Strategy: core.MH, Parallelism: 1})
	if err != nil {
		t.Fatalf("interrupted commit: %v", err)
	}
	if res.Version != -1 || !res.Solution.Interrupted {
		t.Fatalf("interrupted commit: version %d, interrupted %v; want -1, true", res.Version, res.Solution.Interrupted)
	}
	doc, err := sess.Doc()
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Versions) != 1 {
		t.Fatalf("interrupted commit persisted a version: %d versions", len(doc.Versions))
	}
	if head, _ := sess.Head(session.MainBranch); head != session.RootVersion {
		t.Fatalf("head moved to %d after interrupted commit", head)
	}
}

// TestReplayAcrossManagers pins durability: a second manager over the
// same store rematerializes every version by deterministic replay to the
// exact stored fingerprints, with no state carried over in memory.
func TestReplayAcrossManagers(t *testing.T) {
	store := session.NewMemStore()
	_, commits, _ := fixture(t)
	m1, sess := open(t, store)
	commit(t, sess, commits[0], session.CommitParams{})
	commit(t, sess, commits[1], session.CommitParams{Strategy: core.MH})
	if err := sess.Branch("alt", 1); err != nil {
		t.Fatal(err)
	}
	commit(t, sess, commits[2], session.CommitParams{Branch: "alt"})
	id := sess.ID()

	m2, err := session.NewManager(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := m2.Get(id)
	if err != nil {
		t.Fatalf("Get after reload: %v", err)
	}
	if err := fresh.Verify(); err != nil {
		t.Fatalf("Verify after reload: %v", err)
	}
	for _, v := range []int{0, 1, 2, 3} {
		a, err := sess.StateAt(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.StateAt(v)
		if err != nil {
			t.Fatalf("replaying version %d: %v", v, err)
		}
		if !bytes.Equal(a.Fingerprint(), b.Fingerprint()) {
			t.Fatalf("version %d replays to a different schedule", v)
		}
	}
	// The reloaded manager's ID generator must not collide.
	sys2, _, _ := fixture(t)
	other, err := m2.Open(sys2, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if other.ID() == id {
		t.Fatalf("reloaded manager reissued session id %s", id)
	}
	if err := m1.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Get("unknown"); !errors.Is(err, session.ErrNotFound) {
		t.Errorf("Get(unknown) = %v, want ErrNotFound", err)
	}
}

// TestOpenRejectsDuplicateID pins explicit-ID collision handling.
func TestOpenRejectsDuplicateID(t *testing.T) {
	store := session.NewMemStore()
	sys, _, _ := fixture(t)
	m, err := session.NewManager(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(sys, nil, "mine"); err != nil {
		t.Fatal(err)
	}
	sys2, _, _ := fixture(t)
	if _, err := m.Open(sys2, nil, "mine"); !errors.Is(err, session.ErrExists) {
		t.Errorf("duplicate id: err = %v, want ErrExists", err)
	}
}

// TestDiffAlongChain checks pure-growth diffs: committing only adds.
func TestDiffAlongChain(t *testing.T) {
	_, commits, _ := fixture(t)
	_, sess := open(t, session.NewMemStore())
	commit(t, sess, commits[0], session.CommitParams{})
	d, err := sess.Diff(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.AppsAdded, []string{commits[0].Name}) || len(d.AppsRemoved) != 0 {
		t.Fatalf("diff apps = +%v -%v, want +[%s] -[]", d.AppsAdded, d.AppsRemoved, commits[0].Name)
	}
	for _, p := range d.Procs {
		if p.Kind != session.DeltaAdded {
			t.Fatalf("commit moved frozen process %d (%s)", p.Proc, p.Kind)
		}
	}
	if got, want := len(d.Procs), commits[0].NumProcs(); got != want {
		t.Fatalf("diff lists %d added processes, want %d", got, want)
	}
	if d.MsgsRemoved != 0 || d.MsgsRetimed != 0 {
		t.Fatalf("commit disturbed frozen messages: -%d ~%d", d.MsgsRemoved, d.MsgsRetimed)
	}
}
