package session

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"regexp"

	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// DocSchemaVersion identifies the JSON layout of a persisted session
// document. Decoders refuse documents written by a newer schema.
const DocSchemaVersion = 1

// RootVersion is the ID of every session's root version: the opened base
// system, scheduled and frozen, before any commit.
const RootVersion = 0

// noParent marks the root version's parent slot.
const noParent = -1

// MainBranch is the branch every session starts with.
const MainBranch = "main"

// branchNameRe limits branch names to path- and query-safe tokens.
var branchNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// HintsDoc is the JSON rendering of sched.Hints: the exact start offsets
// a commit's solution pinned, keyed by process and message ID.
type HintsDoc struct {
	ProcStart map[model.ProcID]tm.Time `json:"proc_start,omitempty"`
	MsgStart  map[model.MsgID]tm.Time  `json:"msg_start,omitempty"`
}

// VersionDoc is one version of a session: the root (ID 0, no commit
// payload) or one committed application with everything needed to replay
// its placement deterministically.
type VersionDoc struct {
	ID     int `json:"id"`
	Parent int `json:"parent"` // -1 for the root

	// Commit payload; empty on the root version.
	App         *model.Application `json:"app,omitempty"`
	Mapping     model.Mapping      `json:"mapping,omitempty"`
	Hints       *HintsDoc          `json:"hints,omitempty"`
	Strategy    string             `json:"strategy,omitempty"`
	Evaluations int                `json:"evaluations,omitempty"`

	// Report is the metric evaluation of this version's composite
	// design (the root carries the base system's score).
	Report metrics.Report `json:"report"`

	// Fingerprint is the hex SHA-256 of the composite schedule state's
	// canonical serialization (sched.State.Fingerprint). Replay verifies
	// against it: a version that no longer reproduces its fingerprint is
	// reported as corrupt rather than silently re-scored.
	Fingerprint string `json:"fingerprint"`
}

// Doc is the complete persisted form of a session: everything a fresh
// process needs to rematerialize any version by deterministic replay.
type Doc struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`

	// System is the base system as opened: the architecture plus the
	// applications frozen before version 0.
	System *model.System `json:"system"`

	// Profile pins the future-application characterization for the whole
	// session, so every version is scored against the same objective and
	// version metrics stay comparable.
	Profile *future.Profile `json:"profile"`

	// Versions is the append-only version tree in creation order;
	// Versions[i].ID == i and every parent precedes its children.
	Versions []*VersionDoc `json:"versions"`

	// Branches maps branch names to their head version. Rollback moves a
	// head back along its ancestor chain; versions no longer reachable
	// from any branch stay in the tree (they remain diffable) but are not
	// part of any surviving commit chain.
	Branches map[string]int `json:"branches"`
}

// EncodeDoc serializes the document as indented JSON.
func EncodeDoc(w io.Writer, d *Doc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("session: encode doc: %w", err)
	}
	return nil
}

// DecodeDoc parses and validates a session document. Unknown fields are
// rejected so schema drift surfaces as an error, not silent data loss.
func DecodeDoc(r io.Reader) (*Doc, error) {
	var d Doc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("session: decode doc: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the document's structural invariants. It is the full
// static check — replay (Session.Verify) additionally proves that every
// surviving chain reproduces its recorded fingerprints.
func (d *Doc) Validate() error {
	if d.SchemaVersion > DocSchemaVersion {
		return fmt.Errorf("session: doc schema %d is newer than supported %d", d.SchemaVersion, DocSchemaVersion)
	}
	if d.SchemaVersion <= 0 {
		return fmt.Errorf("session: doc has no schema version")
	}
	if d.ID == "" {
		return fmt.Errorf("session: doc has no id")
	}
	if d.System == nil {
		return fmt.Errorf("session: doc %s has no system", d.ID)
	}
	if err := d.System.Validate(); err != nil {
		return fmt.Errorf("session: doc %s: %w", d.ID, err)
	}
	if len(d.System.Apps) == 0 {
		return fmt.Errorf("session: doc %s: base system has no applications", d.ID)
	}
	if d.Profile == nil {
		return fmt.Errorf("session: doc %s has no future profile", d.ID)
	}
	if err := d.Profile.Validate(); err != nil {
		return fmt.Errorf("session: doc %s: %w", d.ID, err)
	}
	if len(d.Versions) == 0 {
		return fmt.Errorf("session: doc %s has no versions", d.ID)
	}
	for i, v := range d.Versions {
		if v == nil {
			return fmt.Errorf("session: doc %s: version %d is null", d.ID, i)
		}
		if v.ID != i {
			return fmt.Errorf("session: doc %s: version at index %d has id %d", d.ID, i, v.ID)
		}
		if v.Fingerprint == "" {
			return fmt.Errorf("session: doc %s: version %d has no fingerprint", d.ID, i)
		}
		if i == RootVersion {
			if v.Parent != noParent || v.App != nil {
				return fmt.Errorf("session: doc %s: root version carries a commit", d.ID)
			}
			continue
		}
		if v.Parent < 0 || v.Parent >= i {
			return fmt.Errorf("session: doc %s: version %d has parent %d outside [0,%d)", d.ID, i, v.Parent, i)
		}
		if v.App == nil {
			return fmt.Errorf("session: doc %s: version %d has no application", d.ID, i)
		}
		if err := v.App.Validate(d.System.Arch); err != nil {
			return fmt.Errorf("session: doc %s: version %d: %w", d.ID, i, err)
		}
		for _, g := range v.App.Graphs {
			for _, p := range g.Procs {
				if _, ok := v.Mapping[p.ID]; !ok {
					return fmt.Errorf("session: doc %s: version %d mapping misses process %d", d.ID, i, p.ID)
				}
			}
		}
	}
	if len(d.Branches) == 0 {
		return fmt.Errorf("session: doc %s has no branches", d.ID)
	}
	if _, ok := d.Branches[MainBranch]; !ok {
		return fmt.Errorf("session: doc %s has no %q branch", d.ID, MainBranch)
	}
	for name, head := range d.Branches {
		if !branchNameRe.MatchString(name) {
			return fmt.Errorf("session: doc %s: invalid branch name %q", d.ID, name)
		}
		if head < 0 || head >= len(d.Versions) {
			return fmt.Errorf("session: doc %s: branch %q points at missing version %d", d.ID, name, head)
		}
	}
	return nil
}

// Clone deep-copies the document through its canonical encoding. Stores
// hand out clones so callers can never alias a live session's state.
func (d *Doc) Clone() (*Doc, error) {
	var buf bytes.Buffer
	if err := EncodeDoc(&buf, d); err != nil {
		return nil, err
	}
	return DecodeDoc(&buf)
}

// Hints converts the persisted form back to scheduler hints.
func (h *HintsDoc) Hints() sched.Hints {
	if h == nil {
		return sched.Hints{}
	}
	return sched.Hints{ProcStart: h.ProcStart, MsgStart: h.MsgStart}
}

// NewHintsDoc captures scheduler hints for persistence; empty hints
// persist as nothing at all.
func NewHintsDoc(h sched.Hints) *HintsDoc {
	if len(h.ProcStart) == 0 && len(h.MsgStart) == 0 {
		return nil
	}
	return &HintsDoc{ProcStart: h.ProcStart, MsgStart: h.MsgStart}
}
