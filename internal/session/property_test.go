package session_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"incdes/internal/core"
	"incdes/internal/session"
)

// TestPropertyReplayDeterminism is the session property test: apply a
// seeded random sequence of commit / branch / rollback operations, then
// reload the session from the raw store in a fresh manager and require
// that every surviving branch head rematerializes — by deterministic
// replay from the root — to exactly the fingerprint recorded at commit
// time. Any hidden dependence on in-memory state, iteration order or
// wall clock would break the replay and fail Verify.
func TestPropertyReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			store := session.NewMemStore()
			sys, commits, _ := fixture(t)
			m, err := session.NewManager(store, nil)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := m.Open(sys, nil, "")
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(seed))
			branches := []string{session.MainBranch}
			next := 0 // next unused application in commits
			maxVersion := func() int {
				doc, err := sess.Doc()
				if err != nil {
					t.Fatal(err)
				}
				return len(doc.Versions) - 1
			}
			for op := 0; op < 10; op++ {
				switch k := rng.Intn(4); {
				case k <= 1 && next < len(commits): // commit (weighted)
					br := branches[rng.Intn(len(branches))]
					res, err := sess.Commit(context.Background(), commits[next],
						session.CommitParams{Branch: br, Strategy: core.AH, Parallelism: 1})
					if err != nil {
						t.Fatalf("op %d: commit on %q: %v", op, br, err)
					}
					if res.Version < 0 {
						t.Fatalf("op %d: commit interrupted", op)
					}
					next++
				case k == 2: // branch from a random existing version
					name := fmt.Sprintf("b%d", op)
					if err := sess.Branch(name, rng.Intn(maxVersion()+1)); err != nil {
						t.Fatalf("op %d: branch %q: %v", op, name, err)
					}
					branches = append(branches, name)
				default: // rollback a random branch to a random version
					br := branches[rng.Intn(len(branches))]
					to := rng.Intn(maxVersion() + 1)
					err := sess.Rollback(br, to)
					if err != nil && !errors.Is(err, session.ErrNotAncestor) {
						t.Fatalf("op %d: rollback %q to %d: %v", op, br, to, err)
					}
				}
			}

			// Reload from raw bytes and replay everything from scratch.
			m2, err := session.NewManager(store, nil)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := m2.Get(sess.ID())
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Verify(); err != nil {
				t.Fatalf("replay verification failed: %v", err)
			}

			// The live session and the reloaded one must agree on the
			// whole document, not just the heads.
			a, err := sess.Doc()
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.Doc()
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Versions) != len(b.Versions) {
				t.Fatalf("version counts diverge: %d vs %d", len(a.Versions), len(b.Versions))
			}
			for i := range a.Versions {
				if a.Versions[i].Fingerprint != b.Versions[i].Fingerprint {
					t.Fatalf("version %d fingerprint diverges after reload", i)
				}
			}
			names := func(m map[string]int) []string {
				var out []string
				for n := range m {
					out = append(out, n)
				}
				sort.Strings(out)
				return out
			}
			an, bn := names(a.Branches), names(b.Branches)
			if fmt.Sprint(an) != fmt.Sprint(bn) {
				t.Fatalf("branch sets diverge: %v vs %v", an, bn)
			}
			for _, n := range an {
				if a.Branches[n] != b.Branches[n] {
					t.Fatalf("branch %q head diverges: %d vs %d", n, a.Branches[n], b.Branches[n])
				}
			}
		})
	}
}
