package session

import (
	"bytes"
	"sync"
)

// MemStore is the in-memory Store: documents live only as long as the
// process. It stores the canonical encoding rather than the document
// pointer, so Put/Get have the same copy and re-validation semantics as
// the disk store and a round-trip bug cannot hide behind shared memory.
type MemStore struct {
	mu   sync.RWMutex
	docs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{docs: map[string][]byte{}}
}

// Put implements Store.
func (s *MemStore) Put(doc *Doc) error {
	var buf bytes.Buffer
	if err := EncodeDoc(&buf, doc); err != nil {
		return err
	}
	s.mu.Lock()
	s.docs[doc.ID] = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(id string) (*Doc, error) {
	s.mu.RLock()
	data, ok := s.docs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return DecodeDoc(bytes.NewReader(data))
}

// Delete implements Store.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	delete(s.docs, id)
	s.mu.Unlock()
	return nil
}

// List implements Store.
func (s *MemStore) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.docs))
	for id := range s.docs {
		ids = append(ids, id)
	}
	return ids, nil
}
