package session

import "errors"

// ErrNotFound is returned by stores (and the Manager) for unknown
// session IDs.
var ErrNotFound = errors.New("session: not found")

// Store persists session documents. Implementations must be safe for
// concurrent use and must not retain or alias the documents they are
// handed: Put snapshots the document before returning and Get returns a
// fresh copy every call, so a caller mutating its copy can never corrupt
// the stored one. Both built-in stores (memory, disk) round-trip through
// the canonical JSON encoding, which also re-validates every document on
// the way out.
type Store interface {
	// Put writes the document under doc.ID, replacing any previous
	// revision atomically.
	Put(doc *Doc) error
	// Get returns the stored document, or ErrNotFound.
	Get(id string) (*Doc, error)
	// Delete removes the document; deleting an absent ID is not an error.
	Delete(id string) error
	// List returns the stored session IDs in unspecified order.
	List() ([]string, error)
}
