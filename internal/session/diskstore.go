package session

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// idRe limits session IDs to file-name-safe tokens; the disk store
// enforces it so an ID can never escape its directory.
var idRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// DiskStore persists sessions as one JSON document per session under a
// directory, written atomically (temp file + rename) so a crash mid-write
// never leaves a truncated document behind. It is the durable Store:
// a restarted daemon reopens its sessions from here and rematerializes
// schedule states by replay.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) the store directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: store dir %s: %w", dir, err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(id string) (string, error) {
	if !idRe.MatchString(id) {
		return "", fmt.Errorf("session: invalid session id %q", id)
	}
	return filepath.Join(s.dir, id+".json"), nil
}

// Put implements Store: the document is assembled in a temporary file in
// the store directory and renamed over the destination only after a
// complete write.
func (s *DiskStore) Put(doc *Doc) error {
	path, err := s.path(doc.ID)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, doc.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("session: writing %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := EncodeDoc(tmp, doc); err != nil {
		tmp.Close()
		return fmt.Errorf("session: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("session: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("session: writing %s: %w", path, err)
	}
	return nil
}

// Get implements Store.
func (s *DiskStore) Get(id string) (*Doc, error) {
	path, err := s.path(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("session: reading %s: %w", path, err)
	}
	defer f.Close()
	doc, err := DecodeDoc(f)
	if err != nil {
		return nil, fmt.Errorf("session: reading %s: %w", path, err)
	}
	return doc, nil
}

// Delete implements Store.
func (s *DiskStore) Delete(id string) error {
	path, err := s.path(id)
	if err != nil {
		return err
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("session: deleting %s: %w", path, err)
	}
	return nil
}

// List implements Store: every *.json entry in the directory, by name.
func (s *DiskStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("session: listing %s: %w", s.dir, err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if idRe.MatchString(id) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}
