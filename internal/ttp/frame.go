package ttp

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"incdes/internal/model"
)

// Frame layout, used to emit a concrete byte image of one slot occurrence
// from its MEDL entries. A TTP frame here is:
//
//	[1]  message count n
//	n *( [4] message ID big-endian | [1] payload length | payload )
//	[4]  IEEE CRC-32 over everything before it
//
// The payload carries the application data at run time; the static image
// encodes zeros. The wire size of a frame therefore exceeds the sum of the
// message payload sizes by the header/trailer overhead, which is what the
// bus model's SlotOverhead accounts for in the timing domain.

const (
	frameHeaderLen  = 1
	framePerMsgLen  = 5
	frameTrailerLen = 4
)

// FrameMessage is one message inside a frame.
type FrameMessage struct {
	Msg     model.MsgID
	Payload []byte
}

// EncodeFrame serializes the messages of one slot occurrence.
func EncodeFrame(msgs []FrameMessage) ([]byte, error) {
	if len(msgs) > 255 {
		return nil, fmt.Errorf("ttp: frame holds at most 255 messages, got %d", len(msgs))
	}
	size := frameHeaderLen + frameTrailerLen
	for _, m := range msgs {
		if len(m.Payload) > 255 {
			return nil, fmt.Errorf("ttp: message %d payload %d bytes exceeds 255", m.Msg, len(m.Payload))
		}
		if m.Msg < 0 || int64(m.Msg) > int64(^uint32(0)) {
			return nil, fmt.Errorf("ttp: message id %d not encodable in 32 bits", m.Msg)
		}
		size += framePerMsgLen + len(m.Payload)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(len(msgs)))
	for _, m := range msgs {
		var id [4]byte
		binary.BigEndian.PutUint32(id[:], uint32(m.Msg))
		buf = append(buf, id[:]...)
		buf = append(buf, byte(len(m.Payload)))
		buf = append(buf, m.Payload...)
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)
	return buf, nil
}

// DecodeFrame parses a frame produced by EncodeFrame, verifying the CRC.
func DecodeFrame(buf []byte) ([]FrameMessage, error) {
	if len(buf) < frameHeaderLen+frameTrailerLen {
		return nil, fmt.Errorf("ttp: frame of %d bytes is too short", len(buf))
	}
	body, trailer := buf[:len(buf)-frameTrailerLen], buf[len(buf)-frameTrailerLen:]
	want := binary.BigEndian.Uint32(trailer)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("ttp: frame CRC mismatch: computed %08x, stored %08x", got, want)
	}
	n := int(body[0])
	pos := frameHeaderLen
	msgs := make([]FrameMessage, 0, n)
	for i := 0; i < n; i++ {
		if pos+framePerMsgLen > len(body) {
			return nil, fmt.Errorf("ttp: frame truncated in message %d header", i)
		}
		id := model.MsgID(binary.BigEndian.Uint32(body[pos : pos+4]))
		plen := int(body[pos+4])
		pos += framePerMsgLen
		if pos+plen > len(body) {
			return nil, fmt.Errorf("ttp: frame truncated in message %d payload", i)
		}
		payload := make([]byte, plen)
		copy(payload, body[pos:pos+plen])
		pos += plen
		msgs = append(msgs, FrameMessage{Msg: id, Payload: payload})
	}
	if pos != len(body) {
		return nil, fmt.Errorf("ttp: frame has %d trailing bytes", len(body)-pos)
	}
	return msgs, nil
}
