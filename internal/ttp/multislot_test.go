package ttp

import (
	"testing"

	"incdes/internal/model"
)

// multiSlotBus gives node 0 two slots per round (slots 0 and 2) and node
// 1 one slot (slot 1), with different capacities.
func multiSlotBus() *model.Bus {
	return &model.Bus{
		SlotOrder:    []model.NodeID{0, 1, 0},
		SlotBytes:    []int{4, 8, 16},
		ByteTime:     1,
		SlotOverhead: 2,
	}
	// durations: 6, 10, 18; round length 34
}

func TestSlotsOfMultipleSlots(t *testing.T) {
	bus := multiSlotBus()
	slots := bus.SlotsOf(0)
	if len(slots) != 2 || slots[0] != 0 || slots[1] != 2 {
		t.Fatalf("SlotsOf(0) = %v, want [0 2]", slots)
	}
}

func TestFindSlotPrefersEarliestOfOwnedSlots(t *testing.T) {
	st, err := NewState(multiSlotBus(), 340) // 10 rounds
	if err != nil {
		t.Fatal(err)
	}
	// At t=0, node 0's slot 0 (start 0) requires earliest <= 0; for a
	// message ready at 1, slot 2 (start 16) is the earliest usable.
	r, sl, ok := st.FindSlot(0, 1, 4, 0)
	if !ok || r != 0 || sl != 2 {
		t.Errorf("FindSlot = (%d,%d,%v), want round 0 slot 2", r, sl, ok)
	}
	// A 10-byte message only fits the 16-byte slot.
	r, sl, ok = st.FindSlot(0, 0, 10, 0)
	if !ok || sl != 2 {
		t.Errorf("oversized-for-slot-0 message went to (%d,%d,%v), want slot 2", r, sl, ok)
	}
	// A 3-byte message ready at 0 takes slot 0 of round 0.
	r, sl, ok = st.FindSlot(0, 0, 3, 0)
	if !ok || r != 0 || sl != 0 {
		t.Errorf("small message went to (%d,%d,%v), want round 0 slot 0", r, sl, ok)
	}
}

func TestFindSlotFallsAcrossOwnedSlots(t *testing.T) {
	st, err := NewState(multiSlotBus(), 340)
	if err != nil {
		t.Fatal(err)
	}
	// Fill node 0's slot 0 in round 0; a 4-byte message ready at 0 must
	// use slot 2 of round 0 instead.
	if err := st.Reserve(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	r, sl, ok := st.FindSlot(0, 0, 4, 0)
	if !ok || r != 0 || sl != 2 {
		t.Errorf("FindSlot = (%d,%d,%v), want round 0 slot 2", r, sl, ok)
	}
}

func TestOccurrencesMultiSlotTiming(t *testing.T) {
	st, err := NewState(multiSlotBus(), 68) // 2 rounds
	if err != nil {
		t.Fatal(err)
	}
	occs := st.Occurrences()
	if len(occs) != 6 {
		t.Fatalf("%d occurrences, want 6", len(occs))
	}
	// Round 1 slot 1 starts at 34 + 6 = 40, ends at 50.
	o := occs[4]
	if o.Round != 1 || o.Slot != 1 || o.Start != 40 || o.End != 50 {
		t.Errorf("occurrence = %+v, want round 1 slot 1 [40,50)", o)
	}
}
