package ttp

// Delta is one recorded slot-occurrence reservation: the unit of the
// reversible ledger. A transaction (package sched) records every Reserve
// it performs as a Delta so the whole sequence can be undone in O(delta)
// by Revert, and so downstream consumers (the incremental metrics
// evaluator) know exactly which slot occurrences changed.
type Delta struct {
	Round, Slot int
	Bytes       int
}

// Journal accumulates reservation deltas for later reversal. The zero
// value is an empty journal ready to use; Reset reuses its storage, so a
// journal that lives inside a pooled transaction never re-allocates in
// steady state.
type Journal struct {
	deltas []Delta
}

// Record appends one reservation delta.
func (j *Journal) Record(round, slot, bytes int) {
	j.deltas = append(j.deltas, Delta{Round: round, Slot: slot, Bytes: bytes})
}

// Len returns the number of recorded deltas.
func (j *Journal) Len() int { return len(j.deltas) }

// Deltas returns the recorded deltas in record order (do not modify).
func (j *Journal) Deltas() []Delta { return j.deltas }

// Reset empties the journal, keeping its storage.
func (j *Journal) Reset() { j.deltas = j.deltas[:0] }

// Revert releases every reservation recorded in j, newest first, and
// resets the journal. Because Reserve and Release are plain integer
// bookkeeping on the ledger, a revert restores the exact prior ledger
// bytes — the property the scheduler's transaction rollback relies on.
func (s *State) Revert(j *Journal) {
	for i := len(j.deltas) - 1; i >= 0; i-- {
		d := j.deltas[i]
		s.Release(d.Round, d.Slot, d.Bytes)
	}
	j.Reset()
}
