// Package ttp models the time-triggered protocol bus (Kopetz & Grünsteidl,
// IEEE Computer 1994) at the level of detail the paper's scheduler needs:
// a static TDMA round of node-owned slots repeating over the schedule
// horizon, per-slot byte capacities, and reservation bookkeeping for the
// messages packed into each slot occurrence. It also exports the static
// MEDL (message descriptor list) and a concrete frame layout so a design
// can be emitted in a form a TTP controller configuration would take.
package ttp

import (
	"fmt"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// State tracks how many bytes of every slot occurrence are reserved over a
// schedule horizon. The horizon must be a whole number of TDMA rounds
// (guaranteed when it is the system hyperperiod, which includes the round
// length as an LCM factor).
type State struct {
	bus     *model.Bus
	horizon tm.Time
	rounds  int
	used    [][]int // used[round][slot] = reserved bytes

	// stats are optional observability sinks (see obs.go). They never
	// influence reservation decisions.
	stats Stats
}

// NewState returns an empty reservation state over the horizon.
func NewState(bus *model.Bus, horizon tm.Time) (*State, error) {
	rl := bus.RoundLen()
	if rl <= 0 {
		return nil, fmt.Errorf("ttp: bus round length %v must be positive", rl)
	}
	if horizon%rl != 0 {
		return nil, fmt.Errorf("ttp: horizon %v is not a multiple of the TDMA round %v", horizon, rl)
	}
	rounds := int(horizon / rl)
	used := make([][]int, rounds)
	for r := range used {
		used[r] = make([]int, bus.NumSlots())
	}
	return &State{bus: bus, horizon: horizon, rounds: rounds, used: used}, nil
}

// Bus returns the underlying bus description.
func (s *State) Bus() *model.Bus { return s.bus }

// Horizon returns the schedule horizon the state covers.
func (s *State) Horizon() tm.Time { return s.horizon }

// Rounds returns the number of TDMA rounds inside the horizon.
func (s *State) Rounds() int { return s.rounds }

// Clone returns an independent copy of the reservation state. Cloning is
// cheap by design: the mapping strategies clone the base state for every
// what-if evaluation.
func (s *State) Clone() *State {
	c := &State{bus: s.bus, horizon: s.horizon, rounds: s.rounds, stats: s.stats}
	c.used = make([][]int, len(s.used))
	for r, row := range s.used {
		c.used[r] = append([]int(nil), row...)
	}
	return c
}

// CopyFrom makes s an exact copy of src's schedule content, reusing s's
// reservation matrix when its shape matches. It is the allocation-free
// counterpart of Clone for scratch states that are overwritten once per
// what-if evaluation. s keeps its own stats attachment (see SetStats).
func (s *State) CopyFrom(src *State) {
	s.bus, s.horizon, s.rounds = src.bus, src.horizon, src.rounds
	if len(s.used) != len(src.used) {
		s.used = make([][]int, len(src.used))
	}
	for r, row := range src.used {
		s.used[r] = append(s.used[r][:0], row...)
	}
}

// Used returns the reserved bytes of slot occurrence (round, slot).
func (s *State) Used(round, slot int) int { return s.used[round][slot] }

// Free returns the free bytes of slot occurrence (round, slot).
func (s *State) Free(round, slot int) int {
	return s.bus.SlotBytes[slot] - s.used[round][slot]
}

// Reserve books bytes in slot occurrence (round, slot). It fails if the
// occurrence lies outside the horizon or lacks capacity.
func (s *State) Reserve(round, slot, bytes int) error {
	if round < 0 || round >= s.rounds || slot < 0 || slot >= s.bus.NumSlots() {
		return fmt.Errorf("ttp: slot occurrence (%d,%d) outside horizon", round, slot)
	}
	if bytes <= 0 {
		return fmt.Errorf("ttp: reservation of %d bytes", bytes)
	}
	if s.Free(round, slot) < bytes {
		return fmt.Errorf("ttp: slot occurrence (%d,%d) has %d free bytes, need %d",
			round, slot, s.Free(round, slot), bytes)
	}
	s.used[round][slot] += bytes
	s.stats.Reservations.Inc()
	return nil
}

// Release returns previously reserved bytes. Releasing more than is
// reserved is a bookkeeping bug and panics.
func (s *State) Release(round, slot, bytes int) {
	if s.used[round][slot] < bytes {
		panic(fmt.Sprintf("ttp: release of %d bytes from occurrence (%d,%d) holding %d",
			bytes, round, slot, s.used[round][slot]))
	}
	s.used[round][slot] -= bytes
}

// FindSlot returns the earliest slot occurrence owned by node that starts
// at or after earliest (the frame is assembled before the slot begins, so
// the message must exist by then), lies within the horizon, begins at
// round >= fromRound, and has at least bytes free. ok is false if no such
// occurrence exists.
func (s *State) FindSlot(node model.NodeID, earliest tm.Time, bytes, fromRound int) (round, slot int, ok bool) {
	s.stats.FindSlotCalls.Inc()
	slots := s.bus.SlotsOf(node)
	if len(slots) == 0 {
		return 0, 0, false
	}
	startRound := 0
	if earliest > 0 {
		startRound = int(earliest / s.bus.RoundLen()) // slot starts within this round could still be >= earliest
	}
	if fromRound > startRound {
		startRound = fromRound
	}
	probes := int64(0)
	for r := startRound; r < s.rounds; r++ {
		for _, sl := range slots {
			probes++
			if s.bus.SlotStart(r, sl) < earliest {
				continue
			}
			if s.Free(r, sl) >= bytes {
				s.stats.SlotProbes.Add(probes)
				return r, sl, true
			}
		}
	}
	s.stats.SlotProbes.Add(probes)
	return 0, 0, false
}

// SlotOccurrence describes one (round, slot) occurrence with its timing
// and remaining capacity; the slack analyzer enumerates these.
type SlotOccurrence struct {
	Round, Slot int
	Owner       model.NodeID
	Start, End  tm.Time
	FreeBytes   int
}

// Occurrences lists every slot occurrence in the horizon in time order.
func (s *State) Occurrences() []SlotOccurrence {
	out := make([]SlotOccurrence, 0, s.rounds*s.bus.NumSlots())
	for r := 0; r < s.rounds; r++ {
		for sl := 0; sl < s.bus.NumSlots(); sl++ {
			out = append(out, SlotOccurrence{
				Round: r, Slot: sl,
				Owner:     s.bus.SlotOrder[sl],
				Start:     s.bus.SlotStart(r, sl),
				End:       s.bus.SlotEnd(r, sl),
				FreeBytes: s.Free(r, sl),
			})
		}
	}
	return out
}

// TotalFreeBytes sums the free capacity over all slot occurrences.
func (s *State) TotalFreeBytes() int {
	total := 0
	for r := 0; r < s.rounds; r++ {
		for sl := 0; sl < s.bus.NumSlots(); sl++ {
			total += s.Free(r, sl)
		}
	}
	return total
}
