package ttp

import "incdes/internal/obs"

// Stats are the bus-side observability instruments a State reports
// into. The zero value (all nil) disables instrumentation at the cost
// of one nil check per event; see package obs.
type Stats struct {
	// FindSlotCalls counts FindSlot invocations.
	FindSlotCalls *obs.Counter
	// SlotProbes counts slot occurrences examined across FindSlot scans:
	// the bus-side analogue of "design alternatives touched".
	SlotProbes *obs.Counter
	// Reservations counts successful slot reservations.
	Reservations *obs.Counter
}

// StatsFrom resolves the canonical bus instruments from a registry.
// A nil registry yields all-nil (disabled) stats.
func StatsFrom(r *obs.Registry) Stats {
	return Stats{
		FindSlotCalls: r.Counter(obs.CtrTTPFindSlot),
		SlotProbes:    r.Counter(obs.CtrTTPProbes),
		Reservations:  r.Counter(obs.CtrTTPReserve),
	}
}

// SetStats attaches observability instruments to the state. Stats are
// sink configuration, not schedule content: Clone propagates them, but
// CopyFrom leaves the destination's stats untouched so a scratch state
// keeps its instruments while being overwritten from an uninstrumented
// base.
func (s *State) SetStats(st Stats) { s.stats = st }

// Occupancy summarizes slot usage over the horizon: the TTP-side view
// of how much bus headroom the final design left for future
// applications.
type Occupancy struct {
	Rounds, Slots int // reservation matrix shape
	UsedBytes     int // reserved bytes over the horizon
	CapacityBytes int // total slot capacity over the horizon
	OccupiedSlots int // slot occurrences carrying at least one byte
}

// Occupancy computes the current slot-occupancy summary.
func (s *State) Occupancy() Occupancy {
	oc := Occupancy{Rounds: s.rounds, Slots: s.bus.NumSlots()}
	for r := 0; r < s.rounds; r++ {
		for sl := 0; sl < oc.Slots; sl++ {
			oc.CapacityBytes += s.bus.SlotBytes[sl]
			if used := s.used[r][sl]; used > 0 {
				oc.UsedBytes += used
				oc.OccupiedSlots++
			}
		}
	}
	return oc
}
