package ttp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"incdes/internal/model"
	"incdes/internal/tm"
	"incdes/internal/ttp"
)

// resv is one live reservation the test knows it holds.
type resv struct{ round, slot, bytes int }

// TestReservationInvariants drives random reservation traffic against the
// TDMA bus ledger and checks, after every step, that the ledger never
// over- or under-books a slot and that FindSlot only ever proposes slot
// occurrences that are owned by the requesting node, start no earlier
// than asked, and have the capacity it claims.
func TestReservationInvariants(t *testing.T) {
	bus := &model.Bus{
		SlotOrder:    []model.NodeID{0, 1, 2},
		SlotBytes:    []int{8, 16, 4},
		ByteTime:     1,
		SlotOverhead: 2,
	}
	horizon := bus.RoundLen() * 5
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			st, err := ttp.NewState(bus, horizon)
			if err != nil {
				t.Fatal(err)
			}
			var live []resv
			for step := 0; step < 300; step++ {
				if len(live) == 0 || rng.Intn(3) != 0 {
					node := model.NodeID(rng.Intn(len(bus.SlotOrder)))
					bytes := 1 + rng.Intn(10)
					earliest := tm.Time(rng.Int63n(int64(horizon)))
					round, slot, ok := st.FindSlot(node, earliest, bytes, 0)
					if !ok {
						continue
					}
					if owner := bus.SlotOrder[slot]; owner != node {
						t.Fatalf("FindSlot(node %d) returned slot %d owned by node %d", node, slot, owner)
					}
					if start := bus.SlotStart(round, slot); start < earliest {
						t.Fatalf("FindSlot returned occurrence (%d,%d) starting %d, earliest was %d",
							round, slot, start, earliest)
					}
					if free := st.Free(round, slot); free < bytes {
						t.Fatalf("FindSlot returned occurrence (%d,%d) with %d free for a %d-byte request",
							round, slot, free, bytes)
					}
					if err := st.Reserve(round, slot, bytes); err != nil {
						t.Fatalf("reserving the occurrence FindSlot proposed: %v", err)
					}
					live = append(live, resv{round, slot, bytes})
				} else {
					i := rng.Intn(len(live))
					r := live[i]
					st.Release(r.round, r.slot, r.bytes)
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				checkLedger(t, st, bus, live)
			}

			// Over-capacity reservations must fail and leave the ledger alone.
			for slot := range bus.SlotOrder {
				free := st.Free(0, slot)
				if err := st.Reserve(0, slot, free+1); err == nil {
					t.Fatalf("slot (0,%d) with %d free accepted %d bytes", slot, free, free+1)
				}
			}
			checkLedger(t, st, bus, live)

			// Clone independence: mutating a copy never shows in the original.
			before := make([]int, len(bus.SlotOrder))
			for slot := range bus.SlotOrder {
				before[slot] = st.Used(0, slot)
			}
			cl := st.Clone()
			for slot := range bus.SlotOrder {
				if cl.Free(0, slot) > 0 {
					if err := cl.Reserve(0, slot, 1); err != nil {
						t.Fatal(err)
					}
				}
			}
			for slot := range bus.SlotOrder {
				if st.Used(0, slot) != before[slot] {
					t.Fatalf("reserving in a clone changed the original at slot (0,%d)", slot)
				}
			}
		})
	}
}

// checkLedger verifies Used/Free bookkeeping against the known set of
// live reservations in every slot occurrence.
func checkLedger(t *testing.T, st *ttp.State, bus *model.Bus, live []resv) {
	t.Helper()
	want := map[[2]int]int{}
	for _, r := range live {
		want[[2]int{r.round, r.slot}] += r.bytes
	}
	for round := 0; round < st.Rounds(); round++ {
		for slot := 0; slot < bus.NumSlots(); slot++ {
			used := st.Used(round, slot)
			if used != want[[2]int{round, slot}] {
				t.Fatalf("occurrence (%d,%d): ledger says %d used, live reservations sum to %d",
					round, slot, used, want[[2]int{round, slot}])
			}
			if used < 0 || used > bus.SlotBytes[slot] {
				t.Fatalf("occurrence (%d,%d): %d bytes used, capacity %d",
					round, slot, used, bus.SlotBytes[slot])
			}
			if free := st.Free(round, slot); used+free != bus.SlotBytes[slot] {
				t.Fatalf("occurrence (%d,%d): used %d + free %d != capacity %d",
					round, slot, used, free, bus.SlotBytes[slot])
			}
		}
	}
}
