package ttp

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame hardens the frame parser against arbitrary bus noise: it
// must never panic, and everything it accepts must re-encode to the same
// bytes (the decoder is the inverse of the encoder on its accepted set).
func FuzzDecodeFrame(f *testing.F) {
	seed, _ := EncodeFrame([]FrameMessage{
		{Msg: 1, Payload: []byte{1, 2, 3}},
		{Msg: 70000, Payload: nil},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodeFrame(data)
		if err != nil {
			return
		}
		back, err := EncodeFrame(msgs)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("decode/encode not inverse:\n in  %x\n out %x", data, back)
		}
	})
}
