package ttp

import (
	"fmt"
	"sort"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// Placement records where one message transmission (one hop of an
// occurrence) was scheduled on a bus. It is the bus-side output of the
// static scheduler. Bus and Hop are zero for single-bus designs; on
// multi-cluster architectures an inter-cluster occurrence produces one
// placement per hop of its route.
type Placement struct {
	Msg   model.MsgID
	Occ   int // occurrence index of the sending graph
	Round int
	Slot  int
	Bytes int
	Bus   model.BusID // bus this hop is transmitted on
	Hop   int         // position in the occurrence's route chain
}

// MEDLEntry is one line of the message descriptor list: inside slot
// occurrence (Round, Slot) of bus Bus, the message occupies
// [Offset, Offset+Bytes). TTP controllers are configured from exactly
// this static table — one table per bus; the bus/hop fields are omitted
// for single-bus designs so their serialized form is unchanged.
type MEDLEntry struct {
	Round  int          `json:"round"`
	Slot   int          `json:"slot"`
	Offset int          `json:"offset"`
	Msg    model.MsgID  `json:"msg"`
	Occ    int          `json:"occ"`
	Bytes  int          `json:"bytes"`
	Owner  model.NodeID `json:"owner"`
	Start  tm.Time      `json:"start"`
	End    tm.Time      `json:"end"`
	Bus    model.BusID  `json:"bus,omitempty"`
	Hop    int          `json:"hop,omitempty"`
}

// BuildMEDL lays the placements out inside their slot occurrences,
// assigning byte offsets in deterministic (msg ID, occurrence) order, and
// returns the full descriptor list sorted by time. It fails if any slot
// occurrence overflows — which would indicate a scheduler bug, since the
// scheduler reserves capacity before placing.
func BuildMEDL(bus *model.Bus, placements []Placement) ([]MEDLEntry, error) {
	bySlot := map[[2]int][]Placement{}
	for _, p := range placements {
		key := [2]int{p.Round, p.Slot}
		bySlot[key] = append(bySlot[key], p)
	}
	var medl []MEDLEntry
	for key, ps := range bySlot {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Msg != ps[j].Msg {
				return ps[i].Msg < ps[j].Msg
			}
			return ps[i].Occ < ps[j].Occ
		})
		offset := 0
		for _, p := range ps {
			if offset+p.Bytes > bus.SlotBytes[p.Slot] {
				return nil, fmt.Errorf("ttp: bus %d slot occurrence (%d,%d) overflows: offset %d + %d bytes > capacity %d",
					p.Bus, p.Round, p.Slot, offset, p.Bytes, bus.SlotBytes[p.Slot])
			}
			medl = append(medl, MEDLEntry{
				Round: key[0], Slot: key[1], Offset: offset,
				Msg: p.Msg, Occ: p.Occ, Bytes: p.Bytes,
				Owner: bus.SlotOrder[p.Slot],
				Start: bus.SlotStart(key[0], key[1]),
				End:   bus.SlotEnd(key[0], key[1]),
				Bus:   p.Bus, Hop: p.Hop,
			})
			offset += p.Bytes
		}
	}
	sort.Slice(medl, func(i, j int) bool {
		if medl[i].Start != medl[j].Start {
			return medl[i].Start < medl[j].Start
		}
		return medl[i].Offset < medl[j].Offset
	})
	return medl, nil
}

// BuildMEDLAll builds the descriptor list of a multi-bus design: each
// placement is laid out inside its own bus's slot occurrence, and the
// merged list is sorted by (Start, Bus, Offset). For a single-bus design
// the result is byte-identical to BuildMEDL over the same placements.
func BuildMEDLAll(buses []*model.Bus, placements []Placement) ([]MEDLEntry, error) {
	perBus := make([][]Placement, len(buses))
	for _, p := range placements {
		if int(p.Bus) < 0 || int(p.Bus) >= len(buses) {
			return nil, fmt.Errorf("ttp: placement of message %d references unknown bus %d", p.Msg, p.Bus)
		}
		perBus[p.Bus] = append(perBus[p.Bus], p)
	}
	var medl []MEDLEntry
	for bi, ps := range perBus {
		if len(ps) == 0 {
			continue
		}
		part, err := BuildMEDL(buses[bi], ps)
		if err != nil {
			return nil, err
		}
		medl = append(medl, part...)
	}
	sort.Slice(medl, func(i, j int) bool {
		if medl[i].Start != medl[j].Start {
			return medl[i].Start < medl[j].Start
		}
		if medl[i].Bus != medl[j].Bus {
			return medl[i].Bus < medl[j].Bus
		}
		return medl[i].Offset < medl[j].Offset
	})
	return medl, nil
}
