package ttp

import (
	"fmt"
	"sort"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// Placement records where one message occurrence was scheduled on the bus.
// It is the bus-side output of the static scheduler.
type Placement struct {
	Msg   model.MsgID
	Occ   int // occurrence index of the sending graph
	Round int
	Slot  int
	Bytes int
}

// MEDLEntry is one line of the message descriptor list: inside slot
// occurrence (Round, Slot) the message occupies [Offset, Offset+Bytes).
// TTP controllers are configured from exactly this static table.
type MEDLEntry struct {
	Round  int          `json:"round"`
	Slot   int          `json:"slot"`
	Offset int          `json:"offset"`
	Msg    model.MsgID  `json:"msg"`
	Occ    int          `json:"occ"`
	Bytes  int          `json:"bytes"`
	Owner  model.NodeID `json:"owner"`
	Start  tm.Time      `json:"start"`
	End    tm.Time      `json:"end"`
}

// BuildMEDL lays the placements out inside their slot occurrences,
// assigning byte offsets in deterministic (msg ID, occurrence) order, and
// returns the full descriptor list sorted by time. It fails if any slot
// occurrence overflows — which would indicate a scheduler bug, since the
// scheduler reserves capacity before placing.
func BuildMEDL(bus *model.Bus, placements []Placement) ([]MEDLEntry, error) {
	bySlot := map[[2]int][]Placement{}
	for _, p := range placements {
		key := [2]int{p.Round, p.Slot}
		bySlot[key] = append(bySlot[key], p)
	}
	var medl []MEDLEntry
	for key, ps := range bySlot {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Msg != ps[j].Msg {
				return ps[i].Msg < ps[j].Msg
			}
			return ps[i].Occ < ps[j].Occ
		})
		offset := 0
		for _, p := range ps {
			if offset+p.Bytes > bus.SlotBytes[p.Slot] {
				return nil, fmt.Errorf("ttp: slot occurrence (%d,%d) overflows: offset %d + %d bytes > capacity %d",
					p.Round, p.Slot, offset, p.Bytes, bus.SlotBytes[p.Slot])
			}
			medl = append(medl, MEDLEntry{
				Round: key[0], Slot: key[1], Offset: offset,
				Msg: p.Msg, Occ: p.Occ, Bytes: p.Bytes,
				Owner: bus.SlotOrder[p.Slot],
				Start: bus.SlotStart(key[0], key[1]),
				End:   bus.SlotEnd(key[0], key[1]),
			})
			offset += p.Bytes
		}
	}
	sort.Slice(medl, func(i, j int) bool {
		if medl[i].Start != medl[j].Start {
			return medl[i].Start < medl[j].Start
		}
		return medl[i].Offset < medl[j].Offset
	})
	return medl, nil
}
