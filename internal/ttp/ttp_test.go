package ttp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"incdes/internal/model"
	"incdes/internal/tm"
)

func testBus() *model.Bus {
	return &model.Bus{
		SlotOrder:    []model.NodeID{1, 0}, // slide-5 slot order: S1 then S0
		SlotBytes:    []int{8, 8},
		ByteTime:     2,
		SlotOverhead: 2,
	}
	// slot duration 18, round length 36
}

func TestNewStateRequiresRoundMultiple(t *testing.T) {
	bus := testBus()
	if _, err := NewState(bus, 100); err == nil {
		t.Error("horizon not multiple of round accepted")
	}
	st, err := NewState(bus, 360)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	if st.Rounds() != 10 {
		t.Errorf("Rounds = %d, want 10", st.Rounds())
	}
}

func TestReserveAndFree(t *testing.T) {
	st, _ := NewState(testBus(), 360)
	if got := st.Free(0, 0); got != 8 {
		t.Fatalf("initial free = %d", got)
	}
	if err := st.Reserve(0, 0, 5); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := st.Free(0, 0); got != 3 {
		t.Errorf("free after reserve = %d, want 3", got)
	}
	if err := st.Reserve(0, 0, 4); err == nil {
		t.Error("over-capacity reservation accepted")
	}
	if err := st.Reserve(0, 0, 3); err != nil {
		t.Errorf("exact-fit reservation rejected: %v", err)
	}
	st.Release(0, 0, 8)
	if got := st.Free(0, 0); got != 8 {
		t.Errorf("free after release = %d, want 8", got)
	}
	if err := st.Reserve(99, 0, 1); err == nil {
		t.Error("out-of-horizon reservation accepted")
	}
	if err := st.Reserve(0, 0, 0); err == nil {
		t.Error("zero-byte reservation accepted")
	}
}

func TestReleasePanicsOnUnderflow(t *testing.T) {
	st, _ := NewState(testBus(), 36)
	defer func() {
		if recover() == nil {
			t.Error("Release underflow did not panic")
		}
	}()
	st.Release(0, 0, 1)
}

func TestFindSlotBasics(t *testing.T) {
	st, _ := NewState(testBus(), 360) // rounds of 36; node 1 owns slot 0, node 0 owns slot 1
	// Node 0's slot in round 0 starts at 18.
	r, sl, ok := st.FindSlot(0, 0, 4, 0)
	if !ok || r != 0 || sl != 1 {
		t.Fatalf("FindSlot(node0, t=0) = (%d,%d,%v)", r, sl, ok)
	}
	// earliest after the slot start pushes to the next round.
	r, sl, ok = st.FindSlot(0, 19, 4, 0)
	if !ok || r != 1 || sl != 1 {
		t.Errorf("FindSlot(node0, t=19) = (%d,%d,%v), want round 1", r, sl, ok)
	}
	// earliest exactly at slot start is allowed (frame assembled at start).
	r, _, ok = st.FindSlot(0, 18, 4, 0)
	if !ok || r != 0 {
		t.Errorf("FindSlot(node0, t=18) = round %d, want 0", r)
	}
	// fromRound skips earlier rounds even if they are free.
	r, _, ok = st.FindSlot(0, 0, 4, 3)
	if !ok || r != 3 {
		t.Errorf("FindSlot(fromRound=3) = round %d, want 3", r)
	}
	// Unknown node owns no slots.
	if _, _, ok := st.FindSlot(7, 0, 1, 0); ok {
		t.Error("FindSlot for slotless node succeeded")
	}
}

func TestFindSlotSkipsFullOccurrences(t *testing.T) {
	st, _ := NewState(testBus(), 360)
	// Fill node 0's slot in rounds 0..2.
	for r := 0; r < 3; r++ {
		if err := st.Reserve(r, 1, 8); err != nil {
			t.Fatalf("Reserve round %d: %v", r, err)
		}
	}
	r, _, ok := st.FindSlot(0, 0, 2, 0)
	if !ok || r != 3 {
		t.Errorf("FindSlot over full rounds = round %d (ok=%v), want 3", r, ok)
	}
	// A message bigger than the slot can never be placed.
	if _, _, ok := st.FindSlot(0, 0, 9, 0); ok {
		t.Error("FindSlot placed an oversized message")
	}
}

func TestFindSlotHorizonBound(t *testing.T) {
	st, _ := NewState(testBus(), 72) // 2 rounds
	if _, _, ok := st.FindSlot(0, 60, 1, 0); ok {
		t.Error("FindSlot returned an occurrence starting after every slot of node 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	st, _ := NewState(testBus(), 72)
	if err := st.Reserve(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	c := st.Clone()
	if err := c.Reserve(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if st.Free(0, 0) != 4 {
		t.Error("Clone shares reservation storage with original")
	}
	if c.Free(0, 0) != 0 {
		t.Error("Clone lost reservation")
	}
}

func TestOccurrencesOrdering(t *testing.T) {
	st, _ := NewState(testBus(), 72)
	occs := st.Occurrences()
	if len(occs) != 4 {
		t.Fatalf("len(Occurrences) = %d, want 4", len(occs))
	}
	var prev tm.Time = -1
	for _, o := range occs {
		if o.Start < prev {
			t.Errorf("occurrences not in time order: %v", occs)
		}
		prev = o.Start
		if o.End-o.Start != 18 {
			t.Errorf("slot duration = %v, want 18", o.End-o.Start)
		}
	}
	if occs[0].Owner != 1 || occs[1].Owner != 0 {
		t.Errorf("slot owners wrong: %v, %v", occs[0].Owner, occs[1].Owner)
	}
}

func TestTotalFreeBytes(t *testing.T) {
	st, _ := NewState(testBus(), 72)
	if got := st.TotalFreeBytes(); got != 32 {
		t.Fatalf("TotalFreeBytes = %d, want 32", got)
	}
	st.Reserve(1, 1, 5)
	if got := st.TotalFreeBytes(); got != 27 {
		t.Errorf("TotalFreeBytes after reserve = %d, want 27", got)
	}
}

func TestBuildMEDL(t *testing.T) {
	bus := testBus()
	placements := []Placement{
		{Msg: 2, Occ: 0, Round: 0, Slot: 0, Bytes: 3},
		{Msg: 1, Occ: 0, Round: 0, Slot: 0, Bytes: 4},
		{Msg: 3, Occ: 1, Round: 1, Slot: 1, Bytes: 8},
	}
	medl, err := BuildMEDL(bus, placements)
	if err != nil {
		t.Fatalf("BuildMEDL: %v", err)
	}
	if len(medl) != 3 {
		t.Fatalf("len(medl) = %d", len(medl))
	}
	// Slot (0,0): msg 1 at offset 0, msg 2 at offset 4.
	if medl[0].Msg != 1 || medl[0].Offset != 0 {
		t.Errorf("first entry = %+v", medl[0])
	}
	if medl[1].Msg != 2 || medl[1].Offset != 4 {
		t.Errorf("second entry = %+v", medl[1])
	}
	if medl[2].Msg != 3 || medl[2].Round != 1 {
		t.Errorf("third entry = %+v", medl[2])
	}
	// Overflow detection.
	placements = append(placements, Placement{Msg: 4, Occ: 0, Round: 0, Slot: 0, Bytes: 5})
	if _, err := BuildMEDL(bus, placements); err == nil {
		t.Error("overflowing MEDL accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []FrameMessage{
		{Msg: 1, Payload: []byte{0xAA, 0xBB}},
		{Msg: 70000, Payload: nil},
		{Msg: 3, Payload: []byte{1, 2, 3, 4, 5}},
	}
	buf, err := EncodeFrame(msgs)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(got) != 3 || got[0].Msg != 1 || got[1].Msg != 70000 {
		t.Errorf("round trip = %+v", got)
	}
	if string(got[2].Payload) != string([]byte{1, 2, 3, 4, 5}) {
		t.Errorf("payload corrupted: %v", got[2].Payload)
	}
}

func TestFrameCRCDetectsCorruption(t *testing.T) {
	buf, _ := EncodeFrame([]FrameMessage{{Msg: 9, Payload: []byte{7}}})
	buf[2] ^= 0xFF
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("corrupted frame decoded without error")
	}
	if _, err := DecodeFrame(buf[:3]); err == nil {
		t.Error("truncated frame decoded without error")
	}
}

func TestFrameQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		msgs := make([]FrameMessage, n)
		for i := range msgs {
			p := make([]byte, rng.Intn(10))
			rng.Read(p)
			msgs[i] = FrameMessage{Msg: model.MsgID(rng.Intn(1 << 20)), Payload: p}
		}
		buf, err := EncodeFrame(msgs)
		if err != nil {
			return false
		}
		got, err := DecodeFrame(buf)
		if err != nil || len(got) != len(msgs) {
			return false
		}
		for i := range msgs {
			if got[i].Msg != msgs[i].Msg || string(got[i].Payload) != string(msgs[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
