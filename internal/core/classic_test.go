package core_test

import (
	"incdes/internal/core"
	"testing"

	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/sim"
	"incdes/internal/tm"
)

// TestClassicExample pins down the paper's slide-5 "classic mapping and
// scheduling" flow: a diamond graph on two nodes with slot order (S1, S0)
// — byte time 2, slot overhead 2, 8-byte slots, hence 18 tu slots and a
// 36 tu round. The mapping heuristic balances the diamond across both
// nodes (the pure finish-time mapping would co-locate everything on N0
// and leave node N1's periodic slack to chance). The expected schedule
// was verified by hand:
//
//	P1 on N0 [0,20)        (faster there: 20 vs 30)
//	m1,m2 in N0's slot of round 1 (first N0 slot start >= 20 is t=54),
//	       arriving at 72
//	P2 on N1 [72,102), P3 on N1 [102,127)
//	m3 in N1's slot of round 3 (start 108 >= 102), arriving 126
//	m4 in N1's slot of round 4 (start 144 >= 127), arriving 162
//	P4 on N0 [162,182)
func TestClassicExample(t *testing.T) {
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n1, n0}, []int{8, 8}, 2, 2)
	app := b.App("diamond")
	g := app.Graph("G1", 360, 360)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 20, n1: 30})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n0: 40, n1: 30})
	p3 := g.Proc("P3", map[model.NodeID]tm.Time{n0: 30, n1: 25})
	p4 := g.Proc("P4", map[model.NodeID]tm.Time{n0: 20, n1: 20})
	m1 := g.Msg(p1, p2, 4)
	m2 := g.Msg(p1, p3, 4)
	m3 := g.Msg(p2, p4, 4)
	m4 := g.Msg(p3, p4, 4)
	sys := b.MustSystem()

	base, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	prof := future.PaperProfile(90, 20, 8)
	prof.WCET = []future.Bin{{Size: 10, Prob: 0.5}, {Size: 20, Prob: 0.5}}
	p, err := core.NewProblem(sys, base, sys.Apps[0], prof, metrics.DefaultWeights(prof))
	if err != nil {
		t.Fatal(err)
	}

	sol, err := core.MappingHeuristic(p, core.MHOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := sim.Check(sol.State, sys.Apps...); len(vs) != 0 {
		t.Fatalf("classic schedule invalid: %v", vs[0])
	}

	wantNode := map[model.ProcID]model.NodeID{p1: n0, p2: n1, p3: n1, p4: n0}
	for proc, node := range wantNode {
		if sol.Mapping[proc] != node {
			t.Errorf("P%d mapped to N%d, want N%d", proc+1, sol.Mapping[proc], node)
		}
	}

	wantStart := map[model.ProcID]tm.Time{p1: 0, p2: 72, p3: 102, p4: 162}
	for _, e := range sol.State.ProcEntries() {
		if want, ok := wantStart[e.Proc]; ok && e.Start != want {
			t.Errorf("P%d starts at %v, want %v", e.Proc+1, e.Start, want)
		}
	}

	wantArrive := map[model.MsgID]tm.Time{m1: 72, m2: 72, m3: 126, m4: 162}
	got := map[model.MsgID]tm.Time{}
	for _, e := range sol.State.MsgEntries() {
		got[e.Msg] = e.Arrive
	}
	for m, want := range wantArrive {
		if got[m] != want {
			t.Errorf("m%d arrives at %v, want %v", m+1, got[m], want)
		}
	}

	// The slack after the application is one contiguous tail on each
	// node, so the whole future demand packs: C = 0.
	if sol.Report.Objective != 0 {
		t.Errorf("classic example objective = %v, want 0 (%v)", sol.Report.Objective, sol.Report)
	}
}
