package core_test

import (
	"testing"

	"incdes/internal/core"
	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/sim"
	"incdes/internal/tm"
)

// relaxedFixture builds a single-node system where the existing
// application occupies [0,80) of a 100 tu period, and the current
// application needs 50 tu: infeasible while the existing app is frozen,
// feasible once it may be rescheduled (30+50 = 80 <= 100).
func relaxedFixture(t *testing.T) *core.RelaxedProblem {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	b.Bus([]model.NodeID{n0}, []int{10}, 1, 0) // round 10
	ga := b.App("legacy").Graph("G1", 100, 100)
	ga.Proc("A1", map[model.NodeID]tm.Time{n0: 30})
	ga.Proc("A2", map[model.NodeID]tm.Time{n0: 50})
	gb := b.App("current").Graph("G2", 100, 100)
	gb.Proc("B", map[model.NodeID]tm.Time{n0: 50})
	sys := b.MustSystem()

	prof := future.PaperProfile(100, 10, 2)
	prof.WCET = []future.Bin{{Size: 10, Prob: 1}}
	return &core.RelaxedProblem{
		Sys:      sys,
		Base:     mustMapExisting(t, sys, sys.Apps[:1]),
		Existing: []core.ExistingApp{{App: sys.Apps[0], Cost: 7}},
		Current:  sys.Apps[1],
		Profile:  prof,
		Weights:  metrics.DefaultWeights(prof),
	}
}

// mustMapExisting schedules the given applications in arrival order with
// the initial mapper and returns the resulting base state.
func mustMapExisting(t *testing.T, sys *model.System, apps []*model.Application) *sched.State {
	t.Helper()
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		if _, err := st.MapApp(app, sched.Hints{}); err != nil {
			t.Fatalf("base placement of %q: %v", app.Name, err)
		}
	}
	return st
}

func TestSolveRelaxedPrefersNoModification(t *testing.T) {
	// Shrink the existing app so everything fits frozen.
	rp := relaxedFixture(t)
	rp.Existing[0].App.Graphs[0].Procs[1].WCET[0] = 10 // A2: 50 -> 10
	rp.Base = mustMapExisting(t, rp.Sys, rp.Sys.Apps[:1])
	sol, err := core.SolveRelaxed(rp, core.RelaxedOptions{})
	if err != nil {
		t.Fatalf("SolveRelaxed: %v", err)
	}
	if len(sol.Modified) != 0 || sol.Cost != 0 {
		t.Errorf("modified %v at cost %v; the frozen design suffices", sol.Modified, sol.Cost)
	}
	if vs := sim.Check(sol.State, rp.Existing[0].App, rp.Current); len(vs) != 0 {
		t.Fatalf("relaxed schedule invalid: %v", vs[0])
	}
}

func TestSolveRelaxedModifiesWhenForced(t *testing.T) {
	// One node, 100 tu period. Existing: one 50 tu process (deadline
	// 100), packed at [0,50). Current: one 50 tu process with deadline
	// 60 — infeasible behind the frozen application, feasible once the
	// legacy application may be rescheduled after it.
	b := model.NewBuilder()
	n0 := b.Node("N0")
	b.Bus([]model.NodeID{n0}, []int{10}, 1, 0)
	ga := b.App("legacy").Graph("G1", 100, 100)
	ga.Proc("A", map[model.NodeID]tm.Time{n0: 50})
	gb := b.App("current").Graph("G2", 100, 60)
	gb.Proc("B", map[model.NodeID]tm.Time{n0: 50})
	sys := b.MustSystem()

	prof := future.PaperProfile(100, 10, 2)
	prof.WCET = []future.Bin{{Size: 10, Prob: 1}}
	rp := &core.RelaxedProblem{
		Sys:      sys,
		Base:     mustMapExisting(t, sys, sys.Apps[:1]),
		Existing: []core.ExistingApp{{App: sys.Apps[0], Cost: 7}},
		Current:  sys.Apps[1],
		Profile:  prof,
		Weights:  metrics.DefaultWeights(prof),
	}
	sol, err := core.SolveRelaxed(rp, core.RelaxedOptions{})
	if err != nil {
		t.Fatalf("SolveRelaxed: %v", err)
	}
	if sol.Cost != 7 || len(sol.Modified) != 1 {
		t.Errorf("modified %v at cost %v; want the legacy application at cost 7", sol.Modified, sol.Cost)
	}
	if sol.Subsets != 2 {
		t.Errorf("evaluated %d subsets, want 2 (frozen first, then {legacy})", sol.Subsets)
	}
	if vs := sim.Check(sol.State, sys.Apps...); len(vs) != 0 {
		t.Fatalf("relaxed schedule invalid: %v", vs[0])
	}
	// B must now run before its 60 tu deadline.
	for _, e := range sol.State.ProcEntries() {
		if e.App == sys.Apps[1].ID && e.End > 60 {
			t.Errorf("current application ends at %v, deadline 60", e.End)
		}
	}
}

func TestSolveRelaxedInfeasibleReported(t *testing.T) {
	rp := relaxedFixture(t)
	// 80 existing + 50 current = 130 > 100: infeasible even modified.
	if _, err := core.SolveRelaxed(rp, core.RelaxedOptions{}); err == nil {
		t.Fatal("overfull system accepted")
	}
}

func TestSolveRelaxedCostOrdering(t *testing.T) {
	// Two existing applications with different costs; modifying either
	// one frees enough room. The cheaper one must be chosen.
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2) // round 20
	// Each existing application occupies the head of one node; the
	// current application needs to start at t=0 somewhere (deadline 60),
	// so exactly one of them must make way — either works.
	ga := b.App("exp").Graph("G1", 100, 100)
	ga.Proc("A", map[model.NodeID]tm.Time{n0: 40})
	gc := b.App("cheap").Graph("G2", 100, 100)
	gc.Proc("C", map[model.NodeID]tm.Time{n1: 40})
	gb := b.App("current").Graph("G3", 100, 60)
	gb.Proc("B", map[model.NodeID]tm.Time{n0: 60, n1: 60})
	sys := b.MustSystem()

	prof := future.PaperProfile(100, 10, 2)
	prof.WCET = []future.Bin{{Size: 10, Prob: 1}}
	rp := &core.RelaxedProblem{
		Sys:  sys,
		Base: mustMapExisting(t, sys, sys.Apps[:2]),
		Existing: []core.ExistingApp{
			{App: sys.Apps[0], Cost: 50},
			{App: sys.Apps[1], Cost: 3},
		},
		Current: sys.Apps[2],
		Profile: prof,
		Weights: metrics.DefaultWeights(prof),
	}
	sol, err := core.SolveRelaxed(rp, core.RelaxedOptions{})
	if err != nil {
		t.Fatalf("SolveRelaxed: %v", err)
	}
	// The empty subset fails (no node is free at t=0); {cheap} (cost 3)
	// is tried before {exp} (cost 50) and succeeds, so the solver must
	// modify only the cheap application.
	if sol.Cost != 3 || len(sol.Modified) != 1 || sol.Modified[0] != sys.Apps[1].ID {
		t.Errorf("modified %v at cost %v; want the cheap application only", sol.Modified, sol.Cost)
	}
	apps := []*model.Application{sys.Apps[0], sys.Apps[1], sys.Apps[2]}
	if vs := sim.Check(sol.State, apps...); len(vs) != 0 {
		t.Fatalf("relaxed schedule invalid: %v", vs[0])
	}
}
