package core_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"incdes/internal/core"
	"incdes/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace files")

// solveTraced runs Solve with a collecting tracer attached.
func solveTraced(t *testing.T, p *core.Problem, strat core.Strategy, par int) (*core.Solution, []obs.TraceEvent) {
	t.Helper()
	var col obs.Collector
	sol, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    strat,
		Parallelism: par,
		Observer:    &obs.Observer{Tracer: &col},
	})
	if err != nil {
		t.Fatalf("Solve(%s): %v", strat.Name(), err)
	}
	return sol, col.Events()
}

// TestTraceDeterministicAcrossParallelism pins the trace-layer analogue
// of the engine's determinism guarantee: the decision-event stream —
// not just the solution — is identical whether candidates are evaluated
// by one worker or four, because events are only emitted from
// deterministic serialization points.
func TestTraceDeterministicAcrossParallelism(t *testing.T) {
	p := testProblem(t, 11, 40, 20)
	cases := []struct {
		name  string
		strat core.Strategy
	}{
		{"MH", core.MH},
		{"SA", core.SAWith(core.SAOptions{Seed: 5, Iterations: 400, Restarts: 4})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s1, e1 := solveTraced(t, p, tc.strat, 1)
			s4, e4 := solveTraced(t, p, tc.strat, 4)
			sameDesign(t, tc.name, s1, s4)
			if len(e1) == 0 {
				t.Fatal("no trace events recorded")
			}
			if !reflect.DeepEqual(e1, e4) {
				n := len(e1)
				if len(e4) < n {
					n = len(e4)
				}
				for i := 0; i < n; i++ {
					if !reflect.DeepEqual(e1[i], e4[i]) {
						t.Fatalf("event %d differs across parallelism:\n  par1 %+v\n  par4 %+v", i, e1[i], e4[i])
					}
				}
				t.Fatalf("event counts differ: %d (par 1) vs %d (par 4)", len(e1), len(e4))
			}
		})
	}
}

// TestTraceReplaysFinalCost checks the trace stands on its own: the
// recorded final cost equals the solver's reported objective, and the
// cost curve ends on it.
func TestTraceReplaysFinalCost(t *testing.T) {
	p := testProblem(t, 11, 40, 20)
	for _, strat := range []core.Strategy{core.AH, core.MH,
		core.SAWith(core.SAOptions{Seed: 3, Iterations: 300})} {
		sol, events := solveTraced(t, p, strat, 2)
		final, ok := obs.FinalCost(events)
		if !ok {
			t.Fatalf("%s: trace has no solve.done event", strat.Name())
		}
		if final != sol.Report.Objective {
			t.Errorf("%s: trace replays to %v, solver reported %v", strat.Name(), final, sol.Report.Objective)
		}
		curve := obs.CostCurve(events)
		if len(curve) == 0 {
			t.Fatalf("%s: empty cost curve", strat.Name())
		}
		if last := curve[len(curve)-1]; last != sol.Report.Objective {
			t.Errorf("%s: cost curve ends at %v, want %v", strat.Name(), last, sol.Report.Objective)
		}
	}
}

// TestGoldenTrace locks the serialized trace format and the emission
// order: an MH run on a fixed problem must reproduce the checked-in
// JSONL byte for byte. Regenerate with: go test ./internal/core -run
// TestGoldenTrace -update-golden
func TestGoldenTrace(t *testing.T) {
	p := testProblem(t, 7, 30, 12)
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	sol, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    core.MHWith(core.MHOptions{MaxIterations: 6}),
		Parallelism: 2,
		Observer:    &obs.Observer{Tracer: w},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_mh.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverges from %s\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}

	// The golden trace must also replay: its final cost is the objective.
	events, err := obs.ReadTrace(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if final, ok := obs.FinalCost(events); !ok || final != sol.Report.Objective {
		t.Errorf("golden trace replays to %v/%v, solver reported %v", final, ok, sol.Report.Objective)
	}
}

// TestObserverNeutral verifies attaching the full observability layer
// changes nothing about the computed design, and that the registry
// actually saw the run.
func TestObserverNeutral(t *testing.T) {
	p := testProblem(t, 19, 40, 20)
	plain := runSolve(t, p, core.Options{Strategy: core.MH, Parallelism: 2})

	reg := obs.NewRegistry()
	var col obs.Collector
	observed, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    core.MH,
		Parallelism: 2,
		Observer:    &obs.Observer{Stats: reg, Tracer: &col},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameDesign(t, "observed vs plain", plain, observed)

	snap := reg.Snapshot()
	for _, name := range []string{obs.CtrEvaluations, obs.CtrCacheMisses,
		obs.CtrMHIterations, obs.CtrSchedCalls, obs.CtrTTPReserve} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s stayed zero over an MH run", name)
		}
	}
	if snap.Counters[obs.CtrEvaluations] != int64(observed.Evaluations) {
		t.Errorf("registry evaluations %d, solution reports %d",
			snap.Counters[obs.CtrEvaluations], observed.Evaluations)
	}
	if snap.Gauges[obs.GagTTPCapBytes] == 0 {
		t.Error("TTP capacity gauge not set")
	}
}
