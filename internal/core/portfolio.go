package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"

	"incdes/internal/obs"
)

// PortfolioOptions configure the strategy-portfolio racer.
type PortfolioOptions struct {
	// Lanes are the strategies to race, in priority order: ties on the
	// objective go to the lowest lane index. nil selects [AH, MH, SA].
	Lanes []Strategy
}

// PortfolioWith returns a strategy that races opts.Lanes concurrently
// under the Solve call's context and returns the winner.
//
// Determinism rule: the winner is the error-free lane with the lowest
// (objective, lane index) — so for a fixed problem and options the
// returned solution is byte-identical across runs and parallelism
// levels, exactly like the individual strategies (cancellation timing
// excepted). Losers are NOT cancelled on first completion: whether a
// still-running lane could have won is unknowable, so racing-to-cancel
// would make the result depend on scheduling. Lanes are cancelled early
// only when it is provably safe:
//
//   - a lane fails with a non-context error — the race cannot return a
//     solution anyway (lane errors are deterministic, so every run
//     fails identically), and Run reports the lowest-index such error;
//   - the zero-objective shortcut: when lanes 0..z have all run to
//     natural completion and lane z's objective is 0, no lane above z
//     can beat the (objective, index) tie-break, so the rest are
//     cancelled without affecting the result;
//   - the caller's context expires — every unfinished lane winds down
//     to its best-so-far (marked Interrupted) and the best at deadline
//     wins.
//
// The winning lane's Solution is returned as-is: Strategy carries the
// winner's own tag ("AH", "MH", "SA"), and Evaluations/CacheHits count
// the winner's lane only, so the result is byte-identical to a direct
// Solve of the winning strategy. Aggregate cross-lane work remains
// visible in the observer's counters (core.evaluations sums all lanes;
// core.portfolio.* record the race itself), and with tracing on each
// lane's full event stream is replayed in lane order followed by a
// portfolio.lane summary per lane and the final decision event.
func PortfolioWith(opts PortfolioOptions) Strategy { return portfolioStrategy{opts: opts} }

type portfolioStrategy struct{ opts PortfolioOptions }

func (portfolioStrategy) Name() string { return "portfolio" }

// laneResult is one lane's outcome plus its buffered trace.
type laneResult struct {
	sol    *Solution
	err    error
	evals  int64
	hits   int64
	events []obs.TraceEvent
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s portfolioStrategy) Run(ctx context.Context, eng *Engine) (*Solution, error) {
	lanes := s.opts.Lanes
	if len(lanes) == 0 {
		lanes = []Strategy{AH, MH, SA}
	}
	reg := eng.Stats()
	reg.Counter(obs.CtrPortfolioRaces).Inc()

	raceCtx, cancelRace := context.WithCancel(ctx)
	defer cancelRace()
	cancels := make([]context.CancelFunc, len(lanes))
	laneCtxs := make([]context.Context, len(lanes))
	// Lane spans are opened here, in the sequential pre-launch loop, so
	// their IDs and order are deterministic regardless of how the lane
	// goroutines interleave; only End (the duration) happens in the lane.
	laneSpans := make([]*obs.Span, len(lanes))
	for i := range lanes {
		laneCtxs[i], cancels[i] = context.WithCancel(raceCtx)
		defer cancels[i]()
		_, laneSpans[i] = obs.StartSpan(ctx, "portfolio.lane")
		laneSpans[i].SetAttr("lane", strconv.Itoa(i))
		laneSpans[i].SetAttr("strategy", lanes[i].Name())
	}

	results := make([]laneResult, len(lanes))
	// natural marks lanes that ran to completion uninterrupted; the
	// zero-objective shortcut below needs to know the completed prefix.
	natural := make([]bool, len(lanes))
	shortcutCancelled := 0
	var mu sync.Mutex

	// Lane engines are independent, so a caller Progress callback would
	// otherwise be entered concurrently; re-serialize it across lanes to
	// keep the Options.Progress contract.
	var progressMu sync.Mutex

	var wg sync.WaitGroup
	for i := range lanes {
		wg.Add(1)
		go func(i int, lane Strategy) {
			defer wg.Done()
			laneOpts := eng.opts
			laneOpts.Strategy = lane
			// Share the outer engine's baseline: the frozen base is one
			// and the same for every lane, and Baseline is read-only.
			laneOpts.Baseline = eng.baseline
			var col *obs.Collector
			if eng.observer != nil {
				if eng.Tracing() {
					col = &obs.Collector{}
				}
				laneOpts.Observer = &obs.Observer{Stats: eng.observer.Stats, Tracer: nil}
				if col != nil {
					laneOpts.Observer.Tracer = col
				}
			}
			if prog := laneOpts.Progress; prog != nil {
				laneOpts.Progress = func(ev Event) {
					progressMu.Lock()
					prog(ev)
					progressMu.Unlock()
				}
			}
			laneEng := newEngine(eng.p, laneOpts)
			var sol *Solution
			var err error
			runLane := func(ctx context.Context) { sol, err = lane.Run(ctx, laneEng) }
			if eng.observer != nil {
				pprof.Do(laneCtxs[i], pprof.Labels("incdes.lane", strconv.Itoa(i)), runLane)
			} else {
				runLane(laneCtxs[i])
			}
			laneSpans[i].End()
			if sol != nil {
				// Lanes bypass Solve, so fill the counters Solve would have.
				sol.Evaluations = int(laneEng.Evaluations())
				sol.CacheHits = int(laneEng.CacheHits())
			}
			r := laneResult{sol: sol, err: err, evals: laneEng.Evaluations(), hits: laneEng.CacheHits()}
			if col != nil {
				r.events = col.Events()
			}

			mu.Lock()
			results[i] = r
			switch {
			case err != nil && !isCtxErr(err):
				// Deterministic lane failure: no run of this race can
				// produce a solution, so stop burning the other lanes.
				cancelRace()
			case err == nil && sol != nil && !sol.Interrupted:
				natural[i] = true
				reg.Counter(obs.CtrPortfolioLaneDone).Inc()
				reg.Counter(fmt.Sprintf("core.portfolio.lane%d_evals", i)).Add(r.evals)
				// Zero-objective shortcut: if the leading naturally-completed
				// prefix contains an objective-0 lane, no later lane can win
				// the (objective, index) tie-break.
				for z := 0; z < len(lanes) && natural[z]; z++ {
					if results[z].sol.Objective() == 0 {
						for j := z + 1; j < len(lanes); j++ {
							if results[j].sol == nil && results[j].err == nil {
								shortcutCancelled++
							}
							cancels[j]()
						}
						break
					}
				}
			}
			mu.Unlock()
		}(i, lanes[i])
	}
	wg.Wait()

	reg.Counter(obs.CtrPortfolioCancelled).Add(int64(shortcutCancelled))

	// Lowest-index deterministic error wins over any solution: lane
	// errors are pure functions of the problem, so every run of the race
	// observes the same set of them.
	for i, r := range results {
		if r.err != nil && !isCtxErr(r.err) {
			return nil, fmt.Errorf("core: portfolio lane %d (%s): %w", i, lanes[i].Name(), r.err)
		}
	}

	winner := -1
	for i, r := range results {
		if r.err != nil || r.sol == nil {
			continue
		}
		if winner < 0 || r.sol.Objective() < results[winner].sol.Objective() {
			winner = i
		}
	}
	if winner < 0 {
		// Every lane was cancelled before finding a feasible design.
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
		}
		return nil, ctx.Err()
	}

	if eng.Tracing() {
		for i, r := range results {
			for _, ev := range r.events {
				ev.Seq = 0 // the outer sink reassigns arrival order
				eng.Trace(ev)
			}
			lane := obs.TraceEvent{
				Kind:        "portfolio.lane",
				Strategy:    lanes[i].Name(),
				Chain:       i,
				Evaluations: r.evals,
				Feasible:    r.err == nil && r.sol != nil,
			}
			if r.sol != nil {
				lane.Cost = r.sol.Objective()
			}
			eng.Trace(lane)
		}
	}

	win := results[winner].sol
	reg.Gauge(obs.GagPortfolioWinner).Set(int64(winner))
	// The outer Solve reports the engine's counters; make them the
	// winning lane's so the returned Solution is byte-identical to a
	// direct solve of the winner (aggregate work stays in the registry).
	eng.evals.Store(results[winner].evals)
	eng.hits.Store(results[winner].hits)
	eng.Trace(obs.TraceEvent{
		Kind:     "decision",
		Strategy: "portfolio",
		Chain:    winner,
		Cost:     win.Objective(),
	})
	return win, nil
}
