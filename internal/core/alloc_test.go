package core

import (
	"testing"

	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
)

// allocTestProblem builds the smallest problem worth measuring by hand
// (this file is an internal test, so it cannot use internal/gen without
// creating an import cycle): two nodes, one frozen application already
// on the bus, and a two-process current application to map.
func allocTestProblem(t *testing.T) *Problem {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("n0")
	n1 := b.Node("n1")
	b.Bus([]model.NodeID{n0, n1}, []int{16, 16}, 1, 2)

	e := b.App("existing").Graph("GE", 200, 200)
	e1 := e.UniformProc("E1", 20)
	e2 := e.UniformProc("E2", 20)
	e.Msg(e1, e2, 4)

	c := b.App("current").Graph("GC", 200, 200)
	c1 := c.UniformProc("C1", 15)
	c2 := c.UniformProc("C2", 15)
	c.Msg(c1, c2, 4)

	sys := b.MustSystem()
	base, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.MapApp(sys.Apps[0], sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	prof := &future.Profile{
		Tmin:       100,
		TNeed:      10,
		BNeedBytes: 8,
		WCET:       []future.Bin{{Size: 10, Prob: 1}},
		MsgBytes:   []future.Bin{{Size: 4, Prob: 1}},
	}
	p, err := NewProblem(sys, base, sys.Apps[1], prof, metrics.DefaultWeights(prof))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// measureEvaluateAllocs warms the memo with one design and reports the
// steady-state allocations of re-evaluating it (the strategy inner loop
// re-visits designs constantly, so the memo-hit path is the hot path).
func measureEvaluateAllocs(t *testing.T, observer *obs.Observer) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	p := allocTestProblem(t)
	eng := newEngine(p, Options{Parallelism: 1, Observer: observer})
	mapping, _, err := p.initial(sched.Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Evaluate(mapping, sched.Hints{}); !ok {
		t.Fatal("warm-up evaluation infeasible")
	}
	return testing.AllocsPerRun(100, func() {
		eng.Evaluate(mapping, sched.Hints{})
	})
}

// TestEvaluateHitPathZeroAllocs pins the "free when off" contract: with
// no observer attached, a memo-hit evaluation allocates nothing.
func TestEvaluateHitPathZeroAllocs(t *testing.T) {
	if allocs := measureEvaluateAllocs(t, nil); allocs != 0 {
		t.Fatalf("memo-hit Evaluate allocates %.1f objects/op without observer, want 0", allocs)
	}
}

// TestEvaluateHitPathZeroAllocsObserved goes further than the contract
// requires: even with a stats registry attached, the hit path stays
// allocation-free, because instruments are resolved once at engine
// construction and counter bumps are plain atomics.
func TestEvaluateHitPathZeroAllocsObserved(t *testing.T) {
	observer := &obs.Observer{Stats: obs.NewRegistry()}
	if allocs := measureEvaluateAllocs(t, observer); allocs != 0 {
		t.Fatalf("memo-hit Evaluate allocates %.1f objects/op with stats registry, want 0", allocs)
	}
}

// measureMissAllocs reports the steady-state allocations of a memo-miss
// evaluation (cache disabled, so every call reschedules and rescores)
// under the given evaluation path.
func measureMissAllocs(t *testing.T, mode IncrementalMode) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; run without -race")
	}
	p := allocTestProblem(t)
	eng := newEngine(p, Options{Parallelism: 1, CacheSize: -1, Incremental: mode})
	mapping, _, err := p.initial(sched.Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Evaluate(mapping, sched.Hints{}); !ok {
		t.Fatal("warm-up evaluation infeasible")
	}
	return testing.AllocsPerRun(200, func() {
		eng.Evaluate(mapping, sched.Hints{})
	})
}

// TestEvaluateMissPathIncrementalAllocs pins the transactional
// refactor's payoff where it was promised: a memo-miss candidate
// evaluation on the incremental path allocates at most half of what the
// clone-and-rebuild path does (in practice far less — the rebuild path
// pays a fresh metrics evaluation per candidate, the transactional path
// reuses the evaluator's scratch).
func TestEvaluateMissPathIncrementalAllocs(t *testing.T) {
	inc := measureMissAllocs(t, IncrementalOn)
	full := measureMissAllocs(t, IncrementalOff)
	t.Logf("miss-path allocations per evaluation: incremental %.1f, rebuild %.1f", inc, full)
	if inc > full/2 {
		t.Fatalf("incremental miss path allocates %.1f objects/op vs %.1f rebuilding; want at least a 2x reduction", inc, full)
	}
}
