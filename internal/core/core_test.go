package core_test

import (
	"errors"
	"incdes/internal/core"
	"reflect"
	"testing"

	"incdes/internal/future"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/sim"
	"incdes/internal/tm"
)

// testProblem builds a small generated incremental-design instance.
func testProblem(t *testing.T, seed int64, existing, current int) *core.Problem {
	t.Helper()
	cfg := gen.Default()
	cfg.Nodes = 5
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 12
	tc, err := gen.MakeTestCase(cfg, seed, existing, current)
	if err != nil {
		t.Fatalf("MakeTestCase: %v", err)
	}
	p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile, metrics.DefaultWeights(tc.Profile))
	if err != nil {
		t.Fatalf("core.NewProblem: %v", err)
	}
	return p
}

func allApps(p *core.Problem) []*model.Application { return p.Sys.Apps }

func TestAdHocProducesValidSchedule(t *testing.T) {
	p := testProblem(t, 1, 50, 25)
	sol, err := core.AdHoc(p)
	if err != nil {
		t.Fatalf("core.AdHoc: %v", err)
	}
	if sol.Strategy != "AH" || sol.Evaluations != 1 {
		t.Errorf("solution meta = %q/%d", sol.Strategy, sol.Evaluations)
	}
	if vs := sim.Check(sol.State, allApps(p)...); len(vs) != 0 {
		t.Fatalf("AH schedule invalid: %v", vs[0])
	}
	if sol.Report.Objective < 0 {
		t.Errorf("objective = %v", sol.Report.Objective)
	}
}

func TestExistingApplicationsUntouched(t *testing.T) {
	p := testProblem(t, 2, 50, 25)
	baseEntries := append([]sched.ProcEntry(nil), p.Base.ProcEntries()...)
	baseMsgs := append([]sched.MsgEntry(nil), p.Base.MsgEntries()...)

	for name, run := range map[string]func() (*core.Solution, error){
		"AH": func() (*core.Solution, error) { return core.AdHoc(p) },
		"MH": func() (*core.Solution, error) { return core.MappingHeuristic(p, core.MHOptions{MaxIterations: 3}) },
		"SA": func() (*core.Solution, error) { return core.Anneal(p, core.SAOptions{Iterations: 100}) },
	} {
		sol, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := sol.State.ProcEntries()[:len(baseEntries)]
		if !reflect.DeepEqual(got, baseEntries) {
			t.Errorf("%s modified existing process entries", name)
		}
		gotMsgs := sol.State.MsgEntries()[:len(baseMsgs)]
		if !reflect.DeepEqual(gotMsgs, baseMsgs) {
			t.Errorf("%s modified existing message entries", name)
		}
		// And the original base state itself must be untouched.
		if !reflect.DeepEqual(p.Base.ProcEntries(), baseEntries) {
			t.Fatalf("%s mutated the frozen base state", name)
		}
	}
}

func TestMappingHeuristicImprovesObjective(t *testing.T) {
	improved := 0
	for seed := int64(1); seed <= 5; seed++ {
		p := testProblem(t, seed*100, 60, 30)
		ah, err := core.AdHoc(p)
		if err != nil {
			t.Fatalf("seed %d AH: %v", seed, err)
		}
		mh, err := core.MappingHeuristic(p, core.MHOptions{})
		if err != nil {
			t.Fatalf("seed %d MH: %v", seed, err)
		}
		if mh.Report.Objective > ah.Report.Objective+1e-9 {
			t.Errorf("seed %d: MH objective %v worse than AH %v",
				seed, mh.Report.Objective, ah.Report.Objective)
		}
		if mh.Report.Objective < ah.Report.Objective-1e-9 {
			improved++
		}
		if vs := sim.Check(mh.State, allApps(p)...); len(vs) != 0 {
			t.Fatalf("seed %d: MH schedule invalid: %v", seed, vs[0])
		}
		if mh.Evaluations <= 1 {
			t.Errorf("seed %d: MH examined only %d alternatives", seed, mh.Evaluations)
		}
	}
	if improved == 0 {
		t.Error("MH never improved on AH across 5 seeds; heuristic appears inert")
	}
}

func TestAnnealImprovesObjective(t *testing.T) {
	p := testProblem(t, 7, 60, 30)
	ah, err := core.AdHoc(p)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := core.Anneal(p, core.SAOptions{Iterations: 400, Seed: 3})
	if err != nil {
		t.Fatalf("core.Anneal: %v", err)
	}
	if sa.Report.Objective > ah.Report.Objective+1e-9 {
		t.Errorf("SA objective %v worse than its own starting point %v",
			sa.Report.Objective, ah.Report.Objective)
	}
	if vs := sim.Check(sa.State, allApps(p)...); len(vs) != 0 {
		t.Fatalf("SA schedule invalid: %v", vs[0])
	}
	if sa.Evaluations != 401 {
		t.Errorf("SA evaluations = %d, want 401", sa.Evaluations)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	p := testProblem(t, 8, 40, 20)
	a, err := core.Anneal(p, core.SAOptions{Iterations: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Anneal(p, core.SAOptions{Iterations: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Objective != b.Report.Objective {
		t.Errorf("same seed, different objectives: %v vs %v", a.Report.Objective, b.Report.Objective)
	}
}

func TestMHOptionsAblations(t *testing.T) {
	p := testProblem(t, 9, 40, 20)
	noMsg, err := core.MappingHeuristic(p, core.MHOptions{DisableMsgMoves: true, MaxIterations: 5})
	if err != nil {
		t.Fatalf("MH without message moves: %v", err)
	}
	random, err := core.MappingHeuristic(p, core.MHOptions{RandomCandidates: true, MaxIterations: 5})
	if err != nil {
		t.Fatalf("MH with random candidates: %v", err)
	}
	for _, sol := range []*core.Solution{noMsg, random} {
		if vs := sim.Check(sol.State, allApps(p)...); len(vs) != 0 {
			t.Fatalf("ablated MH invalid: %v", vs[0])
		}
	}
}

func TestNewProblemValidation(t *testing.T) {
	p := testProblem(t, 10, 40, 20)

	// Current app not in the system.
	stranger := &model.Application{ID: 999, Name: "stranger",
		Graphs: []*model.Graph{{ID: 999, Period: 100, Deadline: 100,
			Procs: []*model.Process{{ID: 9999, WCET: map[model.NodeID]tm.Time{0: 10}}}}}}
	if _, err := core.NewProblem(p.Sys, p.Base, stranger, p.Profile, p.Weights); err == nil {
		t.Error("foreign application accepted")
	}

	// Current app already scheduled in base.
	st := p.Base.Clone()
	if _, err := st.MapApp(p.Current, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewProblem(p.Sys, st, p.Current, p.Profile, p.Weights); err == nil {
		t.Error("already-scheduled current application accepted")
	}

	// Invalid profile.
	bad := *p.Profile
	bad.Tmin = 0
	if _, err := core.NewProblem(p.Sys, p.Base, p.Current, &bad, p.Weights); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestUnschedulableCurrentReported(t *testing.T) {
	// Build a system where the current application cannot fit.
	b := model.NewBuilder()
	n0 := b.Node("N0")
	b.Bus([]model.NodeID{n0}, []int{8}, 1, 2)
	ga := b.App("existing").Graph("G1", 100, 100)
	pa := ga.Proc("A", map[model.NodeID]tm.Time{n0: 80})
	gb := b.App("current").Graph("G2", 100, 100)
	gb.Proc("B", map[model.NodeID]tm.Time{n0: 50})
	sys := b.MustSystem()
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{pa: n0}, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(sys, st, sys.Apps[1],
		future.PaperProfile(100, 10, 4), metrics.Weights{W1P: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AdHoc(p); !errors.Is(err, core.ErrUnschedulable) {
		t.Errorf("core.AdHoc error = %v, want core.ErrUnschedulable", err)
	}
	if _, err := core.MappingHeuristic(p, core.MHOptions{}); !errors.Is(err, core.ErrUnschedulable) {
		t.Errorf("MH error = %v, want core.ErrUnschedulable", err)
	}
	if _, err := core.Anneal(p, core.SAOptions{Iterations: 10}); !errors.Is(err, core.ErrUnschedulable) {
		t.Errorf("SA error = %v, want core.ErrUnschedulable", err)
	}
}
