package core_test

import (
	"context"
	"encoding/hex"
	"errors"
	"reflect"
	"strings"
	"testing"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/obs"
)

// hardProblem is testProblem with a future profile no mapping can fully
// satisfy, so every lane finishes with a nonzero objective and the
// portfolio's zero-objective shortcut never fires. Counter tests need
// that: the shortcut cancels trailing lanes, which would make the
// lane-done count depend on scheduling.
func hardProblem(t *testing.T, seed int64, existing, current int) *core.Problem {
	t.Helper()
	cfg := gen.Default()
	cfg.Nodes = 5
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 12
	tc, err := gen.MakeTestCase(cfg, seed, existing, current)
	if err != nil {
		t.Fatalf("MakeTestCase: %v", err)
	}
	prof := *tc.Profile
	prof.TNeed = prof.Tmin * 9 / 10 // nearly saturate every window
	prof.BNeedBytes *= 50
	p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, &prof, metrics.DefaultWeights(&prof))
	if err != nil {
		t.Fatalf("core.NewProblem: %v", err)
	}
	return p
}

// stateFP is the schedule's composite fingerprint, the byte-identity
// witness used across the determinism tests.
func stateFP(t *testing.T, sol *core.Solution) string {
	t.Helper()
	if sol == nil || sol.State == nil {
		t.Fatal("solution has no state")
	}
	sum := sol.State.Fingerprint()
	return hex.EncodeToString(sum[:])
}

// solutionIdentity is everything in a Solution that must be a pure
// function of (problem, options) — wall-clock Elapsed excluded.
type solutionIdentity struct {
	Strategy    string
	Evaluations int
	CacheHits   int
	Interrupted bool
	Objective   float64
	StateFP     string
}

func identity(t *testing.T, sol *core.Solution) solutionIdentity {
	t.Helper()
	return solutionIdentity{
		Strategy:    sol.Strategy,
		Evaluations: sol.Evaluations,
		CacheHits:   sol.CacheHits,
		Interrupted: sol.Interrupted,
		Objective:   sol.Report.Objective,
		StateFP:     stateFP(t, sol),
	}
}

// TestPortfolioMatchesDirectSolveOfWinner pins the differential
// contract: the portfolio's result is byte-identical to a direct
// uncached Solve of whichever lane wins the (objective, index)
// tie-break.
func TestPortfolioMatchesDirectSolveOfWinner(t *testing.T) {
	p := testProblem(t, 11, 40, 20)
	sa := core.SAWith(core.SAOptions{Iterations: 400, Seed: 1})
	lanes := []core.Strategy{core.AH, core.MH, sa}

	var winner *core.Solution
	for _, lane := range lanes {
		sol, err := core.Solve(context.Background(), p, core.Options{Strategy: lane, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", lane.Name(), err)
		}
		if winner == nil || sol.Report.Objective < winner.Report.Objective {
			winner = sol
		}
	}

	port, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    core.PortfolioWith(core.PortfolioOptions{Lanes: lanes}),
		Parallelism: 1,
	})
	if err != nil {
		t.Fatalf("portfolio: %v", err)
	}
	if got, want := identity(t, port), identity(t, winner); got != want {
		t.Errorf("portfolio result differs from direct solve of winner:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(port.Report, winner.Report) {
		t.Errorf("portfolio report differs from winner's:\n got %+v\nwant %+v", port.Report, winner.Report)
	}
	if !reflect.DeepEqual(port.Mapping, winner.Mapping) {
		t.Error("portfolio mapping differs from winner's")
	}
}

// TestPortfolioDeterministicAcrossParallelism pins the racer's core
// promise: identical results at evaluation parallelism 1 and 4, and
// across repeated runs.
func TestPortfolioDeterministicAcrossParallelism(t *testing.T) {
	p := testProblem(t, 12, 40, 20)
	strat := core.PortfolioWith(core.PortfolioOptions{Lanes: []core.Strategy{
		core.AH, core.MH, core.SAWith(core.SAOptions{Iterations: 400, Seed: 1}),
	}})
	run := func(parallelism int) solutionIdentity {
		sol, err := core.Solve(context.Background(), p, core.Options{Strategy: strat, Parallelism: parallelism})
		if err != nil {
			t.Fatalf("portfolio at parallelism %d: %v", parallelism, err)
		}
		return identity(t, sol)
	}
	p1, p1b, p4, p4b := run(1), run(1), run(4), run(4)
	if p1 != p1b {
		t.Errorf("two parallelism-1 runs differ:\n%+v\n%+v", p1, p1b)
	}
	if p4 != p4b {
		t.Errorf("two parallelism-4 runs differ:\n%+v\n%+v", p4, p4b)
	}
	if p1 != p4 {
		t.Errorf("parallelism changes the portfolio result:\np1 %+v\np4 %+v", p1, p4)
	}
}

// TestPortfolioObservability pins the race's instrument and trace
// surface: per-lane counters, the winner gauge, and a trace stream that
// replays to the reported objective.
func TestPortfolioObservability(t *testing.T) {
	p := hardProblem(t, 13, 30, 15)
	reg := obs.NewRegistry()
	col := &obs.Collector{}
	sol, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    core.PortfolioWith(core.PortfolioOptions{Lanes: []core.Strategy{core.AH, core.MH}}),
		Parallelism: 1,
		Observer:    &obs.Observer{Stats: reg, Tracer: col},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.CtrPortfolioRaces]; got != 1 {
		t.Errorf("%s = %d, want 1", obs.CtrPortfolioRaces, got)
	}
	if got := snap.Counters[obs.CtrPortfolioLaneDone]; got != 2 {
		t.Errorf("%s = %d, want 2", obs.CtrPortfolioLaneDone, got)
	}
	if got := snap.Counters[obs.CtrSolves]; got != 1 {
		t.Errorf("%s = %d, want 1 (lanes must not nest Solve)", obs.CtrSolves, got)
	}
	// The registry aggregates all lanes; the returned solution counts the
	// winner's lane alone.
	if agg := snap.Counters[obs.CtrEvaluations]; agg < int64(sol.Evaluations) {
		t.Errorf("aggregate evaluations %d < winner's %d", agg, sol.Evaluations)
	}
	winnerLane, ok := snap.Gauges[obs.GagPortfolioWinner]
	if !ok || winnerLane < 0 || winnerLane > 1 {
		t.Errorf("winner gauge = %d, %v", winnerLane, ok)
	}

	events := col.Events()
	var laneSummaries, decisions int
	for _, ev := range events {
		switch ev.Kind {
		case "portfolio.lane":
			laneSummaries++
		case "decision":
			if ev.Strategy == "portfolio" {
				decisions++
				if ev.Chain != int(winnerLane) {
					t.Errorf("decision chain %d != winner gauge %d", ev.Chain, winnerLane)
				}
			}
		}
	}
	if laneSummaries != 2 || decisions != 1 {
		t.Errorf("trace has %d lane summaries and %d decisions, want 2 and 1", laneSummaries, decisions)
	}
	if final, ok := obs.FinalCost(events); !ok || final != sol.Report.Objective {
		t.Errorf("trace replays to %v, solution reports %v", final, sol.Report.Objective)
	}
}

// failingLane is a deterministic lane failure.
type failingLane struct{}

func (failingLane) Name() string { return "boom" }
func (failingLane) Run(context.Context, *core.Engine) (*core.Solution, error) {
	return nil, errors.New("synthetic lane failure")
}

// TestPortfolioLaneErrorIsDeterministic pins the error rule: the
// lowest-index non-context lane error fails the whole race, annotated
// with the lane.
func TestPortfolioLaneErrorIsDeterministic(t *testing.T) {
	p := testProblem(t, 14, 20, 10)
	_, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    core.PortfolioWith(core.PortfolioOptions{Lanes: []core.Strategy{failingLane{}, core.AH}}),
		Parallelism: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "portfolio lane 0 (boom)") {
		t.Fatalf("err = %v, want portfolio lane 0 (boom) annotation", err)
	}
}

// TestPortfolioDefaultLanes pins that the zero-value portfolio races
// AH, MH and SA.
func TestPortfolioDefaultLanes(t *testing.T) {
	p := hardProblem(t, 15, 20, 10)
	reg := obs.NewRegistry()
	sol, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    core.Portfolio,
		Parallelism: 1,
		Observer:    &obs.Observer{Stats: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	switch sol.Strategy {
	case "AH", "MH", "SA":
	default:
		t.Errorf("winner strategy = %q, want one of the default lanes", sol.Strategy)
	}
	if got := reg.Snapshot().Counters[obs.CtrPortfolioLaneDone]; got != 3 {
		t.Errorf("%s = %d, want 3", obs.CtrPortfolioLaneDone, got)
	}
}
