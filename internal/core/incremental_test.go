package core_test

import (
	"context"
	"reflect"
	"testing"

	"incdes/internal/core"
	"incdes/internal/obs"
)

// solveMode runs Solve with an explicit incremental mode and a
// collecting tracer, so equivalence can be checked on the event stream
// as well as on the solution.
func solveMode(t *testing.T, p *core.Problem, strat core.Strategy, par int, mode core.IncrementalMode) (*core.Solution, []obs.TraceEvent) {
	t.Helper()
	var col obs.Collector
	sol, err := core.Solve(context.Background(), p, core.Options{
		Strategy:    strat,
		Parallelism: par,
		Incremental: mode,
		Observer:    &obs.Observer{Tracer: &col},
	})
	if err != nil {
		t.Fatalf("Solve(%s, incremental=%v): %v", strat.Name(), mode, err)
	}
	return sol, col.Events()
}

// TestIncrementalEquivalence is the refactor's acceptance gate: with the
// transactional evaluation path on or off, Solve returns byte-identical
// designs, reports, evaluation counts and decision-event traces — for
// both iterative strategies, serial and parallel.
func TestIncrementalEquivalence(t *testing.T) {
	p := testProblem(t, 21, 50, 25)
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"MH", core.MHWith(core.MHOptions{MaxIterations: 8})},
		{"SA", core.SAWith(core.SAOptions{Seed: 3, Iterations: 400, Restarts: 3})},
	}
	for _, s := range strategies {
		t.Run(s.name, func(t *testing.T) {
			for _, par := range []int{1, 4} {
				on, evOn := solveMode(t, p, s.strat, par, core.IncrementalOn)
				off, evOff := solveMode(t, p, s.strat, par, core.IncrementalOff)
				sameDesign(t, s.name, on, off)
				if len(evOn) == 0 {
					t.Fatal("no trace events recorded")
				}
				if !reflect.DeepEqual(evOn, evOff) {
					n := min(len(evOn), len(evOff))
					for i := 0; i < n; i++ {
						if !reflect.DeepEqual(evOn[i], evOff[i]) {
							t.Fatalf("par %d: event %d differs between incremental modes:\n  on  %+v\n  off %+v",
								par, i, evOn[i], evOff[i])
						}
					}
					t.Fatalf("par %d: event counts differ: %d (on) vs %d (off)", par, len(evOn), len(evOff))
				}
			}
		})
	}
}

// TestIncrementalDefaultOn pins that the zero Options value and
// DefaultOptions both select the transactional path: IncrementalOff is
// the explicit escape hatch, not the default.
func TestIncrementalDefaultOn(t *testing.T) {
	if core.DefaultOptions().Incremental != core.IncrementalOn {
		t.Errorf("DefaultOptions().Incremental = %v, want IncrementalOn", core.DefaultOptions().Incremental)
	}
	p := testProblem(t, 22, 30, 15)
	reg := obs.NewRegistry()
	runSolve(t, p, core.Options{
		Strategy: core.MHWith(core.MHOptions{MaxIterations: 4}),
		Observer: &obs.Observer{Stats: reg},
	})
	if reg.Snapshot().Counters[obs.CtrTxnApplies] == 0 {
		t.Error("zero-valued Incremental option did not take the transactional path")
	}
}

// TestIncrementalCounters checks the core.txn_* instruments: the
// transactional path accounts every transaction (each one rolled back),
// splits evaluations into incremental and full-recompute, and records
// dirty-interval volume; the rebuild path leaves all of them at zero.
func TestIncrementalCounters(t *testing.T) {
	// Current app smaller than the node count: candidates routinely leave
	// timelines clean, so both the incremental and the full-recompute
	// classifications occur.
	p := testProblem(t, 23, 50, 8)
	strat := core.SAWith(core.SAOptions{Seed: 9, Iterations: 300})

	reg := obs.NewRegistry()
	runSolve(t, p, core.Options{
		Strategy:    strat,
		Incremental: core.IncrementalOn,
		Observer:    &obs.Observer{Stats: reg},
	})
	c := reg.Snapshot().Counters
	if c[obs.CtrTxnApplies] == 0 {
		t.Fatal("txn_applies = 0 on the incremental path")
	}
	if c[obs.CtrTxnApplies] != c[obs.CtrTxnRollbacks] {
		t.Errorf("every transaction is rolled back: applies %d != rollbacks %d",
			c[obs.CtrTxnApplies], c[obs.CtrTxnRollbacks])
	}
	evals := c[obs.CtrTxnIncremental] + c[obs.CtrTxnFull] + c[obs.CtrInfeasible]
	if evals != c[obs.CtrTxnApplies] {
		t.Errorf("incremental %d + full %d + infeasible %d != applies %d",
			c[obs.CtrTxnIncremental], c[obs.CtrTxnFull], c[obs.CtrInfeasible], c[obs.CtrTxnApplies])
	}
	if c[obs.CtrTxnIncremental] == 0 {
		t.Error("no evaluation took the incremental path")
	}
	if c[obs.CtrTxnDirty] == 0 {
		t.Error("txn_dirty_intervals = 0 despite applied transactions")
	}

	reg = obs.NewRegistry()
	runSolve(t, p, core.Options{
		Strategy:    strat,
		Incremental: core.IncrementalOff,
		Observer:    &obs.Observer{Stats: reg},
	})
	c = reg.Snapshot().Counters
	for _, name := range []string{obs.CtrTxnApplies, obs.CtrTxnRollbacks, obs.CtrTxnDirty, obs.CtrTxnIncremental, obs.CtrTxnFull} {
		if c[name] != 0 {
			t.Errorf("%s = %d with the transactional path disabled, want 0", name, c[name])
		}
	}
}
