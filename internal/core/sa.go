package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// SAOptions tune the simulated annealing reference strategy. Seed is
// used exactly as given — 0 is a valid seed (the pre-redesign Anneal
// entry point silently rewrote 0 to 1 and still does, for
// compatibility); the remaining zero values select the documented
// defaults below.
type SAOptions struct {
	// Seed drives the annealer's random walk. Restart chain 0 uses Seed
	// verbatim; chain k derives its independent stream from (Seed, k),
	// so results are reproducible at any parallelism.
	Seed int64
	// Iterations is the number of evaluated neighbors per restart chain.
	// 0 auto-sizes with the application: 60 per process, at least 3000 —
	// enough to serve as the near-optimal reference the deviations in
	// the paper's first experiment are measured against.
	Iterations int
	// Restarts is the number of independent annealing chains; the best
	// chain result wins (ties break toward the lowest chain index). The
	// chains are what Solve fans across workers. 0 means 1.
	Restarts int
	// ChainOffset shifts the global chain index: local chain c derives
	// its RNG stream from chain index ChainOffset+c. A cluster
	// coordinator uses this to run a slice of a larger restart fan on a
	// remote worker — Restarts=1, ChainOffset=k reproduces exactly chain
	// k of a local Restarts=n run. ChainOffset does not participate in
	// iteration auto-sizing or cooling; it only selects RNG streams.
	ChainOffset int
	// InitialTemp is the starting temperature in objective units (0
	// selects 40: early on, moves ~40 objective points uphill are
	// frequently accepted).
	InitialTemp float64
	// FinalTemp ends the geometric cooling (0 selects 0.1).
	FinalTemp float64
}

// DefaultSAOptions returns the paper-shaped annealing configuration:
// seed 1, a single restart chain, auto-sized iterations (the documented
// meaning of 0), and the 40 → 0.1 geometric cooling schedule.
func DefaultSAOptions() SAOptions {
	return SAOptions{
		Seed:        1,
		Iterations:  0, // auto-size: 60 per process, at least 3000
		Restarts:    1,
		InitialTemp: 40,
		FinalTemp:   0.1,
	}
}

// normalized resolves the documented zero-value semantics. Seed is
// deliberately left untouched.
func (o SAOptions) normalized(nProcs int) SAOptions {
	if o.Iterations == 0 {
		o.Iterations = 60 * nProcs
		if o.Iterations < 3000 {
			o.Iterations = 3000
		}
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = 40
	}
	if o.FinalTemp == 0 {
		o.FinalTemp = 0.1
	}
	return o
}

// chainSeed derives the RNG seed of restart chain c. Chain 0 uses the
// caller's seed verbatim so a single-chain run reproduces the
// pre-redesign Anneal walk bit for bit; higher chains get independent
// streams through a splitmix64 finalizer.
func chainSeed(seed int64, c int) int64 {
	if c == 0 {
		return seed
	}
	x := uint64(seed) + uint64(c)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// saStrategy is the SA strategy: simulated annealing over the full design
// space of the current application — remapping processes, moving
// processes between slacks, and moving messages between slot occurrences
// — minimizing the objective C. With default options it is far slower
// than MH and serves as the near-optimal reference. Restart chains run
// concurrently across the engine's workers; every chain is a
// deterministic function of (problem, options, chain index), so the
// reduced result is identical at any parallelism.
type saStrategy struct{ opts SAOptions }

func (saStrategy) Name() string { return "SA" }

// chainResult is the outcome of one restart chain.
type chainResult struct {
	ran         bool
	interrupted bool
	mapping     model.Mapping
	hints       sched.Hints
	report      metrics.Report
	state       *sched.State
	err         error
	// events buffers the chain's trace events; Run flushes the buffers
	// in chain-index order after the parallel fan-out has joined, so the
	// trace is identical at every parallelism level.
	events []obs.TraceEvent
}

// saCounters are the annealing instruments, resolved once per Run and
// shared by every chain (atomic increments from worker goroutines are
// safe; the totals are deterministic because each chain's walk is).
type saCounters struct {
	accepts, rejects, infeasible *obs.Counter
}

func (s saStrategy) Run(ctx context.Context, eng *Engine) (*Solution, error) {
	p := eng.Problem()
	o := s.opts.normalized(p.Current.NumProcs())

	mapping0, st0, err := p.initial(sched.Hints{})
	if err != nil {
		return nil, err
	}
	eng.count(1)
	report0 := metrics.Evaluate(st0, p.Profile, p.Weights)

	// Collect the movable objects once; chains share them read-only.
	ix := model.NewIndex(p.Current)
	var procs []*model.Process
	var msgs []*model.Message
	for _, g := range p.Current.Graphs {
		procs = append(procs, g.Procs...)
		msgs = append(msgs, g.Msgs...)
	}

	reg := eng.Stats()
	ctr := saCounters{
		accepts:    reg.Counter(obs.CtrSAAccepts),
		rejects:    reg.Counter(obs.CtrSARejects),
		infeasible: reg.Counter(obs.CtrSAInfeasible),
	}
	eng.Trace(obs.TraceEvent{Kind: "init", Strategy: "SA", Cost: report0.Objective})

	chains := make([]chainResult, o.Restarts)
	eng.ForEach(ctx, o.Restarts, func(c int) {
		chains[c] = s.runChain(ctx, eng, c, o, ix, procs, msgs, mapping0, report0, st0, ctr)
	})

	// Reduce: best objective wins, ties break toward the lowest chain
	// index — a deterministic order however the chains were scheduled.
	// The chains' buffered trace events flush here, in chain order.
	cChains := reg.Counter(obs.CtrSAChains)
	best := -1
	interrupted := ctx.Err() != nil
	for c := range chains {
		if chains[c].err != nil {
			return nil, chains[c].err
		}
		for _, ev := range chains[c].events {
			eng.Trace(ev)
		}
		if !chains[c].ran {
			continue
		}
		cChains.Inc()
		interrupted = interrupted || chains[c].interrupted
		if best < 0 || chains[c].report.Objective < chains[best].report.Objective {
			best = c
		}
	}
	if best < 0 {
		// Cancelled before any chain started: the initial mapping is the
		// best design seen.
		return &Solution{
			Strategy: "SA", Mapping: mapping0, Hints: sched.Hints{},
			State: st0, Report: report0, Interrupted: true,
		}, nil
	}
	win := chains[best]
	eng.Trace(obs.TraceEvent{Kind: "decision", Strategy: "SA", Chain: best, Cost: win.report.Objective})
	eng.Emit(Event{Strategy: "SA", Chain: best, BestObjective: win.report.Objective})
	return &Solution{
		Strategy:    "SA",
		Mapping:     win.mapping,
		Hints:       win.hints,
		State:       win.state,
		Report:      win.report,
		Interrupted: interrupted,
	}, nil
}

// runChain executes one annealing chain. The walk reproduces the
// pre-redesign serial annealer exactly: one RNG drives both neighbor
// generation and acceptance, the temperature cools geometrically per
// evaluated neighbor, and infeasible neighbors consume an iteration.
func (s saStrategy) runChain(ctx context.Context, eng *Engine, c int, o SAOptions,
	ix *model.Index, procs []*model.Process, msgs []*model.Message,
	mapping0 model.Mapping, report0 metrics.Report, st0 *sched.State,
	ctr saCounters) chainResult {

	p := eng.Problem()
	rng := rand.New(rand.NewSource(chainSeed(o.Seed, o.ChainOffset+c)))

	mapping := mapping0
	hints := sched.Hints{}
	res := chainResult{
		ran:     true,
		mapping: mapping0,
		hints:   sched.Hints{},
		report:  report0,
	}
	improved := false
	tracing := eng.Tracing()

	cur := report0.Objective
	temp := o.InitialTemp
	cooling := math.Pow(o.FinalTemp/o.InitialTemp, 1/float64(o.Iterations))
	var accepts, rejects int64

	for i := 0; i < o.Iterations; i++ {
		if ctx.Err() != nil {
			res.interrupted = true
			break
		}
		nm, nh := neighbor(rng, p, ix, procs, msgs, mapping, hints)
		rep2, ok := eng.Evaluate(nm, nh)
		temp *= cooling
		if !ok {
			ctr.infeasible.Inc()
			continue // infeasible neighbor
		}
		delta := rep2.Objective - cur
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			accepts++
			ctr.accepts.Inc()
			mapping, hints, cur = nm, nh, rep2.Objective
			if rep2.Objective < res.report.Objective {
				res.mapping = nm.Clone()
				res.hints = nh.Clone()
				res.report = rep2
				improved = true
				if tracing {
					res.events = append(res.events, obs.TraceEvent{
						Kind: "sa.best", Chain: c, Iter: i + 1, Cost: rep2.Objective,
					})
				}
			}
		} else {
			rejects++
			ctr.rejects.Inc()
		}
		if (i+1)%1000 == 0 {
			if tracing {
				res.events = append(res.events, obs.TraceEvent{
					Kind: "sa.window", Chain: c, Iter: i + 1,
					Accepts: accepts, Rejects: rejects,
				})
			}
			eng.Emit(Event{Strategy: "SA", Chain: c, Iteration: i + 1, BestObjective: res.report.Objective})
		}
	}

	if !improved {
		res.state = st0
	} else {
		st, rep, err := eng.Materialize(res.mapping, res.hints)
		if err != nil {
			res.err = fmt.Errorf("core: internal: chain %d best failed to re-schedule: %w", c, err)
			return res
		}
		res.state, res.report = st, rep
	}
	if tracing {
		res.events = append(res.events, obs.TraceEvent{
			Kind: "sa.chain", Chain: c, Cost: res.report.Objective,
		})
	}
	return res
}

// Anneal runs a single serial annealing chain.
//
// Deprecated: use Solve(ctx, p, Options{Strategy: SAWith(opts)}). Anneal
// keeps the historical quirk of treating Seed 0 as 1.
func Anneal(p *Problem, opts SAOptions) (*Solution, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	opts.Restarts = 1
	return Solve(context.Background(), p, Options{Strategy: SAWith(opts), Parallelism: 1})
}

// neighbor produces a random design transformation: remap a process
// (40%), move a process to a random slack position (40%), or move a
// message to a random slot occurrence (20%, when there are messages).
func neighbor(rng *rand.Rand, p *Problem, ix *model.Index,
	procs []*model.Process, msgs []*model.Message,
	mapping model.Mapping, hints sched.Hints) (model.Mapping, sched.Hints) {

	kind := rng.Float64()
	if kind < 0.4 || (kind >= 0.8 && len(msgs) == 0) {
		// Remap a random process to a random allowed node, clearing its
		// position hint so the scheduler packs it ASAP on the new node.
		proc := procs[rng.Intn(len(procs))]
		nodes := proc.AllowedNodes()
		nm := mapping.Clone()
		nm[proc.ID] = nodes[rng.Intn(len(nodes))]
		return nm, hints.SetProcStart(proc.ID, 0)
	}
	if kind < 0.8 {
		// Move a random process to a random start offset in its period.
		proc := procs[rng.Intn(len(procs))]
		g := ix.GraphOf[proc.ID]
		wcet := proc.WCET[mapping[proc.ID]]
		span := g.Period - wcet
		if span <= 0 {
			return mapping, hints
		}
		off := tm.Time(rng.Int63n(int64(span)))
		return mapping, hints.SetProcStart(proc.ID, off)
	}
	// Move a random message to a random slot-start offset in its period.
	m := msgs[rng.Intn(len(msgs))]
	g := ix.MsgGraph[m.ID]
	off := tm.Time(rng.Int63n(int64(g.Period)))
	return mapping, hints.SetMsgStart(m.ID, off)
}
