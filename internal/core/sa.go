package core

import (
	"math"
	"math/rand"
	"time"

	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// SAOptions tune the simulated annealing reference strategy.
type SAOptions struct {
	// Seed drives the annealer's random walk (default 1).
	Seed int64
	// Iterations is the total number of evaluated neighbors. The default
	// scales with the application size: 60 per process, at least 3000 —
	// enough to serve as the near-optimal reference the deviations in
	// the paper's first experiment are measured against.
	Iterations int
	// InitialTemp is the starting temperature in objective units
	// (default 40: early on, moves ~40 objective points uphill are
	// frequently accepted).
	InitialTemp float64
	// FinalTemp ends the geometric cooling (default 0.1).
	FinalTemp float64
}

func (o SAOptions) withDefaults(nProcs int) SAOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Iterations == 0 {
		o.Iterations = 60 * nProcs
		if o.Iterations < 3000 {
			o.Iterations = 3000
		}
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = 40
	}
	if o.FinalTemp == 0 {
		o.FinalTemp = 0.1
	}
	return o
}

// Anneal is the SA strategy: simulated annealing over the full design
// space of the current application — remapping processes, moving
// processes between slacks, and moving messages between slot occurrences
// — minimizing the objective C. With default options it is far slower
// than MH and serves as the near-optimal reference.
func Anneal(p *Problem, opts SAOptions) (*Solution, error) {
	o := opts.withDefaults(p.Current.NumProcs())
	start := time.Now()
	rng := rand.New(rand.NewSource(o.Seed))

	mapping, st, err := p.initial(sched.Hints{})
	if err != nil {
		return nil, err
	}
	hints := sched.Hints{}
	report := metrics.Evaluate(st, p.Profile, p.Weights)
	evals := 1

	best := &Solution{
		Strategy: "SA",
		Mapping:  mapping.Clone(),
		Hints:    hints.Clone(),
		State:    st,
		Report:   report,
	}

	// Collect the movable objects once.
	ix := model.NewIndex(p.Current)
	var procs []*model.Process
	var msgs []*model.Message
	for _, g := range p.Current.Graphs {
		procs = append(procs, g.Procs...)
		msgs = append(msgs, g.Msgs...)
	}

	cur := report.Objective
	temp := o.InitialTemp
	cooling := math.Pow(o.FinalTemp/o.InitialTemp, 1/float64(o.Iterations))

	for i := 0; i < o.Iterations; i++ {
		nm, nh := neighbor(rng, p, ix, procs, msgs, mapping, hints)
		st2, rep2, err := p.evaluate(nm, nh)
		evals++
		temp *= cooling
		if err != nil {
			continue // infeasible neighbor
		}
		delta := rep2.Objective - cur
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			mapping, hints, cur = nm, nh, rep2.Objective
			if rep2.Objective < best.Report.Objective {
				best.Mapping = nm.Clone()
				best.Hints = nh.Clone()
				best.State = st2
				best.Report = rep2
			}
		}
	}

	best.Elapsed = time.Since(start)
	best.Evaluations = evals
	return best, nil
}

// neighbor produces a random design transformation: remap a process
// (40%), move a process to a random slack position (40%), or move a
// message to a random slot occurrence (20%, when there are messages).
func neighbor(rng *rand.Rand, p *Problem, ix *model.Index,
	procs []*model.Process, msgs []*model.Message,
	mapping model.Mapping, hints sched.Hints) (model.Mapping, sched.Hints) {

	kind := rng.Float64()
	if kind < 0.4 || (kind >= 0.8 && len(msgs) == 0) {
		// Remap a random process to a random allowed node, clearing its
		// position hint so the scheduler packs it ASAP on the new node.
		proc := procs[rng.Intn(len(procs))]
		nodes := proc.AllowedNodes()
		nm := mapping.Clone()
		nm[proc.ID] = nodes[rng.Intn(len(nodes))]
		return nm, hints.SetProcStart(proc.ID, 0)
	}
	if kind < 0.8 {
		// Move a random process to a random start offset in its period.
		proc := procs[rng.Intn(len(procs))]
		g := ix.GraphOf[proc.ID]
		wcet := proc.WCET[mapping[proc.ID]]
		span := g.Period - wcet
		if span <= 0 {
			return mapping, hints
		}
		off := tm.Time(rng.Int63n(int64(span)))
		return mapping, hints.SetProcStart(proc.ID, off)
	}
	// Move a random message to a random slot-start offset in its period.
	m := msgs[rng.Intn(len(msgs))]
	g := ix.MsgGraph[m.ID]
	off := tm.Time(rng.Int63n(int64(g.Period)))
	return mapping, hints.SetMsgStart(m.ID, off)
}
