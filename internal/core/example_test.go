package core_test

import (
	"fmt"

	"incdes/internal/core"
	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// ExampleMappingHeuristic maps a two-process application onto a two-node
// system while protecting periodic slack for a future application.
func ExampleMappingHeuristic() {
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2)
	app := b.App("current")
	g := app.Graph("loop", 100, 100)
	p1 := g.Proc("sense", map[model.NodeID]tm.Time{n0: 10, n1: 12})
	p2 := g.Proc("act", map[model.NodeID]tm.Time{n0: 14, n1: 10})
	g.Msg(p1, p2, 4)
	sys := b.MustSystem()

	base, _ := sched.NewState(sys)
	prof := future.PaperProfile(50, 20, 8)
	prof.WCET = []future.Bin{{Size: 10, Prob: 0.5}, {Size: 20, Prob: 0.5}}

	problem, err := core.NewProblem(sys, base, app.Application(), prof, metrics.DefaultWeights(prof))
	if err != nil {
		fmt.Println("problem:", err)
		return
	}
	sol, err := core.MappingHeuristic(problem, core.MHOptions{})
	if err != nil {
		fmt.Println("mapping:", err)
		return
	}
	fmt.Printf("sense on N%d, act on N%d, objective %.0f\n",
		sol.Mapping[p1], sol.Mapping[p2], sol.Report.Objective)
	// Output:
	// sense on N0, act on N0, objective 0
}

// ExampleAdHoc shows the baseline strategy on the same problem shape.
func ExampleAdHoc() {
	b := model.NewBuilder()
	n0 := b.Node("N0")
	b.Bus([]model.NodeID{n0}, []int{8}, 1, 2)
	app := b.App("current")
	g := app.Graph("task", 100, 100)
	g.Proc("work", map[model.NodeID]tm.Time{n0: 25})
	sys := b.MustSystem()

	base, _ := sched.NewState(sys)
	prof := future.PaperProfile(100, 10, 4)
	prof.WCET = []future.Bin{{Size: 10, Prob: 1}}

	problem, _ := core.NewProblem(sys, base, app.Application(), prof, metrics.DefaultWeights(prof))
	sol, _ := core.AdHoc(problem)
	e := sol.State.ProcEntries()[0]
	fmt.Printf("work runs [%v, %v) on N%d\n", e.Start, e.End, e.Node)
	// Output:
	// work runs [0tu, 25tu) on N0
}
