package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
)

// The paper's follow-up (Pop et al., CODES 2001) relaxes requirement (a):
// existing applications may be modified — remapped and rescheduled — at a
// cost capturing the re-validation and re-testing effort the change
// triggers. The design problem becomes: implement the current application
// so that the total modification cost is minimal (zero when the frozen
// design suffices), and among designs of equal cost the future-oriented
// objective C is minimal. SolveRelaxed implements that extension.

// ExistingApp pairs a frozen application with its modification cost.
type ExistingApp struct {
	App *model.Application
	// Cost of modifying (remapping/rescheduling) this application:
	// re-certification, re-testing, documentation effort. The unit is
	// arbitrary but must be consistent across applications.
	Cost float64
}

// RelaxedProblem is the CODES-2001 variant of the incremental mapping
// problem: existing applications carry modification costs and may be
// reimplemented if the current application cannot be placed otherwise.
type RelaxedProblem struct {
	Sys *model.System
	// Base is the as-built schedule containing every Existing
	// application in its shipped position. Unmodified applications keep
	// exactly these placements.
	Base     *sched.State
	Existing []ExistingApp // in arrival order
	Current  *model.Application
	Profile  *future.Profile
	Weights  metrics.Weights
}

// RelaxedSolution reports which applications were modified and the
// resulting design.
type RelaxedSolution struct {
	// Modified lists the applications that were remapped, in arrival
	// order; empty when the frozen design sufficed.
	Modified []model.AppID
	// Cost is the total modification cost paid.
	Cost float64
	// State is the complete final schedule (unmodified existing
	// applications keep their exact original schedule entries).
	State *sched.State
	// Report scores the final design against the future profile.
	Report  metrics.Report
	Elapsed time.Duration
	// Subsets counts how many modification subsets were evaluated.
	Subsets int
}

// RelaxedOptions tune SolveRelaxed. Zero-valued fields select the
// corresponding DefaultRelaxedOptions value.
type RelaxedOptions struct {
	// MH tunes the mapping heuristic used for the current application
	// (zero fields follow the MHOptions zero-value semantics).
	MH MHOptions
	// MaxSubsets bounds the number of modification subsets tried (0
	// selects 64). Subsets are tried in increasing total cost, so the
	// first feasible subset found is cost-minimal among those examined.
	MaxSubsets int
	// Parallelism is handed to the embedded Solve calls (0 uses one
	// worker per CPU).
	Parallelism int
	// Incremental is handed to the embedded Solve calls (the zero value
	// enables transactional incremental evaluation, see Options).
	Incremental IncrementalMode
	// Observer is handed to the embedded Solve calls; the
	// core.relaxed.subsets counter additionally records how many
	// modification subsets were tried. nil disables observability.
	Observer *obs.Observer
}

// DefaultRelaxedOptions returns the explicit defaults of SolveRelaxed.
func DefaultRelaxedOptions() RelaxedOptions {
	return RelaxedOptions{MH: DefaultMHOptions(), MaxSubsets: 64}
}

// SolveRelaxed finds a minimum-modification-cost design.
//
// Deprecated: use SolveRelaxedContext, which supports cancellation.
func SolveRelaxed(rp *RelaxedProblem, opts RelaxedOptions) (*RelaxedSolution, error) {
	return SolveRelaxedContext(context.Background(), rp, opts)
}

// SolveRelaxedContext finds a minimum-modification-cost design: it
// enumerates subsets of existing applications in increasing total cost
// (the empty subset — the pure incremental case — first); for each
// subset it freezes the others, places the current application with the
// mapping heuristic, and then re-places the modified applications. The
// first subset that yields a fully valid design wins. Cancelling ctx
// aborts the subset scan with the context's error.
func SolveRelaxedContext(ctx context.Context, rp *RelaxedProblem, opts RelaxedOptions) (*RelaxedSolution, error) {
	start := time.Now()
	if opts.MaxSubsets == 0 {
		opts.MaxSubsets = 64
	}
	if err := rp.Profile.Validate(); err != nil {
		return nil, err
	}

	subsets := costOrderedSubsets(rp.Existing, opts.MaxSubsets)
	cSubsets := opts.Observer.Registry().Counter(obs.CtrRelaxedSubsets)
	tried := 0
	var lastErr error
	for _, sub := range subsets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tried++
		cSubsets.Inc()
		sol, err := rp.trySubset(ctx, sub, opts)
		if err != nil {
			lastErr = err
			continue
		}
		sol.Elapsed = time.Since(start)
		sol.Subsets = tried
		return sol, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no modification subset evaluated")
	}
	return nil, fmt.Errorf("%w: even with modifications: %v", ErrUnschedulable, lastErr)
}

// trySubset keeps every existing application outside the subset in its
// shipped position (copied from Base), places the current application,
// then re-places the modified ones from scratch.
func (rp *RelaxedProblem) trySubset(ctx context.Context, modify map[model.AppID]bool, opts RelaxedOptions) (*RelaxedSolution, error) {
	st, err := sched.Restrict(rp.Base, rp.Sys, func(id model.AppID) bool { return !modify[id] })
	if err != nil {
		return nil, err
	}

	// The current application gets the full future-oriented treatment.
	p, err := NewProblem(rp.Sys, st, rp.Current, rp.Profile, rp.Weights)
	if err != nil {
		return nil, err
	}
	sol, err := Solve(ctx, p, Options{
		Strategy:    MHWith(opts.MH),
		Parallelism: opts.Parallelism,
		Incremental: opts.Incremental,
		Observer:    opts.Observer,
	})
	if err != nil {
		return nil, err
	}
	st = sol.State

	// Modified applications are re-placed last: their old implementation
	// is discarded, which is exactly what "modification" means.
	var modified []model.AppID
	var cost float64
	for _, ex := range rp.Existing {
		if !modify[ex.App.ID] {
			continue
		}
		if _, err := st.MapApp(ex.App, sched.Hints{}); err != nil {
			return nil, fmt.Errorf("modified application %q no longer fits: %w", ex.App.Name, err)
		}
		modified = append(modified, ex.App.ID)
		cost += ex.Cost
	}

	return &RelaxedSolution{
		Modified: modified,
		Cost:     cost,
		State:    st,
		Report:   metrics.Evaluate(st, rp.Profile, rp.Weights),
	}, nil
}

// costOrderedSubsets enumerates subsets of the existing applications in
// increasing total modification cost, starting with the empty subset,
// capped at max entries. For more than 16 applications it falls back to
// cost-sorted prefixes (greedy).
func costOrderedSubsets(existing []ExistingApp, max int) []map[model.AppID]bool {
	n := len(existing)
	var subsets []map[model.AppID]bool
	if n <= 16 {
		type entry struct {
			mask int
			cost float64
			size int
		}
		entries := make([]entry, 0, 1<<n)
		for mask := 0; mask < 1<<n; mask++ {
			var c float64
			size := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					c += existing[i].Cost
					size++
				}
			}
			entries = append(entries, entry{mask: mask, cost: c, size: size})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].cost != entries[j].cost {
				return entries[i].cost < entries[j].cost
			}
			if entries[i].size != entries[j].size {
				return entries[i].size < entries[j].size
			}
			return entries[i].mask < entries[j].mask
		})
		for _, e := range entries {
			if len(subsets) >= max {
				break
			}
			sub := map[model.AppID]bool{}
			for i := 0; i < n; i++ {
				if e.mask&(1<<i) != 0 {
					sub[existing[i].App.ID] = true
				}
			}
			subsets = append(subsets, sub)
		}
		return subsets
	}
	// Greedy: cheapest-first prefixes.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return existing[order[a]].Cost < existing[order[b]].Cost })
	sub := map[model.AppID]bool{}
	subsets = append(subsets, map[model.AppID]bool{})
	for _, idx := range order {
		if len(subsets) >= max {
			break
		}
		next := make(map[model.AppID]bool, len(sub)+1)
		for k := range sub {
			next[k] = true
		}
		next[existing[idx].App.ID] = true
		sub = next
		subsets = append(subsets, next)
	}
	return subsets
}
