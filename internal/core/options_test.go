package core_test

import (
	"testing"

	"incdes/internal/core"
	"incdes/internal/sim"
)

func TestMHTargetNodesOption(t *testing.T) {
	p := testProblem(t, 11, 40, 20)
	narrow, err := core.MappingHeuristic(p, core.MHOptions{TargetNodes: 1, MaxIterations: 4})
	if err != nil {
		t.Fatalf("TargetNodes=1: %v", err)
	}
	wide, err := core.MappingHeuristic(p, core.MHOptions{TargetNodes: -1, MaxIterations: 4})
	if err != nil {
		t.Fatalf("TargetNodes=-1: %v", err)
	}
	if narrow.Evaluations > wide.Evaluations {
		t.Errorf("narrow search examined %d alternatives, wide %d; expected narrow <= wide",
			narrow.Evaluations, wide.Evaluations)
	}
	for _, sol := range []*core.Solution{narrow, wide} {
		if vs := sim.Check(sol.State, allApps(p)...); len(vs) != 0 {
			t.Fatalf("invalid schedule: %v", vs[0])
		}
	}
}

func TestMHMaxIterationsBounds(t *testing.T) {
	p := testProblem(t, 12, 40, 30)
	one, err := core.MappingHeuristic(p, core.MHOptions{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := core.MappingHeuristic(p, core.MHOptions{MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if one.Evaluations > many.Evaluations {
		t.Errorf("1 iteration examined %d alternatives, 20 iterations %d",
			one.Evaluations, many.Evaluations)
	}
	if many.Report.Objective > one.Report.Objective+1e-9 {
		t.Errorf("more iterations made the objective worse: %v vs %v",
			many.Report.Objective, one.Report.Objective)
	}
}

func TestSATemperatureOptions(t *testing.T) {
	p := testProblem(t, 13, 40, 20)
	sol, err := core.Anneal(p, core.SAOptions{
		Iterations:  200,
		InitialTemp: 5,
		FinalTemp:   0.01,
		Seed:        9,
	})
	if err != nil {
		t.Fatalf("Anneal with custom temperatures: %v", err)
	}
	if sol.Evaluations != 201 {
		t.Errorf("evaluations = %d, want 201", sol.Evaluations)
	}
	if vs := sim.Check(sol.State, allApps(p)...); len(vs) != 0 {
		t.Fatalf("invalid schedule: %v", vs[0])
	}
}

func TestSolutionObjectiveAccessor(t *testing.T) {
	p := testProblem(t, 14, 40, 15)
	sol, err := core.AdHoc(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective() != sol.Report.Objective {
		t.Error("Objective() accessor disagrees with the report")
	}
	if sol.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}
