package core

import (
	"context"
	"errors"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"incdes/internal/metrics"
	"incdes/internal/obs"
)

// Strategy is one mapping strategy, runnable through Solve. The built-in
// strategies are AH, MH and SA (optionally configured via MHWith and
// SAWith); custom strategies can be implemented on top of the Engine's
// Evaluate/Materialize/ForEach primitives and inherit parallel
// evaluation, caching, cancellation and progress reporting for free.
type Strategy interface {
	// Name is the short tag recorded in Solution.Strategy.
	Name() string
	// Run maps the problem's current application. Implementations must
	// perform candidate evaluations through the engine, honor ctx by
	// returning their best-so-far solution (marked Interrupted) when it
	// is cancelled, and must not read wall-clock time — Solve measures
	// Elapsed around Run so results are pure functions of
	// (problem, options).
	Run(ctx context.Context, eng *Engine) (*Solution, error)
}

// Predefined strategies with the paper's default tuning.
var (
	// AH is the ad-hoc baseline: the initial mapping alone.
	AH Strategy = ahStrategy{}
	// MH is the mapping heuristic with DefaultMHOptions.
	MH Strategy = MHWith(MHOptions{})
	// SA is the annealing reference with DefaultSAOptions.
	SA Strategy = SAWith(DefaultSAOptions())
	// Portfolio races AH, MH and SA concurrently under one deadline and
	// returns the deterministic winner (see PortfolioWith).
	Portfolio Strategy = PortfolioWith(PortfolioOptions{})
)

// MHWith returns the mapping heuristic configured with opts. Zero-valued
// tuning fields select the corresponding DefaultMHOptions value (see the
// MHOptions field docs); boolean ablation switches and SeedHints are used
// as given.
func MHWith(opts MHOptions) Strategy { return mhStrategy{opts: opts} }

// SAWith returns the annealing strategy configured with opts. Seed is
// used exactly as given (0 is a valid seed); the remaining zero values
// select the documented defaults (see the SAOptions field docs).
func SAWith(opts SAOptions) Strategy { return saStrategy{opts: opts} }

// DefaultCacheSize is the evaluation-memo capacity Solve uses when
// Options.CacheSize is 0.
const DefaultCacheSize = 1 << 14

// IncrementalMode selects how the engine evaluates candidate designs.
type IncrementalMode int

const (
	// IncrementalAuto (the zero value) currently means IncrementalOn:
	// transactional in-place evaluation is the default.
	IncrementalAuto IncrementalMode = iota
	// IncrementalOn applies each candidate as an undo-logged transaction
	// on a per-worker copy of the frozen base and rescores only the
	// touched regions, rolling back in O(delta) afterwards.
	IncrementalOn
	// IncrementalOff restores the pre-transactional behavior: every
	// candidate clones the full base state and recomputes the metrics
	// from scratch. The escape hatch — results are byte-identical to the
	// incremental path (pinned by differential tests), only slower.
	IncrementalOff
)

// Options configure one Solve call. The zero value of every field except
// Strategy is meaningful and documented on the field; DefaultOptions
// returns the fully explicit defaults.
type Options struct {
	// Strategy selects the mapping strategy (required). Use AH, MH, SA,
	// or a configured MHWith/SAWith value.
	Strategy Strategy
	// Parallelism is the evaluation worker count: MH fans its
	// per-iteration candidate set across this many workers, SA its
	// restart chains. 0 uses one worker per CPU (GOMAXPROCS); 1 runs
	// strictly serially. Results are identical at every setting.
	Parallelism int
	// Progress, when non-nil, observes strategy progress. Callbacks are
	// serialized but may originate from worker goroutines; they must be
	// fast and must not call back into the engine.
	Progress func(Event)
	// CacheSize bounds the evaluation memo in entries. 0 selects
	// DefaultCacheSize; negative disables the memo.
	CacheSize int
	// Incremental selects the candidate evaluation machinery. The zero
	// value (IncrementalAuto) enables transactional incremental
	// evaluation; IncrementalOff falls back to cloning and rebuilding the
	// full state per candidate. Solutions are byte-identical either way —
	// the mode only changes speed.
	Incremental IncrementalMode
	// Baseline, when non-nil, is a pre-computed cache of the metric
	// inputs of the problem's frozen base schedule, exactly as built by
	// metrics.NewBaseline(p.Base, p.Profile, p.Weights); Solve then skips
	// rebuilding it. This is the saving a design session exploits when
	// several commits branch from one version: the slack analysis of the
	// shared base is paid once. The caller is responsible for the
	// baseline matching the problem — a stale or mismatched baseline
	// yields undefined reports. Ignored when Incremental is
	// IncrementalOff (the full-rebuild path never consults a baseline).
	Baseline *metrics.Baseline
	// Observer, when non-nil, attaches the observability layer: its
	// Stats registry accumulates the engine/scheduler/bus counter catalog
	// (see package obs) and its Tracer receives the structured decision
	// event stream. nil disables the layer entirely; the hot path then
	// performs no observability work and no allocations, and the solution
	// is byte-identical either way — instruments never feed back into
	// strategy decisions.
	Observer *obs.Observer
}

// DefaultOptions returns the explicit defaults Solve would resolve the
// zero-valued fields to (with MH as the strategy).
func DefaultOptions() Options {
	return Options{
		Strategy:    MH,
		Parallelism: defaultParallelism(),
		CacheSize:   DefaultCacheSize,
		Incremental: IncrementalOn,
	}
}

func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Event is one progress observation delivered to Options.Progress.
type Event struct {
	// Strategy is the tag of the strategy that made progress.
	Strategy string
	// Chain is the SA restart chain the event belongs to (0 otherwise).
	Chain int
	// Iteration counts strategy iterations: MH improvement steps or
	// chain-local SA steps.
	Iteration int
	// Evaluations and CacheHits are the engine's cumulative counters at
	// the time of the event.
	Evaluations int64
	CacheHits   int64
	// BestObjective is the emitter's best objective value C so far.
	BestObjective float64
}

// Solve runs a strategy on a problem: the single entry point behind
// which every strategy is parallel, cancellable and observable.
//
// When ctx is cancelled (deadline or Ctrl-C translated into a context),
// Solve returns the best solution found so far with Solution.Interrupted
// set and a nil error; only cancellation before any feasible design was
// evaluated returns the context's error. Solutions are deterministic:
// for a fixed problem and options, every parallelism level and cache
// size yields a byte-identical Report (cancellation timing excepted).
func Solve(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	if opts.Strategy == nil {
		return nil, errors.New("core: Options.Strategy is nil")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	eng := newEngine(p, opts)
	if reg := opts.Observer.Registry(); reg != nil {
		reg.Counter(obs.CtrSolves).Inc()
	}
	eng.Trace(obs.TraceEvent{Kind: "solve.start", Strategy: opts.Strategy.Name()})
	// The request-scoped "core.solve" span (free when the context carries
	// no trace) plus pprof labels so CPU profiles segment by request and
	// strategy; worker goroutines inherit the labels through ForEach.
	runCtx, span := obs.StartSpan(ctx, "core.solve")
	span.SetAttr("strategy", opts.Strategy.Name())
	var sol *Solution
	var err error
	run := func(ctx context.Context) { sol, err = opts.Strategy.Run(ctx, eng) }
	if opts.Observer != nil {
		pprof.Do(runCtx, pprof.Labels(
			"incdes.request", obs.RequestIDFrom(ctx),
			"incdes.strategy", opts.Strategy.Name(),
		), run)
	} else {
		run(runCtx)
	}
	if err != nil {
		span.End()
		return nil, err
	}
	sol.Elapsed = time.Since(start)
	sol.Evaluations = int(eng.Evaluations())
	sol.CacheHits = int(eng.CacheHits())
	if reg := opts.Observer.Registry(); reg != nil && sol.State != nil {
		// Final-design TTP slot occupancy, summed over every bus: how much
		// bus headroom the chosen design leaves for future applications.
		var used, capacity, slots int64
		for i := 0; i < sol.State.NumBuses(); i++ {
			oc := sol.State.BusStateAt(i).Occupancy()
			used += int64(oc.UsedBytes)
			capacity += int64(oc.CapacityBytes)
			slots += int64(oc.OccupiedSlots)
		}
		reg.Gauge(obs.GagTTPUsedBytes).Set(used)
		reg.Gauge(obs.GagTTPCapBytes).Set(capacity)
		reg.Gauge(obs.GagTTPUsedSlots).Set(slots)
	}
	span.SetAttr("evaluations", strconv.Itoa(sol.Evaluations))
	span.End()
	eng.Trace(obs.TraceEvent{
		Kind:        "solve.done",
		Strategy:    sol.Strategy,
		Cost:        sol.Report.Objective,
		Evaluations: int64(sol.Evaluations),
	})
	return sol, nil
}
