package core_test

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"incdes/internal/core"
)

// runSolve is a shorthand for Solve with a background context.
func runSolve(t *testing.T, p *core.Problem, opts core.Options) *core.Solution {
	t.Helper()
	sol, err := core.Solve(context.Background(), p, opts)
	if err != nil {
		t.Fatalf("Solve(%s): %v", opts.Strategy.Name(), err)
	}
	return sol
}

// sameDesign asserts two solutions picked the identical design: same
// mapping, same hints, same report (byte for byte), same evaluation
// count. Elapsed and CacheHits legitimately differ between runs.
func sameDesign(t *testing.T, label string, a, b *core.Solution) {
	t.Helper()
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Errorf("%s: reports differ: %+v vs %+v", label, a.Report, b.Report)
	}
	if !reflect.DeepEqual(a.Mapping, b.Mapping) {
		t.Errorf("%s: mappings differ", label)
	}
	if !reflect.DeepEqual(a.Hints, b.Hints) {
		t.Errorf("%s: hints differ", label)
	}
	if a.Evaluations != b.Evaluations {
		t.Errorf("%s: evaluation counts differ: %d vs %d", label, a.Evaluations, b.Evaluations)
	}
}

// TestSolveDeterministicAcrossParallelism is the redesign's core
// guarantee: for a fixed problem and options, the solution — report
// included — is identical whether candidates are evaluated by one worker
// or many.
func TestSolveDeterministicAcrossParallelism(t *testing.T) {
	p := testProblem(t, 11, 50, 25)
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"MH", core.MHWith(core.MHOptions{MaxIterations: 8})},
		{"SA", core.SAWith(core.SAOptions{Seed: 3, Iterations: 400, Restarts: 3})},
	}
	for _, s := range strategies {
		t.Run(s.name, func(t *testing.T) {
			ref := runSolve(t, p, core.Options{Strategy: s.strat, Parallelism: 1})
			for _, par := range []int{4, 8} {
				got := runSolve(t, p, core.Options{Strategy: s.strat, Parallelism: par})
				sameDesign(t, s.name, ref, got)
			}
		})
	}
}

// TestSolveCacheNeutral: disabling the evaluation memo (CacheSize < 0)
// must not change the solution, and a repeated SA walk over the default
// memo must actually hit it.
func TestSolveCacheNeutral(t *testing.T) {
	p := testProblem(t, 12, 50, 25)
	strat := core.SAWith(core.SAOptions{Seed: 5, Iterations: 400})
	cached := runSolve(t, p, core.Options{Strategy: strat, Parallelism: 1})
	uncached := runSolve(t, p, core.Options{Strategy: strat, Parallelism: 1, CacheSize: -1})
	sameDesign(t, "SA cache on/off", cached, uncached)
	if uncached.CacheHits != 0 {
		t.Errorf("disabled cache reported %d hits", uncached.CacheHits)
	}
}

// TestSolveCancellation: cancelling the context mid-run returns the best
// design found so far (flagged Interrupted, no error) and leaks no
// worker goroutines.
func TestSolveCancellation(t *testing.T) {
	p := testProblem(t, 13, 50, 25)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	sol, err := core.Solve(ctx, p, core.Options{
		Strategy:    core.SAWith(core.SAOptions{Seed: 7, Iterations: 50_000, Restarts: 4}),
		Parallelism: 4,
		Progress: func(core.Event) {
			events++
			cancel()
		},
	})
	if err != nil {
		t.Fatalf("Solve after cancel: %v", err)
	}
	if !sol.Interrupted {
		t.Error("solution not flagged Interrupted")
	}
	if sol.State == nil || sol.Report.Objective < 0 {
		t.Errorf("best-so-far solution malformed: %+v", sol.Report)
	}
	if events == 0 {
		t.Error("progress callback never fired")
	}

	// Workers must not outlive Solve. Allow the runtime a moment to
	// retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestSolvePreCancelled: a context cancelled before Solve starts still
// yields the initial design for iterative strategies (flagged
// Interrupted) — there is always a best-so-far once the problem is
// feasible.
func TestSolvePreCancelled(t *testing.T) {
	p := testProblem(t, 14, 50, 25)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := core.Solve(ctx, p, core.Options{Strategy: core.MH, Parallelism: 2})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !sol.Interrupted {
		t.Error("solution not flagged Interrupted")
	}
	if sol.State == nil {
		t.Fatal("no state on pre-cancelled solve")
	}
}

func TestSolveNilStrategy(t *testing.T) {
	p := testProblem(t, 15, 30, 15)
	if _, err := core.Solve(context.Background(), p, core.Options{}); err == nil {
		t.Fatal("Solve accepted a nil strategy")
	}
}

// TestDefaultConstructors pins the documented defaults of the explicit
// option constructors introduced with the Solve API.
func TestDefaultConstructors(t *testing.T) {
	mh := core.DefaultMHOptions()
	if mh.MaxIterations != 50 || mh.ProcCandidates != 5 || mh.MsgCandidates != 4 {
		t.Errorf("DefaultMHOptions = %+v", mh)
	}
	sa := core.DefaultSAOptions()
	if sa.Seed != 1 || sa.Restarts != 1 || sa.InitialTemp != 40 || sa.FinalTemp != 0.1 {
		t.Errorf("DefaultSAOptions = %+v", sa)
	}
	if sa.Iterations != 0 {
		t.Errorf("DefaultSAOptions.Iterations = %d, want 0 (auto-size)", sa.Iterations)
	}
	rx := core.DefaultRelaxedOptions()
	if rx.MaxSubsets != 64 || !reflect.DeepEqual(rx.MH, mh) {
		t.Errorf("DefaultRelaxedOptions = %+v", rx)
	}
	o := core.DefaultOptions()
	if o.Strategy == nil || o.Strategy.Name() != "MH" {
		t.Errorf("DefaultOptions.Strategy = %v", o.Strategy)
	}
}

// TestSolveProgressEvents: the progress stream carries the running
// counters.
func TestSolveProgressEvents(t *testing.T) {
	p := testProblem(t, 16, 50, 25)
	var last core.Event
	n := 0
	sol := runSolve(t, p, core.Options{
		Strategy:    core.MHWith(core.MHOptions{MaxIterations: 5}),
		Parallelism: 2,
		Progress: func(ev core.Event) {
			n++
			last = ev
		},
	})
	if n == 0 {
		t.Fatal("no progress events")
	}
	if last.Strategy != "MH" {
		t.Errorf("event strategy = %q", last.Strategy)
	}
	if last.Evaluations <= 0 || int(last.Evaluations) > sol.Evaluations {
		t.Errorf("event evaluations = %d (solution total %d)", last.Evaluations, sol.Evaluations)
	}
	if last.BestObjective != sol.Report.Objective {
		t.Errorf("final event objective %v != solution %v", last.BestObjective, sol.Report.Objective)
	}
}

// TestDeprecatedWrappersMatchSolve: the legacy entry points must agree
// with the Solve calls they forward to.
func TestDeprecatedWrappersMatchSolve(t *testing.T) {
	p := testProblem(t, 17, 50, 25)

	legacyMH, err := core.MappingHeuristic(p, core.MHOptions{MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	newMH := runSolve(t, p, core.Options{
		Strategy: core.MHWith(core.MHOptions{MaxIterations: 6}), Parallelism: 4,
	})
	sameDesign(t, "MH wrapper", legacyMH, newMH)

	// Anneal's historical quirk: Seed 0 means 1.
	legacySA, err := core.Anneal(p, core.SAOptions{Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	newSA := runSolve(t, p, core.Options{
		Strategy: core.SAWith(core.SAOptions{Seed: 1, Iterations: 300}), Parallelism: 4,
	})
	sameDesign(t, "SA wrapper", legacySA, newSA)
}
