package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// MHOptions tune the mapping heuristic. Every zero-valued tuning field
// selects the corresponding DefaultMHOptions value — defaults sized like
// the paper's: a small set of high-potential candidates per iteration,
// so MH stays orders of magnitude cheaper than annealing. Boolean
// ablation switches and SeedHints are used as given.
type MHOptions struct {
	// MaxIterations bounds the improvement loop (default 50).
	MaxIterations int
	// ProcCandidates is how many high-potential processes are examined
	// per iteration (default 5).
	ProcCandidates int
	// TargetsPerNode is how many slack positions are tried per candidate
	// process and node (default 2; the ASAP position is always tried).
	TargetsPerNode int
	// MsgCandidates is how many messages are examined per iteration
	// (default 4).
	MsgCandidates int
	// MsgTargets is how many alternative slot occurrences are tried per
	// candidate message (default 2).
	MsgTargets int
	// TargetNodes bounds how many processors are tried per candidate
	// process: its current node plus the TargetNodes allowed nodes with
	// the most total slack (default 3). Negative scans all allowed nodes.
	TargetNodes int
	// MinImprovement is the objective decrease a move must achieve to be
	// applied (default 1e-9, i.e. any strict improvement).
	MinImprovement float64
	// DisableMsgMoves turns off message transformations (ablation).
	DisableMsgMoves bool
	// RandomCandidates replaces potential-based candidate selection with
	// the first processes in ID order (ablation of the "highest
	// potential" rule).
	RandomCandidates bool
	// SeedHints are placement hints applied to the initial mapping and
	// kept as the starting design; individual moves then override them
	// per process or message. Used when the caller wants MH to improve a
	// particular layout (e.g. a deliberately spread-out one) instead of
	// the ASAP-packed initial mapping.
	SeedHints sched.Hints
}

// DefaultMHOptions returns the paper-sized mapping-heuristic tuning: 50
// improvement iterations over 5 process and 4 message candidates, 2
// slack targets per node, the current node plus the 3 slackest
// alternatives per process, and any strict objective improvement
// accepted.
func DefaultMHOptions() MHOptions {
	return MHOptions{
		MaxIterations:  50,
		ProcCandidates: 5,
		TargetsPerNode: 2,
		MsgCandidates:  4,
		MsgTargets:     2,
		TargetNodes:    3,
		MinImprovement: 1e-9,
	}
}

// normalized resolves the documented zero-value semantics against
// DefaultMHOptions.
func (o MHOptions) normalized() MHOptions {
	d := DefaultMHOptions()
	if o.MaxIterations == 0 {
		o.MaxIterations = d.MaxIterations
	}
	if o.ProcCandidates == 0 {
		o.ProcCandidates = d.ProcCandidates
	}
	if o.TargetsPerNode == 0 {
		o.TargetsPerNode = d.TargetsPerNode
	}
	if o.MsgCandidates == 0 {
		o.MsgCandidates = d.MsgCandidates
	}
	if o.MsgTargets == 0 {
		o.MsgTargets = d.MsgTargets
	}
	if o.MinImprovement == 0 {
		o.MinImprovement = d.MinImprovement
	}
	if o.TargetNodes == 0 {
		o.TargetNodes = d.TargetNodes
	}
	return o
}

// candidate is one design alternative of an MH iteration.
type candidate struct {
	mapping model.Mapping
	hints   sched.Hints
}

// mhStrategy is the MH strategy: start from the initial mapping, then
// repeatedly apply the single design transformation that improves the
// objective most, examining only the transformations with the highest
// potential — processes bordering the smallest slack fragments (moving
// them merges slack) and messages in the most congested slot occurrences.
//
// Each iteration enumerates its candidate set up front, fans the
// evaluations across the engine's workers, and then reduces the results
// in enumeration order — which makes the outcome identical to the serial
// first-improvement scan at every parallelism level.
type mhStrategy struct{ opts MHOptions }

func (mhStrategy) Name() string { return "MH" }

// enumerate builds the iteration's candidate set from the current design.
func (s mhStrategy) enumerate(eng *Engine, ix *model.Index, st *sched.State,
	mapping model.Mapping, hints sched.Hints, o MHOptions) []candidate {

	p := eng.Problem()
	var cs []candidate

	// Process moves: candidate x (node, slack position). Candidates
	// come from two potential sources: processes bordering the
	// smallest slack fragments (criterion 1) and processes inside the
	// tightest Tmin windows (criterion 2).
	cands := procCandidates(st, p.Current, ix, o.ProcCandidates, o.RandomCandidates)
	cands = mergeCandidates(cands,
		windowCandidates(st, p.Current, p.Profile.Tmin, 1), o.ProcCandidates+len(p.Sys.Arch.Nodes))
	for _, cand := range cands {
		proc := ix.Proc[cand]
		g := ix.GraphOf[cand]
		for _, node := range targetNodes(st, proc, mapping[cand], o.TargetNodes) {
			offs := targetOffsets(st, node, proc.WCET[node], g.Period, p.Profile.Tmin, o.TargetsPerNode)
			for _, off := range offs {
				if node == mapping[cand] && hints.ProcStart[cand] == off {
					continue // the current design, not a move
				}
				nm := mapping.Clone()
				nm[cand] = node
				cs = append(cs, candidate{mapping: nm, hints: hints.SetProcStart(cand, off)})
			}
		}
	}

	// Message moves: candidate x later slot occurrence.
	if !o.DisableMsgMoves {
		for _, mc := range msgCandidates(st, p.Current, o.MsgCandidates) {
			g := ix.MsgGraph[mc.id]
			for _, off := range msgTargetOffsets(st, mc, g.Period, o.MsgTargets) {
				if hints.MsgStart[mc.id] == off {
					continue
				}
				cs = append(cs, candidate{mapping: mapping, hints: hints.SetMsgStart(mc.id, off)})
			}
		}
	}
	return cs
}

func (s mhStrategy) Run(ctx context.Context, eng *Engine) (*Solution, error) {
	p := eng.Problem()
	o := s.opts.normalized()

	mapping, st, err := p.initial(o.SeedHints)
	if err != nil {
		return nil, err
	}
	hints := o.SeedHints.Clone()
	eng.count(1)
	report := metrics.Evaluate(st, p.Profile, p.Weights)
	ix := model.NewIndex(p.Current)

	reg := eng.Stats()
	cIters := reg.Counter(obs.CtrMHIterations)
	cCands := reg.Counter(obs.CtrMHCandidates)
	cPruned := reg.Counter(obs.CtrMHPruned)
	cMoves := reg.Counter(obs.CtrMHMoves)
	eng.Trace(obs.TraceEvent{Kind: "init", Strategy: "MH", Cost: report.Objective})

	// better reports whether a is a strict improvement over b: lower
	// objective, or — when several bottleneck windows tie and the
	// min-based objective is flat — equal objective with a strictly
	// higher periodic fill.
	better := func(a, b metrics.Report) bool {
		if a.Objective < b.Objective-o.MinImprovement {
			return true
		}
		return a.Objective < b.Objective+o.MinImprovement &&
			a.PeriodicFill > b.PeriodicFill+0.5
	}

	interrupted := false
	stop := "max-iterations"
	for iter := 0; iter < o.MaxIterations; iter++ {
		if ctx.Err() != nil {
			interrupted, stop = true, "cancelled"
			break
		}
		cands := s.enumerate(eng, ix, st, mapping, hints, o)
		cIters.Inc()
		cCands.Add(int64(len(cands)))

		type outcome struct {
			report metrics.Report
			ok     bool
		}
		results := make([]outcome, len(cands))
		eng.ForEach(ctx, len(cands), func(i int) {
			results[i].report, results[i].ok = eng.Evaluate(cands[i].mapping, cands[i].hints)
		})
		if ctx.Err() != nil {
			// A partial candidate scan must not steer the search: keep
			// the last fully evaluated design as the best-so-far result.
			interrupted, stop = true, "cancelled"
			break
		}

		// Reduce in enumeration order, exactly like the serial
		// first-improvement scan. The candidate trace events are emitted
		// here — after the parallel fan-out has joined — in that same
		// order, so the trace is identical at every parallelism level.
		bestIdx := -1
		var bestRep metrics.Report
		for i, r := range results {
			if !r.ok {
				cPruned.Inc()
			}
			if eng.Tracing() {
				eng.Trace(obs.TraceEvent{
					Kind: "candidate", Iter: iter + 1, Index: i,
					Cost: r.report.Objective, Feasible: r.ok,
				})
			}
			if !r.ok {
				continue // infeasible: requirement (a) rules it out
			}
			ref := report
			if bestIdx >= 0 {
				ref = bestRep
			}
			if better(r.report, ref) {
				bestIdx, bestRep = i, r.report
			}
		}
		if bestIdx < 0 {
			stop = "local-optimum" // no examined transformation improves C
			break
		}
		mapping, hints = cands[bestIdx].mapping, cands[bestIdx].hints
		st, report, err = eng.Materialize(mapping, hints)
		if err != nil {
			return nil, fmt.Errorf("core: internal: winning alternative failed to re-schedule: %w", err)
		}
		cMoves.Inc()
		eng.Trace(obs.TraceEvent{Kind: "move", Iter: iter + 1, Index: bestIdx, Cost: report.Objective})
		eng.Emit(Event{Strategy: "MH", Iteration: iter + 1, BestObjective: report.Objective})
	}
	eng.Trace(obs.TraceEvent{Kind: "stop", Strategy: "MH", Note: stop})
	eng.Trace(obs.TraceEvent{Kind: "decision", Strategy: "MH", Cost: report.Objective})

	return &Solution{
		Strategy:    "MH",
		Mapping:     mapping,
		Hints:       hints,
		State:       st,
		Report:      report,
		Interrupted: interrupted,
	}, nil
}

// MappingHeuristic runs the MH strategy serially.
//
// Deprecated: use Solve(ctx, p, Options{Strategy: MHWith(opts)}).
func MappingHeuristic(p *Problem, opts MHOptions) (*Solution, error) {
	return Solve(context.Background(), p, Options{Strategy: MHWith(opts), Parallelism: 1})
}

// targetNodes selects the processors worth trying for a candidate
// process: its current node plus the k allowed nodes with the most total
// slack. k < 0 returns every allowed node.
func targetNodes(st *sched.State, proc *model.Process, current model.NodeID, k int) []model.NodeID {
	allowed := proc.AllowedNodes()
	if k < 0 || len(allowed) <= k+1 {
		return allowed
	}
	slackOf := func(n model.NodeID) tm.Time {
		return st.Horizon() - st.Busy(n).Total()
	}
	sorted := append([]model.NodeID(nil), allowed...)
	sort.Slice(sorted, func(i, j int) bool {
		si, sj := slackOf(sorted[i]), slackOf(sorted[j])
		if si != sj {
			return si > sj
		}
		return sorted[i] < sorted[j]
	})
	out := []model.NodeID{current}
	for _, n := range sorted {
		if len(out) > k {
			break
		}
		if n != current {
			out = append(out, n)
		}
	}
	return out
}

// procCandidates returns the processes of the current application with the
// highest potential to improve the design when moved: those whose
// schedule entries border the smallest non-zero slack fragments on their
// processor. Moving such a process merges its fragment with the slack
// freed by the move.
func procCandidates(st *sched.State, app *model.Application, ix *model.Index,
	k int, randomOrder bool) []model.ProcID {

	if randomOrder {
		// Ablation mode: just take the first k processes by ID.
		var ids []model.ProcID
		for _, g := range app.Graphs {
			for _, p := range g.Procs {
				ids = append(ids, p.ID)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) > k {
			ids = ids[:k]
		}
		return ids
	}

	gapsByNode := map[model.NodeID][]tm.Interval{}
	for _, n := range st.System().Arch.Nodes {
		gapsByNode[n.ID] = st.Busy(n.ID).Gaps(tm.Iv(0, st.Horizon()))
	}
	scores := map[model.ProcID]float64{}
	for _, e := range st.ProcEntries() {
		if e.App != app.ID {
			continue
		}
		score := fragmentScore(gapsByNode[e.Node], e.Start, e.End)
		if cur, ok := scores[e.Proc]; !ok || score < cur {
			scores[e.Proc] = score
		}
	}
	ids := make([]model.ProcID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] < scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// mergeCandidates concatenates two candidate lists, removing duplicates
// and capping the result at max entries.
func mergeCandidates(a, b []model.ProcID, max int) []model.ProcID {
	seen := map[model.ProcID]bool{}
	var out []model.ProcID
	for _, list := range [][]model.ProcID{a, b} {
		for _, id := range list {
			if !seen[id] && len(out) < max {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// windowCandidates returns processes of the current application running
// inside the tightest Tmin windows: moving them out directly raises the
// minimum periodic slack (criterion 2). C2P sums one minimum per node, so
// candidates are selected per node — up to perNode processes from each
// node's own bottleneck window — rather than globally, which would let a
// single congested node monopolize the candidate set.
func windowCandidates(st *sched.State, app *model.Application, tmin tm.Time, perNode int) []model.ProcID {
	if tmin <= 0 || perNode <= 0 {
		return nil
	}
	horizon := st.Horizon()
	nWin := int(horizon / tmin)
	if nWin == 0 {
		nWin = 1
		tmin = horizon
	}
	if perNode > 2 {
		perNode = 2
	}

	// Group the current application's entries by node.
	byNode := map[model.NodeID][]sched.ProcEntry{}
	for _, e := range st.ProcEntries() {
		if e.App == app.ID {
			byNode[e.Node] = append(byNode[e.Node], e)
		}
	}

	var ids []model.ProcID
	seen := map[model.ProcID]bool{}
	for _, n := range st.System().Arch.NodeIDs() {
		gaps := st.Busy(n).Gaps(tm.Iv(0, horizon))
		// Find this node's minimum-slack window.
		minW, minSlack := -1, tm.Infinity
		for w := 0; w < nWin; w++ {
			win := tm.Iv(tm.Time(w)*tmin, tm.Time(w+1)*tmin)
			var s tm.Time
			for _, g := range gaps {
				s += g.Intersect(win).Len()
			}
			if s < minSlack {
				minSlack, minW = s, w
			}
		}
		if minW < 0 {
			continue
		}
		win := tm.Iv(tm.Time(minW)*tmin, tm.Time(minW+1)*tmin)
		// Current-application processes overlapping the bottleneck window,
		// largest overlap first (moving them frees the most).
		cands := make([]sched.ProcEntry, 0, 4)
		for _, e := range byNode[n] {
			if tm.Iv(e.Start, e.End).Overlaps(win) {
				cands = append(cands, e)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			oi := tm.Iv(cands[i].Start, cands[i].End).Intersect(win).Len()
			oj := tm.Iv(cands[j].Start, cands[j].End).Intersect(win).Len()
			if oi != oj {
				return oi > oj
			}
			return cands[i].Proc < cands[j].Proc
		})
		added := 0
		for _, e := range cands {
			if added >= perNode {
				break
			}
			if !seen[e.Proc] {
				seen[e.Proc] = true
				ids = append(ids, e.Proc)
				added++
			}
		}
	}
	return ids
}

// fragmentScore returns the size of the smallest non-empty slack fragment
// directly adjacent to the busy interval [start, end); +Inf when no
// fragment borders it.
func fragmentScore(gaps []tm.Interval, start, end tm.Time) float64 {
	score := math.Inf(1)
	for _, g := range gaps {
		if g.End == start || g.Start == end {
			score = math.Min(score, float64(g.Len()))
		}
		if g.Start > end {
			break
		}
	}
	return score
}

// targetOffsets enumerates slack positions on a node where a process of
// the given WCET fits, expressed as start offsets relative to the graph
// release. Two kinds of position have the highest potential: the start of
// the largest slack interval (keeps slack contiguous, criterion 1) and
// positions inside the Tmin windows that currently hold the most slack
// (evens out the periodic distribution, criterion 2). The ASAP position
// (offset 0) is always included.
func targetOffsets(st *sched.State, node model.NodeID, wcet, period, tmin tm.Time, k int) []tm.Time {
	gaps := st.Busy(node).Gaps(tm.Iv(0, st.Horizon()))
	offs := []tm.Time{0}
	seen := map[tm.Time]bool{0: true}
	add := func(start tm.Time) {
		off := start % period
		if off+wcet > period {
			return // would always straddle the deadline boundary
		}
		if !seen[off] {
			seen[off] = true
			offs = append(offs, off)
		}
	}

	// The start of the largest fitting slack interval.
	var largest tm.Interval
	for _, g := range gaps {
		if g.Len() >= wcet && g.Len() > largest.Len() {
			largest = g
		}
	}
	if !largest.Empty() {
		add(largest.Start)
	}

	// The earliest fitting position inside each of the k emptiest Tmin
	// windows of this node.
	if tmin > 0 && tmin <= st.Horizon() {
		nWin := int(st.Horizon() / tmin)
		type winInfo struct {
			idx   int
			slack tm.Time
			start tm.Time // earliest fitting start in the window, -1 if none
		}
		wins := make([]winInfo, 0, nWin)
		for w := 0; w < nWin; w++ {
			win := tm.Iv(tm.Time(w)*tmin, tm.Time(w+1)*tmin)
			info := winInfo{idx: w, start: -1}
			for _, g := range gaps {
				iv := g.Intersect(win)
				info.slack += iv.Len()
				// A process placed at iv.Start must fit in the gap g
				// (it may spill into the next window, which is fine).
				if info.start < 0 && !iv.Empty() && g.End-iv.Start >= wcet {
					info.start = iv.Start
				}
			}
			wins = append(wins, info)
		}
		sort.Slice(wins, func(i, j int) bool {
			if wins[i].slack != wins[j].slack {
				return wins[i].slack > wins[j].slack
			}
			return wins[i].idx < wins[j].idx
		})
		added := 0
		for _, w := range wins {
			if added >= k {
				break
			}
			if w.start >= 0 {
				add(w.start)
				added++
			}
		}
	}
	return offs
}

// msgCandidate is one message of the current design with its bus context:
// the hop (sender, bus) sitting in the most congested slot occurrence.
type msgCandidate struct {
	id     model.MsgID
	bytes  int
	sender model.NodeID
	bus    model.BusID
	free   int // free bytes left in its current slot occurrence
}

// msgCandidates returns the messages in the most congested slot
// occurrences: moving them out has the highest potential to recover
// contiguous bus slack. Every hop of a multi-hop occurrence competes;
// the candidate records the hop whose slot occurrence is fullest.
func msgCandidates(st *sched.State, app *model.Application, k int) []msgCandidate {
	seen := map[model.MsgID]msgCandidate{}
	for _, e := range st.MsgEntries() {
		if e.App != app.ID {
			continue
		}
		free := st.BusStateAt(int(e.Bus)).Free(e.Round, e.Slot)
		if cur, ok := seen[e.Msg]; !ok || free < cur.free {
			seen[e.Msg] = msgCandidate{id: e.Msg, bytes: e.Bytes, sender: e.Sender, bus: e.Bus, free: free}
		}
	}
	cands := make([]msgCandidate, 0, len(seen))
	for _, c := range seen {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].free != cands[j].free {
			return cands[i].free < cands[j].free
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// msgTargetOffsets enumerates alternative slot occurrences for a message,
// as slot-start offsets relative to the graph release: the emptiest slots
// of the sender's node on the candidate hop's bus, plus the ASAP position.
func msgTargetOffsets(st *sched.State, mc msgCandidate, period tm.Time, k int) []tm.Time {
	bus := st.BusStateAt(int(mc.bus))
	occs := bus.Occurrences()
	type occ struct {
		start tm.Time
		free  int
	}
	var cands []occ
	for _, o := range occs {
		if o.Owner == mc.sender && o.FreeBytes >= mc.bytes {
			cands = append(cands, occ{start: o.Start, free: o.FreeBytes})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].free != cands[j].free {
			return cands[i].free > cands[j].free
		}
		return cands[i].start < cands[j].start
	})
	offs := []tm.Time{0}
	seen := map[tm.Time]bool{0: true}
	for _, c := range cands {
		if len(offs) > k {
			break
		}
		off := c.start % period
		if !seen[off] {
			seen[off] = true
			offs = append(offs, off)
		}
	}
	return offs
}
