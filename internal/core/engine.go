package core

import (
	"context"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
)

// Engine is the shared evaluation machinery behind Solve: a bounded worker
// pool over cloned scheduler states, an evaluation memo keyed by the
// design decisions, and the progress/cancellation plumbing. Strategies
// receive one engine per Solve call and perform every candidate
// evaluation through it, which is what makes them parallel, cancellable,
// and observable without owning any of that logic themselves.
//
// An Engine is safe for concurrent use by the workers it spawns. Results
// are deterministic by construction: evaluation is a pure function of
// (problem, mapping, hints), so neither the worker count nor the cache
// state can change what a strategy computes — only how fast.
type Engine struct {
	p           *Problem
	parallelism int
	progress    func(Event)
	cache       *evalCache

	// scratch holds worker-local schedule states reused across
	// evaluations (CloneInto resets them), keeping the per-evaluation
	// allocation cost near zero.
	scratch sync.Pool

	evals atomic.Int64
	hits  atomic.Int64

	// procIDs and msgIDs of the current application in sorted order:
	// the canonical field order of the evaluation-memo key.
	procIDs []model.ProcID
	msgIDs  []model.MsgID

	mu sync.Mutex // serializes Progress callbacks
}

// newEngine assembles the engine for one Solve call. opts must already be
// resolved (non-nil strategy; parallelism and cache size may still carry
// their documented zero values, which are resolved here).
func newEngine(p *Problem, opts Options) *Engine {
	e := &Engine{
		p:           p,
		parallelism: opts.Parallelism,
		progress:    opts.Progress,
	}
	if e.parallelism <= 0 {
		e.parallelism = defaultParallelism()
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size > 0 {
		e.cache = &evalCache{max: size, m: make(map[string]cacheEntry)}
	}
	for _, g := range p.Current.Graphs {
		for _, pr := range g.Procs {
			e.procIDs = append(e.procIDs, pr.ID)
		}
		for _, m := range g.Msgs {
			e.msgIDs = append(e.msgIDs, m.ID)
		}
	}
	sort.Slice(e.procIDs, func(i, j int) bool { return e.procIDs[i] < e.procIDs[j] })
	sort.Slice(e.msgIDs, func(i, j int) bool { return e.msgIDs[i] < e.msgIDs[j] })
	return e
}

// Problem returns the problem instance being solved.
func (e *Engine) Problem() *Problem { return e.p }

// Parallelism returns the resolved worker count.
func (e *Engine) Parallelism() int { return e.parallelism }

// Evaluations returns the number of design alternatives examined so far.
func (e *Engine) Evaluations() int64 { return e.evals.Load() }

// CacheHits returns how many of those evaluations were served from the
// memo. The count is informational: concurrent workers may race to fill
// an entry, so it can vary across runs even though results never do.
func (e *Engine) CacheHits() int64 { return e.hits.Load() }

// count records n examined design alternatives that did not pass through
// Evaluate (the initial mapping, chiefly).
func (e *Engine) count(n int64) { e.evals.Add(n) }

// Emit delivers a progress event to the Solve caller's observer, filling
// in the cumulative counters. Callbacks are serialized; a nil observer
// makes Emit free.
func (e *Engine) Emit(ev Event) {
	if e.progress == nil {
		return
	}
	ev.Evaluations = e.evals.Load()
	ev.CacheHits = e.hits.Load()
	e.mu.Lock()
	e.progress(ev)
	e.mu.Unlock()
}

// Evaluate schedules the current application with the given design
// decisions on a worker-local clone of the frozen base and scores the
// result. It reports ok=false when the design is infeasible (requirement
// (a) rules it out). Identical (mapping, hints) pairs are served from the
// memo without rescheduling. Safe for concurrent use.
func (e *Engine) Evaluate(mapping model.Mapping, hints sched.Hints) (metrics.Report, bool) {
	e.evals.Add(1)
	var key string
	if e.cache != nil {
		key = e.evalKey(mapping, hints)
		if ent, ok := e.cache.get(key); ok {
			e.hits.Add(1)
			return ent.rep, ent.ok
		}
	}
	scr, _ := e.scratch.Get().(*sched.State)
	scr = e.p.Base.CloneInto(scr)
	var ent cacheEntry
	if err := scr.ScheduleApp(e.p.Current, mapping, hints); err == nil {
		ent = cacheEntry{rep: metrics.Evaluate(scr, e.p.Profile, e.p.Weights), ok: true}
	}
	e.scratch.Put(scr)
	if e.cache != nil {
		e.cache.put(key, ent)
	}
	return ent.rep, ent.ok
}

// Materialize rebuilds the full schedule state of a design alternative
// that Evaluate found feasible. Strategies call it once per accepted
// move, so the fan-out path never has to retain candidate states.
func (e *Engine) Materialize(mapping model.Mapping, hints sched.Hints) (*sched.State, metrics.Report, error) {
	return e.p.evaluate(mapping, hints)
}

// ForEach runs fn(0..n-1) across the engine's worker pool and returns
// when every started call has finished. Work is handed out dynamically;
// once ctx is cancelled no further indices are started (in-flight calls
// run to completion, so fn should check ctx itself when an item is
// long-running). No goroutines outlive the call.
func (e *Engine) ForEach(ctx context.Context, n int, fn func(i int)) {
	workers := e.parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && ctx.Err() == nil; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// evalKey encodes (mapping, hints) into the canonical memo key: for every
// process of the current application (ascending ID) its node and start
// hint, then for every message its start hint. Absent hints encode as -1.
// The key is exact — no hashing — so a memo hit can never return the
// report of a different design.
func (e *Engine) evalKey(mapping model.Mapping, hints sched.Hints) string {
	buf := make([]byte, 0, (2*len(e.procIDs)+len(e.msgIDs))*8)
	var b [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		buf = append(buf, b[:]...)
	}
	for _, id := range e.procIDs {
		put(int64(mapping[id]))
		if off, ok := hints.ProcStart[id]; ok {
			put(int64(off))
		} else {
			put(-1)
		}
	}
	for _, id := range e.msgIDs {
		if off, ok := hints.MsgStart[id]; ok {
			put(int64(off))
		} else {
			put(-1)
		}
	}
	return string(buf)
}

// cacheEntry is one memoized evaluation outcome.
type cacheEntry struct {
	rep metrics.Report
	ok  bool
}

// evalCache memoizes evaluation outcomes up to a fixed entry count.
// Insertion simply stops at capacity: strategies revisit recent designs
// (SA late in cooling, MH undo-moves), so keeping the earliest entries is
// close enough to LRU at a fraction of the bookkeeping.
type evalCache struct {
	mu  sync.RWMutex
	max int
	m   map[string]cacheEntry
}

func (c *evalCache) get(key string) (cacheEntry, bool) {
	c.mu.RLock()
	ent, ok := c.m[key]
	c.mu.RUnlock()
	return ent, ok
}

func (c *evalCache) put(key string, ent cacheEntry) {
	c.mu.Lock()
	if len(c.m) < c.max {
		c.m[key] = ent
	}
	c.mu.Unlock()
}
