package core

import (
	"context"
	"encoding/binary"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
	"incdes/internal/ttp"
)

// Engine is the shared evaluation machinery behind Solve: a bounded worker
// pool over cloned scheduler states, an evaluation memo keyed by the
// design decisions, and the progress/cancellation plumbing. Strategies
// receive one engine per Solve call and perform every candidate
// evaluation through it, which is what makes them parallel, cancellable,
// and observable without owning any of that logic themselves.
//
// An Engine is safe for concurrent use by the workers it spawns. Results
// are deterministic by construction: evaluation is a pure function of
// (problem, mapping, hints), so neither the worker count nor the cache
// state can change what a strategy computes — only how fast.
type Engine struct {
	p           *Problem
	parallelism int
	progress    func(Event)
	cache       *evalCache

	// opts is the resolved Options of the owning Solve call, kept so
	// composite strategies (the portfolio racer) can derive per-lane
	// option sets that inherit the caller's tuning.
	opts Options

	// scratch holds worker-local evaluation contexts reused across
	// evaluations, keeping the per-evaluation allocation cost near zero.
	// On the incremental path each context owns a private copy of the
	// frozen base, made once, that candidates are applied to and rolled
	// back from as transactions; on the full-rebuild path the context's
	// state is overwritten per evaluation with CloneInto. keys pools the
	// memo key buffers for the same reason: the cache-hit path must not
	// allocate at all.
	scratch sync.Pool
	keys    sync.Pool

	// incremental selects the transactional evaluation path; baseline
	// is the shared read-only metric-input cache behind it (nil when
	// incremental is off).
	incremental bool
	baseline    *metrics.Baseline

	evals atomic.Int64
	hits  atomic.Int64

	// Observability (see package obs). The instruments are resolved once
	// here and called unconditionally on the hot path; with no observer
	// attached every one of them is a nil no-op and tracer is nil, so the
	// layer costs one nil check per event — "free when off".
	observer    *obs.Observer
	tracer      obs.Tracer
	statsOn     bool
	cEvals      *obs.Counter
	cHits       *obs.Counter
	cMisses     *obs.Counter
	cInfeasible *obs.Counter
	tBusy       *obs.Timer
	schedStats  sched.Stats
	ttpStats    ttp.Stats

	// Transactional-evaluation instruments (nil no-ops without observer).
	cTxnApplies   *obs.Counter
	cTxnRollbacks *obs.Counter
	cTxnDirty     *obs.Counter
	cTxnIncr      *obs.Counter
	cTxnFull      *obs.Counter

	// procIDs and msgIDs of the current application in sorted order:
	// the canonical field order of the evaluation-memo key.
	procIDs []model.ProcID
	msgIDs  []model.MsgID

	mu sync.Mutex // serializes Progress callbacks
}

// keyBuf is a pooled evaluation-memo key buffer. Pooling a pointer (not
// the slice itself) keeps the sync.Pool round-trip allocation-free.
type keyBuf struct{ b []byte }

// newEngine assembles the engine for one Solve call. opts must already be
// resolved (non-nil strategy; parallelism and cache size may still carry
// their documented zero values, which are resolved here).
func newEngine(p *Problem, opts Options) *Engine {
	e := &Engine{
		p:           p,
		parallelism: opts.Parallelism,
		progress:    opts.Progress,
		opts:        opts,
		observer:    opts.Observer,
		incremental: opts.Incremental != IncrementalOff,
	}
	if e.incremental {
		if opts.Baseline != nil {
			e.baseline = opts.Baseline
		} else {
			e.baseline = metrics.NewBaseline(p.Base, p.Profile, p.Weights)
		}
	}
	if e.parallelism <= 0 {
		e.parallelism = defaultParallelism()
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	if size > 0 {
		e.cache = &evalCache{max: size, m: make(map[string]cacheEntry)}
	}
	reg := opts.Observer.Registry()
	if opts.Observer != nil {
		e.tracer = opts.Observer.Tracer
	}
	if reg != nil {
		e.statsOn = true
		e.cEvals = reg.Counter(obs.CtrEvaluations)
		e.cHits = reg.Counter(obs.CtrCacheHits)
		e.cMisses = reg.Counter(obs.CtrCacheMisses)
		e.cInfeasible = reg.Counter(obs.CtrInfeasible)
		e.tBusy = reg.Timer(obs.TmrWorkerBusy)
		e.cTxnApplies = reg.Counter(obs.CtrTxnApplies)
		e.cTxnRollbacks = reg.Counter(obs.CtrTxnRollbacks)
		e.cTxnDirty = reg.Counter(obs.CtrTxnDirty)
		e.cTxnIncr = reg.Counter(obs.CtrTxnIncremental)
		e.cTxnFull = reg.Counter(obs.CtrTxnFull)
		e.schedStats = sched.StatsFrom(reg)
		e.ttpStats = ttp.StatsFrom(reg)
		reg.Gauge(obs.GagWorkers).Set(int64(e.parallelism))
	}
	for _, g := range p.Current.Graphs {
		for _, pr := range g.Procs {
			e.procIDs = append(e.procIDs, pr.ID)
		}
		for _, m := range g.Msgs {
			e.msgIDs = append(e.msgIDs, m.ID)
		}
	}
	sort.Slice(e.procIDs, func(i, j int) bool { return e.procIDs[i] < e.procIDs[j] })
	sort.Slice(e.msgIDs, func(i, j int) bool { return e.msgIDs[i] < e.msgIDs[j] })
	return e
}

// Problem returns the problem instance being solved.
func (e *Engine) Problem() *Problem { return e.p }

// Parallelism returns the resolved worker count.
func (e *Engine) Parallelism() int { return e.parallelism }

// Evaluations returns the number of design alternatives examined so far.
func (e *Engine) Evaluations() int64 { return e.evals.Load() }

// CacheHits returns how many of those evaluations were served from the
// memo. The count is informational: concurrent workers may race to fill
// an entry, so it can vary across runs even though results never do.
func (e *Engine) CacheHits() int64 { return e.hits.Load() }

// Stats returns the registry of the Solve call's observer, nil when the
// call carries none. Strategies resolve their instruments from it once
// per run; a nil registry yields nil (no-op) instruments.
func (e *Engine) Stats() *obs.Registry { return e.observer.Registry() }

// Tracing reports whether a trace sink is attached, so emitters can skip
// building events entirely when tracing is off.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Trace delivers one structured event to the Solve call's trace sink.
// Free (a nil check) when no tracer is attached. Strategies must call it
// only from deterministic serialization points — never concurrently from
// workers — so the event stream is identical at every parallelism level.
func (e *Engine) Trace(ev obs.TraceEvent) {
	if e.tracer != nil {
		e.tracer.Trace(ev)
	}
}

// count records n examined design alternatives that did not pass through
// Evaluate (the initial mapping, chiefly).
func (e *Engine) count(n int64) {
	e.evals.Add(n)
	e.cEvals.Add(n)
}

// Emit delivers a progress event to the Solve caller's observer, filling
// in the cumulative counters. Callbacks are serialized; a nil observer
// makes Emit free.
func (e *Engine) Emit(ev Event) {
	if e.progress == nil {
		return
	}
	ev.Evaluations = e.evals.Load()
	ev.CacheHits = e.hits.Load()
	e.mu.Lock()
	e.progress(ev)
	e.mu.Unlock()
}

// evalScratch is one worker-local evaluation context. st is the
// worker's private schedule state; on the incremental path it is a copy
// of the frozen base made once at context creation (candidates apply and
// roll back as transactions, so it equals the base between evaluations),
// and inc is the worker's incremental metrics evaluator. On the
// full-rebuild path st is overwritten from the base per evaluation and
// inc stays nil.
type evalScratch struct {
	st  *sched.State
	inc *metrics.Incremental
}

// Evaluate schedules the current application with the given design
// decisions on a worker-local copy of the frozen base and scores the
// result. It reports ok=false when the design is infeasible (requirement
// (a) rules it out). Identical (mapping, hints) pairs are served from the
// memo without rescheduling. Safe for concurrent use.
//
// On the default incremental path the candidate is applied to the
// worker's base copy as an undo-logged transaction, scored from the
// touched regions only, and rolled back in O(delta) — the full-rebuild
// path (Options.Incremental == IncrementalOff) clones and rescores the
// whole state instead. Both produce byte-identical reports (pinned by
// differential tests).
//
// The memo-hit path performs zero allocations (pinned by a test): the key
// is built in a pooled buffer and looked up through Go's non-allocating
// map[string(bytes)] form.
func (e *Engine) Evaluate(mapping model.Mapping, hints sched.Hints) (metrics.Report, bool) {
	e.evals.Add(1)
	e.cEvals.Inc()
	var kb *keyBuf
	if e.cache != nil {
		kb, _ = e.keys.Get().(*keyBuf)
		if kb == nil {
			kb = &keyBuf{}
		}
		kb.b = e.appendKey(kb.b[:0], mapping, hints)
		if ent, ok := e.cache.get(kb.b); ok {
			e.hits.Add(1)
			e.cHits.Inc()
			e.keys.Put(kb)
			return ent.rep, ent.ok
		}
		e.cMisses.Inc()
	}
	var ent cacheEntry
	if e.incremental {
		ent = e.evaluateTxn(mapping, hints)
	} else {
		ent = e.evaluateRebuild(mapping, hints)
	}
	if e.cache != nil {
		e.cache.put(kb.b, ent)
		e.keys.Put(kb)
	}
	return ent.rep, ent.ok
}

// evaluateTxn is the transactional evaluation: Begin / Apply / score
// from dirty regions / Rollback on the worker's standing base copy.
func (e *Engine) evaluateTxn(mapping model.Mapping, hints sched.Hints) cacheEntry {
	scr, _ := e.scratch.Get().(*evalScratch)
	if scr == nil {
		scr = &evalScratch{st: e.p.Base.Clone(), inc: e.baseline.Evaluator()}
		if e.statsOn {
			scr.st.SetStats(e.schedStats)
			scr.st.SetBusStats(e.ttpStats)
		} else {
			// The base may carry instruments; a worker copy must not
			// report into them unless this Solve's observer asked for it.
			scr.st.SetStats(sched.Stats{})
			scr.st.SetBusStats(ttp.Stats{})
		}
	}
	txn := scr.st.Begin()
	e.cTxnApplies.Inc()
	var ent cacheEntry
	if err := txn.Apply(e.p.Current, mapping, hints); err == nil {
		rep, full := scr.inc.EvaluateTxn(scr.st, txn)
		if full {
			e.cTxnFull.Inc()
		} else {
			e.cTxnIncr.Inc()
		}
		ent = cacheEntry{rep: rep, ok: true}
	} else {
		e.cInfeasible.Inc()
	}
	e.cTxnDirty.Add(int64(txn.DirtyIntervals()))
	txn.Rollback()
	e.cTxnRollbacks.Inc()
	e.scratch.Put(scr)
	return ent
}

// evaluateRebuild is the pre-transactional evaluation: overwrite the
// worker state from the base and rebuild schedule and metrics from
// scratch.
func (e *Engine) evaluateRebuild(mapping model.Mapping, hints sched.Hints) cacheEntry {
	scr, _ := e.scratch.Get().(*evalScratch)
	if scr == nil {
		scr = &evalScratch{}
	}
	scr.st = e.p.Base.CloneInto(scr.st)
	if e.statsOn {
		// CloneInto preserves the destination's stats attachment, but a
		// fresh scratch state (first Get) starts uninstrumented; attaching
		// every time is two field assignments and keeps the invariant local.
		scr.st.SetStats(e.schedStats)
		scr.st.SetBusStats(e.ttpStats)
	}
	var ent cacheEntry
	if err := scr.st.ScheduleApp(e.p.Current, mapping, hints); err == nil {
		ent = cacheEntry{rep: metrics.Evaluate(scr.st, e.p.Profile, e.p.Weights), ok: true}
	} else {
		e.cInfeasible.Inc()
	}
	e.scratch.Put(scr)
	return ent
}

// Materialize rebuilds the full schedule state of a design alternative
// that Evaluate found feasible. Strategies call it once per accepted
// move, so the fan-out path never has to retain candidate states.
func (e *Engine) Materialize(mapping model.Mapping, hints sched.Hints) (*sched.State, metrics.Report, error) {
	return e.p.evaluate(mapping, hints)
}

// busyStart begins a worker busy-time measurement; the zero time means
// "not measuring" (no observer), so the timer never reads the clock when
// observability is off.
func (e *Engine) busyStart() time.Time {
	if e.tBusy == nil {
		return time.Time{}
	}
	return time.Now()
}

func (e *Engine) busyEnd(t0 time.Time) {
	if !t0.IsZero() {
		e.tBusy.Observe(time.Since(t0))
	}
}

// ForEach runs fn(0..n-1) across the engine's worker pool and returns
// when every started call has finished. Work is handed out dynamically;
// once ctx is cancelled no further indices are started (in-flight calls
// run to completion, so fn should check ctx itself when an item is
// long-running). No goroutines outlive the call.
//
// With an observer attached, each worker goroutine runs under pprof
// labels (incdes.worker=<index>) so CPU profiles attribute evaluation
// time to the pool, and its busy time accumulates in the
// core.worker_busy timer.
func (e *Engine) ForEach(ctx context.Context, n int, fn func(i int)) {
	workers := e.parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		t0 := e.busyStart()
		for i := 0; i < n && ctx.Err() == nil; i++ {
			fn(i)
		}
		e.busyEnd(t0)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work := func(ctx context.Context) {
				t0 := e.busyStart()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						break
					}
					fn(i)
				}
				e.busyEnd(t0)
			}
			if e.observer != nil {
				pprof.Do(ctx, pprof.Labels("incdes.worker", strconv.Itoa(w)), work)
			} else {
				work(ctx)
			}
		}(w)
	}
	wg.Wait()
}

// appendKey encodes (mapping, hints) into the canonical memo key,
// appending to buf: for every process of the current application
// (ascending ID) its node and start hint, then for every message its
// start hint. Absent hints encode as -1. The key is exact — no hashing —
// so a memo hit can never return the report of a different design.
func (e *Engine) appendKey(buf []byte, mapping model.Mapping, hints sched.Hints) []byte {
	for _, id := range e.procIDs {
		buf = appendI64(buf, int64(mapping[id]))
		if off, ok := hints.ProcStart[id]; ok {
			buf = appendI64(buf, int64(off))
		} else {
			buf = appendI64(buf, -1)
		}
	}
	for _, id := range e.msgIDs {
		if off, ok := hints.MsgStart[id]; ok {
			buf = appendI64(buf, int64(off))
		} else {
			buf = appendI64(buf, -1)
		}
	}
	return buf
}

func appendI64(buf []byte, v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return append(buf, b[:]...)
}

// cacheEntry is one memoized evaluation outcome.
type cacheEntry struct {
	rep metrics.Report
	ok  bool
}

// evalCache memoizes evaluation outcomes up to a fixed entry count.
// Insertion simply stops at capacity: strategies revisit recent designs
// (SA late in cooling, MH undo-moves), so keeping the earliest entries is
// close enough to LRU at a fraction of the bookkeeping.
type evalCache struct {
	mu  sync.RWMutex
	max int
	m   map[string]cacheEntry
}

// get looks key up without copying it: the map[string(bytes)] form is
// recognized by the compiler and does not allocate, which keeps the
// engine's memo-hit path allocation-free.
func (c *evalCache) get(key []byte) (cacheEntry, bool) {
	c.mu.RLock()
	ent, ok := c.m[string(key)]
	c.mu.RUnlock()
	return ent, ok
}

// put stores the outcome under a copy of key (insertion is the miss
// path, where one small allocation is immaterial next to a re-schedule).
func (c *evalCache) put(key []byte, ent cacheEntry) {
	c.mu.Lock()
	if len(c.m) < c.max {
		c.m[string(key)] = ent
	}
	c.mu.Unlock()
}
