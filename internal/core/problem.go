// Package core implements the paper's contribution: mapping and
// scheduling strategies for the incremental design process. Given a
// system whose existing applications are frozen in the schedule, a
// current application to place, and a characterization of the future
// applications, each strategy produces a mapping and schedule of the
// current application that
//
//	(a) meets every deadline without touching the existing applications
//	    (guaranteed by construction: strategies only add to a clone of
//	    the frozen base schedule), and
//	(b) scores well on the future-accommodation objective C of package
//	    metrics.
//
// Three strategies are provided, exactly as evaluated in the paper:
//
//   - AH: the initial mapping alone — the Heterogeneous Critical Path
//     list mapper optimizing only for performance. The baseline with
//     "little support for incremental design".
//   - MH: iterative improvement that examines only the design
//     transformations with the highest potential — moving a process into
//     a different slack on the same or a different processor, or moving
//     a message into a different slack on the bus.
//   - SA: simulated annealing over the same move set, run long enough to
//     serve as the near-optimal reference.
//
// All strategies run through the single entry point Solve, which adds
// parallel candidate evaluation, an evaluation memo, context
// cancellation with best-so-far results, and progress reporting:
//
//	sol, err := core.Solve(ctx, p, core.Options{Strategy: core.MH, Parallelism: 4})
//
// The pre-redesign entry points AdHoc, MappingHeuristic and Anneal
// remain as thin deprecated wrappers around Solve.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/obs"
	"incdes/internal/sched"
)

// ErrUnschedulable is wrapped by strategies when the current application
// admits no valid design under the frozen existing schedule.
var ErrUnschedulable = errors.New("core: current application is unschedulable")

// Problem is one incremental mapping instance.
type Problem struct {
	Sys     *model.System
	Base    *sched.State // existing applications, scheduled and frozen
	Current *model.Application
	Profile *future.Profile
	Weights metrics.Weights
}

// NewProblem validates and assembles a problem instance. The base state
// must have been built over sys (same hyperperiod); current must be one of
// sys.Apps and not already scheduled in base.
func NewProblem(sys *model.System, base *sched.State, current *model.Application,
	prof *future.Profile, w metrics.Weights) (*Problem, error) {

	if base.System() != sys {
		return nil, fmt.Errorf("core: base schedule belongs to a different system")
	}
	found := false
	for _, a := range sys.Apps {
		if a == current {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: current application %q is not part of the system", current.Name)
	}
	for _, g := range current.Graphs {
		for _, p := range g.Procs {
			if _, scheduled := base.Mapping()[p.ID]; scheduled {
				return nil, fmt.Errorf("core: process %d of the current application is already in the base schedule", p.ID)
			}
		}
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Problem{Sys: sys, Base: base, Current: current, Profile: prof, Weights: w}, nil
}

// Solution is the outcome of one strategy run.
type Solution struct {
	Strategy string
	Mapping  model.Mapping
	Hints    sched.Hints
	State    *sched.State // base + current, scheduled
	Report   metrics.Report
	Elapsed  time.Duration
	// Evaluations counts the design alternatives examined (each one is a
	// full re-schedule of the current application plus a metric
	// evaluation, unless served from the evaluation memo); it is the
	// strategy's cost measure alongside Elapsed.
	Evaluations int
	// CacheHits is how many of those evaluations the memo served without
	// rescheduling. Informational: it may vary between runs (workers race
	// to fill entries) even though the solution never does.
	CacheHits int
	// Interrupted reports that the Solve context was cancelled and the
	// solution is the best design found up to that point rather than the
	// strategy's natural result.
	Interrupted bool
}

// Objective returns the solution's objective value C.
func (s *Solution) Objective() float64 { return s.Report.Objective }

// evaluate schedules the current application on a clone of the base with
// the given design decisions and scores the result. It is the single
// evaluation primitive every strategy shares.
func (p *Problem) evaluate(mapping model.Mapping, hints sched.Hints) (*sched.State, metrics.Report, error) {
	st := p.Base.Clone()
	if err := st.ScheduleApp(p.Current, mapping, hints); err != nil {
		return nil, metrics.Report{}, err
	}
	return st, metrics.Evaluate(st, p.Profile, p.Weights), nil
}

// initial runs the Heterogeneous Critical Path initial mapping (IM) and
// returns the resulting design decisions and state.
func (p *Problem) initial(hints sched.Hints) (model.Mapping, *sched.State, error) {
	st := p.Base.Clone()
	mapping, err := st.MapApp(p.Current, hints)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrUnschedulable, err)
	}
	return mapping, st, nil
}

// ahStrategy is the AH baseline: construct the initial mapping and stop.
// It optimizes the current application's finish times and ignores the
// future.
type ahStrategy struct{}

func (ahStrategy) Name() string { return "AH" }

func (ahStrategy) Run(ctx context.Context, eng *Engine) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := eng.Problem()
	mapping, st, err := p.initial(sched.Hints{})
	if err != nil {
		return nil, err
	}
	eng.count(1)
	rep := metrics.Evaluate(st, p.Profile, p.Weights)
	eng.Trace(obs.TraceEvent{Kind: "init", Strategy: "AH", Cost: rep.Objective})
	eng.Trace(obs.TraceEvent{Kind: "decision", Strategy: "AH", Cost: rep.Objective})
	eng.Emit(Event{Strategy: "AH", BestObjective: rep.Objective})
	return &Solution{
		Strategy: "AH",
		Mapping:  mapping,
		Hints:    sched.Hints{},
		State:    st,
		Report:   rep,
	}, nil
}

// AdHoc runs the AH baseline.
//
// Deprecated: use Solve(ctx, p, Options{Strategy: AH}).
func AdHoc(p *Problem) (*Solution, error) {
	return Solve(context.Background(), p, Options{Strategy: AH, Parallelism: 1})
}
