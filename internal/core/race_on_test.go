//go:build race

package core

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions skip.
const raceEnabled = true
