package core_test

import (
	"testing"

	"incdes/internal/core"
	"incdes/internal/gen"
	"incdes/internal/metrics"
)

// multiclusterProblem builds a Problem over the generated 3-cluster
// family: three TDMA buses chained by two gateway nodes, a quarter of
// the processes pooled on a neighboring cluster so inter-cluster
// traffic actually exists.
func multiclusterProblem(t *testing.T, seed int64) *core.Problem {
	t.Helper()
	cfg := gen.Multicluster(3, 3, 0.25)
	cfg.GraphMinProcs = 4
	cfg.GraphMaxProcs = 10
	tc, err := gen.MakeTestCase(cfg, seed, 40, 20)
	if err != nil {
		t.Fatalf("MakeTestCase: %v", err)
	}
	if got := len(tc.Sys.Arch.Buses); got != 3 {
		t.Fatalf("generated %d buses, want 3", got)
	}
	p, err := core.NewProblem(tc.Sys, tc.Base, tc.Current, tc.Profile, metrics.DefaultWeights(tc.Profile))
	if err != nil {
		t.Fatalf("core.NewProblem: %v", err)
	}
	return p
}

// TestSolveDeterministicAcrossParallelismMulticluster extends the core
// determinism guarantee to multi-cluster platforms: with gateway
// forwarding in the evaluation path, the solution — report included —
// must still be identical whether candidates are evaluated by one
// worker or many.
func TestSolveDeterministicAcrossParallelismMulticluster(t *testing.T) {
	p := multiclusterProblem(t, 21)
	strategies := []struct {
		name  string
		strat core.Strategy
	}{
		{"MH", core.MHWith(core.MHOptions{MaxIterations: 8})},
		{"SA", core.SAWith(core.SAOptions{Seed: 3, Iterations: 400, Restarts: 3})},
	}
	for _, s := range strategies {
		t.Run(s.name, func(t *testing.T) {
			ref := runSolve(t, p, core.Options{Strategy: s.strat, Parallelism: 1})
			for _, par := range []int{4} {
				got := runSolve(t, p, core.Options{Strategy: s.strat, Parallelism: par})
				sameDesign(t, s.name, ref, got)
			}
		})
	}
}
