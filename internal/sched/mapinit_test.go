package sched

import (
	"testing"

	"incdes/internal/model"
	"incdes/internal/tm"
)

func TestMapAppPicksFasterNode(t *testing.T) {
	var p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 50, n1: 20})
	})
	st := mustState(t, sys)
	mapping, err := st.MapApp(sys.Apps[0], Hints{})
	if err != nil {
		t.Fatalf("MapApp: %v", err)
	}
	if mapping[p] != 1 {
		t.Errorf("mapped to node %d, want 1 (WCET 20 vs 50)", mapping[p])
	}
}

func TestMapAppBalancesIndependentLoad(t *testing.T) {
	var ps []model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		for i := 0; i < 4; i++ {
			ps = append(ps, g.UniformProc("P", 40))
		}
	})
	st := mustState(t, sys)
	mapping, err := st.MapApp(sys.Apps[0], Hints{})
	if err != nil {
		t.Fatalf("MapApp: %v", err)
	}
	// Four independent 40-tu processes in a 100-tu period only fit 2+2.
	count := map[model.NodeID]int{}
	for _, p := range ps {
		count[mapping[p]]++
	}
	if count[0] != 2 || count[1] != 2 {
		t.Errorf("load split = %v, want 2+2", count)
	}
}

func TestMapAppAvoidsOccupiedNode(t *testing.T) {
	var pa, pb model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		ga := b.App("existing").Graph("G1", 100, 100)
		pa = ga.Proc("A", map[model.NodeID]tm.Time{n0: 90})
		gb := b.App("current").Graph("G2", 100, 100)
		pb = gb.UniformProc("B", 50)
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{pa: 0}, Hints{}); err != nil {
		t.Fatal(err)
	}
	mapping, err := st.MapApp(sys.Apps[1], Hints{})
	if err != nil {
		t.Fatalf("MapApp: %v", err)
	}
	if mapping[pb] != 1 {
		t.Errorf("B mapped to node %d, want 1 (node 0 is 90%% occupied)", mapping[pb])
	}
}

func TestMapAppWeighsCommunication(t *testing.T) {
	// P1 fixed on node 0; P2 slightly slower on node 0 but co-location
	// avoids a bus round trip, so node 0 should win.
	var p1, p2 model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 200, 200)
		p1 = g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
		p2 = g.Proc("P2", map[model.NodeID]tm.Time{n0: 14, n1: 10})
		g.Msg(p1, p2, 4)
	})
	st := mustState(t, sys)
	mapping, err := st.MapApp(sys.Apps[0], Hints{})
	if err != nil {
		t.Fatalf("MapApp: %v", err)
	}
	if mapping[p2] != 0 {
		t.Errorf("P2 mapped to node %d, want 0: finish on node 0 is 24, via bus 40", mapping[p2])
	}
}

func TestMapAppFailsWhenOverloaded(t *testing.T) {
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		for i := 0; i < 5; i++ {
			g.UniformProc("P", 60) // 300 tu of work, 200 tu of capacity
		}
	})
	st := mustState(t, sys)
	if _, err := st.MapApp(sys.Apps[0], Hints{}); err == nil {
		t.Error("overload not detected")
	}
}

func TestMapAppConsistentAcrossOccurrences(t *testing.T) {
	var p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p = g.UniformProc("P", 10)
		g2 := b.App("b").Graph("H", 400, 400)
		g2.Proc("Q", map[model.NodeID]tm.Time{n1: 10})
	})
	st := mustState(t, sys)
	mapping, err := st.MapApp(sys.Apps[0], Hints{})
	if err != nil {
		t.Fatal(err)
	}
	// All 4 occurrences must run on the same node.
	for _, e := range st.ProcEntries() {
		if e.Proc == p && e.Node != mapping[p] {
			t.Errorf("occ %d on node %d, mapping says %d", e.Occ, e.Node, mapping[p])
		}
	}
	if got := len(st.ProcEntries()); got != 4 {
		t.Errorf("%d entries, want 4", got)
	}
}

func TestPrioritiesDecreaseAlongEdges(t *testing.T) {
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 200, 200)
		p1 := g.UniformProc("P1", 20)
		p2 := g.UniformProc("P2", 30)
		p3 := g.UniformProc("P3", 25)
		p4 := g.UniformProc("P4", 20)
		g.Msg(p1, p2, 4)
		g.Msg(p1, p3, 4)
		g.Msg(p2, p4, 4)
		g.Msg(p3, p4, 4)
	})
	g := sys.Apps[0].Graphs[0]
	prio := Priorities(g, sys.Arch.Buses[0])
	for _, m := range g.Msgs {
		if prio[m.Src] <= prio[m.Dst] {
			t.Errorf("priority(%d)=%v not greater than priority(%d)=%v",
				m.Src, prio[m.Src], m.Dst, prio[m.Dst])
		}
	}
}

func TestPrioritiesChainValue(t *testing.T) {
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 200, 200)
		p1 := g.UniformProc("P1", 20)
		p2 := g.UniformProc("P2", 30)
		g.Msg(p1, p2, 4)
	})
	g := sys.Apps[0].Graphs[0]
	prio := Priorities(g, sys.Arch.Buses[0])
	// CommEstimate = 4 bytes * 1 tu + round(20)/2 = 14.
	// prio(P2) = 30; prio(P1) = 20 + 14 + 30 = 64.
	if prio[g.Procs[1].ID] != 30 {
		t.Errorf("prio(P2) = %v, want 30", prio[g.Procs[1].ID])
	}
	if prio[g.Procs[0].ID] != 64 {
		t.Errorf("prio(P1) = %v, want 64", prio[g.Procs[0].ID])
	}
	if got := CriticalPathLen(g, sys.Arch.Buses[0]); got != 64 {
		t.Errorf("CriticalPathLen = %v, want 64", got)
	}
}
