package sched

import (
	"bytes"
	"testing"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// txnSys builds a two-node system with one frozen application "a" and a
// current application "b" whose processes can run on either node and
// exchange one message.
func txnSys(t *testing.T) (sys *model.System, mapA, mapB model.Mapping) {
	t.Helper()
	var ap, bp, bc model.ProcID
	sys = buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		ga := b.App("a").Graph("GA", 200, 200)
		ap = ga.Proc("AP", map[model.NodeID]tm.Time{n0: 20, n1: 20})
		gb := b.App("b").Graph("GB", 200, 200)
		bp = gb.Proc("BP", map[model.NodeID]tm.Time{n0: 10, n1: 10})
		bc = gb.Proc("BC", map[model.NodeID]tm.Time{n0: 10, n1: 10})
		gb.Msg(bp, bc, 4)
	})
	return sys, model.Mapping{ap: 0}, model.Mapping{bp: 0, bc: 1}
}

// txnBase returns a state with the frozen application already scheduled.
func txnBase(t *testing.T) (*State, *model.System, model.Mapping) {
	t.Helper()
	sys, mapA, mapB := txnSys(t)
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], mapA, Hints{}); err != nil {
		t.Fatalf("scheduling frozen app: %v", err)
	}
	return st, sys, mapB
}

func TestTxnCommitMatchesScheduleApp(t *testing.T) {
	st, sys, mapB := txnBase(t)
	ref := st.Clone()
	if err := ref.ScheduleApp(sys.Apps[1], mapB, Hints{}); err != nil {
		t.Fatalf("reference ScheduleApp: %v", err)
	}

	txn := st.Begin()
	if err := txn.Apply(sys.Apps[1], mapB, Hints{}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	txn.Commit()
	if !bytes.Equal(st.Fingerprint(), ref.Fingerprint()) {
		t.Errorf("committed transaction differs from plain ScheduleApp:\ntxn:\n%s\nref:\n%s",
			st.Fingerprint(), ref.Fingerprint())
	}
}

func TestTxnRollbackRestoresExactState(t *testing.T) {
	st, sys, mapB := txnBase(t)
	pre := append([]byte(nil), st.Fingerprint()...)

	txn := st.Begin()
	if err := txn.Apply(sys.Apps[1], mapB, Hints{}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if bytes.Equal(st.Fingerprint(), pre) {
		t.Fatal("Apply left no trace in the state; the test proves nothing")
	}
	txn.Rollback()
	if got := st.Fingerprint(); !bytes.Equal(got, pre) {
		t.Errorf("rollback did not restore the state:\npre:\n%s\npost:\n%s", pre, got)
	}

	// The state stays fully usable: the same transaction storage is
	// reused by the next Begin and commits cleanly.
	txn = st.Begin()
	if err := txn.Apply(sys.Apps[1], mapB, Hints{}); err != nil {
		t.Fatalf("Apply after rollback: %v", err)
	}
	txn.Commit()
}

func TestTxnRollbackAfterFailedApply(t *testing.T) {
	// A chain whose second process cannot meet the deadline: Apply fails
	// after partial placements, Rollback must still restore everything.
	var p, c model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 60})
		c = g.Proc("C", map[model.NodeID]tm.Time{n1: 60})
		g.Msg(p, c, 4)
	})
	st := mustState(t, sys)
	pre := append([]byte(nil), st.Fingerprint()...)

	txn := st.Begin()
	if err := txn.Apply(sys.Apps[0], model.Mapping{p: 0, c: 1}, Hints{}); err == nil {
		t.Fatal("Apply succeeded; the case was meant to be unschedulable")
	}
	txn.Rollback()
	if got := st.Fingerprint(); !bytes.Equal(got, pre) {
		t.Errorf("rollback after failed Apply did not restore the state:\npre:\n%s\npost:\n%s", pre, got)
	}
}

func TestTxnDirtyTracking(t *testing.T) {
	st, sys, mapB := txnBase(t)
	txn := st.Begin()
	defer txn.Rollback()
	if err := txn.Apply(sys.Apps[1], mapB, Hints{}); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	if !txn.DirtyNode(0) || !txn.DirtyNode(1) {
		t.Errorf("both nodes got a process, both must be dirty: %v", txn.DirtyNodes())
	}
	if got := txn.DirtyNodes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("DirtyNodes() = %v, want [0 1] ascending", got)
	}
	if txn.DirtyNodeCount() != 2 {
		t.Errorf("DirtyNodeCount() = %d, want 2", txn.DirtyNodeCount())
	}
	if len(txn.BusDeltas()) == 0 {
		t.Error("the applied app sends a message; BusDeltas must record its reservation")
	}
	if got, want := txn.DirtyIntervals(), 2+len(txn.BusDeltas()); got != want {
		t.Errorf("DirtyIntervals() = %d, want %d (2 busy inserts + bus deltas)", got, want)
	}
}

func TestTxnMisusePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}

	st, sys, mapB := txnBase(t)
	txn := st.Begin()
	expectPanic("double Begin", func() { st.Begin() })
	txn.Rollback()
	expectPanic("Rollback on closed txn", func() { txn.Rollback() })
	expectPanic("Commit on closed txn", func() { txn.Commit() })
	expectPanic("Apply on closed txn", func() { _ = txn.Apply(sys.Apps[1], mapB, Hints{}) })
}

// TestCloneIntoDoesNotAlias pins the contract the transactional engine
// leans on: a clone produced by CloneInto shares no ledger rows or
// interval slices with its source, so mutating either side never leaks
// into the other.
func TestCloneIntoDoesNotAlias(t *testing.T) {
	src, sys, mapB := txnBase(t)
	pre := append([]byte(nil), src.Fingerprint()...)

	dst := src.CloneInto(mustState(t, sys))
	if !bytes.Equal(dst.Fingerprint(), pre) {
		t.Fatal("CloneInto did not produce an identical state")
	}

	// Structural distinctness: per-node interval sets and the bus ledger
	// are separate objects, not shared pointers.
	for _, n := range sys.Arch.NodeIDs() {
		if src.busy[n] == dst.busy[n] {
			t.Fatalf("node %d interval set shared between source and clone", n)
		}
	}
	for bi := range src.buses {
		if src.buses[bi] == dst.buses[bi] {
			t.Fatalf("bus %d ledger shared between source and clone", bi)
		}
	}

	// Mutating the clone (scheduling another app touches busy sets, the
	// bus ledger, entry slices, and all bookkeeping maps) must leave the
	// source byte-identical.
	if err := dst.ScheduleApp(sys.Apps[1], mapB, Hints{}); err != nil {
		t.Fatalf("mutating clone: %v", err)
	}
	if got := src.Fingerprint(); !bytes.Equal(got, pre) {
		t.Errorf("mutating the clone changed the source:\npre:\n%s\npost:\n%s", pre, got)
	}

	// And the reverse: mutating the source must leave the clone alone.
	post := append([]byte(nil), dst.Fingerprint()...)
	if err := src.ScheduleApp(sys.Apps[1], mapB, Hints{}); err != nil {
		t.Fatalf("mutating source: %v", err)
	}
	if got := dst.Fingerprint(); !bytes.Equal(got, post) {
		t.Error("mutating the source changed the clone")
	}
}
