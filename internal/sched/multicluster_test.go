package sched_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/sched"
)

// TestScheduleInvariantsMulticluster extends the property suite to
// multi-cluster platforms: across generated 2- and 3-cluster systems,
// mapping the current application must keep every single-bus invariant
// per bus (ownership, slot timing, per-bus ledgers — no cross-bus slot
// aliasing) and additionally respect store-and-forward routing: every
// message follows its architecture route hop by hop, each gateway hop
// leaves only after the previous hop arrived, and the frozen base's
// entries survive byte-identically.
func TestScheduleInvariantsMulticluster(t *testing.T) {
	for _, clusters := range []int{2, 3} {
		cfg := gen.Multicluster(clusters, 3, 0.3)
		cfg.GraphMinProcs = 4
		cfg.GraphMaxProcs = 10
		for seed := int64(1); seed <= 4; seed++ {
			clusters, seed := clusters, seed
			t.Run(fmt.Sprintf("clusters=%d/seed=%d", clusters, seed), func(t *testing.T) {
				tc, err := gen.MakeTestCase(cfg, seed, 30, 15)
				if err != nil {
					t.Fatalf("generating test case: %v", err)
				}
				if got := len(tc.Sys.Arch.Buses); got != clusters {
					t.Fatalf("generated %d buses, want %d", got, clusters)
				}
				if got := len(tc.Sys.Arch.Gateways()); got != clusters-1 {
					t.Fatalf("generated %d gateways, want %d", got, clusters-1)
				}
				st := tc.Base.Clone()
				baseProcs := append([]sched.ProcEntry(nil), st.ProcEntries()...)
				baseMsgs := append([]sched.MsgEntry(nil), st.MsgEntries()...)

				if _, err := st.MapApp(tc.Current, sched.Hints{}); err != nil {
					t.Fatalf("mapping current application: %v", err)
				}

				checkNoNodeOverlap(t, st)
				checkMsgSlotOwnership(t, st)
				checkSlotCapacity(t, st)
				checkGatewayForwarding(t, st)

				procs, msgs := st.ProcEntries(), st.MsgEntries()
				if !reflect.DeepEqual(baseProcs, procs[:len(baseProcs)]) {
					t.Error("existing applications' process entries changed while mapping the current application")
				}
				if !reflect.DeepEqual(baseMsgs, msgs[:len(baseMsgs)]) {
					t.Error("existing applications' message entries changed while mapping the current application")
				}
			})
		}
	}
}

// checkGatewayForwarding verifies the hop chains: every (msg, occ) group
// of entries follows the architecture's deterministic route exactly —
// same buses, same endpoints, contiguous hop numbers — and each hop
// transmits only after the previous hop's frame arrived (store and
// forward; a gateway cannot forward what it has not received).
func checkGatewayForwarding(t *testing.T, st *sched.State) {
	t.Helper()
	routes, err := model.BuildRoutes(st.System().Arch)
	if err != nil {
		t.Fatalf("building route oracle: %v", err)
	}
	type key struct {
		msg model.MsgID
		occ int
	}
	chains := map[key][]sched.MsgEntry{}
	for _, e := range st.MsgEntries() {
		k := key{e.Msg, e.Occ}
		chains[k] = append(chains[k], e)
	}
	for k, chain := range chains {
		sort.Slice(chain, func(i, j int) bool { return chain[i].Hop < chain[j].Hop })
		route := routes.Route(chain[0].Sender, chain[len(chain)-1].Receiver)
		if len(route) != len(chain) {
			t.Errorf("msg %d occ %d: %d hops scheduled, route has %d", k.msg, k.occ, len(chain), len(route))
			continue
		}
		for i, e := range chain {
			if e.Hop != i {
				t.Errorf("msg %d occ %d: hop numbers not contiguous (%d at position %d)", k.msg, k.occ, e.Hop, i)
			}
			if e.Bus != route[i].Bus || e.Sender != route[i].From || e.Receiver != route[i].To {
				t.Errorf("msg %d occ %d hop %d: scheduled bus %d %d->%d, route says bus %d %d->%d",
					k.msg, k.occ, i, e.Bus, e.Sender, e.Receiver, route[i].Bus, route[i].From, route[i].To)
			}
			if i > 0 {
				prev := chain[i-1]
				if e.Ready != prev.Arrive {
					t.Errorf("msg %d occ %d hop %d: ready %v, previous hop arrives %v (store-and-forward chain broken)",
						k.msg, k.occ, i, e.Ready, prev.Arrive)
				}
				if e.Start < prev.Arrive {
					t.Errorf("msg %d occ %d hop %d: transmits at %v before previous hop arrived at %v",
						k.msg, k.occ, i, e.Start, prev.Arrive)
				}
			}
		}
	}
}

// TestMulticlusterDeterministicAcrossClones pins that multi-cluster
// scheduling is a pure function of the input: two independent solves of
// the same generated case produce byte-identical schedule fingerprints.
func TestMulticlusterDeterministicAcrossClones(t *testing.T) {
	cfg := gen.Multicluster(2, 3, 0.3)
	cfg.GraphMinProcs = 4
	cfg.GraphMaxProcs = 8
	tc, err := gen.MakeTestCase(cfg, 7, 20, 10)
	if err != nil {
		t.Fatalf("generating test case: %v", err)
	}
	a := tc.Base.Clone()
	b := tc.Base.Clone()
	if _, err := a.MapApp(tc.Current, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.MapApp(tc.Current, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Fingerprint(), b.Fingerprint()) {
		t.Error("two identical multi-cluster solves produced different fingerprints")
	}
}
