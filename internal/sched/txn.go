package sched

import (
	"fmt"
	"sort"

	"incdes/internal/model"
	"incdes/internal/tm"
	"incdes/internal/ttp"
)

// Txn is an in-place, undo-logged modification of a State: the
// transactional evaluation primitive behind the engine's incremental
// candidate path. A transaction opens with State.Begin, applies one or
// more candidate placements with Apply (the undo-logged form of
// ScheduleApp), and ends with either Commit (keep the placements,
// discard the log) or Rollback (restore the exact pre-Begin state in
// O(delta): inserted busy intervals are removed, bus reservations
// released, appended schedule entries truncated, and overwritten map
// entries restored from the log).
//
// While a transaction is open the state must not be cloned, copied into,
// or modified outside Apply. A state carries at most one transaction;
// Begin reuses the previous transaction's storage, so the steady-state
// cost of a Begin/Apply/Rollback cycle is allocation-free.
//
// The transaction also tracks the delta's footprint — which node
// timelines gained intervals and which TDMA slot occurrences gained
// reservations — which is what lets the incremental metrics evaluator
// (package metrics) rescore only the touched regions. The design cost of
// an applied transaction is computed there (metrics sits above sched in
// the layering), via Baseline.Evaluator and Incremental.EvaluateTxn.
type Txn struct {
	st   *State
	open bool

	// Undo log. procsLen/msgsLen snapshot the append-only entry slices;
	// everything else records individual reversible writes in order.
	// bus holds one journal per TDMA bus (index == BusID).
	procsLen, msgsLen int
	busy              []busyInsert
	bus               []ttp.Journal
	jobs              []jobUndo
	maps              []mapUndo

	// dirty is the set of nodes whose busy timeline changed.
	dirty map[model.NodeID]struct{}
}

// busyInsert records one interval inserted into a node's busy set.
// Insert only ever adds exactly the interval (merging with neighbors),
// so Remove of the same interval restores the set exactly.
type busyInsert struct {
	node model.NodeID
	iv   tm.Interval
}

// jobUndo records a jobEnd/jobNode write with the prior values, so a
// rollback restores overwritten entries (the same job can be re-placed
// when Apply is called twice in one transaction) and deletes fresh ones.
type jobUndo struct {
	job      Job
	had      bool
	prevEnd  tm.Time
	prevNode model.NodeID
}

// mapUndo records a mapping write with the prior binding.
type mapUndo struct {
	proc model.ProcID
	had  bool
	prev model.NodeID
}

// Begin opens a transaction on the state. The returned transaction is
// owned by the state and reused across Begin calls; it panics if a
// transaction is already open.
func (s *State) Begin() *Txn {
	if s.txn != nil && s.txn.open {
		panic("sched: Begin with a transaction already open")
	}
	if s.txn == nil {
		s.txn = &Txn{st: s, dirty: make(map[model.NodeID]struct{})}
	}
	t := s.txn
	t.open = true
	t.procsLen, t.msgsLen = len(s.procs), len(s.msgs)
	t.busy = t.busy[:0]
	if len(t.bus) != len(s.buses) {
		t.bus = make([]ttp.Journal, len(s.buses))
	}
	for i := range t.bus {
		t.bus[i].Reset()
	}
	t.jobs = t.jobs[:0]
	t.maps = t.maps[:0]
	clear(t.dirty)
	return t
}

// tx returns the state's open transaction, nil when none is open: the
// one nil check the scheduling hot path pays for undo logging.
func (s *State) tx() *Txn {
	if s.txn != nil && s.txn.open {
		return s.txn
	}
	return nil
}

// Apply schedules app into the state under the transaction, recording
// every write in the undo log. It is ScheduleApp with rollback support:
// on error the state holds the partial placements of the failed attempt,
// and Rollback removes them together with everything else applied since
// Begin.
func (t *Txn) Apply(app *model.Application, mapping model.Mapping, hints Hints) error {
	if !t.open {
		panic("sched: Apply on a closed transaction")
	}
	return t.st.ScheduleApp(app, mapping, hints)
}

// Commit keeps every applied placement and closes the transaction,
// discarding the undo log.
func (t *Txn) Commit() {
	if !t.open {
		panic("sched: Commit on a closed transaction")
	}
	t.open = false
}

// Rollback restores the exact pre-Begin state and closes the
// transaction. The cost is proportional to the applied delta, not to the
// size of the schedule: each inserted busy interval is removed, each bus
// reservation released (newest first), the entry slices are truncated,
// and each overwritten job/mapping entry is restored in reverse order.
func (t *Txn) Rollback() {
	if !t.open {
		panic("sched: Rollback on a closed transaction")
	}
	s := t.st
	for i := len(t.busy) - 1; i >= 0; i-- {
		u := t.busy[i]
		s.busy[u.node].Remove(u.iv)
	}
	for i := range t.bus {
		s.buses[i].Revert(&t.bus[i])
	}
	s.procs = s.procs[:t.procsLen]
	s.msgs = s.msgs[:t.msgsLen]
	for i := len(t.jobs) - 1; i >= 0; i-- {
		u := t.jobs[i]
		if u.had {
			s.jobEnd[u.job] = u.prevEnd
			s.jobNode[u.job] = u.prevNode
		} else {
			delete(s.jobEnd, u.job)
			delete(s.jobNode, u.job)
		}
	}
	for i := len(t.maps) - 1; i >= 0; i-- {
		u := t.maps[i]
		if u.had {
			s.mapping[u.proc] = u.prev
		} else {
			delete(s.mapping, u.proc)
		}
	}
	t.open = false
}

// recordBusy logs one inserted busy interval and marks its node dirty.
func (t *Txn) recordBusy(node model.NodeID, iv tm.Interval) {
	t.busy = append(t.busy, busyInsert{node: node, iv: iv})
	t.dirty[node] = struct{}{}
}

// recordJob logs the prior jobEnd/jobNode entry of j before it is set.
func (t *Txn) recordJob(j Job) {
	prevEnd, had := t.st.jobEnd[j]
	t.jobs = append(t.jobs, jobUndo{job: j, had: had, prevEnd: prevEnd, prevNode: t.st.jobNode[j]})
}

// recordMap logs the prior mapping of p before it is overwritten.
func (t *Txn) recordMap(p model.ProcID) {
	prev, had := t.st.mapping[p]
	t.maps = append(t.maps, mapUndo{proc: p, had: had, prev: prev})
}

// DirtyNode reports whether the transaction changed node n's timeline.
func (t *Txn) DirtyNode(n model.NodeID) bool {
	_, ok := t.dirty[n]
	return ok
}

// DirtyNodeCount returns how many node timelines the transaction
// changed.
func (t *Txn) DirtyNodeCount() int { return len(t.dirty) }

// DirtyNodes returns the changed nodes in ascending order.
func (t *Txn) DirtyNodes() []model.NodeID {
	out := make([]model.NodeID, 0, len(t.dirty))
	for n := range t.dirty {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BusDeltas returns the recorded slot reservations of the first bus in
// record order (do not modify): the dirty slot occurrences of a
// single-bus transaction. Multi-bus consumers use BusDeltasAt per bus.
func (t *Txn) BusDeltas() []ttp.Delta { return t.bus[0].Deltas() }

// BusDeltasAt returns bus i's recorded slot reservations in record order
// (do not modify).
func (t *Txn) BusDeltasAt(i int) []ttp.Delta { return t.bus[i].Deltas() }

// DirtyIntervals returns the total number of touched intervals — busy
// insertions plus bus reservation deltas over every bus — the size
// measure the core.txn_dirty_intervals counter accumulates.
func (t *Txn) DirtyIntervals() int {
	n := len(t.busy)
	for i := range t.bus {
		n += t.bus[i].Len()
	}
	return n
}

// Fingerprint serializes the state's full schedule content — busy
// timelines, bus ledger, schedule tables, job bookkeeping and mapping —
// into a deterministic byte string. Two states with equal fingerprints
// are indistinguishable to every consumer (scheduling, slack analysis,
// metrics); the transaction tests compare fingerprints around a
// Begin/Apply/Rollback cycle to pin exact restoration.
func (s *State) Fingerprint() []byte {
	var b []byte
	b = fmt.Appendf(b, "horizon=%d\n", s.horizon)
	for _, n := range s.sys.Arch.NodeIDs() {
		b = fmt.Appendf(b, "busy[%d]=%v\n", n, s.busy[n].Intervals())
	}
	for bi, bst := range s.buses {
		for r := 0; r < bst.Rounds(); r++ {
			for sl := 0; sl < bst.Bus().NumSlots(); sl++ {
				if u := bst.Used(r, sl); u != 0 {
					// Bus 0 keeps the historical single-bus key so every
					// pre-multi-cluster fingerprint stays byte-identical.
					if bi == 0 {
						b = fmt.Appendf(b, "bus[%d,%d]=%d\n", r, sl, u)
					} else {
						b = fmt.Appendf(b, "bus%d[%d,%d]=%d\n", bi, r, sl, u)
					}
				}
			}
		}
	}
	for _, e := range s.procs {
		b = fmt.Appendf(b, "proc=%+v\n", e)
	}
	for _, m := range s.msgs {
		// The explicit layout reproduces the historical %+v rendering of
		// the pre-multi-cluster MsgEntry; Bus/Hop are appended only when
		// set, so single-bus fingerprints keep their exact bytes.
		b = fmt.Appendf(b, "msg={App:%d Graph:%d Msg:%d Occ:%d Round:%d Slot:%d Bytes:%d Sender:%d Receiver:%d Ready:%v Start:%v Arrive:%v}",
			m.App, m.Graph, m.Msg, m.Occ, m.Round, m.Slot, m.Bytes, m.Sender, m.Receiver, m.Ready, m.Start, m.Arrive)
		if m.Bus != 0 || m.Hop != 0 {
			b = fmt.Appendf(b, " bus=%d hop=%d", m.Bus, m.Hop)
		}
		b = append(b, '\n')
	}
	jobs := make([]Job, 0, len(s.jobEnd))
	for j := range s.jobEnd {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].Proc != jobs[j].Proc {
			return jobs[i].Proc < jobs[j].Proc
		}
		return jobs[i].Occ < jobs[j].Occ
	})
	for _, j := range jobs {
		b = fmt.Appendf(b, "job=%+v end=%d node=%d\n", j, s.jobEnd[j], s.jobNode[j])
	}
	procs := make([]model.ProcID, 0, len(s.mapping))
	for p := range s.mapping {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		b = fmt.Appendf(b, "map[%d]=%d\n", p, s.mapping[p])
	}
	return b
}
