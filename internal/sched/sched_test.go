package sched

import (
	"testing"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// buildSys assembles a two-node system whose bus round is 20 tu:
// slot order (N0, N1), 8 bytes per slot, 1 tu per byte, 2 tu overhead.
// The configure callback adds applications.
func buildSys(t *testing.T, configure func(b *model.Builder, n0, n1 model.NodeID)) *model.System {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2)
	configure(b, n0, n1)
	sys, err := b.System()
	if err != nil {
		t.Fatalf("building system: %v", err)
	}
	return sys
}

func mustState(t *testing.T, sys *model.System) *State {
	t.Helper()
	st, err := NewState(sys)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	return st
}

func TestScheduleSingleProcess(t *testing.T) {
	var p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 30})
	})
	st := mustState(t, sys)
	if st.Horizon() != 100 {
		t.Fatalf("horizon = %v, want 100", st.Horizon())
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p: 0}, Hints{}); err != nil {
		t.Fatalf("ScheduleApp: %v", err)
	}
	entries := st.ProcEntries()
	if len(entries) != 1 {
		t.Fatalf("%d proc entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Start != 0 || e.End != 30 || e.Node != 0 {
		t.Errorf("entry = %+v, want start 0 end 30 node 0", e)
	}
	if len(st.MsgEntries()) != 0 {
		t.Errorf("unexpected bus traffic: %v", st.MsgEntries())
	}
}

func TestScheduleChainSameNode(t *testing.T) {
	var p1, p2 model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p1 = g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
		p2 = g.Proc("P2", map[model.NodeID]tm.Time{n0: 15})
		g.Msg(p1, p2, 4)
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: 0, p2: 0}, Hints{}); err != nil {
		t.Fatalf("ScheduleApp: %v", err)
	}
	if len(st.MsgEntries()) != 0 {
		t.Error("co-located processes used the bus")
	}
	ends := map[model.ProcID]tm.Time{}
	starts := map[model.ProcID]tm.Time{}
	for _, e := range st.ProcEntries() {
		ends[e.Proc] = e.End
		starts[e.Proc] = e.Start
	}
	if starts[p2] < ends[p1] {
		t.Errorf("P2 starts at %v before P1 ends at %v", starts[p2], ends[p1])
	}
	if starts[p2] != 10 || ends[p2] != 25 {
		t.Errorf("P2 = [%v,%v), want [10,25)", starts[p2], ends[p2])
	}
}

func TestScheduleChainAcrossBus(t *testing.T) {
	var p1, p2 model.ProcID
	var mid model.MsgID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p1 = g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
		p2 = g.Proc("P2", map[model.NodeID]tm.Time{n1: 15})
		mid = g.Msg(p1, p2, 4)
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: 0, p2: 1}, Hints{}); err != nil {
		t.Fatalf("ScheduleApp: %v", err)
	}
	msgs := st.MsgEntries()
	if len(msgs) != 1 {
		t.Fatalf("%d msg entries, want 1", len(msgs))
	}
	m := msgs[0]
	if m.Msg != mid || m.Sender != 0 || m.Receiver != 1 {
		t.Errorf("msg entry = %+v", m)
	}
	// P1 ends at 10. Node 0 owns slot 0, starting at 0, 20, 40...
	// The first slot start >= 10 is round 1 (t=20), arriving at 30.
	if m.Round != 1 || m.Slot != 0 || m.Start != 20 || m.Arrive != 30 {
		t.Errorf("msg placed at round %d slot %d start %v arrive %v; want round 1 slot 0 [20,30)",
			m.Round, m.Slot, m.Start, m.Arrive)
	}
	for _, e := range st.ProcEntries() {
		if e.Proc == p2 && e.Start != 30 {
			t.Errorf("P2 starts at %v, want 30 (message arrival)", e.Start)
		}
	}
}

func TestScheduleMultipleOccurrences(t *testing.T) {
	var p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 50)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 30})
		// Second graph with a longer period forces a 200 tu horizon.
		g2 := b.App("b").Graph("H", 200, 200)
		g2.Proc("Q", map[model.NodeID]tm.Time{n1: 10})
	})
	st := mustState(t, sys)
	if st.Horizon() != 200 {
		t.Fatalf("horizon = %v", st.Horizon())
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p: 0}, Hints{}); err != nil {
		t.Fatalf("ScheduleApp: %v", err)
	}
	entries := st.ProcEntries()
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2 occurrences", len(entries))
	}
	for _, e := range entries {
		release := tm.Time(e.Occ) * 100
		if e.Start < release {
			t.Errorf("occ %d starts at %v before release %v", e.Occ, e.Start, release)
		}
		if e.End > release+50 {
			t.Errorf("occ %d ends at %v after deadline %v", e.Occ, e.End, release+50)
		}
	}
}

func TestScheduleDeadlineMiss(t *testing.T) {
	var p1, p2 model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 45)
		// Two 30-tu processes restricted to the same node cannot both
		// finish within a 45-tu deadline.
		p1 = g.Proc("P1", map[model.NodeID]tm.Time{n0: 30})
		p2 = g.Proc("P2", map[model.NodeID]tm.Time{n0: 30})
	})
	st := mustState(t, sys)
	err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: 0, p2: 0}, Hints{})
	if err == nil {
		t.Fatal("deadline miss not detected")
	}
}

func TestScheduleRejectsUnmappedProcess(t *testing.T) {
	var p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 10})
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{}, Hints{}); err == nil {
		t.Error("missing mapping accepted")
	}
	st = mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p: 1}, Hints{}); err == nil {
		t.Error("mapping to disallowed node accepted")
	}
}

func TestIncrementalReservations(t *testing.T) {
	var pa, pb model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		ga := b.App("existing").Graph("G1", 100, 100)
		pa = ga.Proc("A", map[model.NodeID]tm.Time{n0: 40})
		gb := b.App("current").Graph("G2", 100, 100)
		pb = gb.Proc("B", map[model.NodeID]tm.Time{n0: 30})
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{pa: 0}, Hints{}); err != nil {
		t.Fatalf("existing app: %v", err)
	}
	if err := st.ScheduleApp(sys.Apps[1], model.Mapping{pb: 0}, Hints{}); err != nil {
		t.Fatalf("current app: %v", err)
	}
	// B must start after A's reservation [0,40).
	for _, e := range st.ProcEntries() {
		if e.Proc == pb && e.Start != 40 {
			t.Errorf("B starts at %v, want 40 (after existing reservation)", e.Start)
		}
	}
	if st.Busy(0).Total() != 70 {
		t.Errorf("node 0 busy total = %v, want 70", st.Busy(0).Total())
	}
}

func TestProcStartHintMovesProcess(t *testing.T) {
	var p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 10})
	})
	st := mustState(t, sys)
	hints := Hints{}.SetProcStart(p, 55)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p: 0}, hints); err != nil {
		t.Fatalf("ScheduleApp: %v", err)
	}
	if got := st.ProcEntries()[0].Start; got != 55 {
		t.Errorf("hinted start = %v, want 55", got)
	}
	// An infeasible hint (would miss the deadline) falls back to the
	// earliest feasible placement instead of failing the design.
	st = mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p: 0}, Hints{}.SetProcStart(p, 95)); err != nil {
		t.Fatalf("soft hint fallback failed: %v", err)
	}
	if got := st.ProcEntries()[0].Start; got != 0 {
		t.Errorf("fallback start = %v, want 0", got)
	}
}

func TestMsgStartHintMovesMessage(t *testing.T) {
	var p1, p2 model.ProcID
	var mid model.MsgID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p1 = g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
		p2 = g.Proc("P2", map[model.NodeID]tm.Time{n1: 10})
		mid = g.Msg(p1, p2, 4)
	})
	mapping := model.Mapping{p1: 0, p2: 1}

	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], mapping, Hints{}); err != nil {
		t.Fatal(err)
	}
	if st.MsgEntries()[0].Round != 1 {
		t.Fatalf("baseline round = %d, want 1", st.MsgEntries()[0].Round)
	}

	st = mustState(t, sys)
	hints := Hints{}.SetMsgStart(mid, 60) // node 0 slots start at 0,20,40,60: round 3
	if err := st.ScheduleApp(sys.Apps[0], mapping, hints); err != nil {
		t.Fatal(err)
	}
	if got := st.MsgEntries()[0].Round; got != 3 {
		t.Errorf("hinted round = %d, want 3", got)
	}
}

func TestHintSettersDoNotMutateOriginal(t *testing.T) {
	h := Hints{}
	h2 := h.SetProcStart(1, 10)
	if len(h.ProcStart) != 0 {
		t.Error("SetProcStart mutated receiver")
	}
	h3 := h2.SetProcStart(1, 0) // zero removes
	if len(h3.ProcStart) != 0 {
		t.Error("zero hint not removed")
	}
	h4 := h2.SetMsgStart(5, 7)
	if h4.MsgStart[5] != 7 || h4.ProcStart[1] != 10 {
		t.Error("SetMsgStart lost data")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	var p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 100, 100)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 10})
	})
	base := mustState(t, sys)
	clone := base.Clone()
	if err := clone.ScheduleApp(sys.Apps[0], model.Mapping{p: 0}, Hints{}); err != nil {
		t.Fatal(err)
	}
	if len(base.ProcEntries()) != 0 || base.Busy(0).Total() != 0 {
		t.Error("scheduling on clone modified base")
	}
	if len(clone.Mapping()) != 1 {
		t.Error("clone mapping not updated")
	}
	if len(base.Mapping()) != 0 {
		t.Error("base mapping leaked")
	}
}
