package sched

import (
	"incdes/internal/model"
	"incdes/internal/tm"
)

// Priorities computes the partial-critical-path priority of every process
// of a graph, as used by the Heterogeneous Critical Path algorithm
// (Jorgensen & Madsen, CODES '97): the length of the longest path from the
// process to any sink, using the average WCET as the node-independent
// execution estimate and an expected bus delay for each message.
//
// The priority of a predecessor is strictly greater than that of any of
// its successors (WCETs are positive), so scheduling in decreasing
// priority order always respects precedence.
func Priorities(g *model.Graph, bus *model.Bus) map[model.ProcID]tm.Time {
	g.Finalize()
	prio := make(map[model.ProcID]tm.Time, len(g.Procs))
	order, err := g.TopoOrder()
	if err != nil {
		// Validation catches cycles long before scheduling; an invalid
		// graph here is a programming error.
		panic("sched.Priorities: " + err.Error())
	}
	for i := len(order) - 1; i >= 0; i-- {
		p := order[i]
		best := tm.Time(0)
		for _, m := range g.OutMsgs(p.ID) {
			c := CommEstimate(m, bus) + prio[m.Dst]
			best = tm.Max(best, c)
		}
		prio[p.ID] = p.AvgWCET() + best
	}
	return prio
}

// CommEstimate returns the expected bus delay of a message before its
// endpoints are mapped: the transmission time of its bytes plus half a
// TDMA round of expected waiting for the sender's slot. Messages between
// co-located processes ultimately cost nothing, but the estimate must not
// assume a mapping.
func CommEstimate(m *model.Message, bus *model.Bus) tm.Time {
	return tm.Time(m.Bytes)*bus.ByteTime + bus.RoundLen()/2
}

// CriticalPathLen returns the longest source-to-sink path estimate of the
// graph (the maximum priority over its processes).
func CriticalPathLen(g *model.Graph, bus *model.Bus) tm.Time {
	var best tm.Time
	for _, v := range Priorities(g, bus) {
		best = tm.Max(best, v)
	}
	return best
}
