// Package sched implements the static cyclic scheduler of the paper: an
// insertion-based list scheduler that places every occurrence of every
// process of an application into free processor time, and every
// inter-node message into a TDMA slot occurrence of the sender's node,
// over the system hyperperiod.
//
// A State accumulates applications one at a time, which is exactly the
// incremental design process: existing applications are scheduled first
// and become immovable reservations; the current application is then
// scheduled into the remaining slack. Mapping strategies evaluate design
// alternatives by cloning a base State and re-scheduling the current
// application with a different mapping or different placement hints.
package sched

import (
	"incdes/internal/model"
	"incdes/internal/tm"
)

// Job identifies one occurrence of a process within the hyperperiod.
type Job struct {
	Proc model.ProcID
	Occ  int
}

// MsgOcc identifies one occurrence of a message.
type MsgOcc struct {
	Msg model.MsgID
	Occ int
}

// ProcEntry is one scheduled process occurrence.
type ProcEntry struct {
	App   model.AppID
	Graph model.GraphID
	Proc  model.ProcID
	Occ   int
	Node  model.NodeID
	Start tm.Time
	End   tm.Time
}

// MsgEntry is one scheduled message transmission: one hop of a message
// occurrence on one TDMA bus. On a single-bus architecture every message
// occurrence is exactly one hop (Bus 0, Hop 0). On multi-cluster
// architectures an inter-cluster occurrence expands into a chain of
// entries — producer to gateway, gateway to gateway, gateway to consumer
// — sharing (Msg, Occ) and numbered by Hop, each on the bus its sender
// owns a slot on.
type MsgEntry struct {
	App      model.AppID
	Graph    model.GraphID
	Msg      model.MsgID
	Occ      int
	Round    int
	Slot     int
	Bytes    int
	Sender   model.NodeID // transmitting node of this hop
	Receiver model.NodeID // receiving node of this hop
	Ready    tm.Time      // producer finish (hop 0) or previous hop's Arrive
	Start    tm.Time      // slot start
	Arrive   tm.Time      // slot end: data available at the receiver
	Bus      model.BusID  // bus this hop is transmitted on
	Hop      int          // position in the occurrence's route chain
}

// Hints bias the scheduler's placement decisions and are the mechanism
// behind the paper's design transformations: "move process to a different
// slack" sets a minimum start offset for the process; "move message to a
// different slack on the bus" sets a minimum slot-start offset for the
// message. Offsets are relative to the release of each occurrence
// (k * period), so one hint consistently shifts every occurrence.
//
// Hints are preferences, not constraints: when honoring a hint would make
// a job unschedulable, the scheduler ignores that hint and places the job
// at its earliest feasible position instead. A design alternative
// therefore only fails when it is genuinely infeasible.
type Hints struct {
	ProcStart map[model.ProcID]tm.Time
	MsgStart  map[model.MsgID]tm.Time
}

// Clone returns an independent copy of the hints.
func (h Hints) Clone() Hints {
	c := Hints{}
	if h.ProcStart != nil {
		c.ProcStart = make(map[model.ProcID]tm.Time, len(h.ProcStart))
		for k, v := range h.ProcStart {
			c.ProcStart[k] = v
		}
	}
	if h.MsgStart != nil {
		c.MsgStart = make(map[model.MsgID]tm.Time, len(h.MsgStart))
		for k, v := range h.MsgStart {
			c.MsgStart[k] = v
		}
	}
	return c
}

// SetProcStart returns a copy of h with the process hint set (or removed
// when start <= 0).
func (h Hints) SetProcStart(p model.ProcID, start tm.Time) Hints {
	c := h.Clone()
	if c.ProcStart == nil {
		c.ProcStart = map[model.ProcID]tm.Time{}
	}
	if start <= 0 {
		delete(c.ProcStart, p)
	} else {
		c.ProcStart[p] = start
	}
	return c
}

// SetMsgStart returns a copy of h with the message hint set (or removed
// when start <= 0).
func (h Hints) SetMsgStart(m model.MsgID, start tm.Time) Hints {
	c := h.Clone()
	if c.MsgStart == nil {
		c.MsgStart = map[model.MsgID]tm.Time{}
	}
	if start <= 0 {
		delete(c.MsgStart, m)
	} else {
		c.MsgStart[m] = start
	}
	return c
}
