package sched_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/sched"
)

// TestScheduleInvariants is the property-based check of the scheduler:
// across randomized generated systems, mapping the current application
// onto a frozen base must produce schedules where (1) no two process
// occurrences overlap on a node, (2) every message travels in a TDMA
// slot owned by its sender, timed exactly on the slot boundaries,
// (3) per-slot traffic never exceeds the slot capacity and agrees with
// the bus reservation ledger, and (4) the existing applications' entries
// are byte-identical before and after — incremental design freezes them.
func TestScheduleInvariants(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 4
	cfg.GraphMinProcs = 4
	cfg.GraphMaxProcs = 10
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tc, err := gen.MakeTestCase(cfg, seed, 30, 15)
			if err != nil {
				t.Fatalf("generating test case: %v", err)
			}
			st := tc.Base.Clone()
			baseProcs := append([]sched.ProcEntry(nil), st.ProcEntries()...)
			baseMsgs := append([]sched.MsgEntry(nil), st.MsgEntries()...)

			if _, err := st.MapApp(tc.Current, sched.Hints{}); err != nil {
				t.Fatalf("mapping current application: %v", err)
			}

			checkNoNodeOverlap(t, st)
			checkMsgSlotOwnership(t, st)
			checkSlotCapacity(t, st)

			// Frozen base: ScheduleApp only appends, so the pre-existing
			// entries must survive as an untouched prefix.
			procs, msgs := st.ProcEntries(), st.MsgEntries()
			if len(procs) <= len(baseProcs) || len(msgs) < len(baseMsgs) {
				t.Fatalf("mapping removed entries: %d->%d procs, %d->%d msgs",
					len(baseProcs), len(procs), len(baseMsgs), len(msgs))
			}
			if !reflect.DeepEqual(baseProcs, procs[:len(baseProcs)]) {
				t.Error("existing applications' process entries changed while mapping the current application")
			}
			if !reflect.DeepEqual(baseMsgs, msgs[:len(baseMsgs)]) {
				t.Error("existing applications' message entries changed while mapping the current application")
			}
		})
	}
}

func checkNoNodeOverlap(t *testing.T, st *sched.State) {
	t.Helper()
	horizon := st.Horizon()
	byNode := map[model.NodeID][]sched.ProcEntry{}
	for _, e := range st.ProcEntries() {
		if e.Start < 0 || e.End > horizon || e.Start >= e.End {
			t.Errorf("proc %d occ %d: bad interval [%d,%d) (horizon %d)",
				e.Proc, e.Occ, e.Start, e.End, horizon)
		}
		byNode[e.Node] = append(byNode[e.Node], e)
	}
	for node, entries := range byNode {
		sort.Slice(entries, func(i, j int) bool { return entries[i].Start < entries[j].Start })
		for i := 1; i < len(entries); i++ {
			prev, cur := entries[i-1], entries[i]
			if cur.Start < prev.End {
				t.Errorf("node %d: proc %d occ %d [%d,%d) overlaps proc %d occ %d [%d,%d)",
					node, prev.Proc, prev.Occ, prev.Start, prev.End,
					cur.Proc, cur.Occ, cur.Start, cur.End)
			}
		}
	}
}

func checkMsgSlotOwnership(t *testing.T, st *sched.State) {
	t.Helper()
	buses := st.System().Arch.Buses
	for _, e := range st.MsgEntries() {
		if int(e.Bus) < 0 || int(e.Bus) >= len(buses) {
			t.Errorf("msg %d occ %d hop %d: unknown bus %d", e.Msg, e.Occ, e.Hop, e.Bus)
			continue
		}
		bus := buses[e.Bus]
		if owner := bus.SlotOrder[e.Slot]; owner != e.Sender {
			t.Errorf("msg %d occ %d: sent by node %d in bus %d slot %d owned by node %d",
				e.Msg, e.Occ, e.Sender, e.Bus, e.Slot, owner)
		}
		if want := bus.SlotStart(e.Round, e.Slot); e.Start != want {
			t.Errorf("msg %d occ %d: Start=%d, bus %d slot (%d,%d) starts at %d",
				e.Msg, e.Occ, e.Start, e.Bus, e.Round, e.Slot, want)
		}
		if want := bus.SlotEnd(e.Round, e.Slot); e.Arrive != want {
			t.Errorf("msg %d occ %d: Arrive=%d, bus %d slot (%d,%d) ends at %d",
				e.Msg, e.Occ, e.Arrive, e.Bus, e.Round, e.Slot, want)
		}
		if e.Ready > e.Start {
			t.Errorf("msg %d occ %d: ready at %d but transmitted in slot starting %d",
				e.Msg, e.Occ, e.Ready, e.Start)
		}
	}
}

func checkSlotCapacity(t *testing.T, st *sched.State) {
	t.Helper()
	buses := st.System().Arch.Buses
	type occ struct{ bus, round, slot int }
	traffic := map[occ]int{}
	for _, e := range st.MsgEntries() {
		if e.Bytes <= 0 {
			t.Errorf("msg %d occ %d: non-positive payload %d", e.Msg, e.Occ, e.Bytes)
		}
		traffic[occ{int(e.Bus), e.Round, e.Slot}] += e.Bytes
	}
	for o, bytes := range traffic {
		bus := buses[o.bus]
		bs := st.BusStateAt(o.bus)
		if cap := bus.SlotBytes[o.slot]; bytes > cap {
			t.Errorf("bus %d slot occurrence (%d,%d): %d bytes scheduled, capacity %d",
				o.bus, o.round, o.slot, bytes, cap)
		}
		if used := bs.Used(o.round, o.slot); used != bytes {
			t.Errorf("bus %d slot occurrence (%d,%d): ledger says %d bytes used, entries sum to %d",
				o.bus, o.round, o.slot, used, bytes)
		}
	}
	// And the converse: no ledger holds anything the entries don't explain.
	for bi := 0; bi < st.NumBuses(); bi++ {
		bs := st.BusStateAt(bi)
		for r := 0; r < bs.Rounds(); r++ {
			for sl := 0; sl < buses[bi].NumSlots(); sl++ {
				if used := bs.Used(r, sl); used != traffic[occ{bi, r, sl}] {
					t.Errorf("bus %d slot occurrence (%d,%d): ledger %d bytes, entries %d",
						bi, r, sl, used, traffic[occ{bi, r, sl}])
				}
			}
		}
	}
}
