package sched_test

import (
	"bytes"
	"math/rand"
	"testing"

	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
)

// randomMapping assigns every process of app a random allowed node:
// some of the resulting placements schedule, some fail mid-way — both
// paths must roll back exactly.
func randomMapping(rng *rand.Rand, app *model.Application) model.Mapping {
	m := model.Mapping{}
	for _, g := range app.Graphs {
		for _, p := range g.Procs {
			nodes := p.AllowedNodes()
			m[p.ID] = nodes[rng.Intn(len(nodes))]
		}
	}
	return m
}

// TestTxnRollbackProperty is the transactional core's contract test: any
// sequence of Apply calls — feasible or not, even re-applying the same
// application within one transaction — followed by Rollback restores the
// exact pre-Begin state. Exactness is checked on the full serialized
// state (busy timelines, TTP bus ledger, schedule tables, bookkeeping)
// and on the derived slack metrics report.
func TestTxnRollbackProperty(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		tc, err := gen.MakeTestCase(gen.Default(), 500+seed*31, 60, 20)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := tc.Base
		w := metrics.DefaultWeights(tc.Profile)
		pre := append([]byte(nil), st.Fingerprint()...)
		preRep := metrics.Evaluate(st, tc.Profile, w)

		rng := rand.New(rand.NewSource(seed))
		applied, failed := 0, 0
		for iter := 0; iter < 25; iter++ {
			txn := st.Begin()
			for n := 1 + rng.Intn(3); n > 0; n-- {
				if err := txn.Apply(tc.Current, randomMapping(rng, tc.Current), sched.Hints{}); err != nil {
					failed++
				} else {
					applied++
				}
			}
			txn.Rollback()
			if got := st.Fingerprint(); !bytes.Equal(got, pre) {
				t.Fatalf("seed %d iter %d: rollback did not restore the serialized state", seed, iter)
			}
			if rep := metrics.Evaluate(st, tc.Profile, w); rep != preRep {
				t.Fatalf("seed %d iter %d: metrics differ after rollback: %+v vs %+v", seed, iter, rep, preRep)
			}
		}
		if applied == 0 || failed == 0 {
			t.Logf("seed %d: %d successful and %d failed applies (both paths should occur across seeds)", seed, applied, failed)
		}
	}
}
