package sched

import (
	"testing"

	"incdes/internal/model"
	"incdes/internal/tm"
)

func TestBusContentionPushesToNextRound(t *testing.T) {
	// Two producers on node 0 finish early and both send 6-byte messages
	// to node 1. One 8-byte slot holds only one of them, so the second
	// message must take node 0's slot in the following round.
	var p1, p2, c1, c2 model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 200, 200)
		p1 = g.Proc("P1", map[model.NodeID]tm.Time{n0: 5})
		p2 = g.Proc("P2", map[model.NodeID]tm.Time{n0: 5})
		c1 = g.Proc("C1", map[model.NodeID]tm.Time{n1: 5})
		c2 = g.Proc("C2", map[model.NodeID]tm.Time{n1: 5})
		g.Msg(p1, c1, 6)
		g.Msg(p2, c2, 6)
	})
	st := mustState(t, sys)
	mapping := model.Mapping{p1: 0, p2: 0, c1: 1, c2: 1}
	if err := st.ScheduleApp(sys.Apps[0], mapping, Hints{}); err != nil {
		t.Fatalf("ScheduleApp: %v", err)
	}
	rounds := map[int]bool{}
	for _, m := range st.MsgEntries() {
		if m.Slot != 0 {
			t.Errorf("message %d in slot %d, want node 0's slot 0", m.Msg, m.Slot)
		}
		if rounds[m.Round] {
			t.Errorf("two 6-byte messages share the 8-byte slot of round %d", m.Round)
		}
		rounds[m.Round] = true
	}
	if len(rounds) != 2 {
		t.Errorf("messages in %d distinct rounds, want 2", len(rounds))
	}
}

func TestFanOutSingleProducerManyConsumers(t *testing.T) {
	// One producer on node 0 feeds two consumers on node 1: two separate
	// messages (the model does not multicast), both in node 0's slots.
	var p, c1, c2 model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("a").Graph("G", 200, 200)
		p = g.Proc("P", map[model.NodeID]tm.Time{n0: 10})
		c1 = g.Proc("C1", map[model.NodeID]tm.Time{n1: 10})
		c2 = g.Proc("C2", map[model.NodeID]tm.Time{n1: 10})
		g.Msg(p, c1, 4)
		g.Msg(p, c2, 4)
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p: 0, c1: 1, c2: 1}, Hints{}); err != nil {
		t.Fatal(err)
	}
	if got := len(st.MsgEntries()); got != 2 {
		t.Fatalf("%d message entries, want 2", got)
	}
	// Both 4-byte messages fit the same 8-byte slot occurrence.
	m0, m1 := st.MsgEntries()[0], st.MsgEntries()[1]
	if m0.Round != m1.Round || m0.Slot != m1.Slot {
		t.Errorf("fan-out messages in different occurrences: %+v vs %+v", m0, m1)
	}
}

func TestMultiplePeriodsInterleave(t *testing.T) {
	// A 100 tu graph and a 200 tu graph on one node: horizon 200, the
	// fast graph runs twice.
	var fast, slow model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g1 := b.App("a").Graph("fast", 100, 100)
		fast = g1.Proc("F", map[model.NodeID]tm.Time{n0: 30})
		g2 := b.App("b").Graph("slow", 200, 200)
		slow = g2.Proc("S", map[model.NodeID]tm.Time{n0: 60})
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{fast: 0}, Hints{}); err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[1], model.Mapping{slow: 0}, Hints{}); err != nil {
		t.Fatal(err)
	}
	if got := len(st.ProcEntries()); got != 3 {
		t.Fatalf("%d entries, want 3 (2 fast + 1 slow)", got)
	}
	// 30+30+60 = 120 busy over 200.
	if st.Busy(0).Total() != 120 {
		t.Errorf("busy total = %v, want 120", st.Busy(0).Total())
	}
}

func TestScheduleAppDeterministic(t *testing.T) {
	build := func() (*State, *model.System, model.Mapping) {
		var ps []model.ProcID
		sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
			g := b.App("a").Graph("G", 200, 200)
			prev := model.ProcID(-1)
			for i := 0; i < 6; i++ {
				p := g.UniformProc("P", tm.Time(10+i))
				ps = append(ps, p)
				if prev >= 0 {
					g.Msg(prev, p, 2)
				}
				prev = p
			}
		})
		mapping := model.Mapping{}
		for i, p := range ps {
			mapping[p] = model.NodeID(i % 2)
		}
		st := mustState(t, sys)
		return st, sys, mapping
	}
	st1, sys1, m1 := build()
	if err := st1.ScheduleApp(sys1.Apps[0], m1, Hints{}); err != nil {
		t.Fatal(err)
	}
	st2, sys2, m2 := build()
	if err := st2.ScheduleApp(sys2.Apps[0], m2, Hints{}); err != nil {
		t.Fatal(err)
	}
	if len(st1.ProcEntries()) != len(st2.ProcEntries()) {
		t.Fatal("different entry counts across identical runs")
	}
	for i := range st1.ProcEntries() {
		if st1.ProcEntries()[i] != st2.ProcEntries()[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, st1.ProcEntries()[i], st2.ProcEntries()[i])
		}
	}
}

func TestMapAppBanRetryRecovers(t *testing.T) {
	// Node 0 looks best for occurrence 0 (empty early on) but an existing
	// reservation blocks occurrence 1; node 1 works for both. The greedy
	// binding must recover via all-occurrence verification.
	var blocker, p model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		ge := b.App("existing").Graph("E", 200, 200)
		blocker = ge.Proc("Block", map[model.NodeID]tm.Time{n0: 90})
		gc := b.App("current").Graph("C", 100, 100)
		p = gc.Proc("P", map[model.NodeID]tm.Time{n0: 20, n1: 40})
	})
	st := mustState(t, sys)
	// Pin the blocker into node 0's second window [110, 200).
	hints := Hints{}.SetProcStart(blocker, 105)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{blocker: 0}, hints); err != nil {
		t.Fatal(err)
	}
	mapping, err := st.MapApp(sys.Apps[1], Hints{})
	if err != nil {
		t.Fatalf("MapApp: %v", err)
	}
	// Node 0 window [100,200) has only [100,105) free: occurrence 1 of P
	// (20 tu) cannot fit there, so P must land on node 1.
	if mapping[p] != 1 {
		t.Errorf("P mapped to node %d, want 1 (node 0 blocked in occurrence 1)", mapping[p])
	}
}

func TestMapAppLeavesStateUntouchedOnFailure(t *testing.T) {
	var pa, pb model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		ga := b.App("existing").Graph("G1", 100, 100)
		pa = ga.Proc("A", map[model.NodeID]tm.Time{n0: 90})
		gb := b.App("current").Graph("G2", 100, 100)
		pb = gb.Proc("B", map[model.NodeID]tm.Time{n0: 50})
		_ = pb
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{pa: 0}, Hints{}); err != nil {
		t.Fatal(err)
	}
	before := len(st.ProcEntries())
	busyBefore := st.Busy(0).Total()
	if _, err := st.MapApp(sys.Apps[1], Hints{}); err == nil {
		t.Fatal("infeasible app mapped")
	}
	if len(st.ProcEntries()) != before || st.Busy(0).Total() != busyBefore {
		t.Error("failed MapApp left partial reservations in the state")
	}
}

func TestRestrictKeepsExactPlacements(t *testing.T) {
	var pa, pb model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		ga := b.App("keep").Graph("G1", 100, 100)
		pa = ga.Proc("A", map[model.NodeID]tm.Time{n0: 20})
		gb := b.App("drop").Graph("G2", 100, 100)
		pb = gb.Proc("B", map[model.NodeID]tm.Time{n0: 30})
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{pa: 0}, Hints{}.SetProcStart(pa, 40)); err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[1], model.Mapping{pb: 0}, Hints{}); err != nil {
		t.Fatal(err)
	}
	kept, err := Restrict(st, sys, func(id model.AppID) bool { return id == sys.Apps[0].ID })
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if len(kept.ProcEntries()) != 1 {
		t.Fatalf("%d entries kept, want 1", len(kept.ProcEntries()))
	}
	e := kept.ProcEntries()[0]
	if e.Proc != pa || e.Start != 40 {
		t.Errorf("kept entry = %+v, want A at 40 (exact shipped position)", e)
	}
	if kept.Busy(0).Total() != 20 {
		t.Errorf("busy total = %v, want 20", kept.Busy(0).Total())
	}
	// The dropped application's slot is free again: B can be re-placed
	// at its original position or earlier.
	if _, err := kept.MapApp(sys.Apps[1], Hints{}); err != nil {
		t.Fatalf("re-mapping dropped app: %v", err)
	}
	// The original state is untouched.
	if len(st.ProcEntries()) != 2 {
		t.Error("Restrict modified the source state")
	}
}

func TestRestrictCopiesBusReservations(t *testing.T) {
	var p1, p2 model.ProcID
	sys := buildSys(t, func(b *model.Builder, n0, n1 model.NodeID) {
		g := b.App("keep").Graph("G", 100, 100)
		p1 = g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
		p2 = g.Proc("P2", map[model.NodeID]tm.Time{n1: 10})
		g.Msg(p1, p2, 4)
	})
	st := mustState(t, sys)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: 0, p2: 1}, Hints{}); err != nil {
		t.Fatal(err)
	}
	kept, err := Restrict(st, sys, func(model.AppID) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.MsgEntries()) != 1 {
		t.Fatalf("%d msg entries kept", len(kept.MsgEntries()))
	}
	m := kept.MsgEntries()[0]
	if got := kept.BusState().Used(m.Round, m.Slot); got != 4 {
		t.Errorf("bus reservation not copied: used = %d", got)
	}
}
