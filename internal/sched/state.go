package sched

import (
	"fmt"
	"sort"

	"incdes/internal/model"
	"incdes/internal/tm"
	"incdes/internal/ttp"
)

// State is a (partial) static cyclic schedule over the hyperperiod of a
// system: per-node busy intervals, bus slot reservations, and the schedule
// tables built so far. Applications are added one at a time with
// ScheduleApp; everything already in the state is immovable.
//
// If ScheduleApp returns an error the state may hold partial reservations
// of the failed application and must be discarded; strategies always work
// on clones of a base state, so this costs nothing.
type State struct {
	sys     *model.System
	horizon tm.Time
	busy    map[model.NodeID]*tm.Set
	buses   []*ttp.State // one reservation ledger per bus, index == BusID

	// routes is the architecture's precomputed deterministic route table,
	// shared read-only by every clone of the state.
	routes *model.RouteTable

	procs   []ProcEntry
	msgs    []MsgEntry
	jobEnd  map[Job]tm.Time      // finish time of each scheduled job
	jobNode map[Job]model.NodeID // node of each scheduled job
	mapping model.Mapping        // accumulated over all scheduled apps

	// stats are optional observability sinks (see obs.go). They never
	// influence placement decisions.
	stats Stats

	// txn is the state's reusable transaction (see txn.go). While it is
	// open, every placement write is recorded in its undo log. Clones
	// never inherit it: a transaction belongs to exactly one state.
	txn *Txn
}

// NewState returns an empty schedule over the system hyperperiod.
func NewState(sys *model.System) (*State, error) {
	horizon := sys.Hyperperiod()
	buses := make([]*ttp.State, len(sys.Arch.Buses))
	for i, b := range sys.Arch.Buses {
		st, err := ttp.NewState(b, horizon)
		if err != nil {
			return nil, err
		}
		buses[i] = st
	}
	routes, err := model.BuildRoutes(sys.Arch)
	if err != nil {
		return nil, err
	}
	busy := make(map[model.NodeID]*tm.Set, len(sys.Arch.Nodes))
	for _, n := range sys.Arch.Nodes {
		busy[n.ID] = tm.NewSet()
	}
	return &State{
		sys:     sys,
		horizon: horizon,
		busy:    busy,
		buses:   buses,
		routes:  routes,
		jobEnd:  map[Job]tm.Time{},
		jobNode: map[Job]model.NodeID{},
		mapping: model.Mapping{},
	}, nil
}

// Clone returns an independent deep copy.
func (s *State) Clone() *State {
	c := &State{
		sys:     s.sys,
		horizon: s.horizon,
		busy:    make(map[model.NodeID]*tm.Set, len(s.busy)),
		buses:   make([]*ttp.State, len(s.buses)),
		routes:  s.routes,
		procs:   append([]ProcEntry(nil), s.procs...),
		msgs:    append([]MsgEntry(nil), s.msgs...),
		jobEnd:  make(map[Job]tm.Time, len(s.jobEnd)),
		jobNode: make(map[Job]model.NodeID, len(s.jobNode)),
		mapping: s.mapping.Clone(),
		stats:   s.stats,
	}
	for i, b := range s.buses {
		c.buses[i] = b.Clone()
	}
	for n, set := range s.busy {
		c.busy[n] = set.Clone()
	}
	for j, t := range s.jobEnd {
		c.jobEnd[j] = t
	}
	for j, n := range s.jobNode {
		c.jobNode[j] = n
	}
	return c
}

// CloneInto deep-copies s into dst and returns dst, reusing dst's
// allocations where possible. Passing nil is equivalent to Clone. It
// exists for evaluation workers that overwrite one scratch state per
// examined design alternative: reusing the maps, interval sets, and
// entry slices keeps the per-evaluation allocation cost near zero.
// dst must not be a state whose internals are shared elsewhere.
func (s *State) CloneInto(dst *State) *State {
	if dst == nil {
		return s.Clone()
	}
	dst.sys, dst.horizon = s.sys, s.horizon
	if dst.busy == nil {
		dst.busy = make(map[model.NodeID]*tm.Set, len(s.busy))
	}
	for n, set := range s.busy {
		if d, ok := dst.busy[n]; ok {
			d.CopyFrom(set)
		} else {
			dst.busy[n] = set.Clone()
		}
	}
	for n := range dst.busy {
		if _, ok := s.busy[n]; !ok {
			delete(dst.busy, n)
		}
	}
	dst.routes = s.routes
	if len(dst.buses) != len(s.buses) {
		dst.buses = make([]*ttp.State, len(s.buses))
	}
	for i, b := range s.buses {
		if dst.buses[i] == nil {
			dst.buses[i] = b.Clone()
		} else {
			dst.buses[i].CopyFrom(b)
		}
	}
	dst.procs = append(dst.procs[:0], s.procs...)
	dst.msgs = append(dst.msgs[:0], s.msgs...)
	if dst.jobEnd == nil {
		dst.jobEnd = make(map[Job]tm.Time, len(s.jobEnd))
	} else {
		clear(dst.jobEnd)
	}
	for j, t := range s.jobEnd {
		dst.jobEnd[j] = t
	}
	if dst.jobNode == nil {
		dst.jobNode = make(map[Job]model.NodeID, len(s.jobNode))
	} else {
		clear(dst.jobNode)
	}
	for j, n := range s.jobNode {
		dst.jobNode[j] = n
	}
	if dst.mapping == nil {
		dst.mapping = make(model.Mapping, len(s.mapping))
	} else {
		clear(dst.mapping)
	}
	for p, n := range s.mapping {
		dst.mapping[p] = n
	}
	return dst
}

// System returns the system the schedule belongs to.
func (s *State) System() *model.System { return s.sys }

// Horizon returns the hyperperiod the schedule covers.
func (s *State) Horizon() tm.Time { return s.horizon }

// Busy returns the busy interval set of a node (do not modify).
func (s *State) Busy(n model.NodeID) *tm.Set { return s.busy[n] }

// BusState returns the first bus's reservation state (do not modify):
// the whole bus state of a single-bus architecture.
func (s *State) BusState() *ttp.State { return s.buses[0] }

// NumBuses returns the number of TDMA buses of the architecture.
func (s *State) NumBuses() int { return len(s.buses) }

// BusStateAt returns bus i's reservation state (do not modify).
func (s *State) BusStateAt(i int) *ttp.State { return s.buses[i] }

// Routes returns the architecture's deterministic route table.
func (s *State) Routes() *model.RouteTable { return s.routes }

// ProcEntries returns every scheduled process occurrence (do not modify).
func (s *State) ProcEntries() []ProcEntry { return s.procs }

// MsgEntries returns every scheduled message occurrence (do not modify).
func (s *State) MsgEntries() []MsgEntry { return s.msgs }

// Mapping returns the accumulated process-to-node assignment of all
// applications scheduled so far (do not modify).
func (s *State) Mapping() model.Mapping { return s.mapping }

// Occurrences returns how many times a graph with the given period repeats
// inside the hyperperiod.
func (s *State) Occurrences(period tm.Time) int {
	return int(s.horizon / period)
}

// jobDeadline returns the absolute deadline of occurrence occ of graph g.
func jobDeadline(g *model.Graph, occ int) tm.Time {
	return tm.Time(occ)*g.Period + g.Deadline
}

// hopSlot is one found slot occurrence of a route hop.
type hopSlot struct{ round, slot int }

// findRoute walks a route finding a feasible slot occurrence per hop
// without reserving anything: hop i's earliest transmit time is the
// previous hop's arrival. A route never uses the same bus twice (the
// route search visits each bus at most once), so the unreserved finds
// cannot interact. Returns false when some hop has no capacity.
func (s *State) findRoute(route []model.Hop, bytes int, earliest tm.Time, buf []hopSlot) ([]hopSlot, bool) {
	t := earliest
	for _, hop := range route {
		bst := s.buses[hop.Bus]
		round, slot, ok := bst.FindSlot(hop.From, t, bytes, 0)
		if !ok {
			return buf, false
		}
		buf = append(buf, hopSlot{round, slot})
		t = bst.Bus().SlotEnd(round, slot)
	}
	return buf, true
}

// planMsg finds (and reserves) slot occurrences for one message
// occurrence along the deterministic route from sender to receiver,
// appending one MsgEntry per hop to out and returning the extended slice
// with the occurrence's final arrival time. release is the occurrence
// release time k*T; ready is when the producer finishes. The whole route
// is found before anything is reserved, so a failed chain reserves
// nothing.
func (s *State) planMsg(g *model.Graph, m *model.Message, occ int, sender, receiver model.NodeID,
	ready, release tm.Time, hints Hints, out []MsgEntry) ([]MsgEntry, tm.Time, error) {

	route := s.routes.Route(sender, receiver)
	if len(route) == 0 {
		return out, 0, fmt.Errorf("sched: no route for message %d occ %d (node %d to node %d)",
			m.ID, occ, sender, receiver)
	}
	earliest := ready
	if off, ok := hints.MsgStart[m.ID]; ok {
		earliest = tm.Max(earliest, release+off)
	}
	var found [4]hopSlot
	slots, ok := s.findRoute(route, m.Bytes, earliest, found[:0])
	if !ok && earliest > ready {
		// The hint is a preference, not a constraint: fall back to the
		// earliest feasible slot when honoring it is impossible.
		slots, ok = s.findRoute(route, m.Bytes, ready, found[:0])
	}
	if !ok {
		return out, 0, fmt.Errorf("sched: no slot for message %d occ %d (sender node %d, %d bytes, earliest %v)",
			m.ID, occ, sender, m.Bytes, ready)
	}
	hopReady := ready
	var arrive tm.Time
	for i, hop := range route {
		bst := s.buses[hop.Bus]
		if err := bst.Reserve(slots[i].round, slots[i].slot, m.Bytes); err != nil {
			return out, 0, err
		}
		if t := s.tx(); t != nil {
			t.bus[hop.Bus].Record(slots[i].round, slots[i].slot, m.Bytes)
		}
		b := bst.Bus()
		arrive = b.SlotEnd(slots[i].round, slots[i].slot)
		out = append(out, MsgEntry{
			Graph: g.ID, Msg: m.ID, Occ: occ,
			Round: slots[i].round, Slot: slots[i].slot, Bytes: m.Bytes,
			Sender: hop.From, Receiver: hop.To,
			Ready:  hopReady,
			Start:  b.SlotStart(slots[i].round, slots[i].slot),
			Arrive: arrive,
			Bus:    hop.Bus, Hop: i,
		})
		hopReady = arrive
	}
	s.stats.MsgsPlaced.Inc()
	return out, arrive, nil
}

// scheduleJob places one process occurrence (and the inter-node messages
// feeding it) onto its mapped node. Messages are scheduled when their
// consumer is placed, because only then are both endpoints known.
func (s *State) scheduleJob(app *model.Application, g *model.Graph, p *model.Process,
	occ int, mapping model.Mapping, hints Hints) error {

	node, ok := mapping[p.ID]
	if !ok {
		return fmt.Errorf("sched: process %d has no mapping", p.ID)
	}
	wcet, ok := p.WCET[node]
	if !ok {
		return fmt.Errorf("sched: process %d cannot run on node %d", p.ID, node)
	}
	release := tm.Time(occ) * g.Period
	deadline := jobDeadline(g, occ)

	dataReady := release
	var newMsgs []MsgEntry
	for _, m := range g.InMsgs(p.ID) {
		pred := Job{Proc: m.Src, Occ: occ}
		predEnd, ok := s.jobEnd[pred]
		if !ok {
			return fmt.Errorf("sched: internal: predecessor %d of %d not yet scheduled", m.Src, p.ID)
		}
		if s.jobNode[pred] == node {
			dataReady = tm.Max(dataReady, predEnd) // same node: shared memory, no bus
			continue
		}
		var arrive tm.Time
		var err error
		newMsgs, arrive, err = s.planMsg(g, m, occ, s.jobNode[pred], node, predEnd, release, hints, newMsgs)
		if err != nil {
			return err
		}
		dataReady = tm.Max(dataReady, arrive)
	}
	for i := range newMsgs {
		newMsgs[i].App = app.ID
	}

	earliest := dataReady
	if off, ok := hints.ProcStart[p.ID]; ok {
		earliest = tm.Max(earliest, release+off)
	}
	start, ok := s.busy[node].FirstFit(earliest, wcet, deadline)
	if !ok && earliest > dataReady {
		// Hints are preferences: ignore one rather than fail the design.
		start, ok = s.busy[node].FirstFit(dataReady, wcet, deadline)
	}
	if !ok {
		return fmt.Errorf("sched: process %d occ %d does not fit on node %d before deadline %v",
			p.ID, occ, node, deadline)
	}
	if err := s.busy[node].Insert(tm.Iv(start, start+wcet)); err != nil {
		return fmt.Errorf("sched: internal: %w", err)
	}
	s.stats.JobsPlaced.Inc()
	s.procs = append(s.procs, ProcEntry{
		App: app.ID, Graph: g.ID, Proc: p.ID, Occ: occ,
		Node: node, Start: start, End: start + wcet,
	})
	s.msgs = append(s.msgs, newMsgs...)
	j := Job{Proc: p.ID, Occ: occ}
	if t := s.tx(); t != nil {
		t.recordBusy(node, tm.Iv(start, start+wcet))
		t.recordJob(j)
	}
	s.jobEnd[j] = start + wcet
	s.jobNode[j] = node
	return nil
}

// ScheduleApp schedules every occurrence of every graph of app into the
// state using the given mapping, honoring hints. Jobs are processed in
// decreasing partial-critical-path priority (which respects precedence).
// On failure the state is partially modified and must be discarded.
func (s *State) ScheduleApp(app *model.Application, mapping model.Mapping, hints Hints) error {
	s.stats.ScheduleCalls.Inc()
	jobs, err := s.jobList(app)
	if err != nil {
		s.stats.Failures.Inc()
		return err
	}
	for _, jb := range jobs {
		if err := s.scheduleJob(app, jb.graph, jb.proc, jb.occ, mapping, hints); err != nil {
			s.stats.Failures.Inc()
			return err
		}
	}
	t := s.tx()
	for _, g := range app.Graphs {
		for _, p := range g.Procs {
			if t != nil {
				t.recordMap(p.ID)
			}
			s.mapping[p.ID] = mapping[p.ID]
		}
	}
	return nil
}

// jobItem is one schedulable unit with its precomputed ordering keys.
type jobItem struct {
	graph *model.Graph
	proc  *model.Process
	occ   int
	prio  tm.Time
	topo  int
}

// jobList expands an application into its hyperperiod job set, ordered by
// decreasing priority. Priority strictly decreases along graph edges, so
// the order is a valid scheduling order.
func (s *State) jobList(app *model.Application) ([]jobItem, error) {
	var jobs []jobItem
	for _, g := range app.Graphs {
		if s.horizon%g.Period != 0 {
			return nil, fmt.Errorf("sched: graph %d period %v does not divide horizon %v",
				g.ID, g.Period, s.horizon)
		}
		prio := Priorities(g, s.sys.Arch.Buses[0])
		order, err := g.TopoOrder()
		if err != nil {
			return nil, err
		}
		topoPos := make(map[model.ProcID]int, len(order))
		for i, p := range order {
			topoPos[p.ID] = i
		}
		occs := s.Occurrences(g.Period)
		for _, p := range g.Procs {
			for occ := 0; occ < occs; occ++ {
				jobs = append(jobs, jobItem{
					graph: g, proc: p, occ: occ,
					prio: prio[p.ID], topo: topoPos[p.ID],
				})
			}
		}
	}
	sortJobs(jobs)
	return jobs, nil
}

// sortJobs orders jobs for the list scheduler: higher partial-critical-
// path priority first, with every occurrence of a process kept together
// (ascending). Priority strictly decreases along graph edges, so all jobs
// of a predecessor precede all jobs of its successors — which both
// respects precedence and lets the mapper verify every occurrence of a
// process before committing its node binding.
func sortJobs(jobs []jobItem) {
	sort.Slice(jobs, func(i, j int) bool {
		a, b := jobs[i], jobs[j]
		if a.prio != b.prio {
			return a.prio > b.prio
		}
		if a.topo != b.topo {
			return a.topo < b.topo
		}
		if a.graph.ID != b.graph.ID {
			return a.graph.ID < b.graph.ID
		}
		if a.proc.ID != b.proc.ID {
			return a.proc.ID < b.proc.ID
		}
		return a.occ < b.occ
	})
}

// Restrict returns a new state over sys containing only the applications
// accepted by keep, with their schedule entries copied verbatim from src.
// This is how an application is "unscheduled": build the complement. sys
// may differ from src's system (e.g. it additionally contains the next
// application to be placed) but must share the architecture and yield the
// same hyperperiod. The reconstruction works purely from the schedule
// tables, so the result is exactly what scheduling the kept applications
// in src's positions would have produced.
func Restrict(src *State, sys *model.System, keep func(model.AppID) bool) (*State, error) {
	if sys.Arch != src.sys.Arch {
		return nil, fmt.Errorf("sched: restrict: target system has a different architecture")
	}
	st, err := NewState(sys)
	if err != nil {
		return nil, err
	}
	if st.horizon != src.horizon {
		return nil, fmt.Errorf("sched: restrict: hyperperiod changes from %v to %v", src.horizon, st.horizon)
	}
	for _, e := range src.procs {
		if !keep(e.App) {
			continue
		}
		if err := st.busy[e.Node].Insert(tm.Iv(e.Start, e.End)); err != nil {
			return nil, fmt.Errorf("sched: restrict: %w", err)
		}
		st.procs = append(st.procs, e)
		j := Job{Proc: e.Proc, Occ: e.Occ}
		st.jobEnd[j] = e.End
		st.jobNode[j] = e.Node
		st.mapping[e.Proc] = e.Node
	}
	for _, m := range src.msgs {
		if !keep(m.App) {
			continue
		}
		if err := st.buses[m.Bus].Reserve(m.Round, m.Slot, m.Bytes); err != nil {
			return nil, fmt.Errorf("sched: restrict: %w", err)
		}
		st.msgs = append(st.msgs, m)
	}
	return st, nil
}
