package sched

import (
	"fmt"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// MapApp constructs a mapping for app while scheduling it, following the
// Heterogeneous Critical Path strategy: jobs are visited in decreasing
// partial-critical-path priority; the first time a process is visited it
// is bound to the allowed node on which this occurrence would finish
// earliest (accounting for inter-node messages over the TDMA bus and for
// the slack left by everything already in the state). Subsequent
// occurrences reuse the binding — a process is mapped once.
//
// The greedy binding is made at the first occurrence, which can doom a
// later occurrence of the same process on a loaded system; when that
// happens the offending (process, node) pair is banned and mapping
// restarts, up to a small retry budget.
//
// On success the application is fully scheduled into the state and its
// mapping is returned. On failure the state is left unchanged.
func (s *State) MapApp(app *model.Application, hints Hints) (model.Mapping, error) {
	const maxAttempts = 8
	banned := map[model.ProcID]map[model.NodeID]bool{}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		trial := s.Clone()
		mapping, failed, err := trial.mapAppOnce(app, hints, banned)
		if err == nil {
			*s = *trial
			return mapping, nil
		}
		lastErr = err
		if failed.proc < 0 {
			break // structural failure; retrying cannot help
		}
		if banned[failed.proc] == nil {
			banned[failed.proc] = map[model.NodeID]bool{}
		}
		banned[failed.proc][failed.node] = true
	}
	return nil, lastErr
}

// failedBinding identifies the (process, node) decision that broke a
// mapping attempt; proc < 0 means the failure was not binding-related.
type failedBinding struct {
	proc model.ProcID
	node model.NodeID
}

var noBinding = failedBinding{proc: -1}

// mapAppOnce runs one greedy mapping pass, skipping banned bindings.
// The job list keeps all occurrences of a process adjacent (all of their
// predecessors' jobs come first), so the node binding is verified against
// every occurrence before it is committed, and the whole run is scheduled
// immediately afterwards. Occurrences of one process live in disjoint
// deadline windows and disjoint bus rounds, so the per-occurrence
// verification remains exact when the run is committed.
func (s *State) mapAppOnce(app *model.Application, hints Hints,
	banned map[model.ProcID]map[model.NodeID]bool) (model.Mapping, failedBinding, error) {

	jobs, err := s.jobList(app)
	if err != nil {
		return nil, noBinding, err
	}
	mapping := model.Mapping{}
	for i := 0; i < len(jobs); {
		// Collect the contiguous run of this process's occurrences.
		j := i
		for j < len(jobs) && jobs[j].proc.ID == jobs[i].proc.ID {
			j++
		}
		run := jobs[i:j]
		node, ok := s.bestNodeRun(run, hints, banned[run[0].proc.ID])
		if !ok {
			return nil, noBinding, fmt.Errorf("sched: process %d fits on no allowed node (all %d occurrences considered)",
				run[0].proc.ID, len(run))
		}
		mapping[run[0].proc.ID] = node
		for _, jb := range run {
			if err := s.scheduleJob(app, jb.graph, jb.proc, jb.occ, mapping, hints); err != nil {
				return nil, failedBinding{proc: jb.proc.ID, node: node}, err
			}
		}
		i = j
	}
	for p, n := range mapping {
		s.mapping[p] = n
	}
	return mapping, noBinding, nil
}

// bestNodeRun evaluates every allowed, non-banned node against every
// occurrence of the process and returns the feasible node with the
// earliest first-occurrence finish time.
func (s *State) bestNodeRun(run []jobItem, hints Hints, banned map[model.NodeID]bool) (model.NodeID, bool) {
	var bestNode model.NodeID
	bestEnd := tm.Infinity
	found := false
	// AllowedNodes is ascending, so on ties the lowest node ID wins.
	for _, node := range run[0].proc.AllowedNodes() {
		if banned[node] {
			continue
		}
		end, ok := s.tryJobOn(run[0], node, hints)
		if !ok {
			continue
		}
		feasible := true
		for _, jb := range run[1:] {
			if _, ok := s.tryJobOn(jb, node, hints); !ok {
				feasible = false
				break
			}
		}
		if feasible && end < bestEnd {
			bestEnd = end
			bestNode = node
			found = true
		}
	}
	return bestNode, found
}

// tryJobOn computes the finish time the job would have on the given node
// without committing anything. Message slot capacity is checked exactly by
// reserving tentatively and releasing before returning.
func (s *State) tryJobOn(jb jobItem, node model.NodeID, hints Hints) (tm.Time, bool) {
	p, g, occ := jb.proc, jb.graph, jb.occ
	wcet, ok := p.WCET[node]
	if !ok {
		return 0, false
	}
	release := tm.Time(occ) * g.Period
	deadline := jobDeadline(g, occ)

	type tempRes struct {
		bus         model.BusID
		round, slot int
		bytes       int
	}
	var reserved []tempRes
	defer func() {
		for _, r := range reserved {
			s.buses[r.bus].Release(r.round, r.slot, r.bytes)
		}
	}()

	dataReady := release
	for _, m := range g.InMsgs(p.ID) {
		pred := Job{Proc: m.Src, Occ: occ}
		predEnd, ok := s.jobEnd[pred]
		if !ok {
			return 0, false // predecessor unscheduled: cannot evaluate
		}
		if s.jobNode[pred] == node {
			dataReady = tm.Max(dataReady, predEnd)
			continue
		}
		earliest := predEnd
		if off, ok := hints.MsgStart[m.ID]; ok {
			earliest = tm.Max(earliest, release+off)
		}
		route := s.routes.Route(s.jobNode[pred], node)
		if len(route) == 0 {
			return 0, false
		}
		var found [4]hopSlot
		slots, ok := s.findRoute(route, m.Bytes, earliest, found[:0])
		if !ok && earliest > predEnd {
			slots, ok = s.findRoute(route, m.Bytes, predEnd, found[:0])
		}
		if !ok {
			return 0, false
		}
		// Reserve the whole chain tentatively so subsequent in-messages
		// of this job see the capacity taken, exactly like scheduleJob
		// would take it.
		for i, hop := range route {
			if err := s.buses[hop.Bus].Reserve(slots[i].round, slots[i].slot, m.Bytes); err != nil {
				return 0, false
			}
			reserved = append(reserved, tempRes{hop.Bus, slots[i].round, slots[i].slot, m.Bytes})
		}
		last := route[len(route)-1]
		dataReady = tm.Max(dataReady,
			s.buses[last.Bus].Bus().SlotEnd(slots[len(slots)-1].round, slots[len(slots)-1].slot))
	}

	earliest := dataReady
	if off, ok := hints.ProcStart[p.ID]; ok {
		earliest = tm.Max(earliest, release+off)
	}
	start, ok := s.busy[node].FirstFit(earliest, wcet, deadline)
	if !ok && earliest > dataReady {
		start, ok = s.busy[node].FirstFit(dataReady, wcet, deadline)
	}
	if !ok {
		return 0, false
	}
	return start + wcet, true
}
