package sched

import (
	"incdes/internal/obs"
	"incdes/internal/ttp"
)

// Stats are the scheduler-side observability instruments a State
// reports into. The zero value (all nil) disables instrumentation; see
// package obs for the "free when off" contract.
type Stats struct {
	// ScheduleCalls counts ScheduleApp invocations — one per examined
	// design alternative that was not served from the evaluation memo.
	ScheduleCalls *obs.Counter
	// JobsPlaced counts process occurrences inserted into node schedules.
	JobsPlaced *obs.Counter
	// MsgsPlaced counts message occurrences reserved on the bus.
	MsgsPlaced *obs.Counter
	// Failures counts ScheduleApp calls that found the design infeasible.
	Failures *obs.Counter
}

// StatsFrom resolves the canonical scheduler instruments from a
// registry. A nil registry yields all-nil (disabled) stats.
func StatsFrom(r *obs.Registry) Stats {
	return Stats{
		ScheduleCalls: r.Counter(obs.CtrSchedCalls),
		JobsPlaced:    r.Counter(obs.CtrSchedJobs),
		MsgsPlaced:    r.Counter(obs.CtrSchedMsgs),
		Failures:      r.Counter(obs.CtrSchedFailures),
	}
}

// SetStats attaches observability instruments to the state. Stats are
// sink configuration, not schedule content: Clone propagates them to
// the copy, while CloneInto leaves the destination's attachment alone,
// so a reused scratch state keeps its instruments while being
// overwritten from an uninstrumented base. Bus-side instruments attach
// separately via BusState().SetStats. Instruments never influence
// placement decisions.
func (s *State) SetStats(st Stats) { s.stats = st }

// SetBusStats attaches bus-side instruments to every TDMA bus ledger of
// the state; the single-bus form of BusState().SetStats generalized to
// multi-cluster architectures.
func (s *State) SetBusStats(st ttp.Stats) {
	for _, b := range s.buses {
		b.SetStats(st)
	}
}
