package slack

import (
	"reflect"
	"testing"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// occupiedState builds a 2-node system (bus round 20) with one application
// whose two processes are pinned by hints: A on node 0 at [10,40),
// B on node 1 at [50,60); horizon 100.
func occupiedState(t *testing.T) *sched.State {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2)
	g := b.App("a").Graph("G", 100, 100)
	pa := g.Proc("A", map[model.NodeID]tm.Time{n0: 30})
	pb := g.Proc("B", map[model.NodeID]tm.Time{n1: 10})
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	hints := sched.Hints{}.SetProcStart(pa, 10).SetProcStart(pb, 50)
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{pa: n0, pb: n1}, hints); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestProcessorSlack(t *testing.T) {
	st := occupiedState(t)
	per := Processor(st)
	want0 := []tm.Interval{tm.Iv(0, 10), tm.Iv(40, 100)}
	if !reflect.DeepEqual(per[0], want0) {
		t.Errorf("node 0 slack = %v, want %v", per[0], want0)
	}
	want1 := []tm.Interval{tm.Iv(0, 50), tm.Iv(60, 100)}
	if !reflect.DeepEqual(per[1], want1) {
		t.Errorf("node 1 slack = %v, want %v", per[1], want1)
	}
}

func TestAllIntervalsAndLengths(t *testing.T) {
	st := occupiedState(t)
	ivs := AllIntervals(Processor(st))
	if len(ivs) != 4 {
		t.Fatalf("%d intervals, want 4", len(ivs))
	}
	lens := Lengths(ivs)
	want := []int64{10, 60, 50, 40}
	if !reflect.DeepEqual(lens, want) {
		t.Errorf("Lengths = %v, want %v", lens, want)
	}
}

func TestWindowSlack(t *testing.T) {
	idle := []tm.Interval{tm.Iv(0, 10), tm.Iv(40, 100)}
	got := WindowSlack(idle, 50, 100)
	// Window [0,50): idle 0-10 and 40-50 = 20. Window [50,100): 50.
	want := []tm.Time{20, 50}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WindowSlack = %v, want %v", got, want)
	}
	if got := MinWindowSlack(idle, 50, 100); got != 20 {
		t.Errorf("MinWindowSlack = %v, want 20", got)
	}
}

func TestWindowSlackShortHorizon(t *testing.T) {
	idle := []tm.Interval{tm.Iv(0, 30)}
	got := WindowSlack(idle, 500, 100) // Tmin longer than the horizon
	if len(got) != 1 || got[0] != 30 {
		t.Errorf("WindowSlack = %v, want [30]", got)
	}
}

func TestBusFreeBytes(t *testing.T) {
	st := occupiedState(t)
	free := BusFreeBytes(st)
	// 5 rounds x 2 slots, no messages scheduled: all 8 bytes free.
	if len(free) != 10 {
		t.Fatalf("%d slot occurrences, want 10", len(free))
	}
	for i, f := range free {
		if f != 8 {
			t.Errorf("occurrence %d free = %d, want 8", i, f)
		}
	}
}

func TestBusWindowFree(t *testing.T) {
	st := occupiedState(t)
	// Reserve 3 bytes in the very first slot occurrence.
	if err := st.BusState().Reserve(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	ws := BusWindowFree(st, 50)
	// Per 50-tu window: 2.5 rounds; slots ending in [0,50): rounds 0 and 1
	// fully (4 slots), plus round 2 slot 0 ends at 50... end-1=49 -> w=0.
	// Total capacity: 5 slots * 8 - 3 = 37. Second window: 5 slots * 8 = 40.
	want := []int64{37, 40}
	if !reflect.DeepEqual(ws, want) {
		t.Errorf("BusWindowFree = %v, want %v", ws, want)
	}
	if got := MinBusWindowFree(st, 50); got != 37 {
		t.Errorf("MinBusWindowFree = %d, want 37", got)
	}
}

func TestFragments(t *testing.T) {
	st := occupiedState(t)
	fr := Fragments(st)
	if len(fr) != 2 {
		t.Fatalf("%d fragmentation records", len(fr))
	}
	f0 := fr[0]
	if f0.Node != 0 || f0.Pieces != 2 || f0.Total != 70 || f0.Largest != 60 || f0.MeanPiece != 35 {
		t.Errorf("node 0 fragmentation = %+v", f0)
	}
}
