// Package slack extracts and analyzes the free resources of a design
// alternative: the idle intervals of every processor and the unused
// capacity of every TDMA slot occurrence. The design metrics (package
// metrics) and the mapping heuristic's candidate selection both build on
// these views.
package slack

import (
	"sort"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// Processor returns the idle intervals of every node over the schedule
// horizon, in node order.
func Processor(st *sched.State) map[model.NodeID][]tm.Interval {
	out := make(map[model.NodeID][]tm.Interval, len(st.System().Arch.Nodes))
	window := tm.Iv(0, st.Horizon())
	for _, n := range st.System().Arch.Nodes {
		out[n.ID] = st.Busy(n.ID).Gaps(window)
	}
	return out
}

// AllIntervals flattens the per-node slack map into a single slice
// (the containers for the C1P bin packing).
func AllIntervals(perNode map[model.NodeID][]tm.Interval) []tm.Interval {
	var nodes []model.NodeID
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var out []tm.Interval
	for _, n := range nodes {
		out = append(out, perNode[n]...)
	}
	return out
}

// Lengths converts intervals to their lengths as int64 bin capacities.
func Lengths(ivs []tm.Interval) []int64 {
	out := make([]int64, len(ivs))
	for i, iv := range ivs {
		out[i] = int64(iv.Len())
	}
	return out
}

// WindowSlack splits [0, horizon) into consecutive windows of length tmin
// (only full windows count) and returns the total idle time per window
// given a node's idle intervals. The paper's second criterion needs the
// minimum of these: slack must be available *periodically*, not just in
// total.
func WindowSlack(idle []tm.Interval, tmin, horizon tm.Time) []tm.Time {
	return WindowSlackInto(nil, idle, tmin, horizon)
}

// WindowSlackInto is WindowSlack writing into dst (resized as needed):
// the allocation-reusing form for callers that recompute per-window
// slack once per candidate evaluation. The computed values are identical
// to WindowSlack's.
func WindowSlackInto(dst []tm.Time, idle []tm.Interval, tmin, horizon tm.Time) []tm.Time {
	n := int(horizon / tmin)
	if n == 0 {
		// A horizon shorter than Tmin still has one (clipped) window.
		n = 1
		tmin = horizon
	}
	if cap(dst) < n {
		dst = make([]tm.Time, n)
	}
	dst = dst[:n]
	for w := 0; w < n; w++ {
		win := tm.Iv(tm.Time(w)*tmin, tm.Time(w+1)*tmin)
		var total tm.Time
		for _, iv := range idle {
			total += iv.Intersect(win).Len()
		}
		dst[w] = total
	}
	return dst
}

// MinWindowSlack returns the minimum per-window idle time.
func MinWindowSlack(idle []tm.Interval, tmin, horizon tm.Time) tm.Time {
	ws := WindowSlack(idle, tmin, horizon)
	min := ws[0]
	for _, v := range ws[1:] {
		min = tm.Min(min, v)
	}
	return min
}

// BusFreeBytes returns the free capacity of every slot occurrence of
// every bus (the containers for the C1m bin packing): bus 0's
// occurrences in time order, then bus 1's, and so on. For a single-bus
// architecture this is exactly the bus's occurrence list in time order.
func BusFreeBytes(st *sched.State) []int64 {
	var out []int64
	for bi := 0; bi < st.NumBuses(); bi++ {
		occs := st.BusStateAt(bi).Occurrences()
		if out == nil {
			out = make([]int64, 0, len(occs)*st.NumBuses())
		}
		for _, o := range occs {
			out = append(out, int64(o.FreeBytes))
		}
	}
	return out
}

// BusWindowFree splits the horizon into tmin windows and returns the free
// bus capacity (bytes) per window, summed over every bus. A slot
// occurrence contributes to the window containing its end time (when its
// frame would be delivered).
func BusWindowFree(st *sched.State, tmin tm.Time) []int64 {
	horizon := st.Horizon()
	n := int(horizon / tmin)
	if n == 0 {
		n = 1
		tmin = horizon
	}
	out := make([]int64, n)
	for bi := 0; bi < st.NumBuses(); bi++ {
		for _, o := range st.BusStateAt(bi).Occurrences() {
			w := int((o.End - 1) / tmin)
			if w >= n {
				w = n - 1
			}
			out[w] += int64(o.FreeBytes)
		}
	}
	return out
}

// PerBusFreeBytes returns the total free bytes of each bus over the
// horizon, in bus-ID order: the per-cluster capacity view of a
// multi-cluster design.
func PerBusFreeBytes(st *sched.State) []int64 {
	out := make([]int64, st.NumBuses())
	for bi := 0; bi < st.NumBuses(); bi++ {
		for _, o := range st.BusStateAt(bi).Occurrences() {
			out[bi] += int64(o.FreeBytes)
		}
	}
	return out
}

// MinBusWindowFree returns the minimum per-window free bus capacity.
func MinBusWindowFree(st *sched.State, tmin tm.Time) int64 {
	ws := BusWindowFree(st, tmin)
	min := ws[0]
	for _, v := range ws[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Fragmentation summarizes how broken-up a node's slack is; the mapping
// heuristic uses it to find the processes with the highest potential to
// improve the design when moved.
type Fragmentation struct {
	Node      model.NodeID
	Pieces    int     // number of distinct idle intervals
	Total     tm.Time // total idle time
	Largest   tm.Time // largest single idle interval
	MeanPiece tm.Time // Total / Pieces (0 when no slack)
}

// Fragments computes per-node fragmentation statistics.
func Fragments(st *sched.State) []Fragmentation {
	per := Processor(st)
	nodes := st.System().Arch.NodeIDs()
	out := make([]Fragmentation, 0, len(nodes))
	for _, n := range nodes {
		f := Fragmentation{Node: n}
		for _, iv := range per[n] {
			f.Pieces++
			f.Total += iv.Len()
			f.Largest = tm.Max(f.Largest, iv.Len())
		}
		if f.Pieces > 0 {
			f.MeanPiece = f.Total / tm.Time(f.Pieces)
		}
		out = append(out, f)
	}
	return out
}
