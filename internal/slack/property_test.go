package slack_test

import (
	"incdes/internal/slack"
	"math/rand"
	"testing"
	"testing/quick"

	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/tm"
)

// TestQuickSlackComplementsBusy: on randomly generated scheduled systems,
// per-node slack and busy time partition the horizon exactly, and no
// slack interval overlaps a scheduled entry.
func TestQuickSlackComplementsBusy(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 4
	cfg.GraphMinProcs = 4
	cfg.GraphMaxProcs = 8
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		tc, err := gen.MakeTestCase(cfg, seed%1000, 30, 10)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		st := tc.Base
		per := slack.Processor(st)
		horizon := st.Horizon()
		for _, n := range st.System().Arch.NodeIDs() {
			var slackTotal tm.Time
			for _, iv := range per[n] {
				slackTotal += iv.Len()
				if st.Busy(n).OverlapsAny(iv) {
					return false
				}
			}
			if slackTotal+st.Busy(n).Total() != horizon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickWindowSlackSumsToTotal: the per-window slack of any node sums
// to its total slack when Tmin divides the horizon.
func TestQuickWindowSlackSumsToTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = tm.Time(240)
		// Random idle intervals.
		busy := tm.NewSet()
		for i := 0; i < 12; i++ {
			a := tm.Time(rng.Int63n(int64(horizon)))
			b := a + 1 + tm.Time(rng.Int63n(20))
			if b > horizon {
				b = horizon
			}
			busy.Add(tm.Iv(a, b))
		}
		idle := busy.Gaps(tm.Iv(0, horizon))
		for _, tmin := range []tm.Time{40, 60, 120, 240} {
			ws := slack.WindowSlack(idle, tmin, horizon)
			var sum tm.Time
			for _, w := range ws {
				sum += w
			}
			var total tm.Time
			for _, iv := range idle {
				total += iv.Len()
			}
			if sum != total {
				return false
			}
			if len(ws) != int(horizon/tmin) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLengthsEmpty(t *testing.T) {
	if got := slack.Lengths(nil); len(got) != 0 {
		t.Errorf("slack.Lengths(nil) = %v", got)
	}
}

func TestAllIntervalsDeterministicOrder(t *testing.T) {
	per := map[model.NodeID][]tm.Interval{
		2: {tm.Iv(0, 5)},
		0: {tm.Iv(10, 15)},
		1: {tm.Iv(20, 25)},
	}
	a := slack.AllIntervals(per)
	b := slack.AllIntervals(per)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("AllIntervals order not deterministic")
		}
	}
	// Node order: 0, 1, 2.
	if a[0] != tm.Iv(10, 15) || a[2] != tm.Iv(0, 5) {
		t.Errorf("AllIntervals = %v, want node-ascending order", a)
	}
}
