package analysis

import (
	"strings"
	"testing"

	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/sim"
	"incdes/internal/tm"
)

func handBuiltState(t *testing.T) (*sched.State, *model.System) {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2) // round 20
	g := b.App("a").Graph("G", 100, 80)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n1: 15})
	g.Msg(p1, p2, 4)
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: n0, p2: n1}, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	return st, sys
}

func TestAnalyzeTiming(t *testing.T) {
	st, sys := handBuiltState(t)
	rep, err := Analyze(st, sys.Apps[0])
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// P1 [0,10), message arrives 30, P2 [30,45): response 45, laxity 35.
	gt := rep.Apps[0].Graphs[0]
	if gt.WorstResponse != 45 {
		t.Errorf("WorstResponse = %v, want 45", gt.WorstResponse)
	}
	if gt.WorstLaxity != 35 {
		t.Errorf("WorstLaxity = %v, want 35", gt.WorstLaxity)
	}
	if got := rep.MinLaxity(); got != 35 {
		t.Errorf("MinLaxity = %v, want 35", got)
	}
	if rep.Apps[0].BusBytes != 4 {
		t.Errorf("BusBytes = %d, want 4", rep.Apps[0].BusBytes)
	}
}

func TestAnalyzeUtilization(t *testing.T) {
	st, sys := handBuiltState(t)
	rep, err := Analyze(st, sys.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: 10/100; node 1: 15/100.
	if rep.NodeUtil[0] != 0.10 || rep.NodeUtil[1] != 0.15 {
		t.Errorf("NodeUtil = %v", rep.NodeUtil)
	}
	if rep.MaxUtil() != 0.15 {
		t.Errorf("MaxUtil = %v, want 0.15", rep.MaxUtil())
	}
	// Bus: 4 bytes of 5 rounds * 16 bytes = 80.
	if want := 4.0 / 80.0; rep.BusUtil != want {
		t.Errorf("BusUtil = %v, want %v", rep.BusUtil, want)
	}
}

func TestAnalyzeDetectsMissingGraph(t *testing.T) {
	st, sys := handBuiltState(t)
	ghost := &model.Application{ID: 99, Name: "ghost", Graphs: []*model.Graph{{
		ID: 99, Name: "g", Period: 100, Deadline: 100,
		Procs: []*model.Process{{ID: 99, WCET: map[model.NodeID]tm.Time{0: 10}}},
	}}}
	if _, err := Analyze(st, sys.Apps[0], ghost); err == nil {
		t.Error("unscheduled application accepted")
	}
}

func TestReportString(t *testing.T) {
	st, sys := handBuiltState(t)
	rep, err := Analyze(st, sys.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"node N0", "bus", "application \"a\"", "worst response"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeGeneratedCase(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 4
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 8
	tc, err := gen.MakeTestCase(cfg, 3, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tc.Base, tc.Existing...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MinLaxity() < 0 {
		t.Errorf("negative laxity %v in a valid schedule", rep.MinLaxity())
	}
	if rep.MaxUtil() <= 0 || rep.MaxUtil() > 1 {
		t.Errorf("MaxUtil = %v out of range", rep.MaxUtil())
	}
	for n, u := range rep.NodeUtil {
		if u < 0 || u > 1 {
			t.Errorf("node %d utilization %v out of range", n, u)
		}
	}
}

// TestAnalyzeAgreesWithSim: on generated cases, a schedule the oracle
// accepts must show non-negative laxity everywhere, and vice versa — a
// negative worst laxity would be a deadline miss the oracle reports.
func TestAnalyzeAgreesWithSim(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 4
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 8
	for seed := int64(0); seed < 3; seed++ {
		tc, err := gen.MakeTestCase(cfg, seed, 40, 20)
		if err != nil {
			t.Fatal(err)
		}
		st := tc.Base.Clone()
		if _, err := st.MapApp(tc.Current, sched.Hints{}); err != nil {
			t.Fatal(err)
		}
		apps := append(append([]*model.Application{}, tc.Existing...), tc.Current)
		if vs := sim.Check(st, apps...); len(vs) != 0 {
			t.Fatalf("seed %d: oracle rejects schedule: %v", seed, vs[0])
		}
		rep, err := Analyze(st, apps...)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MinLaxity() < 0 {
			t.Errorf("seed %d: oracle-valid schedule has negative laxity %v", seed, rep.MinLaxity())
		}
		// Response never exceeds deadline for any graph.
		for _, ar := range rep.Apps {
			for _, gt := range ar.Graphs {
				if gt.WorstResponse < 0 {
					t.Errorf("negative response %v", gt.WorstResponse)
				}
			}
		}
	}
}
