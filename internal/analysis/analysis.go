// Package analysis derives designer-facing reports from a finished
// schedule: end-to-end response times per process graph, laxity against
// deadlines, processor and bus utilization, and per-application summaries.
// cmd/incmap uses it for inspection; tests use it to assert schedule
// quality properties that the raw tables make awkward to express.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// GraphTiming summarizes the schedule of one process graph.
type GraphTiming struct {
	Graph model.GraphID
	Name  string
	// WorstResponse is the maximum, over occurrences, of the time from
	// release to the completion of the graph's last process.
	WorstResponse tm.Time
	// WorstLaxity is the minimum, over occurrences, of deadline minus
	// completion: how close the graph comes to missing its deadline.
	WorstLaxity tm.Time
	// Occurrences is how many times the graph appears in the horizon.
	Occurrences int
}

// AppReport aggregates one application's schedule.
type AppReport struct {
	App    model.AppID
	Name   string
	Graphs []GraphTiming
	// BusBytes is the total bus payload the application occupies over
	// the horizon.
	BusBytes int
}

// Report is the full analysis of a schedule state.
type Report struct {
	Horizon tm.Time
	// NodeUtil is the busy fraction (0..1) of each node over the horizon.
	NodeUtil map[model.NodeID]float64
	// BusUtil is the fraction of bus slot capacity (bytes) in use,
	// aggregated over every bus.
	BusUtil float64
	// PerBusUtil is the used capacity fraction of each bus in bus-ID
	// order (one entry for single-bus architectures, equal to BusUtil).
	PerBusUtil []float64
	Apps       []AppReport
}

// Analyze computes the report for the given applications (typically every
// application scheduled in st).
func Analyze(st *sched.State, apps ...*model.Application) (*Report, error) {
	horizon := st.Horizon()
	rep := &Report{
		Horizon:  horizon,
		NodeUtil: map[model.NodeID]float64{},
	}
	for _, n := range st.System().Arch.NodeIDs() {
		rep.NodeUtil[n] = float64(st.Busy(n).Total()) / float64(horizon)
	}

	var capBytes, freeBytes int
	rep.PerBusUtil = make([]float64, st.NumBuses())
	for bi := 0; bi < st.NumBuses(); bi++ {
		var busCap, busFree int
		for _, o := range st.BusStateAt(bi).Occurrences() {
			busCap += st.System().Arch.Buses[bi].SlotBytes[o.Slot]
			busFree += o.FreeBytes
		}
		if busCap > 0 {
			rep.PerBusUtil[bi] = float64(busCap-busFree) / float64(busCap)
		}
		capBytes += busCap
		freeBytes += busFree
	}
	if capBytes > 0 {
		rep.BusUtil = float64(capBytes-freeBytes) / float64(capBytes)
	}

	// Completion per (graph, occ).
	type gocc struct {
		g   model.GraphID
		occ int
	}
	completion := map[gocc]tm.Time{}
	for _, e := range st.ProcEntries() {
		k := gocc{e.Graph, e.Occ}
		if e.End > completion[k] {
			completion[k] = e.End
		}
	}
	busBytes := map[model.AppID]int{}
	for _, e := range st.MsgEntries() {
		busBytes[e.App] += e.Bytes
	}

	for _, app := range apps {
		ar := AppReport{App: app.ID, Name: app.Name, BusBytes: busBytes[app.ID]}
		for _, g := range app.Graphs {
			occs := int(horizon / g.Period)
			gt := GraphTiming{Graph: g.ID, Name: g.Name, Occurrences: occs, WorstLaxity: tm.Infinity}
			for occ := 0; occ < occs; occ++ {
				end, ok := completion[gocc{g.ID, occ}]
				if !ok {
					return nil, fmt.Errorf("analysis: graph %d occ %d not scheduled", g.ID, occ)
				}
				release := tm.Time(occ) * g.Period
				resp := end - release
				gt.WorstResponse = tm.Max(gt.WorstResponse, resp)
				gt.WorstLaxity = tm.Min(gt.WorstLaxity, g.Deadline-resp)
			}
			ar.Graphs = append(ar.Graphs, gt)
		}
		rep.Apps = append(rep.Apps, ar)
	}
	return rep, nil
}

// String renders the report as an aligned text block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "horizon %v\n", r.Horizon)

	var nodes []model.NodeID
	for n := range r.NodeUtil {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Fprintf(&b, "node N%-3d utilization %5.1f%%\n", n, 100*r.NodeUtil[n])
	}
	fmt.Fprintf(&b, "bus       utilization %5.1f%%\n", 100*r.BusUtil)
	for _, ar := range r.Apps {
		fmt.Fprintf(&b, "application %q (%dB on the bus)\n", ar.Name, ar.BusBytes)
		for _, gt := range ar.Graphs {
			fmt.Fprintf(&b, "  graph %-20s x%-2d worst response %6v, worst laxity %6v\n",
				gt.Name, gt.Occurrences, gt.WorstResponse, gt.WorstLaxity)
		}
	}
	return b.String()
}

// MaxUtil returns the utilization of the most loaded node.
func (r *Report) MaxUtil() float64 {
	max := 0.0
	for _, u := range r.NodeUtil {
		if u > max {
			max = u
		}
	}
	return max
}

// MinLaxity returns the smallest laxity over all graphs of all reported
// applications: the schedule's global distance to a deadline miss.
func (r *Report) MinLaxity() tm.Time {
	min := tm.Infinity
	for _, ar := range r.Apps {
		for _, gt := range ar.Graphs {
			min = tm.Min(min, gt.WorstLaxity)
		}
	}
	return min
}
