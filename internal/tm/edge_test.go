package tm

import (
	"reflect"
	"strings"
	"testing"
)

func TestIntervalString(t *testing.T) {
	if got := Iv(3, 9).String(); got != "[3,9)" {
		t.Errorf("String = %q", got)
	}
}

func TestSetStringListsIntervals(t *testing.T) {
	s := NewSet(Iv(1, 2), Iv(5, 9))
	out := s.String()
	if !strings.Contains(out, "[1,2)") || !strings.Contains(out, "[5,9)") {
		t.Errorf("Set.String = %q", out)
	}
}

func TestNextFitsStopsAtLatestEnd(t *testing.T) {
	s := NewSet(Iv(10, 20))
	// Only the first gap [0,10) ends before latestEnd 15.
	got := s.NextFits(0, 5, 15, 10)
	if !reflect.DeepEqual(got, []Time{0}) {
		t.Errorf("NextFits = %v, want [0]", got)
	}
	if got := s.NextFits(0, 20, 15, 10); got != nil {
		t.Errorf("oversized NextFits = %v, want none", got)
	}
}

func TestNextFitsEmptySet(t *testing.T) {
	s := NewSet()
	got := s.NextFits(5, 10, 100, 3)
	// One infinite gap: a single candidate at the earliest position.
	if !reflect.DeepEqual(got, []Time{5}) {
		t.Errorf("NextFits on empty set = %v, want [5]", got)
	}
}

func TestFirstFitZeroDuration(t *testing.T) {
	s := NewSet(Iv(20, 30))
	start, ok := s.FirstFit(5, 0, 5)
	if !ok || start != 5 {
		t.Errorf("zero-duration FirstFit in free space = (%v,%v), want (5,true)", start, ok)
	}
	// A zero-duration placement inside a busy interval is pushed out like
	// any other, and fails when that exceeds the bound.
	busy := NewSet(Iv(0, 10))
	if _, ok := busy.FirstFit(5, 0, 5); ok {
		t.Error("zero-duration placement inside a busy interval accepted")
	}
	if _, ok := s.FirstFit(5, -1, 100); ok {
		t.Error("negative duration accepted")
	}
}

func TestRemoveNoopOutsideSet(t *testing.T) {
	s := NewSet(Iv(10, 20))
	s.Remove(Iv(30, 40))
	s.Remove(Iv(0, 5))
	s.Remove(Iv(15, 15)) // empty
	if s.Total() != 10 {
		t.Errorf("Total = %v after no-op removes", s.Total())
	}
}

func TestGapsEmptyWindow(t *testing.T) {
	s := NewSet(Iv(0, 10))
	if gaps := s.Gaps(Iv(5, 5)); gaps != nil {
		t.Errorf("empty window gaps = %v", gaps)
	}
}

func TestOverlapsAnyEmptyInterval(t *testing.T) {
	s := NewSet(Iv(0, 10))
	if s.OverlapsAny(Iv(5, 5)) {
		t.Error("empty interval overlaps")
	}
}

func TestAddEmptyIntervalIgnored(t *testing.T) {
	s := NewSet()
	s.Add(Iv(7, 7))
	s.Add(Iv(9, 3))
	if s.Len() != 0 {
		t.Errorf("empty adds produced %d intervals", s.Len())
	}
}

func TestGCDNegativeSafeUse(t *testing.T) {
	// GCD is documented for non-negative inputs; LCMAll guards zero.
	if got := GCD(0, 0); got != 0 {
		t.Errorf("GCD(0,0) = %v", got)
	}
}

func TestLCMOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LCM overflow did not panic")
		}
	}()
	LCM(Infinity-1, Infinity-2)
}
