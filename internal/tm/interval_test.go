package tm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Iv(10, 20)
	if iv.Len() != 10 {
		t.Errorf("Len = %d, want 10", iv.Len())
	}
	if iv.Empty() {
		t.Error("non-empty interval reported Empty")
	}
	if !Iv(5, 5).Empty() {
		t.Error("degenerate interval not Empty")
	}
	if !iv.Contains(10) || iv.Contains(20) || iv.Contains(9) {
		t.Error("Contains violates half-open semantics")
	}
}

func TestIntervalOverlaps(t *testing.T) {
	tests := []struct {
		a, b Interval
		want bool
	}{
		{Iv(0, 10), Iv(5, 15), true},
		{Iv(0, 10), Iv(10, 20), false}, // touching is not overlapping
		{Iv(0, 10), Iv(2, 3), true},
		{Iv(5, 6), Iv(0, 100), true},
		{Iv(0, 1), Iv(2, 3), false},
	}
	for _, tc := range tests {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("Overlaps not symmetric for %v,%v", tc.a, tc.b)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	if got := Iv(0, 10).Intersect(Iv(5, 15)); got != Iv(5, 10) {
		t.Errorf("Intersect = %v, want [5,10)", got)
	}
	if got := Iv(0, 10).Intersect(Iv(20, 30)); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
}

func TestSetAddMergesOverlapping(t *testing.T) {
	s := NewSet(Iv(0, 10), Iv(5, 15))
	want := []Interval{Iv(0, 15)}
	if !reflect.DeepEqual(s.Intervals(), want) {
		t.Errorf("Intervals = %v, want %v", s.Intervals(), want)
	}
}

func TestSetAddMergesAdjacent(t *testing.T) {
	s := NewSet(Iv(0, 10), Iv(10, 20))
	if s.Len() != 1 || s.Total() != 20 {
		t.Errorf("adjacent intervals not merged: %v", s)
	}
}

func TestSetAddDisjointKeepsOrder(t *testing.T) {
	s := NewSet(Iv(20, 30), Iv(0, 5), Iv(10, 12))
	want := []Interval{Iv(0, 5), Iv(10, 12), Iv(20, 30)}
	if !reflect.DeepEqual(s.Intervals(), want) {
		t.Errorf("Intervals = %v, want %v", s.Intervals(), want)
	}
}

func TestSetAddBridgesManyIntervals(t *testing.T) {
	s := NewSet(Iv(0, 2), Iv(4, 6), Iv(8, 10), Iv(20, 22))
	s.Add(Iv(1, 9))
	want := []Interval{Iv(0, 10), Iv(20, 22)}
	if !reflect.DeepEqual(s.Intervals(), want) {
		t.Errorf("Intervals = %v, want %v", s.Intervals(), want)
	}
}

func TestSetInsertRejectsOverlap(t *testing.T) {
	s := NewSet(Iv(10, 20))
	if err := s.Insert(Iv(15, 25)); err == nil {
		t.Error("Insert of overlapping interval did not fail")
	}
	if err := s.Insert(Iv(20, 25)); err != nil {
		t.Errorf("Insert of adjacent interval failed: %v", err)
	}
	if err := s.Insert(Iv(5, 5)); err == nil {
		t.Error("Insert of empty interval did not fail")
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(Iv(10, 20), Iv(30, 40))
	for _, tc := range []struct {
		t    Time
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}, {25, false}, {30, true}, {39, true}, {40, false}} {
		if got := s.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestSetRemove(t *testing.T) {
	s := NewSet(Iv(0, 100))
	s.Remove(Iv(20, 30))
	want := []Interval{Iv(0, 20), Iv(30, 100)}
	if !reflect.DeepEqual(s.Intervals(), want) {
		t.Errorf("after Remove: %v, want %v", s.Intervals(), want)
	}
	s.Remove(Iv(0, 20)) // remove an exact interval
	if s.Total() != 70 {
		t.Errorf("Total = %d, want 70", s.Total())
	}
	s.Remove(Iv(25, 35)) // straddles a boundary
	want = []Interval{Iv(35, 100)}
	if !reflect.DeepEqual(s.Intervals(), want) {
		t.Errorf("after straddling Remove: %v, want %v", s.Intervals(), want)
	}
}

func TestSetGaps(t *testing.T) {
	s := NewSet(Iv(10, 20), Iv(30, 40))
	got := s.Gaps(Iv(0, 50))
	want := []Interval{Iv(0, 10), Iv(20, 30), Iv(40, 50)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Gaps = %v, want %v", got, want)
	}
}

func TestSetGapsWindowClipping(t *testing.T) {
	s := NewSet(Iv(10, 20))
	got := s.Gaps(Iv(15, 25))
	want := []Interval{Iv(20, 25)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Gaps = %v, want %v", got, want)
	}
	if gaps := s.Gaps(Iv(12, 18)); gaps != nil {
		t.Errorf("fully covered window produced gaps %v", gaps)
	}
	if gaps := NewSet().Gaps(Iv(5, 8)); !reflect.DeepEqual(gaps, []Interval{Iv(5, 8)}) {
		t.Errorf("empty set gaps = %v", gaps)
	}
}

func TestSetFirstFit(t *testing.T) {
	s := NewSet(Iv(10, 20), Iv(30, 40))
	tests := []struct {
		earliest, dur, latest Time
		want                  Time
		ok                    bool
	}{
		{0, 5, 100, 0, true},    // fits before first busy interval
		{0, 10, 100, 0, true},   // exactly fills the first gap
		{0, 11, 100, 40, true},  // too big for both 10-long gaps
		{0, 15, 100, 40, true},  // pushed past both busy intervals
		{12, 5, 100, 20, true},  // earliest inside a busy interval
		{0, 15, 50, 40, false},  // would end at 55 > 50
		{0, 10, 10, 0, true},    // end exactly at bound
		{45, 100, 60, 0, false}, // does not fit at all
	}
	for _, tc := range tests {
		got, ok := s.FirstFit(tc.earliest, tc.dur, tc.latest)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("FirstFit(%d,%d,%d) = (%d,%v), want (%d,%v)",
				tc.earliest, tc.dur, tc.latest, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSetNextFits(t *testing.T) {
	s := NewSet(Iv(10, 20), Iv(30, 40), Iv(60, 70))
	got := s.NextFits(0, 5, 100, 10)
	want := []Time{0, 20, 40, 70}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NextFits = %v, want %v", got, want)
	}
	got = s.NextFits(0, 15, 100, 10)
	want = []Time{40, 70} // only the gaps after 40 are >= 15 long... [40,60) and [70,inf)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NextFits(dur=15) = %v, want %v", got, want)
	}
	if got := s.NextFits(0, 5, 100, 2); len(got) != 2 {
		t.Errorf("NextFits max=2 returned %d starts", len(got))
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet(Iv(0, 10))
	c := s.Clone()
	c.Add(Iv(20, 30))
	if s.Len() != 1 {
		t.Error("Clone is not independent of original")
	}
	if c.Len() != 2 {
		t.Error("Clone lost data")
	}
}

// randomSet builds a set from n random operations and returns it with a
// reference boolean array over [0, span).
func randomSet(rng *rand.Rand, n int, span Time) (*Set, []bool) {
	s := NewSet()
	ref := make([]bool, span)
	for i := 0; i < n; i++ {
		a := Time(rng.Int63n(int64(span)))
		b := a + 1 + Time(rng.Int63n(20))
		if b > span {
			b = span
		}
		if rng.Intn(3) == 0 {
			s.Remove(Iv(a, b))
			for t := a; t < b; t++ {
				ref[t] = false
			}
		} else {
			s.Add(Iv(a, b))
			for t := a; t < b; t++ {
				ref[t] = true
			}
		}
	}
	return s, ref
}

// TestSetQuickAgainstReference cross-checks the interval set against a
// dense boolean-array model under random Add/Remove sequences.
func TestSetQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const span = Time(200)
		s, ref := randomSet(rng, 40, span)
		for tt := Time(0); tt < span; tt++ {
			if s.Contains(tt) != ref[tt] {
				t.Logf("seed %d: Contains(%d) = %v, ref %v", seed, tt, s.Contains(tt), ref[tt])
				return false
			}
		}
		// Invariants: sorted, disjoint, non-adjacent, non-empty.
		prev := Interval{Start: -1, End: -1}
		for _, iv := range s.Intervals() {
			if iv.Empty() {
				return false
			}
			if iv.Start <= prev.End && prev.End >= 0 {
				return false
			}
			prev = iv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSetQuickGapsPartition checks that for any random set, the gaps plus
// the busy intervals exactly partition the window.
func TestSetQuickGapsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const span = Time(300)
		s, _ := randomSet(rng, 30, span)
		window := Iv(0, span)
		var busyIn Time
		for _, iv := range s.Intervals() {
			busyIn += iv.Intersect(window).Len()
		}
		var gapTotal Time
		for _, g := range s.Gaps(window) {
			gapTotal += g.Len()
			if s.OverlapsAny(g) {
				return false // a gap must be free
			}
		}
		return busyIn+gapTotal == window.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSetQuickFirstFitSound checks that every FirstFit result is actually
// free, within bounds, and that no earlier feasible start exists.
func TestSetQuickFirstFitSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const span = Time(300)
		s, _ := randomSet(rng, 30, span)
		earliest := Time(rng.Int63n(int64(span)))
		dur := 1 + Time(rng.Int63n(40))
		latest := earliest + Time(rng.Int63n(int64(span)))
		st, ok := s.FirstFit(earliest, dur, latest)
		if !ok {
			// Verify by brute force that nothing fits.
			for c := earliest; c+dur <= latest; c++ {
				if !s.OverlapsAny(Iv(c, c+dur)) {
					return false
				}
			}
			return true
		}
		if st < earliest || st+dur > latest || s.OverlapsAny(Iv(st, st+dur)) {
			return false
		}
		for c := earliest; c < st; c++ {
			if c+dur <= latest && !s.OverlapsAny(Iv(c, c+dur)) {
				return false // found an earlier fit: not "first"
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
