// Package tm provides the integer time base used throughout the library:
// a Time scalar, half-open intervals, and sets of disjoint intervals with
// the gap and first-fit queries the scheduler and the slack metrics need.
//
// All quantities are expressed in abstract "time units" (tu). The paper's
// synthetic benchmarks use WCETs of 20-150 tu; one tu can be read as one
// microsecond without changing any result.
package tm

import "fmt"

// Time is a point in time or a duration, in integer time units.
// Using a single integer base keeps static cyclic schedules exact:
// there is no rounding anywhere in the pipeline.
type Time int64

// Infinity is a sentinel larger than any schedule horizon.
const Infinity Time = 1<<62 - 1

func (t Time) String() string { return fmt.Sprintf("%dtu", int64(t)) }

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// GCD returns the greatest common divisor of a and b (non-negative inputs).
func GCD(a, b Time) Time {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b.
// It panics if either argument is non-positive or the result overflows;
// hyperperiods are validated long before they can get that large.
func LCM(a, b Time) Time {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("tm.LCM: non-positive argument (%d, %d)", a, b))
	}
	g := GCD(a, b)
	q := a / g
	if q > Infinity/b {
		panic(fmt.Sprintf("tm.LCM: overflow (%d, %d)", a, b))
	}
	return q * b
}

// LCMAll returns the least common multiple of all values.
// It panics on an empty slice.
func LCMAll(vs []Time) Time {
	if len(vs) == 0 {
		panic("tm.LCMAll: empty slice")
	}
	l := vs[0]
	for _, v := range vs[1:] {
		l = LCM(l, v)
	}
	return l
}
