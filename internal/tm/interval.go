package tm

import (
	"fmt"
	"sort"
)

// Interval is the half-open time range [Start, End).
type Interval struct {
	Start Time
	End   Time
}

// Iv is shorthand for constructing an Interval.
func Iv(start, end Time) Interval { return Interval{Start: start, End: end} }

// Len returns the length of the interval; it is never negative for a
// well-formed interval.
func (iv Interval) Len() Time { return iv.End - iv.Start }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether t lies inside the half-open interval.
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether iv and other share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the overlap of iv and other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	r := Interval{Start: Max(iv.Start, other.Start), End: Min(iv.End, other.End)}
	if r.Empty() {
		return Interval{}
	}
	return r
}

func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Start, iv.End) }

// Set is an ordered collection of disjoint, non-adjacent, non-empty
// intervals. The zero value is an empty set ready to use. The scheduler
// uses a Set per processor to track busy time; the slack analyzer inverts
// it to obtain free time.
type Set struct {
	ivs []Interval // sorted by Start, pairwise disjoint and non-adjacent
}

// NewSet returns a set containing the given intervals (merged as needed).
func NewSet(ivs ...Interval) *Set {
	s := &Set{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{ivs: make([]Interval, len(s.ivs))}
	copy(c.ivs, s.ivs)
	return c
}

// CopyFrom makes s an exact copy of src, reusing s's backing storage when
// it is large enough. It is the allocation-free counterpart of Clone for
// scratch sets that are overwritten many times (one per evaluation worker).
func (s *Set) CopyFrom(src *Set) {
	s.ivs = append(s.ivs[:0], src.ivs...)
}

// Len returns the number of maximal intervals in the set.
func (s *Set) Len() int { return len(s.ivs) }

// Intervals returns the maximal intervals in ascending order.
// The returned slice must not be modified.
func (s *Set) Intervals() []Interval { return s.ivs }

// Total returns the summed length of all intervals.
func (s *Set) Total() Time {
	var t Time
	for _, iv := range s.ivs {
		t += iv.Len()
	}
	return t
}

// search returns the index of the first interval with End > t.
func (s *Set) search(t Time) int {
	return sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > t })
}

// Contains reports whether t is covered by the set.
func (s *Set) Contains(t Time) bool {
	i := s.search(t)
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// OverlapsAny reports whether iv intersects any interval in the set.
func (s *Set) OverlapsAny(iv Interval) bool {
	if iv.Empty() {
		return false
	}
	i := s.search(iv.Start)
	return i < len(s.ivs) && s.ivs[i].Overlaps(iv)
}

// Add inserts iv into the set, merging with any overlapping or adjacent
// intervals. Empty intervals are ignored.
func (s *Set) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find the run of intervals that overlap or touch iv.
	lo := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= iv.Start })
	hi := lo
	for hi < len(s.ivs) && s.ivs[hi].Start <= iv.End {
		iv.Start = Min(iv.Start, s.ivs[hi].Start)
		iv.End = Max(iv.End, s.ivs[hi].End)
		hi++
	}
	s.ivs = append(s.ivs[:lo], append([]Interval{iv}, s.ivs[hi:]...)...)
}

// Insert adds iv and reports an error if it overlaps existing content.
// This is the reservation primitive: double-booking a processor is a bug.
func (s *Set) Insert(iv Interval) error {
	if iv.Empty() {
		return fmt.Errorf("tm: insert of empty interval %v", iv)
	}
	if s.OverlapsAny(iv) {
		return fmt.Errorf("tm: interval %v overlaps existing reservation", iv)
	}
	s.Add(iv)
	return nil
}

// Remove deletes iv from the set, splitting intervals as needed. It
// works in place: removing an interval that was previously Inserted
// restores the set exactly and (except when a split grows the interval
// count past the backing array's capacity) performs no allocation —
// the property the scheduler's transaction rollback relies on.
func (s *Set) Remove(iv Interval) {
	if iv.Empty() || len(s.ivs) == 0 {
		return
	}
	// The run [lo, hi) of intervals overlapping iv, and the surviving
	// head/tail pieces of its first and last members.
	lo := s.search(iv.Start)
	hi := lo
	var head, tail Interval
	for hi < len(s.ivs) && s.ivs[hi].Start < iv.End {
		cur := s.ivs[hi]
		if cur.Start < iv.Start {
			head = Interval{Start: cur.Start, End: iv.Start}
		}
		if cur.End > iv.End {
			tail = Interval{Start: iv.End, End: cur.End}
		}
		hi++
	}
	if hi == lo {
		return // nothing overlaps
	}
	var rep [2]Interval
	n := 0
	if !head.Empty() {
		rep[n] = head
		n++
	}
	if !tail.Empty() {
		rep[n] = tail
		n++
	}
	if removed := hi - lo; n <= removed {
		copy(s.ivs[lo:], rep[:n])
		s.ivs = append(s.ivs[:lo+n], s.ivs[hi:]...)
	} else {
		// One interval split into two: shift the tail right by one.
		s.ivs = append(s.ivs, Interval{})
		copy(s.ivs[lo+2:], s.ivs[lo+1:])
		s.ivs[lo], s.ivs[lo+1] = rep[0], rep[1]
	}
}

// Gaps returns the maximal free intervals inside window that are not
// covered by the set, in ascending order.
func (s *Set) Gaps(window Interval) []Interval {
	return s.AppendGaps(nil, window)
}

// AppendGaps appends the maximal free intervals inside window to buf and
// returns the extended slice. It is the allocation-reusing form of Gaps
// for callers that recompute slack once per candidate evaluation.
func (s *Set) AppendGaps(buf []Interval, window Interval) []Interval {
	cursor := window.Start
	i := s.search(window.Start)
	for ; i < len(s.ivs) && s.ivs[i].Start < window.End; i++ {
		iv := s.ivs[i]
		if iv.Start > cursor {
			buf = append(buf, Interval{Start: cursor, End: iv.Start})
		}
		cursor = Max(cursor, iv.End)
	}
	if cursor < window.End {
		buf = append(buf, Interval{Start: cursor, End: window.End})
	}
	return buf
}

// FirstFit returns the earliest start s0 >= earliest such that
// [s0, s0+dur) is free and s0+dur <= latestEnd. ok is false if no such
// placement exists. A zero dur fits at earliest whenever earliest <= latestEnd.
func (s *Set) FirstFit(earliest, dur, latestEnd Time) (Time, bool) {
	if dur < 0 || earliest+dur > latestEnd {
		return 0, false
	}
	start := earliest
	i := s.search(start)
	for i < len(s.ivs) {
		iv := s.ivs[i]
		if iv.Start >= start+dur {
			break // the gap before iv fits
		}
		if iv.End > start {
			start = iv.End // pushed past this busy interval
			if start+dur > latestEnd {
				return 0, false
			}
		}
		i++
	}
	return start, true
}

// NextFits returns up to max candidate starts (earliest position in each
// successive free gap) where a block of dur fits, beginning at or after
// earliest and ending by latestEnd. Used by the mapping heuristic to
// enumerate "different slacks" for a process move.
func (s *Set) NextFits(earliest, dur, latestEnd Time, max int) []Time {
	var starts []Time
	cur := earliest
	for len(starts) < max {
		st, ok := s.FirstFit(cur, dur, latestEnd)
		if !ok {
			break
		}
		starts = append(starts, st)
		// Jump past the end of the gap that produced st.
		i := s.search(st + dur)
		if i >= len(s.ivs) {
			break
		}
		cur = s.ivs[i].End
	}
	return starts
}

func (s *Set) String() string {
	return fmt.Sprint(s.ivs)
}
