package tm

import "testing"

func TestMinMax(t *testing.T) {
	if got := Min(3, 5); got != 3 {
		t.Errorf("Min(3,5) = %v, want 3", got)
	}
	if got := Min(5, 3); got != 3 {
		t.Errorf("Min(5,3) = %v, want 3", got)
	}
	if got := Max(3, 5); got != 5 {
		t.Errorf("Max(3,5) = %v, want 5", got)
	}
	if got := Max(-1, -7); got != -1 {
		t.Errorf("Max(-1,-7) = %v, want -1", got)
	}
}

func TestGCD(t *testing.T) {
	tests := []struct{ a, b, want Time }{
		{12, 18, 6},
		{18, 12, 6},
		{7, 13, 1},
		{0, 5, 5},
		{5, 0, 5},
		{40, 40, 40},
	}
	for _, tc := range tests {
		if got := GCD(tc.a, tc.b); got != tc.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLCM(t *testing.T) {
	tests := []struct{ a, b, want Time }{
		{4, 6, 12},
		{1, 9, 9},
		{20, 50, 100},
		{40, 40, 40},
	}
	for _, tc := range tests {
		if got := LCM(tc.a, tc.b); got != tc.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLCMPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LCM(0, 3) did not panic")
		}
	}()
	LCM(0, 3)
}

func TestLCMAll(t *testing.T) {
	if got := LCMAll([]Time{4, 6, 10}); got != 60 {
		t.Errorf("LCMAll = %d, want 60", got)
	}
	if got := LCMAll([]Time{7}); got != 7 {
		t.Errorf("LCMAll single = %d, want 7", got)
	}
}

func TestLCMAllPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LCMAll(nil) did not panic")
		}
	}()
	LCMAll(nil)
}

func TestTimeString(t *testing.T) {
	if got := Time(42).String(); got != "42tu" {
		t.Errorf("Time.String = %q, want 42tu", got)
	}
}
