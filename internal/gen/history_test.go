package gen

import (
	"testing"

	"incdes/internal/metrics"
)

// TestHistoryModesQualityOrdering verifies the design intent of the three
// history modes: an MH-built existing system must leave a no-worse
// objective (against the future profile) than the adversarial ASAP
// history, measured on the base schedule before any current application.
func TestHistoryModesQualityOrdering(t *testing.T) {
	base := smallConfig()
	base.TargetUtil = 0.6

	score := func(mode HistoryMode) float64 {
		cfg := base
		cfg.History = mode
		tc, err := MakeTestCase(cfg, 21, 60, 10)
		if err != nil {
			t.Fatalf("history %q: %v", mode, err)
		}
		rep := metrics.Evaluate(tc.Base, tc.Profile, metrics.DefaultWeights(tc.Profile))
		return rep.Objective
	}

	mh := score(HistoryMH)
	asap := score(HistoryASAP)
	if mh > asap+1e-9 {
		t.Errorf("MH history scored %v, ASAP history %v; the designed history must not be worse", mh, asap)
	}
	if asap == 0 {
		t.Logf("ASAP history already optimal on this seed (asap=%v mh=%v)", asap, mh)
	}
}

func TestHistoryDefaultResolvesToMH(t *testing.T) {
	cfg := smallConfig() // ScatterExisting=true, History unset
	tc1, err := MakeTestCase(cfg, 33, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg.History = HistoryMH
	tc2, err := MakeTestCase(cfg, 33, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc1.Base.ProcEntries()) != len(tc2.Base.ProcEntries()) {
		t.Fatal("default history differs from explicit HistoryMH")
	}
	for i := range tc1.Base.ProcEntries() {
		if tc1.Base.ProcEntries()[i] != tc2.Base.ProcEntries()[i] {
			t.Fatal("default history placement differs from explicit HistoryMH")
		}
	}
}

func TestHistoryUnknownModeRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.History = HistoryMode("bogus")
	if _, err := MakeTestCase(cfg, 1, 30, 10); err == nil {
		t.Error("unknown history mode accepted")
	}
}

func TestHistoryScatterDiffersFromASAP(t *testing.T) {
	mk := func(mode HistoryMode) *TestCase {
		cfg := smallConfig()
		cfg.History = mode
		tc, err := MakeTestCase(cfg, 9, 40, 10)
		if err != nil {
			t.Fatalf("history %q: %v", mode, err)
		}
		return tc
	}
	scatter := mk(HistoryScatter)
	asap := mk(HistoryASAP)
	// ASAP packs the first process of the first graph at its release;
	// scatter almost surely does not for at least one entry.
	same := true
	if len(scatter.Base.ProcEntries()) == len(asap.Base.ProcEntries()) {
		for i := range scatter.Base.ProcEntries() {
			if scatter.Base.ProcEntries()[i] != asap.Base.ProcEntries()[i] {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Error("scatter history produced the identical schedule to ASAP")
	}
}
