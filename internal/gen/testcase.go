package gen

import (
	"context"
	"fmt"
	"math"

	"incdes/internal/core"
	"incdes/internal/future"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// AssignPeriods derives the base period from the target utilization and
// stamps every graph with period = level * base and deadline = period.
// It returns the base period, which is always a multiple of the TDMA
// round and large enough for the largest WCET.
func (g *Generator) AssignPeriods(apps []*model.Application, levels [][]int) tm.Time {
	// Utilization at base period P: sum over graphs of avg work / (level*P*N).
	var workPerBase float64
	var maxWCET tm.Time
	for ai, app := range apps {
		for gi, gr := range app.Graphs {
			var sum tm.Time
			for _, p := range gr.Procs {
				sum += p.AvgWCET()
				maxWCET = tm.Max(maxWCET, p.MaxWCET())
			}
			workPerBase += float64(sum) / float64(levels[ai][gi])
		}
	}
	base := tm.Time(math.Ceil(workPerBase / (float64(g.totalNodes()) * g.cfg.TargetUtil)))
	base = tm.Max(base, maxWCET)
	// On multi-cluster platforms the base period must be a multiple of
	// every bus's round so the hyperperiod stays a whole number of rounds
	// on each bus; with one bus this is the bus's round, as before.
	rl := g.arch.Buses[0].RoundLen()
	for _, b := range g.arch.Buses[1:] {
		rl = tm.LCM(rl, b.RoundLen())
	}
	base = tm.Max(base, 2*rl)
	// The base period must be a whole number of TDMA rounds, and a whole
	// number of future Tmin windows (Tmin = base / FutureTminDen) so the
	// periodic slack criterion slices the horizon exactly.
	quantum := rl
	if den := g.cfg.FutureTminDen; den > 1 {
		quantum = rl * tm.Time(den)
	}
	if rem := base % quantum; rem != 0 {
		base += quantum - rem
	}
	for ai, app := range apps {
		for gi, gr := range app.Graphs {
			gr.Period = tm.Time(levels[ai][gi]) * base
			gr.Deadline = gr.Period
		}
	}
	return base
}

// drawSize draws one size from a discrete distribution.
func (g *Generator) drawSize(bins []future.Bin) int64 {
	u := g.rng.Float64()
	var cum float64
	for _, b := range bins {
		cum += b.Prob
		if u < cum {
			return b.Size
		}
	}
	return bins[len(bins)-1].Size
}

// FutureApp samples a concrete member of the future-application family: a
// layered DAG application of nProcs processes whose WCETs and message
// sizes follow the profile's distributions. The family's most demanding
// member has period Tmin; a concrete member contains one fast graph at
// period Tmin (the part the periodic-slack criterion protects) while its
// remaining graphs run at the base period Tmin * FutureTminDen. This is
// what experiment E3 maps onto the residual system.
func (g *Generator) FutureApp(name string, prof *future.Profile, nProcs int) *model.Application {
	app := &model.Application{ID: g.nextApp, Name: name}
	g.nextApp++
	basePeriod := prof.Tmin
	if den := g.cfg.FutureTminDen; den > 1 {
		basePeriod = prof.Tmin * tm.Time(den)
	}
	remaining := nProcs
	for i := 0; remaining > 0; i++ {
		n := g.cfg.GraphMinProcs
		if i == 0 {
			// The fast Tmin-period graph is kept small and shallow: fast
			// control loops are; and a graph whose critical path spans
			// several TDMA rounds could never close inside Tmin anyway.
			n = 4
			if n > remaining {
				n = remaining
			}
		} else {
			if g.cfg.GraphMaxProcs > g.cfg.GraphMinProcs {
				n += g.rng.Intn(g.cfg.GraphMaxProcs - g.cfg.GraphMinProcs + 1)
			}
			if n > remaining {
				n = remaining
			}
		}
		gr := g.graph(fmt.Sprintf("%s.G%d", name, i), n)
		if i == 0 {
			gr.Period = prof.Tmin
			gr.Deadline = prof.Tmin
		} else {
			gr.Period = basePeriod
			gr.Deadline = basePeriod
		}
		// Redraw process WCETs from the profile's distribution (keeping
		// the heterogeneity structure) and message sizes likewise.
		for _, p := range gr.Procs {
			base := tm.Time(g.drawSize(prof.WCET))
			for n := range p.WCET {
				f := 1 + g.cfg.HeteroSpread*(2*g.rng.Float64()-1)
				w := tm.Time(math.Round(float64(base) * f))
				if w < 1 {
					w = 1
				}
				p.WCET[n] = w
			}
		}
		for _, m := range gr.Msgs {
			m.Bytes = int(g.drawSize(prof.MsgBytes))
		}
		app.Graphs = append(app.Graphs, gr)
		remaining -= n
	}
	return app
}

// Profile builds the future-application characterization for a test case:
// Tmin is the base period divided by FutureTminDen (future applications
// include functions faster than anything currently running), TNeed is
// FutureUtil of the total processor capacity per Tmin, BNeedBytes is
// FutureBusFrac of the bus capacity per Tmin, and the size distributions
// are the paper's histograms.
func (g *Generator) Profile(basePeriod tm.Time) *future.Profile {
	tmin := basePeriod
	if den := g.cfg.FutureTminDen; den > 1 {
		tmin = basePeriod / tm.Time(den)
	}
	tneed := tm.Time(g.cfg.FutureUtil * float64(g.totalNodes()) * float64(tmin))
	var bneed int64
	if len(g.arch.Buses) == 1 {
		// Keep the historical single-bus arithmetic bit-for-bit.
		roundsPerTmin := float64(tmin) / float64(g.arch.Buses[0].RoundLen())
		var bytesPerRound int64
		for _, b := range g.arch.Buses[0].SlotBytes {
			bytesPerRound += int64(b)
		}
		bneed = int64(g.cfg.FutureBusFrac * roundsPerTmin * float64(bytesPerRound))
	} else {
		// Aggregate capacity per Tmin over every bus.
		var perTmin float64
		for _, bus := range g.arch.Buses {
			var bytesPerRound int64
			for _, b := range bus.SlotBytes {
				bytesPerRound += int64(b)
			}
			perTmin += float64(tmin) / float64(bus.RoundLen()) * float64(bytesPerRound)
		}
		bneed = int64(g.cfg.FutureBusFrac * perTmin)
	}
	return future.PaperProfile(tmin, tneed, bneed)
}

// ProfileForSystem derives a future-application profile for an existing
// system (e.g. one loaded from JSON) using the configuration's future
// parameters: the base period is taken as the smallest graph period.
func ProfileForSystem(cfg Config, sys *model.System) *future.Profile {
	base := tm.Infinity
	for _, a := range sys.Apps {
		for _, gr := range a.Graphs {
			base = tm.Min(base, gr.Period)
		}
	}
	g := &Generator{cfg: cfg, arch: sys.Arch}
	return g.Profile(base)
}

// TestCase is one complete input to the incremental mapping problem,
// mirroring the paper's experimental setup.
type TestCase struct {
	Sys        *model.System        // architecture + existing + current
	Existing   []*model.Application // frozen applications
	Current    *model.Application   // the application to map
	Base       *sched.State         // existing applications scheduled
	Profile    *future.Profile      // future family characterization
	BasePeriod tm.Time
	Seed       int64 // the seed that actually produced the case
}

// MakeTestCase generates a schedulable test case: existingProcs processes
// of existing applications (split into chunks of ~100 processes per
// application) already mapped and scheduled by the initial-mapping
// algorithm, plus a current application of currentProcs processes that is
// verified to admit at least one valid mapping. Unschedulable draws are
// retried with derived seeds; after maxTries the last error is returned.
func MakeTestCase(cfg Config, seed int64, existingProcs, currentProcs int) (*TestCase, error) {
	const maxTries = 25
	var lastErr error
	for try := 0; try < maxTries; try++ {
		s := seed + int64(try)*1_000_003
		tc, err := makeOnce(cfg, s, existingProcs, currentProcs)
		if err == nil {
			return tc, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("gen: no schedulable test case after %d tries: %w", maxTries, lastErr)
}

// scatterHints draws start-offset hints that spread an application's
// processes over their periods instead of packing them ASAP. Existing
// applications are placed this way: they were themselves the "current"
// application of an earlier design increment, so their slack is
// distributed in time rather than bunched at the period end (an ASAP-
// packed history would leave no strategy any periodic slack to protect).
// The offset of each process is bounded by its remaining partial critical
// path, so downstream chains still meet the deadline.
func (g *Generator) scatterHints(app *model.Application) sched.Hints {
	hints := sched.Hints{}
	for _, gr := range app.Graphs {
		prio := sched.Priorities(gr, g.arch.Buses[0])
		for _, p := range gr.Procs {
			// Keep a full TDMA round of margin beyond the critical-path
			// estimate: a message can wait up to a round for its slot.
			span := gr.Deadline - prio[p.ID] - g.arch.Buses[0].RoundLen()
			if span <= 0 {
				continue
			}
			off := tm.Time(g.rng.Int63n(int64(span)))
			if off > 0 {
				hints = hints.SetProcStart(p.ID, off)
			}
		}
	}
	return hints
}

func makeOnce(cfg Config, seed int64, existingProcs, currentProcs int) (*TestCase, error) {
	g := New(cfg, seed)

	var apps []*model.Application
	var levels [][]int
	var existing []*model.Application
	remaining := existingProcs
	for i := 0; remaining > 0; i++ {
		n := 100
		if n > remaining {
			n = remaining
		}
		app, lv := g.Application(fmt.Sprintf("existing%d", i), n)
		apps = append(apps, app)
		levels = append(levels, lv)
		existing = append(existing, app)
		remaining -= n
	}
	current, lv := g.Application("current", currentProcs)
	apps = append(apps, current)
	levels = append(levels, lv)

	base := g.AssignPeriods(apps, levels)
	sys := &model.System{Arch: g.Architecture(), Apps: apps}
	if err := sys.Validate(); err != nil {
		return nil, err
	}

	st, err := sched.NewState(sys)
	if err != nil {
		return nil, err
	}
	prof := g.Profile(base)
	if err := g.placeHistory(sys, st, existing, prof); err != nil {
		return nil, err
	}
	// The current application must admit at least one valid design.
	if _, err := st.Clone().MapApp(current, sched.Hints{}); err != nil {
		return nil, fmt.Errorf("gen: current application unschedulable: %w", err)
	}

	return &TestCase{
		Sys:        sys,
		Existing:   existing,
		Current:    current,
		Base:       st,
		Profile:    prof,
		BasePeriod: base,
		Seed:       seed,
	}, nil
}

// placeHistory schedules the existing applications into st according to
// the configured history mode. With HistoryMH each application is mapped
// by the paper's mapping heuristic in arrival order — the system really
// is the product of successive design increments. HistoryScatter draws
// random start offsets instead; HistoryASAP packs everything early.
func (g *Generator) placeHistory(sys *model.System, st *sched.State,
	existing []*model.Application, prof *future.Profile) error {

	mode := g.cfg.History
	if mode == HistoryDefault {
		if g.cfg.ScatterExisting {
			mode = HistoryMH
		} else {
			mode = HistoryASAP
		}
	}
	for _, app := range existing {
		switch mode {
		case HistoryMH:
			p, err := core.NewProblem(sys, st, app, prof, metrics.DefaultWeights(prof))
			if err != nil {
				return err
			}
			// A reduced-budget MH seeded with spread-out placements: the
			// initial mapping alone would pack everything ASAP, which no
			// slack-conscious designer would have shipped; the seed hints
			// start from a distributed layout and the heuristic polishes
			// the periodic-slack structure from there. The history only
			// has to be plausible, not optimal, and test-case generation
			// must stay fast.
			sol, err := core.Solve(context.Background(), p, core.Options{
				Strategy: core.MHWith(core.MHOptions{
					MaxIterations:  8,
					ProcCandidates: 3,
					TargetsPerNode: 1,
					MsgCandidates:  2,
					SeedHints:      g.scatterHints(app),
				}),
				Parallelism: 1,
			})
			if err != nil {
				return fmt.Errorf("gen: existing application %q unschedulable: %w", app.Name, err)
			}
			*st = *sol.State
		case HistoryScatter:
			if _, err := st.MapApp(app, g.scatterHints(app)); err != nil {
				return fmt.Errorf("gen: existing application %q unschedulable: %w", app.Name, err)
			}
		case HistoryASAP:
			if _, err := st.MapApp(app, sched.Hints{}); err != nil {
				return fmt.Errorf("gen: existing application %q unschedulable: %w", app.Name, err)
			}
		default:
			return fmt.Errorf("gen: unknown history mode %q", mode)
		}
	}
	return nil
}
