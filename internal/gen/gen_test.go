package gen

import (
	"testing"

	"incdes/internal/model"
	"incdes/internal/sim"
	"incdes/internal/tm"
)

// smallConfig keeps unit-test workloads quick.
func smallConfig() Config {
	cfg := Default()
	cfg.Nodes = 4
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 10
	return cfg
}

func TestArchitectureShape(t *testing.T) {
	g := New(smallConfig(), 1)
	arch := g.Architecture()
	if len(arch.Nodes) != 4 {
		t.Fatalf("%d nodes, want 4", len(arch.Nodes))
	}
	if err := arch.Validate(); err != nil {
		t.Fatalf("generated architecture invalid: %v", err)
	}
	if arch.Buses[0].NumSlots() != 4 {
		t.Errorf("%d slots, want 4", arch.Buses[0].NumSlots())
	}
}

func TestApplicationStructure(t *testing.T) {
	cfg := smallConfig()
	g := New(cfg, 7)
	app, levels := g.Application("a", 40)
	if app.NumProcs() != 40 {
		t.Errorf("NumProcs = %d, want 40", app.NumProcs())
	}
	if len(levels) != len(app.Graphs) {
		t.Errorf("%d levels for %d graphs", len(levels), len(app.Graphs))
	}
	for _, gr := range app.Graphs {
		if _, err := gr.TopoOrder(); err != nil {
			t.Errorf("graph %s: %v", gr.Name, err)
		}
		for _, p := range gr.Procs {
			if len(p.WCET) == 0 {
				t.Errorf("process %d has no allowed nodes", p.ID)
			}
			for _, w := range p.WCET {
				if w < 1 {
					t.Errorf("process %d has WCET %v", p.ID, w)
				}
			}
		}
		for _, m := range gr.Msgs {
			if m.Bytes < cfg.MsgMin || m.Bytes > cfg.MsgMax {
				t.Errorf("message %d has %d bytes outside [%d,%d]", m.ID, m.Bytes, cfg.MsgMin, cfg.MsgMax)
			}
		}
	}
}

func TestApplicationConnectivity(t *testing.T) {
	g := New(smallConfig(), 3)
	app, _ := g.Application("a", 30)
	for _, gr := range app.Graphs {
		if len(gr.Procs) < 2 {
			continue
		}
		// Every process outside the first layer has a predecessor, so a
		// graph with n processes has at least (n - firstLayer) messages.
		if len(gr.Msgs) == 0 {
			t.Errorf("graph %s with %d processes has no messages", gr.Name, len(gr.Procs))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a1, _ := New(smallConfig(), 42).Application("a", 25)
	a2, _ := New(smallConfig(), 42).Application("a", 25)
	if a1.NumProcs() != a2.NumProcs() || a1.NumMsgs() != a2.NumMsgs() {
		t.Fatal("same seed produced different applications")
	}
	for gi := range a1.Graphs {
		for pi := range a1.Graphs[gi].Procs {
			p1, p2 := a1.Graphs[gi].Procs[pi], a2.Graphs[gi].Procs[pi]
			for n, w := range p1.WCET {
				if p2.WCET[n] != w {
					t.Fatal("same seed produced different WCETs")
				}
			}
		}
	}
	b, _ := New(smallConfig(), 43).Application("a", 25)
	if a1.NumMsgs() == b.NumMsgs() && a1.Graphs[0].Procs[0].AvgWCET() == b.Graphs[0].Procs[0].AvgWCET() {
		t.Log("different seeds produced suspiciously similar applications (not fatal)")
	}
}

func TestAssignPeriods(t *testing.T) {
	cfg := smallConfig()
	g := New(cfg, 5)
	app, lv := g.Application("a", 30)
	base := g.AssignPeriods([]*model.Application{app}, [][]int{lv})
	if base <= 0 {
		t.Fatalf("base period = %v", base)
	}
	if base%g.Architecture().Buses[0].RoundLen() != 0 {
		t.Errorf("base period %v not a multiple of the TDMA round %v", base, g.Architecture().Buses[0].RoundLen())
	}
	for gi, gr := range app.Graphs {
		if gr.Period != tm.Time(lv[gi])*base {
			t.Errorf("graph %d period = %v, want level %d * base %v", gi, gr.Period, lv[gi], base)
		}
		if gr.Deadline != gr.Period {
			t.Errorf("graph %d deadline = %v, want period", gi, gr.Deadline)
		}
	}
}

func TestMakeTestCaseSchedulableAndValid(t *testing.T) {
	cfg := smallConfig()
	tc, err := MakeTestCase(cfg, 11, 60, 20)
	if err != nil {
		t.Fatalf("MakeTestCase: %v", err)
	}
	if err := tc.Sys.Validate(); err != nil {
		t.Fatalf("test case system invalid: %v", err)
	}
	if got := countProcs(tc.Existing); got != 60 {
		t.Errorf("existing processes = %d, want 60", got)
	}
	if tc.Current.NumProcs() != 20 {
		t.Errorf("current processes = %d, want 20", tc.Current.NumProcs())
	}
	// The base state must hold a valid schedule of the existing apps.
	if vs := sim.Check(tc.Base, tc.Existing...); len(vs) != 0 {
		t.Fatalf("base schedule violates constraints: %v", vs[0])
	}
	if err := tc.Profile.Validate(); err != nil {
		t.Errorf("profile invalid: %v", err)
	}
}

func TestMakeTestCaseDeterministic(t *testing.T) {
	cfg := smallConfig()
	t1, err := MakeTestCase(cfg, 99, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := MakeTestCase(cfg, 99, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Seed != t2.Seed || t1.BasePeriod != t2.BasePeriod {
		t.Error("test case generation not deterministic")
	}
	if len(t1.Base.ProcEntries()) != len(t2.Base.ProcEntries()) {
		t.Error("base schedules differ across identical seeds")
	}
}

func TestFutureAppFollowsProfile(t *testing.T) {
	cfg := smallConfig()
	g := New(cfg, 21)
	app, lv := g.Application("a", 20)
	base := g.AssignPeriods([]*model.Application{app}, [][]int{lv})
	prof := g.Profile(base)
	fut := g.FutureApp("future", prof, 25)
	if fut.NumProcs() != 25 {
		t.Errorf("future NumProcs = %d, want 25", fut.NumProcs())
	}
	wcetSizes := map[int64]bool{}
	for _, b := range prof.WCET {
		wcetSizes[b.Size] = true
	}
	basePeriod := prof.Tmin * tm.Time(cfg.FutureTminDen)
	for gi, gr := range fut.Graphs {
		want := basePeriod
		if gi == 0 {
			want = prof.Tmin
		}
		if gr.Period != want || gr.Deadline != want {
			t.Errorf("future graph %d period = %v, want %v", gi, gr.Period, want)
		}
		for _, m := range gr.Msgs {
			found := false
			for _, b := range prof.MsgBytes {
				if int64(m.Bytes) == b.Size {
					found = true
				}
			}
			if !found {
				t.Errorf("future message size %d not in profile distribution", m.Bytes)
			}
		}
	}
}

func TestProfileScalesWithConfig(t *testing.T) {
	cfg := smallConfig()
	g := New(cfg, 2)
	prof := g.Profile(1000)
	wantTmin := tm.Time(1000 / cfg.FutureTminDen)
	if prof.Tmin != wantTmin {
		t.Errorf("Tmin = %v, want base/%d = %v", prof.Tmin, cfg.FutureTminDen, wantTmin)
	}
	wantTNeed := tm.Time(cfg.FutureUtil * float64(cfg.Nodes) * float64(wantTmin))
	if prof.TNeed != wantTNeed {
		t.Errorf("TNeed = %v, want %v", prof.TNeed, wantTNeed)
	}
	if prof.BNeedBytes <= 0 {
		t.Errorf("BNeedBytes = %d", prof.BNeedBytes)
	}
}

func countProcs(apps []*model.Application) int {
	n := 0
	for _, a := range apps {
		n += a.NumProcs()
	}
	return n
}

// TestFutureAppDistributionStatistics draws many future applications and
// checks the WCET histogram roughly matches the profile (the generator
// must actually follow the paper's distributions, not just any values).
func TestFutureAppDistributionStatistics(t *testing.T) {
	cfg := smallConfig()
	cfg.HeteroSpread = 0 // draw the base values exactly
	g := New(cfg, 4)
	app, lv := g.Application("a", 20)
	base := g.AssignPeriods([]*model.Application{app}, [][]int{lv})
	prof := g.Profile(base)

	counts := map[int64]int{}
	total := 0
	for i := 0; i < 40; i++ {
		fut := g.FutureApp("f", prof, 25)
		for _, gr := range fut.Graphs {
			for _, p := range gr.Procs {
				// HeteroSpread 0: every node sees the same drawn value.
				for _, w := range p.WCET {
					counts[int64(w)]++
					total++
					break
				}
			}
		}
	}
	for _, bin := range prof.WCET {
		got := float64(counts[bin.Size]) / float64(total)
		if got < bin.Prob-0.12 || got > bin.Prob+0.12 {
			t.Errorf("WCET %d drawn with frequency %.2f, profile says %.2f", bin.Size, got, bin.Prob)
		}
	}
	// No value outside the distribution.
	for v := range counts {
		found := false
		for _, bin := range prof.WCET {
			if bin.Size == v {
				found = true
			}
		}
		if !found {
			t.Errorf("WCET %d drawn but absent from the profile", v)
		}
	}
}

func TestStartIDsAtSeparatesNamespaces(t *testing.T) {
	cfg := smallConfig()
	g1 := New(cfg, 1)
	a1, _ := g1.Application("a", 20)
	g2 := New(cfg, 2)
	g2.StartIDsAt(1 << 20)
	a2, _ := g2.Application("b", 20)
	ids := map[model.ProcID]bool{}
	for _, gr := range a1.Graphs {
		for _, p := range gr.Procs {
			ids[p.ID] = true
		}
	}
	for _, gr := range a2.Graphs {
		for _, p := range gr.Procs {
			if ids[p.ID] {
				t.Fatalf("process id %d collides across offset generators", p.ID)
			}
		}
	}
}
