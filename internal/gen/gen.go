// Package gen produces synthetic workloads for the incremental-design
// experiments: random layered process graphs with heterogeneous WCETs,
// applications assembled from them, TTP platforms, and complete
// incremental-design test cases (an existing workload of ~400 processes
// already mapped and scheduled, a current application to place, and a
// future-application profile).
//
// Two platform families are supported. Config.Clusters <= 1 reproduces
// the paper's evaluation setup exactly: one TDMA bus with one uniform
// slot per node. Config.Clusters > 1 generalizes it to multi-cluster
// platforms — Clusters buses of Nodes nodes each, joined in a chain by
// gateway nodes that own slots on two adjacent buses — with
// InterClusterFrac of the processes homed on a neighboring cluster so a
// tunable share of the traffic has to cross gateways hop by hop.
//
// All generation is driven by an explicit seed; the same seed always
// produces the same test case, and single-cluster output is bit-for-bit
// identical to what the generator produced before multi-cluster support
// existed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// Config controls the generator. Default() mirrors the paper's setup.
type Config struct {
	// Architecture. Nodes is the node count per cluster; with Clusters
	// at most 1 it is the total node count, exactly as in the paper.
	Nodes        int
	SlotBytes    int
	ByteTime     tm.Time
	SlotOverhead tm.Time

	// Multi-cluster platform. Clusters <= 1 selects the paper's
	// single-bus family; Clusters > 1 builds that many TDMA buses of
	// Nodes nodes each, chained by gateway nodes.
	Clusters int
	// GatewaysPerLink is how many nodes of cluster c also own a slot on
	// bus c+1 (minimum and default 1).
	GatewaysPerLink int
	// InterClusterFrac is the probability that a process is homed on a
	// cluster neighboring its graph's home cluster, which is what forces
	// messages across gateways.
	InterClusterFrac float64

	// Graph structure.
	GraphMinProcs int     // smallest graph size
	GraphMaxProcs int     // largest graph size
	ExtraEdgeProb float64 // chance of a second predecessor per process

	// Process parameters (the slide-10 histograms span these ranges).
	WCETMin, WCETMax tm.Time
	MsgMin, MsgMax   int
	AllowedFrac      float64 // fraction of nodes a process may map to
	HeteroSpread     float64 // WCET varies by +-spread across nodes

	// Timing.
	TargetUtil   float64 // desired processor utilization of the workload
	PeriodLevels []int   // graph periods are level * base period

	// Future application profile.
	FutureUtil    float64 // TNeed as a fraction of N * Tmin
	FutureBusFrac float64 // BNeedBytes as a fraction of bus bytes per Tmin
	FutureTminDen int     // Tmin = base period / FutureTminDen

	// ScatterExisting spreads the processes of existing applications over
	// their periods (they were placed by earlier design increments that
	// also protected periodic slack). When false, existing applications
	// are packed ASAP — an adversarial history used in ablations.
	// Ignored when History selects an explicit mode.
	ScatterExisting bool

	// History selects how the existing applications were placed:
	//
	//	HistoryMH      — each existing application was once the "current"
	//	                 application of an earlier increment and was
	//	                 placed by the mapping heuristic (the default:
	//	                 this is exactly the incremental design process
	//	                 the paper advocates);
	//	HistoryScatter — start offsets drawn at random, a cheap stand-in
	//	                 for a slack-conscious history;
	//	HistoryASAP    — everything packed as early as possible, the
	//	                 adversarial history (ablations).
	History HistoryMode
}

// HistoryMode enumerates how a test case's existing applications were
// placed; see Config.History.
type HistoryMode string

const (
	HistoryDefault HistoryMode = "" // resolves to HistoryMH
	HistoryMH      HistoryMode = "mh"
	HistoryScatter HistoryMode = "scatter"
	HistoryASAP    HistoryMode = "asap"
)

// Default returns the configuration used throughout the experiments:
// 10 nodes as in the paper's evaluation, WCETs in [20,150], messages of
// 2-8 bytes, graphs of 10-30 processes.
func Default() Config {
	return Config{
		Nodes:           10,
		SlotBytes:       32,
		ByteTime:        1,
		SlotOverhead:    8,
		GraphMinProcs:   10,
		GraphMaxProcs:   30,
		ExtraEdgeProb:   0.25,
		WCETMin:         20,
		WCETMax:         150,
		MsgMin:          2,
		MsgMax:          8,
		AllowedFrac:     0.6,
		HeteroSpread:    0.5,
		TargetUtil:      0.65,
		PeriodLevels:    []int{1, 2},
		FutureUtil:      0.30,
		FutureBusFrac:   0.15,
		FutureTminDen:   4,
		ScatterExisting: true,
	}
}

// Multicluster returns the Default configuration reshaped into a
// K-cluster platform: nodesPerCluster nodes on each of clusters TDMA
// buses, adjacent buses joined by one gateway node, and interFrac of
// the processes homed on a neighboring cluster so that fraction of the
// traffic has to cross gateways.
func Multicluster(clusters, nodesPerCluster int, interFrac float64) Config {
	cfg := Default()
	cfg.Nodes = nodesPerCluster
	cfg.Clusters = clusters
	cfg.GatewaysPerLink = 1
	cfg.InterClusterFrac = interFrac
	return cfg
}

// Generator creates model objects with globally unique IDs.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	arch *model.Architecture
	// home is the current graph's home cluster (multi-cluster only).
	home int

	nextApp   model.AppID
	nextGraph model.GraphID
	nextProc  model.ProcID
	nextMsg   model.MsgID
}

// New returns a generator for the given configuration and seed. The
// architecture is fixed at construction: cfg.Nodes nodes per cluster,
// one uniform TDMA slot per node in node order, and — when cfg.Clusters
// exceeds 1 — a chain of buses whose links are gateway nodes owning a
// slot on both adjacent buses.
func New(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed)), arch: buildArch(cfg)}
}

func buildArch(cfg Config) *model.Architecture {
	if cfg.Clusters <= 1 {
		arch := &model.Architecture{Buses: []*model.Bus{{
			ByteTime:     cfg.ByteTime,
			SlotOverhead: cfg.SlotOverhead,
		}}}
		bus := arch.Buses[0]
		for i := 0; i < cfg.Nodes; i++ {
			id := model.NodeID(i)
			arch.Nodes = append(arch.Nodes, &model.Node{ID: id, Name: fmt.Sprintf("N%d", i)})
			bus.SlotOrder = append(bus.SlotOrder, id)
			bus.SlotBytes = append(bus.SlotBytes, cfg.SlotBytes)
		}
		return arch
	}
	gpl := cfg.GatewaysPerLink
	if gpl < 1 {
		gpl = 1
	}
	if gpl > cfg.Nodes {
		gpl = cfg.Nodes
	}
	arch := &model.Architecture{}
	for c := 0; c < cfg.Clusters; c++ {
		bus := &model.Bus{
			ID:           model.BusID(c),
			Name:         fmt.Sprintf("bus%d", c),
			ByteTime:     cfg.ByteTime,
			SlotOverhead: cfg.SlotOverhead,
		}
		for i := 0; i < cfg.Nodes; i++ {
			id := model.NodeID(c*cfg.Nodes + i)
			arch.Nodes = append(arch.Nodes, &model.Node{ID: id, Name: fmt.Sprintf("N%d", id)})
			bus.SlotOrder = append(bus.SlotOrder, id)
			bus.SlotBytes = append(bus.SlotBytes, cfg.SlotBytes)
		}
		// Chain topology: the last gpl nodes of the previous cluster also
		// own a slot here, making them the gateways between bus c-1 and
		// bus c.
		if c > 0 {
			for j := 0; j < gpl; j++ {
				gw := model.NodeID(c*cfg.Nodes - gpl + j)
				bus.SlotOrder = append(bus.SlotOrder, gw)
				bus.SlotBytes = append(bus.SlotBytes, cfg.SlotBytes)
			}
		}
		arch.Buses = append(arch.Buses, bus)
	}
	return arch
}

// Architecture returns the generator's platform.
func (g *Generator) Architecture() *model.Architecture { return g.arch }

// totalNodes is the processor count the utilization math divides by.
// Single-bus platforms keep using cfg.Nodes — the historical behavior,
// even for loaded systems whose node count differs — while multi-bus
// platforms count the architecture's actual nodes.
func (g *Generator) totalNodes() int {
	if len(g.arch.Buses) > 1 {
		return len(g.arch.Nodes)
	}
	return g.cfg.Nodes
}

// StartIDsAt moves the generator's ID counters to base so that generated
// objects cannot collide with an existing system's IDs. Use it on any
// generator whose output will be scheduled next to objects from another
// generator (e.g. sampling future applications for a test case).
func (g *Generator) StartIDsAt(base int) {
	g.nextApp = model.AppID(base)
	g.nextGraph = model.GraphID(base)
	g.nextProc = model.ProcID(base)
	g.nextMsg = model.MsgID(base)
}

// wcetTable draws a heterogeneous WCET table over the given candidate
// pool: a base execution time in [WCETMin, WCETMax], varied per allowed
// node by +-HeteroSpread.
func (g *Generator) wcetTable(pool []*model.Node) map[model.NodeID]tm.Time {
	base := g.cfg.WCETMin + tm.Time(g.rng.Int63n(int64(g.cfg.WCETMax-g.cfg.WCETMin+1)))
	nAllowed := int(math.Ceil(g.cfg.AllowedFrac * float64(len(pool))))
	if nAllowed < 1 {
		nAllowed = 1
	}
	perm := g.rng.Perm(len(pool))[:nAllowed]
	table := make(map[model.NodeID]tm.Time, nAllowed)
	for _, idx := range perm {
		f := 1 + g.cfg.HeteroSpread*(2*g.rng.Float64()-1)
		w := tm.Time(math.Round(float64(base) * f))
		if w < 1 {
			w = 1
		}
		table[pool[idx].ID] = w
	}
	return table
}

// procPool returns the candidate nodes for the next process: every node
// on a single-cluster platform; on a multi-cluster platform the current
// graph's home cluster or, with probability InterClusterFrac, one of
// its neighbors — which is what produces gateway-crossing messages.
func (g *Generator) procPool() []*model.Node {
	if g.cfg.Clusters <= 1 {
		return g.arch.Nodes
	}
	c := g.home
	if g.rng.Float64() < g.cfg.InterClusterFrac {
		if c+1 < g.cfg.Clusters {
			c++
		} else {
			c--
		}
	}
	return g.arch.Nodes[c*g.cfg.Nodes : (c+1)*g.cfg.Nodes]
}

// graph generates one layered DAG with nProcs processes. Periods and
// deadlines are filled in later (they depend on the whole workload).
func (g *Generator) graph(name string, nProcs int) *model.Graph {
	gr := &model.Graph{ID: g.nextGraph, Name: name}
	g.nextGraph++
	if g.cfg.Clusters > 1 {
		g.home = g.rng.Intn(g.cfg.Clusters)
	}

	// Spread processes over ~sqrt(n) layers so graphs are neither chains
	// nor bags of independent tasks.
	nLayers := int(math.Max(2, math.Round(math.Sqrt(float64(nProcs)))))
	if nProcs == 1 {
		nLayers = 1
	}
	layerOf := make([]int, nProcs)
	for i := range layerOf {
		if i < nLayers {
			layerOf[i] = i // guarantee every layer is populated
		} else {
			layerOf[i] = g.rng.Intn(nLayers)
		}
	}
	procs := make([]*model.Process, nProcs)
	for i := 0; i < nProcs; i++ {
		procs[i] = &model.Process{
			ID:   g.nextProc,
			Name: fmt.Sprintf("%s.P%d", name, i),
			WCET: g.wcetTable(g.procPool()),
		}
		g.nextProc++
	}
	gr.Procs = procs

	// Every process beyond layer 0 receives at least one message from a
	// random process of the previous layer, plus extra edges with
	// ExtraEdgeProb from any earlier layer.
	byLayer := make([][]int, nLayers)
	for i, l := range layerOf {
		byLayer[l] = append(byLayer[l], i)
	}
	msgSize := func() int {
		return g.cfg.MsgMin + g.rng.Intn(g.cfg.MsgMax-g.cfg.MsgMin+1)
	}
	addMsg := func(src, dst int) {
		gr.Msgs = append(gr.Msgs, &model.Message{
			ID:    g.nextMsg,
			Name:  fmt.Sprintf("m%d", g.nextMsg),
			Src:   procs[src].ID,
			Dst:   procs[dst].ID,
			Bytes: msgSize(),
		})
		g.nextMsg++
	}
	for l := 1; l < nLayers; l++ {
		for _, dst := range byLayer[l] {
			prev := byLayer[l-1]
			addMsg(prev[g.rng.Intn(len(prev))], dst)
			if g.rng.Float64() < g.cfg.ExtraEdgeProb {
				// Second predecessor from any earlier layer.
				el := g.rng.Intn(l)
				cands := byLayer[el]
				src := cands[g.rng.Intn(len(cands))]
				if !hasEdge(gr, procs[src].ID, procs[dst].ID) {
					addMsg(src, dst)
				}
			}
		}
	}
	return gr
}

func hasEdge(gr *model.Graph, src, dst model.ProcID) bool {
	for _, m := range gr.Msgs {
		if m.Src == src && m.Dst == dst {
			return true
		}
	}
	return false
}

// Application generates an application of approximately nProcs processes,
// split into graphs of GraphMinProcs..GraphMaxProcs. Each graph gets a
// period level drawn from PeriodLevels; absolute periods are assigned by
// AssignPeriods once the whole workload exists.
func (g *Generator) Application(name string, nProcs int) (*model.Application, []int) {
	app := &model.Application{ID: g.nextApp, Name: name}
	g.nextApp++
	var levels []int
	remaining := nProcs
	for i := 0; remaining > 0; i++ {
		n := g.cfg.GraphMinProcs
		if g.cfg.GraphMaxProcs > g.cfg.GraphMinProcs {
			n += g.rng.Intn(g.cfg.GraphMaxProcs - g.cfg.GraphMinProcs + 1)
		}
		if n > remaining {
			n = remaining
		}
		gr := g.graph(fmt.Sprintf("%s.G%d", name, i), n)
		app.Graphs = append(app.Graphs, gr)
		levels = append(levels, g.cfg.PeriodLevels[g.rng.Intn(len(g.cfg.PeriodLevels))])
		remaining -= n
	}
	return app, levels
}
