package metrics_test

import (
	"math/rand"
	"testing"

	"incdes/internal/gen"
	"incdes/internal/metrics"
	"incdes/internal/model"
	"incdes/internal/sched"
)

func incMapping(rng *rand.Rand, app *model.Application) model.Mapping {
	m := model.Mapping{}
	for _, g := range app.Graphs {
		for _, p := range g.Procs {
			nodes := p.AllowedNodes()
			m[p.ID] = nodes[rng.Intn(len(nodes))]
		}
	}
	return m
}

// TestEvaluateTxnMatchesEvaluate is the differential test the whole
// incremental layer hangs on: for random candidate placements applied
// under a transaction, EvaluateTxn must equal Evaluate on the same state
// bit for bit — including the floating-point packing fractions,
// PeriodicFill and the objective, which only match if the incremental
// path replays the exact same operation sequence.
func TestEvaluateTxnMatchesEvaluate(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		// A current application smaller than the node count, so candidate
		// placements routinely leave timelines clean and the cached-vector
		// path actually runs (bigger apps dirty every node and degenerate
		// to the full-recompute classification).
		tc, err := gen.MakeTestCase(gen.Default(), 900+seed*17, 80, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w := metrics.DefaultWeights(tc.Profile)
		base := tc.Base
		bl := metrics.NewBaseline(base, tc.Profile, w)
		ev := bl.Evaluator()

		rng := rand.New(rand.NewSource(seed))
		matched, fulls := 0, 0
		for iter := 0; iter < 40; iter++ {
			txn := base.Begin()
			if err := txn.Apply(tc.Current, incMapping(rng, tc.Current), sched.Hints{}); err != nil {
				txn.Rollback()
				continue
			}
			got, full := ev.EvaluateTxn(base, txn)
			want := metrics.Evaluate(base, tc.Profile, w)
			txn.Rollback()
			if got != want {
				t.Fatalf("seed %d iter %d (full=%v): EvaluateTxn = %+v, Evaluate = %+v", seed, iter, full, got, want)
			}
			matched++
			if full {
				fulls++
			}
		}
		if matched == 0 {
			t.Fatalf("seed %d: no feasible candidate placements; differential never ran", seed)
		}
		if fulls == matched {
			t.Errorf("seed %d: every evaluation fell back to a full recompute; the incremental path never ran", seed)
		}
	}
}

// TestEvaluateTxnFullFallback forces the every-node-dirty case: the
// evaluator must detect there is nothing to reuse, fall back to the full
// recompute, and still report identical numbers.
func TestEvaluateTxnFullFallback(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 2 // a 2-node system: almost any placement touches every timeline
	tc, err := gen.MakeTestCase(cfg, 77, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	w := metrics.DefaultWeights(tc.Profile)
	ev := metrics.NewBaseline(tc.Base, tc.Profile, w).Evaluator()

	rng := rand.New(rand.NewSource(7))
	sawFull := false
	for iter := 0; iter < 40 && !sawFull; iter++ {
		txn := tc.Base.Begin()
		if err := txn.Apply(tc.Current, incMapping(rng, tc.Current), sched.Hints{}); err != nil {
			txn.Rollback()
			continue
		}
		got, full := ev.EvaluateTxn(tc.Base, txn)
		want := metrics.Evaluate(tc.Base, tc.Profile, w)
		txn.Rollback()
		if got != want {
			t.Fatalf("iter %d (full=%v): EvaluateTxn = %+v, Evaluate = %+v", iter, full, got, want)
		}
		sawFull = sawFull || full
	}
	if !sawFull {
		t.Skip("no placement dirtied every node; fallback not exercised on this workload")
	}
}

// TestEvaluateTxnNilTxn pins the genuine fallback: without a transaction
// the delta is unknown, so the evaluator must hand the state to Evaluate
// and report a full recompute.
func TestEvaluateTxnNilTxn(t *testing.T) {
	tc, err := gen.MakeTestCase(gen.Default(), 123, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	w := metrics.DefaultWeights(tc.Profile)
	ev := metrics.NewBaseline(tc.Base, tc.Profile, w).Evaluator()
	got, full := ev.EvaluateTxn(tc.Base, nil)
	if !full {
		t.Error("nil transaction must report a full recompute")
	}
	if want := metrics.Evaluate(tc.Base, tc.Profile, w); got != want {
		t.Errorf("nil-txn evaluation = %+v, want %+v", got, want)
	}
}

// TestBaselineSurvivesRollbacks pins that the baseline caches really are
// immutable: after many Apply/EvaluateTxn/Rollback cycles the same
// evaluator still reproduces Evaluate's numbers for the untouched base.
func TestBaselineSurvivesRollbacks(t *testing.T) {
	tc, err := gen.MakeTestCase(gen.Default(), 321, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	w := metrics.DefaultWeights(tc.Profile)
	ev := metrics.NewBaseline(tc.Base, tc.Profile, w).Evaluator()
	want := metrics.Evaluate(tc.Base, tc.Profile, w)

	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		txn := tc.Base.Begin()
		if err := txn.Apply(tc.Current, incMapping(rng, tc.Current), sched.Hints{}); err == nil {
			_, _ = ev.EvaluateTxn(tc.Base, txn)
		}
		txn.Rollback()
	}
	if got := metrics.Evaluate(tc.Base, tc.Profile, w); got != want {
		t.Fatalf("base metrics drifted across evaluation cycles: %+v vs %+v", got, want)
	}
}
