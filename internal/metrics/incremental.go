package metrics

import (
	"math"
	"sort"

	"incdes/internal/future"
	"incdes/internal/model"
	"incdes/internal/pack"
	"incdes/internal/sched"
	"incdes/internal/slack"
	"incdes/internal/tm"
)

// Baseline caches every metric input that depends only on the frozen
// base schedule: per-node slack intervals and per-window slack vectors,
// the per-occurrence and per-window free bus capacity, and the
// future-application item lists (pre-sorted for the best-fit-decreasing
// packing). An evaluation of a candidate design that differs from the
// base by an open sched.Txn then only recomputes the touched node
// timelines and patches the touched slot occurrences — everything else
// is read from here.
//
// A Baseline is immutable after construction and safe to share across
// evaluation workers; the mutable scratch lives in the per-worker
// Incremental evaluators it hands out.
type Baseline struct {
	prof    *future.Profile
	w       Weights
	horizon tm.Time

	// nodeIDs is Arch.NodeIDs() order (the C2P accumulation order);
	// it is ascending, which is also slack.AllIntervals's bin order.
	nodeIDs []model.NodeID

	items  []int64 // LargestAppWCETs, sorted decreasing (C1P objects)
	mItems []int64 // LargestAppMsgBytes, sorted decreasing (C1m objects)

	gapLens  map[model.NodeID][]int64 // slack interval lengths per node
	winSlack map[model.NodeID][]tm.Time

	busFree  []int64 // free bytes per slot occurrence, bus order then time order
	busWin   []int64 // free bytes per Tmin window, summed over buses
	numSlots []int   // slots per round, per bus
	busOff   []int   // busFree offset of each bus's occurrence block
	busTmin  tm.Time // effective window length of busWin (clipped like BusWindowFree)
}

// NewBaseline precomputes the metric inputs of the base state. The cost
// is one full slack analysis — the same work one Evaluate performs.
func NewBaseline(base *sched.State, prof *future.Profile, w Weights) *Baseline {
	horizon := base.Horizon()
	b := &Baseline{
		prof:    prof,
		w:       w,
		horizon: horizon,
		nodeIDs: base.System().Arch.NodeIDs(),
	}
	b.items = sortedDecreasing(prof.LargestAppWCETs(horizon))
	b.mItems = sortedDecreasing(prof.LargestAppMsgBytes(horizon))

	perNode := slack.Processor(base)
	b.gapLens = make(map[model.NodeID][]int64, len(b.nodeIDs))
	b.winSlack = make(map[model.NodeID][]tm.Time, len(b.nodeIDs))
	for _, n := range b.nodeIDs {
		b.gapLens[n] = slack.Lengths(perNode[n])
		b.winSlack[n] = slack.WindowSlack(perNode[n], prof.Tmin, horizon)
	}

	b.busFree = slack.BusFreeBytes(base)
	b.busWin = slack.BusWindowFree(base, prof.Tmin)
	b.numSlots = make([]int, base.NumBuses())
	b.busOff = make([]int, base.NumBuses())
	off := 0
	for bi := 0; bi < base.NumBuses(); bi++ {
		bst := base.BusStateAt(bi)
		b.numSlots[bi] = bst.Bus().NumSlots()
		b.busOff[bi] = off
		off += bst.Rounds() * b.numSlots[bi]
	}
	b.busTmin = prof.Tmin
	if int(horizon/b.busTmin) == 0 {
		b.busTmin = horizon // BusWindowFree's single-window clipping
	}
	return b
}

// sortedDecreasing returns a copy of items in the order
// pack.BestFitDecreasing would process them.
func sortedDecreasing(items []int64) []int64 {
	out := append([]int64(nil), items...)
	sort.SliceStable(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Evaluator returns a fresh evaluator over the baseline. Each evaluation
// worker owns one: the evaluator's scratch buffers are reused across
// calls and are not safe for concurrent use.
func (b *Baseline) Evaluator() *Incremental {
	return &Incremental{b: b}
}

// Incremental scores candidate designs against a Baseline, recomputing
// only what an open transaction touched. The resulting Report is
// byte-identical to Evaluate's on the same state: integer quantities
// (window slack, free bytes) are either copied or recomputed exactly,
// and the floating-point accumulations (packing fractions, PeriodicFill,
// the objective) replay the identical operation sequence in the
// identical order.
type Incremental struct {
	b *Baseline

	// Scratch reused across evaluations.
	bins    []int64
	mBins   []int64
	remA    []int64
	remB    []int64
	gapBuf  []tm.Interval
	winBuf  []tm.Time
	busWinS []int64
}

// EvaluateTxn scores st, which must be the baseline's base schedule with
// the open transaction txn applied on top. full reports a full
// recompute: every node timeline was touched, so no cached slack vector
// could be reused and each one was rederived from the state (still
// through the evaluator's reusable scratch — the classification is
// observability, not a different code path). A nil transaction means
// the delta is unknown; that is the one genuine fallback to Evaluate.
// The Report is byte-identical to Evaluate's in every case.
func (e *Incremental) EvaluateTxn(st *sched.State, txn *sched.Txn) (rep Report, full bool) {
	b := e.b
	if txn == nil {
		return Evaluate(st, b.prof, b.w), true
	}
	full = txn.DirtyNodeCount() >= len(b.nodeIDs)

	var r Report
	window := tm.Iv(0, b.horizon)

	// Criterion 1, processes: bins are the slack interval lengths in
	// ascending node order — cached for clean nodes, recomputed from the
	// node's busy timeline for dirty ones.
	e.bins = e.bins[:0]
	for _, n := range b.nodeIDs {
		if txn.DirtyNode(n) {
			e.gapBuf = st.Busy(n).AppendGaps(e.gapBuf[:0], window)
			for _, iv := range e.gapBuf {
				e.bins = append(e.bins, int64(iv.Len()))
			}
		} else {
			e.bins = append(e.bins, b.gapLens[n]...)
		}
	}
	var frac float64
	frac, e.remA = pack.BestFitUnpacked(b.items, e.bins, e.remA)
	r.C1P = 100 * frac

	// Criterion 1, messages: patch the touched slot occurrences of the
	// cached per-occurrence free-bytes vector (each bus's block is
	// round-major, so bus bi's occurrence (round, slot) sits at
	// busOff[bi] + round*numSlots[bi] + slot).
	e.mBins = append(e.mBins[:0], b.busFree...)
	for bi := range b.numSlots {
		for _, d := range txn.BusDeltasAt(bi) {
			e.mBins[b.busOff[bi]+d.Round*b.numSlots[bi]+d.Slot] -= int64(d.Bytes)
		}
	}
	frac, e.remB = pack.BestFitUnpacked(b.mItems, e.mBins, e.remB)
	r.C1m = 100 * frac

	// Criterion 2, processes: the per-window slack vectors are integer
	// quantities, cached for clean nodes; the min/PeriodicFill
	// accumulation runs over every node in the same order as Evaluate so
	// the float sum is reproduced exactly.
	for _, n := range b.nodeIDs {
		ws := b.winSlack[n]
		if txn.DirtyNode(n) {
			e.gapBuf = st.Busy(n).AppendGaps(e.gapBuf[:0], window)
			e.winBuf = slack.WindowSlackInto(e.winBuf, e.gapBuf, b.prof.Tmin, b.horizon)
			ws = e.winBuf
		}
		min := ws[0]
		for _, v := range ws {
			if v < min {
				min = v
			}
			r.PeriodicFill += math.Sqrt(float64(v))
		}
		r.C2P += min
	}

	// Criterion 2, messages: a reservation of d.Bytes removes exactly
	// that many free bytes from the window holding the occurrence's end,
	// on whichever bus the hop was reserved.
	e.busWinS = append(e.busWinS[:0], b.busWin...)
	for bi := range b.numSlots {
		bus := st.BusStateAt(bi).Bus()
		for _, d := range txn.BusDeltasAt(bi) {
			w := int((bus.SlotEnd(d.Round, d.Slot) - 1) / b.busTmin)
			if w >= len(e.busWinS) {
				w = len(e.busWinS) - 1
			}
			e.busWinS[w] -= int64(d.Bytes)
		}
	}
	r.C2m = e.busWinS[0]
	for _, v := range e.busWinS[1:] {
		if v < r.C2m {
			r.C2m = v
		}
	}

	r.ShortfallP = tm.Max(0, b.prof.TNeed-r.C2P)
	if b.prof.BNeedBytes > r.C2m {
		r.ShortfallM = b.prof.BNeedBytes - r.C2m
	}
	r.Objective = b.w.W1P*r.C1P + b.w.W1m*r.C1m +
		b.w.W2P*float64(r.ShortfallP) + b.w.W2m*float64(r.ShortfallM)
	return r, full
}
