package metrics

import (
	"testing"

	"incdes/internal/future"
	"incdes/internal/tm"
)

// TestPeriodicFillMonotone checks the basic property directly on two
// hand-built window distributions with equal totals.
func TestPeriodicFillMonotone(t *testing.T) {
	prof := &future.Profile{
		Tmin: 50, TNeed: 100, BNeedBytes: 0,
		WCET:     []future.Bin{{Size: 10, Prob: 1}},
		MsgBytes: []future.Bin{{Size: 2, Prob: 1}},
	}
	// Bunched: window 0 free [0,50) = 50, window 1 busy (slack 0).
	bunched := pinnedState(t, []tm.Time{50, 60, 70, 80, 90})
	// Even: both windows half busy.
	even := pinnedState(t, []tm.Time{0, 10, 20, 50, 60, 70})
	rb := Evaluate(bunched, prof, Weights{})
	re := Evaluate(even, prof, Weights{})
	// Totals: bunched 50 free, even 40 free — to keep it fair compare
	// fill per free unit... simpler: sqrt(50)+sqrt(0) < sqrt(20)+sqrt(20)
	// even though bunched has more total slack.
	if re.PeriodicFill <= rb.PeriodicFill {
		t.Errorf("even spread fill %.2f not above bunched fill %.2f",
			re.PeriodicFill, rb.PeriodicFill)
	}
	if rb.C2P != 0 {
		t.Errorf("bunched C2P = %v, want 0", rb.C2P)
	}
	if re.C2P != 20 {
		t.Errorf("even C2P = %v, want 20 (min of two 20-slack windows)", re.C2P)
	}
}
