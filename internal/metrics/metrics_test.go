package metrics

import (
	"math"
	"testing"

	"incdes/internal/future"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// pinnedState builds a single-node system (bus round 10, slot of 8 bytes)
// with one 100-tu application whose 10-tu processes are pinned at the
// given start offsets. It returns the scheduled state.
func pinnedState(t *testing.T, starts []tm.Time) *sched.State {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	b.Bus([]model.NodeID{n0}, []int{8}, 1, 2)
	g := b.App("a").Graph("G", 100, 100)
	if len(starts) == 0 {
		starts = []tm.Time{0} // a graph needs at least one process
	}
	mapping := model.Mapping{}
	hints := sched.Hints{}
	for _, s := range starts {
		p := g.Proc("P", map[model.NodeID]tm.Time{n0: 10})
		mapping[p] = n0
		hints = hints.SetProcStart(p, s)
	}
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], mapping, hints); err != nil {
		t.Fatal(err)
	}
	return st
}

// prof40x20 describes a future application wanting one 40-tu and two
// 20-tu processes per 100-tu window (TNeed 80).
func prof40x20() *future.Profile {
	return &future.Profile{
		Tmin: 100, TNeed: 80, BNeedBytes: 0,
		WCET:     []future.Bin{{Size: 40, Prob: 0.5}, {Size: 20, Prob: 0.5}},
		MsgBytes: []future.Bin{{Size: 2, Prob: 1}},
	}
}

// TestCriterion1Contiguous reproduces the slide-12 contrast: contiguous
// slack accommodates the whole future application, C1P = 0.
func TestCriterion1Contiguous(t *testing.T) {
	// Two processes back-to-back at 0 and 10; slack [20,100) is one
	// 80-tu chunk and the items {40,20,20} all pack.
	cont := Evaluate(pinnedState(t, []tm.Time{0, 10}), prof40x20(), Weights{W1P: 1})
	if cont.C1P != 0 {
		t.Errorf("contiguous C1P = %v, want 0", cont.C1P)
	}
	if cont.Objective != 0 {
		t.Errorf("objective = %v, want 0", cont.Objective)
	}
}

func TestCriterion1FragmentedValue(t *testing.T) {
	// Busy: [0,10),[20,30),[40,50),[60,70),[80,90) -> slack pieces of
	// 10 tu each at 10,30,50,70,90. Items {40,20,20}: nothing fits.
	st := pinnedState(t, []tm.Time{0, 20, 40, 60, 80})
	r := Evaluate(st, prof40x20(), Weights{W1P: 1})
	if r.C1P != 100 {
		t.Errorf("fully fragmented C1P = %v, want 100", r.C1P)
	}

	// Busy: [0,10),[30,40),[60,70): slack pieces 20,20,20,30.
	// The 40 cannot be packed, both 20s can: C1P = 50%.
	st = pinnedState(t, []tm.Time{0, 30, 60})
	r = Evaluate(st, prof40x20(), Weights{W1P: 1})
	if r.C1P != 50 {
		t.Errorf("partially fragmented C1P = %v, want 50", r.C1P)
	}
}

// TestCriterion2Distribution reproduces the slide-13 contrast: slack
// bunched into one window starves the periodic future demand even though
// total slack is identical.
func TestCriterion2Distribution(t *testing.T) {
	prof := &future.Profile{
		Tmin: 50, TNeed: 40, BNeedBytes: 0,
		WCET:     []future.Bin{{Size: 20, Prob: 1}},
		MsgBytes: []future.Bin{{Size: 2, Prob: 1}},
	}
	w := Weights{W2P: 1}

	// Bunched: busy [50,100) leaves window [0,50) fully free but window
	// [50,100) with zero slack: C2P = 0, shortfall 40.
	bunched := pinnedState(t, []tm.Time{50, 60, 70, 80, 90})
	rb := Evaluate(bunched, prof, w)
	if rb.C2P != 0 {
		t.Errorf("bunched C2P = %v, want 0", rb.C2P)
	}
	if rb.ShortfallP != 40 || rb.Objective != 40 {
		t.Errorf("bunched shortfall = %v, objective = %v; want 40, 40", rb.ShortfallP, rb.Objective)
	}

	// Distributed: busy [0,10),[20,30) in window 0 and [50,60),[70,80),
	// [90,100) in window 1: per-window slack 30 and 20 -> C2P = 20.
	distr := pinnedState(t, []tm.Time{0, 20, 50, 70, 90})
	rd := Evaluate(distr, prof, w)
	if rd.C2P != 20 {
		t.Errorf("distributed C2P = %v, want 20", rd.C2P)
	}
	if rd.ShortfallP != 20 {
		t.Errorf("distributed shortfall = %v, want 20", rd.ShortfallP)
	}
	if rd.Objective >= rb.Objective {
		t.Error("distributed slack must score better than bunched slack")
	}
}

func TestCriterion2SumsOverNodes(t *testing.T) {
	// Two nodes, each idle: C2P = sum of both nodes' min window slack.
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2) // round 20
	g := b.App("a").Graph("G", 100, 100)
	p := g.Proc("P", map[model.NodeID]tm.Time{n0: 40})
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p: n0}, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	prof := &future.Profile{
		Tmin: 100, TNeed: 100, BNeedBytes: 0,
		WCET:     []future.Bin{{Size: 50, Prob: 1}},
		MsgBytes: []future.Bin{{Size: 2, Prob: 1}},
	}
	r := Evaluate(st, prof, Weights{})
	// Node 0 idle 60, node 1 idle 100 -> C2P = 160.
	if r.C2P != 160 {
		t.Errorf("C2P = %v, want 160", r.C2P)
	}
}

func TestCriterion1Messages(t *testing.T) {
	st := pinnedState(t, nil) // empty schedule; 10 slot occurrences x 8B
	// Future wants 9-byte messages: they fit in no 8-byte slot.
	prof := &future.Profile{
		Tmin: 100, TNeed: 0, BNeedBytes: 9,
		WCET:     []future.Bin{{Size: 10, Prob: 1}},
		MsgBytes: []future.Bin{{Size: 9, Prob: 1}},
	}
	r := Evaluate(st, prof, Weights{W1m: 1})
	if r.C1m != 100 {
		t.Errorf("C1m = %v, want 100 (9B messages cannot fit 8B slots)", r.C1m)
	}
	// 8-byte messages fit exactly.
	prof.MsgBytes = []future.Bin{{Size: 8, Prob: 1}}
	prof.BNeedBytes = 8
	r = Evaluate(st, prof, Weights{W1m: 1})
	if r.C1m != 0 {
		t.Errorf("C1m = %v, want 0", r.C1m)
	}
}

func TestCriterion2Messages(t *testing.T) {
	st := pinnedState(t, nil)
	// Fill every slot occurrence of the first 50-tu window.
	for round := 0; round < 5; round++ {
		if err := st.BusState().Reserve(round, 0, 8); err != nil {
			t.Fatal(err)
		}
	}
	prof := &future.Profile{
		Tmin: 50, TNeed: 0, BNeedBytes: 16,
		WCET:     []future.Bin{{Size: 10, Prob: 1}},
		MsgBytes: []future.Bin{{Size: 4, Prob: 1}},
	}
	r := Evaluate(st, prof, Weights{W2m: 1})
	if r.C2m != 0 {
		t.Errorf("C2m = %d, want 0 (first window has no free bus bytes)", r.C2m)
	}
	if r.ShortfallM != 16 || r.Objective != 16 {
		t.Errorf("shortfallM = %d, objective = %v; want 16, 16", r.ShortfallM, r.Objective)
	}
}

func TestDefaultWeightsNormalize(t *testing.T) {
	prof := future.PaperProfile(200, 40, 16)
	w := DefaultWeights(prof)
	if w.W1P != 1 || w.W1m != 1 {
		t.Errorf("C1 weights = %v, %v; want 1, 1", w.W1P, w.W1m)
	}
	if math.Abs(w.W2P*float64(prof.TNeed)-100) > 1e-9 {
		t.Errorf("W2P*TNeed = %v, want 100", w.W2P*float64(prof.TNeed))
	}
	if math.Abs(w.W2m*float64(prof.BNeedBytes)-100) > 1e-9 {
		t.Errorf("W2m*BNeed = %v, want 100", w.W2m*float64(prof.BNeedBytes))
	}
	// Zero needs must not divide by zero.
	w = DefaultWeights(&future.Profile{Tmin: 10, WCET: []future.Bin{{Size: 1, Prob: 1}},
		MsgBytes: []future.Bin{{Size: 1, Prob: 1}}})
	if w.W2P != 0 || w.W2m != 0 {
		t.Errorf("zero-need weights = %+v", w)
	}
}

func TestReportString(t *testing.T) {
	r := Report{C1P: 12.5, C1m: 0, C2P: 40, C2m: 8, Objective: 13.37}
	s := r.String()
	if s == "" {
		t.Error("empty report string")
	}
}
