// Package metrics implements the paper's two design criteria and the
// objective function that drives the mapping strategies toward designs
// that accommodate future applications.
//
// Criterion 1 (slack clustering): the largest expected future application
// is bin-packed, best-fit-decreasing, into the slack of the design
// alternative. C1P is the percentage of future process load that cannot
// be packed into processor slack intervals; C1m is the percentage of
// future message load that cannot be packed into free TDMA slot capacity.
// A design whose slack forms large contiguous chunks scores 0; a
// fragmented design scores high.
//
// Criterion 2 (slack distribution): slack must recur every Tmin. C2P is
// the sum over processors of the minimum per-Tmin-window idle time; C2m
// is the minimum per-window free bus capacity. The objective penalizes
// shortfalls against the future application's periodic needs.
//
// Objective (the paper's formula):
//
//	C = w1P*C1P + w1m*C1m + w2P*max(0, tneed-C2P) + w2m*max(0, bneed-C2m)
package metrics

import (
	"fmt"
	"math"

	"incdes/internal/future"
	"incdes/internal/pack"
	"incdes/internal/sched"
	"incdes/internal/slack"
	"incdes/internal/tm"
)

// Weights are the objective coefficients. C1 terms are percentages
// (0..100); C2 shortfall terms are in time units and bytes respectively,
// so the weights also perform unit normalization.
type Weights struct {
	W1P float64 `json:"w1p"`
	W1m float64 `json:"w1m"`
	W2P float64 `json:"w2p"`
	W2m float64 `json:"w2m"`
}

// DefaultWeights weighs all four criteria equally by normalizing the C2
// shortfalls to percentages of the corresponding need: a total C2P
// shortfall contributes 100, like a total C1P packing failure.
func DefaultWeights(p *future.Profile) Weights {
	w := Weights{W1P: 1, W1m: 1}
	if p.TNeed > 0 {
		w.W2P = 100 / float64(p.TNeed)
	}
	if p.BNeedBytes > 0 {
		w.W2m = 100 / float64(p.BNeedBytes)
	}
	return w
}

// Report carries the metric values of one design alternative.
type Report struct {
	C1P float64 // % of future process load not packable into slack
	C1m float64 // % of future message load not packable into free slots
	C2P tm.Time // sum over nodes of min per-Tmin-window idle time
	C2m int64   // min per-Tmin-window free bus bytes

	ShortfallP tm.Time // max(0, TNeed - C2P)
	ShortfallM int64   // max(0, BNeedBytes - C2m)

	Objective float64

	// PeriodicFill is a smooth companion to C2P: the sum over nodes and
	// Tmin windows of sqrt(window slack). Total slack is invariant under
	// moves, but the concave transform rewards spreading it evenly over
	// the windows — which is exactly what raises the per-node minima that
	// C2P measures. The objective's min-based C2P is flat when several
	// windows tie at the minimum; iterative improvement uses PeriodicFill
	// to order designs with equal C, so a move toward a more even slack
	// distribution still registers as progress.
	PeriodicFill float64
}

func (r Report) String() string {
	return fmt.Sprintf("C1P=%.1f%% C1m=%.1f%% C2P=%v C2m=%dB C=%.2f",
		r.C1P, r.C1m, r.C2P, r.C2m, r.Objective)
}

// Evaluate computes the metrics of a scheduled design alternative against
// a future-application profile.
func Evaluate(st *sched.State, prof *future.Profile, w Weights) Report {
	var r Report
	horizon := st.Horizon()
	perNode := slack.Processor(st)

	// Criterion 1, processes: pack the largest future application into
	// the slack intervals of all processors.
	items := prof.LargestAppWCETs(horizon)
	bins := slack.Lengths(slack.AllIntervals(perNode))
	r.C1P = 100 * pack.BestFitDecreasing(items, bins).UnpackedFraction()

	// Criterion 1, messages: pack future messages into free slot bytes.
	mItems := prof.LargestAppMsgBytes(horizon)
	mBins := slack.BusFreeBytes(st)
	r.C1m = 100 * pack.BestFitDecreasing(mItems, mBins).UnpackedFraction()

	// Criterion 2, processes: periodic slack per node, summed; plus the
	// smooth per-window fill used as a tie-breaker by the heuristics.
	for _, n := range st.System().Arch.NodeIDs() {
		ws := slack.WindowSlack(perNode[n], prof.Tmin, horizon)
		min := ws[0]
		for _, v := range ws {
			if v < min {
				min = v
			}
			r.PeriodicFill += math.Sqrt(float64(v))
		}
		r.C2P += min
	}

	// Criterion 2, messages: periodic free bus capacity.
	r.C2m = slack.MinBusWindowFree(st, prof.Tmin)

	r.ShortfallP = tm.Max(0, prof.TNeed-r.C2P)
	if prof.BNeedBytes > r.C2m {
		r.ShortfallM = prof.BNeedBytes - r.C2m
	}
	r.Objective = w.W1P*r.C1P + w.W1m*r.C1m +
		w.W2P*float64(r.ShortfallP) + w.W2m*float64(r.ShortfallM)
	return r
}
