// Package exec executes a deployable design the way a time-triggered
// runtime would: every node starts its dispatch-table activations at
// their fixed times, frames leave in their fixed MEDL slots, and nothing
// ever waits for anything — correctness rests entirely on the static
// schedule. The executor samples actual execution times below (or, for
// fault injection, above) the WCETs and replays one hyperperiod,
// reporting every violated assumption:
//
//   - overrun: a process was still running when its budget ended;
//   - frame-miss: a producer had not finished when its message's slot
//     began, so the frame sailed with stale data;
//   - stale-input: a consumer started before one of its same-node
//     producers finished.
//
// With actual times <= WCET a valid design produces no violations — a
// property the tests exercise — and with injected overruns the executor
// shows exactly which downstream assumptions break, which is the analysis
// a designer runs before trusting a WCET budget.
package exec

import (
	"fmt"
	"math/rand"
	"sort"

	"incdes/internal/export"
	"incdes/internal/model"
	"incdes/internal/tm"
)

// Options configure one execution run.
type Options struct {
	// Seed drives the execution-time sampling (default 1).
	Seed int64
	// MinFraction is the lower bound of the sampled execution time as a
	// fraction of WCET (default 0.5; actual times are uniform in
	// [MinFraction, 1] * WCET).
	MinFraction float64
	// OverrunProb injects faults: each activation exceeds its WCET with
	// this probability (default 0).
	OverrunProb float64
	// OverrunFactor scales the WCET of an injected overrun (default 1.5).
	OverrunFactor float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MinFraction == 0 {
		o.MinFraction = 0.5
	}
	if o.OverrunFactor == 0 {
		o.OverrunFactor = 1.5
	}
	return o
}

// Violation is one broken time-triggered assumption.
type Violation struct {
	Time   tm.Time
	Kind   string // "overrun", "frame-miss", "stale-input"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v %s: %s", v.Time, v.Kind, v.Detail)
}

// Result summarizes one execution run.
type Result struct {
	Activations int
	Frames      int
	Violations  []Violation
	// TotalIdle is the summed gap between actual finish times and
	// budgeted ends: the dynamic slack a WCET-based schedule hides.
	TotalIdle tm.Time
}

// Run replays one hyperperiod of the design.
func Run(d *export.Design, sys *model.System, apps []*model.Application, opts Options) (*Result, error) {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	ix := model.NewIndex(apps...)
	res := &Result{}

	type key struct {
		proc model.ProcID
		occ  int
	}
	// Sample actual finish times per activation, in global start order so
	// the sampling sequence is stable across runs with one seed.
	var all []export.DispatchEntry
	nodeOf := map[key]model.NodeID{}
	for _, nt := range d.Nodes {
		for _, e := range nt.Entries {
			all = append(all, e)
			nodeOf[key{e.Proc, e.Occ}] = nt.Node
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].Proc < all[j].Proc
	})

	finish := map[key]tm.Time{}
	for _, e := range all {
		res.Activations++
		budget := e.End - e.Start
		var actual tm.Time
		if o.OverrunProb > 0 && rng.Float64() < o.OverrunProb {
			actual = tm.Time(float64(budget) * o.OverrunFactor)
		} else {
			f := o.MinFraction + (1-o.MinFraction)*rng.Float64()
			actual = tm.Time(float64(budget) * f)
			if actual < 1 {
				actual = 1
			}
		}
		end := e.Start + actual
		finish[key{e.Proc, e.Occ}] = end
		if end > e.End {
			res.Violations = append(res.Violations, Violation{
				Time: e.End, Kind: "overrun",
				Detail: fmt.Sprintf("process %d occ %d ran %v, budget %v", e.Proc, e.Occ, actual, budget),
			})
		} else {
			res.TotalIdle += e.End - end
		}
	}

	// Frames: the producer must have finished by the slot start. Only the
	// first hop of a chain depends on the producer; gateway hops (Hop > 0)
	// are gated by the statically verified previous hop, not by process
	// execution, so an overrun cannot make them stale.
	for _, me := range d.MEDL {
		res.Frames++
		m, ok := ix.Msg[me.Msg]
		if !ok {
			return nil, fmt.Errorf("exec: MEDL references unknown message %d", me.Msg)
		}
		if me.Hop != 0 {
			continue
		}
		if int(me.Bus) < 0 || int(me.Bus) >= len(sys.Arch.Buses) {
			return nil, fmt.Errorf("exec: MEDL references unknown bus %d", me.Bus)
		}
		slotStart := sys.Arch.Buses[me.Bus].SlotStart(me.Round, me.Slot)
		if f, ok := finish[key{m.Src, me.Occ}]; ok && f > slotStart {
			res.Violations = append(res.Violations, Violation{
				Time: slotStart, Kind: "frame-miss",
				Detail: fmt.Sprintf("message %d occ %d: producer %d finished %v, slot started %v",
					me.Msg, me.Occ, m.Src, f, slotStart),
			})
		}
	}

	// Same-node data flow: the producer must have finished by the
	// consumer's fixed start time.
	for _, app := range apps {
		for _, g := range app.Graphs {
			occs := int(d.Horizon / g.Period)
			for _, m := range g.Msgs {
				for occ := 0; occ < occs; occ++ {
					src, dst := key{m.Src, occ}, key{m.Dst, occ}
					if nodeOf[src] != nodeOf[dst] {
						continue // covered by the frame check
					}
					var dstStart tm.Time
					found := false
					for _, nt := range d.Nodes {
						if nt.Node != nodeOf[dst] {
							continue
						}
						for _, e := range nt.Entries {
							if e.Proc == m.Dst && e.Occ == occ {
								dstStart = e.Start
								found = true
							}
						}
					}
					if !found {
						continue // missing activations are export.Check's domain
					}
					if f, ok := finish[src]; ok && f > dstStart {
						res.Violations = append(res.Violations, Violation{
							Time: dstStart, Kind: "stale-input",
							Detail: fmt.Sprintf("message %d occ %d: producer %d finished %v, consumer started %v",
								m.ID, occ, m.Src, f, dstStart),
						})
					}
				}
			}
		}
	}
	sort.Slice(res.Violations, func(i, j int) bool { return res.Violations[i].Time < res.Violations[j].Time })
	return res, nil
}
