package exec

import (
	"testing"

	"incdes/internal/export"
	"incdes/internal/gen"
	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

func builtDesign(t *testing.T) (*export.Design, *model.System) {
	t.Helper()
	b := model.NewBuilder()
	n0 := b.Node("N0")
	n1 := b.Node("N1")
	b.Bus([]model.NodeID{n0, n1}, []int{8, 8}, 1, 2)
	g := b.App("a").Graph("G", 100, 100)
	p1 := g.Proc("P1", map[model.NodeID]tm.Time{n0: 10})
	p2 := g.Proc("P2", map[model.NodeID]tm.Time{n1: 15})
	p3 := g.Proc("P3", map[model.NodeID]tm.Time{n1: 5})
	g.Msg(p1, p2, 4)
	g.Msg(p2, p3, 2)
	sys, err := b.System()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ScheduleApp(sys.Apps[0], model.Mapping{p1: n0, p2: n1, p3: n1}, sched.Hints{}); err != nil {
		t.Fatal(err)
	}
	d, err := export.Build(st)
	if err != nil {
		t.Fatal(err)
	}
	return d, sys
}

func TestRunWithinBudgetIsClean(t *testing.T) {
	d, sys := builtDesign(t)
	for seed := int64(1); seed <= 10; seed++ {
		res, err := Run(d, sys, sys.Apps, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: violations in a valid design under WCET-bounded execution: %v",
				seed, res.Violations[0])
		}
		if res.Activations != 3 || res.Frames != 1 {
			t.Errorf("seed %d: %d activations, %d frames", seed, res.Activations, res.Frames)
		}
		if res.TotalIdle <= 0 {
			t.Errorf("seed %d: no dynamic slack recorded", seed)
		}
	}
}

func TestRunDetectsInjectedOverruns(t *testing.T) {
	d, sys := builtDesign(t)
	res, err := Run(d, sys, sys.Apps, Options{Seed: 3, OverrunProb: 1, OverrunFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, v := range res.Violations {
		kinds[v.Kind]++
	}
	if kinds["overrun"] != 3 {
		t.Errorf("%d overruns reported, want 3 (every activation doubled)", kinds["overrun"])
	}
	// P1 doubles from 10 to 20; its message's slot starts at 20, so the
	// frame just barely... the producer finishing exactly at slot start
	// is fine; P2 [30,45) doubled to 60 misses m2's slot; P2->P3 are
	// co-located... they are both on n1, so stale-input applies.
	if kinds["frame-miss"]+kinds["stale-input"] == 0 {
		t.Error("cascading violations not reported despite universal overruns")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	d, sys := builtDesign(t)
	a, err := Run(d, sys, sys.Apps, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, sys, sys.Apps, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalIdle != b.TotalIdle || len(a.Violations) != len(b.Violations) {
		t.Error("same seed produced different executions")
	}
	c, err := Run(d, sys, sys.Apps, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalIdle == c.TotalIdle {
		t.Log("different seeds produced identical idle totals (possible but unlikely)")
	}
}

func TestRunGeneratedDesignsPropertyClean(t *testing.T) {
	cfg := gen.Default()
	cfg.Nodes = 5
	cfg.GraphMinProcs = 5
	cfg.GraphMaxProcs = 10
	for seed := int64(0); seed < 4; seed++ {
		tc, err := gen.MakeTestCase(cfg, seed, 40, 20)
		if err != nil {
			t.Fatal(err)
		}
		st := tc.Base.Clone()
		if _, err := st.MapApp(tc.Current, sched.Hints{}); err != nil {
			t.Fatal(err)
		}
		d, err := export.Build(st)
		if err != nil {
			t.Fatal(err)
		}
		apps := append(append([]*model.Application{}, tc.Existing...), tc.Current)
		res, err := Run(d, tc.Sys, apps, Options{Seed: seed + 100})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("seed %d: valid generated design violated at runtime: %v", seed, res.Violations[0])
		}
	}
}

func TestRunOptionsDefaults(t *testing.T) {
	d, sys := builtDesign(t)
	// MinFraction 1.0 means every activation uses its full budget: still
	// no violations (finish == budget end is allowed).
	res, err := Run(d, sys, sys.Apps, Options{Seed: 2, MinFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("full-budget execution violated: %v", res.Violations[0])
	}
	if res.TotalIdle != 0 {
		t.Errorf("full-budget execution reported idle %v", res.TotalIdle)
	}
}

func TestRunUnknownMessageRejected(t *testing.T) {
	d, sys := builtDesign(t)
	d.MEDL[0].Msg = 999
	if _, err := Run(d, sys, sys.Apps, Options{}); err == nil {
		t.Error("MEDL entry for unknown message accepted")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Time: 42, Kind: "overrun", Detail: "x"}
	if got := v.String(); got != "t=42tu overrun: x" {
		t.Errorf("String = %q", got)
	}
}
