// Package tgff reads task graphs in a subset of the TGFF format (Dick,
// Rhodes, Wolf: "TGFF: Task Graphs For Free", CODES 1998), the de-facto
// benchmark interchange format of the hardware/software co-design
// community — including the line of work this library reproduces.
//
// The supported subset covers what the incremental-design model needs:
//
//	@TASK_GRAPH <id> {
//	    PERIOD <int>
//	    DEADLINE <int>          # extension; defaults to PERIOD
//	    TASK <name> TYPE <int>
//	    ARC <name> FROM <task> TO <task> TYPE <int>
//	}
//	@PE <id> {
//	    # one row per task type:
//	    <type> <exec_time>
//	}
//	@COMMUN <id> {
//	    # one row per arc type:
//	    <type> <bytes>
//	}
//
// '#' starts a comment; blank lines are ignored. Each @PE block becomes
// one processing node; a task may run on every PE whose table lists its
// type. Arc types resolve to message sizes through the @COMMUN table
// (all @COMMUN blocks are merged). Build assembles the result into a
// model.System around a caller-supplied TDMA bus configuration, since
// TGFF says nothing about buses.
package tgff

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"incdes/internal/model"
	"incdes/internal/tm"
)

// Task is one TASK line.
type Task struct {
	Name string
	Type int
}

// Arc is one ARC line.
type Arc struct {
	Name     string
	From, To string
	Type     int
}

// GraphSpec is one @TASK_GRAPH block.
type GraphSpec struct {
	ID       int
	Period   tm.Time
	Deadline tm.Time
	Tasks    []Task
	Arcs     []Arc
}

// PETable is one @PE block: execution time per task type.
type PETable struct {
	ID   int
	Exec map[int]tm.Time
}

// File is a parsed TGFF document.
type File struct {
	Graphs []GraphSpec
	PEs    []PETable
	Commun map[int]int // arc type -> bytes
}

// Parse reads a TGFF document.
func Parse(r io.Reader) (*File, error) {
	f := &File{Commun: map[int]int{}}
	sc := bufio.NewScanner(r)
	lineNo := 0

	type blockKind int
	const (
		none blockKind = iota
		taskGraph
		pe
		commun
	)
	kind := none
	var curGraph *GraphSpec
	var curPE *PETable

	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("tgff: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}

		switch {
		case strings.HasPrefix(fields[0], "@"):
			if kind != none {
				return nil, fail("block %q opened inside another block", fields[0])
			}
			if len(fields) < 3 || fields[len(fields)-1] != "{" {
				return nil, fail("expected '@NAME <id> {'")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad block id %q", fields[1])
			}
			switch fields[0] {
			case "@TASK_GRAPH":
				kind = taskGraph
				f.Graphs = append(f.Graphs, GraphSpec{ID: id})
				curGraph = &f.Graphs[len(f.Graphs)-1]
			case "@PE":
				kind = pe
				f.PEs = append(f.PEs, PETable{ID: id, Exec: map[int]tm.Time{}})
				curPE = &f.PEs[len(f.PEs)-1]
			case "@COMMUN":
				kind = commun
			default:
				return nil, fail("unknown block %q", fields[0])
			}

		case fields[0] == "}":
			if kind == none {
				return nil, fail("'}' outside any block")
			}
			kind = none
			curGraph, curPE = nil, nil

		case kind == taskGraph:
			if err := parseGraphLine(curGraph, fields); err != nil {
				return nil, fail("%v", err)
			}

		case kind == pe:
			if len(fields) != 2 {
				return nil, fail("expected '<type> <exec_time>'")
			}
			typ, err1 := strconv.Atoi(fields[0])
			t, err2 := strconv.ParseInt(fields[1], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fail("bad PE row %q", strings.Join(fields, " "))
			}
			curPE.Exec[typ] = tm.Time(t)

		case kind == commun:
			if len(fields) != 2 {
				return nil, fail("expected '<type> <bytes>'")
			}
			typ, err1 := strconv.Atoi(fields[0])
			b, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fail("bad COMMUN row %q", strings.Join(fields, " "))
			}
			f.Commun[typ] = b

		default:
			return nil, fail("statement %q outside any block", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tgff: %w", err)
	}
	if kind != none {
		return nil, fmt.Errorf("tgff: unterminated block at end of input")
	}
	if len(f.Graphs) == 0 {
		return nil, fmt.Errorf("tgff: no @TASK_GRAPH blocks")
	}
	if len(f.PEs) == 0 {
		return nil, fmt.Errorf("tgff: no @PE blocks")
	}
	return f, nil
}

func parseGraphLine(g *GraphSpec, fields []string) error {
	switch fields[0] {
	case "PERIOD", "DEADLINE":
		if len(fields) != 2 {
			return fmt.Errorf("expected '%s <int>'", fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad %s %q", fields[0], fields[1])
		}
		if fields[0] == "PERIOD" {
			g.Period = tm.Time(v)
		} else {
			g.Deadline = tm.Time(v)
		}
	case "TASK":
		// TASK <name> TYPE <int>
		if len(fields) != 4 || fields[2] != "TYPE" {
			return fmt.Errorf("expected 'TASK <name> TYPE <int>'")
		}
		typ, err := strconv.Atoi(fields[3])
		if err != nil {
			return fmt.Errorf("bad task type %q", fields[3])
		}
		g.Tasks = append(g.Tasks, Task{Name: fields[1], Type: typ})
	case "ARC":
		// ARC <name> FROM <task> TO <task> TYPE <int>
		if len(fields) != 8 || fields[2] != "FROM" || fields[4] != "TO" || fields[6] != "TYPE" {
			return fmt.Errorf("expected 'ARC <name> FROM <t> TO <t> TYPE <int>'")
		}
		typ, err := strconv.Atoi(fields[7])
		if err != nil {
			return fmt.Errorf("bad arc type %q", fields[7])
		}
		g.Arcs = append(g.Arcs, Arc{Name: fields[1], From: fields[3], To: fields[5], Type: typ})
	default:
		return fmt.Errorf("unknown statement %q in @TASK_GRAPH", fields[0])
	}
	return nil
}

// BusConfig supplies what TGFF cannot: the TDMA bus parameters.
type BusConfig struct {
	SlotBytes    int
	ByteTime     tm.Time
	SlotOverhead tm.Time
	// Clusters splits the PEs over that many TDMA buses (contiguous
	// blocks in file order, sized as evenly as possible) chained by
	// gateway nodes: the last PE of each cluster also owns a slot on the
	// next cluster's bus. 0 or 1 keeps the classic single-bus platform.
	Clusters int
}

// buildArch realizes the bus configuration over the file's PEs: one bus
// carrying every PE, or bus.Clusters buses chained by gateway PEs.
func buildArch(f *File, bus BusConfig) (*model.Architecture, error) {
	arch := &model.Architecture{}
	for i := range f.PEs {
		arch.Nodes = append(arch.Nodes, &model.Node{ID: model.NodeID(i), Name: fmt.Sprintf("PE%d", f.PEs[i].ID)})
	}
	k := bus.Clusters
	if k <= 1 {
		b := &model.Bus{ByteTime: bus.ByteTime, SlotOverhead: bus.SlotOverhead}
		for i := range f.PEs {
			b.SlotOrder = append(b.SlotOrder, model.NodeID(i))
			b.SlotBytes = append(b.SlotBytes, bus.SlotBytes)
		}
		arch.Buses = []*model.Bus{b}
		return arch, nil
	}
	if k > len(f.PEs) {
		return nil, fmt.Errorf("tgff: %d clusters but only %d PEs", k, len(f.PEs))
	}
	// Contiguous blocks in file order, the first n%k clusters one PE
	// larger; each cluster's last PE is the gateway onto the next bus.
	size, rem := len(f.PEs)/k, len(f.PEs)%k
	lo := 0
	for c := 0; c < k; c++ {
		hi := lo + size
		if c < rem {
			hi++
		}
		b := &model.Bus{
			ID:           model.BusID(c),
			Name:         fmt.Sprintf("bus%d", c),
			ByteTime:     bus.ByteTime,
			SlotOverhead: bus.SlotOverhead,
		}
		for i := lo; i < hi; i++ {
			b.SlotOrder = append(b.SlotOrder, model.NodeID(i))
			b.SlotBytes = append(b.SlotBytes, bus.SlotBytes)
		}
		if c > 0 {
			// The previous cluster's last PE owns a slot here too.
			b.SlotOrder = append(b.SlotOrder, model.NodeID(lo-1))
			b.SlotBytes = append(b.SlotBytes, bus.SlotBytes)
		}
		arch.Buses = append(arch.Buses, b)
		lo = hi
	}
	return arch, nil
}

// Build assembles the parsed file into a system: one node per @PE block
// (in file order, IDs 0..n-1 regardless of TGFF ids), one application
// named appName containing every task graph. Tasks run on every PE whose
// table lists their type; arcs become messages sized by the @COMMUN
// table. The result is validated.
func (f *File) Build(appName string, bus BusConfig) (*model.System, error) {
	arch, err := buildArch(f, bus)
	if err != nil {
		return nil, err
	}

	app := &model.Application{ID: 0, Name: appName}
	nextProc := model.ProcID(0)
	nextMsg := model.MsgID(0)
	for gi, gs := range f.Graphs {
		if gs.Period <= 0 {
			return nil, fmt.Errorf("tgff: task graph %d has no PERIOD", gs.ID)
		}
		deadline := gs.Deadline
		if deadline == 0 {
			deadline = gs.Period
		}
		gr := &model.Graph{
			ID:       model.GraphID(gi),
			Name:     fmt.Sprintf("TASK_GRAPH_%d", gs.ID),
			Period:   gs.Period,
			Deadline: deadline,
		}
		byName := map[string]model.ProcID{}
		for _, task := range gs.Tasks {
			wcet := map[model.NodeID]tm.Time{}
			for i, pe := range f.PEs {
				if t, ok := pe.Exec[task.Type]; ok {
					wcet[model.NodeID(i)] = t
				}
			}
			if len(wcet) == 0 {
				return nil, fmt.Errorf("tgff: task %q type %d appears in no @PE table", task.Name, task.Type)
			}
			p := &model.Process{ID: nextProc, Name: task.Name, WCET: wcet}
			nextProc++
			byName[task.Name] = p.ID
			gr.Procs = append(gr.Procs, p)
		}
		for _, arc := range gs.Arcs {
			src, okS := byName[arc.From]
			dst, okD := byName[arc.To]
			if !okS || !okD {
				return nil, fmt.Errorf("tgff: arc %q references unknown task", arc.Name)
			}
			bytes, ok := f.Commun[arc.Type]
			if !ok {
				return nil, fmt.Errorf("tgff: arc %q type %d not in any @COMMUN table", arc.Name, arc.Type)
			}
			gr.Msgs = append(gr.Msgs, &model.Message{
				ID: nextMsg, Name: arc.Name, Src: src, Dst: dst, Bytes: bytes,
			})
			nextMsg++
		}
		app.Graphs = append(app.Graphs, gr)
	}

	sys := &model.System{Arch: arch, Apps: []*model.Application{app}}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}
