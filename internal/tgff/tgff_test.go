package tgff

import (
	"strings"
	"testing"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/sim"
)

const sample = `
# A two-graph system on two PEs, TGFF style.
@TASK_GRAPH 0 {
    PERIOD 1000
    TASK src TYPE 0
    TASK mid TYPE 1
    TASK snk TYPE 0
    ARC a0 FROM src TO mid TYPE 0
    ARC a1 FROM mid TO snk TYPE 1
}
@TASK_GRAPH 1 {
    PERIOD 2000
    DEADLINE 1500
    TASK lone TYPE 1
}
@PE 0 {
    0 50
    1 80
}
@PE 1 {
    0 40
    # type 1 does not run here
}
@COMMUN 0 {
    0 4
    1 8
}
`

func parseSample(t *testing.T) *File {
	t.Helper()
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseStructure(t *testing.T) {
	f := parseSample(t)
	if len(f.Graphs) != 2 || len(f.PEs) != 2 {
		t.Fatalf("%d graphs, %d PEs", len(f.Graphs), len(f.PEs))
	}
	g0 := f.Graphs[0]
	if g0.Period != 1000 || g0.Deadline != 0 {
		t.Errorf("graph 0 timing = %v/%v", g0.Period, g0.Deadline)
	}
	if len(g0.Tasks) != 3 || len(g0.Arcs) != 2 {
		t.Errorf("graph 0 has %d tasks, %d arcs", len(g0.Tasks), len(g0.Arcs))
	}
	if f.Graphs[1].Deadline != 1500 {
		t.Errorf("graph 1 deadline = %v", f.Graphs[1].Deadline)
	}
	if f.PEs[1].Exec[0] != 40 {
		t.Errorf("PE1 exec[0] = %v", f.PEs[1].Exec[0])
	}
	if f.Commun[1] != 8 {
		t.Errorf("commun[1] = %d", f.Commun[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"nested block", "@TASK_GRAPH 0 {\n@PE 0 {\n}\n}"},
		{"unterminated", "@TASK_GRAPH 0 {\nPERIOD 10"},
		{"stray close", "}"},
		{"bad task line", "@TASK_GRAPH 0 {\nTASK x\n}"},
		{"bad arc line", "@TASK_GRAPH 0 {\nARC a FROM x TYPE 0\n}"},
		{"statement outside", "PERIOD 10"},
		{"no graphs", "@PE 0 {\n0 10\n}"},
		{"no pes", "@TASK_GRAPH 0 {\nPERIOD 10\nTASK a TYPE 0\n}"},
		{"bad pe row", "@PE 0 {\n0 x\n}\n@TASK_GRAPH 0 {\nPERIOD 5\nTASK a TYPE 0\n}"},
		{"unknown block", "@FOO 0 {\n}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.src)); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestBuildSystem(t *testing.T) {
	f := parseSample(t)
	sys, err := f.Build("tgff-app", BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(sys.Arch.Nodes) != 2 {
		t.Fatalf("%d nodes", len(sys.Arch.Nodes))
	}
	app := sys.Apps[0]
	if app.NumProcs() != 4 || app.NumMsgs() != 2 {
		t.Errorf("%d procs, %d msgs", app.NumProcs(), app.NumMsgs())
	}
	// Type 1 tasks run only on PE0.
	var mid *model.Process
	for _, p := range app.Graphs[0].Procs {
		if p.Name == "mid" {
			mid = p
		}
	}
	if mid == nil || len(mid.WCET) != 1 || mid.WCET[0] != 80 {
		t.Errorf("mid WCET table = %+v", mid)
	}
	// Graph 1 keeps its explicit deadline.
	if app.Graphs[1].Deadline != 1500 {
		t.Errorf("graph 1 deadline = %v", app.Graphs[1].Deadline)
	}
}

func TestBuildErrors(t *testing.T) {
	// A task whose type no PE can execute.
	src := strings.Replace(sample, "TASK lone TYPE 1", "TASK lone TYPE 9", 1)
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Build("x", BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4}); err == nil {
		t.Error("unexecutable task accepted")
	}

	// An arc whose type has no message size.
	src = strings.Replace(sample, "ARC a1 FROM mid TO snk TYPE 1", "ARC a1 FROM mid TO snk TYPE 9", 1)
	f, err = Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Build("x", BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4}); err == nil {
		t.Error("unsized arc accepted")
	}

	// A graph without a period.
	src = strings.Replace(sample, "PERIOD 1000\n", "", 1)
	f, err = Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Build("x", BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4}); err == nil {
		t.Error("periodless graph accepted")
	}
}

// TestTGFFSystemSchedules closes the loop: a TGFF-loaded system goes
// through the mapper and validates.
func TestTGFFSystemSchedules(t *testing.T) {
	f := parseSample(t)
	sys, err := f.Build("tgff-app", BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sched.NewState(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.MapApp(sys.Apps[0], sched.Hints{}); err != nil {
		t.Fatalf("MapApp: %v", err)
	}
	if vs := sim.Check(st, sys.Apps...); len(vs) != 0 {
		t.Fatalf("TGFF system schedule invalid: %v", vs[0])
	}
}

// FuzzBuildClusters hardens the multi-cluster build path: for any
// parseable TGFF input and any cluster count, Build must either fail
// cleanly or produce a valid multi-bus system whose bus and gateway
// counts match the requested cluster chain.
func FuzzBuildClusters(f *testing.F) {
	f.Add(sample, 2)
	f.Add(sample, 1)
	f.Add("@TASK_GRAPH 0 {\n    PERIOD 10\n    TASK a TYPE 0\n}\n@PE 0 {\n    0 5\n}\n@PE 1 {\n    0 5\n}\n@PE 2 {\n    0 5\n}\n", 3)
	f.Fuzz(func(t *testing.T, src string, clusters int) {
		file, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		k := clusters % 8
		if k < 0 {
			k = -k
		}
		sys, err := file.Build("fuzz", BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4, Clusters: k})
		if err != nil {
			return
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("built system fails validation: %v", err)
		}
		if k > 1 {
			if got := len(sys.Arch.Buses); got != k {
				t.Fatalf("built %d buses, want %d", got, k)
			}
			if got := len(sys.Arch.Gateways()); got != k-1 {
				t.Fatalf("built %d gateways, want %d", got, k-1)
			}
		}
	})
}

func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("@TASK_GRAPH 0 {\n}")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		// Anything parseable must either build or fail cleanly — and
		// whatever builds must be a valid system.
		sys, err := file.Build("fuzz", BusConfig{SlotBytes: 16, ByteTime: 1, SlotOverhead: 4})
		if err != nil {
			return
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("built system fails validation: %v", err)
		}
	})
}
