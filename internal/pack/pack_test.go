package pack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBestFitChoosesTightestBin(t *testing.T) {
	// Item 5 fits bins of 10 and 6; best-fit picks 6.
	res := BestFit([]int64{5}, []int64{10, 6})
	if res.Assignment[0] != 1 {
		t.Errorf("assignment = %v, want bin 1", res.Assignment)
	}
	if res.PackedTotal != 5 || res.UnpackedTotal != 0 {
		t.Errorf("totals = %d packed, %d unpacked", res.PackedTotal, res.UnpackedTotal)
	}
}

func TestBestFitLeavesOversizedUnpacked(t *testing.T) {
	res := BestFit([]int64{7, 3, 9}, []int64{8})
	if res.Assignment[0] != 0 || res.Assignment[1] != -1 || res.Assignment[2] != -1 {
		t.Errorf("assignment = %v", res.Assignment)
	}
	if res.UnpackedTotal != 12 || res.UnpackedCount != 2 {
		t.Errorf("unpacked = %d (%d items)", res.UnpackedTotal, res.UnpackedCount)
	}
}

func TestBestFitDecreasingBeatsOrderSensitivity(t *testing.T) {
	// In input order, best-fit parks the 2 in the 6-bin, leaving no home
	// for the 6. Decreasing order packs everything.
	items := []int64{2, 5, 6}
	bins := []int64{7, 6}
	plain := BestFit(items, bins)
	bfd := BestFitDecreasing(items, bins)
	if plain.UnpackedTotal == 0 {
		t.Skip("test premise broken: plain best-fit packed everything")
	}
	if bfd.UnpackedTotal != 0 {
		t.Errorf("BFD left %d unpacked: %v", bfd.UnpackedTotal, bfd.Assignment)
	}
}

func TestBestFitDecreasingAssignmentOrder(t *testing.T) {
	items := []int64{1, 9}
	res := BestFitDecreasing(items, []int64{9, 1})
	// Item 1 (size 9) must be in bin 0; item 0 (size 1) in bin 1.
	if res.Assignment[1] != 0 || res.Assignment[0] != 1 {
		t.Errorf("assignment = %v (must be in caller order)", res.Assignment)
	}
}

func TestFirstFit(t *testing.T) {
	res := FirstFit([]int64{5}, []int64{10, 6})
	if res.Assignment[0] != 0 {
		t.Errorf("first-fit picked bin %d, want 0", res.Assignment[0])
	}
}

func TestUnpackedFraction(t *testing.T) {
	res := BestFit([]int64{4, 4}, []int64{4})
	if got := res.UnpackedFraction(); got != 0.5 {
		t.Errorf("UnpackedFraction = %v, want 0.5", got)
	}
	if got := (Result{}).UnpackedFraction(); got != 0 {
		t.Errorf("empty fraction = %v, want 0", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if res := BestFit(nil, []int64{5}); res.PackedCount != 0 || res.UnpackedCount != 0 {
		t.Error("empty items mishandled")
	}
	res := BestFit([]int64{3}, nil)
	if res.UnpackedTotal != 3 {
		t.Error("no-bin case mishandled")
	}
}

// TestPackQuickConservation: packed + unpacked always equals the input
// total, no bin is over-filled, and BFD never does worse than leaving
// everything unpacked.
func TestPackQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := make([]int64, rng.Intn(20))
		var total int64
		for i := range items {
			items[i] = 1 + rng.Int63n(30)
			total += items[i]
		}
		bins := make([]int64, rng.Intn(10))
		for i := range bins {
			bins[i] = 1 + rng.Int63n(40)
		}
		for _, fn := range []func([]int64, []int64) Result{BestFit, BestFitDecreasing, FirstFit} {
			res := fn(items, bins)
			if res.PackedTotal+res.UnpackedTotal != total {
				return false
			}
			// Recompute bin loads from the assignment.
			load := make([]int64, len(bins))
			for i, b := range res.Assignment {
				if b >= 0 {
					load[b] += items[i]
				}
			}
			for b := range bins {
				if load[b] > bins[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPackQuickBFDNotWorse: on random instances BFD packs at least as
// much as plain best-fit in total size... not a theorem for bin packing
// in general, so we only assert BFD packs everything whenever items are
// uniform and capacity obviously suffices.
func TestPackQuickBFDUniform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		items := make([]int64, n)
		for i := range items {
			items[i] = 5
		}
		bins := make([]int64, n)
		for i := range bins {
			bins[i] = 5
		}
		return BestFitDecreasing(items, bins).UnpackedTotal == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBFDNearOptimalSmall cross-checks best-fit-decreasing against brute
// force on tiny instances: BFD may be suboptimal, but never by more than
// the classic 11/9·OPT + 1 bin bound — and for the instances here (<= 5
// items) it must pack everything whenever any order can.
func TestBFDNearOptimalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	perms := func(n int) [][]int {
		var out [][]int
		var rec func(cur []int, rest []int)
		rec = func(cur []int, rest []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), cur...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
				rec(append(cur, rest[i]), next)
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		rec(nil, idx)
		return out
	}
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		items := make([]int64, n)
		for i := range items {
			items[i] = 1 + rng.Int63n(12)
		}
		bins := make([]int64, 1+rng.Intn(3))
		for i := range bins {
			bins[i] = 4 + rng.Int63n(16)
		}
		// Brute force: does any insertion order pack everything with
		// best-fit?
		anyAll := false
		for _, p := range perms(n) {
			ordered := make([]int64, n)
			for i, idx := range p {
				ordered[i] = items[idx]
			}
			if BestFit(ordered, bins).UnpackedTotal == 0 {
				anyAll = true
				break
			}
		}
		got := BestFitDecreasing(items, bins)
		if anyAll && got.UnpackedTotal != 0 {
			// BFD is not guaranteed optimal in general, but log the
			// counterexample: for these tiny instances it is exceedingly
			// rare and worth inspecting.
			t.Logf("trial %d: BFD left %d unpacked where some order packs all (items %v bins %v)",
				trial, got.UnpackedTotal, items, bins)
		}
		if !anyAll && got.UnpackedTotal == 0 {
			t.Errorf("trial %d: BFD packed everything but brute force says impossible (items %v bins %v)",
				trial, items, bins)
		}
	}
}
