// Package pack provides the bin-packing routines behind the paper's first
// design criterion: the processes (or messages) of the largest expected
// future application are the objects, and the slack intervals (or free
// slot capacities) of a design alternative are the containers. The paper
// prescribes the best-fit policy.
//
// Sizes are plain int64 so the same packer serves time units (process
// slack) and bytes (bus slack).
package pack

import "sort"

// Result reports how a packing attempt went.
type Result struct {
	PackedTotal   int64
	UnpackedTotal int64
	PackedCount   int
	UnpackedCount int
	// Assignment[i] is the bin index item i was placed into, or -1.
	Assignment []int
}

// UnpackedFraction returns the fraction (0..1) of total item size that
// could not be packed. An empty item set packs trivially (fraction 0).
func (r Result) UnpackedFraction() float64 {
	total := r.PackedTotal + r.UnpackedTotal
	if total == 0 {
		return 0
	}
	return float64(r.UnpackedTotal) / float64(total)
}

// BestFit packs items (in the given order) into bins using the best-fit
// policy: each item goes into the bin with the smallest remaining capacity
// that still fits it. Items that fit nowhere are left unpacked. The bins
// slice is not modified.
func BestFit(items, bins []int64) Result {
	remaining := append([]int64(nil), bins...)
	res := Result{Assignment: make([]int, len(items))}
	for i, size := range items {
		best := -1
		for b, free := range remaining {
			if free >= size && (best == -1 || free < remaining[best]) {
				best = b
			}
		}
		res.Assignment[i] = best
		if best == -1 {
			res.UnpackedTotal += size
			res.UnpackedCount++
			continue
		}
		remaining[best] -= size
		res.PackedTotal += size
		res.PackedCount++
	}
	return res
}

// BestFitUnpacked returns the unpacked fraction of packing items (in
// the given order) into bins with the best-fit policy, without building
// an assignment. scratch is reused for the remaining capacities and the
// (possibly grown) slice is returned for the next call. The placement
// loop and the fraction arithmetic are exactly BestFit's followed by
// Result.UnpackedFraction, so the value is bit-identical — this is the
// allocation-free form the incremental metrics evaluator runs once per
// candidate design.
func BestFitUnpacked(items, bins, scratch []int64) (float64, []int64) {
	remaining := append(scratch[:0], bins...)
	var packed, unpacked int64
	for _, size := range items {
		best := -1
		for b, free := range remaining {
			if free >= size && (best == -1 || free < remaining[best]) {
				best = b
			}
		}
		if best == -1 {
			unpacked += size
			continue
		}
		remaining[best] -= size
		packed += size
	}
	total := packed + unpacked
	if total == 0 {
		return 0, remaining
	}
	return float64(unpacked) / float64(total), remaining
}

// BestFitDecreasing sorts the items in decreasing size before running
// best-fit. This is the configuration the paper's C1 metric uses: large
// future processes claim the large contiguous slacks first, so a
// fragmented design is penalized exactly when fragmentation hurts.
func BestFitDecreasing(items, bins []int64) Result {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return items[order[a]] > items[order[b]] })
	sorted := make([]int64, len(items))
	for i, idx := range order {
		sorted[i] = items[idx]
	}
	res := BestFit(sorted, bins)
	// Translate the assignment back to the caller's item order.
	assignment := make([]int, len(items))
	for i, idx := range order {
		assignment[idx] = res.Assignment[i]
	}
	res.Assignment = assignment
	return res
}

// FirstFit packs items (in the given order) into the first bin that fits.
// It exists as a baseline for tests and ablations; the metrics use
// best-fit per the paper.
func FirstFit(items, bins []int64) Result {
	remaining := append([]int64(nil), bins...)
	res := Result{Assignment: make([]int, len(items))}
	for i, size := range items {
		placed := -1
		for b, free := range remaining {
			if free >= size {
				placed = b
				break
			}
		}
		res.Assignment[i] = placed
		if placed == -1 {
			res.UnpackedTotal += size
			res.UnpackedCount++
			continue
		}
		remaining[placed] -= size
		res.PackedTotal += size
		res.PackedCount++
	}
	return res
}
