package textplot

import (
	"fmt"
	"sort"
	"strings"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// GanttSVG renders the schedule as a standalone SVG document: one lane
// per node plus a bus lane, colored per application, with a time axis in
// TDMA rounds. The output is self-contained (no scripts, no external
// fonts) and suitable for embedding in design reviews.
func GanttSVG(st *sched.State, width int) string {
	if width <= 0 {
		width = 900
	}
	const (
		laneH   = 28
		laneGap = 8
		leftPad = 56
		topPad  = 28
	)
	horizon := st.Horizon()
	nodes := st.System().Arch.NodeIDs()
	lanes := len(nodes) + 1 // + bus
	height := topPad + lanes*(laneH+laneGap) + 24
	plotW := width - leftPad - 12

	x := func(t tm.Time) float64 {
		return float64(leftPad) + float64(t)/float64(horizon)*float64(plotW)
	}
	laneY := map[model.NodeID]int{}
	for i, n := range nodes {
		laneY[n] = topPad + i*(laneH+laneGap)
	}
	busY := topPad + len(nodes)*(laneH+laneGap)

	// Stable, readable colors per application.
	palette := []string{
		"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
		"#76b7b2", "#edc948", "#9c755f", "#bab0ac", "#d37295",
	}
	color := func(app model.AppID) string {
		return palette[int(app)%len(palette)]
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)

	// Round grid (first bus's round on multi-cluster architectures).
	rl := st.System().Arch.Buses[0].RoundLen()
	for t := tm.Time(0); t <= horizon; t += rl {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eeeeee"/>`+"\n",
			x(t), topPad-6, x(t), busY+laneH)
	}
	// Axis labels every few rounds.
	step := rl
	for x(step)-x(0) < 60 {
		step += rl
	}
	for t := tm.Time(0); t <= horizon; t += step {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#666666" text-anchor="middle">%d</text>`+"\n",
			x(t), topPad-10, int64(t))
	}

	// Lane labels and frames.
	for _, n := range nodes {
		fmt.Fprintf(&b, `<text x="8" y="%d" fill="#333333">N%d</text>`+"\n", laneY[n]+laneH/2+4, n)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#fafafa" stroke="#cccccc"/>`+"\n",
			leftPad, laneY[n], plotW, laneH)
	}
	fmt.Fprintf(&b, `<text x="8" y="%d" fill="#333333">bus</text>`+"\n", busY+laneH/2+4)
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#fafafa" stroke="#cccccc"/>`+"\n",
		leftPad, busY, plotW, laneH)

	// Process bars.
	entries := append([]sched.ProcEntry(nil), st.ProcEntries()...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Start < entries[j].Start })
	for _, e := range entries {
		w := x(e.End) - x(e.Start)
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#ffffff"><title>proc %d occ %d app %d [%d,%d)</title></rect>`+"\n",
			x(e.Start), laneY[e.Node]+2, w, laneH-4, color(e.App), e.Proc, e.Occ, e.App, int64(e.Start), int64(e.End))
	}
	// Message bars on the bus lane.
	for _, m := range st.MsgEntries() {
		w := x(m.Arrive) - x(m.Start)
		if w < 1 {
			w = 1
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#ffffff"><title>msg %d occ %d round %d slot %d</title></rect>`+"\n",
			x(m.Start), busY+2, w, laneH-4, color(m.App), m.Msg, m.Occ, m.Round, m.Slot)
	}
	b.WriteString("</svg>\n")
	return b.String()
}
