package textplot

import (
	"strings"
	"testing"
)

func TestGanttSVGStructure(t *testing.T) {
	st := demoState(t)
	svg := GanttSVG(st, 800)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a well-formed SVG document")
	}
	for _, want := range []string{
		`width="800"`,
		">N0<", ">N1<", ">bus<",
		"<title>proc 0 occ 0",
		"<title>msg 0 occ 0",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Every opened rect is closed or self-closed; crude well-formedness.
	if strings.Count(svg, "<rect") == 0 {
		t.Error("no bars rendered")
	}
	if strings.Count(svg, "<title>") != strings.Count(svg, "</title>") {
		t.Error("unbalanced title tags")
	}
}

func TestGanttSVGDefaultWidth(t *testing.T) {
	st := demoState(t)
	svg := GanttSVG(st, 0)
	if !strings.Contains(svg, `width="900"`) {
		t.Error("default width not applied")
	}
}
