// Package textplot renders schedules and experiment series as plain text:
// Gantt charts of processors and the TDMA bus, horizontal bar charts, and
// multi-series line charts. The command-line tools and examples use it to
// show results without any graphics dependency.
package textplot

import (
	"fmt"
	"sort"
	"strings"

	"incdes/internal/model"
	"incdes/internal/sched"
	"incdes/internal/tm"
)

// Gantt renders the schedule of every node plus the bus over [0, horizon)
// scaled to width columns. Each process occurrence is drawn with a letter
// derived from its application; '.' is idle time.
func Gantt(st *sched.State, width int) string {
	if width <= 0 {
		width = 72
	}
	horizon := st.Horizon()
	scale := func(t tm.Time) int {
		c := int(int64(t) * int64(width) / int64(horizon))
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "horizon: %v, one column = %v\n", horizon, horizon/tm.Time(width))

	appLetter := func(id model.AppID) byte {
		return byte('A' + int(id)%26)
	}

	nodes := st.System().Arch.NodeIDs()
	for _, n := range nodes {
		row := bytes('.', width)
		for _, e := range st.ProcEntries() {
			if e.Node != n {
				continue
			}
			c0, c1 := scale(e.Start), scale(e.End-1)
			for c := c0; c <= c1; c++ {
				row[c] = appLetter(e.App)
			}
		}
		fmt.Fprintf(&b, "%-4s |%s|\n", fmt.Sprintf("N%d", n), row)
	}

	// Bus row: mark slot occurrences that carry at least one message.
	row := bytes('.', width)
	for _, e := range st.MsgEntries() {
		c0, c1 := scale(e.Start), scale(e.Arrive-1)
		for c := c0; c <= c1; c++ {
			row[c] = appLetter(e.App)
		}
	}
	fmt.Fprintf(&b, "%-4s |%s|\n", "bus", row)
	return b.String()
}

func bytes(fill byte, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = fill
	}
	return s
}

// Series is one line of a chart: a name and a y-value per x position.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders series as horizontal grouped bars, one block per x label.
// It is the text analogue of the paper's result figures.
func Chart(title string, xLabel string, xs []string, series []Series, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)

	max := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	const barWidth = 46
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for i, x := range xs {
		fmt.Fprintf(&b, "%s = %s\n", xLabel, x)
		for _, s := range series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			n := int(v / max * barWidth)
			if v > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&b, "  %-*s %8.2f%s |%s\n", nameW, s.Name, v, unit, strings.Repeat("#", n))
		}
	}
	return b.String()
}

// Table renders series as an aligned table: one row per x, one column per
// series.
func Table(xLabel string, xs []string, series []Series, format string) string {
	if format == "" {
		format = "%.2f"
	}
	var b strings.Builder
	// Header.
	w := len(xLabel)
	for _, x := range xs {
		if len(x) > w {
			w = len(x)
		}
	}
	fmt.Fprintf(&b, "%-*s", w, xLabel)
	colW := make([]int, len(series))
	for i, s := range series {
		colW[i] = len(s.Name)
		if colW[i] < 10 {
			colW[i] = 10
		}
		fmt.Fprintf(&b, "  %*s", colW[i], s.Name)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%-*s", w, x)
		for j, s := range series {
			v := ""
			if i < len(s.Values) {
				v = fmt.Sprintf(format, s.Values[i])
			}
			fmt.Fprintf(&b, "  %*s", colW[j], v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Convergence renders a cost-vs-iteration curve as an ASCII scatter:
// column i shows the cost of the i-th committed design (downsampled to
// width). Feed it obs.CostCurve(events) to visualize how a strategy run
// converged. width and height <= 0 select 64x12.
func Convergence(title string, costs []float64, width, height int) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 12
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(costs) == 0 {
		b.WriteString("(no cost samples)\n")
		return b.String()
	}
	lo, hi := costs[0], costs[0]
	for _, c := range costs {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1 // flat curve: draw everything on the top row
	}
	if width > len(costs) {
		width = len(costs)
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = bytes(' ', width)
	}
	for col := 0; col < width; col++ {
		// Downsample: each column shows the last sample of its index range,
		// so the final column always carries the final cost.
		i := (col+1)*len(costs)/width - 1
		row := int((hi - costs[i]) / span * float64(height-1))
		grid[row][col] = '*'
	}
	labelW := len(fmt.Sprintf("%.2f", hi))
	if w := len(fmt.Sprintf("%.2f", lo)); w > labelW {
		labelW = w
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*.2f", labelW, hi)
		case height - 1:
			label = fmt.Sprintf("%*.2f", labelW, lo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, line)
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  0%*s\n", strings.Repeat(" ", labelW), width-1, fmt.Sprintf("%d", len(costs)-1))
	return b.String()
}

// SlackMap renders per-node slack intervals sorted by node, one line each;
// useful when inspecting why a metric scored the way it did.
func SlackMap(per map[model.NodeID][]tm.Interval) string {
	var nodes []model.NodeID
	for n := range per {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var b strings.Builder
	for _, n := range nodes {
		var total tm.Time
		for _, iv := range per[n] {
			total += iv.Len()
		}
		fmt.Fprintf(&b, "N%-3d total %6v in %2d pieces:", n, total, len(per[n]))
		for i, iv := range per[n] {
			if i == 8 {
				fmt.Fprintf(&b, " …")
				break
			}
			fmt.Fprintf(&b, " %v", iv)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
